// obs::PhaseTimings: where one solve's wall time went, phase by phase.
//
// The serving stack can report a p99 but not explain it; this struct is the
// explanation. It rides on api::SolveReport (and from there report_to_json /
// summary), so a service's slow job can be decomposed into plan compilation,
// queue wait, sweep compute, communication and assembly without attaching a
// profiler.
#pragma once

#include <atomic>
#include <cstdint>

namespace jmh::obs {

/// Phase-attributed wall-time breakdown of one solve.
///
/// plan_ns is the SolvePlan compile time (ordering validation + pipelining
/// optimizer), measured once at plan construction and echoed by every solve
/// of that plan -- a cache-hit service job reports the original compile
/// cost, which is exactly the amortization story. queue_ns and retries are
/// filled by svc::SolverService for service jobs (submission to dispatch;
/// solve re-runs after retryable faults) and stay 0 for direct
/// plan.solve calls.
///
/// sweep_ns / comm_ns / assembly_ns are populated only for trace=1 solves:
/// attributing them costs clock reads per sweep and per exchange, which
/// unarmed solves must not pay. They are summed over every SPMD endpoint
/// (an mpi d=3 run adds 8 endpoints' sweep loops), so on a multi-rank
/// backend they are CPU time, not wall time, and can exceed the job
/// latency. comm_ns is contained in sweep_ns: exchanges and convergence
/// allreduces happen inside the sweep loop, so compute-only time is
/// sweep_ns - comm_ns.
struct PhaseTimings {
  std::uint64_t plan_ns = 0;
  std::uint64_t queue_ns = 0;
  std::uint64_t sweep_ns = 0;
  std::uint64_t comm_ns = 0;
  std::uint64_t assembly_ns = 0;
  std::uint64_t retries = 0;
};

/// The engine-side accumulator behind PhaseTimings. A pointer to one of
/// these rides in solve::SolveOptions (null = do not attribute, the
/// default); api::SolvePlan::solve attaches a stack-local sink for trace=1
/// solves and folds it into the report. Atomic, because mpi_lite rank
/// gangs accumulate concurrently from every endpoint.
struct SolveTimingSink {
  std::atomic<std::uint64_t> sweep_ns{0};
  std::atomic<std::uint64_t> comm_ns{0};
  std::atomic<std::uint64_t> assembly_ns{0};
};

}  // namespace jmh::obs
