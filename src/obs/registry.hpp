// obs::Registry: the process-wide named metrics registry -- counters,
// callback gauges, and lock-free log-linear histograms -- with one text and
// one JSON exposition.
//
//   obs::Counter& done = obs::Registry::global().counter("svc.jobs_done");
//   done.add();                                  // one relaxed fetch_add
//   obs::Registry::global().histogram("svc.latency_ns").observe(ns);
//   auto handle = obs::Registry::global().register_gauge(
//       "exec.pool.workers", [&pool] { return double(pool.workers()); });
//   std::string json = obs::Registry::global().render_json();
//
// Counters and histograms are created on first use and live for the
// registry's lifetime (references stay stable); several owners naming the
// same counter share it, so registry values are process-wide totals.
// Per-instance snapshots (svc::Metrics) keep their own counters and mirror
// onto the registry for exposition. Gauges are sampled at render time via
// caller-owned callbacks, unregistered by the returned RAII handle.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace jmh::obs {

/// Monotonic counter. add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Lock-free fixed-bucket log-linear histogram of nonnegative samples
/// (nanoseconds by convention). Bucket b counts samples of bit width b --
/// the range [2^(b-1), 2^b) -- with bucket 0 holding exact zeros, so the
/// whole u64 domain fits in 65 buckets. observe() is three relaxed
/// fetch_adds; quantile_upper() answers "which power of two" -- a
/// factor-of-two resolution is enough to spot a regression's order of
/// magnitude, and exact windowed quantiles stay in svc::Metrics.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t sample) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of the bucket holding the q-quantile sample
  /// (0 when empty). Concurrent observes may land between bucket reads;
  /// the answer is exact over some recent prefix of the stream.
  std::uint64_t quantile_upper(double q) const noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

class Registry;

/// RAII gauge registration: unregisters on destruction. Movable,
/// default-constructed handles are empty. After the destructor returns the
/// callback is guaranteed not to be running (render holds the registration
/// lock while sampling), so it is safe to destroy the state it reads.
class GaugeHandle {
 public:
  GaugeHandle() = default;
  GaugeHandle(GaugeHandle&& other) noexcept
      : reg_(std::exchange(other.reg_, nullptr)), id_(other.id_) {}
  GaugeHandle& operator=(GaugeHandle&& other) noexcept;
  ~GaugeHandle();
  GaugeHandle(const GaugeHandle&) = delete;
  GaugeHandle& operator=(const GaugeHandle&) = delete;

 private:
  friend class Registry;
  GaugeHandle(Registry* reg, std::uint64_t id) noexcept : reg_(reg), id_(id) {}
  Registry* reg_ = nullptr;
  std::uint64_t id_ = 0;
};

class Registry {
 public:
  /// The process-wide registry (also reachable as a plain instance for
  /// tests that want isolation).
  static Registry& global();

  Registry();
  ~Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Named counter / histogram, created on first use. References are
  /// stable for the registry's lifetime -- cache them, do not re-look-up
  /// on hot paths.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Registers a sampled-at-render callback gauge. The callback must stay
  /// valid until the returned handle is destroyed, and must not call back
  /// into this registry (render holds the registration lock).
  [[nodiscard]] GaugeHandle register_gauge(std::string name, std::function<double()> fn);

  /// Plain-text exposition: one "name value" line per metric, sorted by
  /// name; histograms expand into name.count/.sum/.p50/.p90/.p99 lines.
  std::string render_text() const;
  /// JSON exposition: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string render_json() const;

 private:
  friend class GaugeHandle;
  void unregister_gauge(std::uint64_t id) noexcept;

  struct Gauge {
    std::uint64_t id = 0;
    std::string name;
    std::function<double()> fn;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<Gauge> gauges_;
  std::uint64_t next_gauge_id_ = 1;
};

}  // namespace jmh::obs
