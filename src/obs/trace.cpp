#include "obs/trace.hpp"

#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/alloc_guard.hpp"

namespace jmh::obs {

namespace {

/// Anchored during static initialization, before any event can be recorded,
/// so every timestamp (including externally captured enqueue times) lands
/// at or after 0.
const std::chrono::steady_clock::time_point g_trace_epoch =
    std::chrono::steady_clock::now();

}  // namespace

const char* category_name(Category cat) noexcept {
  switch (cat) {
    case Category::kPlan: return "plan";
    case Category::kSweep: return "sweep";
    case Category::kComm: return "comm";
    case Category::kAssembly: return "assembly";
    case Category::kExec: return "exec";
    case Category::kSvc: return "svc";
    case Category::kQueue: return "queue";
  }
  return "?";
}

std::uint64_t trace_now_ns() noexcept {
  return trace_time_ns(std::chrono::steady_clock::now());
}

std::uint64_t trace_time_ns(std::chrono::steady_clock::time_point tp) noexcept {
  const auto since = std::chrono::duration_cast<std::chrono::nanoseconds>(tp - g_trace_epoch);
  return since.count() > 0 ? static_cast<std::uint64_t>(since.count()) : 0;
}

#if JMH_TRACE_ENABLED

namespace {

/// Events per thread ring: 8192 * 48B = ~384KB per recording thread. Big
/// enough for several traced mpi solves; wrap drops oldest, never blocks.
constexpr std::size_t kRingCapacity = 8192;

struct Ring {
  /// Per-ring lock: recording contends only with a concurrent drain (and
  /// only on this thread's ring), never with other recorders. Uncontended
  /// lock + vector store is low double-digit ns -- fine for per-sweep /
  /// per-exchange span grain, and TSan-clean without a lock-free protocol.
  std::mutex mu;
  std::vector<TraceEvent> events;  ///< reserved to kRingCapacity up front
  std::uint64_t recorded = 0;      ///< total ever; dropped = recorded - size
  int tid = 0;
};

std::atomic<int> g_armed{0};
/// Set once the ring registry has been torn down (static destruction):
/// a straggler record after that point becomes a no-op instead of a
/// use-after-free. init_tracing() exists so long-lived recorders order
/// themselves after the registry instead of relying on this backstop.
std::atomic<bool> g_registry_dead{false};

struct RingRegistry {
  ~RingRegistry() { g_registry_dead.store(true, std::memory_order_release); }
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  ///< parked forever, drained at will
};

RingRegistry& ring_registry() {
  static RingRegistry reg;
  return reg;
}

thread_local Ring* tl_ring = nullptr;

Ring* register_ring() {
  // Ring storage is setup cost, not hot-path work: exempt it so the first
  // record inside an AllocGuard-audited sweep does not trip the audit.
  const common::AllocExempt exempt;
  RingRegistry& reg = ring_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  auto ring = std::make_unique<Ring>();
  ring->events.reserve(kRingCapacity);
  ring->tid = static_cast<int>(reg.rings.size()) + 1;
  reg.rings.push_back(std::move(ring));
  return reg.rings.back().get();
}

}  // namespace

bool trace_armed() noexcept { return g_armed.load(std::memory_order_relaxed) > 0; }

void arm_tracing() noexcept { g_armed.fetch_add(1, std::memory_order_relaxed); }

void disarm_tracing() noexcept { g_armed.fetch_sub(1, std::memory_order_relaxed); }

void trace_record(const char* name, Category cat, std::uint64_t start_ns,
                  std::uint64_t dur_ns, std::uint64_t arg) noexcept {
  if (g_registry_dead.load(std::memory_order_acquire)) return;
  Ring* ring = tl_ring;
  if (ring == nullptr) {
    ring = register_ring();
    tl_ring = ring;
  }
  TraceEvent ev;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.arg = arg;
  ev.name = name;
  ev.cat = cat;
  ev.tid = ring->tid;
  const std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->events.size() < kRingCapacity) {
    ring->events.push_back(ev);  // within reserved capacity: no allocation
  } else {
    ring->events[static_cast<std::size_t>(ring->recorded % kRingCapacity)] = ev;
  }
  ++ring->recorded;
}

std::vector<TraceEvent> snapshot_trace_events() {
  std::vector<TraceEvent> out;
  RingRegistry& reg = ring_registry();
  const std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::lock_guard<std::mutex> lock(ring->mu);
    const std::size_t n = ring->events.size();
    // Once wrapped, the oldest resident event sits at recorded % capacity.
    const std::size_t oldest =
        n < kRingCapacity ? 0 : static_cast<std::size_t>(ring->recorded % kRingCapacity);
    for (std::size_t i = 0; i < n; ++i) out.push_back(ring->events[(oldest + i) % n]);
  }
  return out;
}

std::uint64_t trace_recorded_events() noexcept {
  std::uint64_t total = 0;
  RingRegistry& reg = ring_registry();
  const std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->recorded;
  }
  return total;
}

std::uint64_t trace_dropped_events() noexcept {
  std::uint64_t total = 0;
  RingRegistry& reg = ring_registry();
  const std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->recorded > ring->events.size()) total += ring->recorded - ring->events.size();
  }
  return total;
}

std::size_t trace_ring_capacity() noexcept { return kRingCapacity; }

void init_tracing() noexcept { ring_registry(); }

void reset_tracing() noexcept {
  RingRegistry& reg = ring_registry();
  const std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::lock_guard<std::mutex> lock(ring->mu);
    ring->events.clear();
    ring->recorded = 0;
  }
  g_armed.store(0, std::memory_order_relaxed);
}

#endif  // JMH_TRACE_ENABLED

void write_chrome_trace(std::ostream& out) {
  out << "{\"traceEvents\":[";
  const std::vector<TraceEvent> events = snapshot_trace_events();
  char buf[256];
  bool first = true;
  for (const TraceEvent& ev : events) {
    // ts/dur are microseconds by Chrome convention; three decimals keep
    // the underlying nanosecond resolution.
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"arg\":%llu}}",
                  first ? "" : ",", ev.name, category_name(ev.cat), ev.tid,
                  1e-3 * static_cast<double>(ev.start_ns), 1e-3 * static_cast<double>(ev.dur_ns),
                  static_cast<unsigned long long>(ev.arg));
    out << buf;
    first = false;
  }
  out << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":\""
      << trace_dropped_events() << "\"}}\n";
}

std::string chrome_trace_json() {
  std::ostringstream out;
  write_chrome_trace(out);
  return std::move(out).str();
}

}  // namespace jmh::obs
