#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/trace.hpp"

namespace jmh::obs {

namespace {

/// Shortest-exact double rendering, matching the repo's JSON convention.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::uint64_t Histogram::quantile_upper(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample among `total` ordered samples.
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen > target) {
      if (b == 0) return 0;
      if (b >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << b) - 1;
    }
  }
  return ~std::uint64_t{0};
}

GaugeHandle& GaugeHandle::operator=(GaugeHandle&& other) noexcept {
  if (this != &other) {
    if (reg_ != nullptr) reg_->unregister_gauge(id_);
    reg_ = std::exchange(other.reg_, nullptr);
    id_ = other.id_;
  }
  return *this;
}

GaugeHandle::~GaugeHandle() {
  if (reg_ != nullptr) reg_->unregister_gauge(id_);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Registry() {
  // The trace recorder's own health metrics; registered directly (never
  // unregistered -- they live exactly as long as the registry).
  gauges_.push_back({next_gauge_id_++, "obs.trace.recorded_events",
                     [] { return static_cast<double>(trace_recorded_events()); }});
  gauges_.push_back({next_gauge_id_++, "obs.trace.dropped_events",
                     [] { return static_cast<double>(trace_dropped_events()); }});
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

GaugeHandle Registry::register_gauge(std::string name, std::function<double()> fn) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_gauge_id_++;
  gauges_.push_back({id, std::move(name), std::move(fn)});
  return {this, id};
}

void Registry::unregister_gauge(std::uint64_t id) noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(gauges_, [id](const Gauge& g) { return g.id == id; });
}

std::string Registry::render_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) out << name << ' ' << counter->value() << '\n';
  std::vector<const Gauge*> gauges;
  gauges.reserve(gauges_.size());
  for (const Gauge& g : gauges_) gauges.push_back(&g);
  std::stable_sort(gauges.begin(), gauges.end(),
                   [](const Gauge* a, const Gauge* b) { return a->name < b->name; });
  for (const Gauge* g : gauges) out << g->name << ' ' << format_double(g->fn()) << '\n';
  for (const auto& [name, h] : histograms_) {
    out << name << ".count " << h->count() << '\n';
    out << name << ".sum " << h->sum() << '\n';
    out << name << ".p50 " << h->quantile_upper(0.50) << '\n';
    out << name << ".p90 " << h->quantile_upper(0.90) << '\n';
    out << name << ".p99 " << h->quantile_upper(0.99) << '\n';
  }
  return std::move(out).str();
}

std::string Registry::render_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ",") << '"' << name << "\":" << counter->value();
    first = false;
  }
  out << "},\"gauges\":{";
  std::vector<const Gauge*> gauges;
  gauges.reserve(gauges_.size());
  for (const Gauge& g : gauges_) gauges.push_back(&g);
  std::stable_sort(gauges.begin(), gauges.end(),
                   [](const Gauge* a, const Gauge* b) { return a->name < b->name; });
  first = true;
  for (const Gauge* g : gauges) {
    out << (first ? "" : ",") << '"' << g->name << "\":" << format_double(g->fn());
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << '"' << name << "\":{\"count\":" << h->count()
        << ",\"sum\":" << h->sum() << ",\"p50\":" << h->quantile_upper(0.50)
        << ",\"p90\":" << h->quantile_upper(0.90) << ",\"p99\":" << h->quantile_upper(0.99)
        << "}";
    first = false;
  }
  out << "}}";
  return std::move(out).str();
}

}  // namespace jmh::obs
