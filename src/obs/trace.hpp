// obs tracing: always-compiled-in, runtime-armed span recording.
//
// Design:
//  * Per-thread fixed-capacity ring buffers of COMPLETE span events (name,
//    category, start, duration, one u64 argument). Recording is
//    allocation-free on the hot path -- ring storage is preallocated under
//    common::AllocExempt the first time a thread records, so a span inside
//    an AllocGuard-audited sweep or dispatch never trips the audit. Rings
//    are parked in a process-wide registry and outlive their threads, so
//    draining after a pool worker exits is safe.
//  * Runtime arming: trace_armed() is one relaxed atomic load. Unarmed, a
//    SpanScope is that load plus a branch -- no clock read, no store --
//    cheap enough to leave inside every sweep (BM_TraceSpan gates the
//    disarmed cost in BENCH_obs.json). ArmScope arms are counted, so
//    concurrent traced solves nest instead of fighting.
//  * Ring wrap drops the OLDEST events and counts the drops
//    (trace_dropped_events); recording never blocks on a full ring.
//  * write_chrome_trace drains every ring into Chrome trace_event JSON
//    ("complete" events, ph:"X") loadable in chrome://tracing or Perfetto.
//    Complete events rather than begin/end pairs, so a wrapped ring can
//    never produce unbalanced nesting -- a drop loses a whole span.
//  * cmake -DJMH_TRACE=OFF defines JMH_TRACE_ENABLED=0: arming is
//    constexpr-false, recording compiles to nothing, and the JSON writer
//    emits a valid empty trace. The SpanScope accumulator path feeding
//    obs::PhaseTimings (see obs/phase_timing.hpp) works in either mode.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef JMH_TRACE_ENABLED
#define JMH_TRACE_ENABLED 1
#endif

namespace jmh::obs {

/// Span category, doubling as the Chrome "cat" field (category_name).
enum class Category : std::uint8_t {
  kPlan,      ///< SolvePlan construction (ordering checks, pipelining optimizer)
  kSweep,     ///< one full sweep of the protocol on one endpoint
  kComm,      ///< transport exchanges and convergence allreduces
  kAssembly,  ///< final block collection + eigenpair/sigma extraction
  kExec,      ///< exec::ThreadPool task run / steal / gang admission
  kSvc,       ///< service-side solve / coalesce / retry
  kQueue,     ///< service queue wait (submission -> dispatch)
};

/// Chrome "cat" string of a category ("plan", "sweep", ...).
const char* category_name(Category cat) noexcept;

/// One recorded complete span. The name must be a string literal (or
/// otherwise immortal): the ring stores the pointer, never a copy.
struct TraceEvent {
  std::uint64_t start_ns = 0;  ///< since the process trace epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;       ///< span-specific payload (sweep index, size...)
  const char* name = "";
  Category cat = Category::kExec;
  int tid = 0;  ///< recorder id, 1-based in thread registration order
};

/// Nanoseconds since the process-wide trace epoch (steady clock, anchored
/// at static initialization). Monotonic; compiled in either trace mode, so
/// cold-path timing (plan_ns, queue_ns) does not depend on JMH_TRACE.
std::uint64_t trace_now_ns() noexcept;

/// The same epoch for an externally captured steady_clock time point --
/// for spans whose start predates the recording call, e.g. a queue wait
/// clocked from Job::enqueued_at. Clamps to 0 before the epoch.
std::uint64_t trace_time_ns(std::chrono::steady_clock::time_point tp) noexcept;

#if JMH_TRACE_ENABLED

/// True while at least one ArmScope / arm_tracing() is live. One relaxed
/// load: this is the only cost an unarmed solve pays per span site.
bool trace_armed() noexcept;
void arm_tracing() noexcept;     ///< nests: arms are counted
void disarm_tracing() noexcept;

/// Records one complete event into the calling thread's ring, overwriting
/// the oldest event when full. Allocation-free except for the thread's
/// first-ever record, which creates its ring under common::AllocExempt.
/// Callers gate on trace_armed(); recording unarmed is harmless waste.
void trace_record(const char* name, Category cat, std::uint64_t start_ns,
                  std::uint64_t dur_ns, std::uint64_t arg) noexcept;

/// Every event currently resident, oldest-first per ring, rings in
/// registration order. A test/tooling convenience; write_chrome_trace is
/// the production drain.
std::vector<TraceEvent> snapshot_trace_events();

std::uint64_t trace_recorded_events() noexcept;  ///< total ever recorded
std::uint64_t trace_dropped_events() noexcept;   ///< overwritten by ring wrap
std::size_t trace_ring_capacity() noexcept;      ///< events per thread ring

/// Constructs the ring registry now. Long-lived statics that may record
/// during their own destruction windows (the process-wide exec pool) call
/// this first, so the registry is constructed earlier -- and therefore
/// destroyed later -- than they are.
void init_tracing() noexcept;

/// Test hook: clears every ring and counter and resets the arm count to 0.
/// Not safe concurrently with live recorders.
void reset_tracing() noexcept;

#else  // tracing compiled out: arming is constexpr-false, spans vanish.

inline constexpr bool trace_armed() noexcept { return false; }
inline void arm_tracing() noexcept {}
inline void disarm_tracing() noexcept {}
inline void trace_record(const char*, Category, std::uint64_t, std::uint64_t,
                         std::uint64_t) noexcept {}
inline std::vector<TraceEvent> snapshot_trace_events() { return {}; }
inline std::uint64_t trace_recorded_events() noexcept { return 0; }
inline std::uint64_t trace_dropped_events() noexcept { return 0; }
inline std::size_t trace_ring_capacity() noexcept { return 0; }
inline void init_tracing() noexcept {}
inline void reset_tracing() noexcept {}

#endif  // JMH_TRACE_ENABLED

/// Writes every resident event as Chrome trace_event JSON
/// ({"traceEvents":[...]}, complete events). Valid -- if empty -- even with
/// tracing disarmed or compiled out.
void write_chrome_trace(std::ostream& out);
std::string chrome_trace_json();

/// RAII arm: arms process-wide tracing for its scope when @p arm is true
/// (api::SolvePlan::solve passes spec().trace). Nested scopes stack.
class ArmScope {
 public:
  explicit ArmScope(bool arm) noexcept : armed_(arm) {
    if (armed_) arm_tracing();
  }
  ~ArmScope() {
    if (armed_) disarm_tracing();
  }
  ArmScope(const ArmScope&) = delete;
  ArmScope& operator=(const ArmScope&) = delete;

 private:
  bool armed_;
};

/// RAII span: measures its scope and, at destruction, (a) adds the duration
/// to @p acc when non-null (the obs::PhaseTimings feed) and (b) records a
/// trace event when tracing is armed. With a null @p acc and tracing
/// unarmed the span is fully inert: no clock reads, just the relaxed
/// trace_armed() load.
class SpanScope {
 public:
  explicit SpanScope(const char* name, Category cat, std::uint64_t arg = 0,
                     std::atomic<std::uint64_t>* acc = nullptr) noexcept
      : name_(name),
        acc_(acc),
        arg_(arg),
        cat_(cat),
        active_(acc != nullptr || trace_armed()) {
    if (active_) start_ = trace_now_ns();
  }
  ~SpanScope() {
    if (!active_) return;
    const std::uint64_t dur = trace_now_ns() - start_;
    if (acc_ != nullptr) acc_->fetch_add(dur, std::memory_order_relaxed);
    if (trace_armed()) trace_record(name_, cat_, start_, dur, arg_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  std::atomic<std::uint64_t>* acc_;
  std::uint64_t arg_;
  std::uint64_t start_ = 0;
  Category cat_;
  bool active_;
};

}  // namespace jmh::obs
