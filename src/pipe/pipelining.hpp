// Communication pipelining of a CC-cube exchange phase (paper section 2.4,
// after Diaz de Cerio, Gonzalez & Valero-Garcia, PPL 1996 [9]).
//
// The original exchange phase iterates K = 2^e - 1 times: compute, then send
// one message through link D_e[t]. Pipelining splits each iteration's
// computation into Q packets and overlaps iterations so that each *stage*
// sends several packets at once through different links:
//
//   shallow mode (Q <= K): stage windows slide over D_e --
//     prologue  stage j (j = 1..Q-1): links D_e[0 .. j-1]
//     kernel    stage i (i = 0..K-Q): links D_e[i .. i+Q-1]
//     epilogue  stage j (j = Q-1..1): links D_e[K-j .. K-1]
//
//   deep mode (Q > K): prologue/epilogue have K-1 stages (prefixes/suffixes
//     of D_e) and the kernel has Q-K+1 stages, each using all K links of
//     D_e (distinct links = e, max multiplicity = alpha).
//
// Every stage sends one packet (of the step message split Q ways) per
// window element; packets sharing a link travel as one packed message.
// Total packets moved per phase is exactly K*Q, which we assert.
#pragma once

#include <cstdint>
#include <vector>

#include "ord/sequence.hpp"

namespace jmh::pipe {

/// One pipelined stage's communication, summarized by the window stats the
/// cost model needs.
struct Stage {
  enum class Part { Prologue, Kernel, Epilogue };
  Part part = Part::Kernel;
  int window_len = 0;  ///< packets sent in this stage
  int distinct = 0;    ///< distinct links used
  int max_mult = 0;    ///< max packets sharing one link
};

/// A fully-constructed pipelined schedule for one exchange phase.
class PipelineSchedule {
 public:
  /// Builds the schedule for sequence @p seq with pipelining degree @p q.
  /// q in [1, ...]; q <= K gives shallow mode, q > K deep mode. q == 1
  /// degenerates to the unpipelined phase (K stages of one packet).
  PipelineSchedule(const ord::LinkSequence& seq, std::uint64_t q);

  std::uint64_t q() const noexcept { return q_; }
  std::uint64_t k() const noexcept { return k_; }
  bool deep() const noexcept { return q_ > k_; }
  const std::vector<Stage>& stages() const noexcept { return stages_; }

  /// Sum of window_len over stages; must equal K*Q.
  std::uint64_t total_packets() const noexcept;

 private:
  std::uint64_t q_ = 1;
  std::uint64_t k_ = 0;
  std::vector<Stage> stages_;
};

}  // namespace jmh::pipe
