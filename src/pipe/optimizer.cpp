#include "pipe/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "pipe/cost_model.hpp"

namespace jmh::pipe {

namespace {

// Candidate shallow pipelining degrees: exhaustive for small Q where the
// cost landscape is jagged, then progressively sparser (powers of two,
// multiples of e, K itself). The window statistics of the generated
// sequences are near-periodic in the link count, so these candidates track
// every local optimum that matters.
std::set<std::uint64_t> shallow_candidates(std::uint64_t k, int e, std::uint64_t q_max) {
  std::set<std::uint64_t> qs;
  const std::uint64_t cap = std::min(k, q_max);
  for (std::uint64_t q = 1; q <= std::min<std::uint64_t>(cap, 4 * static_cast<std::uint64_t>(e) + 8); ++q)
    qs.insert(q);
  for (std::uint64_t q = 1; q <= cap; q *= 2) {
    qs.insert(q);
    if (q + 1 <= cap) qs.insert(q + 1);
    if (q > 1) qs.insert(q - 1);
  }
  for (std::uint64_t mult = 1; mult * static_cast<std::uint64_t>(e) <= cap; mult *= 2) {
    qs.insert(mult * static_cast<std::uint64_t>(e));
  }
  qs.insert(cap);
  return qs;
}

}  // namespace

OptimalQ find_optimal_q(const ord::LinkSequence& seq, double step_elems,
                        const MachineParams& machine, std::uint64_t q_max) {
  JMH_REQUIRE(q_max >= 1, "q_max must be >= 1");
  const std::uint64_t k = seq.size();

  OptimalQ best;
  best.q = 1;
  best.cost = phase_cost_pipelined(seq, 1, step_elems, machine);
  best.deep = false;

  auto consider = [&](std::uint64_t q) {
    if (q < 1 || q > q_max) return;
    const double c = phase_cost_pipelined(seq, q, step_elems, machine);
    if (c < best.cost) {
      best.q = q;
      best.cost = c;
      best.deep = q > k;
    }
  };

  for (std::uint64_t q : shallow_candidates(k, seq.e(), q_max)) consider(q);

  if (q_max > k) {
    // Deep mode closed form: cost(Q) = A + B*Q + C/Q with
    //   B = kernel stage startup slope = distinct * ts
    //   C = (prologue+epilogue multiplicity sum + alpha*(K-1)) * S * tw-ish.
    // Rather than re-deriving the constants, evaluate two probe points and
    // solve for B and C (A is irrelevant for the argmin Q* = sqrt(C/B)).
    const std::uint64_t qa = k + 1;
    const std::uint64_t qb = std::min<std::uint64_t>(q_max, 4 * k + 7);
    consider(qa);
    consider(qb);
    if (qb > qa + 1) {
      const double fa = phase_cost_pipelined(seq, qa, step_elems, machine);
      const double fb = phase_cost_pipelined(seq, qb, step_elems, machine);
      const double a = static_cast<double>(qa), b = static_cast<double>(qb);
      // Solve fa = A + B a + C/a, fb = A + B b + C/b for B, C using a third
      // probe to eliminate A.
      const std::uint64_t qc = (qa + qb) / 2;
      const double fc = phase_cost_pipelined(seq, qc, step_elems, machine);
      const double c0 = static_cast<double>(qc);
      // Linear system in (A, B, C):
      const double m1[3] = {1.0, a, 1.0 / a};
      const double m2[3] = {1.0, b, 1.0 / b};
      const double m3[3] = {1.0, c0, 1.0 / c0};
      // Eliminate A: r1 = m2-m1, r2 = m3-m1.
      const double r1b = m2[1] - m1[1], r1c = m2[2] - m1[2], r1f = fb - fa;
      const double r2b = m3[1] - m1[1], r2c = m3[2] - m1[2], r2f = fc - fa;
      const double det = r1b * r2c - r2b * r1c;
      if (std::abs(det) > 1e-12) {
        const double bcoef = (r1f * r2c - r2f * r1c) / det;
        const double ccoef = (r1b * r2f - r2b * r1f) / det;
        if (bcoef > 0.0 && ccoef > 0.0) {
          const double qstar = std::sqrt(ccoef / bcoef);
          const auto qlo = static_cast<std::uint64_t>(std::floor(qstar));
          for (std::uint64_t q : {qlo, qlo + 1, qlo + 2}) {
            if (q > k) consider(std::min(q, q_max));
          }
        }
      }
    }
    consider(q_max);
  }
  return best;
}

OptimalQ find_optimal_sweep_q(const ord::JacobiOrdering& ordering, const ProblemParams& prob,
                              const MachineParams& machine, std::uint64_t q_max) {
  JMH_REQUIRE(q_max >= 1, "q_max must be >= 1");
  JMH_REQUIRE(prob.m > 0.0, "matrix order must be positive");
  JMH_REQUIRE(prob.d == ordering.dimension(), "ProblemParams.d must match the ordering");
  const int d = prob.d;
  const double step_elems = prob.step_message_elems();

  const auto sweep_exchange_cost = [&](std::uint64_t q) {
    double total = 0.0;
    for (int e = d; e >= 1; --e)
      total += phase_cost_pipelined(ordering.exchange_sequence(e), q, step_elems, machine);
    return total;
  };

  std::set<std::uint64_t> candidates;
  for (std::uint64_t q = 1; q <= std::min<std::uint64_t>(q_max, 32); ++q) candidates.insert(q);
  for (std::uint64_t q = 1;; q *= 2) {
    candidates.insert(q);
    if (q > q_max / 2) break;
  }
  candidates.insert(q_max);
  for (int e = d; e >= 1; --e)
    candidates.insert(find_optimal_q(ordering.exchange_sequence(e), step_elems, machine, q_max).q);

  OptimalQ best;
  best.q = 1;
  best.cost = sweep_exchange_cost(1);
  for (std::uint64_t q : candidates) {
    if (q < 1 || q > q_max) continue;
    const double c = sweep_exchange_cost(q);
    if (c < best.cost) {
      best.q = q;
      best.cost = c;
    }
  }
  best.deep = best.q > (std::uint64_t{1} << d) - 1;
  return best;
}

OptimalQ find_optimal_q_ideal(int e, double step_elems, const MachineParams& machine,
                              std::uint64_t q_max) {
  JMH_REQUIRE(q_max >= 1, "q_max must be >= 1");
  const std::uint64_t k = (std::uint64_t{1} << e) - 1;

  OptimalQ best;
  best.q = 1;
  best.cost = phase_cost_ideal(e, 1, step_elems, machine);
  best.deep = false;

  auto consider = [&](std::uint64_t q) {
    if (q < 1 || q > q_max) return;
    const double c = phase_cost_ideal(e, q, step_elems, machine);
    if (c < best.cost) {
      best.q = q;
      best.cost = c;
      best.deep = q > k;
    }
  };

  for (std::uint64_t q : shallow_candidates(k, e, q_max)) consider(q);
  if (q_max > k) {
    // The ideal deep cost is cost(Q) = A + (e*ts)*Q + (ceil(K/e)*S*tw*(K-1))*(1/Q)
    // up to prologue/epilogue constants; probe around the analytic optimum.
    const double bcoef = static_cast<double>(e) * machine.ts;
    const double ccoef = static_cast<double>(ceil_div(k, static_cast<std::uint64_t>(e))) *
                         step_elems * machine.tw * static_cast<double>(k - 1) /
                         static_cast<double>(k);
    const double qstar = std::sqrt(std::max(1.0, ccoef / bcoef));
    const auto qlo = static_cast<std::uint64_t>(std::floor(qstar));
    for (std::uint64_t q : {qlo, qlo + 1, qlo + 2})
      if (q > k) consider(std::min(q, q_max));
    consider(k + 1);
    consider(q_max);
  }
  return best;
}

}  // namespace jmh::pipe
