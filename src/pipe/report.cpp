#include "pipe/report.hpp"

#include <iomanip>
#include <sstream>

namespace jmh::pipe {

std::string render_sweep_breakdown(ord::OrderingKind kind, const ProblemParams& prob,
                                   const MachineParams& machine) {
  const SweepCost c = sweep_cost_pipelined(kind, prob, machine);
  std::ostringstream os;
  os << "sweep breakdown: " << ord::to_string(kind) << " on d=" << prob.d
     << ", m=" << prob.m << "\n";
  os << "  phase e |        Q     mode          cost   share\n";
  for (std::size_t i = 0; i < c.phase_cost.size(); ++i) {
    const int e = prob.d - static_cast<int>(i);
    os << "  " << std::setw(7) << e << " | " << std::setw(8) << c.q[i] << "  "
       << std::setw(7) << (c.deep[i] ? "deep" : "shallow") << "  " << std::setw(12)
       << std::fixed << std::setprecision(0) << c.phase_cost[i] << "  " << std::setw(5)
       << std::setprecision(1) << 100.0 * c.phase_cost[i] / c.total << "%\n";
  }
  os << "  divisions + last transition: " << std::setprecision(0) << c.overhead << "  "
     << std::setprecision(1) << 100.0 * c.overhead / c.total << "%\n";
  os << "  total: " << std::setprecision(0) << c.total << "\n";
  return os.str();
}

std::string render_ordering_summary(const ProblemParams& prob, const MachineParams& machine) {
  const double base = sweep_cost_unpipelined(prob, machine);
  std::ostringstream os;
  os << "ordering summary (d=" << prob.d << ", m=" << prob.m << ", baseline " << std::fixed
     << std::setprecision(0) << base << ")\n";
  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                    ord::OrderingKind::Degree4, ord::OrderingKind::MinAlpha}) {
    const SweepCost c = sweep_cost_pipelined(kind, prob, machine);
    os << "  " << ord::to_string(kind);
    for (std::size_t pad = ord::to_string(kind).size(); pad < 12; ++pad) os << ' ';
    os << std::setprecision(3) << c.total / base << "\n";
  }
  const SweepCost lb = sweep_cost_lower_bound(prob, machine);
  os << "  lower-bound " << std::setprecision(3) << lb.total / base << "\n";
  return os.str();
}

}  // namespace jmh::pipe
