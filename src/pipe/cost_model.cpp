#include "pipe/cost_model.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "pipe/optimizer.hpp"

namespace jmh::pipe {

std::uint64_t ProblemParams::q_max() const {
  const double c = columns_per_block();
  JMH_REQUIRE(c >= 1.0, "matrix too small for this cube: fewer than 1 column per block");
  return static_cast<std::uint64_t>(c);
}

double phase_cost_unpipelined(std::uint64_t k, double step_elems, const MachineParams& machine) {
  return static_cast<double>(k) * transition_cost(machine, step_elems);
}

double phase_cost_pipelined(const ord::LinkSequence& seq, std::uint64_t q, double step_elems,
                            const MachineParams& machine) {
  JMH_REQUIRE(q >= 1, "pipelining degree must be >= 1");
  const std::uint64_t k = seq.size();
  const double packet = step_elems / static_cast<double>(q);

  if (q <= k) {
    const PipelineSchedule sched(seq, q);
    double total = 0.0;
    for (const auto& s : sched.stages())
      total += comm_op_cost(machine, s.distinct, s.max_mult, s.window_len, packet);
    return total;
  }

  // Deep mode, closed form over prologue/epilogue prefixes/suffixes plus the
  // aggregated kernel. The prologue/epilogue have K-1 stages regardless of Q.
  const auto& links = seq.links();
  const int e = seq.e();
  double total = 0.0;
  {
    std::vector<int> count(static_cast<std::size_t>(e), 0);
    int distinct = 0, max_mult = 0;
    for (std::uint64_t j = 1; j < k; ++j) {  // prefix of length j
      int& c = count[static_cast<std::size_t>(links[j - 1])];
      if (c == 0) ++distinct;
      ++c;
      max_mult = std::max(max_mult, c);
      total += comm_op_cost(machine, distinct, max_mult, static_cast<int>(j), packet);
    }
  }
  {
    std::vector<int> count(static_cast<std::size_t>(e), 0);
    int distinct = 0, max_mult = 0;
    for (std::uint64_t j = 1; j < k; ++j) {  // suffix of length j
      int& c = count[static_cast<std::size_t>(links[k - j])];
      if (c == 0) ++distinct;
      ++c;
      max_mult = std::max(max_mult, c);
      total += comm_op_cost(machine, distinct, max_mult, static_cast<int>(j), packet);
    }
  }
  {
    std::vector<int> count(static_cast<std::size_t>(e), 0);
    int distinct = 0;
    for (ord::Link l : links) {
      if (count[static_cast<std::size_t>(l)]++ == 0) ++distinct;
    }
    const int alpha = seq.alpha();
    const double kernel_stages = static_cast<double>(q - k + 1);
    total += kernel_stages *
             comm_op_cost(machine, distinct, alpha, static_cast<int>(k), packet);
  }
  return total;
}

double phase_cost_ideal(int e, std::uint64_t q, double step_elems, const MachineParams& machine) {
  JMH_REQUIRE(e >= 1, "phase index must be >= 1");
  JMH_REQUIRE(q >= 1, "pipelining degree must be >= 1");
  const std::uint64_t k = (std::uint64_t{1} << e) - 1;
  const double packet = step_elems / static_cast<double>(q);

  auto window_cost = [&](std::uint64_t w) {
    const int distinct = static_cast<int>(std::min<std::uint64_t>(w, static_cast<std::uint64_t>(e)));
    const int mult = static_cast<int>(ceil_div(w, static_cast<std::uint64_t>(e)));
    return comm_op_cost(machine, distinct, mult, static_cast<int>(w), packet);
  };

  const std::uint64_t window = std::min(q, k);
  double total = 0.0;
  for (std::uint64_t j = 1; j < window; ++j) total += 2.0 * window_cost(j);  // prologue+epilogue
  if (q <= k) {
    total += static_cast<double>(k - q + 1) * window_cost(q);
  } else {
    total += static_cast<double>(q - k + 1) * window_cost(k);
  }
  return total;
}

double sweep_cost_unpipelined(const ProblemParams& prob, const MachineParams& machine) {
  const std::uint64_t steps = (std::uint64_t{2} << prob.d) - 1;
  return static_cast<double>(steps) * transition_cost(machine, prob.step_message_elems());
}

namespace {

// Shared sweep accumulator: per exchange phase pick optimal Q; divisions and
// the last transition are plain full-size transitions.
template <typename PhaseOpt>
SweepCost accumulate_sweep(const ProblemParams& prob, const MachineParams& machine,
                           PhaseOpt&& phase_opt) {
  SweepCost out;
  const double s = prob.step_message_elems();
  const std::uint64_t q_max = prob.q_max();
  for (int e = prob.d; e >= 1; --e) {
    const OptimalQ best = phase_opt(e, s, q_max);
    out.total += best.cost;
    out.q.push_back(best.q);
    out.deep.push_back(best.deep);
    out.phase_cost.push_back(best.cost);
  }
  // d division transitions + 1 last transition.
  out.overhead = static_cast<double>(prob.d + 1) * transition_cost(machine, s);
  out.total += out.overhead;
  return out;
}

}  // namespace

SweepCost sweep_cost_pipelined(ord::OrderingKind kind, const ProblemParams& prob,
                               const MachineParams& machine) {
  return accumulate_sweep(prob, machine,
                          [&](int e, double s, std::uint64_t q_max) {
                            const ord::LinkSequence seq = ord::make_exchange_sequence(kind, e);
                            return find_optimal_q(seq, s, machine, q_max);
                          });
}

SweepCost sweep_cost_lower_bound(const ProblemParams& prob, const MachineParams& machine) {
  return accumulate_sweep(prob, machine,
                          [&](int e, double s, std::uint64_t q_max) {
                            return find_optimal_q_ideal(e, s, machine, q_max);
                          });
}

}  // namespace jmh::pipe
