// Analytical communication-cost model for full sweeps (paper section 4).
//
// Reproduces the evaluation methodology behind Figure 2: communication cost
// of one sweep of the one-sided Jacobi CC-cube algorithm on a d-cube with
// m x m matrices, for a given ordering, with and without communication
// pipelining, plus a lower bound.
//
// Message size: a transition exchanges one block of A and the matching
// block of U, i.e. S = 2 * m * (m / 2^{d+1}) = m^2 / 2^d elements
// (DESIGN.md note 6). The pipelining degree Q is bounded by the number of
// packets a step's computation can be split into, i.e. the columns per
// block: Qmax = m / 2^{d+1}.
#pragma once

#include <cmath>
#include <cstdint>

#include "ord/ordering.hpp"
#include "pipe/machine.hpp"
#include "pipe/pipelining.hpp"

namespace jmh::pipe {

/// Problem-instance geometry shared by the cost functions.
struct ProblemParams {
  int d = 3;          ///< hypercube dimension
  double m = 1024.0;  ///< matrix order / column count (double: fig. 2 uses m up to 2^32)
  /// Input row count; 0 = square (rows = m). A tall task=svd problem
  /// carries rows-element columns of B next to m-element columns of V, so
  /// its transitions are strictly larger than the square model predicts.
  double rows = 0.0;

  /// The row count the cost functions charge (rows, or m when rows == 0).
  double input_rows() const { return rows == 0.0 ? m : rows; }
  double columns_per_block() const { return m / std::ldexp(1.0, d + 1); }
  /// Elements exchanged per transition: a block of B (input_rows() x cpb)
  /// plus the matching block of V (m x cpb). Square inputs reduce to the
  /// historical 2 * m * cpb = m^2 / 2^d.
  double step_message_elems() const { return (input_rows() + m) * columns_per_block(); }
  /// Maximum pipelining degree (packets = columns).
  std::uint64_t q_max() const;
};

/// Communication cost of one exchange phase executed without pipelining:
/// K transitions of a full-size message.
double phase_cost_unpipelined(std::uint64_t k, double step_elems, const MachineParams& machine);

/// Communication cost of one exchange phase pipelined with degree @p q.
/// Uses the explicit stage schedule in shallow mode and a closed form in
/// deep mode (prologue/epilogue enumerated, kernel aggregated), so it is
/// safe for arbitrarily large q.
double phase_cost_pipelined(const ord::LinkSequence& seq, std::uint64_t q, double step_elems,
                            const MachineParams& machine);

/// Idealized per-phase lower bound: a hypothetical sequence whose every
/// length-w window has min(w, e) distinct links and ceil(w / e) maximum
/// multiplicity (perfectly balanced link usage).
double phase_cost_ideal(int e, std::uint64_t q, double step_elems, const MachineParams& machine);

/// Result of a sweep-level cost evaluation.
struct SweepCost {
  double total = 0.0;            ///< communication cost of one sweep
  std::vector<std::uint64_t> q;  ///< chosen Q per exchange phase e = d..1
  std::vector<bool> deep;        ///< whether phase e = d..1 ran in deep mode
  std::vector<double> phase_cost;  ///< cost per exchange phase e = d..1
  double overhead = 0.0;           ///< divisions + last transition
};

/// Sweep cost without pipelining (the baseline "BR Algorithm" curve of
/// fig. 2 -- identical for every ordering since all transitions are
/// full-size nearest-neighbor messages).
double sweep_cost_unpipelined(const ProblemParams& prob, const MachineParams& machine);

/// Sweep cost for @p kind with per-phase optimal pipelining degree.
SweepCost sweep_cost_pipelined(ord::OrderingKind kind, const ProblemParams& prob,
                               const MachineParams& machine);

/// Sweep-level lower bound (idealized sequences, optimal Q per phase).
SweepCost sweep_cost_lower_bound(const ProblemParams& prob, const MachineParams& machine);

}  // namespace jmh::pipe
