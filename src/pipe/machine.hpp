// Machine model for the communication cost analysis (paper sections 2.1, 3.1
// and ref. [9]).
//
// A node sending messages through n distinct links in one communication
// operation pays:
//   * n * ts       -- startups are issued by the node processor and
//                     serialize even on an all-port architecture (this is
//                     the "e*Ts" term of the paper's kernel-stage cost);
//   * transmission -- messages travelling on different links proceed in
//                     parallel up to the port count; messages sharing a link
//                     are packed into one message (paper footnote 2) and
//                     serialize, giving the "alpha*S*Tw" term.
#pragma once

#include "common/assert.hpp"

namespace jmh::pipe {

struct MachineParams {
  double ts = 1000.0;  ///< startup time per message (paper's Ts; fig. 2 uses 1000)
  double tw = 100.0;   ///< transfer time per matrix element (paper's Tw; fig. 2 uses 100)
  int ports = kAllPort;

  static constexpr int kAllPort = -1;  ///< every link usable simultaneously

  bool all_port() const noexcept { return ports == kAllPort; }

  bool operator==(const MachineParams&) const = default;
};

/// Cost of one communication operation in which a node sends, for each link
/// i of a set of @p distinct links, a packed message of @p mult_i packets of
/// @p packet_elems elements. Only the two aggregate statistics matter:
///   all-port:  distinct*ts + max_mult*packet_elems*tw
///   one-port:  distinct*ts + total_mult*packet_elems*tw
///   k-port:    distinct*ts + max(max_mult, ceil(total/k))*packet_elems*tw
double comm_op_cost(const MachineParams& machine, int distinct, int max_mult, int total_mult,
                    double packet_elems);

/// Cost of a plain (unpipelined) transition: one message of @p elems
/// elements through one link.
double transition_cost(const MachineParams& machine, double elems);

}  // namespace jmh::pipe
