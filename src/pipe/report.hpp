// Human-readable sweep cost breakdowns (used by comm_planner and tools).
#pragma once

#include <string>

#include "pipe/cost_model.hpp"

namespace jmh::pipe {

/// Phase-by-phase table for one ordering: per exchange phase the chosen Q,
/// mode, absolute cost and share of the sweep's communication time.
std::string render_sweep_breakdown(ord::OrderingKind kind, const ProblemParams& prob,
                                   const MachineParams& machine);

/// One-line-per-ordering summary relative to the unpipelined baseline.
std::string render_ordering_summary(const ProblemParams& prob, const MachineParams& machine);

}  // namespace jmh::pipe
