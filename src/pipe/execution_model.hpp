// Whole-algorithm execution-time model: computation + communication.
//
// Figure 2 of the paper plots communication cost alone; the companion
// paper [9] chooses the pipelining degree to minimize *execution* time.
// Computation is invariant under pipelining (the same rotations happen,
// only packetized), so the communication-optimal Q is also
// execution-optimal under this model, and the interesting derived numbers
// are end-to-end speedups: how much of the eigensolver's runtime the
// ordering choice actually moves for a given flop rate.
//
// Work accounting: pairing columns (i, j) costs three m-element dot
// products plus two m-element plane rotations on B and on V -- about
// kOpsPerElementPair ~ 14 flops per row element. One sweep performs
// m(m-1)/2 pairings evenly spread over the 2^d nodes.
#pragma once

#include "pipe/cost_model.hpp"

namespace jmh::pipe {

struct ExecutionParams {
  MachineParams machine;
  /// Time per floating-point operation, in the same unit as ts/tw. The
  /// paper's fig. 2 uses Ts = 1000, Tw = 100 "time units"; t_flop ~ 1-10
  /// spans 1990s-realistic flop:word-transfer ratios.
  double t_flop = 1.0;
  double ops_per_element_pair = 14.0;
};

struct ExecutionReport {
  double compute = 0.0;
  double comm = 0.0;
  double total = 0.0;
  double comm_fraction = 0.0;
};

/// Per-sweep computation time of one node (the critical path: all nodes do
/// the same work per step).
double sweep_compute_time(const ProblemParams& prob, const ExecutionParams& exec);

/// One sweep of the distributed algorithm with ordering @p kind:
/// computation plus optimally-pipelined communication.
ExecutionReport sweep_execution(ord::OrderingKind kind, const ProblemParams& prob,
                                const ExecutionParams& exec);

/// One sweep with unpipelined communication (any BR-style ordering).
ExecutionReport sweep_execution_unpipelined(const ProblemParams& prob,
                                            const ExecutionParams& exec);

/// Sequential single-node sweep time (no communication): baseline for
/// parallel speedup.
double sequential_sweep_time(double m, const ExecutionParams& exec);

/// End-to-end parallel speedup of one sweep vs the sequential baseline.
double sweep_speedup(ord::OrderingKind kind, const ProblemParams& prob,
                     const ExecutionParams& exec);

}  // namespace jmh::pipe
