#include "pipe/execution_model.hpp"

namespace jmh::pipe {

double sweep_compute_time(const ProblemParams& prob, const ExecutionParams& exec) {
  // m(m-1)/2 pairings per sweep, spread over 2^d nodes; each pairing costs
  // ops_per_element_pair * m flops.
  const double pairings_per_node = prob.m * (prob.m - 1.0) / 2.0 / std::ldexp(1.0, prob.d);
  return pairings_per_node * exec.ops_per_element_pair * prob.m * exec.t_flop;
}

double sequential_sweep_time(double m, const ExecutionParams& exec) {
  return m * (m - 1.0) / 2.0 * exec.ops_per_element_pair * m * exec.t_flop;
}

ExecutionReport sweep_execution(ord::OrderingKind kind, const ProblemParams& prob,
                                const ExecutionParams& exec) {
  ExecutionReport r;
  r.compute = sweep_compute_time(prob, exec);
  r.comm = sweep_cost_pipelined(kind, prob, exec.machine).total;
  r.total = r.compute + r.comm;
  r.comm_fraction = r.comm / r.total;
  return r;
}

ExecutionReport sweep_execution_unpipelined(const ProblemParams& prob,
                                            const ExecutionParams& exec) {
  ExecutionReport r;
  r.compute = sweep_compute_time(prob, exec);
  r.comm = sweep_cost_unpipelined(prob, exec.machine);
  r.total = r.compute + r.comm;
  r.comm_fraction = r.comm / r.total;
  return r;
}

double sweep_speedup(ord::OrderingKind kind, const ProblemParams& prob,
                     const ExecutionParams& exec) {
  return sequential_sweep_time(prob.m, exec) / sweep_execution(kind, prob, exec).total;
}

}  // namespace jmh::pipe
