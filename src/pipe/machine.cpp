#include "pipe/machine.hpp"

#include <algorithm>
#include <cmath>

namespace jmh::pipe {

double comm_op_cost(const MachineParams& machine, int distinct, int max_mult, int total_mult,
                    double packet_elems) {
  JMH_REQUIRE(distinct >= 0 && max_mult >= 0 && total_mult >= max_mult, "bad multiplicities");
  JMH_REQUIRE(packet_elems >= 0.0, "negative packet size");
  if (distinct == 0) return 0.0;
  double serial_mult;
  if (machine.all_port()) {
    serial_mult = static_cast<double>(max_mult);
  } else if (machine.ports == 1) {
    serial_mult = static_cast<double>(total_mult);
  } else {
    JMH_REQUIRE(machine.ports > 0, "port count must be positive or kAllPort");
    serial_mult = std::max(static_cast<double>(max_mult),
                           std::ceil(static_cast<double>(total_mult) / machine.ports));
  }
  return distinct * machine.ts + serial_mult * packet_elems * machine.tw;
}

double transition_cost(const MachineParams& machine, double elems) {
  return comm_op_cost(machine, 1, 1, 1, elems);
}

}  // namespace jmh::pipe
