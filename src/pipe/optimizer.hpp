// Optimal pipelining-degree selection (paper ref. [9] section; summarized in
// paper section 2.4: "it is shown how to determine the pipelining degree
// that minimizes the execution time").
//
// We minimize the phase communication cost over Q in [1, q_max]:
//   * shallow candidates: a coarse-but-dense grid (all small Q, powers of
//     two, multiples of e, and K itself), each evaluated exactly via the
//     stage schedule;
//   * deep mode: cost(Q) = A + B*Q + C/Q exactly (prologue/epilogue fixed,
//     kernel linear in Q with 1/Q packet size), so the optimum is
//     Q* = sqrt(C/B), evaluated at the neighboring integers and clamped to
//     [K, q_max].
#pragma once

#include <cstdint>

#include "ord/ordering.hpp"
#include "ord/sequence.hpp"
#include "pipe/cost_model.hpp"
#include "pipe/machine.hpp"

namespace jmh::pipe {

struct OptimalQ {
  std::uint64_t q = 1;
  double cost = 0.0;
  bool deep = false;
};

/// Best pipelining degree for one exchange phase with sequence @p seq,
/// step message of @p step_elems elements, at most @p q_max packets.
OptimalQ find_optimal_q(const ord::LinkSequence& seq, double step_elems,
                        const MachineParams& machine, std::uint64_t q_max);

/// Same, for the idealized lower-bound sequence of phase e (see
/// phase_cost_ideal).
OptimalQ find_optimal_q_ideal(int e, double step_elems, const MachineParams& machine,
                              std::uint64_t q_max);

/// Single sweep-wide pipelining degree for an executor that packetizes every
/// exchange phase at the same q (solve_mpi_pipelined, the api facade's Auto
/// policy): the q in [1, q_max] minimizing the summed pipelined cost of all
/// exchange phases e = d..1 of @p ordering for the problem geometry in
/// @p prob (prob.d must match the ordering; prob.rows makes the payload
/// model rows-aware -- a tall task=svd transition carries
/// (rows + m) * cpb elements, not 2 * m * cpb). Candidates are each
/// phase's own find_optimal_q optimum plus a dense small-q / power-of-two
/// grid, every one evaluated exactly, so the returned q is the argmin of
/// the summed phase costs over that candidate set (exhaustive for
/// q_max <= 32). Cost is link-relabeling invariant, so the inter-sweep sigma
/// rotation does not change the choice. `cost` is the per-sweep exchange
/// communication time at the chosen q; `deep` means q exceeds the largest
/// phase's 2^d - 1 transitions.
OptimalQ find_optimal_sweep_q(const ord::JacobiOrdering& ordering, const ProblemParams& prob,
                              const MachineParams& machine, std::uint64_t q_max);

}  // namespace jmh::pipe
