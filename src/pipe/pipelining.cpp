#include "pipe/pipelining.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace jmh::pipe {

namespace {

// Incremental window-stat builder over a growing multiset of links.
class GrowingWindow {
 public:
  explicit GrowingWindow(int e) : count_(static_cast<std::size_t>(e), 0) {}

  void add(ord::Link l) {
    int& c = count_[static_cast<std::size_t>(l)];
    if (c == 0) ++distinct_;
    ++c;
    max_mult_ = std::max(max_mult_, c);
  }

  int distinct() const noexcept { return distinct_; }
  int max_mult() const noexcept { return max_mult_; }

 private:
  std::vector<int> count_;
  int distinct_ = 0;
  int max_mult_ = 0;
};

}  // namespace

PipelineSchedule::PipelineSchedule(const ord::LinkSequence& seq, std::uint64_t q) : q_(q) {
  JMH_REQUIRE(q >= 1, "pipelining degree must be >= 1");
  k_ = seq.size();
  const auto& links = seq.links();
  const std::uint64_t window = std::min(q_, k_);

  // Prologue: growing prefixes of length 1 .. window-1.
  stages_.reserve(static_cast<std::size_t>(2 * (window - 1)) + 4);
  {
    GrowingWindow w(seq.e());
    for (std::uint64_t j = 1; j < window; ++j) {
      w.add(links[static_cast<std::size_t>(j - 1)]);
      stages_.push_back({Stage::Part::Prologue, static_cast<int>(j), w.distinct(), w.max_mult()});
    }
  }

  if (!deep()) {
    // Kernel: K-Q+1 sliding windows of length Q.
    const auto ws = seq.window_stats(static_cast<std::size_t>(q_));
    for (const auto& s : ws)
      stages_.push_back({Stage::Part::Kernel, static_cast<int>(q_), s.distinct, s.max_mult});
  } else {
    // Deep: Q-K+1 stages, each sending one packet per element of D_e.
    const int distinct = [&] {
      GrowingWindow w(seq.e());
      for (ord::Link l : links) w.add(l);
      return w.distinct();
    }();
    const int alpha = seq.alpha();
    const std::uint64_t kernel_stages = q_ - k_ + 1;
    // All kernel stages are identical; store one per stage for uniform
    // accounting (kernel_stages is at most Q which the optimizer keeps
    // modest; cost evaluation uses the closed form instead when Q is huge).
    JMH_REQUIRE(kernel_stages <= (std::uint64_t{1} << 26),
                "deep schedule too large to materialize; use the cost model closed form");
    for (std::uint64_t i = 0; i < kernel_stages; ++i)
      stages_.push_back({Stage::Part::Kernel, static_cast<int>(k_), distinct, alpha});
  }

  // Epilogue: shrinking suffixes of length window-1 .. 1.
  {
    // Build suffix stats by growing from the right, then reverse.
    std::vector<Stage> epilogue;
    GrowingWindow w(seq.e());
    for (std::uint64_t j = 1; j < window; ++j) {
      w.add(links[static_cast<std::size_t>(k_ - j)]);
      epilogue.push_back({Stage::Part::Epilogue, static_cast<int>(j), w.distinct(), w.max_mult()});
    }
    stages_.insert(stages_.end(), epilogue.rbegin(), epilogue.rend());
  }

  JMH_CHECK(total_packets() == k_ * q_, "pipelined schedule must move exactly K*Q packets");
}

std::uint64_t PipelineSchedule::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : stages_) total += static_cast<std::uint64_t>(s.window_len);
  return total;
}

}  // namespace jmh::pipe
