#include "svc/plan_cache.hpp"

#include <utility>

namespace jmh::svc {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const api::SolvePlan> PlanCache::get(const api::SolverSpec& spec) {
  const std::string key = spec.to_string();

  if (capacity_ > 0) {
    std::lock_guard lock(mu_);
    if (auto it = map_.find(key); it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      return it->second.plan;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Compile outside the lock: a slow ordering search (MinAlpha backtracking)
  // must not serialize hits on unrelated keys.
  auto plan = std::make_shared<const api::SolvePlan>(api::Solver::plan(spec));
  if (capacity_ == 0) return plan;

  std::lock_guard lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    // Lost a cold-key race; keep the incumbent so every holder shares one plan.
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.plan;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{plan, lru_.begin()});
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  return plan;
}

std::shared_ptr<const api::SolvePlan> PlanCache::get(const std::string& spec_text) {
  return get(api::SolverSpec::parse(spec_text));
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

void PlanCache::clear() {
  std::lock_guard lock(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace jmh::svc
