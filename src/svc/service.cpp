#include "svc/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "exec/thread_pool.hpp"
#include "obs/trace.hpp"

namespace jmh::svc {

namespace {

std::size_t pick_workers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 2;
}

bool all_finite(const la::Matrix& a) {
  for (double v : a.data())
    if (!std::isfinite(v)) return false;
  return true;
}

// Chaos draws mirror the transport-layer fault schedule's stateless-hash
// construction (solve/fault_injection.cpp) without svc depending on solve/:
// one splitmix64 step over (seed, salt, job index) gives a replayable
// per-job uniform, identical across runs and worker interleavings.
constexpr std::uint64_t kStallSalt = 0x7374616c6c212121ull;  // "stall!!!"
constexpr std::uint64_t kStormSalt = 0x73746f726d212121ull;  // "storm!!!"

double chaos_uniform(std::uint64_t seed, std::uint64_t salt, std::uint64_t index) {
  std::uint64_t state = seed ^ salt;
  state += index * 0xbf58476d1ce4e5b9ull;
  return static_cast<double>(splitmix64_next(state) >> 11) * 0x1.0p-53;
}

}  // namespace

std::string Metrics::summary() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof line,
                "service  : %zu workers, queue %zu/%zu (high water %zu)\n", workers,
                queue_depth, queue_capacity, queue_high_water);
  out += line;
  std::snprintf(line, sizeof line,
                "jobs     : %llu submitted, %llu done, %llu failed, %llu coalesced batches\n",
                static_cast<unsigned long long>(jobs_submitted),
                static_cast<unsigned long long>(jobs_done),
                static_cast<unsigned long long>(jobs_failed),
                static_cast<unsigned long long>(batches));
  out += line;
  if (jobs_deadline + jobs_cancelled + jobs_corrupt + jobs_invalid + jobs_shed + retries > 0) {
    std::snprintf(line, sizeof line,
                  "faults   : %llu deadline, %llu cancelled, %llu corrupt, %llu invalid, "
                  "%llu shed, %llu retries\n",
                  static_cast<unsigned long long>(jobs_deadline),
                  static_cast<unsigned long long>(jobs_cancelled),
                  static_cast<unsigned long long>(jobs_corrupt),
                  static_cast<unsigned long long>(jobs_invalid),
                  static_cast<unsigned long long>(jobs_shed),
                  static_cast<unsigned long long>(retries));
    out += line;
  }
  if (chaos_stalls + chaos_storms > 0) {
    std::snprintf(line, sizeof line, "chaos    : %llu stalls, %llu deadline storms\n",
                  static_cast<unsigned long long>(chaos_stalls),
                  static_cast<unsigned long long>(chaos_storms));
    out += line;
  }
  std::snprintf(line, sizeof line, "plans    : %llu cache hits, %llu misses\n",
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses));
  out += line;
  std::snprintf(line, sizeof line,
                "latency  : mean %.3fms  p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms "
                "(%llu jobs)\n",
                1e3 * latency_mean_s, 1e3 * latency_p50_s, 1e3 * latency_p90_s,
                1e3 * latency_p99_s, 1e3 * latency_max_s,
                static_cast<unsigned long long>(latency_count));
  out += line;
  if (!worker_busy_s.empty()) {
    double total = 0.0, peak = 0.0;
    for (double s : worker_busy_s) {
      total += s;
      peak = std::max(peak, s);
    }
    std::snprintf(line, sizeof line,
                  "dispatch : %zu dispatchers busy %.3fs total (max %.3fs)\n",
                  worker_busy_s.size(), total, peak);
    out += line;
  }
  if (pool_workers > 0) {
    double total = 0.0, peak = 0.0;
    for (double s : pool_busy_s) {
      total += s;
      peak = std::max(peak, s);
    }
    std::snprintf(line, sizeof line,
                  "exec pool: %zu workers, queue high water %zu, busy %.3fs total (max %.3fs)\n",
                  pool_workers, pool_queue_high_water, total, peak);
    out += line;
  }
  return out;
}

SolverService::SolverService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      queue_(config.queue_capacity),
      obs_submitted_(obs::Registry::global().counter("svc.jobs_submitted")),
      obs_done_(obs::Registry::global().counter("svc.jobs_done")),
      obs_failed_(obs::Registry::global().counter("svc.jobs_failed")),
      obs_deadline_(obs::Registry::global().counter("svc.jobs_deadline")),
      obs_cancelled_(obs::Registry::global().counter("svc.jobs_cancelled")),
      obs_corrupt_(obs::Registry::global().counter("svc.jobs_corrupt")),
      obs_invalid_(obs::Registry::global().counter("svc.jobs_invalid")),
      obs_shed_(obs::Registry::global().counter("svc.jobs_shed")),
      obs_retries_(obs::Registry::global().counter("svc.retries")),
      obs_chaos_stalls_(obs::Registry::global().counter("svc.chaos_stalls")),
      obs_chaos_storms_(obs::Registry::global().counter("svc.chaos_storms")),
      obs_latency_ns_(obs::Registry::global().histogram("svc.latency_ns")) {
  config_.workers = pick_workers(config.workers);
  config_.max_coalesce = std::max<std::size_t>(1, config_.max_coalesce);
  if (config_.pool_threads > 0 && exec::ThreadPool::enabled())
    exec::ThreadPool::global().ensure_workers(config_.pool_threads);
  workers_.reserve(config_.workers);
  worker_busy_ns_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    worker_busy_ns_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

SolverService::~SolverService() { shutdown(); }

std::future<api::SolveReport> SolverService::submit(std::string spec_text, la::Matrix a,
                                                    SubmitOptions opts) {
  Job job{std::move(spec_text), std::move(a), {}, {}, {}, false};
  if (opts.deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(opts.deadline_ms);
  }
  std::future<api::SolveReport> future = job.result.get_future();
  // No lock: a submitted_ increment only makes the drain predicate HARDER,
  // so it cannot be the update a sleeping drain() missed.
  submitted_.fetch_add(1);
  obs_submitted_.add(1);
  // Garbage in is rejected at the door, not after a full solve churned on
  // it: NaN/Inf anywhere in the input can never produce a meaningful
  // spectrum (every quantity funnels through sums that NaN poisons).
  if (!all_finite(job.matrix)) {
    fail_job(job, api::SolveStatus::InvalidInput, "input matrix has non-finite entries");
    return future;
  }
  if (!queue_.push(job)) {
    // Closed: the job never entered the queue; fail it here. Fulfill the
    // promise BEFORE counting the failure (the worker's order too), so
    // drain() returning implies every future is ready.
    fail_job(job, api::SolveStatus::Shed, "SolverService is shut down");
  }
  return future;
}

std::optional<std::future<api::SolveReport>> SolverService::try_submit(std::string spec_text,
                                                                       la::Matrix a,
                                                                       SubmitOptions opts) {
  Job job{std::move(spec_text), std::move(a), {}, {}, {}, false};
  if (opts.deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(opts.deadline_ms);
  }
  std::future<api::SolveReport> future = job.result.get_future();
  submitted_.fetch_add(1);
  if (!all_finite(job.matrix)) {
    obs_submitted_.add(1);
    fail_job(job, api::SolveStatus::InvalidInput, "input matrix has non-finite entries");
    return future;
  }
  if (!queue_.try_push(job)) {
    shed_.fetch_add(1);
    obs_shed_.add(1);
    submitted_.fetch_sub(1);  // shed before admission: not part of the drain set
    // The decrement can SATISFY drain()'s predicate, so pair it with the
    // empty-lock handshake (see state_mu_ doc) before notifying.
    { std::lock_guard lock(state_mu_); }
    idle_cv_.notify_all();  // the drain predicate just got easier to meet
    return std::nullopt;
  }
  obs_submitted_.add(1);  // mirror counts only jobs that entered the drain set
  return future;
}

void SolverService::drain() {
  std::unique_lock lock(state_mu_);
  idle_cv_.wait(lock, [&] { return done_ + failed_ >= submitted_; });
}

void SolverService::shutdown() {
  {
    std::lock_guard lock(state_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.close();  // workers drain the remainder, then exit
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void SolverService::shutdown_now() {
  // Order matters: killed_ first (workers popping after this point fail
  // their group instead of solving), then the token (in-flight solves stop
  // at their next sweep boundary), then the drain/join machinery.
  killed_.store(true, std::memory_order_relaxed);
  run_token_.cancel(common::CancelReason::Cancelled);
  shutdown();
}

void SolverService::record_done(double latency_s) {
  done_.fetch_add(1);
  obs_done_.add(1);
  obs_latency_ns_.observe(static_cast<std::uint64_t>(latency_s * 1e9));
  {
    std::lock_guard lock(state_mu_);
    latency_stats_.add(latency_s);
    // Quantiles come from a bounded ring of recent completions, so a
    // long-running service neither grows without bound nor sorts its whole
    // history per metrics() call.
    if (latency_window_.size() < kLatencyWindow) {
      latency_window_.push_back(latency_s);
    } else {
      latency_window_[latency_next_] = latency_s;
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    }
  }
  idle_cv_.notify_all();
}

void SolverService::record_failed(api::SolveStatus status) {
  // failed_ BEFORE the taxonomy bucket -- metrics() reads the buckets
  // first, so sum(buckets) <= failed_ holds in every snapshot.
  failed_.fetch_add(1);
  obs_failed_.add(1);
  switch (status) {
    case api::SolveStatus::DeadlineExceeded:
      deadline_.fetch_add(1);
      obs_deadline_.add(1);
      break;
    case api::SolveStatus::Cancelled:
      cancelled_.fetch_add(1);
      obs_cancelled_.add(1);
      break;
    case api::SolveStatus::TransportCorrupt:
      corrupt_.fetch_add(1);
      obs_corrupt_.add(1);
      break;
    case api::SolveStatus::InvalidInput:
      invalid_.fetch_add(1);
      obs_invalid_.add(1);
      break;
    case api::SolveStatus::Shed:
      shed_.fetch_add(1);
      obs_shed_.add(1);
      break;
    case api::SolveStatus::Ok:
    case api::SolveStatus::Internal: break;
  }
  // Empty-lock handshake: drain() checks its predicate under state_mu_, so
  // acquiring-and-releasing it here orders this increment before the notify
  // reaches any sleeper (no lost wakeup).
  { std::lock_guard lock(state_mu_); }
  idle_cv_.notify_all();
}

void SolverService::fail_job(Job& job, api::SolveStatus status, const std::string& what) {
  job.result.set_exception(std::make_exception_ptr(api::SolveError(status, what)));
  record_failed(status);
}

void SolverService::worker_loop(std::size_t index) {
  std::vector<Job> group;
  std::vector<Job> expired;
  for (;;) {
    const std::size_t taken = queue_.pop_group(group, config_.max_coalesce, &expired);
    if (taken == 0 && expired.empty()) break;  // closed and drained
    const auto group_start = std::chrono::steady_clock::now();
    struct BusyRecorder {
      std::atomic<std::uint64_t>& ns;
      std::chrono::steady_clock::time_point start;
      ~BusyRecorder() {
        ns.fetch_add(static_cast<std::uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count()),
                     std::memory_order_relaxed);
      }
    } busy{*worker_busy_ns_[index], group_start};
    // Jobs whose deadline lapsed while queued are shed, never solved:
    // under overload the queue sheds instead of compounding the backlog
    // with answers nobody is waiting for anymore.
    for (Job& job : expired)
      fail_job(job, api::SolveStatus::DeadlineExceeded, "deadline expired while queued");
    if (group.empty()) continue;
    if (killed_.load(std::memory_order_relaxed)) {
      // shutdown_now: admitted-but-unstarted jobs fail fast.
      for (Job& job : group)
        fail_job(job, api::SolveStatus::Cancelled, "SolverService::shutdown_now");
      continue;
    }
    std::shared_ptr<const api::SolvePlan> plan;
    try {
      plan = cache_.get(group.front().spec);  // one resolution per group
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (Job& job : group) {
        job.result.set_exception(error);
        record_failed(api::SolveStatus::InvalidInput);
      }
      continue;
    }
    if (group.size() > 1) batches_.fetch_add(1);
    solve_group(group, *plan, chaos_index_.fetch_add(group.size(), std::memory_order_relaxed));
  }
}

void SolverService::solve_group(std::vector<Job>& group, const api::SolvePlan& plan,
                                std::uint64_t first_chaos_index) {
  // The coalesced run executes as a sequential batch on this worker --
  // the pool provides the parallelism; per-matrix numerics are exactly
  // plan.solve, so results are bit-identical to direct calls.
  //
  // trace=1 specs arm the recorder for the whole group so the serving-plane
  // spans below (queue wait, coalescing, the solve envelope, retries) land
  // next to the solve's own sweep/comm spans; trace=0 leaves everything at
  // one relaxed load per gate.
  const obs::ArmScope arm(plan.spec().trace);
  if (obs::trace_armed() && group.size() > 1)
    obs::trace_record("svc.coalesce", obs::Category::kSvc, obs::trace_now_ns(), 0,
                      group.size());
  const ChaosConfig& chaos = config_.chaos;
  for (std::size_t i = 0; i < group.size(); ++i) {
    Job& job = group[i];
    const std::uint64_t chaos_idx = first_chaos_index + i;
    // Queue wait ends here, as solving starts; the span's start is the
    // admission timestamp, so traces show the job's full queue residency.
    const auto solve_start = std::chrono::steady_clock::now();
    const std::uint64_t queue_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(solve_start - job.enqueued_at)
            .count());
    if (obs::trace_armed())
      obs::trace_record("svc.queue_wait", obs::Category::kQueue,
                        obs::trace_time_ns(job.enqueued_at), queue_ns, chaos_idx);
    // The token stays INERT unless something can actually fire it: an armed
    // token widens every convergence vote by a flag slot, and plain service
    // jobs must stay bit-identical to direct plan.solve calls (comm
    // counters included). Armed jobs chain under run_token_, so
    // shutdown_now() also aborts them mid-solve.
    common::CancelToken token;
    if (job.has_deadline) token = run_token_.with_deadline(job.deadline);
    if (chaos.seed != 0) {
      if (chaos_uniform(chaos.seed, kStallSalt, chaos_idx) < chaos.stall_rate) {
        chaos_stalls_.fetch_add(1);
        obs_chaos_stalls_.add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(chaos.stall_ms));
      }
      if (chaos_uniform(chaos.seed, kStormSalt, chaos_idx) < chaos.storm_rate) {
        chaos_storms_.fetch_add(1);
        obs_chaos_storms_.add(1);
        token = (token.armed() ? token : run_token_)
                    .with_timeout(std::chrono::milliseconds(chaos.storm_deadline_ms));
      }
    }
    // Retry loop: only RETRYABLE statuses (transport corruption) re-run;
    // each attempt re-keys the fault schedule so an injected corruption is
    // not deterministically re-hit.
    for (std::uint64_t attempt = 0;; ++attempt) {
      try {
        api::SolveReport report = [&] {
          // The serving-plane envelope around one attempt (arg = attempt):
          // the gap between svc.solve and the sweep spans inside it is
          // plan-cache + dispatch overhead, visible at a glance in a trace.
          const obs::SpanScope solve_span("svc.solve", obs::Category::kSvc, attempt);
          return plan.solve(job.matrix, {.cancel = token, .fault_attempt = attempt});
        }();
        report.timings.queue_ns = queue_ns;
        report.timings.retries = attempt;
        const double latency_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - job.enqueued_at)
                .count();
        job.result.set_value(std::move(report));
        record_done(latency_s);
        break;
      } catch (const api::SolveError& e) {
        if (e.retryable() && attempt < config_.max_retries) {
          retries_.fetch_add(1);
          obs_retries_.add(1);
          if (obs::trace_armed())
            obs::trace_record("svc.retry", obs::Category::kSvc, obs::trace_now_ns(), 0,
                              attempt + 1);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(config_.retry_backoff_ms << attempt));
          continue;
        }
        job.result.set_exception(std::current_exception());
        record_failed(e.status());
        break;
      } catch (const std::invalid_argument&) {
        // Spec/shape validation errors pass through verbatim (the submit
        // contract); counted as invalid input.
        job.result.set_exception(std::current_exception());
        record_failed(api::SolveStatus::InvalidInput);
        break;
      } catch (const std::exception& e) {
        // The no-untyped-escapes boundary: anything else is a bug in the
        // layers below, surfaced as INTERNAL rather than a raw type the
        // caller cannot classify.
        job.result.set_exception(
            std::make_exception_ptr(api::SolveError(api::SolveStatus::Internal, e.what())));
        record_failed(api::SolveStatus::Internal);
        break;
      }
    }
  }
}

Metrics SolverService::metrics() const {
  Metrics m;
  // Read order carries the snapshot invariants (see the Metrics doc):
  // taxonomy buckets first (each bumped AFTER failed_, so buckets here can
  // only undercount failed_), then failed_, then done_, then submitted_
  // last (bumped BEFORE any completion, so it can only overcount them).
  m.jobs_deadline = deadline_;
  m.jobs_cancelled = cancelled_;
  m.jobs_corrupt = corrupt_;
  m.jobs_invalid = invalid_;
  m.jobs_shed = shed_;
  m.retries = retries_;
  m.chaos_stalls = chaos_stalls_;
  m.chaos_storms = chaos_storms_;
  m.batches = batches_;
  m.jobs_failed = failed_;
  m.jobs_done = done_;
  m.jobs_submitted = submitted_;
  std::vector<double> window;
  {
    std::lock_guard lock(state_mu_);
    m.latency_count = latency_stats_.count();
    m.latency_mean_s = latency_stats_.count() > 0 ? latency_stats_.mean() : 0.0;
    m.latency_max_s = latency_stats_.count() > 0 ? latency_stats_.max() : 0.0;
    window = latency_window_;  // bounded copy; sort outside the lock
  }
  m.latency_p50_s = quantile_of(window, 0.50);
  m.latency_p90_s = quantile_of(window, 0.90);
  m.latency_p99_s = quantile_of(window, 0.99);
  m.cache_hits = cache_.hits();
  m.cache_misses = cache_.misses();
  m.queue_depth = queue_.size();
  m.queue_high_water = queue_.high_water();
  m.queue_capacity = queue_.capacity();
  m.workers = config_.workers;
  m.worker_busy_s.reserve(worker_busy_ns_.size());
  for (const auto& ns : worker_busy_ns_)
    m.worker_busy_s.push_back(1e-9 * static_cast<double>(ns->load(std::memory_order_relaxed)));
  if (exec::ThreadPool::enabled()) {
    const exec::ThreadPool& pool = exec::ThreadPool::global();
    m.pool_workers = pool.workers();
    m.pool_queue_high_water = pool.queue_high_water();
    m.pool_busy_s = pool.worker_busy_seconds();
  }
  return m;
}

std::vector<api::SolveReport> solve_batch_parallel(const api::SolvePlan& plan,
                                                   const std::vector<la::Matrix>& as,
                                                   std::size_t workers) {
  std::vector<api::SolveReport> reports(as.size());
  if (as.empty()) return reports;
  const std::size_t pool = std::min(pick_workers(workers), as.size());

  // Error semantics must not depend on the pool size (the auto pick varies
  // by machine): every matrix is attempted, and the exception rethrown is
  // the LOWEST-INDEX failure, not whichever finished first in wall-clock.
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = as.size();
  auto solve_one = [&](std::size_t i) {
    try {
      reports[i] = plan.solve(as[i]);
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (i < first_error_index) {
        first_error_index = i;
        first_error = std::current_exception();
      }
    }
  };

  if (pool <= 1) {
    for (std::size_t i = 0; i < as.size(); ++i) solve_one(i);
  } else if (exec::ThreadPool::enabled()) {
    // pool executors total: the caller plus pool-1 runner tasks on the
    // shared exec pool. Runners drain a shared index, so a late-starting
    // runner (busy pool) just finds the index exhausted and no-ops -- the
    // caller's own run() guarantees every matrix is attempted even if no
    // pool worker ever frees up. Helping wait makes nested batches (a
    // batch item submitting a batch) safe.
    std::atomic<std::size_t> next{0};
    auto run = [&] {
      for (std::size_t i = next.fetch_add(1); i < as.size(); i = next.fetch_add(1))
        solve_one(i);
    };
    exec::ThreadPool::TaskGroup group = exec::ThreadPool::global().group();
    for (std::size_t t = 0; t < pool - 1; ++t) group.add(run);
    run();
    group.wait();
  } else {
    std::atomic<std::size_t> next{0};
    auto run = [&] {
      for (std::size_t i = next.fetch_add(1); i < as.size(); i = next.fetch_add(1))
        solve_one(i);
    };
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(run);
    for (std::thread& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return reports;
}

}  // namespace jmh::svc
