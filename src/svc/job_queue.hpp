// JobQueue: a bounded MPMC queue of solve jobs with backpressure.
//
// The unit of work is a Job: a spec string naming the scenario, the input
// matrix, and the promise through which the worker delivers the
// api::SolveReport. Producers choose their backpressure discipline --
// push() blocks while the queue is full (admission control by waiting),
// try_push() returns false instead (admission control by shedding).
// Consumers pop one job, or a front run of same-spec jobs via pop_group()
// so the service can coalesce them into one plan resolution / batch call.
//
// close() starts shutdown: no new jobs are admitted, but consumers keep
// draining until the queue is empty, so every admitted promise is
// fulfilled. All operations are thread-safe; FIFO order is preserved
// (pop_group only ever takes a contiguous run from the front).
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "api/report.hpp"
#include "la/matrix.hpp"

namespace jmh::svc {

/// One unit of service work.
struct Job {
  std::string spec;                        ///< scenario as a spec string
  la::Matrix matrix;                       ///< input (square, order spec.m)
  std::promise<api::SolveReport> result;   ///< fulfilled by the worker
  std::chrono::steady_clock::time_point enqueued_at{};  ///< set on admission
  /// End-to-end deadline (queue wait + solve), set at submission when the
  /// producer passed SubmitOptions::deadline_ms. Expired jobs are shed by
  /// pop_group before dispatch and fail with SolveStatus::DeadlineExceeded.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
};

class JobQueue {
 public:
  /// @p capacity >= 1: max jobs resident before producers block / shed.
  explicit JobQueue(std::size_t capacity);

  /// Admits @p job, blocking while the queue is full. Returns false (and
  /// leaves @p job untouched) iff the queue is closed.
  bool push(Job& job);

  /// Non-blocking admission. Returns false (and leaves @p job untouched)
  /// when the queue is full or closed.
  bool try_push(Job& job);

  /// Pops the front job, blocking while the queue is empty and open.
  /// Returns false iff the queue is closed and fully drained.
  bool pop(Job& out);

  /// Pops the front job plus up to @p max_jobs - 1 immediately following
  /// jobs with the SAME spec string (a coalescable run) into @p out, which
  /// is cleared first. Blocks like pop; returns the number of jobs taken.
  ///
  /// When @p expired is non-null it is cleared and any front jobs whose
  /// deadline has already passed are shed into it (they never form part of
  /// the group); the caller fails them without solving. The call may then
  /// return 0 with a non-empty @p expired -- only `returns 0 AND expired
  /// empty` means closed-and-drained.
  std::size_t pop_group(std::vector<Job>& out, std::size_t max_jobs,
                        std::vector<Job>* expired = nullptr);

  /// Stops admission; consumers drain the remainder. Idempotent.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  /// Max size() ever observed at admission time.
  std::size_t high_water() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Job> jobs_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace jmh::svc
