// PlanCache: an LRU cache of compiled SolvePlans keyed by the canonical
// SolverSpec::to_string() form.
//
// Solver::plan is the expensive half of the facade (ordering sequence
// search, sweep schedule, auto pipelining optimization); plans are immutable
// and thread-shareable by design. The cache lets every consumer that names
// scenarios as spec strings -- the service, the CLI-driven workload driver,
// batch replays -- pay that compilation once per distinct scenario:
//
//   PlanCache cache(64);
//   auto plan = cache.get("backend=inline,ordering=minalpha,m=64,d=3");
//   plan->solve(a);   // plan is shared_ptr<const SolvePlan>: hold it as
//                     // long as needed, eviction cannot invalidate it
//
// Keys are canonicalized through SolverSpec::parse + to_string, so
// "m=16,d=2" and "d=2, m=16" (and any default-spelled variant) hit the same
// entry. Thread-safe; plan compilation runs OUTSIDE the lock, so a slow
// MinAlpha search cannot stall readers of other entries (two threads racing
// on the same cold key may both compile -- the loser's plan is dropped and
// both get the winner's entry).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/solver.hpp"

namespace jmh::svc {

class PlanCache {
 public:
  /// @p capacity = max resident plans; 0 disables caching (every get
  /// compiles a fresh plan and counts a miss).
  explicit PlanCache(std::size_t capacity);

  /// The cached plan for @p spec, compiling and inserting on miss.
  /// The returned pointer stays valid after eviction.
  std::shared_ptr<const api::SolvePlan> get(const api::SolverSpec& spec);

  /// Parses @p spec_text and resolves as above. Throws std::invalid_argument
  /// on malformed text or infeasible specs (nothing is cached for them).
  std::shared_ptr<const api::SolvePlan> get(const std::string& spec_text);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }

  void clear();

 private:
  struct Entry {
    std::shared_ptr<const api::SolvePlan> plan;
    std::list<std::string>::iterator pos;  ///< position in lru_ (front = hottest)
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace jmh::svc
