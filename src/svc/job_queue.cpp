#include "svc/job_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/alloc_guard.hpp"
#include "common/assert.hpp"

namespace jmh::svc {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  JMH_REQUIRE(capacity >= 1, "JobQueue needs capacity >= 1");
}

bool JobQueue::push(Job& job) {
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [&] { return closed_ || jobs_.size() < capacity_; });
  if (closed_) return false;
  job.enqueued_at = std::chrono::steady_clock::now();
  jobs_.push_back(std::move(job));
  high_water_ = std::max(high_water_, jobs_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool JobQueue::try_push(Job& job) {
  {
    std::lock_guard lock(mu_);
    if (closed_ || jobs_.size() >= capacity_) return false;
    job.enqueued_at = std::chrono::steady_clock::now();
    jobs_.push_back(std::move(job));
    high_water_ = std::max(high_water_, jobs_.size());
  }
  not_empty_.notify_one();
  return true;
}

bool JobQueue::pop(Job& out) {
  std::unique_lock lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return false;  // closed and drained
  out = std::move(jobs_.front());
  jobs_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

std::size_t JobQueue::pop_group(std::vector<Job>& out, std::size_t max_jobs,
                                std::vector<Job>* expired) {
  out.clear();
  if (expired != nullptr) expired->clear();
  JMH_REQUIRE(max_jobs >= 1, "pop_group needs max_jobs >= 1");
  // Once the caller's group vector has warmed to max_jobs capacity (the
  // dispatcher reuses one vector for its whole life), taking a group is
  // pure moves: no growth, no per-job allocation. Audited in JMH_DASSERT
  // builds; the warm-up calls (capacity still growing) and calls that shed
  // expired jobs (the expired vector may grow) are not.
  const common::AllocGuard pop_guard;
  const bool warmed = out.capacity() >= max_jobs;
  std::unique_lock lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return 0;  // closed and drained
  bool shed = false;
  if (expired != nullptr) {
    const auto now = std::chrono::steady_clock::now();
    while (!jobs_.empty() && jobs_.front().has_deadline && jobs_.front().deadline <= now) {
      expired->push_back(std::move(jobs_.front()));
      jobs_.pop_front();
      shed = true;
    }
    if (jobs_.empty()) {
      lock.unlock();
      not_full_.notify_all();
      return 0;  // expired carries the shed run; NOT closed-and-drained
    }
  }
  out.push_back(std::move(jobs_.front()));
  jobs_.pop_front();
  while (out.size() < max_jobs && !jobs_.empty() && jobs_.front().spec == out.front().spec) {
    out.push_back(std::move(jobs_.front()));
    jobs_.pop_front();
  }
  lock.unlock();
  not_full_.notify_all();  // a group frees several slots
  if (warmed && !shed)
    JMH_ALLOC_ASSERT_ZERO(pop_guard, "JobQueue::pop_group allocated in steady state");
  return out.size();
}

void JobQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard lock(mu_);
  return jobs_.size();
}

std::size_t JobQueue::high_water() const {
  std::lock_guard lock(mu_);
  return high_water_;
}

}  // namespace jmh::svc
