// SolverService: the serving layer -- a worker pool over a bounded JobQueue
// with a shared PlanCache, turning the facade's one-at-a-time SolvePlan
// into a concurrent throughput system.
//
//   svc::SolverService service({.workers = 4});
//   auto f = service.submit("backend=inline,ordering=d4,m=32,d=2", a);
//   api::SolveReport r = f.get();         // bit-identical to plan.solve(a)
//   service.metrics();                    // jobs, cache hits, latency p99
//
// Design:
//  - submit() parses nothing and blocks only on queue backpressure; the
//    worker resolves the spec through the PlanCache (canonicalized key), so
//    repeated scenarios skip ordering search and plan compilation.
//  - Workers pull with JobQueue::pop_group, so a front run of same-spec
//    jobs is coalesced: one cache resolution, one sequential batch over the
//    run (the pool itself is the parallelism -- per-matrix numerics are
//    exactly plan.solve, so service results are bit-identical to direct
//    calls).
//  - The dispatchers are dedicated threads (they block indefinitely in
//    JobQueue::pop_group, so parking them on the shared pool would starve
//    it), but all COMPUTE they trigger -- mpi-lite rank gangs inside
//    plan.solve, batch runner tasks in solve_batch_parallel -- draws from
//    the one process-wide exec::ThreadPool, so concurrent jobs interleave
//    on a fixed worker set instead of multiplying threads.
//  - Errors (malformed specs, infeasible plans, solve failures) surface
//    through the job's future; the service itself keeps running.
//  - shutdown() closes admission, drains every admitted job, and joins the
//    pool; the destructor calls it. drain() waits for quiescence without
//    stopping the service.
//
// svc sits ABOVE api in the layer graph (svc -> api). The one sanctioned
// upward call is api::SolvePlan::solve_batch delegating to
// svc::solve_batch_parallel (mirroring the solve/ -> api legacy bridge), so
// batch solves inherit the pool parallelism without api knowing the
// service's internals.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/stats.hpp"
#include "obs/registry.hpp"
#include "svc/job_queue.hpp"
#include "svc/plan_cache.hpp"

namespace jmh::svc {

/// Deterministic service-level chaos (seed == 0 disables). Chaos is pure
/// service-plane interference -- stalled dispatchers and deadline storms --
/// decided per job by a seeded stateless hash, so a chaos run replays
/// exactly. Transport-plane faults (corruption, vote failures) live in the
/// spec's faults= key instead.
struct ChaosConfig {
  std::uint64_t seed = 0;
  double stall_rate = 0.05;        ///< P(dispatcher sleeps before a solve)
  std::uint64_t stall_ms = 20;     ///< stall length
  double storm_rate = 0.05;        ///< P(job gets a surprise tight deadline)
  std::uint64_t storm_deadline_ms = 1;  ///< the storm's imposed deadline
};

struct ServiceConfig {
  std::size_t workers = 0;         ///< worker threads; 0 = hardware pick
  std::size_t queue_capacity = 256;
  std::size_t cache_capacity = 64; ///< resident compiled plans (LRU)
  /// Max same-spec jobs one worker coalesces into a single plan resolution
  /// + batch execution (1 = no coalescing).
  std::size_t max_coalesce = 1;
  /// Best-effort resize of the process-wide exec::ThreadPool at service
  /// construction (0 = leave it alone). Applies only when the pool is fully
  /// idle -- the first configurator wins, mid-traffic requests are ignored
  /// (exec::ThreadPool::ensure_workers semantics).
  std::size_t pool_threads = 0;
  /// Retries for RETRYABLE failures (transport corruption) before the job's
  /// future fails. Each retry re-runs the full solve with the fault
  /// schedule's attempt counter bumped, after an exponential backoff.
  std::size_t max_retries = 2;
  std::uint64_t retry_backoff_ms = 1;  ///< first backoff; doubles per retry
  ChaosConfig chaos{};
};

/// A point-in-time counters snapshot. Latency covers queue wait + solve,
/// in seconds; count/mean/max are exact over every job finished so far,
/// quantiles are computed over a bounded window of recent completions
/// (the last SolverService::kLatencyWindow jobs), so a long-running
/// service neither grows without bound nor stalls on snapshot.
///
/// Snapshot consistency: the counters are lock-free atomics, so a snapshot
/// taken mid-traffic is not a single instant -- but the WRITE order (failed
/// before its taxonomy bucket; submitted before any completion) and the
/// READ order (taxonomy, then failed, then done, then submitted) are fixed
/// so that every snapshot satisfies
///   jobs_deadline + jobs_cancelled + jobs_corrupt + jobs_invalid <= jobs_failed
///   jobs_done + jobs_failed <= jobs_submitted
/// (jobs_shed also counts try_submit rejections, which never enter the
/// failed set, so it stays outside the first inequality). Machine-checked
/// under TSan by tests/test_svc_metrics_snapshot.cpp.
struct Metrics {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_done = 0;     ///< fulfilled with a report
  std::uint64_t jobs_failed = 0;   ///< fulfilled with an exception
  std::uint64_t batches = 0;       ///< coalesced groups of >= 2 jobs executed
  /// Failure taxonomy (each failed job increments exactly one of these;
  /// jobs_shed additionally counts try_submit rejections, which never enter
  /// the failed set).
  std::uint64_t jobs_deadline = 0;   ///< DEADLINE_EXCEEDED (queue or solve)
  std::uint64_t jobs_cancelled = 0;  ///< CANCELLED (shutdown_now mid-flight)
  std::uint64_t jobs_corrupt = 0;    ///< TRANSPORT_CORRUPT after retries
  std::uint64_t jobs_invalid = 0;    ///< INVALID_INPUT / malformed specs
  std::uint64_t jobs_shed = 0;       ///< queue-full sheds + post-shutdown submits
  std::uint64_t retries = 0;         ///< solve re-runs after retryable faults
  std::uint64_t chaos_stalls = 0;    ///< injected dispatcher stalls
  std::uint64_t chaos_storms = 0;    ///< injected surprise deadlines
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
  std::uint64_t latency_count = 0;
  double latency_mean_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;

  /// Seconds each service dispatcher has spent executing job groups
  /// (index = dispatcher). Oversubscription vs interleaving shows up here:
  /// with the shared exec pool, dispatcher busy time is mostly waiting on
  /// pool-executed solves, and the pool columns below carry the real load.
  std::vector<double> worker_busy_s;
  /// Process-wide exec::ThreadPool observability (zeroes when the pool is
  /// disabled via JMH_EXEC_POOL=off).
  std::size_t pool_workers = 0;
  std::size_t pool_queue_high_water = 0;
  std::vector<double> pool_busy_s;  ///< per-pool-worker busy seconds

  /// Human-readable multi-line rendering (the driver's report section).
  std::string summary() const;
};

/// Per-submission options (the spec string carries the scenario; these are
/// per-call serving knobs).
struct SubmitOptions {
  /// End-to-end deadline in ms from submission, covering queue wait AND the
  /// solve (0 = none). Expired-in-queue jobs are shed without solving; a
  /// deadline that fires mid-solve cancels it at the next sweep boundary.
  /// Either way the future throws api::SolveError{DeadlineExceeded}.
  std::uint64_t deadline_ms = 0;
};

class SolverService {
 public:
  explicit SolverService(ServiceConfig config = {});

  /// shutdown(): drains admitted jobs, then joins the pool.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues one solve, blocking while the queue is full (backpressure).
  /// After shutdown the returned future holds api::SolveError{Shed} (a
  /// std::runtime_error). A non-finite @p a fails immediately with
  /// api::SolveError{InvalidInput} -- it never enters the queue.
  /// Spec validation happens on the worker: a malformed @p spec_text
  /// surfaces as std::invalid_argument through the future.
  std::future<api::SolveReport> submit(std::string spec_text, la::Matrix a,
                                       SubmitOptions opts = {});

  /// Non-blocking submit: std::nullopt when the queue is full or the
  /// service is shut down (load shedding). Non-finite inputs still return
  /// a future (already failed with InvalidInput): the input was examined,
  /// not shed.
  std::optional<std::future<api::SolveReport>> try_submit(std::string spec_text, la::Matrix a,
                                                          SubmitOptions opts = {});

  /// Blocks until every job submitted so far has been fulfilled. The
  /// service keeps accepting new work (call shutdown() to stop it).
  void drain();

  /// Closes admission, drains the queue, joins workers. Idempotent.
  /// Every ADMITTED job is still solved (graceful).
  void shutdown();

  /// Emergency stop: closes admission, cancels the service-wide token, and
  /// fails every still-queued job with api::SolveError{Cancelled} WITHOUT
  /// solving it. In-flight solves with an ARMED token (a deadline or a
  /// chaos storm) abort at their next sweep boundary with CANCELLED;
  /// deadline-less in-flight solves finish their current run (an inert
  /// token costs nothing and keeps plain jobs bit-identical to direct
  /// solves, so there is nothing to fire for them). Idempotent with
  /// shutdown(); whichever runs first decides the queued jobs' fate.
  void shutdown_now();

  Metrics metrics() const;
  const PlanCache& cache() const noexcept { return cache_; }

  /// Latency quantiles cover the most recent completions up to this many.
  static constexpr std::size_t kLatencyWindow = 16384;

 private:
  void worker_loop(std::size_t index);
  void record_done(double latency_s);
  void record_failed(api::SolveStatus status);
  /// Builds the failed future + counters for one job (promise first, counts
  /// second, so drain() returning implies every future is ready).
  void fail_job(Job& job, api::SolveStatus status, const std::string& what);
  void solve_group(std::vector<Job>& group, const api::SolvePlan& plan,
                   std::uint64_t first_chaos_index);

  ServiceConfig config_;
  PlanCache cache_;
  JobQueue queue_;
  std::vector<std::thread> workers_;
  /// Per-dispatcher busy nanoseconds (unique_ptr: atomics are immovable).
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> worker_busy_ns_;
  /// Root of every per-job cancel token; shutdown_now() fires it.
  common::CancelToken run_token_ = common::CancelToken::source();
  std::atomic<bool> killed_{false};       ///< shutdown_now: fail, don't solve
  std::atomic<std::uint64_t> chaos_index_{0};  ///< per-job chaos draw counter

  /// Guards the latency structures, stopped_, and the idle_cv_ handshake
  /// (counter writers take-and-release it empty before notifying, so
  /// drain()'s predicate check and its sleep cannot race an increment).
  mutable std::mutex state_mu_;
  std::condition_variable idle_cv_;  ///< signaled when done + failed catches up
  // Lifecycle counters: lock-free (default seq_cst) so metrics() never
  // contends with dispatch. Consistency is by ORDER, not by lock -- writers
  // bump failed_ BEFORE the taxonomy bucket and submitted_ before any
  // completion; metrics() reads taxonomy -> failed_ -> done_ -> submitted_
  // (see the Metrics doc for the invariants this yields).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> deadline_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> chaos_stalls_{0};
  std::atomic<std::uint64_t> chaos_storms_{0};
  RunningStats latency_stats_;          ///< exact count/mean/max, O(1) memory
  std::vector<double> latency_window_;  ///< ring of recent latencies (quantiles)
  std::size_t latency_next_ = 0;        ///< ring write position once full
  bool stopped_ = false;

  /// Process-wide obs::Registry mirrors, aggregated over every service
  /// instance in the process (the per-instance truth stays in the atomics
  /// above). References are safe: registry entries are never destroyed.
  obs::Counter& obs_submitted_;
  obs::Counter& obs_done_;
  obs::Counter& obs_failed_;
  obs::Counter& obs_deadline_;
  obs::Counter& obs_cancelled_;
  obs::Counter& obs_corrupt_;
  obs::Counter& obs_invalid_;
  obs::Counter& obs_shed_;
  obs::Counter& obs_retries_;
  obs::Counter& obs_chaos_stalls_;
  obs::Counter& obs_chaos_storms_;
  obs::Histogram& obs_latency_ns_;
};

/// Solves @p as[i] with @p plan using up to @p workers concurrent
/// executors (0 = hardware pick, capped at as.size(); 1 = sequential in
/// the caller). Executors are tasks on the process-wide exec::ThreadPool
/// with the caller helping; with JMH_EXEC_POOL=off they are transient
/// threads (the legacy path).
/// Reports are returned in input order and are bit-identical to sequential
/// plan.solve calls -- the plan is immutable and each solve independent, so
/// threading only changes wall-clock. Error semantics are pool-size
/// independent: every matrix is attempted, and the exception of the
/// lowest-index failing solve is rethrown after all threads join.
std::vector<api::SolveReport> solve_batch_parallel(const api::SolvePlan& plan,
                                                   const std::vector<la::Matrix>& as,
                                                   std::size_t workers = 0);

}  // namespace jmh::svc
