// SolverService: the serving layer -- a worker pool over a bounded JobQueue
// with a shared PlanCache, turning the facade's one-at-a-time SolvePlan
// into a concurrent throughput system.
//
//   svc::SolverService service({.workers = 4});
//   auto f = service.submit("backend=inline,ordering=d4,m=32,d=2", a);
//   api::SolveReport r = f.get();         // bit-identical to plan.solve(a)
//   service.metrics();                    // jobs, cache hits, latency p99
//
// Design:
//  - submit() parses nothing and blocks only on queue backpressure; the
//    worker resolves the spec through the PlanCache (canonicalized key), so
//    repeated scenarios skip ordering search and plan compilation.
//  - Workers pull with JobQueue::pop_group, so a front run of same-spec
//    jobs is coalesced: one cache resolution, one sequential batch over the
//    run (the pool itself is the parallelism -- per-matrix numerics are
//    exactly plan.solve, so service results are bit-identical to direct
//    calls).
//  - The dispatchers are dedicated threads (they block indefinitely in
//    JobQueue::pop_group, so parking them on the shared pool would starve
//    it), but all COMPUTE they trigger -- mpi-lite rank gangs inside
//    plan.solve, batch runner tasks in solve_batch_parallel -- draws from
//    the one process-wide exec::ThreadPool, so concurrent jobs interleave
//    on a fixed worker set instead of multiplying threads.
//  - Errors (malformed specs, infeasible plans, solve failures) surface
//    through the job's future; the service itself keeps running.
//  - shutdown() closes admission, drains every admitted job, and joins the
//    pool; the destructor calls it. drain() waits for quiescence without
//    stopping the service.
//
// svc sits ABOVE api in the layer graph (svc -> api). The one sanctioned
// upward call is api::SolvePlan::solve_batch delegating to
// svc::solve_batch_parallel (mirroring the solve/ -> api legacy bridge), so
// batch solves inherit the pool parallelism without api knowing the
// service's internals.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "svc/job_queue.hpp"
#include "svc/plan_cache.hpp"

namespace jmh::svc {

struct ServiceConfig {
  std::size_t workers = 0;         ///< worker threads; 0 = hardware pick
  std::size_t queue_capacity = 256;
  std::size_t cache_capacity = 64; ///< resident compiled plans (LRU)
  /// Max same-spec jobs one worker coalesces into a single plan resolution
  /// + batch execution (1 = no coalescing).
  std::size_t max_coalesce = 1;
  /// Best-effort resize of the process-wide exec::ThreadPool at service
  /// construction (0 = leave it alone). Applies only when the pool is fully
  /// idle -- the first configurator wins, mid-traffic requests are ignored
  /// (exec::ThreadPool::ensure_workers semantics).
  std::size_t pool_threads = 0;
};

/// A point-in-time counters snapshot. Latency covers queue wait + solve,
/// in seconds; count/mean/max are exact over every job finished so far,
/// quantiles are computed over a bounded window of recent completions
/// (the last SolverService::kLatencyWindow jobs), so a long-running
/// service neither grows without bound nor stalls on snapshot.
struct Metrics {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_done = 0;     ///< fulfilled with a report
  std::uint64_t jobs_failed = 0;   ///< fulfilled with an exception
  std::uint64_t batches = 0;       ///< coalesced groups of >= 2 jobs executed
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
  std::uint64_t latency_count = 0;
  double latency_mean_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;

  /// Seconds each service dispatcher has spent executing job groups
  /// (index = dispatcher). Oversubscription vs interleaving shows up here:
  /// with the shared exec pool, dispatcher busy time is mostly waiting on
  /// pool-executed solves, and the pool columns below carry the real load.
  std::vector<double> worker_busy_s;
  /// Process-wide exec::ThreadPool observability (zeroes when the pool is
  /// disabled via JMH_EXEC_POOL=off).
  std::size_t pool_workers = 0;
  std::size_t pool_queue_high_water = 0;
  std::vector<double> pool_busy_s;  ///< per-pool-worker busy seconds

  /// Human-readable multi-line rendering (the driver's report section).
  std::string summary() const;
};

class SolverService {
 public:
  explicit SolverService(ServiceConfig config = {});

  /// shutdown(): drains admitted jobs, then joins the pool.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues one solve, blocking while the queue is full (backpressure).
  /// After shutdown the returned future holds a std::runtime_error.
  /// Spec validation happens on the worker: a malformed @p spec_text
  /// surfaces as std::invalid_argument through the future.
  std::future<api::SolveReport> submit(std::string spec_text, la::Matrix a);

  /// Non-blocking submit: std::nullopt when the queue is full or the
  /// service is shut down (load shedding).
  std::optional<std::future<api::SolveReport>> try_submit(std::string spec_text, la::Matrix a);

  /// Blocks until every job submitted so far has been fulfilled. The
  /// service keeps accepting new work (call shutdown() to stop it).
  void drain();

  /// Closes admission, drains the queue, joins workers. Idempotent.
  void shutdown();

  Metrics metrics() const;
  const PlanCache& cache() const noexcept { return cache_; }

  /// Latency quantiles cover the most recent completions up to this many.
  static constexpr std::size_t kLatencyWindow = 16384;

 private:
  void worker_loop(std::size_t index);
  void record_done(double latency_s);
  void record_failed();

  ServiceConfig config_;
  PlanCache cache_;
  JobQueue queue_;
  std::vector<std::thread> workers_;
  /// Per-dispatcher busy nanoseconds (unique_ptr: atomics are immovable).
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> worker_busy_ns_;

  mutable std::mutex state_mu_;
  std::condition_variable idle_cv_;  ///< signaled when done + failed catches up
  std::uint64_t submitted_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t batches_ = 0;
  RunningStats latency_stats_;          ///< exact count/mean/max, O(1) memory
  std::vector<double> latency_window_;  ///< ring of recent latencies (quantiles)
  std::size_t latency_next_ = 0;        ///< ring write position once full
  bool stopped_ = false;
};

/// Solves @p as[i] with @p plan using up to @p workers concurrent
/// executors (0 = hardware pick, capped at as.size(); 1 = sequential in
/// the caller). Executors are tasks on the process-wide exec::ThreadPool
/// with the caller helping; with JMH_EXEC_POOL=off they are transient
/// threads (the legacy path).
/// Reports are returned in input order and are bit-identical to sequential
/// plan.solve calls -- the plan is immutable and each solve independent, so
/// threading only changes wall-clock. Error semantics are pool-size
/// independent: every matrix is attempted, and the exception of the
/// lowest-index failing solve is rethrown after all threads join.
std::vector<api::SolveReport> solve_batch_parallel(const api::SolvePlan& plan,
                                                   const std::vector<la::Matrix>& as,
                                                   std::size_t workers = 0);

}  // namespace jmh::svc
