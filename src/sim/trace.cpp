#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace jmh::sim {

std::string render_stage_timeline(const SimResult& result, int width) {
  JMH_REQUIRE(width >= 1, "width must be positive");
  std::ostringstream os;
  const double longest =
      result.stage_times.empty()
          ? 0.0
          : *std::max_element(result.stage_times.begin(), result.stage_times.end());
  os << "stages: " << result.stage_times.size() << ", makespan " << std::fixed
     << std::setprecision(0) << result.makespan << "\n";
  for (std::size_t i = 0; i < result.stage_times.size(); ++i) {
    const double t = result.stage_times[i];
    const int bar = longest > 0.0 ? std::max(1, static_cast<int>(t / longest * width)) : 0;
    os << std::setw(4) << i << " |" << std::string(static_cast<std::size_t>(bar), '#')
       << " " << std::setprecision(0) << t << "\n";
  }
  return os.str();
}

std::string render_link_utilization(const SimResult& result, int d, int width) {
  JMH_REQUIRE(d >= 1, "dimension must be positive");
  JMH_REQUIRE(result.link_busy.size() % static_cast<std::size_t>(d) == 0,
              "link_busy size must be a multiple of d");
  const std::size_t nodes = result.link_busy.size() / static_cast<std::size_t>(d);
  std::ostringstream os;
  os << "per-dimension mean link utilization (makespan " << std::fixed
     << std::setprecision(0) << result.makespan << ")\n";
  for (int link = 0; link < d; ++link) {
    double busy = 0.0;
    for (std::size_t n = 0; n < nodes; ++n)
      busy += result.link_busy[n * static_cast<std::size_t>(d) + static_cast<std::size_t>(link)];
    const double util =
        result.makespan > 0.0 ? busy / (result.makespan * static_cast<double>(nodes)) : 0.0;
    const int bar = static_cast<int>(util * width + 0.5);
    os << "  dim " << link << " |" << std::string(static_cast<std::size_t>(bar), '=')
       << std::string(static_cast<std::size_t>(std::max(0, width - bar)), ' ') << "| "
       << std::setprecision(1) << util * 100.0 << "%\n";
  }
  return os.str();
}

}  // namespace jmh::sim
