#include "sim/network.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "common/assert.hpp"

namespace jmh::sim {

Network::Network(int d, SimConfig config) : topo_(d), config_(config) {}

double Network::run_stage(const std::vector<NodeStage>& stage) const {
  JMH_REQUIRE(stage.size() == topo_.num_nodes(), "one NodeStage per node required");
  const double ts = config_.machine.ts;
  const double tw = config_.machine.tw;
  const int ports =
      config_.machine.all_port() ? topo_.dimension() : config_.machine.ports;
  JMH_REQUIRE(ports >= 1 || topo_.dimension() == 0, "port count must be >= 1");

  EventQueue q;
  double stage_end = 0.0;

  // Per-node simulation state. Channels are dedicated per (node, link)
  // direction and each node sends at most one packed message per link per
  // stage, so there is no cross-node contention: each node's makespan is
  // independent and the stage is their max. We still drive it through the
  // event engine so port-limited injection is modelled faithfully.
  for (cube::Node n = 0; n < topo_.num_nodes(); ++n) {
    const NodeStage& msgs = stage[n];
    // Validate distinct links (packing contract).
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      JMH_REQUIRE(topo_.valid_link(msgs[i].link), "message link out of range");
      for (std::size_t j = i + 1; j < msgs.size(); ++j)
        JMH_REQUIRE(msgs[i].link != msgs[j].link,
                    "messages on one link must be packed into one");
    }
    if (msgs.empty()) continue;

    // Shared mutable state for this node's events.
    auto in_flight = std::make_shared<int>(0);
    auto next_to_inject = std::make_shared<std::size_t>(0);
    auto ready_time = std::make_shared<std::vector<double>>();  // startup completion per msg

    // Startup issue times: message i's startup completes at (i+1)*ts. In the
    // paper's analytical model no transmission begins before every startup
    // has been issued.
    ready_time->resize(msgs.size());
    const double all_ready = static_cast<double>(msgs.size()) * ts;
    for (std::size_t i = 0; i < msgs.size(); ++i)
      (*ready_time)[i] =
          config_.overlap_startup ? static_cast<double>(i + 1) * ts : all_ready;

    // Injection loop: start transmissions respecting the port limit.
    // Ownership flows through the event chain: every scheduled event holds
    // a shared_ptr to the closure, and the closure itself holds only a
    // weak self-reference (re-locked while an owning event is invoking it)
    // -- a direct self-capture would be a shared_ptr cycle and leak one
    // closure per node per stage (LeakSanitizer catches this).
    auto try_inject = std::make_shared<std::function<void()>>();
    const std::weak_ptr<std::function<void()>> weak_self = try_inject;
    *try_inject = [&q, &stage_end, msgs, in_flight, next_to_inject, ready_time, ports, tw,
                   weak_self]() {
      const std::shared_ptr<std::function<void()>> self = weak_self.lock();
      JMH_CHECK(self != nullptr, "try_inject invoked without an owning event");
      while (*next_to_inject < msgs.size() && *in_flight < ports) {
        const std::size_t i = (*next_to_inject)++;
        const double start = std::max(q.now(), (*ready_time)[i]);
        const double finish = start + msgs[i].elems * tw;
        ++*in_flight;
        q.schedule(finish, [&stage_end, in_flight, self, finish]() {
          --*in_flight;
          stage_end = std::max(stage_end, finish);
          (*self)();
        });
      }
      // If ports are free but the next message's startup is pending, wake up
      // when it becomes ready.
      if (*next_to_inject < msgs.size() && *in_flight < ports) {
        const double when = (*ready_time)[*next_to_inject];
        if (when > q.now()) q.schedule(when, [self]() { (*self)(); });
      }
    };
    q.schedule(0.0, [try_inject]() { (*try_inject)(); });
    // Even a stage with sends but zero-size payloads ends after startups.
    stage_end = std::max(stage_end, static_cast<double>(msgs.size()) * ts);
  }

  q.run();
  return stage_end;
}

void Network::accumulate_stage(const std::vector<NodeStage>& stage, SimResult& acc) const {
  const std::size_t d = static_cast<std::size_t>(topo_.dimension());
  if (acc.link_busy.size() != topo_.num_nodes() * d)
    acc.link_busy.assign(topo_.num_nodes() * d, 0.0);
  const double t = run_stage(stage);
  acc.stage_times.push_back(t);
  acc.makespan += t;
  for (cube::Node n = 0; n < topo_.num_nodes(); ++n) {
    for (const auto& msg : stage[n]) {
      acc.link_busy[n * d + static_cast<std::size_t>(msg.link)] +=
          msg.elems * config_.machine.tw;
    }
  }
}

SimResult Network::run_program(const Program& program) const {
  SimResult result;
  result.stage_times.reserve(program.size());
  result.link_busy.assign(topo_.num_nodes() * static_cast<std::size_t>(topo_.dimension()), 0.0);
  for (const auto& stage : program) accumulate_stage(stage, result);
  return result;
}

double SimResult::mean_link_utilization() const {
  if (makespan <= 0.0 || link_busy.empty()) return 0.0;
  double total = 0.0;
  for (double b : link_busy) total += b;
  return total / (makespan * static_cast<double>(link_busy.size()));
}

double SimResult::peak_link_utilization() const {
  if (makespan <= 0.0 || link_busy.empty()) return 0.0;
  double peak = 0.0;
  for (double b : link_busy) peak = std::max(peak, b);
  return peak / makespan;
}

}  // namespace jmh::sim
