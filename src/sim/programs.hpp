// Builders turning orderings and pipelined schedules into simulator
// programs, plus end-to-end simulation entry points used to cross-validate
// the analytical cost model (experiment E9 in DESIGN.md).
#pragma once

#include "ord/ordering.hpp"
#include "pipe/cost_model.hpp"
#include "sim/network.hpp"

namespace jmh::sim {

/// Program for one unpipelined sweep: every transition is one stage in
/// which every node sends one full-size block message through the
/// transition's link.
Program build_sweep_program(const ord::JacobiOrdering& ordering, int sweep, double step_elems);

/// Program for one exchange phase pipelined with degree @p q: one stage per
/// pipeline stage; per node, the window's packets packed per link. Shallow
/// and deep modes both supported (deep materializes q - K + 1 kernel
/// stages; keep q moderate).
Program build_pipelined_phase_program(const ord::LinkSequence& seq, std::uint64_t q,
                                      double step_elems, int d);

/// Same, from an explicit link list -- accepts sigma-rotated phase links,
/// which use the whole [0, d) range and therefore cannot be wrapped in a
/// canonical LinkSequence of the phase's order.
Program build_pipelined_links_program(const std::vector<ord::Link>& links, std::uint64_t q,
                                      double step_elems, int d);

/// Simulated communication time of one unpipelined sweep.
double simulate_sweep(const ord::JacobiOrdering& ordering, int sweep, double step_elems,
                      const SimConfig& config);

/// Simulated communication time of one pipelined exchange phase.
double simulate_pipelined_phase(const ord::LinkSequence& seq, std::uint64_t q,
                                double step_elems, int d, const SimConfig& config);

/// Full-sweep program with every exchange phase pipelined: phase e = d..1
/// uses q_per_phase[d-e] packets (as reported by
/// pipe::sweep_cost_pipelined); divisions and the last transition are
/// single full-size message stages. Inter-sweep link rotation sigma_sweep
/// is honored.
Program build_pipelined_sweep_program(const ord::JacobiOrdering& ordering, int sweep,
                                      double step_elems,
                                      const std::vector<std::uint64_t>& q_per_phase);

/// Simulated communication time of one fully-pipelined sweep.
SimResult simulate_sweep_pipelined(const ord::JacobiOrdering& ordering, int sweep,
                                   double step_elems,
                                   const std::vector<std::uint64_t>& q_per_phase,
                                   const SimConfig& config);

}  // namespace jmh::sim
