#include "sim/programs.hpp"

#include <map>

#include "common/assert.hpp"

namespace jmh::sim {

namespace {

// All nodes execute the same link pattern in every stage of our programs
// (SPMD), so build one NodeStage and replicate it.
std::vector<NodeStage> replicate(const NodeStage& node_stage, std::uint64_t num_nodes) {
  return std::vector<NodeStage>(num_nodes, node_stage);
}

// Packs a window of links into per-link messages of packet_elems each.
NodeStage pack_window(const std::vector<ord::Link>& links, std::size_t begin, std::size_t len,
                      double packet_elems) {
  std::map<ord::Link, int> mult;
  for (std::size_t i = begin; i < begin + len; ++i) ++mult[links[i]];
  NodeStage stage;
  stage.reserve(mult.size());
  for (const auto& [link, count] : mult)
    stage.push_back({link, packet_elems * static_cast<double>(count)});
  return stage;
}

}  // namespace

Program build_sweep_program(const ord::JacobiOrdering& ordering, int sweep, double step_elems) {
  const std::uint64_t nodes = std::uint64_t{1} << ordering.dimension();
  Program program;
  const auto transitions = ordering.sweep_transitions(sweep);
  program.reserve(transitions.size());
  for (const auto& t : transitions)
    program.push_back(replicate({{t.link, step_elems}}, nodes));
  return program;
}

Program build_pipelined_links_program(const std::vector<ord::Link>& links, std::uint64_t q,
                                      double step_elems, int d) {
  JMH_REQUIRE(q >= 1, "pipelining degree must be >= 1");
  JMH_REQUIRE(!links.empty(), "pipelined phase needs at least one link");
  for (ord::Link link : links)
    JMH_REQUIRE(link >= 0 && link < d, "phase link does not fit the cube");
  const std::uint64_t nodes = std::uint64_t{1} << d;
  const std::uint64_t k = links.size();
  const double packet = step_elems / static_cast<double>(q);
  const std::uint64_t window = std::min(q, k);

  Program program;
  // Prologue: growing prefixes.
  for (std::uint64_t j = 1; j < window; ++j)
    program.push_back(replicate(pack_window(links, 0, static_cast<std::size_t>(j), packet), nodes));
  // Kernel.
  if (q <= k) {
    for (std::uint64_t i = 0; i + q <= k; ++i)
      program.push_back(replicate(
          pack_window(links, static_cast<std::size_t>(i), static_cast<std::size_t>(q), packet),
          nodes));
  } else {
    JMH_REQUIRE(q - k + 1 <= (std::uint64_t{1} << 22),
                "deep program too large to materialize");
    const NodeStage full = pack_window(links, 0, static_cast<std::size_t>(k), packet);
    for (std::uint64_t i = 0; i < q - k + 1; ++i) program.push_back(replicate(full, nodes));
  }
  // Epilogue: shrinking suffixes.
  for (std::uint64_t j = window - 1; j >= 1; --j)
    program.push_back(replicate(
        pack_window(links, static_cast<std::size_t>(k - j), static_cast<std::size_t>(j), packet),
        nodes));
  return program;
}

Program build_pipelined_phase_program(const ord::LinkSequence& seq, std::uint64_t q,
                                      double step_elems, int d) {
  JMH_REQUIRE(seq.e() <= d, "phase does not fit the cube");
  return build_pipelined_links_program(seq.links(), q, step_elems, d);
}

Program build_pipelined_sweep_program(const ord::JacobiOrdering& ordering, int sweep,
                                      double step_elems,
                                      const std::vector<std::uint64_t>& q_per_phase) {
  const std::uint64_t nodes = std::uint64_t{1} << ordering.dimension();
  const auto transitions = ordering.sweep_transitions(sweep);
  Program program;

  std::size_t exchange_index = 0;
  for (const ord::PhaseInfo& phase : ordering.phases()) {
    if (phase.type == ord::PhaseInfo::Type::Exchange) {
      JMH_REQUIRE(exchange_index < q_per_phase.size(),
                  "need one pipelining degree per exchange phase");
      const std::uint64_t q = q_per_phase[exchange_index++];
      // Phase link sequence under this sweep's sigma rotation.
      std::vector<ord::Link> links;
      links.reserve(phase.num_steps);
      for (std::size_t t = 0; t < phase.num_steps; ++t)
        links.push_back(transitions[phase.first_step + t].link);

      Program phase_program =
          build_pipelined_links_program(links, q, step_elems, ordering.dimension());
      for (auto& stage : phase_program) program.push_back(std::move(stage));
    } else {
      // Division or last transition: one full-size message per node.
      const auto& t = transitions[phase.first_step];
      program.push_back(replicate({{t.link, step_elems}}, nodes));
    }
  }
  JMH_CHECK(exchange_index == q_per_phase.size(), "unused pipelining degrees supplied");
  return program;
}

SimResult simulate_sweep_pipelined(const ord::JacobiOrdering& ordering, int sweep,
                                   double step_elems,
                                   const std::vector<std::uint64_t>& q_per_phase,
                                   const SimConfig& config) {
  const Network net(ordering.dimension(), config);
  return net.run_program(
      build_pipelined_sweep_program(ordering, sweep, step_elems, q_per_phase));
}

double simulate_sweep(const ord::JacobiOrdering& ordering, int sweep, double step_elems,
                      const SimConfig& config) {
  const Network net(ordering.dimension(), config);
  return net.run_program(build_sweep_program(ordering, sweep, step_elems)).makespan;
}

double simulate_pipelined_phase(const ord::LinkSequence& seq, std::uint64_t q,
                                double step_elems, int d, const SimConfig& config) {
  const Network net(d, config);
  return net.run_program(build_pipelined_phase_program(seq, q, step_elems, d)).makespan;
}

}  // namespace jmh::sim
