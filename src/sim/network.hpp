// Discrete-event simulation of communication programs on a multi-port
// hypercube.
//
// A *program* is a list of globally-synchronized stages; in each stage
// every node sends zero or more packed messages, at most one per link (the
// paper's footnote 2: packets sharing a link travel as a single message).
// The simulator models:
//   * startup serialization at the node processor: each message send costs
//     ts of CPU time before its transmission can begin;
//   * dedicated full-duplex links: the transmission of a message of n
//     elements occupies its directed channel for n*tw;
//   * the port constraint: at most `ports` transmissions may be in flight
//     from one node simultaneously (all-port: no limit beyond d).
//
// Two startup disciplines are provided:
//   * overlap_startup = false (the analytical model of the paper / [9]):
//     transmissions begin only after all of the node's startups for the
//     stage are issued -- stage cost is exactly distinct*ts + serial*tw
//     terms, matching pipe::comm_op_cost;
//   * overlap_startup = true: a message's transmission begins right after
//     its own startup, overlapping later startups -- a slightly more
//     aggressive hardware model, used in the ablation benches to quantify
//     how conservative the paper's closed form is.
#pragma once

#include <vector>

#include "cube/hypercube.hpp"
#include "pipe/machine.hpp"
#include "sim/event_queue.hpp"

namespace jmh::sim {

struct SimConfig {
  pipe::MachineParams machine;
  bool overlap_startup = false;
};

/// One packed message: every element of a stage window that shares a link
/// has been merged already.
struct StageMessage {
  cube::Link link = 0;
  double elems = 0.0;
};

/// A node's sends in one stage, in issue order. Links must be distinct.
using NodeStage = std::vector<StageMessage>;

/// program[stage][node] -> NodeStage.
using Program = std::vector<std::vector<NodeStage>>;

struct SimResult {
  double makespan = 0.0;
  std::vector<double> stage_times;  ///< duration of each stage
  /// Busy time of each directed channel, indexed node * d + link (time the
  /// channel spends transmitting, independent of scheduling details).
  std::vector<double> link_busy;
  /// Mean fraction of the makespan each directed channel spends busy --
  /// the communication-parallelism figure the multi-port orderings exist
  /// to raise.
  double mean_link_utilization() const;
  /// Utilization of the busiest channel.
  double peak_link_utilization() const;
};

class Network {
 public:
  Network(int d, SimConfig config);

  int dimension() const noexcept { return topo_.dimension(); }
  const cube::Hypercube& topology() const noexcept { return topo_; }

  /// Runs the program with a global barrier between stages; returns the
  /// makespan and per-stage durations.
  SimResult run_program(const Program& program) const;

  /// Duration of a single stage (no barrier overhead modelled).
  double run_stage(const std::vector<NodeStage>& stage) const;

  /// Runs one stage and folds it into @p acc (appends the stage time, grows
  /// the makespan, adds per-channel busy time). Lets incremental clients --
  /// e.g. a SimTransport charging one protocol transition at a time --
  /// build up a SimResult without materializing a whole Program. @p acc's
  /// link_busy is sized on first use.
  void accumulate_stage(const std::vector<NodeStage>& stage, SimResult& acc) const;

 private:
  cube::Hypercube topo_;
  SimConfig config_;
};

}  // namespace jmh::sim
