// ASCII rendering of simulation results: stage timelines and per-link
// utilization bars. Pure formatting over SimResult -- used by the
// trace_visualizer example and tested for structural properties.
#pragma once

#include <string>

#include "sim/network.hpp"

namespace jmh::sim {

/// Horizontal bar chart of per-stage durations (one row per stage, bar
/// lengths proportional to time, longest bar = @p width chars).
std::string render_stage_timeline(const SimResult& result, int width = 50);

/// Per-link utilization bars aggregated over nodes: for each dimension,
/// the mean utilization of that dimension's channels across the cube.
/// Surfaces the paper's core diagnosis at a glance: BR leaves every
/// dimension but 0 nearly idle.
std::string render_link_utilization(const SimResult& result, int d, int width = 40);

}  // namespace jmh::sim
