#include "sim/event_queue.hpp"

#include <utility>

namespace jmh::sim {

void EventQueue::schedule(double time, Action action) {
  JMH_REQUIRE(time >= now_, "cannot schedule an event in the past");
  queue_.push({time, next_seq_++, std::move(action)});
}

void EventQueue::step() {
  JMH_REQUIRE(!queue_.empty(), "no events to step");
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately and Entry's members are not const.
  Entry e = queue_.top();
  queue_.pop();
  now_ = e.time;
  e.action();
}

double EventQueue::run() {
  while (!queue_.empty()) step();
  return now_;
}

}  // namespace jmh::sim
