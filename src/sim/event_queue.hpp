// Generic discrete-event simulation engine.
//
// A priority queue of (time, sequence, action); actions may schedule
// further events. Ties in time are broken by insertion order so simulations
// are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.hpp"

namespace jmh::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules @p action at absolute time @p time (>= now()).
  void schedule(double time, Action action);

  /// Schedules @p action @p delay time units from now.
  void schedule_in(double delay, Action action) { schedule(now_ + delay, std::move(action)); }

  double now() const noexcept { return now_; }
  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Executes the earliest event. Precondition: !empty().
  void step();

  /// Runs until no events remain; returns the time of the last event.
  double run();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace jmh::sim
