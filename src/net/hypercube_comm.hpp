// Hypercube overlay on mpi_lite: rank = node label, neighbor exchange along
// a dimension. This is the communication interface the distributed Jacobi
// solver is written against -- exactly the operations a multi-port
// hypercube multicomputer offers (paper section 2.1).
#pragma once

#include <span>

#include "cube/hypercube.hpp"
#include "net/universe.hpp"

namespace jmh::net {

class HypercubeComm {
 public:
  /// Wraps a Comm whose universe has 2^d ranks.
  explicit HypercubeComm(Comm& comm);

  int dimension() const noexcept { return d_; }
  cube::Node node() const noexcept { return static_cast<cube::Node>(comm_->rank()); }
  Comm& raw() noexcept { return *comm_; }

  /// Neighbor across dimension @p link.
  cube::Node neighbor(cube::Link link) const { return topo_.neighbor(node(), link); }

  /// Simultaneous exchange with the neighbor across @p link; both sides
  /// call this with their outgoing data and receive the peer's.
  Payload exchange(cube::Link link, std::span<const double> data, int tag = 0);

  /// Send to / receive from the neighbor across @p link (one direction).
  void send(cube::Link link, std::span<const double> data, int tag = 0);
  Payload recv(cube::Link link, int tag = 0);

 private:
  Comm* comm_;
  int d_;
  cube::Hypercube topo_;
};

}  // namespace jmh::net
