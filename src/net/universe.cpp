#include "net/universe.hpp"

#include <thread>

#include "common/alloc_guard.hpp"
#include "common/assert.hpp"
#include "exec/thread_pool.hpp"

namespace jmh::net {

Universe::Universe(int num_ranks) : num_ranks_(num_ranks) {
  JMH_REQUIRE(num_ranks >= 1 && num_ranks <= 4096, "rank count out of range");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

Mailbox& Universe::mailbox(int rank) {
  JMH_REQUIRE(rank >= 0 && rank < num_ranks_, "rank out of range");
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void Universe::poison(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = error;
  }
  poisoned_.store(true, std::memory_order_release);
  // Wake every blocked receiver with a poison sentinel and release any
  // barrier waiters.
  for (auto& mb : mailboxes_) mb->deliver({kPoisonSource, 0, 0, {}});
  barrier_cv_.notify_all();
}

void Universe::check_poisoned() const {
  if (poisoned_.load(std::memory_order_acquire)) throw UniversePoisoned{};
}

void Universe::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_count_ == num_ranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_episodes_.fetch_add(1, std::memory_order_relaxed);
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != gen || poisoned_.load(std::memory_order_acquire);
  });
  if (barrier_generation_ == gen) throw UniversePoisoned{};
}

CommStats Universe::stats() const {
  return {sent_messages_.load(), sent_elements_.load(), barrier_episodes_.load()};
}

void Universe::run(const std::function<void(Comm&)>& fn) {
  // Reset poison state for reuse across run() calls.
  poisoned_.store(false);
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    first_error_ = nullptr;
  }
  for (auto& mb : mailboxes_) mb->clear();
  sent_messages_.store(0);
  sent_elements_.store(0);
  barrier_episodes_.store(0);

  // Rank bodies block on each other (mailbox receives, barriers), so they
  // need num_ranks_ live threads: a gang on the process-wide pool when it
  // is enabled, one dedicated thread per rank otherwise (JMH_EXEC_POOL=off
  // keeps the legacy baseline measurable from the same binary).
  const auto rank_body = [this, &fn](int r) {
    Comm comm(*this, r);
    try {
      fn(comm);
    } catch (const UniversePoisoned&) {
      // Secondary failure; the original error is already recorded.
    } catch (...) {
      poison(std::current_exception());
    }
  };
  if (exec::ThreadPool::enabled()) {
    exec::ThreadPool::global().run_gang(
        static_cast<std::size_t>(num_ranks_),
        [&rank_body](std::size_t r) { rank_body(static_cast<int>(r)); });
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks_));
    for (int r = 0; r < num_ranks_; ++r) threads.emplace_back([&rank_body, r] { rank_body(r); });
    for (auto& t : threads) t.join();
  }

  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_) std::rethrow_exception(first_error_);
}

void Comm::send(int dst, int tag, Payload data) {
  universe_->check_poisoned();
  JMH_REQUIRE(tag >= 0, "negative tags are reserved");
  universe_->sent_messages_.fetch_add(1, std::memory_order_relaxed);
  universe_->sent_elements_.fetch_add(data.size(), std::memory_order_relaxed);
  // The mailbox queue node is wire-side state, not endpoint work: exempt it
  // from the sender's allocation audit (common/alloc_guard.hpp).
  const common::AllocExempt wire;
  universe_->mailbox(dst).deliver({rank_, tag, send_seq_++, std::move(data)});
}

void Comm::send(int dst, int tag, std::span<const double> data) {
  // The payload copy IS the wire: the modeled network owns the bytes in
  // flight. The endpoint-side allocation contract (PERF.md) excludes it.
  const common::AllocExempt wire;
  send(dst, tag, Payload(data.begin(), data.end()));
}

void Comm::send_scalar(int dst, int tag, double value) { send(dst, tag, Payload{value}); }

Payload Comm::recv(int src, int tag) {
  universe_->check_poisoned();
  Message m = universe_->mailbox(rank_).receive(src, tag);
  if (m.source == kPoisonSource) throw UniversePoisoned{};
  return std::move(m.data);
}

double Comm::recv_scalar(int src, int tag) {
  const Payload p = recv(src, tag);
  JMH_REQUIRE(p.size() == 1, "expected a scalar message");
  return p[0];
}

Payload Comm::sendrecv(int peer, int tag, std::span<const double> data) {
  send(peer, tag, data);
  return recv(peer, tag);
}

void Comm::barrier() {
  universe_->check_poisoned();
  universe_->barrier_wait();
}

}  // namespace jmh::net
