#include "net/mailbox.hpp"

#include <algorithm>

namespace jmh::net {

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.source == source && m.tag == tag;
    });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    const auto poison = std::find_if(queue_.begin(), queue_.end(), [](const Message& m) {
      return m.source == kPoisonSource;
    });
    if (poison != queue_.end()) return *poison;  // copy: left queued for other receivers
    cv_.wait(lock);
  }
}

void Mailbox::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
}

bool Mailbox::probe(int source, int tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return m.source == source && m.tag == tag;
  });
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace jmh::net
