// Collective operations over a Universe's ranks.
//
// allreduce/allgather use the recursive-doubling (hypercube butterfly)
// algorithm when the rank count is a power of two -- the natural pattern on
// the paper's target topology -- and fall back to a root-relay otherwise.
#pragma once

#include <span>
#include <vector>

#include "net/universe.hpp"

namespace jmh::net {

/// Sum of @p value over all ranks, returned on every rank.
double allreduce_sum(Comm& comm, double value);

/// Element-wise sum of @p values over all ranks, returned on every rank.
/// All ranks must contribute the same length. One butterfly (or root relay)
/// for the whole vector -- combine related votes into one call instead of
/// paying per-scalar message startups.
std::vector<double> allreduce_sum(Comm& comm, std::vector<double> values);

/// Element-wise sum over all ranks, accumulated in place into @p values.
/// Same semantics as the vector overload without allocating result
/// vectors -- the per-sweep convergence vote path.
void allreduce_sum_inplace(Comm& comm, std::span<double> values);

/// Max of @p value over all ranks, returned on every rank.
double allreduce_max(Comm& comm, double value);

/// Logical AND across ranks (encoded as 0.0/1.0 doubles internally).
bool allreduce_and(Comm& comm, bool value);

/// Concatenation of every rank's vector in rank order, returned on every
/// rank. All ranks may contribute different lengths.
std::vector<double> allgatherv(Comm& comm, std::span<const double> local);

/// Broadcast @p data from @p root to all ranks (returned everywhere).
std::vector<double> broadcast(Comm& comm, int root, std::span<const double> data);

}  // namespace jmh::net
