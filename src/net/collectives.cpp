#include "net/collectives.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace jmh::net {

namespace {

constexpr int kTagReduce = 1 << 20;
constexpr int kTagGather = 1 << 21;
constexpr int kTagBcast = 1 << 22;

// Recursive-doubling combine: every rank ends with f applied over all
// contributions. Requires power-of-two size; callers fall back otherwise.
template <typename F>
double butterfly_reduce(Comm& comm, double value, F&& f) {
  const int p = comm.size();
  for (int bit = 1; bit < p; bit <<= 1) {
    const int peer = comm.rank() ^ bit;
    const Payload got = comm.sendrecv(peer, kTagReduce + bit, std::span<const double>(&value, 1));
    JMH_CHECK(got.size() == 1, "reduce payload must be scalar");
    value = f(value, got[0]);
  }
  return value;
}

template <typename F>
double reduce_via_root(Comm& comm, double value, F&& f) {
  if (comm.rank() == 0) {
    for (int r = 1; r < comm.size(); ++r) value = f(value, comm.recv_scalar(r, kTagReduce));
    for (int r = 1; r < comm.size(); ++r) comm.send_scalar(r, kTagReduce + 1, value);
    return value;
  }
  comm.send_scalar(0, kTagReduce, value);
  return comm.recv_scalar(0, kTagReduce + 1);
}

template <typename F>
double allreduce(Comm& comm, double value, F&& f) {
  if (is_pow2(static_cast<std::uint64_t>(comm.size())))
    return butterfly_reduce(comm, value, f);
  return reduce_via_root(comm, value, f);
}

}  // namespace

double allreduce_sum(Comm& comm, double value) {
  return allreduce(comm, value, [](double a, double b) { return a + b; });
}

std::vector<double> allreduce_sum(Comm& comm, std::vector<double> values) {
  allreduce_sum_inplace(comm, values);
  return values;
}

void allreduce_sum_inplace(Comm& comm, std::span<double> values) {
  if (is_pow2(static_cast<std::uint64_t>(comm.size()))) {
    for (int bit = 1; bit < comm.size(); bit <<= 1) {
      const int peer = comm.rank() ^ bit;
      const Payload got = comm.sendrecv(peer, kTagReduce + bit, values);
      JMH_CHECK(got.size() == values.size(), "allreduce length mismatch across ranks");
      for (std::size_t i = 0; i < values.size(); ++i) values[i] += got[i];
    }
    return;
  }
  if (comm.rank() == 0) {
    for (int r = 1; r < comm.size(); ++r) {
      const Payload got = comm.recv(r, kTagReduce);
      JMH_CHECK(got.size() == values.size(), "allreduce length mismatch across ranks");
      for (std::size_t i = 0; i < values.size(); ++i) values[i] += got[i];
    }
    for (int r = 1; r < comm.size(); ++r) comm.send(r, kTagReduce + 1, values);
    return;
  }
  comm.send(0, kTagReduce, values);
  const Payload got = comm.recv(0, kTagReduce + 1);
  JMH_CHECK(got.size() == values.size(), "allreduce length mismatch across ranks");
  std::copy(got.begin(), got.end(), values.begin());
}

double allreduce_max(Comm& comm, double value) {
  return allreduce(comm, value, [](double a, double b) { return std::max(a, b); });
}

bool allreduce_and(Comm& comm, bool value) {
  return allreduce(comm, value ? 1.0 : 0.0, [](double a, double b) {
           return std::min(a, b);
         }) > 0.5;
}

std::vector<double> allgatherv(Comm& comm, std::span<const double> local) {
  // Root-relay allgather: simple and obviously correct; only used for final
  // result collection, never on the measured path.
  if (comm.rank() == 0) {
    std::vector<std::vector<double>> parts(static_cast<std::size_t>(comm.size()));
    parts[0].assign(local.begin(), local.end());
    for (int r = 1; r < comm.size(); ++r) parts[static_cast<std::size_t>(r)] = comm.recv(r, kTagGather);
    std::vector<double> all;
    for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
    for (int r = 1; r < comm.size(); ++r) comm.send(r, kTagGather + 1, all);
    return all;
  }
  comm.send(0, kTagGather, local);
  return comm.recv(0, kTagGather + 1);
}

std::vector<double> broadcast(Comm& comm, int root, std::span<const double> data) {
  JMH_REQUIRE(root >= 0 && root < comm.size(), "broadcast root out of range");
  if (comm.rank() == root) {
    for (int r = 0; r < comm.size(); ++r)
      if (r != root) comm.send(r, kTagBcast, data);
    return {data.begin(), data.end()};
  }
  return comm.recv(root, kTagBcast);
}

}  // namespace jmh::net
