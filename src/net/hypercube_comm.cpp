#include "net/hypercube_comm.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace jmh::net {

namespace {

int require_pow2_dimension(int size) {
  JMH_REQUIRE(size >= 1 && is_pow2(static_cast<std::uint64_t>(size)),
              "hypercube overlay requires a power-of-two rank count");
  return ilog2(static_cast<std::uint64_t>(size));
}

// Tags are namespaced per dimension so exchanges on different links in
// flight simultaneously (pipelined schedules) cannot be confused.
constexpr int kTagBase = 1 << 24;
int link_tag(cube::Link link, int tag) { return kTagBase + (tag << 6) + link; }

}  // namespace

HypercubeComm::HypercubeComm(Comm& comm)
    : comm_(&comm), d_(require_pow2_dimension(comm.size())), topo_(d_) {}

Payload HypercubeComm::exchange(cube::Link link, std::span<const double> data, int tag) {
  JMH_REQUIRE(topo_.valid_link(link), "link out of range");
  return comm_->sendrecv(static_cast<int>(neighbor(link)), link_tag(link, tag), data);
}

void HypercubeComm::send(cube::Link link, std::span<const double> data, int tag) {
  JMH_REQUIRE(topo_.valid_link(link), "link out of range");
  comm_->send(static_cast<int>(neighbor(link)), link_tag(link, tag), data);
}

Payload HypercubeComm::recv(cube::Link link, int tag) {
  JMH_REQUIRE(topo_.valid_link(link), "link out of range");
  return comm_->recv(static_cast<int>(neighbor(link)), link_tag(link, tag));
}

}  // namespace jmh::net
