// mpi_lite runtime: a fixed set of ranks backed by threads.
//
// Universe owns the mailboxes and the barrier; Comm is the per-rank handle
// passed to the user function (the moral equivalent of MPI_COMM_WORLD plus
// a rank). Exceptions thrown by any rank are captured and rethrown from
// run() after all threads join, so a failing rank cannot deadlock the test
// suite -- remaining ranks blocked in receive() would hang, therefore a
// failing rank poisons the universe and wakes everyone.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "net/mailbox.hpp"

namespace jmh::net {

class Comm;

/// Aggregate traffic counters over one Universe::run.
struct CommStats {
  std::uint64_t messages = 0;  ///< point-to-point messages sent
  std::uint64_t elements = 0;  ///< total payload elements sent
  std::uint64_t barriers = 0;  ///< barrier episodes completed
};

class Universe {
 public:
  explicit Universe(int num_ranks);

  int size() const noexcept { return num_ranks_; }

  /// Runs @p fn once per rank, concurrently -- as a gang on the
  /// process-wide exec::ThreadPool, or on one dedicated thread per rank
  /// when JMH_EXEC_POOL=off -- and returns when all ranks finish.
  /// Rethrows the first exception raised by any rank.
  void run(const std::function<void(Comm&)>& fn);

  /// Traffic counters accumulated during the most recent run() (reset at
  /// the start of each run).
  CommStats stats() const;

 private:
  friend class Comm;

  Mailbox& mailbox(int rank);
  void barrier_wait();
  void poison(std::exception_ptr error);
  void check_poisoned() const;

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Reusable central barrier.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::atomic<bool> poisoned_{false};

  std::atomic<std::uint64_t> sent_messages_{0};
  std::atomic<std::uint64_t> sent_elements_{0};
  std::atomic<std::uint64_t> barrier_episodes_{0};
};

/// Thrown in surviving ranks when another rank poisoned the universe.
struct UniversePoisoned : std::exception {
  const char* what() const noexcept override { return "another rank failed"; }
};

class Comm {
 public:
  Comm(Universe& universe, int rank) : universe_(&universe), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return universe_->size(); }

  /// Asynchronous-buffered send (never blocks; mailbox queues are unbounded).
  void send(int dst, int tag, Payload data);
  void send(int dst, int tag, std::span<const double> data);
  void send_scalar(int dst, int tag, double value);

  /// Blocks until a message from @p src with @p tag arrives.
  Payload recv(int src, int tag);
  double recv_scalar(int src, int tag);

  /// Simultaneous exchange with a peer (both sides must call it).
  Payload sendrecv(int peer, int tag, std::span<const double> data);

  void barrier();

 private:
  Universe* universe_;
  int rank_;
  std::uint64_t send_seq_ = 0;
};

}  // namespace jmh::net
