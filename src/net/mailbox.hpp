// Per-rank mailbox: the message-matching core of mpi_lite.
//
// Semantics mirror the MPI subset the solver needs: messages between a
// (source, destination) pair with equal tags are non-overtaking; recv
// blocks until a matching message (by source and tag) arrives. Payloads are
// vectors of double -- everything the Jacobi solver communicates is column
// data or scalar reductions.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace jmh::net {

using Payload = std::vector<double>;

struct Message {
  int source = -1;
  int tag = 0;
  std::uint64_t seq = 0;  ///< per-(source,tag) sequence number, for tests
  Payload data;
};

/// Sentinel source used to poison a mailbox (wakes every receiver).
inline constexpr int kPoisonSource = -2;

class Mailbox {
 public:
  /// Enqueues a message and wakes any waiting receiver. A message with
  /// source == kPoisonSource matches *any* receive and is never consumed,
  /// so all present and future receivers observe it.
  void deliver(Message msg);

  /// Blocks until a message with the given source and tag is available and
  /// returns it. FIFO per (source, tag).
  Message receive(int source, int tag);

  /// Removes all queued messages (used when a Universe is reused).
  void clear();

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(int source, int tag) const;

  /// Messages currently queued (any source/tag).
  std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace jmh::net
