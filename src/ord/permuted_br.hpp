// The permuted-BR ordering's sequences D_e^p-BR (paper section 3.2).
//
// D_e^p-BR is obtained from D_e^BR by floor(log2(e-1)) link-permutation
// transformations. Transformation k (k = 0..floor(log2(e-1))-1) applies a
// permutation to every other (e-k-1)-subsequence of the current sequence,
// starting at the second one. The base permutation for the second
// (e-k-1)-subsequence is the set of transpositions
//
//     i  <->  L - 1 - i     for i in [0, L-1],  L = floor((e-1) / 2^k)
//
// (it pairs the most frequent link with the least frequent one, the second
// most frequent with the second least, and so on). The permutation for any
// later odd subsequence is obtained by *compounding* with the permutations
// previously applied to its enclosing subsequences, which works out to the
// conjugation sigma_j = Phi_j . base_k . Phi_j^{-1}, where Phi_j is the
// composition (in application order) of every permutation applied to a
// subsequence that contains subsequence j.
//
// By Property 1 each transformation preserves e-sequence-ness, so D_e^p-BR
// is always a valid exchange-phase sequence; the transformations only
// rebalance the link-multiplicity histogram, driving alpha towards the
// lower bound ceil((2^e-1)/e) (asymptotically 1.25x it, appendix Thm 2/3).
#pragma once

#include "ord/sequence.hpp"

namespace jmh::ord {

/// A permutation of link identifiers [0, e).
class LinkPermutation {
 public:
  /// Identity permutation on e links.
  explicit LinkPermutation(int e);

  /// The transformation-k base permutation: i <-> L-1-i, L = floor((e-1)/2^k).
  static LinkPermutation base_transposition(int e, int k);

  int size() const noexcept { return static_cast<int>(map_.size()); }
  Link operator()(Link l) const;

  /// Composition: (a * b)(x) = a(b(x)).
  friend LinkPermutation operator*(const LinkPermutation& a, const LinkPermutation& b);

  LinkPermutation inverse() const;

  /// Conjugation phi . *this . phi^{-1}.
  LinkPermutation conjugated_by(const LinkPermutation& phi) const;

  bool is_identity() const;

 private:
  std::vector<Link> map_;
};

/// Generates D_e^p-BR. Precondition: 2 <= e <= Hypercube::kMaxDimension.
/// For e = 2 no transformation applies (floor(log2(1)) = 0) and the result
/// equals D_2^BR.
LinkSequence permuted_br_sequence(int e);

/// Number of transformations applied for phase e: floor(log2(e-1)).
int permuted_br_num_transformations(int e);

/// The permutation applied to subsequence @p j (odd) at level @p k during
/// the construction of D_e^p-BR, exposed for tests/analysis. Enclosure
/// bookkeeping matches permuted_br_sequence exactly.
LinkPermutation permuted_br_subsequence_permutation(int e, int k, int j);

}  // namespace jmh::ord
