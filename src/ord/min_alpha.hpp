// The minimum-alpha ordering (paper section 3.1).
//
// Minimizing the deep-pipelining kernel cost e*Ts + alpha*S*Tw means finding
// a Hamiltonian path of the e-cube whose link sequence has minimum alpha
// (maximum per-link multiplicity). Any e-sequence of length 2^e - 1 using e
// link identifiers has alpha >= ceil((2^e - 1) / e); finding a path that
// attains the minimum is NP-hard, so the paper solved it only for e < 7.
//
// This module provides (a) the paper's published min-alpha sequences for
// e = 2..6 and (b) a branch-and-bound search that reconstructs optimal
// sequences for small e, exploiting the very tight slack
// e*ceil((2^e-1)/e) - (2^e-1) for pruning.
#pragma once

#include <cstdint>
#include <optional>

#include "ord/sequence.hpp"

namespace jmh::ord {

/// The min-alpha sequences published in the paper (e in [2, 6]).
LinkSequence paper_min_alpha_sequence(int e);

/// Largest e for which paper_min_alpha_sequence is available.
constexpr int kMaxPaperMinAlphaE = 6;

/// Result of a bounded search for a Hamiltonian path with per-link
/// multiplicity <= bound.
struct MinAlphaSearchResult {
  std::optional<LinkSequence> sequence;  ///< found sequence, if any
  bool exhausted = false;   ///< true if the search space was fully explored
  std::uint64_t nodes_expanded = 0;
};

/// Branch-and-bound: find an e-sequence with alpha <= @p bound, expanding at
/// most @p node_budget search nodes (0 = unlimited). If `exhausted` is true
/// and no sequence was found, no such sequence exists.
MinAlphaSearchResult find_sequence_with_alpha(int e, int bound,
                                              std::uint64_t node_budget = 0);

/// Searches for a provably minimum-alpha e-sequence by trying increasing
/// bounds starting at the lower bound ceil((2^e-1)/e). Returns nullopt if
/// the node budget is exhausted before a proof is complete.
std::optional<LinkSequence> search_min_alpha(int e, std::uint64_t node_budget = 50'000'000);

}  // namespace jmh::ord
