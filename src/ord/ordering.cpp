#include "ord/ordering.hpp"

#include <cctype>

#include "common/assert.hpp"
#include "ord/br.hpp"
#include "ord/degree4.hpp"
#include "ord/min_alpha.hpp"
#include "ord/permuted_br.hpp"

namespace jmh::ord {

std::string to_string(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::BR: return "BR";
    case OrderingKind::PermutedBR: return "permuted-BR";
    case OrderingKind::Degree4: return "degree-4";
    case OrderingKind::MinAlpha: return "min-alpha";
    case OrderingKind::Custom: return "custom";
  }
  return "?";
}

std::string spec_token(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::BR: return "br";
    case OrderingKind::PermutedBR: return "pbr";
    case OrderingKind::Degree4: return "d4";
    case OrderingKind::MinAlpha: return "minalpha";
    case OrderingKind::Custom: return "custom";
  }
  return "?";
}

bool parse_ordering_kind(std::string_view text, OrderingKind& out) {
  std::string norm;
  norm.reserve(text.size());
  for (char c : text) {
    if (c == '-' || c == '_') continue;
    norm.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (norm == "br") out = OrderingKind::BR;
  else if (norm == "pbr" || norm == "permutedbr") out = OrderingKind::PermutedBR;
  else if (norm == "d4" || norm == "degree4") out = OrderingKind::Degree4;
  else if (norm == "minalpha") out = OrderingKind::MinAlpha;
  else if (norm == "custom") out = OrderingKind::Custom;
  else return false;
  return true;
}

LinkSequence make_exchange_sequence(OrderingKind kind, int e) {
  JMH_REQUIRE(e >= 1, "exchange phase index must be >= 1");
  JMH_REQUIRE(kind != OrderingKind::Custom,
              "custom orderings supply their own sequences");
  switch (kind) {
    case OrderingKind::BR:
      return br_sequence(e);
    case OrderingKind::PermutedBR:
      return e >= 2 ? permuted_br_sequence(e) : br_sequence(e);
    case OrderingKind::Degree4:
      // D_e^D4 needs e >= 4; the small phases are the cheapest part of the
      // sweep, so BR there has negligible cost impact (paper makes the same
      // simplification for permuted-BR's small phases, section 4 footnote).
      return e >= 4 ? degree4_sequence(e) : br_sequence(e);
    case OrderingKind::MinAlpha:
      return e >= 2 && e <= kMaxPaperMinAlphaE ? paper_min_alpha_sequence(e)
             : e >= 2                          ? permuted_br_sequence(e)
                                               : br_sequence(e);
    case OrderingKind::Custom:
      break;  // rejected by the JMH_REQUIRE above; keeps -Wswitch exhaustive
  }
  JMH_REQUIRE(false, "unknown ordering kind");
  return br_sequence(e);
}

JacobiOrdering::JacobiOrdering(OrderingKind kind, int d) : kind_(kind), d_(d) {
  JMH_REQUIRE(d >= 1 && d <= cube::Hypercube::kMaxDimension, "cube dimension out of range");
  JMH_REQUIRE(kind != OrderingKind::Custom,
              "use the sequence constructor for custom orderings");

  sequences_.reserve(static_cast<std::size_t>(d));
  for (int e = 1; e <= d; ++e) sequences_.push_back(make_exchange_sequence(kind, e));
  build_sweep_skeleton();
}

JacobiOrdering::JacobiOrdering(std::vector<LinkSequence> sequences)
    : kind_(OrderingKind::Custom),
      d_(static_cast<int>(sequences.size())),
      sequences_(std::move(sequences)) {
  JMH_REQUIRE(d_ >= 1 && d_ <= cube::Hypercube::kMaxDimension,
              "need one sequence per phase e = 1..d");
  for (int e = 1; e <= d_; ++e) {
    const LinkSequence& seq = sequences_[static_cast<std::size_t>(e - 1)];
    JMH_REQUIRE(seq.e() == e, "sequences must be ordered by phase: sequences[e-1] is D_e");
    JMH_REQUIRE(seq.is_valid(), "custom sequence is not a Hamiltonian path of its e-cube");
  }
  build_sweep_skeleton();
}

void JacobiOrdering::build_sweep_skeleton() {
  const int d = d_;
  // Build the base (sweep 0) transition list and phase table.
  base_transitions_.reserve(steps_per_sweep());
  for (int e = d; e >= 1; --e) {
    const LinkSequence& seq = exchange_sequence(e);
    PhaseInfo ex;
    ex.type = PhaseInfo::Type::Exchange;
    ex.e = e;
    ex.first_step = base_transitions_.size();
    ex.num_steps = seq.size();
    phases_.push_back(ex);
    for (Link l : seq.links()) base_transitions_.push_back({l, /*division=*/false});

    PhaseInfo div;
    div.type = PhaseInfo::Type::Division;
    div.first_step = base_transitions_.size();
    div.num_steps = 1;
    phases_.push_back(div);
    base_transitions_.push_back({e - 1, /*division=*/true});
  }
  PhaseInfo last;
  last.type = PhaseInfo::Type::LastTransition;
  last.first_step = base_transitions_.size();
  last.num_steps = 1;
  phases_.push_back(last);
  base_transitions_.push_back({d - 1, /*division=*/false});

  JMH_CHECK(base_transitions_.size() == steps_per_sweep(),
            "sweep must have 2^{d+1}-1 transitions");
}

const LinkSequence& JacobiOrdering::exchange_sequence(int e) const {
  JMH_REQUIRE(e >= 1 && e <= d_, "phase index out of range");
  return sequences_[static_cast<std::size_t>(e - 1)];
}

Link JacobiOrdering::sweep_link_map(int sweep, Link logical) const {
  JMH_REQUIRE(sweep >= 0, "sweep must be non-negative");
  JMH_REQUIRE(logical >= 0 && logical < d_, "link out of range");
  // sigma_s(i) = (i - s) mod d, by unrolling sigma_s(i) = sigma_{s-1}(i) - 1 mod d.
  const int s = sweep % d_;
  return (logical - s % d_ + d_) % d_;
}

std::vector<Transition> JacobiOrdering::sweep_transitions(int sweep) const {
  std::vector<Transition> out;
  sweep_transitions_into(sweep, out);
  return out;
}

void JacobiOrdering::sweep_transitions_into(int sweep, std::vector<Transition>& out) const {
  out.assign(base_transitions_.begin(), base_transitions_.end());
  if (sweep % d_ != 0) {
    for (auto& t : out) t.link = sweep_link_map(sweep, t.link);
  }
}

}  // namespace jmh::ord
