#include "ord/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "ord/bounds.hpp"

namespace jmh::ord {

SequenceReport analyze(const LinkSequence& seq) {
  SequenceReport r;
  r.e = seq.e();
  r.length = seq.size();
  r.alpha = seq.alpha();
  r.lower_bound = alpha_lower_bound(seq.e());
  r.alpha_ratio = static_cast<double>(r.alpha) / static_cast<double>(r.lower_bound);
  r.degree = seq.degree();
  r.histogram = seq.histogram();
  const auto [mn, mx] = std::minmax_element(r.histogram.begin(), r.histogram.end());
  r.balance = *mx == 0 ? 0.0 : static_cast<double>(*mn) / static_cast<double>(*mx);
  const std::size_t max_q = std::min<std::size_t>(static_cast<std::size_t>(seq.e()), seq.size());
  r.distinct_fraction.reserve(max_q);
  for (std::size_t q = 1; q <= max_q; ++q)
    r.distinct_fraction.push_back(seq.distinct_window_fraction(q));
  r.valid = seq.is_valid();
  return r;
}

std::vector<int> window_max_mult_profile(const LinkSequence& seq, std::size_t max_q) {
  JMH_REQUIRE(max_q >= 1 && max_q <= seq.size(), "profile window range invalid");
  std::vector<int> profile;
  profile.reserve(max_q);
  for (std::size_t q = 1; q <= max_q; ++q) {
    int worst = 0;
    for (const auto& w : seq.window_stats(q)) worst = std::max(worst, w.max_mult);
    profile.push_back(worst);
  }
  return profile;
}

double mean_distinct_links(const LinkSequence& seq, std::size_t q) {
  const auto stats = seq.window_stats(q);
  double total = 0.0;
  for (const auto& w : stats) total += w.distinct;
  return total / static_cast<double>(stats.size());
}

std::string render_report(const SequenceReport& r, const std::string& title) {
  std::ostringstream os;
  os << title << " (e = " << r.e << ", K = " << r.length << ")\n";
  os << "  alpha          : " << r.alpha << "  (lower bound " << r.lower_bound << ", ratio "
     << r.alpha_ratio << ")\n";
  os << "  degree         : " << r.degree << "\n";
  os << "  histogram      :";
  for (int h : r.histogram) os << ' ' << h;
  os << "\n  balance        : " << r.balance << "\n";
  os << "  distinct-window:";
  for (double f : r.distinct_fraction) os << ' ' << f;
  os << "\n  valid e-seq    : " << (r.valid ? "yes" : "NO") << "\n";
  return os.str();
}

std::string compare_orderings(int e) {
  std::ostringstream os;
  os << "phase e = " << e << "\n";
  os << "ordering      alpha  ratio  degree  balance\n";
  for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4,
                    OrderingKind::MinAlpha}) {
    if (kind == OrderingKind::Degree4 && e < 4) continue;
    const SequenceReport r = analyze(make_exchange_sequence(kind, e));
    os << "  " << to_string(kind);
    for (std::size_t pad = to_string(kind).size(); pad < 12; ++pad) os << ' ';
    os << r.alpha << "  " << r.alpha_ratio << "  " << r.degree << "  " << r.balance << "\n";
  }
  return os.str();
}

}  // namespace jmh::ord
