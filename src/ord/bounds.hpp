// Lower bounds and the permuted-BR analytic alpha bound (paper 3.1 + appendix).
#pragma once

#include <cstdint>

namespace jmh::ord {

/// Minimum possible alpha of any e-sequence: ceil((2^e - 1) / e).
/// Every link in [0, e) must appear at least once in a Hamiltonian path's
/// link sequence (otherwise the path would stay inside a proper subcube),
/// and the 2^e - 1 elements are spread over e links (paper section 3.1).
std::uint64_t alpha_lower_bound(int e);

/// alpha of D_e^BR: link 0 appears in every other position, 2^{e-1} times.
std::uint64_t br_alpha(int e);

/// Appendix Theorem 2 upper bound on alpha(D_e^p-BR), exact when e-1 is a
/// power of two:
///     alpha <= 2^e/(e-1) + 2^{e-2}/(e-1) - 2^e/(e-1)^2
double permuted_br_alpha_bound(int e);

/// Appendix Theorem 3: the ratio bound/lower-bound tends to 1.25 as e grows.
double permuted_br_asymptotic_ratio();

}  // namespace jmh::ord
