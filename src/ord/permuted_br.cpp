#include "ord/permuted_br.hpp"

#include <numeric>

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "ord/br.hpp"

namespace jmh::ord {

LinkPermutation::LinkPermutation(int e) : map_(static_cast<std::size_t>(e)) {
  JMH_REQUIRE(e >= 1, "permutation size must be positive");
  std::iota(map_.begin(), map_.end(), 0);
}

LinkPermutation LinkPermutation::base_transposition(int e, int k) {
  JMH_REQUIRE(e >= 2, "base transposition needs e >= 2");
  JMH_REQUIRE(k >= 0, "transformation level must be non-negative");
  LinkPermutation p(e);
  const int L = (e - 1) >> k;
  JMH_REQUIRE(L >= 1, "transformation level too deep for this e");
  for (int i = 0; i < L; ++i) p.map_[static_cast<std::size_t>(i)] = L - 1 - i;
  return p;
}

Link LinkPermutation::operator()(Link l) const {
  JMH_REQUIRE(l >= 0 && l < size(), "link out of permutation domain");
  return map_[static_cast<std::size_t>(l)];
}

LinkPermutation operator*(const LinkPermutation& a, const LinkPermutation& b) {
  JMH_REQUIRE(a.size() == b.size(), "permutation size mismatch");
  LinkPermutation out(a.size());
  for (int x = 0; x < b.size(); ++x)
    out.map_[static_cast<std::size_t>(x)] = a(b(x));
  return out;
}

LinkPermutation LinkPermutation::inverse() const {
  LinkPermutation out(size());
  for (int x = 0; x < size(); ++x)
    out.map_[static_cast<std::size_t>(map_[static_cast<std::size_t>(x)])] = x;
  return out;
}

LinkPermutation LinkPermutation::conjugated_by(const LinkPermutation& phi) const {
  return phi * (*this) * phi.inverse();
}

bool LinkPermutation::is_identity() const {
  for (int x = 0; x < size(); ++x)
    if (map_[static_cast<std::size_t>(x)] != x) return false;
  return true;
}

int permuted_br_num_transformations(int e) {
  JMH_REQUIRE(e >= 2, "permuted-BR needs e >= 2");
  return ilog2(static_cast<std::uint64_t>(e - 1));
}

namespace {

// Shared construction: returns the final sequence links and (optionally
// observed) per-subsequence permutations. Subsequence j at level k occupies
// positions [j*B, j*B + B - 2], B = 2^(e-k-1); positions j*B - 1 hold the
// separator links, which no transformation touches.
struct PbrConstruction {
  std::vector<Link> links;
  // applied[k][j] = permutation applied at level k to subsequence j
  // (identity for even j).
  std::vector<std::vector<LinkPermutation>> applied;
};

PbrConstruction build_pbr(int e) {
  JMH_REQUIRE(e >= 2 && e <= cube::Hypercube::kMaxDimension, "e out of range for permuted-BR");
  PbrConstruction out{br_sequence(e).links(), {}};
  const int S = permuted_br_num_transformations(e);

  // phi[j]: composition (application order) of permutations applied so far
  // to enclosing subsequences of the current-level subsequence j.
  std::vector<LinkPermutation> phi(1, LinkPermutation(e));

  for (int k = 0; k < S; ++k) {
    // Refine granularity: each level-(k-1) subsequence splits in two.
    std::vector<LinkPermutation> next_phi;
    next_phi.reserve(phi.size() * 2);
    for (const auto& p : phi) {
      next_phi.push_back(p);
      next_phi.push_back(p);
    }
    phi = std::move(next_phi);

    const LinkPermutation base = LinkPermutation::base_transposition(e, k);
    const std::size_t block = std::size_t{1} << (e - k - 1);
    const std::size_t count = phi.size();  // == 2^{k+1}
    JMH_CHECK(count * block - 1 == out.links.size(), "subsequence partition mismatch");

    std::vector<LinkPermutation> level_applied(count, LinkPermutation(e));
    for (std::size_t j = 1; j < count; j += 2) {
      const LinkPermutation sigma = base.conjugated_by(phi[j]);
      const std::size_t begin = j * block;
      const std::size_t end = begin + block - 1;  // exclusive; skips separator
      for (std::size_t p = begin; p < end; ++p)
        out.links[p] = sigma(out.links[p]);
      phi[j] = sigma * phi[j];
      level_applied[j] = sigma;
    }
    out.applied.push_back(std::move(level_applied));
  }
  return out;
}

}  // namespace

LinkSequence permuted_br_sequence(int e) {
  return LinkSequence(build_pbr(e).links, e);
}

LinkPermutation permuted_br_subsequence_permutation(int e, int k, int j) {
  const auto c = build_pbr(e);
  JMH_REQUIRE(k >= 0 && k < static_cast<int>(c.applied.size()), "level out of range");
  const auto& level = c.applied[static_cast<std::size_t>(k)];
  JMH_REQUIRE(j >= 0 && j < static_cast<int>(level.size()), "subsequence index out of range");
  return level[static_cast<std::size_t>(j)];
}

}  // namespace jmh::ord
