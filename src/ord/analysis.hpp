// Quantitative analysis of exchange-phase sequences.
//
// Gathers in one report the figures of merit the paper reasons with --
// alpha (deep-pipelining cost driver, section 3.1), degree and
// distinct-window fractions (shallow-pipelining cost drivers, Definition
// 2), histogram balance (the objective of the permuted-BR transformations)
// -- plus windowed profiles used by the ablation benches.
#pragma once

#include <string>
#include <vector>

#include "ord/ordering.hpp"

namespace jmh::ord {

struct SequenceReport {
  int e = 0;
  std::size_t length = 0;
  int alpha = 0;
  std::uint64_t lower_bound = 0;
  double alpha_ratio = 0.0;  ///< alpha / lower_bound
  int degree = 0;
  std::vector<int> histogram;          ///< per-link multiplicity
  double balance = 0.0;                ///< min/max histogram entry (1 = perfectly even)
  std::vector<double> distinct_fraction;  ///< index q-1: fraction of distinct length-q windows, q = 1..e
  bool valid = false;                  ///< e-sequence (Hamiltonian path) check
};

/// Full report for one sequence.
SequenceReport analyze(const LinkSequence& seq);

/// Worst max-multiplicity over all length-q windows, for q = 1..max_q.
/// Lower is better; an ideal sequence has ceil(q/e).
std::vector<int> window_max_mult_profile(const LinkSequence& seq, std::size_t max_q);

/// Mean number of distinct links per length-q window: the expected
/// communication parallelism at shallow pipelining degree q.
double mean_distinct_links(const LinkSequence& seq, std::size_t q);

/// Renders a report as an aligned text block (used by examples/tools).
std::string render_report(const SequenceReport& report, const std::string& title);

/// Side-by-side comparison of the four orderings' sequences for phase e.
std::string compare_orderings(int e);

}  // namespace jmh::ord
