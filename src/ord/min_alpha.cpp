#include "ord/min_alpha.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "ord/bounds.hpp"

namespace jmh::ord {

LinkSequence paper_min_alpha_sequence(int e) {
  // Verbatim from paper section 3.1.
  switch (e) {
    case 2:
      return sequence_from_string("010", 2);
    case 3:
      return sequence_from_string("0102101", 3);
    case 4:
      return sequence_from_string("010203212303121", 4);
    case 5:
      return sequence_from_string("0102010301021412321230323414323", 5);
    case 6:
      return sequence_from_string(
          "010201030102010401021312521312432313234350542453542414345254345", 6);
    default:
      JMH_REQUIRE(false, "paper min-alpha sequences exist only for e in [2,6]");
  }
  // unreachable
  return LinkSequence({0}, 1);
}

namespace {

struct SearchState {
  int e;
  int bound;
  std::uint64_t node_budget;  // 0 = unlimited
  std::uint64_t nodes = 0;
  bool budget_hit = false;
  std::uint64_t visited = 0;  // bitmask over 2^e nodes (e <= 6 fits in u64)
  std::vector<int> used;      // per-link multiplicity so far
  std::vector<cube::Link> seq;
  int capacity_slack = 0;     // e*bound - (2^e - 1) minus overuse consumed

  bool dfs(cube::Node cur, std::size_t remaining) {
    if (remaining == 0) return true;
    if (node_budget != 0 && nodes >= node_budget) {
      budget_hit = true;
      return false;
    }
    ++nodes;
    for (cube::Link l = 0; l < e; ++l) {
      if (used[static_cast<std::size_t>(l)] >= bound) continue;
      const cube::Node next = cur ^ (cube::Node{1} << l);
      const std::uint64_t bit = std::uint64_t{1} << next;
      if (visited & bit) continue;
      visited |= bit;
      ++used[static_cast<std::size_t>(l)];
      seq.push_back(l);
      if (dfs(next, remaining - 1)) return true;
      seq.pop_back();
      --used[static_cast<std::size_t>(l)];
      visited &= ~bit;
      if (budget_hit) return false;
    }
    return false;
  }
};

}  // namespace

MinAlphaSearchResult find_sequence_with_alpha(int e, int bound, std::uint64_t node_budget) {
  JMH_REQUIRE(e >= 1 && e <= 6, "search supports e <= 6 (visited set is a 64-bit mask)");
  JMH_REQUIRE(bound >= 1, "bound must be positive");

  SearchState st;
  st.e = e;
  st.bound = bound;
  st.node_budget = node_budget;
  st.used.assign(static_cast<std::size_t>(e), 0);
  const std::size_t steps = (std::size_t{1} << e) - 1;
  st.seq.reserve(steps);
  st.visited = 1;  // start at node 0 (vertex-transitive, WLOG)

  MinAlphaSearchResult result;
  const bool found = st.dfs(0, steps);
  result.nodes_expanded = st.nodes;
  result.exhausted = !st.budget_hit;
  if (found) result.sequence = LinkSequence(st.seq, e);
  return result;
}

std::optional<LinkSequence> search_min_alpha(int e, std::uint64_t node_budget) {
  const int lb = static_cast<int>(alpha_lower_bound(e));
  for (int bound = lb; bound <= static_cast<int>((std::uint64_t{1} << e) - 1); ++bound) {
    const auto r = find_sequence_with_alpha(e, bound, node_budget);
    if (r.sequence) return r.sequence;
    if (!r.exhausted) return std::nullopt;  // ran out of budget: no proof
  }
  return std::nullopt;
}

}  // namespace jmh::ord
