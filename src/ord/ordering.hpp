// Full-sweep Jacobi orderings for a d-cube (paper sections 2.3.1 and 3).
//
// The m columns of A and U are grouped into 2^{d+1} blocks, two per node
// (one FIXED, one MOBILE). A sweep consists of 2^{d+1} - 1 steps; in each
// step every node pairs the columns of its two resident blocks, then
// performs one transition. The transition structure (reconstructed from the
// paper's description of the Block-Recursive scheme; see DESIGN.md note 1):
//
//   for e = d down to 1:
//     exchange phase e: the 2^e - 1 transitions of sequence D_e; each is a
//       MOBILE <-> MOBILE exchange with the neighbor across the given link,
//       so the mobile block walks a Hamiltonian path of its e-subcube and
//       meets every fixed block of that subcube;
//     division transition across link e-1: ASYMMETRIC -- the node with
//       bit e-1 == 0 sends its mobile block and receives the neighbor's
//       fixed block; the neighbor sends its fixed block and receives the
//       mobile. Former-fixed blocks gather on the 0 side, former-mobiles on
//       the 1 side, and in both cases the received block becomes the new
//       mobile. This splits the all-pairs problem into two independent
//       half-size instances that recurse in the two (e-1)-subcubes.
//   last transition across link d-1 (mobile exchange; repositions blocks
//     for the next sweep).
//
// Orderings differ only in the family of exchange sequences {D_e}:
//   BR          -> D_e^BR
//   PermutedBR  -> D_e^p-BR
//   Degree4     -> D_e^D4 (e >= 4), falling back to D_e^BR for e <= 3
//   MinAlpha    -> paper's D_e^min-alpha (e <= 6), falling back to D_e^p-BR
//
// Between sweeps the link identifiers are rotated (paper 2.3.1):
// sigma_0 = id, sigma_s(i) = (sigma_{s-1}(i) - 1) mod d.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ord/sequence.hpp"

namespace jmh::ord {

enum class OrderingKind {
  BR,
  PermutedBR,
  Degree4,
  MinAlpha,
  Custom,  ///< user-supplied sequences (JacobiOrdering sequence constructor)
};

std::string to_string(OrderingKind kind);

/// Short machine-friendly token ("br" | "pbr" | "d4" | "minalpha" |
/// "custom"), the form used by api::SolverSpec key=value strings.
std::string spec_token(OrderingKind kind);

/// Parses @p text into a kind. Accepts both the spec tokens and the
/// to_string names, case-insensitively and ignoring '-'/'_'. Returns false
/// on unknown names ("custom" parses: callers decide whether to accept it).
bool parse_ordering_kind(std::string_view text, OrderingKind& out);

/// One transition of the sweep schedule.
struct Transition {
  Link link = 0;          ///< physical dimension crossed
  bool division = false;  ///< asymmetric division semantics (see above)
};

/// Phase descriptor, used by the cost models (pipelining applies to
/// exchange phases only).
struct PhaseInfo {
  enum class Type { Exchange, Division, LastTransition };
  Type type = Type::Exchange;
  int e = 0;                   ///< phase index for exchange phases; 0 otherwise
  std::size_t first_step = 0;  ///< index of the first step of this phase
  std::size_t num_steps = 0;   ///< steps (== transitions) in this phase
};

class JacobiOrdering {
 public:
  /// Ordering for a d-cube, d >= 1.
  JacobiOrdering(OrderingKind kind, int d);

  /// Custom ordering from user-supplied exchange sequences, one per phase
  /// e = 1..d in that order (sequences[e-1] must be an e-sequence; every
  /// sequence is validated as a Hamiltonian path of its e-cube). Any
  /// family accepted here yields a correct sweep -- the division/last-
  /// transition skeleton does not depend on the D_e choice.
  explicit JacobiOrdering(std::vector<LinkSequence> sequences);

  OrderingKind kind() const noexcept { return kind_; }
  int dimension() const noexcept { return d_; }
  std::size_t num_blocks() const noexcept { return std::size_t{2} << d_; }
  std::size_t steps_per_sweep() const noexcept { return (std::size_t{2} << d_) - 1; }

  /// Exchange sequence used in phase e (1 <= e <= d), before the inter-sweep
  /// link rotation.
  const LinkSequence& exchange_sequence(int e) const;

  /// Phase decomposition of one sweep (independent of the sweep number).
  const std::vector<PhaseInfo>& phases() const noexcept { return phases_; }

  /// Full transition list for sweep @p sweep (0-based), with sigma_sweep
  /// applied to all link identifiers. Size == steps_per_sweep().
  std::vector<Transition> sweep_transitions(int sweep) const;

  /// Allocation-free variant for the steady-state sweep loop: assigns the
  /// sweep's transitions into @p out, reusing its capacity. After the first
  /// call with this @p out, later calls allocate nothing (the size is
  /// steps_per_sweep() for every sweep).
  void sweep_transitions_into(int sweep, std::vector<Transition>& out) const;

  /// sigma_s(i): physical link for logical link i during sweep s.
  Link sweep_link_map(int sweep, Link logical) const;

 private:
  void build_sweep_skeleton();

  OrderingKind kind_;
  int d_;
  std::vector<LinkSequence> sequences_;  // index e-1 -> D_e
  std::vector<Transition> base_transitions_;
  std::vector<PhaseInfo> phases_;
};

/// Chooses the D_e family for a kind (exposed for tests and cost models).
LinkSequence make_exchange_sequence(OrderingKind kind, int e);

}  // namespace jmh::ord
