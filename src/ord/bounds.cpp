#include "ord/bounds.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace jmh::ord {

std::uint64_t alpha_lower_bound(int e) {
  JMH_REQUIRE(e >= 1 && e <= 62, "e out of range");
  return ceil_div((std::uint64_t{1} << e) - 1, static_cast<std::uint64_t>(e));
}

std::uint64_t br_alpha(int e) {
  JMH_REQUIRE(e >= 1 && e <= 62, "e out of range");
  return std::uint64_t{1} << (e - 1);
}

double permuted_br_alpha_bound(int e) {
  JMH_REQUIRE(e >= 2, "bound defined for e >= 2");
  const double p2e = std::ldexp(1.0, e);        // 2^e
  const double p2e2 = std::ldexp(1.0, e - 2);   // 2^{e-2}
  const double em1 = static_cast<double>(e - 1);
  return p2e / em1 + p2e2 / em1 - p2e / (em1 * em1);
}

double permuted_br_asymptotic_ratio() { return 1.25; }

}  // namespace jmh::ord
