// The degree-4 ordering's sequences D_e^D4 (paper section 3.3).
//
//   E_3 = <0123012>
//   E_i = <E_{i-1}, i, E_{i-1}>         for 4 <= i < e
//   D_e^D4 = <E_{e-1}, 1, E_{e-1}>      for e >= 4
//
// e.g. D_5^D4 = <0123012401230121012301240123012>. Almost every length-4
// window of D_e^D4 consists of four distinct links (only the four windows
// straddling the central "1" repeat one), so shallow communication
// pipelining achieves close to a 4x reduction of the bandwidth term.
// Theorem 1 of the paper shows D_e^D4 is an e-sequence.
#pragma once

#include "ord/sequence.hpp"

namespace jmh::ord {

/// Generates E_i (i >= 3), the building block of D_e^D4. Length 2^i - 1,
/// links in [0, i].
std::vector<Link> degree4_building_block(int i);

/// Generates D_e^D4. Precondition: 4 <= e <= Hypercube::kMaxDimension.
LinkSequence degree4_sequence(int e);

}  // namespace jmh::ord
