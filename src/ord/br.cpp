#include "ord/br.hpp"

#include <bit>

#include "common/assert.hpp"

namespace jmh::ord {

LinkSequence br_sequence(int e) {
  JMH_REQUIRE(e >= 1 && e <= cube::Hypercube::kMaxDimension, "e out of range");
  const std::uint64_t n = (std::uint64_t{1} << e) - 1;
  std::vector<Link> links;
  links.reserve(n);
  for (std::uint64_t t = 1; t <= n; ++t) links.push_back(br_link_at(t));
  return LinkSequence(std::move(links), e);
}

Link br_link_at(std::uint64_t t) {
  JMH_REQUIRE(t >= 1, "transition index is 1-based");
  return std::countr_zero(t);
}

}  // namespace jmh::ord
