#include "ord/schedule.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace jmh::ord {

BlockTracker::BlockTracker(int d) : d_(d) {
  JMH_REQUIRE(d >= 0 && d <= 20, "block tracker dimension out of range");
  const std::uint64_t n = num_nodes();
  fixed_.resize(n);
  mobile_.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    fixed_[i] = static_cast<BlockId>(2 * i);
    mobile_[i] = static_cast<BlockId>(2 * i + 1);
  }
}

BlockId BlockTracker::fixed_block(Node n) const {
  JMH_REQUIRE(n < num_nodes(), "node out of range");
  return fixed_[n];
}

BlockId BlockTracker::mobile_block(Node n) const {
  JMH_REQUIRE(n < num_nodes(), "node out of range");
  return mobile_[n];
}

Node BlockTracker::locate(BlockId b) const {
  JMH_REQUIRE(b < num_blocks(), "block out of range");
  for (Node n = 0; n < num_nodes(); ++n)
    if (fixed_[n] == b || mobile_[n] == b) return n;
  JMH_CHECK(false, "block not found -- tracker state corrupted");
  return 0;
}

void BlockTracker::apply(const Transition& t) {
  JMH_REQUIRE(t.link >= 0 && t.link < d_, "transition link out of range");
  const Node bit = Node{1} << t.link;
  for (Node a = 0; a < num_nodes(); ++a) {
    if (a & bit) continue;  // handle each neighbor pair once, from the 0 side
    const Node b = a | bit;
    if (!t.division) {
      std::swap(mobile_[a], mobile_[b]);
    } else {
      const BlockId a_mobile = mobile_[a];
      const BlockId b_fixed = fixed_[b];
      const BlockId b_mobile = mobile_[b];
      // a keeps its fixed, receives b's fixed as new mobile.
      mobile_[a] = b_fixed;
      // b keeps its mobile (as new fixed), receives a's mobile as new mobile.
      fixed_[b] = b_mobile;
      mobile_[b] = a_mobile;
    }
  }
}

std::vector<std::vector<Meeting>> run_sweep(const JacobiOrdering& ordering, int sweep,
                                            BlockTracker& tracker) {
  JMH_REQUIRE(tracker.dimension() == ordering.dimension(), "tracker/ordering dimension mismatch");
  const auto transitions = ordering.sweep_transitions(sweep);
  std::vector<std::vector<Meeting>> steps;
  steps.reserve(transitions.size());
  for (const Transition& t : transitions) {
    std::vector<Meeting> step;
    step.reserve(tracker.num_nodes());
    for (Node n = 0; n < tracker.num_nodes(); ++n)
      step.push_back({n, tracker.fixed_block(n), tracker.mobile_block(n)});
    steps.push_back(std::move(step));
    tracker.apply(t);
  }
  return steps;
}

SweepVerification verify_all_pairs_once(const JacobiOrdering& ordering, int sweep,
                                        BlockTracker tracker) {
  const std::uint64_t nblocks = tracker.num_blocks();
  std::vector<int> met(nblocks * nblocks, 0);
  const auto steps = run_sweep(ordering, sweep, tracker);

  for (std::size_t s = 0; s < steps.size(); ++s) {
    for (const Meeting& m : steps[s]) {
      const BlockId lo = std::min(m.fixed, m.mobile);
      const BlockId hi = std::max(m.fixed, m.mobile);
      if (lo == hi) {
        std::ostringstream os;
        os << "sweep " << sweep << " step " << s << ": node " << m.node
           << " holds block " << lo << " in both slots";
        return {false, os.str()};
      }
      int& count = met[lo * nblocks + hi];
      if (++count > 1) {
        std::ostringstream os;
        os << "sweep " << sweep << " step " << s << ": blocks (" << lo << ',' << hi
           << ") meet more than once";
        return {false, os.str()};
      }
    }
  }
  for (BlockId i = 0; i < nblocks; ++i) {
    for (BlockId j = i + 1; j < nblocks; ++j) {
      if (met[i * nblocks + j] != 1) {
        std::ostringstream os;
        os << "sweep " << sweep << ": blocks (" << i << ',' << j << ") never meet";
        return {false, os.str()};
      }
    }
  }
  return {true, {}};
}

SweepVerification verify_sweeps(const JacobiOrdering& ordering, int num_sweeps) {
  BlockTracker tracker(ordering.dimension());
  for (int s = 0; s < num_sweeps; ++s) {
    auto result = verify_all_pairs_once(ordering, s, tracker);
    if (!result.ok) return result;
    // Advance the live tracker through the sweep so the next one starts from
    // the real end-of-sweep placement.
    run_sweep(ordering, s, tracker);
  }
  return {true, {}};
}

}  // namespace jmh::ord
