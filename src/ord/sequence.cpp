#include "ord/sequence.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace jmh::ord {

LinkSequence::LinkSequence(std::vector<Link> links, int e) : links_(std::move(links)), e_(e) {
  JMH_REQUIRE(e >= 1 && e <= cube::Hypercube::kMaxDimension, "phase index e out of range");
  JMH_REQUIRE(links_.size() == (std::size_t{1} << e) - 1,
              "sequence length must be 2^e - 1");
  for (Link l : links_)
    JMH_REQUIRE(l >= 0 && l < e, "link id outside [0, e)");
}

int LinkSequence::alpha() const {
  const auto h = histogram();
  return *std::max_element(h.begin(), h.end());
}

std::vector<int> LinkSequence::histogram() const {
  std::vector<int> h(static_cast<std::size_t>(e_), 0);
  for (Link l : links_) ++h[static_cast<std::size_t>(l)];
  return h;
}

bool LinkSequence::is_valid() const { return cube::is_e_sequence(links_, e_); }

std::vector<WindowStats> LinkSequence::window_stats(std::size_t q) const {
  JMH_REQUIRE(q >= 1 && q <= links_.size(), "window length out of range");
  std::vector<WindowStats> out;
  out.reserve(links_.size() - q + 1);

  std::vector<int> count(static_cast<std::size_t>(e_), 0);
  int distinct = 0;
  // Multiplicity histogram-of-histogram: mult_count[m] = #links with
  // multiplicity m in the current window; lets us maintain max_mult in O(1)
  // amortized on slide.
  std::vector<int> mult_count(q + 1, 0);
  int max_mult = 0;

  auto add = [&](Link l) {
    auto& c = count[static_cast<std::size_t>(l)];
    if (c == 0) ++distinct;
    if (c > 0) --mult_count[static_cast<std::size_t>(c)];
    ++c;
    ++mult_count[static_cast<std::size_t>(c)];
    max_mult = std::max(max_mult, c);
  };
  auto remove = [&](Link l) {
    auto& c = count[static_cast<std::size_t>(l)];
    --mult_count[static_cast<std::size_t>(c)];
    --c;
    if (c == 0) --distinct;
    if (c > 0) ++mult_count[static_cast<std::size_t>(c)];
    while (max_mult > 0 && mult_count[static_cast<std::size_t>(max_mult)] == 0) --max_mult;
  };

  for (std::size_t i = 0; i < q; ++i) add(links_[i]);
  out.push_back({distinct, max_mult});
  for (std::size_t i = q; i < links_.size(); ++i) {
    remove(links_[i - q]);
    add(links_[i]);
    out.push_back({distinct, max_mult});
  }
  return out;
}

double LinkSequence::distinct_window_fraction(std::size_t q) const {
  const auto stats = window_stats(q);
  std::size_t distinct_windows = 0;
  for (const auto& w : stats)
    if (w.max_mult == 1) ++distinct_windows;
  return static_cast<double>(distinct_windows) / static_cast<double>(stats.size());
}

int LinkSequence::degree() const {
  // Largest n with a strict-majority of pairwise-distinct length-n windows.
  // Any window longer than e must repeat a link, so n <= e.
  int deg = 0;
  const std::size_t max_n = std::min<std::size_t>(static_cast<std::size_t>(e_), links_.size());
  for (std::size_t n = 1; n <= max_n; ++n) {
    if (distinct_window_fraction(n) > 0.5)
      deg = static_cast<int>(n);
    else
      break;
  }
  return deg;
}

std::string LinkSequence::to_string() const {
  std::string s;
  s.reserve(links_.size());
  for (Link l : links_) {
    if (l < 10) {
      s.push_back(static_cast<char>('0' + l));
    } else {
      s.push_back('[');
      s += std::to_string(l);
      s.push_back(']');
    }
  }
  return s;
}

LinkSequence sequence_from_string(const std::string& digits, int e) {
  std::vector<Link> links;
  links.reserve(digits.size());
  for (char c : digits) {
    JMH_REQUIRE(c >= '0' && c <= '9', "sequence string must be decimal digits");
    links.push_back(c - '0');
  }
  return LinkSequence(std::move(links), e);
}

}  // namespace jmh::ord
