// The Block-Recursive (BR) ordering's exchange-phase sequences (paper 2.3.1).
//
//   D_1^BR = <0>
//   D_i^BR = <D_{i-1}^BR, i-1, D_{i-1}^BR>        for 1 < i <= e
//
// e.g. D_4^BR = <010201030102010>. D_e^BR is exactly the binary-reflected
// Gray-code link order (link used at step t is the number of trailing ones
// of t-1... equivalently ctz(t) for t = 1..2^e-1), and is an e-sequence.
//
// Its alpha is 2^{e-1} (link 0 appears in every other position), which is
// why communication pipelining can speed BR up by at most 2x (section 2.4).
#pragma once

#include "ord/sequence.hpp"

namespace jmh::ord {

/// Generates D_e^BR. Precondition: 1 <= e <= Hypercube::kMaxDimension.
LinkSequence br_sequence(int e);

/// Link used by the t-th BR transition (t in [1, 2^e - 1]) without
/// materializing the sequence: the number of trailing zeros of t.
Link br_link_at(std::uint64_t t);

}  // namespace jmh::ord
