// Executable block schedule for a sweep, and its correctness verification.
//
// Tracks which block each node holds in its FIXED and MOBILE slots as the
// transitions of a JacobiOrdering are applied, and verifies the paper's
// correctness criterion: over one sweep, every unordered pair of the
// 2^{d+1} blocks is co-resident on some node during exactly one step.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cube/hypercube.hpp"
#include "ord/ordering.hpp"

namespace jmh::ord {

using cube::Node;

using BlockId = std::uint32_t;

/// Live block placement: two slots per node.
class BlockTracker {
 public:
  /// Initial placement on a d-cube: node n holds blocks 2n (fixed) and
  /// 2n+1 (mobile).
  explicit BlockTracker(int d);

  int dimension() const noexcept { return d_; }
  std::uint64_t num_nodes() const noexcept { return std::uint64_t{1} << d_; }
  std::uint64_t num_blocks() const noexcept { return std::uint64_t{2} << d_; }

  BlockId fixed_block(Node n) const;
  BlockId mobile_block(Node n) const;

  /// Node currently holding block @p b (in either slot).
  Node locate(BlockId b) const;

  /// Applies one transition simultaneously at every node.
  ///
  /// Exchange across link l: each node swaps mobile blocks with its
  /// neighbor. Division across link l: the bit-l==0 node sends its mobile
  /// and receives the neighbor's fixed; the bit-l==1 node sends its fixed
  /// and receives the neighbor's mobile; on both sides the received block
  /// becomes the new mobile and the kept block the new fixed.
  void apply(const Transition& t);

 private:
  int d_;
  std::vector<BlockId> fixed_;
  std::vector<BlockId> mobile_;
};

/// One step's meeting at one node.
struct Meeting {
  Node node;
  BlockId fixed;
  BlockId mobile;
};

/// All meetings of sweep @p sweep of @p ordering, step by step, starting
/// from the placement @p tracker (which is advanced through the sweep).
std::vector<std::vector<Meeting>> run_sweep(const JacobiOrdering& ordering, int sweep,
                                            BlockTracker& tracker);

/// Verification outcome for verify_all_pairs_once.
struct SweepVerification {
  bool ok = false;
  std::string error;  ///< human-readable description of the first violation
};

/// Checks that during sweep @p sweep (starting from @p tracker's placement)
/// every unordered pair of blocks meets exactly once.
SweepVerification verify_all_pairs_once(const JacobiOrdering& ordering, int sweep,
                                        BlockTracker tracker);

/// Convenience: verifies sweeps [0, num_sweeps) chained from the initial
/// placement, i.e. including the inter-sweep link rotation sigma_s.
SweepVerification verify_sweeps(const JacobiOrdering& ordering, int num_sweeps);

}  // namespace jmh::ord
