// LinkSequence: an exchange-phase link sequence D_e and its figures of merit.
//
// An exchange phase e of a BR-style sweep performs 2^e - 1 transitions; the
// sequence of link (dimension) identifiers used is D_e. The paper
// characterizes sequences by:
//
//  * alpha (section 3.1): the maximum number of repetitions of any one link
//    in the sequence. Under deep communication pipelining every kernel stage
//    costs e*Ts + alpha*S*Tw, so alpha alone determines the bandwidth term.
//
//  * degree (Definition 2): n such that the majority of length-n windows
//    consist of pairwise-distinct links but the majority of length-(n+1)
//    windows do not. Under shallow pipelining with degree Q, each stage uses
//    a length-Q window of D_e, so the degree bounds the usable communication
//    parallelism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cube/path.hpp"

namespace jmh::ord {

using cube::Link;

/// Multiplicity statistics of one sliding window of a sequence.
struct WindowStats {
  int distinct = 0;  ///< number of distinct links in the window
  int max_mult = 0;  ///< maximum multiplicity of any link in the window
};

class LinkSequence {
 public:
  LinkSequence() = default;

  /// Wraps a raw link sequence for exchange phase @p e. Validates that all
  /// links lie in [0, e) and that the length is 2^e - 1.
  LinkSequence(std::vector<Link> links, int e);

  int e() const noexcept { return e_; }
  std::size_t size() const noexcept { return links_.size(); }
  const std::vector<Link>& links() const noexcept { return links_; }
  Link operator[](std::size_t i) const { return links_[i]; }

  /// Maximum number of repetitions of any single link (paper's alpha).
  int alpha() const;

  /// Per-link multiplicity histogram, indexed by link id (size e).
  std::vector<int> histogram() const;

  /// True iff the sequence is an e-sequence (Hamiltonian path of the e-cube).
  bool is_valid() const;

  /// Stats for every length-q sliding window, computed incrementally in
  /// O(size) total. Result has size() - q + 1 entries. Precondition:
  /// 1 <= q <= size().
  std::vector<WindowStats> window_stats(std::size_t q) const;

  /// Fraction of length-q windows whose elements are pairwise distinct.
  double distinct_window_fraction(std::size_t q) const;

  /// Paper Definition 2: largest n such that the majority (>1/2) of length-n
  /// windows have pairwise-distinct elements. D_e^BR has degree 2; D_e^D4 has
  /// degree 4 (for e > 3).
  int degree() const;

  /// Render as a compact digit/letter string like the paper ("0102010");
  /// links >= 10 are printed in brackets, e.g. "[12]".
  std::string to_string() const;

 private:
  std::vector<Link> links_;
  int e_ = 0;
};

/// Parses a compact digit string ("0102010") into a sequence for phase e.
LinkSequence sequence_from_string(const std::string& digits, int e);

}  // namespace jmh::ord
