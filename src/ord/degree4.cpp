#include "ord/degree4.hpp"

#include "common/assert.hpp"

namespace jmh::ord {

std::vector<Link> degree4_building_block(int i) {
  JMH_REQUIRE(i >= 3 && i < cube::Hypercube::kMaxDimension, "E_i defined for i >= 3");
  std::vector<Link> cur = {0, 1, 2, 3, 0, 1, 2};  // E_3
  for (int level = 4; level <= i; ++level) {
    std::vector<Link> next;
    next.reserve(cur.size() * 2 + 1);
    next.insert(next.end(), cur.begin(), cur.end());
    next.push_back(level);
    next.insert(next.end(), cur.begin(), cur.end());
    cur = std::move(next);
  }
  JMH_CHECK(cur.size() == (std::size_t{1} << i) - 1, "E_i length mismatch");
  return cur;
}

LinkSequence degree4_sequence(int e) {
  JMH_REQUIRE(e >= 4 && e <= cube::Hypercube::kMaxDimension, "degree-4 ordering needs e >= 4");
  const std::vector<Link> block = degree4_building_block(e - 1);
  std::vector<Link> links;
  links.reserve(block.size() * 2 + 1);
  links.insert(links.end(), block.begin(), block.end());
  links.push_back(1);
  links.insert(links.end(), block.begin(), block.end());
  return LinkSequence(std::move(links), e);
}

}  // namespace jmh::ord
