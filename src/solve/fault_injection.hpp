// Deterministic fault injection for any Transport.
//
// FaultInjectingTransport decorates a real transport with the failure modes
// a networked deployment would see -- stalled exchanges, bit-flipped
// payloads, failed allreduce votes -- drawn from a seeded, replayable
// schedule (FaultPlan, solve/transport.hpp). The decisions are pure hashes
// of (seed, attempt, kind, event index): no RNG state, no communication, so
//
//   * every endpoint of an mpi_lite solve draws the SAME schedule and hits
//     the same fault at the same global step (no one-rank deadlocks);
//   * a run is replayable bit-for-bit from its seed (chaos soak triage);
//   * a retry with attempt+1 redraws every fault, which is what makes the
//     service's bounded retry-with-backoff meaningful.
//
// With all rates zero the decorator is pure delegation: solves are
// bit-identical to the bare transport (tested per backend), so it can stay
// in the stack permanently and be enabled by spec key alone.
#pragma once

#include <cstdint>

#include "net/mailbox.hpp"
#include "solve/transport.hpp"

namespace jmh::solve {

/// The pure decision function behind FaultInjectingTransport, exposed so
/// tests (and the service's retry search) can predict a schedule without
/// running a solve.
class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultPlan& plan) : plan_(plan) {}

  /// Does transition @p step (global_step index) get its payload corrupted?
  bool corrupt_at(std::uint64_t step) const noexcept;
  /// Is transition @p step delayed by plan.delay_us?
  bool delay_at(std::uint64_t step) const noexcept;
  /// Does the @p vote_index-th allreduce of the run fail?
  bool vote_fails(std::uint64_t vote_index) const noexcept;
  /// Which payload bit (mod payload size) flips when corrupt_at is true.
  std::uint64_t corrupt_bit(std::uint64_t step) const noexcept;

 private:
  FaultPlan plan_;
};

/// Wraps @p inner, injecting the scheduled faults ahead of the work they
/// target and delegating everything else untouched. Injected corruption is
/// surfaced through the real detection path -- the payload is serialized,
/// one bit is flipped, and ColumnBlock::assign_from raises TransportCorrupt
/// from its wire checksum -- so the soak exercises exactly the code a real
/// corrupted exchange would.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(Transport& inner, const FaultPlan& plan)
      : inner_(inner), schedule_(plan), delay_us_(plan.delay_us) {}

  int dimension() const override { return inner_.dimension(); }
  std::size_t num_columns() const override { return inner_.num_columns(); }
  void visit_nodes(common::FunctionRef<void(JacobiNode&)> fn) override {
    inner_.visit_nodes(fn);
  }
  void apply_transition(const ord::Transition& t, std::uint64_t step) override {
    inject_step_faults(step);
    inner_.apply_transition(t, step);
  }
  std::vector<double> allreduce_sum(std::vector<double> values) override;
  void allreduce_sum(std::span<double> values) override;
  SweepStats run_phase(const PhaseContext& ctx) override;
  std::vector<ColumnBlock> collect_blocks() override { return inner_.collect_blocks(); }
  /// The scratch payload below allocates on the (throwing) corruption path
  /// only; scheduling itself is pure arithmetic, so the inner transport's
  /// steady-state allocation claim carries through.
  bool steady_state_alloc_free() const noexcept override {
    return inner_.steady_state_alloc_free();
  }

 private:
  void inject_step_faults(std::uint64_t step);

  Transport& inner_;
  FaultSchedule schedule_;
  std::uint64_t delay_us_;
  std::uint64_t votes_ = 0;  ///< allreduce stream index, SPMD-identical
  net::Payload corrupt_scratch_;
  ColumnBlock corrupt_block_;
};

}  // namespace jmh::solve
