// Per-node state and computation of the distributed one-sided Jacobi
// solver, shared by the inline (sequential simulation) and mpi_lite
// (threaded) executors.
//
// A node holds two column blocks of the working pair (B = A*V, V). Each
// block carries its global column indices so rotations can be attributed
// and results reassembled after any number of block moves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "la/matrix.hpp"
#include "net/mailbox.hpp"
#include "solve/block_layout.hpp"

namespace jmh::solve {

/// A serialized block failed its wire checksum: the payload was damaged in
/// transit (or deliberately, by FaultInjectingTransport). Distinct from the
/// std::invalid_argument of a structurally impossible payload -- corruption
/// is an environment fault, to be retried or surfaced as TRANSPORT_CORRUPT,
/// not a caller bug.
class TransportCorrupt : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a-64 over the 64-bit patterns of @p header then @p body, folded to
/// 48 bits so the result is exactly representable as an integer-valued
/// double (a raw 64-bit hash stored via bit_cast could form a signaling
/// NaN inside a payload). Any single bit flip in either span changes it.
std::uint64_t wire_checksum(std::span<const double> header,
                            std::span<const double> body) noexcept;

/// A column block of (B, V): `cols` global column ids; `b` and `v` hold the
/// column data contiguously, column-major -- `rows` elements per B column,
/// `vrows` per V column. For the symmetric eigenproblem the two are equal;
/// for a rectangular m x n SVD input the B columns have m rows (they track
/// A * V) while the V columns always have n (the accumulated rotations act
/// on the column space).
struct ColumnBlock {
  ord::BlockId id = 0;
  std::size_t rows = 0;   ///< rows per B column
  std::size_t vrows = 0;  ///< rows per V column (== rows for square inputs)
  std::vector<std::size_t> cols;
  std::vector<double> b;
  std::vector<double> v;

  std::size_t num_cols() const noexcept { return cols.size(); }
  std::span<double> col_b(std::size_t i) { return {b.data() + i * rows, rows}; }
  std::span<double> col_v(std::size_t i) { return {v.data() + i * vrows, vrows}; }

  /// Flattens to an mpi_lite payload:
  /// [id, ncols, rows, vrows, checksum, cols..., b..., v...], where
  /// checksum = wire_checksum over the first four header words and the
  /// whole body. assign_from / deserialize verify it and throw
  /// TransportCorrupt on mismatch, so a damaged exchange can never
  /// silently converge to a wrong spectrum.
  net::Payload serialize() const;

  /// Flattens into @p out, reusing its capacity (cleared first). The
  /// allocation-free path of the steady-state exchange loop: after the
  /// first sweep the buffer never reallocates.
  void serialize_into(net::Payload& out) const;

  /// Parses a serialized block into this block, reusing the existing
  /// cols/b/v storage when capacities suffice.
  void assign_from(std::span<const double> payload);

  static ColumnBlock deserialize(std::span<const double> payload);
  static ColumnBlock deserialize(const net::Payload& payload);

  /// Parses a concatenation of serialized blocks (e.g. an allgatherv of
  /// per-rank payloads) back into blocks, in order. Each block is parsed
  /// in place from its span of the stream; no per-block payload copies.
  static std::vector<ColumnBlock> deserialize_stream(const net::Payload& payload);

  /// Splits into @p q column packets (contiguous groups, sizes differing by
  /// at most one; trailing packets may be empty when q > num_cols). Packets
  /// keep the block id. Used by the pipelined executor.
  std::vector<ColumnBlock> split(std::size_t q) const;

  /// split() into caller-owned scratch: @p packets is resized to @p q and
  /// each packet's storage reused. The pipelined exchange path calls this
  /// once per phase with the same scratch, so steady-state sweeps allocate
  /// nothing.
  void split_into(std::size_t q, std::vector<ColumnBlock>& packets) const;

  /// Reassembles packets produced by split (in order).
  static ColumnBlock merge(const std::vector<ColumnBlock>& packets);

  /// merge() into caller-owned scratch, reusing @p out's storage.
  static void merge_into(const std::vector<ColumnBlock>& packets, ColumnBlock& out);
};

/// Extracts block @p id of (B=A, V=I) from the input matrix. The layout
/// partitions the a.cols() columns; @p a may be rectangular (B columns get
/// a.rows() rows, V columns a.cols()).
ColumnBlock extract_block(const la::Matrix& a, const BlockLayout& layout, ord::BlockId id);

/// Per-node accumulation over (part of) a sweep: rotation count plus the
/// sum of squared pre-rotation off-diagonal dot products. Because a sweep
/// visits every unordered column pair exactly once, summing off2 across all
/// nodes over one sweep yields Sum_{i<j} (v_i^T A v_j)^2 -- half the
/// squared off-diagonal Frobenius norm of V^T A V -- measured as the sweep
/// passes over each pair.
struct SweepStats {
  std::size_t rotations = 0;
  double off2 = 0.0;

  SweepStats& operator+=(const SweepStats& o) {
    rotations += o.rotations;
    off2 += o.off2;
    return *this;
  }
};

class JacobiNode {
 public:
  JacobiNode(const la::Matrix& a, const BlockLayout& layout, cube::Node node);

  ColumnBlock& fixed() noexcept { return fixed_; }
  ColumnBlock& mobile() noexcept { return mobile_; }
  const ColumnBlock& fixed() const noexcept { return fixed_; }
  const ColumnBlock& mobile() const noexcept { return mobile_; }

  /// Step (1) of the sweep: pair every column of each resident block with
  /// the other columns of the same block. A non-null @p activity (indexed
  /// by global column id) gets both columns of every applied rotation
  /// marked -- the topk convergence vote; null keeps the hot loop
  /// untouched.
  SweepStats intra_block_pairings(double threshold, std::uint8_t* activity = nullptr);

  /// Step (2): pair every column of the fixed block with every column of
  /// the mobile block. @p activity as in intra_block_pairings.
  SweepStats inter_block_pairings(double threshold, std::uint8_t* activity = nullptr);

  /// Pairs every fixed column with every column of @p packet (a slice of
  /// some mobile block passing through this node); both sides are updated.
  /// The packetized unit of work of the pipelined executor. @p activity as
  /// in intra_block_pairings.
  SweepStats pair_fixed_with(ColumnBlock& packet, double threshold,
                             std::uint8_t* activity = nullptr);

  /// Sum of ||b_k||^2 over this node's resident columns. Summed across all
  /// nodes this is ||A||_F^2 (invariant under the method's rotations);
  /// used to normalize off-diagonal convergence tests.
  double frobenius_squared() const;

  /// Division bookkeeping: the received block becomes the new mobile and
  /// the kept block the new fixed (see ord::BlockTracker::apply).
  void install_mobile(ColumnBlock block) { mobile_ = std::move(block); }
  void promote_mobile_to_fixed() { std::swap(fixed_, mobile_); }

 private:
  ColumnBlock fixed_;
  ColumnBlock mobile_;
};

}  // namespace jmh::solve
