// Pipelined distributed one-sided Jacobi: the communication-pipelining
// technique (paper section 2.4 / ref. [9]) actually executed, not just
// modeled. A thin wrapper over the shared sweep engine with the packetized
// exchange-phase path of MpiLiteTransport (see solve/mpi_transport.hpp for
// the mechanism and its correctness argument).
//
// DEPRECATED entry point: delegates to the api facade. New code should use
// api::Solver with backend=mpi and a pipelining policy (api/solver.hpp).
#pragma once

#include "pipe/machine.hpp"
#include "solve/parallel_jacobi.hpp"

namespace jmh::solve {

struct PipelinedSolveOptions : SolveOptions {
  /// Packets per mobile block during exchange phases. 0 = auto: the
  /// pipe::find_optimal_sweep_q degree for this ordering and machine (the
  /// paper's optimizer, minimizing the summed exchange-phase cost). Values
  /// larger than a block's column count degrade gracefully to empty packets.
  std::uint64_t q = 0;
  /// Machine model the auto mode optimizes for (ignored when q >= 1).
  pipe::MachineParams machine;
};

/// Thread-per-node solve with packetized, overlapped exchange phases.
/// DEPRECATED: thin wrapper over the api facade (see header note).
DistributedResult solve_mpi_pipelined(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                      const PipelinedSolveOptions& opts = {});

}  // namespace jmh::solve
