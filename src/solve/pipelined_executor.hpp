// Pipelined distributed one-sided Jacobi: the communication-pipelining
// technique (paper section 2.4 / ref. [9]) actually executed, not just
// modeled.
//
// During each exchange phase the mobile block is split into Q column
// packets. A node pairs an arriving packet against its fixed block and
// immediately forwards it along the phase's next link, so consecutive
// packets of one block are spread across consecutive nodes of the
// Hamiltonian path and travel on different links concurrently -- the
// multi-port overlap the paper's orderings exist to enable, emerging here
// from genuinely asynchronous sends on the mpi_lite threads.
//
// Correctness is order-independent: every (fixed column, mobile column)
// pair still meets exactly once, each packet's rotations are sequenced by
// its message causality, and each fixed column's rotations are sequenced
// by its node's thread. Results agree with the unpipelined executors up to
// floating-point reordering (verified in tests).
//
// Division steps and the sweep-opening intra-block pairings are not
// pipelined, exactly as in the paper (pipelining "can be applied to every
// exchange phase, which are the most time-consuming part").
#pragma once

#include "solve/parallel_jacobi.hpp"

namespace jmh::solve {

struct PipelinedSolveOptions : SolveOptions {
  /// Packets per mobile block during exchange phases. 0 = auto (min(4,
  /// columns per block) -- the degree-4 sweet spot). Values larger than a
  /// block's column count degrade gracefully to empty packets.
  std::uint64_t q = 0;
};

/// Thread-per-node solve with packetized, overlapped exchange phases.
DistributedResult solve_mpi_pipelined(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                      const PipelinedSolveOptions& opts = {});

}  // namespace jmh::solve
