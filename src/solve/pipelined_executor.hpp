// Pipelined distributed one-sided Jacobi: the communication-pipelining
// technique (paper section 2.4 / ref. [9]) actually executed, not just
// modeled. A thin wrapper over the shared sweep engine with the packetized
// exchange-phase path of MpiLiteTransport (see solve/mpi_transport.hpp for
// the mechanism and its correctness argument).
#pragma once

#include "solve/parallel_jacobi.hpp"

namespace jmh::solve {

struct PipelinedSolveOptions : SolveOptions {
  /// Packets per mobile block during exchange phases. 0 = auto (min(4,
  /// columns per block) -- the degree-4 sweet spot). Values larger than a
  /// block's column count degrade gracefully to empty packets.
  std::uint64_t q = 0;
};

/// Thread-per-node solve with packetized, overlapped exchange phases.
DistributedResult solve_mpi_pipelined(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                      const PipelinedSolveOptions& opts = {});

}  // namespace jmh::solve
