#include "solve/jacobi_node.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "la/rotation.hpp"

namespace jmh::solve {

net::Payload ColumnBlock::serialize() const {
  net::Payload p;
  p.reserve(3 + cols.size() + b.size() + v.size());
  p.push_back(static_cast<double>(id));
  p.push_back(static_cast<double>(num_cols()));
  p.push_back(static_cast<double>(rows));
  for (std::size_t c : cols) p.push_back(static_cast<double>(c));
  p.insert(p.end(), b.begin(), b.end());
  p.insert(p.end(), v.begin(), v.end());
  return p;
}

ColumnBlock ColumnBlock::deserialize(const net::Payload& payload) {
  JMH_REQUIRE(payload.size() >= 3, "truncated block payload");
  ColumnBlock out;
  out.id = static_cast<ord::BlockId>(payload[0]);
  const auto ncols = static_cast<std::size_t>(payload[1]);
  out.rows = static_cast<std::size_t>(payload[2]);
  JMH_REQUIRE(payload.size() == 3 + ncols + 2 * ncols * out.rows, "block payload size mismatch");
  out.cols.resize(ncols);
  for (std::size_t i = 0; i < ncols; ++i) out.cols[i] = static_cast<std::size_t>(payload[3 + i]);
  const auto* base = payload.data() + 3 + ncols;
  out.b.assign(base, base + ncols * out.rows);
  out.v.assign(base + ncols * out.rows, base + 2 * ncols * out.rows);
  return out;
}

std::vector<ColumnBlock> ColumnBlock::deserialize_stream(const net::Payload& payload) {
  std::vector<ColumnBlock> blocks;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    JMH_REQUIRE(payload.size() - pos >= 3, "truncated block stream");
    const auto ncols = static_cast<std::size_t>(payload[pos + 1]);
    const auto rows = static_cast<std::size_t>(payload[pos + 2]);
    const std::size_t len = 3 + ncols + 2 * ncols * rows;
    JMH_REQUIRE(payload.size() - pos >= len, "truncated block in stream");
    net::Payload one(payload.begin() + static_cast<std::ptrdiff_t>(pos),
                     payload.begin() + static_cast<std::ptrdiff_t>(pos + len));
    blocks.push_back(deserialize(one));
    pos += len;
  }
  return blocks;
}

std::vector<ColumnBlock> ColumnBlock::split(std::size_t q) const {
  JMH_REQUIRE(q >= 1, "packet count must be positive");
  std::vector<ColumnBlock> packets(q);
  const std::size_t n = num_cols();
  for (std::size_t p = 0; p < q; ++p) {
    const std::size_t begin = p * n / q;
    const std::size_t end = (p + 1) * n / q;
    ColumnBlock& pkt = packets[p];
    pkt.id = id;
    pkt.rows = rows;
    pkt.cols.assign(cols.begin() + static_cast<std::ptrdiff_t>(begin),
                    cols.begin() + static_cast<std::ptrdiff_t>(end));
    pkt.b.assign(b.begin() + static_cast<std::ptrdiff_t>(begin * rows),
                 b.begin() + static_cast<std::ptrdiff_t>(end * rows));
    pkt.v.assign(v.begin() + static_cast<std::ptrdiff_t>(begin * rows),
                 v.begin() + static_cast<std::ptrdiff_t>(end * rows));
  }
  return packets;
}

ColumnBlock ColumnBlock::merge(const std::vector<ColumnBlock>& packets) {
  JMH_REQUIRE(!packets.empty(), "cannot merge zero packets");
  ColumnBlock out;
  out.id = packets.front().id;
  out.rows = packets.front().rows;
  for (const auto& pkt : packets) {
    JMH_REQUIRE(pkt.id == out.id && pkt.rows == out.rows, "packets from different blocks");
    out.cols.insert(out.cols.end(), pkt.cols.begin(), pkt.cols.end());
    out.b.insert(out.b.end(), pkt.b.begin(), pkt.b.end());
    out.v.insert(out.v.end(), pkt.v.begin(), pkt.v.end());
  }
  return out;
}

ColumnBlock extract_block(const la::Matrix& a, const BlockLayout& layout, ord::BlockId id) {
  JMH_REQUIRE(a.is_square() && a.rows() == layout.m(), "matrix/layout mismatch");
  ColumnBlock out;
  out.id = id;
  out.rows = a.rows();
  const std::size_t begin = layout.block_begin(id);
  const std::size_t size = layout.block_size(id);
  out.cols.resize(size);
  out.b.resize(size * out.rows);
  out.v.assign(size * out.rows, 0.0);
  for (std::size_t i = 0; i < size; ++i) {
    const std::size_t col = begin + i;
    out.cols[i] = col;
    const auto src = a.col(col);
    std::copy(src.begin(), src.end(), out.b.begin() + static_cast<std::ptrdiff_t>(i * out.rows));
    out.v[i * out.rows + col] = 1.0;  // V starts as the identity
  }
  return out;
}

JacobiNode::JacobiNode(const la::Matrix& a, const BlockLayout& layout, cube::Node node)
    : fixed_(extract_block(a, layout, layout.initial_fixed(node))),
      mobile_(extract_block(a, layout, layout.initial_mobile(node))) {}

namespace {

SweepStats pair_within_block(ColumnBlock& blk, double threshold) {
  SweepStats stats;
  for (std::size_t i = 0; i + 1 < blk.num_cols(); ++i) {
    for (std::size_t j = i + 1; j < blk.num_cols(); ++j) {
      const la::PairOutcome o = la::pair_columns_stats(blk.col_b(i), blk.col_b(j),
                                                       blk.col_v(i), blk.col_v(j), threshold);
      stats.rotations += o.rotated ? 1 : 0;
      stats.off2 += o.bij * o.bij;
    }
  }
  return stats;
}

}  // namespace

SweepStats JacobiNode::intra_block_pairings(double threshold) {
  SweepStats stats = pair_within_block(fixed_, threshold);
  stats += pair_within_block(mobile_, threshold);
  return stats;
}

SweepStats JacobiNode::inter_block_pairings(double threshold) {
  SweepStats stats;
  for (std::size_t i = 0; i < fixed_.num_cols(); ++i) {
    for (std::size_t j = 0; j < mobile_.num_cols(); ++j) {
      const la::PairOutcome o = la::pair_columns_stats(
          fixed_.col_b(i), mobile_.col_b(j), fixed_.col_v(i), mobile_.col_v(j), threshold);
      stats.rotations += o.rotated ? 1 : 0;
      stats.off2 += o.bij * o.bij;
    }
  }
  return stats;
}

SweepStats JacobiNode::pair_fixed_with(ColumnBlock& packet, double threshold) {
  JMH_REQUIRE(packet.rows == fixed_.rows, "packet row count mismatch");
  SweepStats stats;
  for (std::size_t i = 0; i < fixed_.num_cols(); ++i) {
    for (std::size_t j = 0; j < packet.num_cols(); ++j) {
      const la::PairOutcome o = la::pair_columns_stats(
          fixed_.col_b(i), packet.col_b(j), fixed_.col_v(i), packet.col_v(j), threshold);
      stats.rotations += o.rotated ? 1 : 0;
      stats.off2 += o.bij * o.bij;
    }
  }
  return stats;
}

double JacobiNode::frobenius_squared() const {
  double total = 0.0;
  for (double x : fixed_.b) total += x * x;
  for (double x : mobile_.b) total += x * x;
  return total;
}

}  // namespace jmh::solve
