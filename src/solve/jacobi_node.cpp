#include "solve/jacobi_node.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "la/rotation.hpp"

namespace jmh::solve {

namespace {
// Serialized layout: kHeaderWords doubles [id, ncols, rows, vrows,
// checksum], then ncols column ids, then the b and v column data.
constexpr std::size_t kHeaderWords = 5;
constexpr std::size_t kChecksumIndex = 4;
}  // namespace

std::uint64_t wire_checksum(std::span<const double> header,
                            std::span<const double> body) noexcept {
  // Four interleaved word-at-a-time FNV-1a lanes. One lane costs a
  // dependent multiply per word (4-5 cycle latency); four independent
  // lanes keep the multiplier pipelined, so the hash runs near one word
  // per cycle -- it rides along with block serialization instead of
  // dominating it (BENCH_kernels.json gates the serialize benches).
  //
  // Detection: per word, h' = (h ^ bits) * kPrime with kPrime odd is
  // injective in (h ^ bits), so any single flipped bit diverges the lane's
  // state, and injectivity per step keeps it diverged; the final combine
  // multiplies each lane by a distinct odd constant, so a change in any
  // one lane changes the sum.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h0 = 0xcbf29ce484222325ull;  // FNV-1a 64-bit offset basis
  std::uint64_t h1 = 0x84222325cbf29ce4ull;
  std::uint64_t h2 = 0x9e3779b97f4a7c15ull;
  std::uint64_t h3 = 0xc2b2ae3d27d4eb4full;
  const auto fold = [&](std::span<const double> words) noexcept {
    std::size_t i = 0;
    for (; i + 4 <= words.size(); i += 4) {
      h0 = (h0 ^ std::bit_cast<std::uint64_t>(words[i])) * kPrime;
      h1 = (h1 ^ std::bit_cast<std::uint64_t>(words[i + 1])) * kPrime;
      h2 = (h2 ^ std::bit_cast<std::uint64_t>(words[i + 2])) * kPrime;
      h3 = (h3 ^ std::bit_cast<std::uint64_t>(words[i + 3])) * kPrime;
    }
    for (; i < words.size(); ++i)
      h0 = (h0 ^ std::bit_cast<std::uint64_t>(words[i])) * kPrime;
  };
  fold(header);
  fold(body);
  std::uint64_t h = h0 * 0x9ddfea08eb382d69ull + h1 * 0xff51afd7ed558ccdull +
                    h2 * 0xc4ceb9fe1a85ec53ull + h3 * 0x2545f4914f6cdd1dull;
  // Avalanche the combined state so a lane-local difference spreads over
  // all 64 bits before the fold below can mask it.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  // 48-bit fold: integer-valued doubles are bit-exact through any transport.
  return (h ^ (h >> 48)) & 0xffffffffffffull;
}

net::Payload ColumnBlock::serialize() const {
  net::Payload p;
  serialize_into(p);
  return p;
}

void ColumnBlock::serialize_into(net::Payload& out) const {
  out.clear();
  out.reserve(kHeaderWords + cols.size() + b.size() + v.size());
  out.push_back(static_cast<double>(id));
  out.push_back(static_cast<double>(num_cols()));
  out.push_back(static_cast<double>(rows));
  out.push_back(static_cast<double>(vrows));
  out.push_back(0.0);  // checksum slot, filled once the body is in place
  for (std::size_t c : cols) out.push_back(static_cast<double>(c));
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), v.begin(), v.end());
  const std::span<const double> all(out);
  out[kChecksumIndex] = static_cast<double>(
      wire_checksum(all.first(kChecksumIndex), all.subspan(kHeaderWords)));
}

void ColumnBlock::assign_from(std::span<const double> payload) {
  // Validate before mutating: a malformed or corrupted payload must leave
  // this block exactly as it was (it may be a node's live mobile block).
  JMH_REQUIRE(payload.size() >= kHeaderWords, "truncated block payload");
  const std::uint64_t sum =
      wire_checksum(payload.first(kChecksumIndex), payload.subspan(kHeaderWords));
  if (static_cast<double>(sum) != payload[kChecksumIndex])
    throw TransportCorrupt("block payload failed wire checksum");
  const auto ncols = static_cast<std::size_t>(payload[1]);
  const auto nrows = static_cast<std::size_t>(payload[2]);
  const auto nvrows = static_cast<std::size_t>(payload[3]);
  JMH_REQUIRE(payload.size() == kHeaderWords + ncols + ncols * (nrows + nvrows),
              "block payload size mismatch");
  id = static_cast<ord::BlockId>(payload[0]);
  rows = nrows;
  vrows = nvrows;
  cols.resize(ncols);
  for (std::size_t i = 0; i < ncols; ++i)
    cols[i] = static_cast<std::size_t>(payload[kHeaderWords + i]);
  const double* base = payload.data() + kHeaderWords + ncols;
  b.assign(base, base + ncols * rows);
  v.assign(base + ncols * rows, base + ncols * rows + ncols * vrows);
}

ColumnBlock ColumnBlock::deserialize(std::span<const double> payload) {
  ColumnBlock out;
  out.assign_from(payload);
  return out;
}

ColumnBlock ColumnBlock::deserialize(const net::Payload& payload) {
  return deserialize(std::span<const double>(payload));
}

std::vector<ColumnBlock> ColumnBlock::deserialize_stream(const net::Payload& payload) {
  std::vector<ColumnBlock> blocks;
  const std::span<const double> stream(payload);
  std::size_t pos = 0;
  while (pos < stream.size()) {
    JMH_REQUIRE(stream.size() - pos >= kHeaderWords, "truncated block stream");
    const auto ncols = static_cast<std::size_t>(stream[pos + 1]);
    const auto rows = static_cast<std::size_t>(stream[pos + 2]);
    const auto vrows = static_cast<std::size_t>(stream[pos + 3]);
    const std::size_t len = kHeaderWords + ncols + ncols * (rows + vrows);
    JMH_REQUIRE(stream.size() - pos >= len, "truncated block in stream");
    blocks.push_back(deserialize(stream.subspan(pos, len)));
    pos += len;
  }
  return blocks;
}

std::vector<ColumnBlock> ColumnBlock::split(std::size_t q) const {
  std::vector<ColumnBlock> packets;
  split_into(q, packets);
  return packets;
}

void ColumnBlock::split_into(std::size_t q, std::vector<ColumnBlock>& packets) const {
  JMH_REQUIRE(q >= 1, "packet count must be positive");
  packets.resize(q);
  const std::size_t n = num_cols();
  for (std::size_t p = 0; p < q; ++p) {
    const std::size_t begin = p * n / q;
    const std::size_t end = (p + 1) * n / q;
    ColumnBlock& pkt = packets[p];
    pkt.id = id;
    pkt.rows = rows;
    pkt.vrows = vrows;
    pkt.cols.assign(cols.begin() + static_cast<std::ptrdiff_t>(begin),
                    cols.begin() + static_cast<std::ptrdiff_t>(end));
    pkt.b.assign(b.begin() + static_cast<std::ptrdiff_t>(begin * rows),
                 b.begin() + static_cast<std::ptrdiff_t>(end * rows));
    pkt.v.assign(v.begin() + static_cast<std::ptrdiff_t>(begin * vrows),
                 v.begin() + static_cast<std::ptrdiff_t>(end * vrows));
  }
}

ColumnBlock ColumnBlock::merge(const std::vector<ColumnBlock>& packets) {
  ColumnBlock out;
  merge_into(packets, out);
  return out;
}

void ColumnBlock::merge_into(const std::vector<ColumnBlock>& packets, ColumnBlock& out) {
  JMH_REQUIRE(!packets.empty(), "cannot merge zero packets");
  out.id = packets.front().id;
  out.rows = packets.front().rows;
  out.vrows = packets.front().vrows;
  out.cols.clear();
  out.b.clear();
  out.v.clear();
  for (const auto& pkt : packets) {
    JMH_REQUIRE(pkt.id == out.id && pkt.rows == out.rows && pkt.vrows == out.vrows,
                "packets from different blocks");
    out.cols.insert(out.cols.end(), pkt.cols.begin(), pkt.cols.end());
    out.b.insert(out.b.end(), pkt.b.begin(), pkt.b.end());
    out.v.insert(out.v.end(), pkt.v.begin(), pkt.v.end());
  }
}

ColumnBlock extract_block(const la::Matrix& a, const BlockLayout& layout, ord::BlockId id) {
  JMH_REQUIRE(a.cols() == layout.m(), "matrix/layout mismatch");
  ColumnBlock out;
  out.id = id;
  out.rows = a.rows();
  out.vrows = a.cols();
  const std::size_t begin = layout.block_begin(id);
  const std::size_t size = layout.block_size(id);
  out.cols.resize(size);
  out.b.resize(size * out.rows);
  out.v.assign(size * out.vrows, 0.0);
  for (std::size_t i = 0; i < size; ++i) {
    const std::size_t col = begin + i;
    out.cols[i] = col;
    const auto src = a.col(col);
    std::copy(src.begin(), src.end(), out.b.begin() + static_cast<std::ptrdiff_t>(i * out.rows));
    out.v[i * out.vrows + col] = 1.0;  // V starts as the identity
  }
  return out;
}

JacobiNode::JacobiNode(const la::Matrix& a, const BlockLayout& layout, cube::Node node)
    : fixed_(extract_block(a, layout, layout.initial_fixed(node))),
      mobile_(extract_block(a, layout, layout.initial_mobile(node))) {}

namespace {

// Cache-blocking tile side for the i x j pairing loops. A pairing streams
// both columns of B and V, so a TxT tile keeps 2T columns of each matrix
// live: 4 * kPairTile * rows doubles. With T = 8 that is 256 KiB at
// rows = 1024 -- L2-resident, so each column loaded into cache is paired
// against T partners before eviction instead of 1. Any visit order covers
// every pair exactly once, so tiling only reorders the (valid) sweep.
constexpr std::size_t kPairTile = 8;

inline void pair_one(ColumnBlock& bi_blk, std::size_t i, ColumnBlock& bj_blk, std::size_t j,
                     double threshold, SweepStats& stats, std::uint8_t* activity) {
  const la::PairOutcome o = la::pair_columns_stats(bi_blk.col_b(i), bj_blk.col_b(j),
                                                   bi_blk.col_v(i), bj_blk.col_v(j), threshold);
  stats.rotations += o.rotated ? 1 : 0;
  stats.off2 += o.bij * o.bij;
  // Null in the full solve: a single predictable branch per pair.
  if (activity && o.rotated) {
    activity[bi_blk.cols[i]] = 1;
    activity[bj_blk.cols[j]] = 1;
  }
}

SweepStats pair_within_block(ColumnBlock& blk, double threshold, std::uint8_t* activity) {
  SweepStats stats;
  const std::size_t n = blk.num_cols();
  for (std::size_t it = 0; it < n; it += kPairTile) {
    const std::size_t iend = std::min(n, it + kPairTile);
    // Diagonal tile: the triangular i < j pairs inside [it, iend).
    for (std::size_t i = it; i < iend; ++i)
      for (std::size_t j = i + 1; j < iend; ++j)
        pair_one(blk, i, blk, j, threshold, stats, activity);
    // Off-diagonal tiles: full iend x kPairTile rectangles to the right.
    for (std::size_t jt = iend; jt < n; jt += kPairTile) {
      const std::size_t jend = std::min(n, jt + kPairTile);
      for (std::size_t i = it; i < iend; ++i)
        for (std::size_t j = jt; j < jend; ++j)
          pair_one(blk, i, blk, j, threshold, stats, activity);
    }
  }
  return stats;
}

/// Every (fixed column, other column) cross pair, tiled.
SweepStats pair_across_blocks(ColumnBlock& fixed, ColumnBlock& other, double threshold,
                              std::uint8_t* activity) {
  SweepStats stats;
  const std::size_t ni = fixed.num_cols();
  const std::size_t nj = other.num_cols();
  for (std::size_t it = 0; it < ni; it += kPairTile) {
    const std::size_t iend = std::min(ni, it + kPairTile);
    for (std::size_t jt = 0; jt < nj; jt += kPairTile) {
      const std::size_t jend = std::min(nj, jt + kPairTile);
      for (std::size_t i = it; i < iend; ++i)
        for (std::size_t j = jt; j < jend; ++j)
          pair_one(fixed, i, other, j, threshold, stats, activity);
    }
  }
  return stats;
}

}  // namespace

SweepStats JacobiNode::intra_block_pairings(double threshold, std::uint8_t* activity) {
  SweepStats stats = pair_within_block(fixed_, threshold, activity);
  stats += pair_within_block(mobile_, threshold, activity);
  return stats;
}

SweepStats JacobiNode::inter_block_pairings(double threshold, std::uint8_t* activity) {
  return pair_across_blocks(fixed_, mobile_, threshold, activity);
}

SweepStats JacobiNode::pair_fixed_with(ColumnBlock& packet, double threshold,
                                       std::uint8_t* activity) {
  JMH_REQUIRE(packet.rows == fixed_.rows && packet.vrows == fixed_.vrows,
              "packet row count mismatch");
  return pair_across_blocks(fixed_, packet, threshold, activity);
}

double JacobiNode::frobenius_squared() const {
  double total = 0.0;
  for (double x : fixed_.b) total += x * x;
  for (double x : mobile_.b) total += x * x;
  return total;
}

}  // namespace jmh::solve
