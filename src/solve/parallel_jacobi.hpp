// Distributed one-sided Jacobi eigensolver driven by a JacobiOrdering.
//
// NOTE: the free functions here (and in pipelined_executor.hpp /
// sim_transport.hpp) are the LEGACY entry points, kept as thin wrappers
// over the api facade; new code should describe the scenario with an
// api::SolverSpec and reuse an api::SolvePlan (api/solver.hpp).
//
// All executors share one sweep engine (solve/sweep_engine.hpp) and differ
// only in the Transport they plug into it:
//   * solve_inline: InlineTransport -- the 2^d nodes simulated sequentially
//     in one thread (deterministic; used for the Table 2 convergence
//     experiments);
//   * solve_mpi: MpiLiteTransport -- each node an mpi_lite rank on its own
//     thread, exchanging blocks with real messages over the hypercube
//     overlay -- the shape an MPI port of the paper's algorithm would take;
//   * solve_mpi_pipelined (pipelined_executor.hpp): MpiLiteTransport with
//     packetized exchange phases;
//   * solve_sim (sim_transport.hpp): SimTransport -- inline numerics with
//     modeled per-link time under pipe::MachineParams.
//
// Each sweep: intra-block pairings, then the 2^{d+1}-1 step/transition
// pairs of the ordering (inter-block pairings + mobile exchange or division
// transfer). Convergence: a sweep in which no node applies any rotation.
#pragma once

#include "la/svd.hpp"
#include "net/universe.hpp"
#include "ord/ordering.hpp"
#include "solve/jacobi_node.hpp"
#include "solve/transport.hpp"

namespace jmh::solve {

struct DistributedResult {
  std::vector<double> eigenvalues;  ///< ascending
  la::Matrix eigenvectors;          ///< column k pairs with eigenvalues[k]
  int sweeps = 0;                   ///< sweeps that performed >= 1 rotation
  bool converged = false;
  std::size_t rotations = 0;
  /// Traffic of the mpi_lite run (zero for solve_inline).
  net::CommStats comm;
};

/// Sequentially-simulated distributed solve on a d-cube.
/// DEPRECATED: thin wrapper over the api facade -- builds a one-shot
/// api::SolverSpec per call. New code should compile an api::SolvePlan once
/// and reuse it (api/solver.hpp).
DistributedResult solve_inline(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                               const SolveOptions& opts = {});

/// Thread-per-node distributed solve over mpi_lite.
/// DEPRECATED: thin wrapper over the api facade (see solve_inline note).
DistributedResult solve_mpi(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                            const SolveOptions& opts = {});

/// Assembles eigenpairs from final node blocks (exposed for the executors
/// and tests). Blocks must jointly cover all m columns. A non-empty
/// @p leading (EngineResult::leading of a topk run) restricts the output
/// to those columns: eigenvalues/eigenvectors carry only the selected
/// pairs, still sorted by eigenvalue ascending. With leading covering
/// every column the result is bit-identical to the unrestricted assembly
/// -- the selection is sorted ascending first, so the extraction sort
/// starts from the same permutation the full path uses.
DistributedResult assemble_result(std::vector<ColumnBlock> blocks, std::size_t m, int sweeps,
                                  bool converged, std::size_t rotations,
                                  const std::vector<std::size_t>& leading = {});

/// Distributed SVD outcome: la::SvdResult plus the run's traffic counters.
struct SvdSolveResult : la::SvdResult {
  net::CommStats comm;  ///< mpi_lite traffic (zero for single-owner runs)
};

/// SVD counterpart of assemble_result: reassembles the final (B, V) pair of
/// a task=svd run -- B is rows x cols, V is cols x cols -- and extracts
/// (sigma, U, V) through la::svd_from_bv, so every backend collecting the
/// same blocks produces bit-identical results. Blocks must jointly cover
/// all @p cols columns.
/// @p leading as in assemble_result: a non-empty selection yields the
/// truncated factorization (sigma, U, V restricted to those columns,
/// sigma-descending with the same index tie-break la::svd_from_bv uses);
/// a selection covering every column routes through la::svd_from_bv
/// itself and is bit-identical to the unrestricted assembly.
SvdSolveResult assemble_svd_result(std::vector<ColumnBlock> blocks, std::size_t rows,
                                   std::size_t cols, int sweeps, bool converged,
                                   std::size_t rotations,
                                   const std::vector<std::size_t>& leading = {});

}  // namespace jmh::solve
