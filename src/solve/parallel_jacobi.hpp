// Distributed one-sided Jacobi eigensolver driven by a JacobiOrdering.
//
// Two executors share identical numerical behaviour:
//   * solve_inline: simulates the 2^d nodes sequentially in one thread
//     (deterministic; used for the Table 2 convergence experiments);
//   * solve_mpi: runs each node as an mpi_lite rank on its own thread,
//     exchanging blocks with real messages over the hypercube overlay --
//     the shape an MPI port of the paper's algorithm would take.
//
// Each sweep: intra-block pairings, then the 2^{d+1}-1 step/transition
// pairs of the ordering (inter-block pairings + mobile exchange or division
// transfer). Convergence: a sweep in which no node applies any rotation.
#pragma once

#include "la/onesided_jacobi.hpp"
#include "net/universe.hpp"
#include "ord/ordering.hpp"
#include "solve/jacobi_node.hpp"

namespace jmh::solve {

/// Convergence test applied after each sweep.
enum class StopRule {
  /// Stop when a full sweep applies no rotation (strictest; the final
  /// all-skip sweep is not counted).
  NoRotations,
  /// Stop when the off-diagonal norm observed during the sweep satisfies
  /// sqrt(2 * sum bij^2) <= off_tol * ||A||_F (the classical off(A)
  /// criterion; cheaper by 1-2 sweeps and the convention 1990s papers
  /// report, see EXPERIMENTS.md Table 2 notes). The triggering sweep is
  /// counted.
  OffDiagonal,
};

struct SolveOptions {
  double threshold = la::kDefaultThreshold;
  int max_sweeps = 60;
  StopRule stop_rule = StopRule::NoRotations;
  double off_tol = 1e-8;  ///< used by StopRule::OffDiagonal

  /// Solve A + sigma*I (sigma = Gershgorin radius) and shift the spectrum
  /// back. Makes the working matrix positive semidefinite, which removes
  /// the one-sided method's +/-lambda tie ambiguity (la/shift.hpp) at the
  /// cost of squaring its condition-dependent convergence constant.
  bool gershgorin_shift = false;
};

struct DistributedResult {
  std::vector<double> eigenvalues;  ///< ascending
  la::Matrix eigenvectors;          ///< column k pairs with eigenvalues[k]
  int sweeps = 0;                   ///< sweeps that performed >= 1 rotation
  bool converged = false;
  std::size_t rotations = 0;
  /// Traffic of the mpi_lite run (zero for solve_inline).
  net::CommStats comm;
};

/// Sequentially-simulated distributed solve on a d-cube.
DistributedResult solve_inline(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                               const SolveOptions& opts = {});

/// Thread-per-node distributed solve over mpi_lite.
DistributedResult solve_mpi(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                            const SolveOptions& opts = {});

/// Assembles eigenpairs from final node blocks (exposed for the executors
/// and tests). Blocks must jointly cover all m columns.
DistributedResult assemble_result(std::vector<ColumnBlock> blocks, std::size_t m, int sweeps,
                                  bool converged, std::size_t rotations);

}  // namespace jmh::solve
