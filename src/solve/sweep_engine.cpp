#include "solve/sweep_engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/alloc_guard.hpp"
#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace jmh::solve {

namespace {

/// Writes each resident column's ||b_k||^2 into vote[cols[i]]. Plain
/// sequential accumulation over the column span -- the SAME order
/// la::norm2 uses in svd_from_bv, so the engine's ranking and assembly's
/// sigma extraction agree bitwise on the final blocks.
void write_column_norms(ColumnBlock& blk, std::span<double> vote) {
  for (std::size_t i = 0; i < blk.num_cols(); ++i) {
    const auto col = blk.col_b(i);
    double s = 0.0;
    for (double x : col) s += x * x;
    vote[blk.cols[i]] = s;
  }
}

/// Maps the shared token's reason onto the run status once the allreduced
/// cancel flag is nonzero. By then the reason is already latched in the
/// token state every endpoint shares (poll() latches before contributing to
/// the vote), so all endpoints translate the same flag to the same status.
RunStatus cancel_status(const common::CancelToken& token) {
  return token.poll() == common::CancelReason::DeadlineExceeded
             ? RunStatus::DeadlineExceeded
             : RunStatus::Cancelled;
}

}  // namespace

EngineResult run_sweep_protocol(Transport& transport, const ord::JacobiOrdering& ordering,
                                const SolveOptions& opts) {
  JMH_REQUIRE(!opts.gershgorin_shift,
              "gershgorin_shift must be unwrapped by the solve_* entry points");
  JMH_REQUIRE(ordering.dimension() == transport.dimension(),
              "ordering/transport dimension mismatch");
  JMH_REQUIRE(opts.topk >= 0, "topk must be non-negative");
  JMH_REQUIRE(opts.topk == 0 || opts.stop_rule == StopRule::NoRotations,
              "topk requires StopRule::NoRotations (per-column activity has no off(A) analogue)");

  // Cancellation is SPMD-coherent: when a token is armed, every vote gains
  // one trailing flag slot so all endpoints decide to stop -- and at which
  // sweep -- from the same allreduced sum. An unarmed solve keeps the
  // historical vote widths, so arming nothing stays bit-identical (including
  // SimTransport's modeled vote time, which depends on the vote width).
  const bool cancellable = opts.cancel.armed();
  const auto cancel_flag = [&] {
    return opts.cancel.poll() != common::CancelReason::None ? 1.0 : 0.0;
  };

  // Phase attribution: null sink = no clock reads anywhere on this path
  // (the trace=0 bit-identical contract includes paying nothing).
  obs::SolveTimingSink* const sink = opts.timing;
  std::atomic<std::uint64_t>* const comm_acc = sink != nullptr ? &sink->comm_ns : nullptr;

  EngineResult out;
  double frob2 = 0.0;
  transport.visit_nodes([&](JacobiNode& node) { frob2 += node.frobenius_squared(); });
  if (cancellable) {
    std::array<double, 2> init = {frob2, cancel_flag()};
    {
      const obs::SpanScope comm_span("allreduce.init", obs::Category::kComm, 0, comm_acc);
      transport.allreduce_sum(std::span<double>(init));
    }
    frob2 = init[0];
    if (init[1] != 0.0) {  // cancelled before the first sweep
      out.status = cancel_status(opts.cancel);
      return out;
    }
  } else {
    const obs::SpanScope comm_span("allreduce.init", obs::Category::kComm, 0, comm_acc);
    transport.allreduce_sum(std::span<double>(&frob2, 1));
  }

  const std::size_t steps_per_sweep = ordering.steps_per_sweep();
  double total_rotations = 0.0;

  // Truncated mode: the vote becomes [norm2_0..norm2_{m-1},
  // act_0..act_{m-1}, rotations, off2]. Each column's norm is computed
  // entirely on its owning endpoint (every other endpoint contributes an
  // exact 0.0), and the activity flags are small integer sums, so the
  // allreduce stays exact and every endpoint ranks columns identically.
  const auto topk = static_cast<std::size_t>(opts.topk);
  const std::size_t m = topk > 0 ? transport.num_columns() : 0;
  JMH_REQUIRE(topk <= m || topk == 0, "topk exceeds the column count");
  std::vector<double> vote(topk > 0 ? 2 * m + 2 + (cancellable ? 1 : 0) : 0);
  std::vector<std::uint8_t> activity(m);
  std::vector<std::size_t> ranking(m);
  std::vector<ord::Transition> transitions;  // reused across sweeps

  // The PERF.md allocation-free claim, machine-checked: sweep 0 may size
  // scratch (transition list, transport arenas, the topk leading set);
  // every later sweep of an alloc-free transport must allocate NOTHING on
  // this thread. Audited per sweep in JMH_DASSERT builds, compiled out
  // under NDEBUG.
  const bool audit_allocs = transport.steady_state_alloc_free();

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    const common::AllocGuard sweep_guard;
    // Inside the guard deliberately: span recording must itself be
    // allocation-free in steady state (the ring preallocates under
    // AllocExempt on a thread's first record).
    const obs::SpanScope sweep_span("sweep", obs::Category::kSweep,
                                    static_cast<std::uint64_t>(sweep),
                                    sink != nullptr ? &sink->sweep_ns : nullptr);
    const auto audit_sweep = [&] {
      if (audit_allocs && sweep >= 1)
        JMH_ALLOC_ASSERT_ZERO(sweep_guard,
                              "steady-state sweep allocated (PERF.md contract)");
    };
    SweepStats stats;
    std::uint8_t* act = topk > 0 ? activity.data() : nullptr;
    if (act) std::fill(activity.begin(), activity.end(), std::uint8_t{0});
    transport.visit_nodes(
        [&](JacobiNode& node) { stats += node.intra_block_pairings(opts.threshold, act); });

    ordering.sweep_transitions_into(sweep, transitions);
    for (const ord::PhaseInfo& phase : ordering.phases())
      stats += transport.run_phase(
          {phase, transitions, sweep, steps_per_sweep, opts.threshold, act, sink});

    if (topk > 0) {
      std::fill(vote.begin(), vote.end(), 0.0);
      transport.visit_nodes([&](JacobiNode& node) {
        write_column_norms(node.fixed(), std::span<double>(vote).first(m));
        write_column_norms(node.mobile(), std::span<double>(vote).first(m));
      });
      for (std::size_t k = 0; k < m; ++k) vote[m + k] = static_cast<double>(activity[k]);
      vote[2 * m] = static_cast<double>(stats.rotations);
      vote[2 * m + 1] = stats.off2;
      if (cancellable) vote[2 * m + 2] = cancel_flag();
      {
        const obs::SpanScope comm_span("allreduce.vote", obs::Category::kComm,
                                       static_cast<std::uint64_t>(sweep), comm_acc);
        transport.allreduce_sum(std::span<double>(vote));
      }
      total_rotations += vote[2 * m];

      // Rank columns by global norm descending, index ascending -- the same
      // comparator la::svd_from_bv applies to sigma (sqrt is monotone), so
      // the engine's leading set is exactly the head of assembly's order.
      std::iota(ranking.begin(), ranking.end(), std::size_t{0});
      std::sort(ranking.begin(), ranking.end(), [&](std::size_t x, std::size_t y) {
        return vote[x] != vote[y] ? vote[x] > vote[y] : x < y;
      });
      out.leading.assign(ranking.begin(), ranking.begin() + static_cast<std::ptrdiff_t>(topk));
      bool leading_inactive = true;
      for (std::size_t i = 0; i < topk && leading_inactive; ++i)
        leading_inactive = vote[m + ranking[i]] == 0.0;
      if (leading_inactive) {
        out.converged = true;
        // Rotations may still have landed on trailing columns this sweep;
        // count it iff it did work (keeps topk == m bit-identical to the
        // full NoRotations path, where the final all-skip sweep is free).
        if (vote[2 * m] > 0.0) ++out.sweeps;
        audit_sweep();
        break;
      }
      ++out.sweeps;
      // Cancellation yields to convergence: a sweep that both converged
      // and saw the deadline expire still delivers its result.
      if (cancellable && vote[2 * m + 2] != 0.0) {
        out.status = cancel_status(opts.cancel);
        audit_sweep();
        break;
      }
      audit_sweep();
      continue;
    }

    // The vote is a fixed small array: no per-sweep vector allocation. The
    // third slot exists only for cancellable runs (span width 2 otherwise).
    std::array<double, 3> global = {static_cast<double>(stats.rotations), stats.off2,
                                    cancellable ? cancel_flag() : 0.0};
    {
      const obs::SpanScope comm_span("allreduce.vote", obs::Category::kComm,
                                     static_cast<std::uint64_t>(sweep), comm_acc);
      transport.allreduce_sum(std::span<double>(global).first(cancellable ? 3 : 2));
    }
    total_rotations += global[0];
    if (opts.stop_rule == StopRule::NoRotations) {
      if (global[0] == 0.0) {
        out.converged = true;
        audit_sweep();
        break;
      }
    } else {
      // off2 is accumulated from pre-rotation dot products, so it measures
      // the matrix state *entering* this sweep: when it is already below
      // tolerance the previous sweep had converged and this one is not
      // counted. The absolute variant drops the ||A||_F scaling (frob2 is
      // still allreduced at init, keeping vote widths and order identical
      // across stop rules -- the bit-parity contract of the other modes).
      const double bound = opts.stop_rule == StopRule::OffDiagonalAbsolute
                               ? opts.off_tol
                               : opts.off_tol * std::sqrt(frob2);
      if (std::sqrt(2.0 * global[1]) <= bound) {
        out.converged = true;
        audit_sweep();
        break;
      }
    }
    ++out.sweeps;
    if (cancellable && global[2] != 0.0) {
      out.status = cancel_status(opts.cancel);
      audit_sweep();
      break;
    }
    audit_sweep();
  }

  out.rotations = static_cast<std::size_t>(total_rotations);
  return out;
}

}  // namespace jmh::solve
