#include "solve/sweep_engine.hpp"

#include <array>
#include <cmath>

#include "common/assert.hpp"

namespace jmh::solve {

EngineResult run_sweep_protocol(Transport& transport, const ord::JacobiOrdering& ordering,
                                const SolveOptions& opts) {
  JMH_REQUIRE(!opts.gershgorin_shift,
              "gershgorin_shift must be unwrapped by the solve_* entry points");
  JMH_REQUIRE(ordering.dimension() == transport.dimension(),
              "ordering/transport dimension mismatch");

  double frob2 = 0.0;
  transport.visit_nodes([&](JacobiNode& node) { frob2 += node.frobenius_squared(); });
  transport.allreduce_sum(std::span<double>(&frob2, 1));

  const std::size_t steps_per_sweep = ordering.steps_per_sweep();
  EngineResult out;
  double total_rotations = 0.0;

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    SweepStats stats;
    transport.visit_nodes(
        [&](JacobiNode& node) { stats += node.intra_block_pairings(opts.threshold); });

    const std::vector<ord::Transition> transitions = ordering.sweep_transitions(sweep);
    for (const ord::PhaseInfo& phase : ordering.phases())
      stats += transport.run_phase(
          {phase, transitions, sweep, steps_per_sweep, opts.threshold});

    // The vote is a fixed two-scalar array: no per-sweep vector allocation.
    std::array<double, 2> global = {static_cast<double>(stats.rotations), stats.off2};
    transport.allreduce_sum(std::span<double>(global));
    total_rotations += global[0];
    if (opts.stop_rule == StopRule::NoRotations) {
      if (global[0] == 0.0) {
        out.converged = true;
        break;
      }
    } else {
      // off2 is accumulated from pre-rotation dot products, so it measures
      // the matrix state *entering* this sweep: when it is already below
      // tolerance the previous sweep had converged and this one is not
      // counted.
      if (std::sqrt(2.0 * global[1]) <= opts.off_tol * std::sqrt(frob2)) {
        out.converged = true;
        break;
      }
    }
    ++out.sweeps;
  }

  out.rotations = static_cast<std::size_t>(total_rotations);
  return out;
}

}  // namespace jmh::solve
