// Transport: the communication substrate of the distributed Jacobi sweep
// protocol.
//
// The sweep state machine (intra-block pairings, exchange phases, division
// transitions, link rotation, convergence vote) is identical across every
// execution substrate; only *how* blocks move and votes are summed differs.
// run_sweep_protocol (sweep_engine.hpp) drives the protocol once against
// this interface; the concrete transports are:
//
//   * InlineTransport  -- all 2^d nodes owned by one object, executed
//     sequentially in the calling thread (deterministic);
//   * MpiLiteTransport -- an SPMD endpoint: one node per mpi_lite rank,
//     blocks travel as real messages over the hypercube overlay, with an
//     optional packetized pipelined exchange-phase path;
//   * SimTransport     -- InlineTransport numerics plus modeled time: every
//     message is charged on the sim/ event network under
//     pipe::MachineParams, cross-checkable against pipe/cost_model.
//
// The engine is written as the SPMD program of one endpoint: single-owner
// transports (inline, sim) run it once over all nodes; mpi_lite runs one
// engine instance per rank, each seeing its own node through the same
// interface. All global quantities flow through allreduce_sum, so every
// endpoint observes identical control flow.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/cancel.hpp"
#include "common/function_ref.hpp"
#include "la/onesided_jacobi.hpp"
#include "obs/phase_timing.hpp"
#include "ord/ordering.hpp"
#include "solve/jacobi_node.hpp"

namespace jmh::solve {

/// How a protocol run ended. Anything but Ok means the blocks were left
/// mid-sweep and no result may be assembled from them.
enum class RunStatus : std::uint8_t {
  Ok = 0,
  Cancelled,         ///< SolveOptions::cancel fired with CancelReason::Cancelled
  DeadlineExceeded,  ///< ... with CancelReason::DeadlineExceeded
};

/// Thrown by the backend drivers (parallel_jacobi, api/solver) when a run
/// stops before convergence for a non-numeric reason; the api layer maps it
/// onto the api::SolveStatus taxonomy.
class SolveInterrupted : public std::runtime_error {
 public:
  explicit SolveInterrupted(RunStatus status)
      : std::runtime_error(status == RunStatus::DeadlineExceeded
                               ? "solve interrupted: deadline exceeded"
                               : "solve interrupted: cancelled"),
        status_(status) {}
  RunStatus status() const noexcept { return status_; }

 private:
  RunStatus status_;
};

/// Seeded, replayable fault schedule for FaultInjectingTransport
/// (solve/fault_injection.hpp). A plain value so it can ride in SolveOptions
/// and api::SolverSpec; seed == 0 disables injection entirely (the decorator
/// is never constructed, keeping unfaulted solves bit-identical).
///
/// Every decision is a pure hash of (seed, attempt, fault kind, event
/// index), so all endpoints of an mpi_lite solve draw identical schedules
/// without communicating, and a replay with the same seed reproduces the
/// run exactly. `attempt` shifts the whole schedule, which is what makes
/// service-level retry meaningful: attempt 1 redraws every fault.
struct FaultPlan {
  std::uint64_t seed = 0;       ///< 0 = injection off
  double corrupt_rate = 0.0;    ///< P(bit-flip the payload of a transition)
  double delay_rate = 0.0;      ///< P(stall a transition by delay_us)
  std::uint64_t delay_us = 0;   ///< stall length for delayed transitions
  double vote_fail_rate = 0.0;  ///< P(an allreduce vote fails outright)
  std::uint64_t attempt = 0;    ///< retry attempt; redraws the schedule
  bool enabled() const noexcept { return seed != 0; }
  bool operator==(const FaultPlan&) const = default;
};

/// Convergence test applied after each sweep.
enum class StopRule {
  /// Stop when a full sweep applies no rotation (strictest; the final
  /// all-skip sweep is not counted).
  NoRotations,
  /// Stop when the off-diagonal norm observed during the sweep satisfies
  /// sqrt(2 * sum bij^2) <= off_tol * ||A||_F (the classical off(A)
  /// criterion; cheaper by 1-2 sweeps and the convention 1990s papers
  /// report, see EXPERIMENTS.md Table 2 notes). The triggering sweep is
  /// counted.
  OffDiagonal,
  /// Like OffDiagonal but against the ABSOLUTE bound
  /// sqrt(2 * sum bij^2) <= off_tol (no ||A||_F scaling). The rule for
  /// rank-deficient and centered inputs: null-space columns keep rotating
  /// under the relative rotation threshold (their mutual dot products do
  /// not shrink relative to their own vanishing norms) until the norms
  /// underflow to exact zero, so NoRotations needs roughly double the
  /// sweeps and times out under realistic budgets -- but their
  /// contribution to off2 is absolutely tiny, so this rule converges
  /// early. The triggering sweep is counted.
  OffDiagonalAbsolute,
};

struct SolveOptions {
  double threshold = la::kDefaultThreshold;
  int max_sweeps = 60;
  StopRule stop_rule = StopRule::NoRotations;
  double off_tol = 1e-8;  ///< used by StopRule::OffDiagonal[Absolute]

  /// Solve A + sigma*I (sigma = Gershgorin radius) and shift the spectrum
  /// back. Makes the working matrix positive semidefinite, which removes
  /// the one-sided method's +/-lambda tie ambiguity (la/shift.hpp) at the
  /// cost of squaring its condition-dependent convergence constant.
  bool gershgorin_shift = false;

  /// Truncated mode: > 0 stops the protocol once the leading @p topk
  /// columns -- ranked by ||b_k||^2, i.e. sigma_k^2 for SVD and lambda_k^2
  /// for the eigenproblem -- went one full sweep without being touched by
  /// any rotation. The sweep engine extends its convergence vote with
  /// per-column norms and rotation-activity flags (both exact under
  /// allreduce: each norm is computed entirely on its owning endpoint, the
  /// flags are small integer sums), so every backend sees identical
  /// control flow and selects identical leading columns
  /// (EngineResult::leading). 0 = full solve. Requires
  /// StopRule::NoRotations and no gershgorin_shift (a shifted spectrum
  /// reorders |lambda|).
  int topk = 0;

  /// Cooperative cancellation handle, polled at sweep boundaries. The
  /// default token is inert and costs nothing; when armed, the engine folds
  /// a cancel flag into its convergence vote so every endpoint of an SPMD
  /// run agrees -- at the same sweep -- on whether and why to stop
  /// (EngineResult::status). On mpi_lite all ranks must share ONE token
  /// (SolveOptions is copied into each rank with the shared state inside).
  common::CancelToken cancel;

  /// Deterministic fault injection; inert unless faults.enabled(). Backends
  /// honor it by wrapping their transport in a FaultInjectingTransport.
  FaultPlan faults;

  /// Phase-timing accumulator, or null (the default: no attribution, no
  /// clock reads on the sweep path). api::SolvePlan::solve attaches a
  /// stack-local sink for trace=1 solves; the engine and transports add
  /// their sweep/comm/assembly durations into it from every endpoint.
  /// Observation only -- never consulted for control flow.
  obs::SolveTimingSink* timing = nullptr;
};

/// Global index of the transition at (sweep, step). Message transports
/// derive per-step tags from it so packets from different steps/sweeps can
/// never be confused even when neighboring endpoints run several stages
/// apart; block-move transports ignore it.
inline std::uint64_t global_step(int sweep, std::size_t steps_per_sweep, std::size_t step) {
  return static_cast<std::uint64_t>(sweep) * steps_per_sweep + step;
}

/// Everything a transport needs to execute one phase of one sweep.
struct PhaseContext {
  const ord::PhaseInfo& phase;
  /// Full transition list of this sweep, sigma rotation already applied.
  const std::vector<ord::Transition>& transitions;
  int sweep = 0;
  std::size_t steps_per_sweep = 0;
  double threshold = la::kDefaultThreshold;
  /// Per-column rotation-activity flags, indexed by GLOBAL column id, or
  /// null when the solve does not track activity (topk == 0). A transport's
  /// pairing calls mark both columns of every applied rotation; columns in
  /// transit (pipelined packets) are marked on whichever endpoint rotated
  /// them -- the flags are summed in the convergence vote, so attribution
  /// only has to be exact, not local.
  std::uint8_t* activity = nullptr;
  /// SolveOptions::timing, passed through so transports can attribute
  /// exchange time to comm_ns (null = untimed).
  obs::SolveTimingSink* timing = nullptr;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int dimension() const = 0;

  /// Total column count of the problem (identical on every endpoint). The
  /// engine sizes the extended topk convergence vote from it.
  virtual std::size_t num_columns() const = 0;

  /// Applies @p fn to every JacobiNode this endpoint owns (all 2^d for the
  /// single-owner transports, exactly one for an mpi_lite rank). Takes a
  /// FunctionRef, not std::function: the engine calls this inside the
  /// steady-state sweep loop, and a capture list past std::function's
  /// small-buffer limit would silently put a heap allocation there
  /// (common/function_ref.hpp).
  virtual void visit_nodes(common::FunctionRef<void(JacobiNode&)> fn) = 0;

  /// Applies one ordering transition across t.link to every owned node:
  /// mobile <-> mobile exchange, or the asymmetric division move (the low
  /// side sends its mobile and receives the peer's fixed; the high side
  /// sends its fixed, keeps its mobile as the new fixed, and receives the
  /// peer's mobile). @p step is the transition's global_step index.
  virtual void apply_transition(const ord::Transition& t, std::uint64_t step) = 0;

  /// Element-wise global sum of @p values over all endpoints, returned
  /// everywhere (the convergence vote). Identity for single-owner
  /// transports.
  virtual std::vector<double> allreduce_sum(std::vector<double> values) = 0;

  /// Small-fixed-array overload: sums @p values in place across all
  /// endpoints. The per-sweep convergence vote (two scalars) goes through
  /// this so the steady-state sweep loop allocates no vote vectors;
  /// single-owner transports override it to a pure identity. The default
  /// round-trips through the vector overload.
  virtual void allreduce_sum(std::span<double> values);

  /// Executes one phase: default = per step, inter-block pairings on every
  /// owned node followed by the step's transition. Transports override to
  /// pipeline exchange phases (MpiLiteTransport) or charge modeled time
  /// (SimTransport); overrides must visit exactly the same column pairs.
  virtual SweepStats run_phase(const PhaseContext& ctx);

  /// All 2^{d+1} final blocks, available at every endpoint. Consumes the
  /// resident blocks; call once, after the protocol finishes.
  virtual std::vector<ColumnBlock> collect_blocks() = 0;

  /// Whether this transport's steady-state sweep path (every sweep after
  /// the first, once the scratch arenas are warm) performs no endpoint-side
  /// heap allocations. When true, the sweep engine audits each steady-state
  /// sweep with an AllocGuard in JMH_DASSERT builds -- the machine check of
  /// the PERF.md allocation-free claim. SimTransport opts out: charging
  /// modeled time allocates event bookkeeping by design (the model, not the
  /// endpoint).
  virtual bool steady_state_alloc_free() const noexcept { return true; }
};

}  // namespace jmh::solve
