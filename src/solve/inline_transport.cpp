#include "solve/inline_transport.hpp"

#include <utility>

#include "cube/hypercube.hpp"

namespace jmh::solve {

InlineTransport::InlineTransport(const la::Matrix& a, int d) : layout_(a.cols(), d) {
  const cube::Node num_nodes = cube::Node{1} << d;
  nodes_.reserve(num_nodes);
  for (cube::Node n = 0; n < num_nodes; ++n) nodes_.emplace_back(a, layout_, n);
}

void InlineTransport::visit_nodes(common::FunctionRef<void(JacobiNode&)> fn) {
  for (JacobiNode& node : nodes_) fn(node);
}

void InlineTransport::apply_transition(const ord::Transition& t, std::uint64_t /*step*/) {
  const cube::Node bit = cube::Node{1} << t.link;
  for (cube::Node lo = 0; lo < nodes_.size(); ++lo) {
    if (lo & bit) continue;
    const cube::Node hi = lo | bit;
    if (!t.division) {
      std::swap(nodes_[lo].mobile(), nodes_[hi].mobile());
    } else {
      // lo sends its mobile, receives hi's fixed (becomes lo's mobile);
      // hi keeps its mobile as new fixed and receives lo's mobile.
      ColumnBlock lo_mobile = std::move(nodes_[lo].mobile());
      nodes_[lo].install_mobile(std::move(nodes_[hi].fixed()));
      nodes_[hi].fixed() = std::move(nodes_[hi].mobile());
      nodes_[hi].install_mobile(std::move(lo_mobile));
    }
  }
}

std::vector<ColumnBlock> InlineTransport::collect_blocks() {
  std::vector<ColumnBlock> blocks;
  blocks.reserve(2 * nodes_.size());
  for (JacobiNode& node : nodes_) {
    blocks.push_back(std::move(node.fixed()));
    blocks.push_back(std::move(node.mobile()));
  }
  return blocks;
}

}  // namespace jmh::solve
