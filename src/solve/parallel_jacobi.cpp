#include "solve/parallel_jacobi.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/assert.hpp"
#include "obs/trace.hpp"
#include "solve/fault_injection.hpp"
#include "solve/legacy_bridge.hpp"
#include "solve/mpi_transport.hpp"
#include "solve/sweep_engine.hpp"

namespace jmh::solve {

namespace {

/// Normalizes a topk selection: sorted ascending, validated unique and in
/// range. Ascending matters for bit-parity -- a selection covering every
/// column becomes exactly the iota permutation the full assembly sorts.
std::vector<std::size_t> sorted_selection(const std::vector<std::size_t>& leading,
                                          std::size_t num_cols) {
  std::vector<std::size_t> sel = leading;
  std::sort(sel.begin(), sel.end());
  JMH_REQUIRE(!sel.empty() && sel.back() < num_cols, "leading selection out of range");
  JMH_REQUIRE(std::adjacent_find(sel.begin(), sel.end()) == sel.end(),
              "leading selection has duplicate columns");
  return sel;
}

}  // namespace

DistributedResult assemble_result(std::vector<ColumnBlock> blocks, std::size_t m, int sweeps,
                                  bool converged, std::size_t rotations,
                                  const std::vector<std::size_t>& leading) {
  DistributedResult out;
  out.sweeps = sweeps;
  out.converged = converged;
  out.rotations = rotations;

  la::Matrix b(m, m);
  la::Matrix v(m, m);
  std::vector<char> seen(m, 0);
  for (auto& blk : blocks) {
    JMH_REQUIRE(blk.rows == m && blk.vrows == m, "block row count mismatch");
    for (std::size_t i = 0; i < blk.num_cols(); ++i) {
      const std::size_t col = blk.cols[i];
      JMH_REQUIRE(col < m && !seen[col], "column coverage violation in final blocks");
      seen[col] = 1;
      std::copy_n(blk.b.begin() + static_cast<std::ptrdiff_t>(i * m), m, b.col(col).begin());
      std::copy_n(blk.v.begin() + static_cast<std::ptrdiff_t>(i * m), m, v.col(col).begin());
    }
  }
  JMH_REQUIRE(std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; }),
              "final blocks do not cover every column");

  // lambda_k = v_k . b_k over the selected columns (all of them for a full
  // solve); sort ascending. The comparator and the ascending starting
  // permutation match the historical full path exactly, so a selection of
  // every column reproduces it bit-for-bit, order included.
  std::vector<std::size_t> order;
  if (leading.empty()) {
    order.resize(m);
    std::iota(order.begin(), order.end(), 0);
  } else {
    order = sorted_selection(leading, m);
  }
  std::vector<double> lambda(m);
  for (std::size_t col : order) lambda[col] = la::dot(v.col(col), b.col(col));
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return lambda[x] < lambda[y]; });

  const std::size_t k_out = order.size();
  out.eigenvalues.resize(k_out);
  out.eigenvectors = la::Matrix(m, k_out);
  for (std::size_t k = 0; k < k_out; ++k) {
    out.eigenvalues[k] = lambda[order[k]];
    const auto src = v.col(order[k]);
    std::copy(src.begin(), src.end(), out.eigenvectors.col(k).begin());
  }
  return out;
}

DistributedResult solve_inline(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                               const SolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  const api::SolverSpec spec = legacy::spec_for(a, ordering, opts, api::Backend::Inline);
  return legacy::to_distributed(
      api::Solver::plan(spec, ordering).solve(a, legacy::overrides_for(opts)));
}

SvdSolveResult assemble_svd_result(std::vector<ColumnBlock> blocks, std::size_t rows,
                                   std::size_t cols, int sweeps, bool converged,
                                   std::size_t rotations,
                                   const std::vector<std::size_t>& leading) {
  la::Matrix b(rows, cols);
  la::Matrix v(cols, cols);
  std::vector<char> seen(cols, 0);
  for (auto& blk : blocks) {
    JMH_REQUIRE(blk.rows == rows && blk.vrows == cols, "block row count mismatch");
    for (std::size_t i = 0; i < blk.num_cols(); ++i) {
      const std::size_t col = blk.cols[i];
      JMH_REQUIRE(col < cols && !seen[col], "column coverage violation in final blocks");
      seen[col] = 1;
      std::copy_n(blk.b.begin() + static_cast<std::ptrdiff_t>(i * rows), rows,
                  b.col(col).begin());
      std::copy_n(blk.v.begin() + static_cast<std::ptrdiff_t>(i * cols), cols,
                  v.col(col).begin());
    }
  }
  JMH_REQUIRE(std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; }),
              "final blocks do not cover every column");

  SvdSolveResult out;
  if (leading.empty() || leading.size() == cols) {
    // Full extraction -- also taken by topk == m, whose selection covers
    // every column: routing through the identical call keeps it
    // bit-identical to the full solve.
    if (!leading.empty()) sorted_selection(leading, cols);  // validate only
    static_cast<la::SvdResult&>(out) = la::svd_from_bv(b, v);
  } else {
    // Truncated extraction, mirroring la::svd_from_bv over the selected
    // columns: sigma descending, ties by ascending global column index
    // (sel is ascending, so position order == global-id order).
    const std::vector<std::size_t> sel = sorted_selection(leading, cols);
    const std::size_t k_out = sel.size();
    std::vector<double> sigma(k_out);
    for (std::size_t i = 0; i < k_out; ++i) sigma[i] = la::norm2(b.col(sel[i]));
    std::vector<std::size_t> order(k_out);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return sigma[x] != sigma[y] ? sigma[x] > sigma[y] : x < y;
    });
    out.singular_values.resize(k_out);
    out.u = la::Matrix(rows, k_out);
    out.v = la::Matrix(cols, k_out);
    for (std::size_t k = 0; k < k_out; ++k) {
      const std::size_t src = sel[order[k]];
      const double s = sigma[order[k]];
      out.singular_values[k] = s;
      const auto bcol = b.col(src);
      auto ucol = out.u.col(k);
      if (s > 0.0)
        for (std::size_t r = 0; r < bcol.size(); ++r) ucol[r] = bcol[r] / s;
      const auto vcol = v.col(src);
      std::copy(vcol.begin(), vcol.end(), out.v.col(k).begin());
    }
  }
  out.sweeps = sweeps;
  out.converged = converged;
  out.rotations = rotations;
  return out;
}

namespace {

/// The shared mpi_lite run: spins up the universe, drives the protocol on
/// every rank, and hands rank 0's collected blocks (plus traffic) to the
/// caller's assembly -- identical for the EVD and SVD entry points.
struct MpiRunOutcome {
  std::vector<ColumnBlock> blocks;  ///< rank 0's full final block set
  EngineResult engine;
  net::CommStats comm;
};

MpiRunOutcome run_mpi_protocol(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                               const SolveOptions& opts, std::uint64_t q) {
  net::Universe universe(1 << ordering.dimension());
  MpiRunOutcome out;
  std::mutex out_mu;
  universe.run([&](net::Comm& comm) {
    MpiLiteTransport transport(comm, a, q);
    // Faults decorate the real transport per rank; with the plan disabled
    // the decorator is never built, keeping unfaulted runs bit-identical.
    EngineResult er;
    if (opts.faults.enabled()) {
      FaultInjectingTransport faulty(transport, opts.faults);
      er = run_sweep_protocol(faulty, ordering, opts);
    } else {
      er = run_sweep_protocol(transport, ordering, opts);
    }
    // The status came out of the allreduced vote, so every rank takes the
    // same branch here: all participate in the collect allgatherv, or none.
    std::vector<ColumnBlock> blocks;
    if (er.status == RunStatus::Ok) blocks = transport.collect_blocks();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(out_mu);
      out.engine = er;
      out.blocks = std::move(blocks);
    }
  });
  out.comm = universe.stats();
  if (out.engine.status != RunStatus::Ok) throw SolveInterrupted(out.engine.status);
  return out;
}

}  // namespace

DistributedResult solve_mpi_like(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                 const SolveOptions& opts, std::uint64_t q) {
  MpiRunOutcome run = run_mpi_protocol(a, ordering, opts, q);
  const obs::SpanScope span("assemble", obs::Category::kAssembly, a.rows(),
                            opts.timing != nullptr ? &opts.timing->assembly_ns : nullptr);
  DistributedResult result =
      assemble_result(std::move(run.blocks), a.rows(), run.engine.sweeps,
                      run.engine.converged, run.engine.rotations, run.engine.leading);
  result.comm = run.comm;
  return result;
}

SvdSolveResult solve_mpi_svd_like(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                  const SolveOptions& opts, std::uint64_t q) {
  MpiRunOutcome run = run_mpi_protocol(a, ordering, opts, q);
  const obs::SpanScope span("assemble", obs::Category::kAssembly, a.cols(),
                            opts.timing != nullptr ? &opts.timing->assembly_ns : nullptr);
  SvdSolveResult result =
      assemble_svd_result(std::move(run.blocks), a.rows(), a.cols(), run.engine.sweeps,
                          run.engine.converged, run.engine.rotations, run.engine.leading);
  result.comm = run.comm;
  return result;
}

DistributedResult solve_mpi(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                            const SolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  const api::SolverSpec spec = legacy::spec_for(a, ordering, opts, api::Backend::MpiLite);
  return legacy::to_distributed(
      api::Solver::plan(spec, ordering).solve(a, legacy::overrides_for(opts)));
}

}  // namespace jmh::solve
