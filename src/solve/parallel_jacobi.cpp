#include "solve/parallel_jacobi.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/assert.hpp"
#include "solve/legacy_bridge.hpp"
#include "solve/mpi_transport.hpp"
#include "solve/sweep_engine.hpp"

namespace jmh::solve {

DistributedResult assemble_result(std::vector<ColumnBlock> blocks, std::size_t m, int sweeps,
                                  bool converged, std::size_t rotations) {
  DistributedResult out;
  out.sweeps = sweeps;
  out.converged = converged;
  out.rotations = rotations;

  la::Matrix b(m, m);
  la::Matrix v(m, m);
  std::vector<char> seen(m, 0);
  for (auto& blk : blocks) {
    JMH_REQUIRE(blk.rows == m && blk.vrows == m, "block row count mismatch");
    for (std::size_t i = 0; i < blk.num_cols(); ++i) {
      const std::size_t col = blk.cols[i];
      JMH_REQUIRE(col < m && !seen[col], "column coverage violation in final blocks");
      seen[col] = 1;
      std::copy_n(blk.b.begin() + static_cast<std::ptrdiff_t>(i * m), m, b.col(col).begin());
      std::copy_n(blk.v.begin() + static_cast<std::ptrdiff_t>(i * m), m, v.col(col).begin());
    }
  }
  JMH_REQUIRE(std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; }),
              "final blocks do not cover every column");

  // lambda_k = v_k . b_k; sort ascending.
  std::vector<double> lambda(m);
  for (std::size_t k = 0; k < m; ++k) lambda[k] = la::dot(v.col(k), b.col(k));
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return lambda[x] < lambda[y]; });

  out.eigenvalues.resize(m);
  out.eigenvectors = la::Matrix(m, m);
  for (std::size_t k = 0; k < m; ++k) {
    out.eigenvalues[k] = lambda[order[k]];
    const auto src = v.col(order[k]);
    std::copy(src.begin(), src.end(), out.eigenvectors.col(k).begin());
  }
  return out;
}

DistributedResult solve_inline(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                               const SolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  const api::SolverSpec spec = legacy::spec_for(a, ordering, opts, api::Backend::Inline);
  return legacy::to_distributed(api::Solver::plan(spec, ordering).solve(a));
}

SvdSolveResult assemble_svd_result(std::vector<ColumnBlock> blocks, std::size_t rows,
                                   std::size_t cols, int sweeps, bool converged,
                                   std::size_t rotations) {
  la::Matrix b(rows, cols);
  la::Matrix v(cols, cols);
  std::vector<char> seen(cols, 0);
  for (auto& blk : blocks) {
    JMH_REQUIRE(blk.rows == rows && blk.vrows == cols, "block row count mismatch");
    for (std::size_t i = 0; i < blk.num_cols(); ++i) {
      const std::size_t col = blk.cols[i];
      JMH_REQUIRE(col < cols && !seen[col], "column coverage violation in final blocks");
      seen[col] = 1;
      std::copy_n(blk.b.begin() + static_cast<std::ptrdiff_t>(i * rows), rows,
                  b.col(col).begin());
      std::copy_n(blk.v.begin() + static_cast<std::ptrdiff_t>(i * cols), cols,
                  v.col(col).begin());
    }
  }
  JMH_REQUIRE(std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; }),
              "final blocks do not cover every column");

  SvdSolveResult out;
  static_cast<la::SvdResult&>(out) = la::svd_from_bv(b, v);
  out.sweeps = sweeps;
  out.converged = converged;
  out.rotations = rotations;
  return out;
}

namespace {

/// The shared mpi_lite run: spins up the universe, drives the protocol on
/// every rank, and hands rank 0's collected blocks (plus traffic) to the
/// caller's assembly -- identical for the EVD and SVD entry points.
struct MpiRunOutcome {
  std::vector<ColumnBlock> blocks;  ///< rank 0's full final block set
  EngineResult engine;
  net::CommStats comm;
};

MpiRunOutcome run_mpi_protocol(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                               const SolveOptions& opts, std::uint64_t q) {
  net::Universe universe(1 << ordering.dimension());
  MpiRunOutcome out;
  std::mutex out_mu;
  universe.run([&](net::Comm& comm) {
    MpiLiteTransport transport(comm, a, q);
    const EngineResult er = run_sweep_protocol(transport, ordering, opts);
    std::vector<ColumnBlock> blocks = transport.collect_blocks();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(out_mu);
      out.engine = er;
      out.blocks = std::move(blocks);
    }
  });
  out.comm = universe.stats();
  return out;
}

}  // namespace

DistributedResult solve_mpi_like(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                 const SolveOptions& opts, std::uint64_t q) {
  MpiRunOutcome run = run_mpi_protocol(a, ordering, opts, q);
  DistributedResult result =
      assemble_result(std::move(run.blocks), a.rows(), run.engine.sweeps,
                      run.engine.converged, run.engine.rotations);
  result.comm = run.comm;
  return result;
}

SvdSolveResult solve_mpi_svd_like(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                  const SolveOptions& opts, std::uint64_t q) {
  MpiRunOutcome run = run_mpi_protocol(a, ordering, opts, q);
  SvdSolveResult result =
      assemble_svd_result(std::move(run.blocks), a.rows(), a.cols(), run.engine.sweeps,
                          run.engine.converged, run.engine.rotations);
  result.comm = run.comm;
  return result;
}

DistributedResult solve_mpi(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                            const SolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  const api::SolverSpec spec = legacy::spec_for(a, ordering, opts, api::Backend::MpiLite);
  return legacy::to_distributed(api::Solver::plan(spec, ordering).solve(a));
}

}  // namespace jmh::solve
