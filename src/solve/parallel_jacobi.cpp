#include "solve/parallel_jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>

#include "common/assert.hpp"
#include "la/shift.hpp"
#include "net/collectives.hpp"
#include "net/hypercube_comm.hpp"
#include "net/universe.hpp"

namespace jmh::solve {

DistributedResult assemble_result(std::vector<ColumnBlock> blocks, std::size_t m, int sweeps,
                                  bool converged, std::size_t rotations) {
  DistributedResult out;
  out.sweeps = sweeps;
  out.converged = converged;
  out.rotations = rotations;

  la::Matrix b(m, m);
  la::Matrix v(m, m);
  std::vector<char> seen(m, 0);
  for (auto& blk : blocks) {
    JMH_REQUIRE(blk.rows == m, "block row count mismatch");
    for (std::size_t i = 0; i < blk.num_cols(); ++i) {
      const std::size_t col = blk.cols[i];
      JMH_REQUIRE(col < m && !seen[col], "column coverage violation in final blocks");
      seen[col] = 1;
      std::copy_n(blk.b.begin() + static_cast<std::ptrdiff_t>(i * m), m, b.col(col).begin());
      std::copy_n(blk.v.begin() + static_cast<std::ptrdiff_t>(i * m), m, v.col(col).begin());
    }
  }
  JMH_REQUIRE(std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; }),
              "final blocks do not cover every column");

  // lambda_k = v_k . b_k; sort ascending.
  std::vector<double> lambda(m);
  for (std::size_t k = 0; k < m; ++k) lambda[k] = la::dot(v.col(k), b.col(k));
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return lambda[x] < lambda[y]; });

  out.eigenvalues.resize(m);
  out.eigenvectors = la::Matrix(m, m);
  for (std::size_t k = 0; k < m; ++k) {
    out.eigenvalues[k] = lambda[order[k]];
    const auto src = v.col(order[k]);
    std::copy(src.begin(), src.end(), out.eigenvectors.col(k).begin());
  }
  return out;
}

namespace {

// Shared shift wrapper: solve A + sigma*I, shift the spectrum back.
template <typename Solver>
DistributedResult solve_with_shift(const la::Matrix& a, const SolveOptions& opts,
                                   Solver&& solver) {
  const double sigma = la::gershgorin_radius(a);
  SolveOptions inner = opts;
  inner.gershgorin_shift = false;
  DistributedResult r = solver(la::add_diagonal_shift(a, sigma), inner);
  for (double& ev : r.eigenvalues) ev -= sigma;
  return r;
}

}  // namespace

DistributedResult solve_inline(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                               const SolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  if (opts.gershgorin_shift) {
    return solve_with_shift(a, opts, [&](const la::Matrix& shifted, const SolveOptions& o) {
      return solve_inline(shifted, ordering, o);
    });
  }
  const int d = ordering.dimension();
  const BlockLayout layout(a.rows(), d);
  const cube::Hypercube topo(d);
  const std::uint64_t num_nodes = topo.num_nodes();

  std::vector<JacobiNode> nodes;
  nodes.reserve(num_nodes);
  for (cube::Node n = 0; n < num_nodes; ++n) nodes.emplace_back(a, layout, n);

  double frob2 = 0.0;
  for (const auto& node : nodes) frob2 += node.frobenius_squared();

  int sweeps = 0;
  bool converged = false;
  std::size_t total_rotations = 0;

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    SweepStats stats;
    for (auto& node : nodes) stats += node.intra_block_pairings(opts.threshold);

    for (const auto& t : ordering.sweep_transitions(sweep)) {
      for (auto& node : nodes) stats += node.inter_block_pairings(opts.threshold);
      // Apply the transition to all neighbor pairs.
      const cube::Node bit = cube::Node{1} << t.link;
      for (cube::Node lo = 0; lo < num_nodes; ++lo) {
        if (lo & bit) continue;
        const cube::Node hi = lo | bit;
        if (!t.division) {
          std::swap(nodes[lo].mobile(), nodes[hi].mobile());
        } else {
          // lo sends its mobile, receives hi's fixed (becomes lo's mobile);
          // hi keeps its mobile as new fixed and receives lo's mobile.
          ColumnBlock lo_mobile = std::move(nodes[lo].mobile());
          nodes[lo].install_mobile(std::move(nodes[hi].fixed()));
          nodes[hi].fixed() = std::move(nodes[hi].mobile());
          nodes[hi].install_mobile(std::move(lo_mobile));
        }
      }
    }

    total_rotations += stats.rotations;
    if (opts.stop_rule == StopRule::NoRotations) {
      if (stats.rotations == 0) {
        converged = true;
        break;
      }
    } else {
      // off2 is accumulated from pre-rotation dot products, so it measures
      // the matrix state *entering* this sweep: when it is already below
      // tolerance the previous sweep had converged and this one is not
      // counted.
      if (std::sqrt(2.0 * stats.off2) <= opts.off_tol * std::sqrt(frob2)) {
        converged = true;
        break;
      }
    }
    ++sweeps;
  }

  std::vector<ColumnBlock> blocks;
  blocks.reserve(2 * num_nodes);
  for (auto& node : nodes) {
    blocks.push_back(std::move(node.fixed()));
    blocks.push_back(std::move(node.mobile()));
  }
  return assemble_result(std::move(blocks), a.rows(), sweeps, converged, total_rotations);
}

DistributedResult solve_mpi(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                            const SolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  if (opts.gershgorin_shift) {
    return solve_with_shift(a, opts, [&](const la::Matrix& shifted, const SolveOptions& o) {
      return solve_mpi(shifted, ordering, o);
    });
  }
  const int d = ordering.dimension();
  const BlockLayout layout(a.rows(), d);
  net::Universe universe(1 << d);

  DistributedResult result;  // filled by rank 0
  std::mutex result_mu;

  universe.run([&](net::Comm& comm) {
    net::HypercubeComm hc(comm);
    JacobiNode node(a, layout, hc.node());

    const double frob2 = net::allreduce_sum(comm, node.frobenius_squared());

    int sweeps = 0;
    bool converged = false;
    double total_rotations = 0.0;

    for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
      SweepStats stats = node.intra_block_pairings(opts.threshold);

      for (const auto& t : ordering.sweep_transitions(sweep)) {
        stats += node.inter_block_pairings(opts.threshold);
        const bool low_side = (hc.node() & (cube::Node{1} << t.link)) == 0;
        if (!t.division) {
          const net::Payload got = hc.exchange(t.link, node.mobile().serialize());
          node.install_mobile(ColumnBlock::deserialize(got));
        } else if (low_side) {
          hc.send(t.link, node.mobile().serialize());
          node.install_mobile(ColumnBlock::deserialize(hc.recv(t.link)));
        } else {
          hc.send(t.link, node.fixed().serialize());
          node.promote_mobile_to_fixed();  // kept mobile becomes the new fixed
          node.install_mobile(ColumnBlock::deserialize(hc.recv(t.link)));
        }
      }

      const double global_rot =
          net::allreduce_sum(comm, static_cast<double>(stats.rotations));
      const double global_off2 = net::allreduce_sum(comm, stats.off2);
      total_rotations += global_rot;
      if (opts.stop_rule == StopRule::NoRotations) {
        if (global_rot == 0.0) {
          converged = true;
          break;
        }
      } else {
        // See solve_inline: off2 measures the state entering this sweep.
        if (std::sqrt(2.0 * global_off2) <= opts.off_tol * std::sqrt(frob2)) {
          converged = true;
          break;
        }
      }
      ++sweeps;
    }

    // Collect all blocks at every rank (allgather keeps the control flow
    // symmetric) and let rank 0 assemble.
    net::Payload mine = node.fixed().serialize();
    const net::Payload mobile = node.mobile().serialize();
    mine.insert(mine.end(), mobile.begin(), mobile.end());
    const std::vector<double> all = net::allgatherv(comm, mine);

    if (comm.rank() == 0) {
      // Parse the concatenated payload stream back into blocks.
      std::vector<ColumnBlock> blocks;
      std::size_t pos = 0;
      while (pos < all.size()) {
        const auto ncols = static_cast<std::size_t>(all[pos + 1]);
        const auto rows = static_cast<std::size_t>(all[pos + 2]);
        const std::size_t len = 3 + ncols + 2 * ncols * rows;
        net::Payload one(all.begin() + static_cast<std::ptrdiff_t>(pos),
                         all.begin() + static_cast<std::ptrdiff_t>(pos + len));
        blocks.push_back(ColumnBlock::deserialize(one));
        pos += len;
      }
      std::lock_guard<std::mutex> lock(result_mu);
      result = assemble_result(std::move(blocks), a.rows(), sweeps, converged,
                               static_cast<std::size_t>(total_rotations));
    }
  });
  result.comm = universe.stats();
  return result;
}

}  // namespace jmh::solve
