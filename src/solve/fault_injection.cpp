#include "solve/fault_injection.hpp"

#include <bit>
#include <chrono>
#include <thread>

#include "common/rng.hpp"

namespace jmh::solve {

namespace {

// Distinct salts keep the per-kind decision streams independent even at
// the same event index.
constexpr std::uint64_t kCorruptSalt = 0x636f727275707421ull;
constexpr std::uint64_t kDelaySalt = 0x64656c6179656421ull;
constexpr std::uint64_t kVoteSalt = 0x766f74652d666c70ull;
constexpr std::uint64_t kBitSalt = 0x6269742d70696b21ull;

/// One splitmix64 finalization of (seed, attempt, kind, index): the entire
/// schedule is this stateless hash, evaluated identically on every endpoint.
std::uint64_t fault_hash(const FaultPlan& plan, std::uint64_t salt,
                         std::uint64_t index) noexcept {
  std::uint64_t state = plan.seed ^ salt ^ (plan.attempt * 0x9e3779b97f4a7c15ull);
  state += index * 0xbf58476d1ce4e5b9ull;
  return splitmix64_next(state);
}

double fault_uniform(const FaultPlan& plan, std::uint64_t salt,
                     std::uint64_t index) noexcept {
  // Same 53-bit mantissa construction as Xoshiro256::uniform01.
  return static_cast<double>(fault_hash(plan, salt, index) >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultSchedule::corrupt_at(std::uint64_t step) const noexcept {
  return plan_.corrupt_rate > 0.0 &&
         fault_uniform(plan_, kCorruptSalt, step) < plan_.corrupt_rate;
}

bool FaultSchedule::delay_at(std::uint64_t step) const noexcept {
  return plan_.delay_rate > 0.0 &&
         fault_uniform(plan_, kDelaySalt, step) < plan_.delay_rate;
}

bool FaultSchedule::vote_fails(std::uint64_t vote_index) const noexcept {
  return plan_.vote_fail_rate > 0.0 &&
         fault_uniform(plan_, kVoteSalt, vote_index) < plan_.vote_fail_rate;
}

std::uint64_t FaultSchedule::corrupt_bit(std::uint64_t step) const noexcept {
  return fault_hash(plan_, kBitSalt, step);
}

void FaultInjectingTransport::inject_step_faults(std::uint64_t step) {
  if (schedule_.delay_at(step))
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
  if (!schedule_.corrupt_at(step)) return;
  // Surface the corruption through the real detection path: serialize a
  // resident block, flip one scheduled bit "on the wire", and parse it
  // back -- assign_from's checksum verification raises TransportCorrupt
  // exactly as it would for genuine transit damage.
  JacobiNode* victim = nullptr;
  inner_.visit_nodes([&](JacobiNode& node) {
    if (victim == nullptr) victim = &node;
  });
  victim->mobile().serialize_into(corrupt_scratch_);
  const std::uint64_t bit = schedule_.corrupt_bit(step) %
                            (std::uint64_t{corrupt_scratch_.size()} * 64u);
  double& word = corrupt_scratch_[bit / 64];
  word = std::bit_cast<double>(std::bit_cast<std::uint64_t>(word) ^
                               (std::uint64_t{1} << (bit % 64)));
  corrupt_block_.assign_from(corrupt_scratch_);  // throws TransportCorrupt
  throw TransportCorrupt("injected corruption escaped checksum verification");
}

SweepStats FaultInjectingTransport::run_phase(const PhaseContext& ctx) {
  // Injection happens ahead of the delegated phase: the inner transport's
  // own pipelined/modeled run_phase overrides stay in effect untouched.
  const std::size_t end = ctx.phase.first_step + ctx.phase.num_steps;
  for (std::size_t s = ctx.phase.first_step; s < end; ++s)
    inject_step_faults(global_step(ctx.sweep, ctx.steps_per_sweep, s));
  return inner_.run_phase(ctx);
}

std::vector<double> FaultInjectingTransport::allreduce_sum(std::vector<double> values) {
  if (schedule_.vote_fails(votes_++))
    throw TransportCorrupt("injected allreduce failure");
  return inner_.allreduce_sum(std::move(values));
}

void FaultInjectingTransport::allreduce_sum(std::span<double> values) {
  if (schedule_.vote_fails(votes_++))
    throw TransportCorrupt("injected allreduce failure");
  inner_.allreduce_sum(values);
}

}  // namespace jmh::solve
