// MpiLiteTransport: one SPMD endpoint per mpi_lite rank. Blocks travel as
// real messages over the hypercube overlay; the convergence vote is a
// recursive-doubling allreduce. With q >= 1 the exchange phases run the
// packetized pipelined path: the mobile block is split into q column
// packets, and a node pairs an arriving packet against its fixed block and
// immediately forwards it along the phase's next link, so consecutive
// packets of one block are spread across consecutive nodes of the
// Hamiltonian path and travel on different links concurrently -- the
// multi-port overlap the paper's orderings exist to enable, emerging here
// from genuinely asynchronous sends on the mpi_lite threads.
//
// Pipelined correctness is order-independent: every (fixed column, mobile
// column) pair still meets exactly once, each packet's rotations are
// sequenced by its message causality, and each fixed column's rotations are
// sequenced by its node's thread. Results agree with the unpipelined
// executors up to floating-point reordering (verified in tests). Division
// steps and the sweep-opening intra-block pairings are not pipelined,
// exactly as in the paper (pipelining "can be applied to every exchange
// phase, which are the most time-consuming part").
#pragma once

#include <cstdint>

#include "la/matrix.hpp"
#include "net/hypercube_comm.hpp"
#include "solve/block_layout.hpp"
#include "solve/parallel_jacobi.hpp"
#include "solve/transport.hpp"

namespace jmh::solve {

class MpiLiteTransport : public Transport {
 public:
  /// Endpoint for @p comm's rank. @p q == 0 selects plain full-block
  /// exchanges; q >= 1 packetizes exchange phases into q packets per block.
  MpiLiteTransport(net::Comm& comm, const la::Matrix& a, std::uint64_t q = 0);

  int dimension() const override { return hc_.dimension(); }
  std::size_t num_columns() const override { return layout_.m(); }

  void visit_nodes(common::FunctionRef<void(JacobiNode&)> fn) override { fn(node_); }

  void apply_transition(const ord::Transition& t, std::uint64_t step) override;

  std::vector<double> allreduce_sum(std::vector<double> values) override;
  void allreduce_sum(std::span<double> values) override;

  /// Pipelined exchange phases when q >= 1; the base implementation
  /// otherwise. In JMH_DASSERT builds every phase after the first sweep is
  /// audited to allocate nothing on this endpoint (the scratch arenas must
  /// absorb all serialization, packetization and merging; the mailbox's
  /// wire copy is exempt -- common/alloc_guard.hpp).
  SweepStats run_phase(const PhaseContext& ctx) override;

  /// Allgathers every endpoint's blocks; all ranks return the full set.
  std::vector<ColumnBlock> collect_blocks() override;

 private:
  SweepStats run_phase_pipelined(const PhaseContext& ctx);

  net::HypercubeComm hc_;
  BlockLayout layout_;
  JacobiNode node_;
  std::uint64_t q_;

  // Scratch arenas of the steady-state sweep loop. Serialization,
  // packetization, and merge all reuse these buffers across steps and
  // sweeps, so after the first exchange of a solve the transport itself
  // performs no allocations (the mailbox still copies message payloads --
  // that is the wire, not the endpoint).
  net::Payload send_scratch_;
  ColumnBlock packet_scratch_;
  std::vector<ColumnBlock> split_scratch_;
  std::vector<ColumnBlock> incoming_scratch_;
  ColumnBlock merge_scratch_;
};

/// Shared executor core of solve_mpi / solve_mpi_pipelined: spins up an
/// mpi_lite universe and runs the sweep engine over one MpiLiteTransport
/// endpoint per rank. @p q as in MpiLiteTransport. The Gershgorin shift
/// must already be unwrapped by the caller.
DistributedResult solve_mpi_like(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                 const SolveOptions& opts, std::uint64_t q);

/// SVD counterpart of solve_mpi_like: the identical universe + sweep-engine
/// run over the a.cols() columns of a rectangular @p a, assembled as
/// singular triplets (assemble_svd_result) instead of eigenpairs.
SvdSolveResult solve_mpi_svd_like(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                  const SolveOptions& opts, std::uint64_t q);

}  // namespace jmh::solve
