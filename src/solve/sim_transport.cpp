#include "solve/sim_transport.hpp"

#include <utility>

#include "common/assert.hpp"
#include "sim/programs.hpp"
#include "solve/legacy_bridge.hpp"
#include "solve/sweep_engine.hpp"

namespace jmh::solve {

namespace {

sim::SimConfig make_config(const SimSolveOptions& opts) {
  sim::SimConfig config;
  config.machine = opts.machine;
  config.overlap_startup = opts.overlap_startup;
  return config;
}

/// Elements of the B and V columns a block ships (headers excluded: the
/// machine model charges matrix data, matching pipe::ProblemParams). For
/// square inputs rows == vrows and this is exactly the historical
/// 2 * rows * ncols.
double block_elems(const ColumnBlock& blk) {
  return static_cast<double>(blk.rows + blk.vrows) * static_cast<double>(blk.num_cols());
}

}  // namespace

SimTransport::SimTransport(const la::Matrix& a, int d, const SimSolveOptions& opts)
    : InlineTransport(a, d), network_(d, make_config(opts)), pipelined_q_(opts.pipelined_q) {}

void SimTransport::apply_transition(const ord::Transition& t, std::uint64_t step) {
  if (charge_transitions_) {
    const cube::Node bit = cube::Node{1} << t.link;
    std::vector<sim::NodeStage> stage(nodes_.size());
    for (cube::Node n = 0; n < nodes_.size(); ++n) {
      const bool sends_fixed = t.division && (n & bit) != 0;
      const ColumnBlock& out = sends_fixed ? nodes_[n].fixed() : nodes_[n].mobile();
      stage[n] = {{t.link, block_elems(out)}};
    }
    network_.accumulate_stage(stage, clock_);
  }
  InlineTransport::apply_transition(t, step);
}

SweepStats SimTransport::run_phase(const PhaseContext& ctx) {
  if (ctx.phase.first_step == 0) ++modeled_sweeps_;
  if (pipelined_q_ == 0 || ctx.phase.type != ord::PhaseInfo::Type::Exchange)
    return Transport::run_phase(ctx);

  // Charge the phase as its pipelined stage schedule (uniform model block
  // size, as in pipe/cost_model), then run the numerics uncharged --
  // pipelining reschedules the messages, it does not change which column
  // pairs meet.
  std::vector<ord::Link> links;
  links.reserve(ctx.phase.num_steps);
  for (std::size_t t = 0; t < ctx.phase.num_steps; ++t)
    links.push_back(ctx.transitions[ctx.phase.first_step + t].link);
  // Uniform model block size: (B rows + V rows) elements per column. For
  // square inputs rows == m, giving exactly the historical 2 * m * cols.
  const double m = static_cast<double>(layout_.m());
  const double col_elems = static_cast<double>(nodes_.front().fixed().rows) + m;
  const double step_elems = col_elems * (m / static_cast<double>(layout_.num_blocks()));
  const sim::Program program =
      sim::build_pipelined_links_program(links, pipelined_q_, step_elems, dimension());
  for (const auto& stage : program) network_.accumulate_stage(stage, clock_);

  charge_transitions_ = false;
  SweepStats stats = Transport::run_phase(ctx);
  charge_transitions_ = true;
  return stats;
}

void SimTransport::charge_vote(std::size_t num_values) {
  // Single owner: the values already are the global sums; charge the
  // recursive-doubling vote the distributed run would pay.
  const double before = clock_.makespan;
  const double elems = static_cast<double>(num_values);
  for (int bit = 0; bit < dimension(); ++bit) {
    const std::vector<sim::NodeStage> stage(nodes_.size(),
                                            sim::NodeStage{{cube::Link{bit}, elems}});
    network_.accumulate_stage(stage, clock_);
  }
  vote_time_ += clock_.makespan - before;
}

std::vector<double> SimTransport::allreduce_sum(std::vector<double> values) {
  charge_vote(values.size());
  return values;
}

void SimTransport::allreduce_sum(std::span<double> values) { charge_vote(values.size()); }

SimSolveResult solve_sim(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                         const SimSolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  api::SolverSpec spec = legacy::spec_for(a, ordering, opts, api::Backend::Sim);
  spec.machine = opts.machine;
  spec.overlap_startup = opts.overlap_startup;
  if (opts.pipelined_q >= 1) {
    spec.pipelining = api::PipeliningPolicy::Fixed;
    spec.q = opts.pipelined_q;
  }
  api::SolveReport report =
      api::Solver::plan(spec, ordering).solve(a, legacy::overrides_for(opts));

  SimSolveResult out;
  out.modeled_time = report.modeled_time;
  out.vote_time = report.vote_time;
  out.modeled_sweeps = report.modeled_sweeps;
  out.link_busy = std::move(report.link_busy);
  static_cast<DistributedResult&>(out) = legacy::to_distributed(std::move(report));
  return out;
}

double SimSolveResult::mean_link_utilization() const {
  if (modeled_time <= 0.0 || link_busy.empty()) return 0.0;
  double total = 0.0;
  for (double b : link_busy) total += b;
  return total / (modeled_time * static_cast<double>(link_busy.size()));
}

}  // namespace jmh::solve
