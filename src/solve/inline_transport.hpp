// InlineTransport: all 2^d nodes owned by one object and executed
// sequentially in the calling thread. Deterministic (no threads, no message
// nondeterminism); the substrate behind solve_inline and the numerics base
// of SimTransport.
#pragma once

#include "la/matrix.hpp"
#include "solve/block_layout.hpp"
#include "solve/transport.hpp"

namespace jmh::solve {

class InlineTransport : public Transport {
 public:
  /// Distributes the a.cols() columns of @p a (square for EVD, rectangular
  /// for SVD) over the 2^{d+1} blocks of a d-cube.
  InlineTransport(const la::Matrix& a, int d);

  int dimension() const override { return layout_.d(); }
  std::size_t num_columns() const override { return layout_.m(); }

  void visit_nodes(common::FunctionRef<void(JacobiNode&)> fn) override;

  /// Moves blocks between the owned nodes directly (no serialization).
  void apply_transition(const ord::Transition& t, std::uint64_t step) override;

  /// Single owner: the local values already are the global sums.
  std::vector<double> allreduce_sum(std::vector<double> values) override { return values; }
  void allreduce_sum(std::span<double> /*values*/) override {}

  std::vector<ColumnBlock> collect_blocks() override;

 protected:
  BlockLayout layout_;
  std::vector<JacobiNode> nodes_;
};

}  // namespace jmh::solve
