#include "solve/pipelined_executor.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "la/shift.hpp"
#include "solve/block_layout.hpp"
#include "solve/mpi_transport.hpp"

namespace jmh::solve {

DistributedResult solve_mpi_pipelined(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                      const PipelinedSolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  if (opts.gershgorin_shift) {
    const double sigma = la::gershgorin_radius(a);
    PipelinedSolveOptions inner = opts;
    inner.gershgorin_shift = false;
    DistributedResult r =
        solve_mpi_pipelined(la::add_diagonal_shift(a, sigma), ordering, inner);
    for (double& ev : r.eigenvalues) ev -= sigma;
    return r;
  }

  const BlockLayout layout(a.rows(), ordering.dimension());
  const std::uint64_t q_auto =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(4, layout.block_size(0)));
  return solve_mpi_like(a, ordering, opts, opts.q == 0 ? q_auto : opts.q);
}

}  // namespace jmh::solve
