#include "solve/pipelined_executor.hpp"

#include "common/assert.hpp"
#include "solve/legacy_bridge.hpp"

namespace jmh::solve {

DistributedResult solve_mpi_pipelined(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                      const PipelinedSolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  api::SolverSpec spec = legacy::spec_for(a, ordering, opts, api::Backend::MpiLite);
  spec.machine = opts.machine;
  if (opts.q == 0) {
    spec.pipelining = api::PipeliningPolicy::Auto;
  } else {
    spec.pipelining = api::PipeliningPolicy::Fixed;
    spec.q = opts.q;
  }
  return legacy::to_distributed(
      api::Solver::plan(spec, ordering).solve(a, legacy::overrides_for(opts)));
}

}  // namespace jmh::solve
