#include "solve/pipelined_executor.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/assert.hpp"
#include "la/shift.hpp"
#include "net/collectives.hpp"
#include "net/hypercube_comm.hpp"

namespace jmh::solve {

namespace {

// Messages are tagged by the global transition index so packets from
// different steps/sweeps can never be confused even when neighboring nodes
// run several stages apart. HypercubeComm shifts tags by 6 bits under a
// 1<<24 base, so the global step must stay below ~2^24.
int global_step_tag(int sweep, std::size_t steps_per_sweep, std::size_t step) {
  const std::uint64_t tag =
      static_cast<std::uint64_t>(sweep) * steps_per_sweep + step;
  JMH_REQUIRE(tag < (std::uint64_t{1} << 17), "global step tag overflow");
  return static_cast<int>(tag);
}

}  // namespace

DistributedResult solve_mpi_pipelined(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                      const PipelinedSolveOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  if (opts.gershgorin_shift) {
    const double sigma = la::gershgorin_radius(a);
    PipelinedSolveOptions inner = opts;
    inner.gershgorin_shift = false;
    DistributedResult r =
        solve_mpi_pipelined(la::add_diagonal_shift(a, sigma), ordering, inner);
    for (double& ev : r.eigenvalues) ev -= sigma;
    return r;
  }

  const int d = ordering.dimension();
  const BlockLayout layout(a.rows(), d);
  const std::uint64_t q_auto =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(4, layout.block_size(0)));
  const std::uint64_t q = opts.q == 0 ? q_auto : opts.q;

  net::Universe universe(1 << d);
  DistributedResult result;
  std::mutex result_mu;

  universe.run([&](net::Comm& comm) {
    net::HypercubeComm hc(comm);
    JacobiNode node(a, layout, hc.node());
    const auto& phases = ordering.phases();
    const std::size_t steps_per_sweep = ordering.steps_per_sweep();

    const double frob2 = net::allreduce_sum(comm, node.frobenius_squared());

    int sweeps = 0;
    bool converged = false;
    double total_rotations = 0.0;

    for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
      const auto transitions = ordering.sweep_transitions(sweep);
      SweepStats stats = node.intra_block_pairings(opts.threshold);

      for (const ord::PhaseInfo& phase : phases) {
        if (phase.type == ord::PhaseInfo::Type::Exchange) {
          // Pipelined exchange phase: packetize the mobile block; pair and
          // forward packet by packet. Packets of one block are spread over
          // consecutive path nodes, overlapping distinct links.
          const std::size_t k = phase.num_steps;
          auto link_of = [&](std::size_t t) { return transitions[phase.first_step + t].link; };
          auto tag_of = [&](std::size_t t) {
            return global_step_tag(sweep, steps_per_sweep, phase.first_step + t);
          };

          // Step 0: pair own mobile's packets and launch them.
          std::vector<ColumnBlock> packets = node.mobile().split(q);
          for (auto& pkt : packets) {
            stats += node.pair_fixed_with(pkt, opts.threshold);
            hc.send(link_of(0), pkt.serialize(), tag_of(0));
          }
          // Steps 1..K-1: receive, pair, forward.
          for (std::size_t t = 1; t < k; ++t) {
            for (std::uint64_t pi = 0; pi < q; ++pi) {
              ColumnBlock pkt = ColumnBlock::deserialize(hc.recv(link_of(t - 1), tag_of(t - 1)));
              stats += node.pair_fixed_with(pkt, opts.threshold);
              hc.send(link_of(t), pkt.serialize(), tag_of(t));
            }
          }
          // Collect the block arriving through the phase's final transition.
          std::vector<ColumnBlock> incoming;
          incoming.reserve(q);
          for (std::uint64_t pi = 0; pi < q; ++pi)
            incoming.push_back(ColumnBlock::deserialize(hc.recv(link_of(k - 1), tag_of(k - 1))));
          node.install_mobile(ColumnBlock::merge(incoming));
        } else {
          // Division and last-transition steps: full-block, unpipelined.
          const auto& t = transitions[phase.first_step];
          const int tag = global_step_tag(sweep, steps_per_sweep, phase.first_step);
          stats += node.inter_block_pairings(opts.threshold);
          const bool low_side = (hc.node() & (cube::Node{1} << t.link)) == 0;
          if (!t.division) {
            const net::Payload got = hc.exchange(t.link, node.mobile().serialize(), tag);
            node.install_mobile(ColumnBlock::deserialize(got));
          } else if (low_side) {
            hc.send(t.link, node.mobile().serialize(), tag);
            node.install_mobile(ColumnBlock::deserialize(hc.recv(t.link, tag)));
          } else {
            hc.send(t.link, node.fixed().serialize(), tag);
            node.promote_mobile_to_fixed();
            node.install_mobile(ColumnBlock::deserialize(hc.recv(t.link, tag)));
          }
        }
      }

      const double global_rot = net::allreduce_sum(comm, static_cast<double>(stats.rotations));
      const double global_off2 = net::allreduce_sum(comm, stats.off2);
      total_rotations += global_rot;
      if (opts.stop_rule == StopRule::NoRotations) {
        if (global_rot == 0.0) {
          converged = true;
          break;
        }
      } else {
        if (std::sqrt(2.0 * global_off2) <= opts.off_tol * std::sqrt(frob2)) {
          converged = true;
          break;
        }
      }
      ++sweeps;
    }

    // Result collection, identical to solve_mpi.
    net::Payload mine = node.fixed().serialize();
    const net::Payload mobile = node.mobile().serialize();
    mine.insert(mine.end(), mobile.begin(), mobile.end());
    const std::vector<double> all = net::allgatherv(comm, mine);

    if (comm.rank() == 0) {
      std::vector<ColumnBlock> blocks;
      std::size_t pos = 0;
      while (pos < all.size()) {
        const auto ncols = static_cast<std::size_t>(all[pos + 1]);
        const auto rows = static_cast<std::size_t>(all[pos + 2]);
        const std::size_t len = 3 + ncols + 2 * ncols * rows;
        net::Payload one(all.begin() + static_cast<std::ptrdiff_t>(pos),
                         all.begin() + static_cast<std::ptrdiff_t>(pos + len));
        blocks.push_back(ColumnBlock::deserialize(one));
        pos += len;
      }
      std::lock_guard<std::mutex> lock(result_mu);
      result = assemble_result(std::move(blocks), a.rows(), sweeps, converged,
                               static_cast<std::size_t>(total_rotations));
    }
  });
  result.comm = universe.stats();
  return result;
}

}  // namespace jmh::solve
