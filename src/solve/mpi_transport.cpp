#include "solve/mpi_transport.hpp"

#include <utility>

#include "common/alloc_guard.hpp"
#include "common/assert.hpp"
#include "net/collectives.hpp"
#include "obs/trace.hpp"

namespace jmh::solve {

namespace {

// HypercubeComm namespaces tags as 1<<24 + (tag << 6) + link, so a global
// step index becomes a message tag only while it fits below 2^24 (keeps
// the composed tag clear of int overflow and of the collective tag
// namespaces). Only message transports pay this bound; block-move
// transports ignore the step index entirely.
int message_tag(std::uint64_t step) {
  JMH_REQUIRE(step < (std::uint64_t{1} << 24), "global step exceeds message tag space");
  return static_cast<int>(step);
}

}  // namespace

MpiLiteTransport::MpiLiteTransport(net::Comm& comm, const la::Matrix& a, std::uint64_t q)
    : hc_(comm), layout_(a.cols(), hc_.dimension()), node_(a, layout_, hc_.node()), q_(q) {}

void MpiLiteTransport::apply_transition(const ord::Transition& t, std::uint64_t step) {
  const int tag = message_tag(step);
  const bool low_side = (hc_.node() & (cube::Node{1} << t.link)) == 0;
  if (!t.division) {
    node_.mobile().serialize_into(send_scratch_);
    const net::Payload got = hc_.exchange(t.link, send_scratch_, tag);
    node_.mobile().assign_from(got);
  } else if (low_side) {
    node_.mobile().serialize_into(send_scratch_);
    hc_.send(t.link, send_scratch_, tag);
    node_.mobile().assign_from(hc_.recv(t.link, tag));
  } else {
    node_.fixed().serialize_into(send_scratch_);
    hc_.send(t.link, send_scratch_, tag);
    node_.promote_mobile_to_fixed();  // kept mobile becomes the new fixed
    node_.mobile().assign_from(hc_.recv(t.link, tag));
  }
}

std::vector<double> MpiLiteTransport::allreduce_sum(std::vector<double> values) {
  return net::allreduce_sum(hc_.raw(), values);
}

void MpiLiteTransport::allreduce_sum(std::span<double> values) {
  net::allreduce_sum_inplace(hc_.raw(), values);
}

SweepStats MpiLiteTransport::run_phase(const PhaseContext& ctx) {
  // The endpoint-side allocation contract (PERF.md): sweep 0 sizes the
  // scratch arenas, every later phase reuses them. Audited here so BOTH
  // paths -- apply_transition full-block exchanges and the pipelined packet
  // loop -- fail loudly in JMH_DASSERT builds if an allocation creeps back.
  const common::AllocGuard phase_guard;
  SweepStats stats = (q_ == 0 || ctx.phase.type != ord::PhaseInfo::Type::Exchange)
                         ? Transport::run_phase(ctx)
                         : run_phase_pipelined(ctx);
  if (ctx.sweep >= 1)
    JMH_ALLOC_ASSERT_ZERO(phase_guard,
                          "MpiLiteTransport phase allocated in steady state");
  return stats;
}

SweepStats MpiLiteTransport::run_phase_pipelined(const PhaseContext& ctx) {
  // Pipelined exchange phase: packetize the mobile block; pair and forward
  // packet by packet. Packets of one block are spread over consecutive path
  // nodes, overlapping distinct links.
  SweepStats stats;
  const std::size_t k = ctx.phase.num_steps;
  auto link_of = [&](std::size_t t) { return ctx.transitions[ctx.phase.first_step + t].link; };
  auto tag_of = [&](std::size_t t) {
    return message_tag(global_step(ctx.sweep, ctx.steps_per_sweep, ctx.phase.first_step + t));
  };

  // Step 0: pair own mobile's packets and launch them.
  node_.mobile().split_into(q_, split_scratch_);
  for (ColumnBlock& pkt : split_scratch_) {
    stats += node_.pair_fixed_with(pkt, ctx.threshold, ctx.activity);
    pkt.serialize_into(send_scratch_);
    hc_.send(link_of(0), send_scratch_, tag_of(0));
  }
  // Comm attribution covers the blocking receives -- the time this endpoint
  // actually waits on the wire; sends are buffered mailbox deposits and
  // pairings are compute. Null accumulator = spans are disarmed-cheap.
  std::atomic<std::uint64_t>* const comm_acc =
      ctx.timing != nullptr ? &ctx.timing->comm_ns : nullptr;
  // Steps 1..K-1: receive, pair, forward.
  for (std::size_t t = 1; t < k; ++t) {
    for (std::uint64_t pi = 0; pi < q_; ++pi) {
      {
        const obs::SpanScope recv_span("exchange.recv", obs::Category::kComm,
                                       static_cast<std::uint64_t>(tag_of(t - 1)), comm_acc);
        packet_scratch_.assign_from(hc_.recv(link_of(t - 1), tag_of(t - 1)));
      }
      stats += node_.pair_fixed_with(packet_scratch_, ctx.threshold, ctx.activity);
      packet_scratch_.serialize_into(send_scratch_);
      hc_.send(link_of(t), send_scratch_, tag_of(t));
    }
  }
  // Collect the block arriving through the phase's final transition.
  incoming_scratch_.resize(q_);
  for (std::uint64_t pi = 0; pi < q_; ++pi) {
    const obs::SpanScope recv_span("exchange.recv", obs::Category::kComm,
                                   static_cast<std::uint64_t>(tag_of(k - 1)), comm_acc);
    incoming_scratch_[pi].assign_from(hc_.recv(link_of(k - 1), tag_of(k - 1)));
  }
  ColumnBlock::merge_into(incoming_scratch_, merge_scratch_);
  std::swap(node_.mobile(), merge_scratch_);  // old mobile becomes next merge scratch
  return stats;
}

std::vector<ColumnBlock> MpiLiteTransport::collect_blocks() {
  net::Payload mine = node_.fixed().serialize();
  const net::Payload mobile = node_.mobile().serialize();
  mine.insert(mine.end(), mobile.begin(), mobile.end());
  return ColumnBlock::deserialize_stream(net::allgatherv(hc_.raw(), mine));
}

}  // namespace jmh::solve
