#include "solve/transport.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace jmh::solve {

void Transport::allreduce_sum(std::span<double> values) {
  const std::vector<double> summed =
      allreduce_sum(std::vector<double>(values.begin(), values.end()));
  std::copy(summed.begin(), summed.end(), values.begin());
}

SweepStats Transport::run_phase(const PhaseContext& ctx) {
  SweepStats stats;
  const std::size_t end = ctx.phase.first_step + ctx.phase.num_steps;
  for (std::size_t s = ctx.phase.first_step; s < end; ++s) {
    visit_nodes(
        [&](JacobiNode& node) { stats += node.inter_block_pairings(ctx.threshold, ctx.activity); });
    const std::uint64_t step = global_step(ctx.sweep, ctx.steps_per_sweep, s);
    // One comm span per transition: real messages for mpi_lite endpoints
    // delegating here, block-pointer moves for the single-owner transports.
    const obs::SpanScope comm_span("transition", obs::Category::kComm, step,
                                   ctx.timing != nullptr ? &ctx.timing->comm_ns : nullptr);
    apply_transition(ctx.transitions[s], step);
  }
  return stats;
}

}  // namespace jmh::solve
