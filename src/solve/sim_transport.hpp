// SimTransport: InlineTransport numerics plus a modeled clock. Every block
// move of the sweep protocol is also executed as a stage on the sim/ event
// network, so a solve reports the per-link communication time the paper's
// machine model (pipe::MachineParams) predicts for it -- the simulated
// CC-cube scenario of the paper's Figure 2 methodology, directly
// cross-checkable against the analytical pipe/cost_model closed forms.
//
// Charged per sweep:
//   * one stage per transition (exchange, division, last transition), each
//     node sending the block it actually ships (2 * rows * ncols elements:
//     the B and V columns; serialization headers are not part of the
//     machine model) -- or, with pipelined_q >= 1, the pipelined stage
//     schedule of each exchange phase at degree q;
//   * the recursive-doubling convergence vote (d stages of a small packed
//     message), which the analytical model omits -- kept separately
//     inspectable via vote_time.
// Numerics are identical to InlineTransport in both modes: pipelining
// changes the modeled schedule, not which column pairs meet.
#pragma once

#include <cstdint>

#include "pipe/machine.hpp"
#include "sim/network.hpp"
#include "solve/inline_transport.hpp"
#include "solve/parallel_jacobi.hpp"

namespace jmh::solve {

struct SimSolveOptions : SolveOptions {
  pipe::MachineParams machine;     ///< ts/tw/ports charged per message
  bool overlap_startup = false;    ///< see sim::SimConfig
  /// 0 = charge exchange phases as full-block transitions; q >= 1 = charge
  /// them as pipelined schedules with q packets per block.
  std::uint64_t pipelined_q = 0;
};

struct SimSolveResult : DistributedResult {
  double modeled_time = 0.0;  ///< total modeled communication time
  double vote_time = 0.0;     ///< part spent in convergence allreduces
  int modeled_sweeps = 0;     ///< sweeps charged (incl. the final all-skip one)
  /// Busy time of each directed channel, indexed node * d + link.
  std::vector<double> link_busy;
  /// Mean busy fraction over channels and the modeled makespan.
  double mean_link_utilization() const;
};

class SimTransport : public InlineTransport {
 public:
  SimTransport(const la::Matrix& a, int d, const SimSolveOptions& opts);

  void apply_transition(const ord::Transition& t, std::uint64_t step) override;
  SweepStats run_phase(const PhaseContext& ctx) override;
  std::vector<double> allreduce_sum(std::vector<double> values) override;
  void allreduce_sum(std::span<double> values) override;

  double modeled_time() const noexcept { return clock_.makespan; }
  double vote_time() const noexcept { return vote_time_; }
  int modeled_sweeps() const noexcept { return modeled_sweeps_; }
  const sim::SimResult& clock() const noexcept { return clock_; }

  /// Charging modeled time allocates event-queue and trace bookkeeping
  /// every sweep -- that is the simulator's ledger, not endpoint work, so
  /// the engine's steady-state allocation audit does not apply here.
  bool steady_state_alloc_free() const noexcept override { return false; }

 private:
  void charge_vote(std::size_t num_values);

  sim::Network network_;
  std::uint64_t pipelined_q_;
  sim::SimResult clock_;
  double vote_time_ = 0.0;
  int modeled_sweeps_ = 0;
  bool charge_transitions_ = true;  // suppressed while a phase charges itself
};

/// Solves on the simulated machine: eigenpairs identical to solve_inline,
/// plus the modeled communication time of the run.
/// DEPRECATED: thin wrapper over the api facade -- new code should use
/// api::Solver with backend=sim (api/solver.hpp).
SimSolveResult solve_sim(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                         const SimSolveOptions& opts = {});

}  // namespace jmh::solve
