// Convergence-rate experiment driver (paper section 3.4, Table 2).
//
// For each (m, P) combination and each ordering, solves `repetitions`
// random symmetric matrices (entries uniform on [-1, 1], the paper's
// workload) and reports the mean number of sweeps to convergence.
#pragma once

#include <vector>

#include "ord/ordering.hpp"
#include "solve/parallel_jacobi.hpp"

namespace jmh::solve {

struct ConvergenceCell {
  std::size_t m = 0;
  int p = 0;  ///< node count (2^d)
  double mean_sweeps = 0.0;
  double stddev_sweeps = 0.0;
  int repetitions = 0;
};

struct ConvergenceConfig {
  int repetitions = 30;     ///< paper: 30 matrices per cell
  double threshold = 1e-12;
  int max_sweeps = 60;
  std::uint64_t seed = 20260612;  ///< matrices depend only on (seed, m, rep)
  /// Default to the classical off-diagonal-norm stopping test, the
  /// convention contemporary with the paper (EXPERIMENTS.md Table 2 notes);
  /// StopRule::NoRotations yields ~1.5 extra sweeps across the grid.
  StopRule stop_rule = StopRule::OffDiagonal;
  double off_tol = 1e-6;
};

/// Mean sweeps for one (m, P, ordering) cell. P must be a power of two with
/// m >= 4P (two blocks of >= 2 columns per node... at least one column per
/// block is required; the paper grid satisfies m >= 2P).
ConvergenceCell convergence_cell(std::size_t m, int p, ord::OrderingKind kind,
                                 const ConvergenceConfig& config = {});

/// The full Table 2 grid: m in {8, 16, 32, 64}, P in {2, 4, ..., m/2}
/// (DESIGN.md note 8). Rows are returned per ordering in the order BR,
/// permuted-BR, degree-4 for each (m, P).
struct ConvergenceRow {
  std::size_t m = 0;
  int p = 0;
  double br = 0.0;
  double permuted_br = 0.0;
  double degree4 = 0.0;
};
std::vector<ConvergenceRow> table2_grid(const ConvergenceConfig& config = {});

}  // namespace jmh::solve
