// Column-block distribution for the parallel one-sided Jacobi method.
//
// The m columns are grouped into 2^{d+1} blocks, two per node (paper
// 2.3.1). When m is not divisible the block sizes differ by at most one
// (the paper's footnote on slight load imbalance).
#pragma once

#include <cstddef>

#include "ord/schedule.hpp"

namespace jmh::solve {

class BlockLayout {
 public:
  /// Layout of @p m columns over the 2^{d+1} blocks of a d-cube.
  /// Requires at least one column per block.
  BlockLayout(std::size_t m, int d);

  std::size_t m() const noexcept { return m_; }
  int d() const noexcept { return d_; }
  std::size_t num_blocks() const noexcept { return std::size_t{2} << d_; }

  /// First column of block @p b (balanced partition).
  std::size_t block_begin(ord::BlockId b) const;
  /// Columns in block @p b.
  std::size_t block_size(ord::BlockId b) const;

  /// Block containing column @p col.
  ord::BlockId block_of(std::size_t col) const;

  /// Initial blocks of node @p n: fixed = 2n, mobile = 2n + 1.
  ord::BlockId initial_fixed(cube::Node n) const { return static_cast<ord::BlockId>(2 * n); }
  ord::BlockId initial_mobile(cube::Node n) const { return static_cast<ord::BlockId>(2 * n + 1); }

 private:
  std::size_t m_;
  int d_;
};

}  // namespace jmh::solve
