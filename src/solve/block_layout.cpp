#include "solve/block_layout.hpp"

#include "common/assert.hpp"

namespace jmh::solve {

BlockLayout::BlockLayout(std::size_t m, int d) : m_(m), d_(d) {
  JMH_REQUIRE(d >= 1 && d <= 20, "cube dimension out of range");
  JMH_REQUIRE(m >= num_blocks(), "need at least one column per block");
}

std::size_t BlockLayout::block_begin(ord::BlockId b) const {
  JMH_REQUIRE(b <= num_blocks(), "block out of range");
  return (static_cast<std::size_t>(b) * m_) / num_blocks();
}

std::size_t BlockLayout::block_size(ord::BlockId b) const {
  JMH_REQUIRE(b < num_blocks(), "block out of range");
  return block_begin(b + 1) - block_begin(b);
}

ord::BlockId BlockLayout::block_of(std::size_t col) const {
  JMH_REQUIRE(col < m_, "column out of range");
  // block_begin is monotone; invert by direct formula then adjust for the
  // floor partition boundaries.
  auto b = static_cast<ord::BlockId>((col * num_blocks()) / m_);
  while (block_begin(b) > col) --b;
  while (block_begin(b + 1) <= col) ++b;
  return b;
}

}  // namespace jmh::solve
