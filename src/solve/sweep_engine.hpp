// The shared sweep engine: drives the full ordering protocol once,
// parameterized by a Transport. Every executor (inline, mpi_lite plain and
// pipelined, simulated) is a thin wrapper that picks a transport and calls
// run_sweep_protocol; no executor re-implements the transition loop or the
// convergence logic.
#pragma once

#include "solve/transport.hpp"

namespace jmh::solve {

/// Outcome of one protocol run, identical on every SPMD endpoint.
struct EngineResult {
  int sweeps = 0;       ///< sweeps that performed >= 1 rotation
  bool converged = false;
  std::size_t rotations = 0;  ///< global rotation count
  /// How the run ended. Anything but Ok means opts.cancel fired and the
  /// run stopped at a sweep boundary: blocks are mid-protocol, converged
  /// is false, and no result may be assembled. Decided through the
  /// allreduced vote, so every SPMD endpoint reports the same status.
  RunStatus status = RunStatus::Ok;
  /// Truncated mode only (opts.topk > 0): the global ids of the leading
  /// topk columns, ranked by final ||b_k||^2 (descending, ties by index).
  /// Carried from the engine's own convergence vote -- every endpoint
  /// selects from the SAME allreduced norms, so assembly never re-derives
  /// the selection with potentially different floating-point. Empty for
  /// full solves.
  std::vector<std::size_t> leading;
};

/// Runs the sweep protocol to convergence (or opts.max_sweeps). Each sweep:
/// intra-block pairings on every node, then the ordering's phases (exchange
/// phases, division transitions, last transition) with sigma link rotation,
/// then the global convergence vote. The Gershgorin shift is handled by the
/// entry-point wrappers, not here.
EngineResult run_sweep_protocol(Transport& transport, const ord::JacobiOrdering& ordering,
                                const SolveOptions& opts);

}  // namespace jmh::solve
