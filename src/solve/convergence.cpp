#include "solve/convergence.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "common/stats.hpp"
#include "la/sym_gen.hpp"

namespace jmh::solve {

ConvergenceCell convergence_cell(std::size_t m, int p, ord::OrderingKind kind,
                                 const ConvergenceConfig& config) {
  JMH_REQUIRE(p >= 2 && is_pow2(static_cast<std::uint64_t>(p)), "P must be a power of two >= 2");
  const int d = ilog2(static_cast<std::uint64_t>(p));
  const ord::JacobiOrdering ordering(kind, d);

  SolveOptions opts;
  opts.threshold = config.threshold;
  opts.max_sweeps = config.max_sweeps;
  opts.stop_rule = config.stop_rule;
  opts.off_tol = config.off_tol;

  RunningStats stats;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    // Matrix depends only on (seed, m, rep) so every ordering sees the very
    // same 30 matrices, as in the paper.
    Xoshiro256 rng(config.seed ^ (static_cast<std::uint64_t>(m) << 32) ^
                   static_cast<std::uint64_t>(rep));
    const la::Matrix a = la::random_uniform_symmetric(m, rng);
    const DistributedResult r = solve_inline(a, ordering, opts);
    JMH_CHECK(r.converged, "convergence experiment instance did not converge");
    stats.add(static_cast<double>(r.sweeps));
  }

  ConvergenceCell cell;
  cell.m = m;
  cell.p = p;
  cell.mean_sweeps = stats.mean();
  cell.stddev_sweeps = stats.stddev();
  cell.repetitions = config.repetitions;
  return cell;
}

std::vector<ConvergenceRow> table2_grid(const ConvergenceConfig& config) {
  std::vector<ConvergenceRow> rows;
  for (std::size_t m : {8u, 16u, 32u, 64u}) {
    for (int p = 2; static_cast<std::size_t>(p) <= m / 2; p *= 2) {
      ConvergenceRow row;
      row.m = m;
      row.p = p;
      row.br = convergence_cell(m, p, ord::OrderingKind::BR, config).mean_sweeps;
      row.permuted_br =
          convergence_cell(m, p, ord::OrderingKind::PermutedBR, config).mean_sweeps;
      row.degree4 = convergence_cell(m, p, ord::OrderingKind::Degree4, config).mean_sweeps;
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace jmh::solve
