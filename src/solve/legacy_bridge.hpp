// Internal glue for the deprecated free-function entry points (solve_inline,
// solve_mpi, solve_mpi_pipelined, solve_sim): translates a legacy call into
// the api::SolverSpec it is equivalent to, and a SolveReport back into the
// legacy result structs. New code should use api::Solver directly.
#pragma once

#include <utility>

#include "api/solver.hpp"
#include "solve/parallel_jacobi.hpp"

namespace jmh::solve::legacy {

/// Spec equivalent of a legacy (matrix, ordering, options, backend) call.
/// Pipelining and machine-model fields are left at their defaults; the
/// per-wrapper code fills them.
inline api::SolverSpec spec_for(const la::Matrix& a, const ord::JacobiOrdering& ordering,
                                const SolveOptions& opts, api::Backend backend) {
  api::SolverSpec spec;
  spec.m = a.rows();
  spec.d = ordering.dimension();
  spec.ordering = ordering.kind();
  spec.backend = backend;
  spec.threshold = opts.threshold;
  spec.max_sweeps = opts.max_sweeps;
  spec.stop_rule = opts.stop_rule;
  spec.off_tol = opts.off_tol;
  spec.gershgorin_shift = opts.gershgorin_shift;
  spec.faults = opts.faults;
  spec.faults.attempt = 0;  // per-call knob, not part of the scenario name
  return spec;
}

/// The per-call slice of a legacy SolveOptions (the spec carries the rest):
/// the cancel token and the fault-schedule attempt ride through
/// SolveOverrides so legacy wrappers honor them too.
inline api::SolveOverrides overrides_for(const SolveOptions& opts) {
  return {.cancel = opts.cancel, .fault_attempt = opts.faults.attempt};
}

inline DistributedResult to_distributed(api::SolveReport&& report) {
  DistributedResult out;
  out.eigenvalues = std::move(report.eigenvalues);
  out.eigenvectors = std::move(report.eigenvectors);
  out.sweeps = report.sweeps;
  out.converged = report.converged;
  out.rotations = report.rotations;
  out.comm = report.comm;
  return out;
}

}  // namespace jmh::solve::legacy
