// The counting operator-new shim behind common/alloc_guard.hpp.
//
// Compiled only in JMH_DASSERT builds (!NDEBUG): release binaries never see
// a replaced allocator. The replacement routes every form of operator new
// through std::malloc / std::aligned_alloc and bumps a thread-local counter
// unless the thread is inside an AllocExempt scope; deallocation is never
// counted (freeing scratch is not an allocation-discipline violation).
//
// The counter functions live in this TU ON PURPOSE: referencing any of them
// (every AllocGuard does) forces the linker to pull this archive member and
// with it the operator new replacement, so a debug binary that uses the
// guard is always actually counting.
#include "common/alloc_guard.hpp"

#ifndef NDEBUG

#include <cstdint>
#include <cstdlib>
#include <new>

namespace {

thread_local std::uint64_t t_allocations = 0;
thread_local int t_exempt_depth = 0;

void* counted_alloc(std::size_t size) {
  if (t_exempt_depth == 0) ++t_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  if (t_exempt_depth == 0) ++t_allocations;
  const auto a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}

}  // namespace

namespace jmh::common::alloc_detail {

std::uint64_t thread_allocations() noexcept { return t_allocations; }
void push_exempt() noexcept { ++t_exempt_depth; }
void pop_exempt() noexcept { --t_exempt_depth; }

}  // namespace jmh::common::alloc_detail

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (t_exempt_depth == 0) ++t_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  if (t_exempt_depth == 0) ++t_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // !NDEBUG
