// Bit manipulation helpers used throughout the hypercube machinery.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace jmh {

/// True iff @p x is a power of two (x > 0).
constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)). Precondition: x > 0.
constexpr int ilog2(std::uint64_t x) {
  JMH_REQUIRE(x > 0, "ilog2 of zero");
  return 63 - std::countl_zero(x);
}

/// ceil(log2(x)). Precondition: x > 0.
constexpr int ilog2_ceil(std::uint64_t x) {
  JMH_REQUIRE(x > 0, "ilog2_ceil of zero");
  return is_pow2(x) ? ilog2(x) : ilog2(x) + 1;
}

/// Number of set bits.
constexpr int popcount(std::uint64_t x) noexcept { return std::popcount(x); }

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  JMH_REQUIRE(b > 0, "ceil_div by zero");
  return (a + b - 1) / b;
}

/// i-th binary-reflected Gray code.
constexpr std::uint64_t gray_code(std::uint64_t i) noexcept { return i ^ (i >> 1); }

/// Inverse of gray_code: index of a Gray code word.
constexpr std::uint64_t gray_rank(std::uint64_t g) noexcept {
  std::uint64_t n = 0;
  for (; g != 0; g >>= 1) n ^= g;
  return n;
}

}  // namespace jmh
