// Deterministic pseudo-random number generation.
//
// Experiments (Table 2 convergence averages) must be reproducible run to run,
// so all randomness in the library flows through this xoshiro256** generator
// seeded explicitly; std::random_device is never used.
#pragma once

#include <cstdint>

namespace jmh {

/// splitmix64 -- used only to expand a single seed into xoshiro state.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace jmh
