// Lightweight contract checking for the jmh library.
//
// JMH_REQUIRE(cond, msg)  -- precondition; always checked, throws std::invalid_argument.
// JMH_CHECK(cond, msg)    -- internal invariant; always checked, throws std::logic_error.
// JMH_DASSERT(cond, msg)  -- hot-path precondition; checked in debug builds
//                            (throws std::invalid_argument), compiled out
//                            under NDEBUG.
//
// REQUIRE/CHECK are kept enabled in release builds: the library is a
// research reproduction where silent corruption of a schedule or sequence
// would invalidate results. They belong on protocol, schedule, and API
// boundaries -- code that runs once per phase or per call, never per
// element. DASSERT is for per-element checks on measured hot paths
// (matrix indexing, kernel span sizes): full checking in debug builds,
// zero cost in release.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace jmh {

namespace detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace jmh

#define JMH_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) ::jmh::detail::throw_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define JMH_CHECK(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) ::jmh::detail::throw_check(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define JMH_DASSERT(cond, msg) ((void)0)
#else
#define JMH_DASSERT(cond, msg) JMH_REQUIRE(cond, msg)
#endif
