// Lightweight contract checking for the jmh library.
//
// JMH_REQUIRE(cond, msg)  -- precondition; always checked, throws std::invalid_argument.
// JMH_CHECK(cond, msg)    -- internal invariant; always checked, throws std::logic_error.
//
// Both are kept enabled in release builds: the library is a research
// reproduction where silent corruption of a schedule or sequence would
// invalidate results, and the checks are never on a hot inner loop.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace jmh {

namespace detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace jmh

#define JMH_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) ::jmh::detail::throw_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define JMH_CHECK(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) ::jmh::detail::throw_check(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
