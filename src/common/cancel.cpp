#include "common/cancel.hpp"

#include <atomic>
#include <utility>

namespace jmh::common {

struct CancelToken::State {
  std::atomic<std::uint8_t> reason{0};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::shared_ptr<State> parent;
};

namespace {

// First reason wins: only 0 -> r transitions are allowed, so concurrent
// cancel(Cancelled) and an expiring deadline agree on a single answer.
void latch(std::atomic<std::uint8_t>& slot, CancelReason r) noexcept {
  std::uint8_t expected = 0;
  slot.compare_exchange_strong(expected, static_cast<std::uint8_t>(r),
                               std::memory_order_relaxed,
                               std::memory_order_relaxed);
}

}  // namespace

CancelToken CancelToken::source() {
  return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::with_deadline(
    std::chrono::steady_clock::time_point deadline) const {
  auto child = std::make_shared<State>();
  child->has_deadline = true;
  child->deadline = deadline;
  child->parent = state_;
  return CancelToken(std::move(child));
}

CancelToken CancelToken::with_timeout(std::chrono::nanoseconds budget) const {
  return with_deadline(std::chrono::steady_clock::now() + budget);
}

void CancelToken::cancel(CancelReason reason) const noexcept {
  if (state_ != nullptr) latch(state_->reason, reason);
}

CancelReason CancelToken::fired() const noexcept {
  if (state_ == nullptr) return CancelReason::None;
  return static_cast<CancelReason>(state_->reason.load(std::memory_order_relaxed));
}

CancelReason CancelToken::poll() const noexcept {
  const State* s = state_.get();
  if (s == nullptr) return CancelReason::None;
  // Walk the parent chain (typically depth <= 2: job deadline -> run token),
  // latching any reason discovered below into every level above it so later
  // fired() calls see it without re-walking.
  for (const State* node = s; node != nullptr; node = node->parent.get()) {
    auto r = static_cast<CancelReason>(node->reason.load(std::memory_order_relaxed));
    if (r == CancelReason::None && node->has_deadline &&
        std::chrono::steady_clock::now() >= node->deadline) {
      latch(const_cast<State*>(node)->reason, CancelReason::DeadlineExceeded);
      r = static_cast<CancelReason>(node->reason.load(std::memory_order_relaxed));
    }
    if (r != CancelReason::None) {
      latch(state_->reason, r);
      return static_cast<CancelReason>(
          state_->reason.load(std::memory_order_relaxed));
    }
  }
  return CancelReason::None;
}

}  // namespace jmh::common
