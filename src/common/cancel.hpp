// Cooperative cancellation for long-running solves.
//
// A CancelToken is a cheap, copyable handle to shared cancellation state.
// Producers (a service deadline, a shutdown path, a caller's ctrl-C handler)
// call cancel(); consumers (the sweep engine) call poll() at natural
// checkpoints -- sweep boundaries -- and wind down cleanly when it fires.
//
// Design constraints, in order:
//   - A default-constructed token is INERT: armed() is false, poll() is a
//     single branch, and code paths that never arm a token pay nothing.
//   - poll() on an armed token is allocation-free and lock-free: one relaxed
//     atomic load on the hot path, plus a steady_clock read only when a
//     deadline is set (BM_SweepCancelCheck gates both shapes).
//   - The first reason to fire wins and is sticky: once a token reports
//     Cancelled it never later reports DeadlineExceeded, so every observer
//     (all ranks of an mpi_lite solve share one token) agrees on WHY.
//   - with_deadline() derives a child token that also observes its parent:
//     a service can hang one run-wide kill switch above per-job deadlines.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

namespace jmh::common {

/// Why a token fired. None means "keep going".
enum class CancelReason : std::uint8_t {
  None = 0,
  Cancelled = 1,         ///< explicit cancel(): shutdown, user abort
  DeadlineExceeded = 2,  ///< the token's deadline passed during poll()
};

class CancelToken {
 public:
  /// Inert token: armed() is false, poll() always returns None.
  CancelToken() = default;

  /// A fresh cancellable token (no deadline until with_deadline()).
  static CancelToken source();

  /// A child token that fires at @p deadline or when *this fires, whichever
  /// comes first. Works on an inert token too (deadline-only token).
  [[nodiscard]] CancelToken with_deadline(
      std::chrono::steady_clock::time_point deadline) const;

  /// Convenience: deadline at now + @p budget.
  [[nodiscard]] CancelToken with_timeout(std::chrono::nanoseconds budget) const;

  /// True when cancellation is possible at all; engines use this to skip
  /// the poll plumbing (and keep votes bit-identical to pre-cancel runs).
  [[nodiscard]] bool armed() const noexcept { return state_ != nullptr; }

  /// Request cancellation. First reason wins; no-op on an inert token.
  void cancel(CancelReason reason = CancelReason::Cancelled) const noexcept;

  /// Check for cancellation, latching an expired deadline the first time it
  /// is observed. Allocation-free; safe to call from any thread.
  [[nodiscard]] CancelReason poll() const noexcept;

  /// Like poll() but never reads the clock: reports only already-latched
  /// state in one relaxed load. The engine's between-rotation fast path.
  [[nodiscard]] CancelReason fired() const noexcept;

 private:
  struct State;
  explicit CancelToken(std::shared_ptr<State> state) noexcept
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace jmh::common
