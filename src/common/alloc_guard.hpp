// AllocGuard: the allocation-discipline checker of the hot paths.
//
// PERF.md promises that the steady-state sweep loop -- the sweep engine's
// per-sweep body, MpiLiteTransport's exchange paths, the exec pool's
// dispatch, JobQueue::pop_group -- performs no heap allocations once the
// scratch arenas have warmed up. This header turns that sentence into a
// failing test: in JMH_DASSERT builds (!NDEBUG) the library replaces the
// global operator new with a counting shim (common/alloc_guard.cpp), and an
// AllocGuard scope asserts that a region allocated nothing on the current
// thread. Under NDEBUG every type here is an empty shell and the operator
// new replacement is not compiled at all, so release builds -- including
// every benchmarked binary -- carry zero instrumentation.
//
// Counting is per-thread: an SPMD endpoint, a pool worker, and a service
// dispatcher each audit only their own steady-state loop, so concurrent
// warm-up on another thread can never produce a false positive.
//
// AllocExempt marks the allocations that are *outside* the contract: the
// mpi_lite wire copies a payload into the destination mailbox (that copy is
// the modeled network, not the endpoint), and SimTransport's event charging
// builds modeled-time bookkeeping. Scopes nest; exempt allocations simply
// do not count.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace jmh::common {

#ifndef NDEBUG

namespace alloc_detail {
/// Non-exempt operator-new calls on this thread since it started. Defined
/// in alloc_guard.cpp next to the operator new replacement, so any user of
/// the guard links the counting shim in with it.
std::uint64_t thread_allocations() noexcept;
void push_exempt() noexcept;
void pop_exempt() noexcept;
}  // namespace alloc_detail

/// Counts heap allocations made by the current thread during its lifetime.
class AllocGuard {
 public:
  AllocGuard() noexcept : start_(alloc_detail::thread_allocations()) {}
  /// Non-exempt allocations on this thread since construction (or rebase).
  std::uint64_t allocations() const noexcept {
    return alloc_detail::thread_allocations() - start_;
  }
  /// Restarts the count (e.g. after a sanctioned warm-up iteration).
  void rebase() noexcept { start_ = alloc_detail::thread_allocations(); }

 private:
  std::uint64_t start_;
};

/// RAII scope whose allocations are excluded from every AllocGuard on this
/// thread -- the wire / modeled-network carve-out.
class AllocExempt {
 public:
  AllocExempt() noexcept { alloc_detail::push_exempt(); }
  ~AllocExempt() { alloc_detail::pop_exempt(); }
  AllocExempt(const AllocExempt&) = delete;
  AllocExempt& operator=(const AllocExempt&) = delete;
};

inline constexpr bool kAllocGuardActive = true;

#else  // NDEBUG: every shape survives, every cost disappears.

// User-provided (empty) constructors keep -Wunused-variable quiet at the
// declaration sites without [[maybe_unused]] noise on every guard.
class AllocGuard {
 public:
  AllocGuard() noexcept {}
  std::uint64_t allocations() const noexcept { return 0; }
  void rebase() noexcept {}
};

class AllocExempt {
 public:
  AllocExempt() noexcept {}
  AllocExempt(const AllocExempt&) = delete;
  AllocExempt& operator=(const AllocExempt&) = delete;
};

inline constexpr bool kAllocGuardActive = false;

#endif

}  // namespace jmh::common

/// Asserts a guarded region allocated nothing on this thread. Compiled out
/// under NDEBUG (same discipline as JMH_DASSERT: hot-path checks are free
/// in release). @p guard is evaluated only in JMH_DASSERT builds.
#define JMH_ALLOC_ASSERT_ZERO(guard, msg) \
  JMH_DASSERT((guard).allocations() == 0, (msg))
