#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace jmh {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_of(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace jmh
