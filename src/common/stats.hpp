// Small statistics helpers for experiment drivers (means, stddevs, extrema).
#pragma once

#include <cstddef>
#include <span>

namespace jmh {

/// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// The p-quantile (p in [0, 1]) of @p xs with linear interpolation between
/// order statistics; 0 for an empty span. Copies and sorts internally --
/// meant for snapshot-time summaries (latency p50/p90/p99), not hot loops.
double quantile_of(std::span<const double> xs, double p);

}  // namespace jmh
