// FunctionRef: a non-owning, never-allocating callable reference.
//
// The hot paths hand small closures across virtual interfaces
// (Transport::visit_nodes runs a lambda over every owned JacobiNode once or
// twice per sweep). std::function at such a boundary is an allocation
// hazard: a capture list one pointer past the small-buffer limit silently
// puts a heap allocation in the steady-state sweep loop -- exactly the
// class of regression the AllocGuard audit exists to catch. FunctionRef
// makes the contract structural instead: two words (object pointer +
// trampoline), trivially copyable, no ownership, no allocation, ever.
//
// Lifetime rule: a FunctionRef must not outlive the callable it refers to.
// Use it for downward calls only (pass a lambda to a function that invokes
// it before returning) -- never store one in a member that survives the
// call. That is precisely the visit_nodes shape.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace jmh::common {

template <typename Signature>
class FunctionRef;  // undefined primary; use FunctionRef<R(Args...)>

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable invocable as R(Args...). Intentionally implicit so
  /// call sites keep passing lambdas bare.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor): see above
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<std::remove_reference_t<F>>>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace jmh::common
