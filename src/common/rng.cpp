#include "common/rng.hpp"

#include <bit>

namespace jmh {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64_next(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation; bias is negligible for
  // the experiment sizes used here but we reject to keep it exact.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

}  // namespace jmh
