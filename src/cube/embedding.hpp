// Topology embeddings into the hypercube.
//
// The binary-reflected Gray code embeds a 2^d-node ring into a d-cube with
// dilation 1 (ring neighbors are cube neighbors); this is how ring/array
// orderings from the literature (e.g. Brent-Luk, paper ref. [4]) are
// hosted on hypercube machines for comparison.
#pragma once

#include <vector>

#include "cube/hypercube.hpp"

namespace jmh::cube {

/// Cube node hosting ring position @p pos of a 2^d ring (Gray embedding).
Node ring_to_cube(int d, std::uint64_t pos);

/// Inverse: ring position hosted on cube node @p n.
std::uint64_t cube_to_ring(int d, Node n);

/// The cube link connecting consecutive ring positions pos and pos+1
/// (indices mod 2^d).
Link ring_step_link(int d, std::uint64_t pos);

/// Entire ring as cube nodes, positions 0..2^d-1.
std::vector<Node> ring_embedding(int d);

}  // namespace jmh::cube
