// Link-sequence walks and Hamiltonian-path checking.
//
// The paper identifies an exchange-phase link sequence D_e with a
// Hamiltonian path of the e-cube (section 3.1): starting at any node and
// following the links of D_e in order visits every node of the e-cube
// exactly once. A sequence with that property is called an "e-sequence"
// (Definition 1).
#pragma once

#include <vector>

#include "cube/hypercube.hpp"

namespace jmh::cube {

/// Nodes visited when starting at @p start and crossing the given links in
/// order. Result has links.size()+1 entries; result.front() == start.
std::vector<Node> walk(const Hypercube& cube, Node start, const std::vector<Link>& links);

/// End node of the walk without materializing the node list.
Node walk_end(const Hypercube& cube, Node start, const std::vector<Link>& links);

/// True iff following @p links from @p start visits every node of the
/// sub_dim-subcube containing @p start exactly once. Requires
/// links.size() == 2^sub_dim - 1 and every link in [0, sub_dim).
bool is_hamiltonian_path(const Hypercube& cube, Node start, const std::vector<Link>& links,
                         int sub_dim);

/// True iff @p links is an e-sequence (paper Definition 1): a Hamiltonian
/// path of the e-cube. By vertex-transitivity of the hypercube the starting
/// node is irrelevant; we check from node 0.
bool is_e_sequence(const std::vector<Link>& links, int e);

}  // namespace jmh::cube
