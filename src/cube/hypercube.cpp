#include "cube/hypercube.hpp"

namespace jmh::cube {

Hypercube::Hypercube(int dimension) : d_(dimension) {
  JMH_REQUIRE(dimension >= 0 && dimension <= kMaxDimension, "hypercube dimension out of range");
}

Link Hypercube::link_between(Node a, Node b) const {
  JMH_REQUIRE(contains(a) && contains(b), "node out of range");
  const Node diff = a ^ b;
  if (diff == 0 || !is_pow2(diff)) return -1;
  return ilog2(diff);
}

std::vector<Node> Hypercube::neighbors(Node n) const {
  JMH_REQUIRE(contains(n), "node out of range");
  std::vector<Node> out;
  out.reserve(static_cast<std::size_t>(d_));
  for (Link l = 0; l < d_; ++l) out.push_back(n ^ (Node{1} << l));
  return out;
}

std::vector<Node> Hypercube::subcube_members(Node n, int sub_dim) const {
  JMH_REQUIRE(contains(n), "node out of range");
  JMH_REQUIRE(sub_dim >= 0 && sub_dim <= d_, "subcube dimension out of range");
  const Node mask = static_cast<Node>((std::uint64_t{1} << sub_dim) - 1);
  const Node base = n & ~mask;
  std::vector<Node> out;
  out.reserve(std::size_t{1} << sub_dim);
  for (Node i = 0; i < (Node{1} << sub_dim); ++i) out.push_back(base | i);
  return out;
}

std::vector<Node> Hypercube::gray_path() const {
  std::vector<Node> out;
  out.reserve(num_nodes());
  for (std::uint64_t i = 0; i < num_nodes(); ++i)
    out.push_back(static_cast<Node>(gray_code(i)));
  return out;
}

}  // namespace jmh::cube
