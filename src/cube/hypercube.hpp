// Hypercube interconnection topology.
//
// A d-cube has 2^d nodes labelled 0..2^d-1; nodes whose labels differ in
// exactly bit i are neighbors connected by "link i" (also called dimension
// i). See paper section 2.1.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace jmh::cube {

using Node = std::uint32_t;
using Link = int;  // dimension index, 0..d-1

/// Static topology of a d-dimensional hypercube.
class Hypercube {
 public:
  /// Maximum supported dimension. 2^26 nodes is far beyond anything the
  /// experiments need but keeps node ids comfortably inside 32 bits.
  static constexpr int kMaxDimension = 26;

  explicit Hypercube(int dimension);

  int dimension() const noexcept { return d_; }
  std::uint64_t num_nodes() const noexcept { return std::uint64_t{1} << d_; }
  std::uint64_t num_links() const noexcept { return (num_nodes() / 2) * d_; }

  bool contains(Node n) const noexcept { return n < num_nodes(); }
  bool valid_link(Link l) const noexcept { return l >= 0 && l < d_; }

  /// Neighbor of @p n across dimension @p l.
  Node neighbor(Node n, Link l) const {
    JMH_REQUIRE(contains(n), "node out of range");
    JMH_REQUIRE(valid_link(l), "link out of range");
    return n ^ (Node{1} << l);
  }

  /// Link connecting two nodes, or -1 if they are not neighbors.
  Link link_between(Node a, Node b) const;

  /// Hamming distance (minimal routing distance) between two nodes.
  int distance(Node a, Node b) const {
    JMH_REQUIRE(contains(a) && contains(b), "node out of range");
    return popcount(a ^ b);
  }

  /// All d neighbors of @p n, ordered by dimension.
  std::vector<Node> neighbors(Node n) const;

  /// Nodes of the subcube spanned by dimensions [0, sub_dim) containing @p n,
  /// in increasing label order.
  std::vector<Node> subcube_members(Node n, int sub_dim) const;

  /// Gray-code Hamiltonian path over the whole cube starting at node 0:
  /// the sequence of nodes visited. Useful as a known-good path in tests.
  std::vector<Node> gray_path() const;

 private:
  int d_;
};

}  // namespace jmh::cube
