#include "cube/embedding.hpp"

#include "common/assert.hpp"
#include "common/bitops.hpp"

namespace jmh::cube {

Node ring_to_cube(int d, std::uint64_t pos) {
  JMH_REQUIRE(d >= 1 && d <= Hypercube::kMaxDimension, "dimension out of range");
  const std::uint64_t n = std::uint64_t{1} << d;
  return static_cast<Node>(gray_code(pos % n));
}

std::uint64_t cube_to_ring(int d, Node n) {
  JMH_REQUIRE(d >= 1 && d <= Hypercube::kMaxDimension, "dimension out of range");
  JMH_REQUIRE(n < (Node{1} << d), "node out of range");
  return gray_rank(n);
}

Link ring_step_link(int d, std::uint64_t pos) {
  const Hypercube cube(d);
  const Node a = ring_to_cube(d, pos);
  const Node b = ring_to_cube(d, pos + 1);
  const Link l = cube.link_between(a, b);
  JMH_CHECK(l >= 0, "Gray embedding must map ring steps to cube links");
  return l;
}

std::vector<Node> ring_embedding(int d) {
  JMH_REQUIRE(d >= 1 && d <= Hypercube::kMaxDimension, "dimension out of range");
  return Hypercube(d).gray_path();
}

}  // namespace jmh::cube
