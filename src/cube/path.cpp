#include "cube/path.hpp"

namespace jmh::cube {

std::vector<Node> walk(const Hypercube& cube, Node start, const std::vector<Link>& links) {
  JMH_REQUIRE(cube.contains(start), "start node out of range");
  std::vector<Node> nodes;
  nodes.reserve(links.size() + 1);
  Node cur = start;
  nodes.push_back(cur);
  for (Link l : links) {
    cur = cube.neighbor(cur, l);
    nodes.push_back(cur);
  }
  return nodes;
}

Node walk_end(const Hypercube& cube, Node start, const std::vector<Link>& links) {
  JMH_REQUIRE(cube.contains(start), "start node out of range");
  Node cur = start;
  for (Link l : links) cur = cube.neighbor(cur, l);
  return cur;
}

bool is_hamiltonian_path(const Hypercube& cube, Node start, const std::vector<Link>& links,
                         int sub_dim) {
  JMH_REQUIRE(sub_dim >= 0 && sub_dim <= cube.dimension(), "subcube dimension out of range");
  const std::uint64_t sub_size = std::uint64_t{1} << sub_dim;
  if (links.size() != sub_size - 1) return false;
  for (Link l : links)
    if (l < 0 || l >= sub_dim) return false;

  // Walk within the subcube, tracking visited nodes by their low sub_dim bits.
  std::vector<bool> visited(sub_size, false);
  const Node mask = static_cast<Node>(sub_size - 1);
  Node cur = start;
  visited[cur & mask] = true;
  for (Link l : links) {
    cur = cube.neighbor(cur, l);
    const Node key = cur & mask;
    if (visited[key]) return false;
    visited[key] = true;
  }
  return true;  // sub_size-1 moves, all distinct, plus start => all visited
}

bool is_e_sequence(const std::vector<Link>& links, int e) {
  JMH_REQUIRE(e >= 0 && e <= Hypercube::kMaxDimension, "e out of range");
  const Hypercube cube(e);
  return is_hamiltonian_path(cube, 0, links, e);
}

}  // namespace jmh::cube
