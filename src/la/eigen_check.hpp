// Verification helpers for eigensolver results.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace jmh::la {

/// max_k ||A v_k - lambda_k v_k||_2 / ||A||_F -- relative eigenpair
/// residual. Accepts k <= n pairs (a topk truncated result checks only the
/// pairs it carries).
double eigenpair_residual(const Matrix& a, const std::vector<double>& eigenvalues,
                          const Matrix& eigenvectors);

/// max_k ||A v_k - sigma_k u_k||_2 / ||A||_F -- relative SVD triplet
/// residual for a (possibly rectangular) m x n input with k <= n singular
/// triplets (thin or topk-truncated SVD).
double svd_residual(const Matrix& a, const std::vector<double>& singular_values,
                    const Matrix& u, const Matrix& v);

/// ||V^T V - I||_max -- orthonormality defect of the eigenvector matrix.
double orthogonality_defect(const Matrix& v);

/// max_k |x_k - y_k| between two ascending spectra.
double spectrum_distance(const std::vector<double>& x, const std::vector<double>& y);

/// Frobenius norm of a matrix.
double frobenius(const Matrix& a);

}  // namespace jmh::la
