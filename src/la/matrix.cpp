#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace jmh::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  JMH_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
  return worst;
}

Matrix transposed(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const auto col = a.col(c);
    for (std::size_t r = 0; r < a.rows(); ++r) t(c, r) = col[r];
  }
  return t;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  JMH_REQUIRE(x.size() == a.cols(), "matvec size mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const auto col = a.col(c);
    const double xc = x[c];
    for (std::size_t r = 0; r < a.rows(); ++r) y[r] += col[r] * xc;
  }
  return y;
}

double dot(std::span<const double> x, std::span<const double> y) {
  JMH_REQUIRE(x.size() == y.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double offdiag_frobenius(const Matrix& a) {
  JMH_REQUIRE(a.is_square(), "off-diagonal norm needs a square matrix");
  double s = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c)
    for (std::size_t r = 0; r < a.rows(); ++r)
      if (r != c) s += a(r, c) * a(r, c);
  return std::sqrt(s);
}

}  // namespace jmh::la
