#include "la/pca.hpp"

namespace jmh::la {

std::vector<double> center_columns(Matrix& a) {
  std::vector<double> means(a.cols(), 0.0);
  if (a.rows() == 0) return means;
  const double inv = 1.0 / static_cast<double>(a.rows());
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const auto col = a.col(c);
    double sum = 0.0;
    for (double x : col) sum += x;
    const double mean = sum * inv;
    means[c] = mean;
    for (double& x : col) x -= mean;
  }
  return means;
}

std::vector<double> explained_variance_ratios(const std::vector<double>& sigma) {
  std::vector<double> ratios(sigma.size(), 0.0);
  double total = 0.0;
  for (double s : sigma) total += s * s;
  if (total <= 0.0) return ratios;
  for (std::size_t k = 0; k < sigma.size(); ++k) ratios[k] = sigma[k] * sigma[k] / total;
  return ratios;
}

}  // namespace jmh::la
