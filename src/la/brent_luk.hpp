// The Brent-Luk round-robin parallel Jacobi ordering (reference [4] of the
// paper; SIAM J. Sci. Statist. Comput. 6, 1985).
//
// The classical tournament schedule: m players (columns), m-1 rounds of
// m/2 disjoint pairings; player 0 stays put while the others rotate one
// position per round. It is the standard parallel ordering for linear
// arrays / rings and serves here as the literature baseline the hypercube
// orderings are compared against in convergence tests.
#pragma once

#include "la/onesided_jacobi.hpp"

namespace jmh::la {

/// Pairings of round @p round (0-based, < m-1) of the Brent-Luk tournament
/// on m columns. m must be even; each round has m/2 disjoint pairs.
SweepPattern brent_luk_round(std::size_t m, std::size_t round);

/// The full sweep: all m-1 rounds concatenated (covers every unordered
/// pair exactly once).
SweepPattern brent_luk_sweep(std::size_t m);

/// Pattern provider for onesided_jacobi (same pattern every sweep).
std::function<SweepPattern(int)> brent_luk_provider(std::size_t m);

}  // namespace jmh::la
