// Sequential one-sided Jacobi SVD (reference implementation).
//
// The machinery of la/onesided_jacobi.hpp is the canonical SVD algorithm as
// much as a symmetric eigensolver: one-sided Jacobi orthogonalizes the
// columns of B = A * V directly -- no Gram matrix is ever formed -- so for a
// rectangular m x n input A the converged state gives the thin SVD
// A = U * diag(sigma) * V^T: the singular values are the final column norms
// ||b_k||, U the normalized columns b_k / sigma_k, and V the accumulated
// rotations. The column pairing reuses the same kernels (kernels::gram3 +
// kernels::fused_rotate) as the eigensolver; only the extraction at the end
// differs.
//
// Serves the same two roles as the eigensolver reference: (a) the ground
// truth the distributed task=svd backends are checked against, and (b) a
// single-node baseline with a pluggable pair order.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "la/matrix.hpp"
#include "la/onesided_jacobi.hpp"

namespace jmh::la {

struct SvdResult {
  std::vector<double> singular_values;  ///< descending, all >= 0
  Matrix u;  ///< m x n; column k pairs with singular_values[k] (zero when sigma_k == 0)
  Matrix v;  ///< n x n right singular vectors; column k pairs with singular_values[k]
  int sweeps = 0;             ///< sweeps that performed >= 1 rotation
  bool converged = false;     ///< a full sweep performed no rotation
  std::size_t rotations = 0;  ///< total rotations applied
};

/// Extracts (sigma, U, V) from a converged one-sided working pair: sigma_k =
/// ||b_k||, columns sorted by descending sigma (ties broken by original
/// column index, so the order is deterministic), u_k = b_k / sigma_k (the
/// zero vector when sigma_k == 0: a rank-deficient column has no defined
/// left vector). Shared by this sequential driver and the distributed
/// assembly (solve::assemble_svd_result), which is what makes every backend
/// produce bit-identical results from the same final blocks.
SvdResult svd_from_bv(const Matrix& b, const Matrix& v);

/// One-sided Jacobi SVD of a (possibly rectangular) m x n matrix with the
/// given per-sweep column-pair order over the n columns. Options as in the
/// eigensolver reference; gershgorin_shift must be off (a diagonal shift has
/// no SVD meaning).
SvdResult onesided_jacobi_svd(const Matrix& a,
                              const std::function<SweepPattern(int)>& pattern_provider,
                              const JacobiOptions& opts = {});

/// Convenience overload: row-cyclic pair ordering.
SvdResult onesided_jacobi_svd_cyclic(const Matrix& a, const JacobiOptions& opts = {});

/// Shape-agnostic sequential reference (row-cyclic): tall/square inputs run
/// onesided_jacobi_svd_cyclic directly; a wide input is factored as its
/// transpose with U and V swapped back (A = U S V^T <=> A^T = V S U^T) --
/// the same pre/post transform the api task adapter applies, so this is the
/// ground truth for wide task=svd runs too.
SvdResult onesided_jacobi_svd_any(const Matrix& a, const JacobiOptions& opts = {});

}  // namespace jmh::la
