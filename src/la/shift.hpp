// Spectral shifting for one-sided Jacobi.
//
// The one-sided method converges to the SVD, so eigenvalues lambda and
// -lambda of an indefinite matrix share a singular subspace and cannot be
// separated. Shifting A -> A + sigma*I with sigma >= rho(A) makes the
// matrix positive semidefinite: eigenvalues and singular values coincide,
// magnitude ties can only be genuine eigenvalue ties (harmless -- any
// orthonormal basis of the eigenspace is correct), and eigenvalues can be
// recovered as column norms, enabling an eigenvalues-only solver that
// never touches V.
#pragma once

#include "la/matrix.hpp"

namespace jmh::la {

/// Gershgorin bound on the spectral radius: max_i sum_j |a_ij|.
/// Every eigenvalue of the symmetric matrix lies in [-bound, bound].
double gershgorin_radius(const Matrix& a);

/// Returns A + sigma*I.
Matrix add_diagonal_shift(const Matrix& a, double sigma);

}  // namespace jmh::la
