// Sequential one-sided Jacobi symmetric eigensolver (reference
// implementation; paper section 2.2).
//
// Serves two roles: (a) the ground truth the distributed solver is checked
// against, and (b) the single-node convergence-rate baseline. The pair
// visiting order is pluggable so the sequential solver can also replay a
// parallel Jacobi ordering's rotation sequence exactly.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "la/matrix.hpp"
#include "la/rotation.hpp"

namespace jmh::la {

struct JacobiOptions {
  double threshold = kDefaultThreshold;  ///< relative rotation threshold
  int max_sweeps = 60;                   ///< safety cap
  /// Solve A + sigma*I (sigma = Gershgorin radius) and shift back: removes
  /// the +/-lambda tie ambiguity of the one-sided method (see la/shift.hpp).
  bool gershgorin_shift = false;
};

struct JacobiResult {
  std::vector<double> eigenvalues;  ///< ascending
  Matrix eigenvectors;              ///< column k pairs with eigenvalues[k]
  int sweeps = 0;                   ///< sweeps that performed >= 1 rotation
  bool converged = false;           ///< a full sweep performed no rotation
  std::size_t rotations = 0;        ///< total rotations applied
};

/// A sweep pattern: the list of column pairs visited in one sweep, in order.
/// Must contain every unordered pair exactly once.
using SweepPattern = std::vector<std::pair<std::size_t, std::size_t>>;

/// Row-cyclic pattern (0,1), (0,2), ..., (n-2, n-1).
SweepPattern cyclic_pattern(std::size_t n);

/// Checks that a pattern covers all n(n-1)/2 pairs exactly once.
bool is_complete_pattern(const SweepPattern& pattern, std::size_t n);

/// Solves the symmetric eigenproblem with the given per-sweep pair order.
/// The pattern may differ sweep to sweep via the provider (sweep number ->
/// pattern); pass the same pattern for the classic cyclic method.
JacobiResult onesided_jacobi(const Matrix& a,
                             const std::function<SweepPattern(int)>& pattern_provider,
                             const JacobiOptions& opts = {});

/// Convenience overload: row-cyclic ordering.
JacobiResult onesided_jacobi_cyclic(const Matrix& a, const JacobiOptions& opts = {});

}  // namespace jmh::la
