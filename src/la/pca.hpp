// PCA pre/post transforms for the task=pca workload.
//
// Principal component analysis of a rows x m data matrix (rows = samples,
// columns = variables) is exactly the SVD of the column-centered matrix:
// the right singular vectors are the principal axes, sigma_k^2 the
// (unnormalized) variance along axis k. These helpers are the two
// task-specific steps around the shared sweep machinery: remove the column
// means before the solve, turn the singular values into explained-variance
// ratios after. Centering a square input drops its rank to m - 1, which is
// why task=pca pairs naturally with StopRule::OffDiagonalAbsolute
// (solve/transport.hpp): NoRotations churns on the null direction until
// its norm underflows, roughly doubling the sweep count.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace jmh::la {

/// Subtracts each column's mean in place; returns the removed means (one
/// per column), so the transform is invertible and reportable.
std::vector<double> center_columns(Matrix& a);

/// sigma_k^2 / sum_j sigma_j^2 for each k, order preserved (descending when
/// @p sigma is). All zeros when the total variance is zero (a centered
/// constant input has no principal directions -- better than NaNs).
std::vector<double> explained_variance_ratios(const std::vector<double>& sigma);

}  // namespace jmh::la
