#include "la/rotation.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels.hpp"

namespace jmh::la {

RotationDecision compute_rotation(double bii, double bjj, double bij, double threshold) {
  RotationDecision d;
  if (std::abs(bij) <= threshold * std::sqrt(bii * bjj)) return d;

  const double tau = (bjj - bii) / (2.0 * bij);
  // Smaller-magnitude root of t^2 + 2 tau t - 1 = 0 for numerical stability.
  const double t = (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
  d.rotate = true;
  d.c = 1.0 / std::sqrt(1.0 + t * t);
  d.s = t * d.c;
  return d;
}

void apply_rotation(std::span<double> x, std::span<double> y, double c, double s) {
  JMH_REQUIRE(x.size() == y.size(), "rotation column size mismatch");
  for (std::size_t r = 0; r < x.size(); ++r) {
    const double xr = x[r];
    const double yr = y[r];
    x[r] = c * xr - s * yr;
    y[r] = s * xr + c * yr;
  }
}

PairOutcome pair_columns_stats(std::span<double> bi, std::span<double> bj,
                               std::span<double> vi, std::span<double> vj, double threshold) {
  // O(1) once per pairing (the kernels are O(n)), so this public API
  // boundary keeps the always-on check.
  JMH_REQUIRE(bi.size() == bj.size() && vi.size() == vj.size(),
              "pairing column size mismatch");
  PairOutcome out;
  const kernels::Gram g = kernels::gram3(bi.data(), bj.data(), bi.size());
  out.bii = g.xx;
  out.bjj = g.yy;
  out.bij = g.xy;
  const RotationDecision d = compute_rotation(out.bii, out.bjj, out.bij, threshold);
  if (!d.rotate) return out;
  if (bi.size() == vi.size()) {
    // Equal lengths (the EVD case): one fused pass, bit-for-bit the
    // historical path.
    kernels::fused_rotate(bi.data(), bj.data(), vi.data(), vj.data(), bi.size(), d.c, d.s);
  } else {
    // Rectangular SVD: fuse over the common prefix, rotate the longer
    // pair's tail separately. Elementwise each pair still receives exactly
    // one plane rotation.
    const std::size_t common = std::min(bi.size(), vi.size());
    kernels::fused_rotate(bi.data(), bj.data(), vi.data(), vj.data(), common, d.c, d.s);
    if (bi.size() > common) apply_rotation(bi.subspan(common), bj.subspan(common), d.c, d.s);
    if (vi.size() > common) apply_rotation(vi.subspan(common), vj.subspan(common), d.c, d.s);
  }
  out.rotated = true;
  return out;
}

bool pair_columns(std::span<double> bi, std::span<double> bj, std::span<double> vi,
                  std::span<double> vj, double threshold) {
  return pair_columns_stats(bi, bj, vi, vj, threshold).rotated;
}

bool pair_columns(Matrix& b, Matrix& v, std::size_t i, std::size_t j, double threshold) {
  JMH_REQUIRE(i != j, "cannot pair a column with itself");
  return pair_columns(b.col(i), b.col(j), v.col(i), v.col(j), threshold);
}

}  // namespace jmh::la
