// One-sided Jacobi plane rotation (paper section 2.2; Eberlein 1987 [5]).
//
// The one-sided method keeps B = A*V (B initialized to A, V to I). The
// "pairing of columns i and j" computes a rotation R in the (i,j) plane
// from the three dot products b_i.b_i, b_j.b_j, b_i.b_j and applies it to
// the columns of both B and V, zeroing the dot product b_i.b_j. At
// convergence the columns of B are mutually orthogonal, B = A*V with V
// orthogonal, so b_i = lambda_i v_i: the Rayleigh quotients v_i.b_i are the
// eigenvalues and the columns of V the eigenvectors.
//
// Crucially, the rotation only needs columns i and j of B and V -- this is
// what makes the method distributable with column blocks.
#pragma once

#include <span>

#include "la/matrix.hpp"

namespace jmh::la {

/// Rotation parameters (c, s) or the decision to skip a negligible pair.
struct RotationDecision {
  bool rotate = false;
  double c = 1.0;
  double s = 0.0;
};

/// Default relative threshold: a pair is rotated iff
/// |b_i.b_j| > threshold * sqrt((b_i.b_i)(b_j.b_j)).
inline constexpr double kDefaultThreshold = 1e-12;

/// Computes the rotation zeroing the (i,j) dot product, from the three dot
/// products. Uses the standard stable formulas (Rutishauser): the smaller
/// root of t^2 + 2*tau*t - 1 = 0.
RotationDecision compute_rotation(double bii, double bjj, double bij,
                                  double threshold = kDefaultThreshold);

/// Applies [x, y] <- [c*x - s*y, s*x + c*y] elementwise.
void apply_rotation(std::span<double> x, std::span<double> y, double c, double s);

/// Outcome of one column pairing, including the pre-rotation dot products
/// (used by off-diagonal-norm convergence tests: bij is exactly the (i,j)
/// entry of V^T A V before this rotation).
struct PairOutcome {
  bool rotated = false;
  double bii = 0.0;
  double bjj = 0.0;
  double bij = 0.0;
};

/// Full pairing of columns i and j of (B, V): compute dots, decide, rotate.
/// Returns true iff a rotation was applied.
bool pair_columns(Matrix& b, Matrix& v, std::size_t i, std::size_t j,
                  double threshold = kDefaultThreshold);

/// Same, operating on raw column spans (the distributed solver owns its
/// column storage). bi/bj are columns of B; vi/vj the matching columns of V.
/// The B pair and the V pair must each have equal length, and no span may
/// alias another (they are four distinct columns; the fused la/kernels are
/// compiled with __restrict on that assumption). The B and V lengths may
/// differ: one-sided Jacobi SVD of a rectangular m x n input rotates
/// length-m B columns together with length-n V columns. When they are equal
/// (the EVD case) the rotation runs as a single fused kernel call, exactly
/// as before.
bool pair_columns(std::span<double> bi, std::span<double> bj, std::span<double> vi,
                  std::span<double> vj, double threshold = kDefaultThreshold);

/// Span variant reporting the pre-rotation dot products. Same length and
/// no-aliasing preconditions as pair_columns.
PairOutcome pair_columns_stats(std::span<double> bi, std::span<double> bj,
                               std::span<double> vi, std::span<double> vj,
                               double threshold = kDefaultThreshold);

}  // namespace jmh::la
