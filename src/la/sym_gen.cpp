#include "la/sym_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace jmh::la {

Matrix random_uniform_symmetric(std::size_t n, Xoshiro256& rng) {
  Matrix a(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r <= c; ++r) {
      const double v = rng.uniform(-1.0, 1.0);
      a(r, c) = v;
      a(c, r) = v;
    }
  }
  return a;
}

Matrix random_uniform(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  Matrix a(rows, cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) a(r, c) = rng.uniform(-1.0, 1.0);
  return a;
}

Matrix diagonal(const std::vector<double>& d) {
  Matrix a(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) a(i, i) = d[i];
  return a;
}

Matrix tridiag_toeplitz(std::size_t n, double diag, double offdiag) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = diag;
    if (i + 1 < n) {
      a(i, i + 1) = offdiag;
      a(i + 1, i) = offdiag;
    }
  }
  return a;
}

std::vector<double> tridiag_toeplitz_eigenvalues(std::size_t n, double diag, double offdiag) {
  std::vector<double> ev(n);
  for (std::size_t k = 1; k <= n; ++k) {
    ev[k - 1] = diag + 2.0 * offdiag *
                           std::cos(static_cast<double>(k) * std::numbers::pi /
                                    (static_cast<double>(n) + 1.0));
  }
  std::sort(ev.begin(), ev.end());
  return ev;
}

Matrix symmetric_with_spectrum(const std::vector<double>& eigenvalues, Xoshiro256& rng) {
  const std::size_t n = eigenvalues.size();
  Matrix a = diagonal(eigenvalues);

  // Apply n random Householder similarity transformations: A <- H A H with
  // H = I - 2 v v^T, which preserves symmetry and spectrum.
  std::vector<double> v(n);
  for (std::size_t rep = 0; rep < std::max<std::size_t>(n, 2); ++rep) {
    double nrm2 = 0.0;
    for (auto& x : v) {
      x = rng.uniform(-1.0, 1.0);
      nrm2 += x * x;
    }
    if (nrm2 == 0.0) continue;
    const double inv = 1.0 / std::sqrt(nrm2);
    for (auto& x : v) x *= inv;

    // w = A v; K = v^T A v.
    std::vector<double> w(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      const auto col = a.col(c);
      for (std::size_t r = 0; r < n; ++r) w[r] += col[r] * v[c];
    }
    const double k = dot(v, w);
    // H A H = A - 2 v w^T - 2 w v^T + 4 k v v^T.
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t r = 0; r < n; ++r) {
        a(r, c) += -2.0 * v[r] * w[c] - 2.0 * w[r] * v[c] + 4.0 * k * v[r] * v[c];
      }
    }
  }
  return a;
}

}  // namespace jmh::la
