#include "la/sym_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace jmh::la {

Matrix random_uniform_symmetric(std::size_t n, Xoshiro256& rng) {
  Matrix a(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r <= c; ++r) {
      const double v = rng.uniform(-1.0, 1.0);
      a(r, c) = v;
      a(c, r) = v;
    }
  }
  return a;
}

Matrix random_uniform(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  Matrix a(rows, cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) a(r, c) = rng.uniform(-1.0, 1.0);
  return a;
}

Matrix diagonal(const std::vector<double>& d) {
  Matrix a(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) a(i, i) = d[i];
  return a;
}

Matrix tridiag_toeplitz(std::size_t n, double diag, double offdiag) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = diag;
    if (i + 1 < n) {
      a(i, i + 1) = offdiag;
      a(i + 1, i) = offdiag;
    }
  }
  return a;
}

std::vector<double> tridiag_toeplitz_eigenvalues(std::size_t n, double diag, double offdiag) {
  std::vector<double> ev(n);
  for (std::size_t k = 1; k <= n; ++k) {
    ev[k - 1] = diag + 2.0 * offdiag *
                           std::cos(static_cast<double>(k) * std::numbers::pi /
                                    (static_cast<double>(n) + 1.0));
  }
  std::sort(ev.begin(), ev.end());
  return ev;
}

Matrix symmetric_with_spectrum(const std::vector<double>& eigenvalues, Xoshiro256& rng) {
  const std::size_t n = eigenvalues.size();
  Matrix a = diagonal(eigenvalues);

  // Apply n random Householder similarity transformations: A <- H A H with
  // H = I - 2 v v^T, which preserves symmetry and spectrum.
  std::vector<double> v(n);
  for (std::size_t rep = 0; rep < std::max<std::size_t>(n, 2); ++rep) {
    double nrm2 = 0.0;
    for (auto& x : v) {
      x = rng.uniform(-1.0, 1.0);
      nrm2 += x * x;
    }
    if (nrm2 == 0.0) continue;
    const double inv = 1.0 / std::sqrt(nrm2);
    for (auto& x : v) x *= inv;

    // w = A v; K = v^T A v.
    std::vector<double> w(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      const auto col = a.col(c);
      for (std::size_t r = 0; r < n; ++r) w[r] += col[r] * v[c];
    }
    const double k = dot(v, w);
    // H A H = A - 2 v w^T - 2 w v^T + 4 k v v^T.
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t r = 0; r < n; ++r) {
        a(r, c) += -2.0 * v[r] * w[c] - 2.0 * w[r] * v[c] + 4.0 * k * v[r] * v[c];
      }
    }
  }
  return a;
}

Matrix random_spd(std::size_t n, Xoshiro256& rng) {
  std::vector<double> spectrum(n);
  for (double& ev : spectrum) ev = rng.uniform(1.0, 2.0);
  return symmetric_with_spectrum(spectrum, rng);
}

Matrix cholesky_factor(const Matrix& b) {
  JMH_REQUIRE(b.is_square(), "Cholesky needs a square matrix");
  const std::size_t n = b.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = b(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    JMH_REQUIRE(diag > 0.0, "Cholesky needs a positive-definite matrix");
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = b(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

namespace {

/// Solves L w = y in place (forward substitution, L lower triangular).
void forward_solve_inplace(const Matrix& l, std::span<double> y) {
  const std::size_t n = l.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double s = y[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
}

/// Solves L^T x = y in place (back substitution).
void backward_solve_inplace(const Matrix& l, std::span<double> y) {
  const std::size_t n = l.rows();
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * y[k];
    y[i] = s / l(i, i);
  }
}

}  // namespace

Matrix whiten_symmetric(const Matrix& a, const Matrix& l) {
  JMH_REQUIRE(a.is_square() && l.is_square() && a.rows() == l.rows(),
              "whitening needs square A and L of equal order");
  const std::size_t n = a.rows();
  // W = L^{-1} A (forward solve per column), then C = W L^{-T} computed as
  // (L^{-1} W^T)^T -- two triangular sweeps, no inverse ever formed.
  Matrix w(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    const auto src = a.col(c);
    std::copy(src.begin(), src.end(), w.col(c).begin());
    forward_solve_inplace(l, w.col(c));
  }
  Matrix wt = transposed(w);
  for (std::size_t c = 0; c < n; ++c) forward_solve_inplace(l, wt.col(c));
  Matrix c = transposed(wt);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < j; ++i) {
      const double sym = 0.5 * (c(i, j) + c(j, i));
      c(i, j) = sym;
      c(j, i) = sym;
    }
  return c;
}

Matrix unwhiten_columns(const Matrix& l, const Matrix& y) {
  JMH_REQUIRE(l.is_square() && y.rows() == l.rows(),
              "back-substitution needs Y with L's row count");
  Matrix x = y;
  for (std::size_t c = 0; c < x.cols(); ++c) backward_solve_inplace(l, x.col(c));
  return x;
}

}  // namespace jmh::la
