// Fused, vectorization-friendly inner kernels of the one-sided Jacobi
// sweep.
//
// The hot pair operation needs three dot products of a column pair and, if
// the pair rotates, a plane rotation of the B columns and the matching V
// columns. Written naively (three `dot` calls + two `apply_rotation`
// calls) that streams the column data through memory five times per pair.
// These kernels collapse the traversal count to two:
//
//   * gram3          -- (bi.bi, bj.bj, bi.bj) in ONE pass over the pair,
//                       with `__restrict`-qualified pointers and 4-way
//                       independent accumulators so the compiler can keep
//                       the reduction in vector registers;
//   * fused_rotate   -- the plane rotation applied to (bi, bj) and
//                       (vi, vj) in ONE loop (elementwise identical to two
//                       consecutive apply_rotation calls).
//
// Accumulation order is part of gram3's contract: lane k sums elements
// k, k+4, k+8, ... and the lanes combine as (l0+l1) + (l2+l3), with the
// tail (n % 4 trailing elements) folded into lane 0. Tests pin this down
// bit-for-bit against a scalar reference so the kernel can be rewritten
// (e.g. with intrinsics) without silently changing results.
#pragma once

#include <cstddef>

namespace jmh::la::kernels {

/// The three pairwise dot products of columns (x, y).
struct Gram {
  double xx = 0.0;
  double yy = 0.0;
  double xy = 0.0;
};

/// Single-pass Gram kernel: returns (x.x, y.y, x.y) for two length-n
/// columns. See the header comment for the pinned accumulation order.
Gram gram3(const double* __restrict x, const double* __restrict y, std::size_t n) noexcept;

/// Fused plane rotation: applies [u, w] <- [c*u - s*w, s*u + c*w] to both
/// the B pair (bi, bj) and the V pair (vi, vj), all length n, in one loop.
/// Elementwise identical to rotating the two pairs separately.
void fused_rotate(double* __restrict bi, double* __restrict bj, double* __restrict vi,
                  double* __restrict vj, std::size_t n, double c, double s) noexcept;

}  // namespace jmh::la::kernels
