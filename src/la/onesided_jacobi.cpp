#include "la/onesided_jacobi.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "la/shift.hpp"

namespace jmh::la {

SweepPattern cyclic_pattern(std::size_t n) {
  SweepPattern p;
  p.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i + 1 < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) p.emplace_back(i, j);
  return p;
}

bool is_complete_pattern(const SweepPattern& pattern, std::size_t n) {
  if (pattern.size() != n * (n - 1) / 2) return false;
  std::vector<char> seen(n * n, 0);
  for (auto [i, j] : pattern) {
    if (i >= n || j >= n || i == j) return false;
    const std::size_t lo = std::min(i, j), hi = std::max(i, j);
    if (seen[lo * n + hi]) return false;
    seen[lo * n + hi] = 1;
  }
  return true;
}

JacobiResult onesided_jacobi(const Matrix& a,
                             const std::function<SweepPattern(int)>& pattern_provider,
                             const JacobiOptions& opts) {
  JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
  if (opts.gershgorin_shift) {
    const double sigma = gershgorin_radius(a);
    JacobiOptions inner = opts;
    inner.gershgorin_shift = false;
    JacobiResult r = onesided_jacobi(add_diagonal_shift(a, sigma), pattern_provider, inner);
    for (double& ev : r.eigenvalues) ev -= sigma;
    return r;
  }
  const std::size_t n = a.rows();

  Matrix b = a;
  Matrix v = Matrix::identity(n);

  JacobiResult result;
  // Pattern completeness is O(n^2) to check (and allocates a seen table),
  // so validate once per *distinct* pattern instead of every sweep: most
  // providers return the same pattern each time, and an O(pairs) equality
  // compare against the last validated pattern is far cheaper than
  // re-validating. Debug builds re-check every sweep regardless.
  SweepPattern validated;
  bool have_validated = false;
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    const SweepPattern pattern = pattern_provider(sweep);
    if (!have_validated || pattern != validated) {
      JMH_REQUIRE(is_complete_pattern(pattern, n), "sweep pattern must cover all pairs once");
      validated = pattern;
      have_validated = true;
    } else {
      JMH_DASSERT(is_complete_pattern(pattern, n), "sweep pattern must cover all pairs once");
    }
    std::size_t rotated = 0;
    for (auto [i, j] : pattern)
      if (pair_columns(b, v, i, j, opts.threshold)) ++rotated;
    result.rotations += rotated;
    if (rotated == 0) {
      result.converged = true;
      break;
    }
    ++result.sweeps;
  }

  // Extract eigenpairs: lambda_k = v_k . b_k (Rayleigh quotient with
  // ||v_k|| = 1), sorted ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> lambda(n);
  for (std::size_t k = 0; k < n; ++k) lambda[k] = dot(v.col(k), b.col(k));
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return lambda[x] < lambda[y]; });

  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    result.eigenvalues[k] = lambda[order[k]];
    const auto src = v.col(order[k]);
    auto dst = result.eigenvectors.col(k);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return result;
}

JacobiResult onesided_jacobi_cyclic(const Matrix& a, const JacobiOptions& opts) {
  const SweepPattern pattern = cyclic_pattern(a.rows());
  return onesided_jacobi(a, [&pattern](int) { return pattern; }, opts);
}

}  // namespace jmh::la
