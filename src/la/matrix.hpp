// Column-major dense matrix.
//
// The one-sided Jacobi method operates exclusively on whole columns (dot
// products and plane rotations of column pairs), so storage is column-major
// and the column view is the primary access path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace jmh::la {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  // Bounds checks are JMH_DASSERT: element and column access sit on
  // measured hot paths (kernels, extraction, assembly), so release builds
  // must not pay a branch per element. Debug builds check fully.
  double& operator()(std::size_t r, std::size_t c) {
    JMH_DASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[c * rows_ + r];
  }
  double operator()(std::size_t r, std::size_t c) const {
    JMH_DASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[c * rows_ + r];
  }

  std::span<double> col(std::size_t c) {
    JMH_DASSERT(c < cols_, "column index out of range");
    return {data_.data() + c * rows_, rows_};
  }
  std::span<const double> col(std::size_t c) const {
    JMH_DASSERT(c < cols_, "column index out of range");
    return {data_.data() + c * rows_, rows_};
  }

  const std::vector<double>& data() const noexcept { return data_; }

  bool is_square() const noexcept { return rows_ == cols_; }

  /// Max |a_ij - b_ij|.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// A^T as a new matrix. Used by the wide-SVD pre-transform (one-sided
/// Jacobi needs a tall working matrix; a wide A is factored as A^T with
/// U and V swapped in assembly).
Matrix transposed(const Matrix& a);

/// y := A * x (dense mat-vec).
std::vector<double> matvec(const Matrix& a, std::span<const double> x);

/// Dot product of two equal-length spans.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm.
double norm2(std::span<const double> x);

/// Frobenius norm of the off-diagonal part of a square matrix.
double offdiag_frobenius(const Matrix& a);

}  // namespace jmh::la
