// Symmetric test-matrix generators.
//
// random_uniform_symmetric matches the paper's convergence experiment
// (section 3.4): entries uniform on [-1, 1]. The structured generators have
// closed-form spectra and are used to validate the eigensolvers.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace jmh::la {

/// Symmetric matrix with entries drawn uniformly from [-1, 1] (the paper's
/// Table 2 workload).
Matrix random_uniform_symmetric(std::size_t n, Xoshiro256& rng);

/// General (possibly rectangular) rows x cols matrix with entries uniform on
/// [-1, 1] -- the task=svd workload of the service driver and benches.
Matrix random_uniform(std::size_t rows, std::size_t cols, Xoshiro256& rng);

/// Diagonal matrix with the given entries.
Matrix diagonal(const std::vector<double>& d);

/// Symmetric tridiagonal Toeplitz matrix with diagonal b and off-diagonal a.
/// Eigenvalues are b + 2a*cos(k*pi/(n+1)), k = 1..n.
Matrix tridiag_toeplitz(std::size_t n, double diag, double offdiag);

/// Closed-form eigenvalues of tridiag_toeplitz, ascending.
std::vector<double> tridiag_toeplitz_eigenvalues(std::size_t n, double diag, double offdiag);

/// A = Q D Q^T for a random orthogonal Q (built from random Householder
/// reflections) and prescribed eigenvalues; validates solvers on matrices
/// with known spectrum and controllable conditioning.
Matrix symmetric_with_spectrum(const std::vector<double>& eigenvalues, Xoshiro256& rng);

/// Random symmetric positive-definite matrix: Q D Q^T with spectrum drawn
/// uniformly from [1, 2] (condition number <= 2, so Cholesky and the
/// whitening solves below stay well-behaved). The B-side input of the
/// task=gevd workload: generated deterministically from the spec's bseed so
/// every backend, the sequential reference, and a replayed service job all
/// whiten against the identical basis.
Matrix random_spd(std::size_t n, Xoshiro256& rng);

// --- Cholesky pre-whitening (the task=gevd pipeline) -------------------------
// The generalized symmetric eigenproblem A x = lambda B x (B SPD) reduces to
// the standard problem C y = lambda y with C = L^{-1} A L^{-T}, B = L L^T,
// and x = L^{-T} y: whiten before the sweep, back-substitute after.

/// Lower-triangular Cholesky factor L with B = L L^T. Requires @p b square,
/// symmetric and positive definite (throws on a non-positive pivot).
Matrix cholesky_factor(const Matrix& b);

/// C = L^{-1} A L^{-T} for symmetric @p a and lower-triangular @p l, the
/// result explicitly symmetrized (0.5 * (C + C^T)) so rounding cannot hand
/// the sweep engine an asymmetric working matrix.
Matrix whiten_symmetric(const Matrix& a, const Matrix& l);

/// Back-substitution of the whitening: X = L^{-T} Y column by column (each
/// eigenvector y of C becomes the generalized eigenvector x = L^{-T} y,
/// B-orthonormal by construction).
Matrix unwhiten_columns(const Matrix& l, const Matrix& y);

}  // namespace jmh::la
