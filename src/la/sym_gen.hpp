// Symmetric test-matrix generators.
//
// random_uniform_symmetric matches the paper's convergence experiment
// (section 3.4): entries uniform on [-1, 1]. The structured generators have
// closed-form spectra and are used to validate the eigensolvers.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace jmh::la {

/// Symmetric matrix with entries drawn uniformly from [-1, 1] (the paper's
/// Table 2 workload).
Matrix random_uniform_symmetric(std::size_t n, Xoshiro256& rng);

/// General (possibly rectangular) rows x cols matrix with entries uniform on
/// [-1, 1] -- the task=svd workload of the service driver and benches.
Matrix random_uniform(std::size_t rows, std::size_t cols, Xoshiro256& rng);

/// Diagonal matrix with the given entries.
Matrix diagonal(const std::vector<double>& d);

/// Symmetric tridiagonal Toeplitz matrix with diagonal b and off-diagonal a.
/// Eigenvalues are b + 2a*cos(k*pi/(n+1)), k = 1..n.
Matrix tridiag_toeplitz(std::size_t n, double diag, double offdiag);

/// Closed-form eigenvalues of tridiag_toeplitz, ascending.
std::vector<double> tridiag_toeplitz_eigenvalues(std::size_t n, double diag, double offdiag);

/// A = Q D Q^T for a random orthogonal Q (built from random Householder
/// reflections) and prescribed eigenvalues; validates solvers on matrices
/// with known spectrum and controllable conditioning.
Matrix symmetric_with_spectrum(const std::vector<double>& eigenvalues, Xoshiro256& rng);

}  // namespace jmh::la
