#include "la/eigen_check.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace jmh::la {

double frobenius(const Matrix& a) {
  double s = 0.0;
  for (double x : a.data()) s += x * x;
  return std::sqrt(s);
}

double eigenpair_residual(const Matrix& a, const std::vector<double>& eigenvalues,
                          const Matrix& eigenvectors) {
  JMH_REQUIRE(a.is_square(), "square matrix required");
  JMH_REQUIRE(eigenvalues.size() <= a.cols(), "more eigenvalues than columns");
  JMH_REQUIRE(eigenvectors.rows() == a.rows() && eigenvectors.cols() == eigenvalues.size(),
              "eigenvector matrix shape mismatch");
  const double scale = std::max(frobenius(a), 1e-300);
  double worst = 0.0;
  for (std::size_t k = 0; k < eigenvalues.size(); ++k) {
    const auto vk = eigenvectors.col(k);
    const std::vector<double> av = matvec(a, vk);
    double r2 = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const double diff = av[r] - eigenvalues[k] * vk[r];
      r2 += diff * diff;
    }
    worst = std::max(worst, std::sqrt(r2) / scale);
  }
  return worst;
}

double svd_residual(const Matrix& a, const std::vector<double>& singular_values,
                    const Matrix& u, const Matrix& v) {
  JMH_REQUIRE(singular_values.size() <= a.cols(), "more singular values than columns");
  JMH_REQUIRE(u.rows() == a.rows() && u.cols() == singular_values.size(), "U shape mismatch");
  JMH_REQUIRE(v.rows() == a.cols() && v.cols() == singular_values.size(), "V shape mismatch");
  const double scale = std::max(frobenius(a), 1e-300);
  double worst = 0.0;
  for (std::size_t k = 0; k < singular_values.size(); ++k) {
    const std::vector<double> av = matvec(a, v.col(k));
    const auto uk = u.col(k);
    double r2 = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const double diff = av[r] - singular_values[k] * uk[r];
      r2 += diff * diff;
    }
    worst = std::max(worst, std::sqrt(r2) / scale);
  }
  return worst;
}

double orthogonality_defect(const Matrix& v) {
  double worst = 0.0;
  for (std::size_t i = 0; i < v.cols(); ++i) {
    for (std::size_t j = i; j < v.cols(); ++j) {
      const double d = dot(v.col(i), v.col(j)) - (i == j ? 1.0 : 0.0);
      worst = std::max(worst, std::abs(d));
    }
  }
  return worst;
}

double spectrum_distance(const std::vector<double>& x, const std::vector<double>& y) {
  JMH_REQUIRE(x.size() == y.size(), "spectra have different sizes");
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) worst = std::max(worst, std::abs(x[i] - y[i]));
  return worst;
}

}  // namespace jmh::la
