#include "la/brent_luk.hpp"

#include "common/assert.hpp"

namespace jmh::la {

SweepPattern brent_luk_round(std::size_t m, std::size_t round) {
  JMH_REQUIRE(m >= 2 && m % 2 == 0, "Brent-Luk tournament needs even m");
  JMH_REQUIRE(round < m - 1, "round out of range");
  // Positions 0..m-1 around the tournament table; position 0 is fixed,
  // positions 1..m-1 hold column 1 + (col - 1 + round) mod (m-1) rotated.
  // Pair position i with position m-1-i.
  SweepPattern pairs;
  pairs.reserve(m / 2);
  auto occupant = [&](std::size_t pos) -> std::size_t {
    if (pos == 0) return 0;
    // Column at rotating position pos after `round` rotations.
    return 1 + (pos - 1 + round) % (m - 1);
  };
  for (std::size_t i = 0; i < m / 2; ++i) {
    pairs.emplace_back(occupant(i), occupant(m - 1 - i));
  }
  return pairs;
}

SweepPattern brent_luk_sweep(std::size_t m) {
  SweepPattern sweep;
  sweep.reserve(m * (m - 1) / 2);
  for (std::size_t round = 0; round + 1 < m; ++round) {
    const SweepPattern r = brent_luk_round(m, round);
    sweep.insert(sweep.end(), r.begin(), r.end());
  }
  return sweep;
}

std::function<SweepPattern(int)> brent_luk_provider(std::size_t m) {
  return [pattern = brent_luk_sweep(m)](int) { return pattern; };
}

}  // namespace jmh::la
