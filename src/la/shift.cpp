#include "la/shift.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace jmh::la {

double gershgorin_radius(const Matrix& a) {
  JMH_REQUIRE(a.is_square(), "Gershgorin bound needs a square matrix");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) row_sum += std::abs(a(i, j));
    worst = std::max(worst, row_sum);
  }
  return worst;
}

Matrix add_diagonal_shift(const Matrix& a, double sigma) {
  JMH_REQUIRE(a.is_square(), "diagonal shift needs a square matrix");
  Matrix out = a;
  for (std::size_t i = 0; i < a.rows(); ++i) out(i, i) += sigma;
  return out;
}

}  // namespace jmh::la
