#include "la/kernels.hpp"

namespace jmh::la::kernels {

Gram gram3(const double* __restrict x, const double* __restrict y, std::size_t n) noexcept {
  double xx0 = 0.0, xx1 = 0.0, xx2 = 0.0, xx3 = 0.0;
  double yy0 = 0.0, yy1 = 0.0, yy2 = 0.0, yy3 = 0.0;
  double xy0 = 0.0, xy1 = 0.0, xy2 = 0.0, xy3 = 0.0;
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const double x0 = x[r], x1 = x[r + 1], x2 = x[r + 2], x3 = x[r + 3];
    const double y0 = y[r], y1 = y[r + 1], y2 = y[r + 2], y3 = y[r + 3];
    xx0 += x0 * x0;
    xx1 += x1 * x1;
    xx2 += x2 * x2;
    xx3 += x3 * x3;
    yy0 += y0 * y0;
    yy1 += y1 * y1;
    yy2 += y2 * y2;
    yy3 += y3 * y3;
    xy0 += x0 * y0;
    xy1 += x1 * y1;
    xy2 += x2 * y2;
    xy3 += x3 * y3;
  }
  for (; r < n; ++r) {  // unroll tail folds into lane 0
    xx0 += x[r] * x[r];
    yy0 += y[r] * y[r];
    xy0 += x[r] * y[r];
  }
  Gram g;
  g.xx = (xx0 + xx1) + (xx2 + xx3);
  g.yy = (yy0 + yy1) + (yy2 + yy3);
  g.xy = (xy0 + xy1) + (xy2 + xy3);
  return g;
}

void fused_rotate(double* __restrict bi, double* __restrict bj, double* __restrict vi,
                  double* __restrict vj, std::size_t n, double c, double s) noexcept {
  for (std::size_t r = 0; r < n; ++r) {
    const double br = bi[r];
    const double bs = bj[r];
    bi[r] = c * br - s * bs;
    bj[r] = s * br + c * bs;
    const double vr = vi[r];
    const double vs = vj[r];
    vi[r] = c * vr - s * vs;
    vj[r] = s * vr + c * vs;
  }
}

}  // namespace jmh::la::kernels
