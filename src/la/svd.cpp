#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"
#include "la/rotation.hpp"

namespace jmh::la {

SvdResult svd_from_bv(const Matrix& b, const Matrix& v) {
  JMH_REQUIRE(v.is_square() && v.rows() == b.cols(), "V must be n x n for an m x n B");
  const std::size_t n = b.cols();

  std::vector<double> sigma(n);
  for (std::size_t k = 0; k < n; ++k) sigma[k] = norm2(b.col(k));

  // Descending, ties broken by original column index: the order is a pure
  // function of the (B, V) pair, so every backend assembling the same final
  // blocks extracts bit-identical results.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return sigma[x] != sigma[y] ? sigma[x] > sigma[y] : x < y;
  });

  SvdResult out;
  out.singular_values.resize(n);
  out.u = Matrix(b.rows(), n);
  out.v = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = order[k];
    const double s = sigma[src];
    out.singular_values[k] = s;
    const auto bcol = b.col(src);
    auto ucol = out.u.col(k);
    if (s > 0.0)
      for (std::size_t r = 0; r < bcol.size(); ++r) ucol[r] = bcol[r] / s;
    const auto vcol = v.col(src);
    std::copy(vcol.begin(), vcol.end(), out.v.col(k).begin());
  }
  return out;
}

SvdResult onesided_jacobi_svd(const Matrix& a,
                              const std::function<SweepPattern(int)>& pattern_provider,
                              const JacobiOptions& opts) {
  JMH_REQUIRE(!opts.gershgorin_shift, "a diagonal shift has no SVD meaning");
  JMH_REQUIRE(a.rows() >= 1 && a.cols() >= 1, "SVD needs a non-empty matrix");
  // Wide inputs put cols - rows columns in the null space; their mutual dot
  // products keep passing the RELATIVE rotation threshold (both norms decay
  // together) until the norms underflow to exact zero, so a rotation-free
  // sweep arrives only after wasted null-space churn. Factor the transpose
  // instead: A = U S V^T <=> A^T = V S U^T (onesided_jacobi_svd_any does).
  JMH_REQUIRE(a.rows() >= a.cols(),
              "one-sided Jacobi SVD needs a tall or square input (for a wide A, factor A^T "
              "and swap U/V)");
  const std::size_t n = a.cols();

  Matrix b = a;  // m x n working columns
  Matrix v = Matrix::identity(n);

  int sweeps = 0;
  bool converged = false;
  std::size_t rotations = 0;
  // Validate once per distinct pattern, as in the eigensolver reference.
  SweepPattern validated;
  bool have_validated = false;
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    const SweepPattern pattern = pattern_provider(sweep);
    if (!have_validated || pattern != validated) {
      JMH_REQUIRE(is_complete_pattern(pattern, n), "sweep pattern must cover all pairs once");
      validated = pattern;
      have_validated = true;
    } else {
      JMH_DASSERT(is_complete_pattern(pattern, n), "sweep pattern must cover all pairs once");
    }
    std::size_t rotated = 0;
    for (auto [i, j] : pattern)
      if (pair_columns(b.col(i), b.col(j), v.col(i), v.col(j), opts.threshold)) ++rotated;
    rotations += rotated;
    if (rotated == 0) {
      converged = true;
      break;
    }
    ++sweeps;
  }

  SvdResult out = svd_from_bv(b, v);
  out.sweeps = sweeps;
  out.converged = converged;
  out.rotations = rotations;
  return out;
}

SvdResult onesided_jacobi_svd_cyclic(const Matrix& a, const JacobiOptions& opts) {
  const SweepPattern pattern = cyclic_pattern(a.cols());
  return onesided_jacobi_svd(a, [&pattern](int) { return pattern; }, opts);
}

SvdResult onesided_jacobi_svd_any(const Matrix& a, const JacobiOptions& opts) {
  if (a.rows() >= a.cols()) return onesided_jacobi_svd_cyclic(a, opts);
  // A = U S V^T <=> A^T = V S U^T: factor the (tall) transpose and swap the
  // singular-vector roles. Same trick the api::Task::Svd adapter applies, so
  // this stays the valid sequential reference for wide inputs.
  SvdResult out = onesided_jacobi_svd_cyclic(transposed(a), opts);
  std::swap(out.u, out.v);
  return out;
}

}  // namespace jmh::la
