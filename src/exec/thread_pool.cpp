#include "exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/alloc_guard.hpp"
#include "common/assert.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace jmh::exec {

namespace {

// Which pool worker (if any) the current thread is. Helpers and gang
// callers stay kNotWorker: only threads whose lifetime the pool owns count,
// because run_gang's admission math reserves exactly those.
constexpr std::size_t kNotWorker = static_cast<std::size_t>(-1);
thread_local std::size_t tl_worker_index = kNotWorker;

std::size_t pick_workers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 2;
}

void pin_to_cpu(std::thread& t, std::size_t index) {
#ifdef __linux__
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % cores), &set);
  // Best effort: a failed affinity call (cpuset-restricted container)
  // leaves the worker unpinned, which is always correct.
  pthread_setaffinity_np(t.native_handle(), sizeof set, &set);
#else
  (void)t;
  (void)index;
#endif
}

}  // namespace

// ---- TaskGroup --------------------------------------------------------------

struct ThreadPool::TaskGroup::State {
  std::mutex mu;
  std::condition_variable cv;
  /// Entries not yet started, with their submission index (error ordering).
  std::deque<std::pair<std::size_t, std::function<void()>>> pending;
  std::size_t added = 0;
  std::size_t finished = 0;
  std::size_t first_error_index = static_cast<std::size_t>(-1);
  std::exception_ptr first_error;

  /// Pops and runs one pending entry; false when none were pending. Shared
  /// by workers (via their ticket task) and the helping waiter, so each
  /// entry runs exactly once no matter who gets to it first.
  bool run_one() {
    std::pair<std::size_t, std::function<void()>> entry;
    {
      std::lock_guard lock(mu);
      if (pending.empty()) return false;
      entry = std::move(pending.front());
      pending.pop_front();
    }
    std::exception_ptr error;
    try {
      entry.second();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu);
      if (error && entry.first < first_error_index) {
        first_error_index = entry.first;
        first_error = error;
      }
      ++finished;
    }
    cv.notify_all();
    return true;
  }
};

ThreadPool::TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(&pool), state_(std::make_shared<State>()) {}

ThreadPool::TaskGroup::~TaskGroup() {
  // wait() is part of the contract; recover (don't hang workers on a
  // dangling group) if a caller unwound past it.
  if (state_) wait();
}

void ThreadPool::TaskGroup::add(std::function<void()> fn) {
  {
    std::lock_guard lock(state_->mu);
    state_->pending.emplace_back(state_->added++, std::move(fn));
  }
  Task ticket;
  ticket.group = state_;
  if (tl_worker_index != kNotWorker)
    pool_->push_local(std::move(ticket));
  else
    pool_->push_external(std::move(ticket));
}

void ThreadPool::TaskGroup::wait() {
  // Helping wait: drain this group's still-queued entries on the calling
  // thread, then sleep until in-flight entries (taken by workers) finish.
  while (state_->run_one()) {
  }
  std::unique_lock lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->finished == state_->added; });
  const std::exception_ptr error = state_->first_error;
  lock.unlock();
  state_.reset();  // a second wait() (or the destructor) is a no-op
  if (error) std::rethrow_exception(error);
}

// ---- gangs ------------------------------------------------------------------

struct GangState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::size_t> pot;  ///< indices not yet started
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t remaining = 0;  ///< indices not yet finished
  std::size_t first_error_index = static_cast<std::size_t>(-1);
  std::exception_ptr first_error;

  bool run_one() {
    std::size_t index;
    {
      std::lock_guard lock(mu);
      if (pot.empty()) return false;
      index = pot.front();
      pot.pop_front();
    }
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu);
      if (error && index < first_error_index) {
        first_error_index = index;
        first_error = error;
      }
      --remaining;
    }
    cv.notify_all();
    return true;
  }

  /// Helps until the pot is dry, sleeps until every entry finished, and
  /// RETURNS (not throws) the first error by index: the caller still has
  /// temp threads to join before it may unwind.
  std::exception_ptr drain_and_wait() {
    while (run_one()) {
    }
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
    return first_error;
  }
};

void ThreadPool::run_gang(std::size_t n, const std::function<void(std::size_t)>& fn) {
  JMH_REQUIRE(n >= 1, "gang size must be >= 1");
  if (n == 1) {
    fn(0);
    return;
  }
  // A nested gang cannot reserve the worker its caller already occupies;
  // dedicated temporaries keep it deadlock-free (see header contract).
  if (on_worker_thread() || workers_.empty()) {
    run_gang_detached(n, fn);
    return;
  }

  // Shared with the queued tickets: a stale ticket (its entry already taken
  // by the caller or a temp) may be popped AFTER this call returns, and
  // must still find a live state to no-op against.
  auto st = std::make_shared<GangState>();
  st->fn = &fn;
  st->remaining = n;
  for (std::size_t i = 0; i < n; ++i) st->pot.push_back(i);

  // FIFO all-or-nothing admission. The caller is one executor, so a gang
  // needs n - 1 workers; wider than the pool, it waits for exclusivity and
  // brings its own temporaries for the overflow.
  const std::size_t width = workers_.size();
  const std::size_t reserve = std::min(n - 1, width);
  const bool oversized = n - 1 > width;
  {
    // The admission wait is where gangs queue behind each other; its span
    // (arg = gang width) is how "solve was slow" separates into "waited for
    // workers" vs "computed slowly".
    const obs::SpanScope admit_span("exec.gang_admit", obs::Category::kExec,
                                    static_cast<std::uint64_t>(n));
    std::unique_lock lock(gang_mu_);
    const std::uint64_t ticket = gang_next_ticket_++;
    gang_cv_.wait(lock, [&] {
      if (gang_serving_ != ticket) return false;
      return oversized ? gang_reserved_ == 0 : gang_reserved_ + reserve <= width;
    });
    gang_reserved_ += reserve;
    ++gang_serving_;
  }
  gang_cv_.notify_all();

  // Overflow temporaries (only when this gang alone exceeds the machine).
  std::vector<std::thread> temps;
  if (n - 1 > reserve) {
    temps.reserve(n - 1 - reserve);
    for (std::size_t t = 0; t < n - 1 - reserve; ++t)
      temps.emplace_back([st] {
        while (st->run_one()) {
        }
      });
  }
  // Pool share: one ticket per reserved worker; a ticket that arrives
  // after the pot drained is a no-op and releases its reservation.
  for (std::size_t t = 0; t < reserve; ++t) {
    Task task;
    task.gang = st;
    push_external(std::move(task));
  }

  const std::exception_ptr error = st->drain_and_wait();  // caller helps too
  for (std::thread& t : temps) t.join();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_gang_detached(std::size_t n, const std::function<void(std::size_t)>& fn) {
  GangState st;  // no tickets are queued, so stack lifetime is fine here
  st.fn = &fn;
  st.remaining = n;
  for (std::size_t i = 0; i < n; ++i) st.pot.push_back(i);
  std::vector<std::thread> temps;
  temps.reserve(n - 1);
  for (std::size_t t = 0; t < n - 1; ++t)
    temps.emplace_back([&st] {
      while (st.run_one()) {
      }
    });
  const std::exception_ptr error = st.drain_and_wait();
  for (std::thread& t : temps) t.join();
  if (error) std::rethrow_exception(error);
}

// ---- pool core --------------------------------------------------------------

ThreadPool::ThreadPool(PoolConfig config) : pin_threads_(config.pin_threads) {
  start_workers(pick_workers(config.workers), pin_threads_);
}

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::start_workers(std::size_t n, bool pin) {
  queues_.clear();
  busy_ns_.clear();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
    busy_ns_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  stopping_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
    if (pin) pin_to_cpu(workers_.back(), i);
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

bool ThreadPool::ensure_workers(std::size_t n) {
  n = pick_workers(n);
  // Admission lock first (it is never held while taking mu_), and the
  // resize itself holds it throughout so no gang can be admitted mid-swap.
  std::lock_guard gang_lock(gang_mu_);
  if (gang_reserved_ != 0 || gang_next_ticket_ != gang_serving_) return false;
  {
    std::lock_guard lock(mu_);
    if (pending_.load(std::memory_order_relaxed) != 0) return false;
    if (!injector_.empty()) return false;
  }
  if (n == workers_.size()) return true;
  stop_workers();
  high_water_.store(0, std::memory_order_relaxed);
  start_workers(n, pin_threads_);
  return true;
}

void ThreadPool::note_pushed() {
  // Bumps pending_ while HOLDING mu_ (callers guarantee it): workers check
  // the wait predicate under mu_, so an increment outside the lock could
  // land between a worker's predicate check and its sleep -- a classic
  // missed wakeup. The counter stays atomic only so queue_depth() and
  // note_popped() stay lock-free.
  const std::size_t depth = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t seen = high_water_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !high_water_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

void ThreadPool::note_popped() { pending_.fetch_sub(1, std::memory_order_relaxed); }

std::size_t ThreadPool::queue_depth() const noexcept {
  return pending_.load(std::memory_order_relaxed);
}

std::size_t ThreadPool::queue_high_water() const noexcept {
  return high_water_.load(std::memory_order_relaxed);
}

std::vector<double> ThreadPool::worker_busy_seconds() const {
  std::vector<double> out;
  out.reserve(busy_ns_.size());
  for (const auto& ns : busy_ns_) out.push_back(1e-9 * static_cast<double>(ns->load()));
  return out;
}

bool ThreadPool::on_worker_thread() noexcept { return tl_worker_index != kNotWorker; }

void ThreadPool::push_external(Task task) {
  {
    std::lock_guard lock(mu_);
    injector_.push_back(std::move(task));
    note_pushed();
  }
  work_cv_.notify_one();
}

void ThreadPool::push_local(Task task) {
  const std::size_t self = tl_worker_index;
  if (self == kNotWorker || self >= queues_.size()) {
    push_external(std::move(task));
    return;
  }
  {
    std::lock_guard lock(queues_[self]->mu);
    queues_[self]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard lock(mu_);
    note_pushed();
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // Own deque, newest first: nested submissions stay cache-hot.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard lock(q.mu);
    if (!q.deque.empty()) {
      out = std::move(q.deque.back());
      q.deque.pop_back();
      note_popped();
      return true;
    }
  }
  // Injector next (external producers), then steal oldest-first from the
  // other workers.
  {
    std::lock_guard lock(mu_);
    if (!injector_.empty()) {
      out = std::move(injector_.front());
      injector_.pop_front();
      note_popped();
      return true;
    }
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    const std::size_t victim = (self + k) % queues_.size();
    WorkerQueue& q = *queues_[victim];
    std::lock_guard lock(q.mu);
    if (!q.deque.empty()) {
      out = std::move(q.deque.front());
      q.deque.pop_front();
      note_popped();
      // Instant event (zero duration), arg = victim: steal storms show up
      // as dense tick rows in the trace. Armed-only, so the steady-state
      // dispatch path pays one relaxed load.
      if (obs::trace_armed())
        obs::trace_record("exec.steal", obs::Category::kExec, obs::trace_now_ns(), 0,
                          static_cast<std::uint64_t>(victim));
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(Task& task, std::size_t worker_index) {
  const auto start = std::chrono::steady_clock::now();
  if (task.group) {
    task.group->run_one();  // no-op when a helper already ran the entry
  } else if (task.gang) {
    task.gang->run_one();
    {
      std::lock_guard lock(gang_mu_);
      --gang_reserved_;  // this worker is lendable again
    }
    gang_cv_.notify_all();
  } else if (task.fn) {
    task.fn();
  }
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - start)
          .count();
  busy_ns_[worker_index]->fetch_add(static_cast<std::uint64_t>(ns),
                                    std::memory_order_relaxed);
  // Reuses the busy-time clock reads above: an armed trace costs only the
  // record itself here, a disarmed one only this load.
  if (obs::trace_armed())
    obs::trace_record("exec.task", obs::Category::kExec, obs::trace_time_ns(start),
                      static_cast<std::uint64_t>(ns), worker_index);
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_worker_index = index;
  Task task;
  for (;;) {
    // Steady-state dispatch must not allocate: popping a task is pure
    // moves (std::function's move steals, deque pop frees at most).
    // Audited in JMH_DASSERT builds; the task body itself may of course
    // allocate -- only the scheduling machinery is under contract.
    const common::AllocGuard dispatch_guard;
    if (try_pop(index, task)) {
      JMH_ALLOC_ASSERT_ZERO(dispatch_guard,
                            "pool dispatch (try_pop) allocated in steady state");
      run_task(task, index);
      task = Task{};
      continue;
    }
    std::unique_lock lock(mu_);
    work_cv_.wait(lock, [&] {
      return stopping_ || pending_.load(std::memory_order_relaxed) != 0;
    });
    if (stopping_ && pending_.load(std::memory_order_relaxed) == 0) break;
  }
  tl_worker_index = kNotWorker;
}

// ---- global instance --------------------------------------------------------

ThreadPool& ThreadPool::global() {
  // Trace infrastructure first: workers record spans until they join, so
  // the ring registry must be constructed BEFORE the pool to be destructed
  // after it (static destruction runs in reverse construction order).
  obs::init_tracing();
  static ThreadPool pool([] {
    PoolConfig config;
    if (const char* n = std::getenv("JMH_EXEC_THREADS"))
      config.workers = static_cast<std::size_t>(std::strtoull(n, nullptr, 10));
    if (const char* pin = std::getenv("JMH_EXEC_PIN"))
      config.pin_threads = std::string(pin) == "1";
    return config;
  }());
  // Gauges registered after the pool: their handles unregister (reverse
  // order again) while both the registry and the pool are still alive, so
  // a late render never calls into a dead pool.
  struct PoolGauges {
    obs::GaugeHandle workers;
    obs::GaugeHandle high_water;
    obs::GaugeHandle busy;
  };
  static const PoolGauges gauges{
      obs::Registry::global().register_gauge(
          "exec.pool.workers", [] { return static_cast<double>(pool.workers()); }),
      obs::Registry::global().register_gauge(
          "exec.pool.queue_high_water",
          [] { return static_cast<double>(pool.queue_high_water()); }),
      obs::Registry::global().register_gauge("exec.pool.busy_seconds_total", [] {
        double total = 0.0;
        for (double s : pool.worker_busy_seconds()) total += s;
        return total;
      })};
  (void)gauges;
  return pool;
}

bool ThreadPool::enabled() {
  static const bool on = [] {
    const char* v = std::getenv("JMH_EXEC_POOL");
    if (!v) return true;
    const std::string s(v);
    return !(s == "off" || s == "0" || s == "no");
  }();
  return on;
}

}  // namespace jmh::exec
