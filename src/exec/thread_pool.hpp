// exec::ThreadPool: the process-wide execution substrate.
//
// Before this layer existed, every concurrent construct in the repo spawned
// raw std::threads: each mpi_lite solve started one thread per rank
// (net::Universe::run) and each parallel batch a transient pool -- so eight
// concurrent jobs on an eight-rank plan put 64 runnable threads on the
// host, thrashing caches exactly the way the paper's fixed-P machine model
// says not to. This pool is the fix: ONE fixed set of worker threads
// (hardware_concurrency by default) that every layer above draws from, so
// concurrent jobs interleave on the same workers instead of multiplying
// them.
//
// Two kinds of work, with different scheduling contracts:
//
//  * Plain tasks (TaskGroup::add + wait): finite, independent closures --
//    batch items, fan-out work. Submitted to a work-stealing queue (one
//    deque per worker, LIFO for the owner, FIFO for thieves, plus a shared
//    injector for external producers). TaskGroup::wait is a HELPING wait:
//    the waiter executes its own group's still-queued tasks instead of
//    sleeping, so a task may submit subtasks and wait for them with any
//    number of busy workers -- nested fork/join cannot deadlock because the
//    waiter itself guarantees progress.
//
//  * Gangs (run_gang): n closures that must run CONCURRENTLY because they
//    block on one another (mpi_lite ranks blocked in mailbox receives and
//    barriers). A gang is admitted through FIFO all-or-nothing admission:
//    it reserves n - 1 workers (the caller runs gang tasks too) and waits
//    until the reservation fits, so the sum of outstanding gang tasks never
//    exceeds the worker count -- every admitted gang is guaranteed enough
//    executors, which is what makes blocking tasks on a bounded pool
//    deadlock-free. A gang wider than the whole pool (a d-cube with more
//    ranks than cores: unavoidable -- blocked ranks need n live threads)
//    waits for the pool to be exclusively its own and spawns temporary
//    threads for the overflow, so at most ONE oversized gang oversubscribes
//    at a time, by the minimum amount.
//
// Deadlock rules (enforced by construction, stress-tested under TSan):
//  - plain tasks terminate without blocking on anything outside the pool;
//    waiting on a TaskGroup from inside a task is fine (helping wait);
//  - gang tasks may block on each other (admission sizes the pool for
//    them) but must not submit further gangs;
//  - run_gang from a pool worker thread falls back to dedicated temporary
//    threads (a nested gang cannot reserve the worker it already occupies);
//    the repo hits this only when a batch item on the pool runs an
//    mpi-backend solve.
//
// Observability: queue-depth high-water and per-worker busy time feed
// svc::Metrics, so oversubscription vs interleaving shows up in the service
// report instead of staying a theory.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jmh::exec {

struct GangState;  // run_gang's shared bookkeeping (defined in the .cpp)

struct PoolConfig {
  std::size_t workers = 0;  ///< worker threads; 0 = hardware_concurrency
  /// Pin worker i to CPU (i mod cores) on Linux; ignored elsewhere. Off by
  /// default: pinning helps steady-state throughput benches and hurts
  /// shared machines.
  bool pin_threads = false;
};

class ThreadPool {
 public:
  explicit ThreadPool(PoolConfig config = {});

  /// Joins the workers. All submitted work must be complete (every
  /// TaskGroup waited, every run_gang returned) -- the pool asserts the
  /// queues are empty.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const noexcept { return workers_.size(); }

  /// A set of plain tasks with one completion point. Create via group(),
  /// add closures, then wait() exactly once. wait() executes still-queued
  /// tasks of THIS group on the calling thread while it waits (helping),
  /// then rethrows the first task exception, in submission order.
  class TaskGroup {
   public:
    ~TaskGroup();
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    void add(std::function<void()> fn);
    void wait();

   private:
    friend class ThreadPool;
    struct State;
    explicit TaskGroup(ThreadPool& pool);
    ThreadPool* pool_;
    std::shared_ptr<State> state_;
  };

  TaskGroup group() { return TaskGroup(*this); }

  /// Runs fn(0) .. fn(n-1) concurrently and returns when all have
  /// finished. The closures may block on each other (see the gang contract
  /// above). The caller executes gang tasks itself while it waits. Called
  /// from a pool worker thread, falls back to dedicated temporary threads.
  /// Rethrows the first exception thrown by any gang closure (by lowest
  /// index) after all have finished.
  void run_gang(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True on a thread currently executing a pool task (worker or helper).
  static bool on_worker_thread() noexcept;

  /// Best-effort resize: applies only when the pool is fully idle (no
  /// queued or running work, no admitted gangs); returns whether it did.
  /// Racing callers serialize; a busy pool keeps its current size -- the
  /// knob exists for SolverSpec threads= and service config, which want
  /// "configure at startup", not "thrash mid-traffic". Note a completed
  /// run_gang's reservation (and a helping wait's stale no-op tickets) can
  /// release a beat after the call returns, so an immediately-following
  /// resize may transiently refuse; retry if certainty is needed.
  bool ensure_workers(std::size_t n);

  // -- observability ----------------------------------------------------------
  /// Tasks currently queued (plain + gang) across all queues.
  std::size_t queue_depth() const noexcept;
  /// High-water mark of queue_depth() since construction (or resize).
  std::size_t queue_high_water() const noexcept;
  /// Seconds each worker has spent executing tasks (index = worker).
  std::vector<double> worker_busy_seconds() const;

  /// The process-wide pool every layer shares. Created on first use with
  /// JMH_EXEC_THREADS (worker count) and JMH_EXEC_PIN=1 (pinning) honored.
  static ThreadPool& global();

  /// False when JMH_EXEC_POOL=off: callers (net::Universe, svc) fall back
  /// to the legacy spawn-threads-per-use paths. Exists so the thread-per-
  /// rank baseline stays measurable with the same binary (PERF.md A/B).
  static bool enabled();

 private:
  struct Task {
    std::function<void()> fn;
    std::shared_ptr<TaskGroup::State> group;  ///< null for gang tasks
    /// Shared, not raw: run_gang returns once all gang ENTRIES finish, but
    /// a ticket whose entry was taken by the caller or a temp may still sit
    /// queued -- it must keep the state alive until a worker pops it.
    std::shared_ptr<GangState> gang;
  };

  void start_workers(std::size_t n, bool pin);
  void stop_workers();
  void worker_loop(std::size_t index);
  /// Pops a task: own deque back (LIFO), then the injector, then steal
  /// from other deques (FIFO). Returns false when nothing is queued.
  bool try_pop(std::size_t self, Task& out);
  void push_external(Task task);
  void push_local(Task task);
  void run_task(Task& task, std::size_t worker_index);
  void note_pushed();
  void note_popped();
  void run_gang_detached(std::size_t n, const std::function<void(std::size_t)>& fn);

  struct WorkerQueue {
    mutable std::mutex mu;
    std::deque<Task> deque;
  };

  mutable std::mutex mu_;                ///< injector + lifecycle
  std::condition_variable work_cv_;      ///< workers: work available / stop
  std::deque<Task> injector_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  bool pin_threads_ = false;

  // Gang admission (FIFO all-or-nothing reservation of workers).
  std::mutex gang_mu_;
  std::condition_variable gang_cv_;
  std::uint64_t gang_next_ticket_ = 0;
  std::uint64_t gang_serving_ = 0;
  std::size_t gang_reserved_ = 0;  ///< outstanding pool-queued gang tasks

  // Observability (relaxed atomics: monitoring, not synchronization).
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> high_water_{0};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> busy_ns_;
};

}  // namespace jmh::exec
