#include "api/report.hpp"

#include <cstdio>

namespace jmh::api {

double SolveReport::mean_link_utilization() const {
  if (!has_model || modeled_time <= 0.0 || link_busy.empty()) return 0.0;
  double total = 0.0;
  for (double b : link_busy) total += b;
  return total / (modeled_time * static_cast<double>(link_busy.size()));
}

std::string SolveReport::summary() const {
  char line[256];
  std::string out;

  const bool svd = task == Task::Svd;
  const std::string pipe_str = pipelining_q == 0 ? "off" : std::to_string(pipelining_q);
  if (svd)
    std::snprintf(line, sizeof line,
                  "scenario : task=svd backend=%s ordering=%s m=%zu rows=%zu pipeline=%s\n",
                  api::to_string(backend).c_str(), ord::spec_token(ordering).c_str(),
                  singular_values.size(), u.rows(), pipe_str.c_str());
  else
    std::snprintf(line, sizeof line, "scenario : backend=%s ordering=%s m=%zu pipeline=%s\n",
                  api::to_string(backend).c_str(), ord::spec_token(ordering).c_str(),
                  eigenvalues.size(), pipe_str.c_str());
  out += line;

  std::snprintf(line, sizeof line, "solve    : %s after %d sweeps, %zu rotations\n",
                converged ? "converged" : "NOT CONVERGED", sweeps, rotations);
  out += line;

  if (svd && !singular_values.empty()) {
    std::snprintf(line, sizeof line, "singulars: [%.6g, %.6g]\n", singular_values.back(),
                  singular_values.front());
    out += line;
  } else if (!eigenvalues.empty()) {
    std::snprintf(line, sizeof line, "spectrum : [%.6g, %.6g]\n", eigenvalues.front(),
                  eigenvalues.back());
    out += line;
  }

  if (backend == Backend::MpiLite) {
    std::snprintf(line, sizeof line,
                  "traffic  : %llu messages, %llu elements, %llu barriers\n",
                  static_cast<unsigned long long>(comm.messages),
                  static_cast<unsigned long long>(comm.elements),
                  static_cast<unsigned long long>(comm.barriers));
    out += line;
  }

  if (has_model) {
    std::snprintf(line, sizeof line,
                  "model    : %.4g time units over %d sweeps (vote %.4g), "
                  "mean link utilization %.1f%%\n",
                  modeled_time, modeled_sweeps, vote_time, 100.0 * mean_link_utilization());
    out += line;
  }
  return out;
}

std::string report_to_json(const SolveReport& report) {
  char buf[128];
  std::string out = "{";
  auto field = [&](const char* key, const std::string& rendered, bool first = false) {
    if (!first) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += rendered;
  };
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  auto uint = [&](std::uint64_t v) { return std::to_string(v); };

  // The solution vector of the report's task: eigenvalues ascending for
  // evd, singular values descending for svd -- min/max below pick the right
  // end either way.
  const bool svd = report.task == Task::Svd;
  const std::vector<double>& spectrum = svd ? report.singular_values : report.eigenvalues;
  field("task", "\"" + api::to_string(report.task) + "\"", /*first=*/true);
  field("backend", "\"" + api::to_string(report.backend) + "\"");
  field("ordering", "\"" + ord::spec_token(report.ordering) + "\"");
  field("m", uint(spectrum.size()));
  field("rows", uint(svd ? report.u.rows() : report.eigenvalues.size()));
  field("pipeline_q", uint(report.pipelining_q));
  field("converged", report.converged ? "true" : "false");
  field("sweeps", std::to_string(report.sweeps));
  field("rotations", uint(report.rotations));
  field("spectrum_min",
        num(spectrum.empty() ? 0.0 : (svd ? spectrum.back() : spectrum.front())));
  field("spectrum_max",
        num(spectrum.empty() ? 0.0 : (svd ? spectrum.front() : spectrum.back())));
  field("comm_messages", uint(report.comm.messages));
  field("comm_elements", uint(report.comm.elements));
  field("comm_barriers", uint(report.comm.barriers));
  field("has_model", report.has_model ? "true" : "false");
  field("modeled_time", num(report.modeled_time));
  field("vote_time", num(report.vote_time));
  field("modeled_sweeps", std::to_string(report.modeled_sweeps));
  field("mean_link_utilization", num(report.mean_link_utilization()));
  out += '}';
  return out;
}

}  // namespace jmh::api
