#include "api/report.hpp"

#include <cstdio>

namespace jmh::api {

double SolveReport::mean_link_utilization() const {
  if (!has_model || modeled_time <= 0.0 || link_busy.empty()) return 0.0;
  double total = 0.0;
  for (double b : link_busy) total += b;
  return total / (modeled_time * static_cast<double>(link_busy.size()));
}

std::string SolveReport::summary() const {
  char line[256];
  std::string out;

  const std::string pipe_str = pipelining_q == 0 ? "off" : std::to_string(pipelining_q);
  std::snprintf(line, sizeof line, "scenario : backend=%s ordering=%s m=%zu pipeline=%s\n",
                api::to_string(backend).c_str(), ord::spec_token(ordering).c_str(),
                eigenvalues.size(), pipe_str.c_str());
  out += line;

  std::snprintf(line, sizeof line, "solve    : %s after %d sweeps, %zu rotations\n",
                converged ? "converged" : "NOT CONVERGED", sweeps, rotations);
  out += line;

  if (!eigenvalues.empty()) {
    std::snprintf(line, sizeof line, "spectrum : [%.6g, %.6g]\n", eigenvalues.front(),
                  eigenvalues.back());
    out += line;
  }

  if (backend == Backend::MpiLite) {
    std::snprintf(line, sizeof line,
                  "traffic  : %llu messages, %llu elements, %llu barriers\n",
                  static_cast<unsigned long long>(comm.messages),
                  static_cast<unsigned long long>(comm.elements),
                  static_cast<unsigned long long>(comm.barriers));
    out += line;
  }

  if (has_model) {
    std::snprintf(line, sizeof line,
                  "model    : %.4g time units over %d sweeps (vote %.4g), "
                  "mean link utilization %.1f%%\n",
                  modeled_time, modeled_sweeps, vote_time, 100.0 * mean_link_utilization());
    out += line;
  }
  return out;
}

}  // namespace jmh::api
