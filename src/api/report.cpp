#include "api/report.hpp"

#include <algorithm>
#include <cstdio>

namespace jmh::api {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Ok: return "OK";
    case SolveStatus::DeadlineExceeded: return "DEADLINE_EXCEEDED";
    case SolveStatus::Cancelled: return "CANCELLED";
    case SolveStatus::TransportCorrupt: return "TRANSPORT_CORRUPT";
    case SolveStatus::Shed: return "SHED";
    case SolveStatus::InvalidInput: return "INVALID_INPUT";
    case SolveStatus::Internal: break;
  }
  return "INTERNAL";
}

double SolveReport::mean_link_utilization() const {
  if (!has_model || modeled_time <= 0.0 || link_busy.empty()) return 0.0;
  double total = 0.0;
  for (double b : link_busy) total += b;
  return total / (modeled_time * static_cast<double>(link_busy.size()));
}

std::string SolveReport::summary() const {
  char line[256];
  std::string out;

  // task=svd and task=pca share the SVD-shaped solution (sigma + U + V).
  const bool svd = task == Task::Svd || task == Task::Pca;
  const std::string pipe_str = pipelining_q == 0 ? "off" : std::to_string(pipelining_q);
  const std::string topk_str = topk > 0 ? " topk=" + std::to_string(topk) : "";
  // Problem geometry comes from the vector matrices, not the solution
  // vector: a topk report carries only k values but V still has m rows
  // (and wide svd/pca reports carry fewer sigmas than V rows).
  const std::size_t m_cols = eigenvectors.rows() > 0
                                 ? eigenvectors.rows()
                                 : (svd ? singular_values.size() : eigenvalues.size());
  if (svd)
    std::snprintf(line, sizeof line,
                  "scenario : task=%s backend=%s ordering=%s m=%zu rows=%zu pipeline=%s%s\n",
                  api::to_string(task).c_str(), api::to_string(backend).c_str(),
                  ord::spec_token(ordering).c_str(), m_cols, u.rows(), pipe_str.c_str(),
                  topk_str.c_str());
  else if (task == Task::Gevd)
    std::snprintf(line, sizeof line,
                  "scenario : task=gevd backend=%s ordering=%s m=%zu pipeline=%s%s\n",
                  api::to_string(backend).c_str(), ord::spec_token(ordering).c_str(),
                  m_cols, pipe_str.c_str(), topk_str.c_str());
  else
    std::snprintf(line, sizeof line, "scenario : backend=%s ordering=%s m=%zu pipeline=%s%s\n",
                  api::to_string(backend).c_str(), ord::spec_token(ordering).c_str(),
                  m_cols, pipe_str.c_str(), topk_str.c_str());
  out += line;

  std::snprintf(line, sizeof line, "solve    : %s after %d sweeps, %zu rotations\n",
                converged ? "converged" : "NOT CONVERGED", sweeps, rotations);
  out += line;

  if (status != SolveStatus::Ok) {
    std::snprintf(line, sizeof line, "status   : %s\n", api::to_string(status).c_str());
    out += line;
  }

  if (svd && !singular_values.empty()) {
    std::snprintf(line, sizeof line, "singulars: [%.6g, %.6g]\n", singular_values.back(),
                  singular_values.front());
    out += line;
    if (!explained_variance.empty()) {
      std::snprintf(line, sizeof line,
                    "variance : leading component explains %.1f%% of total\n",
                    100.0 * explained_variance.front());
      out += line;
    }
  } else if (!eigenvalues.empty()) {
    // Full evd reports are ascending; topk reports are |lambda|-descending.
    // minmax covers both orderings.
    const auto [lo, hi] = std::minmax_element(eigenvalues.begin(), eigenvalues.end());
    std::snprintf(line, sizeof line, "spectrum : [%.6g, %.6g]\n", *lo, *hi);
    out += line;
  }

  if (backend == Backend::MpiLite) {
    std::snprintf(line, sizeof line,
                  "traffic  : %llu messages, %llu elements, %llu barriers\n",
                  static_cast<unsigned long long>(comm.messages),
                  static_cast<unsigned long long>(comm.elements),
                  static_cast<unsigned long long>(comm.barriers));
    out += line;
  }

  if (has_model) {
    std::snprintf(line, sizeof line,
                  "model    : %.4g time units over %d sweeps (vote %.4g), "
                  "mean link utilization %.1f%%\n",
                  modeled_time, modeled_sweeps, vote_time, 100.0 * mean_link_utilization());
    out += line;
  }

  // Phase attribution, present whenever anything was attributed (plan_ns is
  // filled on every facade solve; sweep/comm/assembly need trace=1; on
  // multi-rank backends sweep/comm are summed over endpoints -- CPU, not
  // wall, time).
  const obs::PhaseTimings& t = timings;
  if (t.plan_ns + t.queue_ns + t.sweep_ns + t.comm_ns + t.assembly_ns + t.retries > 0) {
    const auto ms = [](std::uint64_t ns) { return static_cast<double>(ns) * 1e-6; };
    std::snprintf(line, sizeof line,
                  "timing   : plan %.3fms queue %.3fms sweep %.3fms "
                  "(comm %.3fms) assembly %.3fms, %llu retries\n",
                  ms(t.plan_ns), ms(t.queue_ns), ms(t.sweep_ns), ms(t.comm_ns),
                  ms(t.assembly_ns), static_cast<unsigned long long>(t.retries));
    out += line;
  }
  return out;
}

std::string report_to_json(const SolveReport& report) {
  char buf[128];
  std::string out = "{";
  auto field = [&](const char* key, const std::string& rendered, bool first = false) {
    if (!first) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += rendered;
  };
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  auto uint = [&](std::uint64_t v) { return std::to_string(v); };
  // Built by append, not operator+(const char*, string&&): the latter trips
  // a gcc 12 -Wrestrict false positive once inlined into callers.
  auto quoted = [&](const std::string& s) {
    std::string q;
    q.reserve(s.size() + 2);
    q += '"';
    q += s;
    q += '"';
    return q;
  };

  // The solution vector of the report's task (evd/gevd: ascending, or
  // |lambda|-descending when truncated; svd/pca: descending) -- min/max are
  // computed, not taken from the ends, so every ordering renders right.
  const bool svd = report.task == Task::Svd || report.task == Task::Pca;
  const std::vector<double>& spectrum = svd ? report.singular_values : report.eigenvalues;
  // Geometry from the vector matrices: a topk report's solution vector is
  // k long, but V still has m rows (and U `rows` rows for svd).
  const std::uint64_t m_cols =
      report.eigenvectors.rows() > 0 ? report.eigenvectors.rows() : spectrum.size();
  field("spec_version", std::to_string(kSpecVersion), /*first=*/true);
  field("task", quoted(api::to_string(report.task)));
  field("backend", quoted(api::to_string(report.backend)));
  field("ordering", quoted(ord::spec_token(report.ordering)));
  field("m", uint(m_cols));
  field("rows", uint(svd ? report.u.rows() : m_cols));
  field("pipeline_q", uint(report.pipelining_q));
  field("topk", std::to_string(report.topk));
  field("converged", report.converged ? "true" : "false");
  field("sweeps", std::to_string(report.sweeps));
  field("rotations", uint(report.rotations));
  const auto [spec_lo, spec_hi] =
      spectrum.empty() ? std::pair<double, double>{0.0, 0.0}
                       : [&] {
                           const auto [lo, hi] =
                               std::minmax_element(spectrum.begin(), spectrum.end());
                           return std::pair<double, double>{*lo, *hi};
                         }();
  field("spectrum_min", num(spec_lo));
  field("spectrum_max", num(spec_hi));
  // The leading explained-variance ratio (task=pca; 0 elsewhere) -- the one
  // PCA headline number, so machine consumers need no separate array field.
  field("explained_leading",
        num(report.explained_variance.empty() ? 0.0 : report.explained_variance.front()));
  field("comm_messages", uint(report.comm.messages));
  field("comm_elements", uint(report.comm.elements));
  field("comm_barriers", uint(report.comm.barriers));
  field("has_model", report.has_model ? "true" : "false");
  field("modeled_time", num(report.modeled_time));
  field("vote_time", num(report.vote_time));
  field("modeled_sweeps", std::to_string(report.modeled_sweeps));
  field("mean_link_utilization", num(report.mean_link_utilization()));
  field("plan_ns", uint(report.timings.plan_ns));
  field("queue_ns", uint(report.timings.queue_ns));
  field("sweep_ns", uint(report.timings.sweep_ns));
  field("comm_ns", uint(report.timings.comm_ns));
  field("assembly_ns", uint(report.timings.assembly_ns));
  field("retries", uint(report.timings.retries));
  field("status", quoted(api::to_string(report.status)));
  out += '}';
  return out;
}

}  // namespace jmh::api
