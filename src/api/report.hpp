// SolveReport: the one result type of the api facade. Subsumes the legacy
// per-executor results (solve::DistributedResult, solve::SimSolveResult):
// eigenpairs and convergence counters always, mpi_lite traffic counters for
// the MpiLite backend, and the modeled-time / link-utilization section for
// the Sim backend -- so callers switch backends without switching result
// handling, in the spirit of standardized benchmark reporting.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/spec.hpp"
#include "la/matrix.hpp"
#include "net/universe.hpp"
#include "obs/phase_timing.hpp"

namespace jmh::api {

/// The failure taxonomy of the solving stack. Every way a solve can end is
/// one of these; no failure mode escapes the svc boundary as an untyped
/// exception (SolverService wraps stragglers as Internal). The names are
/// the wire-stable strings the future rpc layer will serialize.
enum class SolveStatus : std::uint8_t {
  Ok = 0,
  DeadlineExceeded,  ///< deadline_ms elapsed; solve stopped at a sweep boundary
  Cancelled,         ///< caller or shutdown cancelled the token
  TransportCorrupt,  ///< wire checksum mismatch or failed allreduce (retryable)
  Shed,              ///< rejected before work: queue full or service shut down
  InvalidInput,      ///< bad spec, wrong shape, non-finite matrix entries
  Internal,          ///< anything else -- a bug, by definition
};

/// Canonical uppercase name ("DEADLINE_EXCEEDED", ...), as rendered into
/// report JSON and service logs.
std::string to_string(SolveStatus status);

/// The typed failure of the api/svc surface: carries its SolveStatus so
/// callers dispatch on taxonomy, not on what() substrings. Derives from
/// std::runtime_error, so legacy catch sites keep working.
class SolveError : public std::runtime_error {
 public:
  SolveError(SolveStatus status, const std::string& what)
      : std::runtime_error(to_string(status) + ": " + what), status_(status) {}
  SolveStatus status() const noexcept { return status_; }
  /// True for transient environment faults worth a bounded retry
  /// (SolverService's retry-with-backoff keys off this).
  bool retryable() const noexcept { return status_ == SolveStatus::TransportCorrupt; }

 private:
  SolveStatus status_;
};

struct SolveReport {
  // -- scenario echo ---------------------------------------------------------
  Task task = Task::Evd;
  Backend backend = Backend::Inline;
  ord::OrderingKind ordering = ord::OrderingKind::Degree4;
  /// Packets per block actually used by the run's exchange phases
  /// (0 = unpipelined; the Inline backend always executes unpipelined).
  std::uint64_t pipelining_q = 0;
  /// Truncated-solve order of the run (spec.topk): 0 = full solve; k > 0
  /// means the solution fields below carry only the leading k pairs.
  int topk = 0;

  // -- solution (every backend) ----------------------------------------------
  // task=evd|gevd fills eigenvalues + eigenvectors (gevd vectors are
  // B-orthonormal); task=svd|pca fills singular_values + u and stores the
  // right singular vectors V in `eigenvectors` (both core paths accumulate
  // the same rotation matrix -- for the eigenproblem its columns are the
  // eigenvectors, for the SVD they are V; for task=pca the V columns are
  // the principal axes). The unused vectors stay empty.
  std::vector<double> eigenvalues;  ///< ascending (task=evd|gevd)
  la::Matrix eigenvectors;          ///< evd/gevd: eigenvector k | svd/pca: right vector v_k
  std::vector<double> singular_values;  ///< descending (task=svd|pca)
  la::Matrix u;                         ///< left singular vectors (task=svd|pca)
  /// task=pca only: sigma_k^2 / sum_j sigma_j^2 per component, descending
  /// with singular_values; empty for every other task.
  std::vector<double> explained_variance;
  int sweeps = 0;                   ///< sweeps that performed >= 1 rotation
  bool converged = false;
  std::size_t rotations = 0;
  /// Ok on every report returned from a solve (failures throw SolveError
  /// instead); carried here so machine consumers of report_to_json -- and
  /// the service driver, which synthesizes degraded-job reports -- share
  /// one status vocabulary.
  SolveStatus status = SolveStatus::Ok;

  // -- traffic (MpiLite backend; zeros otherwise) ----------------------------
  net::CommStats comm;

  // -- phase timing ----------------------------------------------------------
  /// Where the wall time went (obs/phase_timing.hpp). plan_ns always;
  /// queue_ns/retries for service jobs; sweep_ns/comm_ns/assembly_ns only
  /// when the spec had trace=1 (unarmed solves pay no attribution clocks).
  obs::PhaseTimings timings;

  // -- modeled time (Sim backend) --------------------------------------------
  bool has_model = false;     ///< true iff the fields below are meaningful
  double modeled_time = 0.0;  ///< total modeled communication time
  double vote_time = 0.0;     ///< part spent in convergence allreduces
  int modeled_sweeps = 0;     ///< sweeps charged (incl. the final all-skip one)
  /// Busy time of each directed channel, indexed node * d + link.
  std::vector<double> link_busy;

  /// Mean busy fraction over channels and the modeled makespan (0 without a
  /// model section).
  double mean_link_utilization() const;

  /// Human-readable multi-line rendering (scenario, convergence, traffic,
  /// and -- when present -- the modeled-time section).
  std::string summary() const;
};

/// One-line JSON rendering of a report, for machine consumers (the CLI's
/// --json mode, the service driver's per-job output). The field set and
/// order are STABLE -- pinned by tests/test_api_facade.cpp -- and every key
/// is always present (traffic/model fields are zero outside their backend):
///   spec_version, task, backend, ordering, m, rows, pipeline_q, topk,
///   converged, sweeps, rotations, spectrum_min, spectrum_max,
///   explained_leading, comm_messages, comm_elements, comm_barriers,
///   has_model, modeled_time, vote_time, modeled_sweeps,
///   mean_link_utilization, plan_ns, queue_ns, sweep_ns, comm_ns,
///   assembly_ns, retries, status
/// spec_version comes FIRST (api::kSpecVersion: consumers dispatch on it
/// before reading anything else).
/// For task=svd|pca, m/rows are the input shape (wide inputs included:
/// the vector matrices carry the caller's orientation after assembly) and
/// spectrum_min/spectrum_max the extreme singular values.
/// explained_leading is the leading component's explained-variance ratio
/// for task=pca, 0 for every other task.
/// Doubles print as %.17g (exact round trip); no whitespace, no newline.
std::string report_to_json(const SolveReport& report);

}  // namespace jmh::api
