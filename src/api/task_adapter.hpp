// TaskAdapter: the per-task pre/post transforms around the task-agnostic
// sweep core.
//
// Every Task runs the SAME distributed machinery -- one-sided Jacobi
// orthogonalizes the columns of B = A_core * V over a hypercube of blocks --
// and differs only at the edges:
//
//         validate(spec)            plan-time: task-specific spec legality
//         core_geometry(spec)       plan-time: the shape the CORE solves
//   a --> check_input(spec, a)      solve-time: input-shape REQUIREs
//     --> prepare(spec, a)          pre-transform: the matrix the core sees
//     --> [sweep core: SolvePlan::solve_prepared, backend-dispatched]
//     --> assemble(spec, prep, report)   post-transform on the core result
//
// The core's output (a SolveReport carrying the raw eigen/svd solution of
// the PREPARED matrix) plays the CoreResult role: assemble edits it in
// place into the caller-facing report. Adapters are stateless singletons --
// adapter_for(Task) returns a process-lifetime reference -- so SolvePlan
// stays immutable and thread-safe.
//
// The four registered adapters:
//   evd   identity prepare (or Gershgorin shift: solve A + sigma*I, subtract
//         sigma back in assemble)
//   svd   tall/square inputs pass through untouched; a wide input (rows < m)
//         is solved as its TRANSPOSE and U/V are swapped back in assemble
//         (A = U S V^T <=> A^T = V S U^T)
//   pca   center the columns of the data matrix, SVD the centered copy
//         (transposing first when wide), report explained-variance ratios
//   gevd  A x = lambda B x with B SPD: B = la::random_spd(m, rng(bseed)),
//         B = L L^T, core solves C = L^{-1} A L^{-T}; assemble back-
//         substitutes x = L^{-T} y (B-orthonormal eigenvectors)
//
// Bit-parity contract: for the pre-existing scenarios (task=evd, tall/square
// task=svd) prepare returns the IDENTITY transform -- an empty matrix, so
// the core consumes the caller's matrix by reference with no copy -- and
// assemble is a no-op. Results are bit-for-bit what the pre-adapter facade
// produced (pinned by the transport/svd/topk parity suites).
#pragma once

#include <vector>

#include "api/report.hpp"
#include "api/spec.hpp"
#include "la/matrix.hpp"

namespace jmh::api {

/// Which of the core's two extraction paths a task consumes: the symmetric
/// eigensolution (lambda_k = v_k . b_k) or the SVD (sigma_k = ||b_k||,
/// u_k = b_k / sigma_k). This is the ONLY task-dependence inside
/// solve_prepared; everything else lives in the adapter edges.
enum class CoreKind { Eigen, Svd };

/// The shape of the matrix the CORE solves (post prepare), which is what
/// the block layout partitions and the pipelining optimizer models -- NOT
/// necessarily the caller's input shape (wide svd/pca solve the transpose).
struct CoreGeometry {
  std::size_t cols = 0;  ///< columns the blocks partition (min(rows, m))
  std::size_t rows = 0;  ///< core input rows
};

/// Everything prepare computed that assemble (or the core) needs later.
/// `a` empty (rows() == 0) means the identity pre-transform: the core
/// consumes the caller's matrix directly -- no copy, and bit-parity with
/// the pre-adapter facade is structural rather than asserted.
struct PreparedProblem {
  la::Matrix a;                    ///< core input; empty = use the caller's matrix
  double shift = 0.0;              ///< evd: Gershgorin sigma to subtract back
  std::vector<double> col_means;   ///< pca: removed column means
  la::Matrix chol_l;               ///< gevd: lower Cholesky factor of B
};

class TaskAdapter {
 public:
  virtual ~TaskAdapter() = default;

  virtual Task task() const noexcept = 0;

  /// Which core extraction this task consumes (fixed per task).
  virtual CoreKind core_kind() const noexcept = 0;

  /// Plan-time spec legality beyond the global checks (throws
  /// std::invalid_argument via JMH_REQUIRE). Solver::plan calls this for
  /// every spec, parsed or programmatic.
  virtual void validate(const SolverSpec& spec) const = 0;

  /// The core problem shape for @p spec: what the BlockLayout partitions,
  /// what the m >= 2^(d+1) gate applies to, and what the pipelining
  /// optimizer's ProblemParams describe.
  virtual CoreGeometry core_geometry(const SolverSpec& spec) const = 0;

  /// Solve-time input-shape check against the plan's spec (throws
  /// std::invalid_argument on mismatch -- never a partial solve).
  virtual void check_input(const SolverSpec& spec, const la::Matrix& a) const = 0;

  /// The pre-transform: builds the matrix the core solves plus whatever
  /// assemble needs to undo it. Identity transforms return an empty
  /// PreparedProblem::a (see above).
  virtual PreparedProblem prepare(const SolverSpec& spec, const la::Matrix& a) const = 0;

  /// The post-transform: edits the core result (the raw solution of the
  /// prepared matrix, living in @p report) into the caller-facing report.
  virtual void assemble(const SolverSpec& spec, const PreparedProblem& prep,
                        SolveReport& report) const = 0;
};

/// The registry: the process-lifetime adapter for @p task. Total over the
/// Task enum -- adding a Task without registering an adapter is a
/// compile-visible switch hole.
const TaskAdapter& adapter_for(Task task);

/// task=gevd's B-side matrix for @p spec, reconstructed from bseed alone:
/// la::random_spd(spec.m, Xoshiro256(spec.bseed)). Exposed so the CLI's
/// --check path and the parity tests whiten against the identical B the
/// solve used.
la::Matrix gevd_b_matrix(const SolverSpec& spec);

}  // namespace jmh::api
