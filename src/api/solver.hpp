// The api facade: one front door for every execution substrate.
//
//   SolverSpec spec = SolverSpec::parse("backend=sim,ordering=minalpha,"
//                                       "m=64,d=3,pipeline=auto");
//   SolvePlan plan = Solver::plan(spec);   // expensive setup, done once
//   SolveReport r  = plan.solve(a);        // cheap per matrix
//
// Solver::plan compiles a SolverSpec into an immutable SolvePlan: the
// ordering's exchange sequences (for MinAlpha this is the paper's
// backtracking search), the sweep phase skeleton, the column-block layout,
// and -- for PipeliningPolicy::Auto -- the optimizer-chosen pipelining
// degree (pipe::find_optimal_sweep_q) are all computed here and amortized
// over every subsequent solve. A SolvePlan has no mutable state: concurrent
// plan.solve calls from different threads are safe (each run builds its own
// Transport), which is the hot-path shape the ROADMAP's many-scenario
// serving target needs.
//
// The legacy free functions (solve_inline / solve_mpi / solve_mpi_pipelined
// / solve_sim) survive as deprecated thin wrappers that build a one-shot
// plan and delegate here.
#pragma once

#include <vector>

#include "api/report.hpp"
#include "api/spec.hpp"
#include "api/task_adapter.hpp"
#include "common/cancel.hpp"
#include "solve/block_layout.hpp"

namespace jmh::api {

/// Per-call knobs a caller may vary across solves of one plan (everything
/// in the spec is part of the plan's identity; these are not).
struct SolveOverrides {
  /// Caller-supplied cancellation handle. When the spec also names a
  /// deadline_ms, the effective token is this one with the deadline chained
  /// under it -- whichever fires first wins.
  common::CancelToken cancel;
  /// Redraws the spec's fault schedule (solve::FaultPlan::attempt); the
  /// service's retry-with-backoff bumps it so a retry is not doomed to
  /// replay the identical fault.
  std::uint64_t fault_attempt = 0;
};

/// Immutable compiled form of a SolverSpec. Create via Solver::plan.
class SolvePlan {
 public:
  const SolverSpec& spec() const noexcept { return spec_; }
  const ord::JacobiOrdering& ordering() const noexcept { return ordering_; }
  /// Partitions the CORE columns (TaskAdapter::core_geometry(spec).cols =
  /// min(rows, m) -- a wide input is solved as its transpose).
  const solve::BlockLayout& layout() const noexcept { return layout_; }

  /// Resolved exchange-phase packetization: 0 for Off, spec().q for Fixed,
  /// the pipe::find_optimal_sweep_q degree for Auto.
  std::uint64_t pipelining_q() const noexcept { return q_; }

  /// For Auto: the optimizer's modeled per-sweep exchange communication
  /// time at pipelining_q() under spec().machine; 0 otherwise.
  double planned_sweep_comm_cost() const noexcept { return planned_cost_; }

  /// Runs the solve on spec().backend through the Transport machinery,
  /// wrapped in the task's adapter (api/task_adapter.hpp): prepare builds
  /// the core input, the backend-dispatched sweep core solves it, assemble
  /// turns the core result into the caller-facing report. task=evd|gevd:
  /// @p a must be square of order spec().m. task=svd|pca: @p a must be
  /// spec().input_rows() x spec().m (tall, square or wide). Thread-safe.
  ///
  /// Failures are typed: deadline/cancellation/corruption surface as
  /// SolveError carrying the matching SolveStatus (never a partial report);
  /// shape and spec problems stay std::invalid_argument.
  SolveReport solve(const la::Matrix& a) const;

  /// solve() with per-call overrides (cancellation token, fault-schedule
  /// attempt). solve(a) is exactly solve(a, {}).
  SolveReport solve(const la::Matrix& a, const SolveOverrides& overrides) const;

  /// Solves several matrices with one plan (the amortization the facade
  /// exists for). Runs on the svc layer's transient worker pool, so batch
  /// throughput scales with cores; each report is bit-identical to a
  /// sequential solve() of the same matrix, and reports are returned in
  /// input order.
  std::vector<SolveReport> solve_batch(const std::vector<la::Matrix>& as) const;

 private:
  friend class Solver;
  SolvePlan(SolverSpec spec, ord::JacobiOrdering ordering);

  /// The backend dispatch over the CORE matrix (the task adapter's
  /// pre-transforms -- shift, transpose, centering, whitening -- already
  /// applied by solve()).
  SolveReport solve_prepared(const la::Matrix& a, const solve::SolveOptions& opts) const;

  SolverSpec spec_;
  /// The task's stateless adapter singleton (never null; owned by the
  /// adapter_for registry, so copies of the plan stay cheap).
  const TaskAdapter* adapter_;
  ord::JacobiOrdering ordering_;
  solve::BlockLayout layout_;
  std::uint64_t q_ = 0;
  double planned_cost_ = 0.0;
  /// Wall time of plan compilation, echoed into every report's
  /// timings.plan_ns (the plan is the amortized cost a caller should see
  /// attributed, however many solves it serves).
  std::uint64_t plan_ns_ = 0;
};

class Solver {
 public:
  /// Compiles @p spec into a reusable plan. Validates the spec (d >= 1,
  /// at least one column per block, ordering != Custom).
  static SolvePlan plan(const SolverSpec& spec);

  /// Same, around a prebuilt ordering -- the route for Custom orderings
  /// (and for callers that already paid the ordering construction).
  /// Requires ordering.kind() == spec.ordering and
  /// ordering.dimension() == spec.d.
  static SolvePlan plan(const SolverSpec& spec, ord::JacobiOrdering ordering);

  /// One-shot convenience: plan + solve. Prefer a reused plan on hot paths.
  static SolveReport solve(const SolverSpec& spec, const la::Matrix& a);
};

}  // namespace jmh::api
