#include "api/solver.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "api/task_adapter.hpp"
#include "common/assert.hpp"
#include "exec/thread_pool.hpp"
#include "obs/trace.hpp"
#include "pipe/optimizer.hpp"
#include "solve/fault_injection.hpp"
#include "solve/inline_transport.hpp"
#include "solve/mpi_transport.hpp"
#include "solve/parallel_jacobi.hpp"
#include "solve/sim_transport.hpp"
#include "solve/sweep_engine.hpp"
// Sanctioned upward include (svc sits above api in the layer graph, see
// ARCHITECTURE.md): solve_batch delegates to the service layer's pool so
// batch solves run in parallel while staying bit-identical per matrix.
#include "svc/service.hpp"

namespace jmh::api {

namespace {

/// Moves the executor-agnostic solution fields into a report.
void fill_solution(SolveReport& report, solve::DistributedResult&& dr) {
  report.eigenvalues = std::move(dr.eigenvalues);
  report.eigenvectors = std::move(dr.eigenvectors);
  report.sweeps = dr.sweeps;
  report.converged = dr.converged;
  report.rotations = dr.rotations;
  report.comm = dr.comm;
}

/// Same for a task=svd run: V rides in the eigenvectors slot (see
/// SolveReport), sigma and U in their own fields.
void fill_svd_solution(SolveReport& report, solve::SvdSolveResult&& sr) {
  report.singular_values = std::move(sr.singular_values);
  report.u = std::move(sr.u);
  report.eigenvectors = std::move(sr.v);
  report.sweeps = sr.sweeps;
  report.converged = sr.converged;
  report.rotations = sr.rotations;
  report.comm = sr.comm;
}

}  // namespace

SolvePlan::SolvePlan(SolverSpec spec, ord::JacobiOrdering ordering)
    : spec_(spec),
      adapter_(&adapter_for(spec.task)),
      ordering_(std::move(ordering)),
      // The blocks partition what the CORE solves: min(rows, m) columns (a
      // wide svd/pca input runs as its transpose).
      layout_(adapter_->core_geometry(spec).cols, spec.d) {
  JMH_REQUIRE(ordering_.dimension() == spec_.d, "ordering dimension must match spec.d");
  JMH_REQUIRE(ordering_.kind() == spec_.ordering, "ordering kind must match spec.ordering");
  // A traced spec records plan compilation as a span; plan_ns_ itself is
  // measured unconditionally (two clock reads amortized over every solve).
  const obs::ArmScope arm(spec_.trace);
  const obs::SpanScope plan_span("plan", obs::Category::kPlan,
                                 static_cast<std::uint64_t>(spec_.m));
  const std::uint64_t plan_t0 = obs::trace_now_ns();
  // threads= is an execution knob, not part of the numerical scenario:
  // apply it best-effort (an active pool keeps its width) and move on.
  if (spec_.threads > 0 && exec::ThreadPool::enabled())
    exec::ThreadPool::global().ensure_workers(spec_.threads);
  switch (spec_.pipelining) {
    case PipeliningPolicy::Off:
      q_ = 0;
      break;
    case PipeliningPolicy::Fixed:
      JMH_REQUIRE(spec_.q >= 1, "PipeliningPolicy::Fixed needs q >= 1");
      q_ = spec_.q;
      break;
    case PipeliningPolicy::Auto: {
      // Qmax = columns a block can be split into; uneven layouts bound by
      // the smallest block so no phase degenerates to empty packets.
      std::uint64_t q_max = layout_.block_size(0);
      for (ord::BlockId b = 1; b < layout_.num_blocks(); ++b)
        q_max = std::min<std::uint64_t>(q_max, layout_.block_size(b));
      q_max = std::max<std::uint64_t>(1, q_max);
      // Rows-aware payload: a rectangular transition moves rows + m elements
      // per column, so the optimal q shifts with the aspect ratio. Modeled
      // on the CORE shape (a wide input transposes before the sweeps).
      const CoreGeometry geo = adapter_->core_geometry(spec_);
      pipe::ProblemParams prob;
      prob.d = spec_.d;
      prob.m = static_cast<double>(geo.cols);
      prob.rows = geo.rows == geo.cols ? 0.0 : static_cast<double>(geo.rows);
      const pipe::OptimalQ best =
          pipe::find_optimal_sweep_q(ordering_, prob, spec_.machine, q_max);
      q_ = best.q;
      planned_cost_ = best.cost;
      break;
    }
  }
  plan_ns_ = obs::trace_now_ns() - plan_t0;
}

SolveReport SolvePlan::solve_prepared(const la::Matrix& a,
                                      const solve::SolveOptions& opts) const {
  SolveReport report;
  report.task = spec_.task;
  report.backend = spec_.backend;
  report.ordering = spec_.ordering;
  report.topk = spec_.topk;

  // The sweep protocol is task-agnostic (it orthogonalizes columns either
  // way); only the extraction from the final blocks differs, and which of
  // the two extractions a task consumes is the adapter's CoreKind.
  const bool svd = adapter_->core_kind() == CoreKind::Svd;
  const auto assemble = [&](std::vector<solve::ColumnBlock> blocks,
                            const solve::EngineResult& er) {
    const obs::SpanScope span("assemble", obs::Category::kAssembly,
                              static_cast<std::uint64_t>(a.cols()),
                              opts.timing != nullptr ? &opts.timing->assembly_ns : nullptr);
    if (svd)
      fill_svd_solution(report, solve::assemble_svd_result(std::move(blocks), a.rows(),
                                                           a.cols(), er.sweeps, er.converged,
                                                           er.rotations, er.leading));
    else
      fill_solution(report, solve::assemble_result(std::move(blocks), a.rows(), er.sweeps,
                                                   er.converged, er.rotations, er.leading));
  };

  // Single-owner backends wrap their transport in the fault decorator only
  // when a schedule is armed (mpi wraps per rank inside run_mpi_protocol);
  // a non-Ok engine status aborts before assembly -- partial blocks never
  // become a report.
  const auto run_engine = [&](solve::Transport& transport) {
    solve::EngineResult er;
    if (opts.faults.enabled()) {
      solve::FaultInjectingTransport faulty(transport, opts.faults);
      er = run_sweep_protocol(faulty, ordering_, opts);
    } else {
      er = run_sweep_protocol(transport, ordering_, opts);
    }
    if (er.status != solve::RunStatus::Ok) throw solve::SolveInterrupted(er.status);
    return er;
  };

  switch (spec_.backend) {
    case Backend::Inline: {
      // Pipelining reschedules messages; with no messages to schedule the
      // inline substrate always executes unpipelined.
      solve::InlineTransport transport(a, spec_.d);
      const solve::EngineResult er = run_engine(transport);
      assemble(transport.collect_blocks(), er);
      break;
    }
    case Backend::MpiLite: {
      report.pipelining_q = q_;
      if (svd)
        fill_svd_solution(report, solve::solve_mpi_svd_like(a, ordering_, opts, q_));
      else
        fill_solution(report, solve::solve_mpi_like(a, ordering_, opts, q_));
      break;
    }
    case Backend::Sim: {
      report.pipelining_q = q_;
      solve::SimSolveOptions sopts;
      static_cast<solve::SolveOptions&>(sopts) = opts;
      sopts.machine = spec_.machine;
      sopts.overlap_startup = spec_.overlap_startup;
      sopts.pipelined_q = q_;
      solve::SimTransport transport(a, spec_.d, sopts);
      const solve::EngineResult er = run_engine(transport);
      assemble(transport.collect_blocks(), er);
      report.has_model = true;
      report.modeled_time = transport.modeled_time();
      report.vote_time = transport.vote_time();
      report.modeled_sweeps = transport.modeled_sweeps();
      report.link_busy = transport.clock().link_busy;
      break;
    }
  }
  return report;
}

SolveReport SolvePlan::solve(const la::Matrix& a) const { return solve(a, {}); }

SolveReport SolvePlan::solve(const la::Matrix& a, const SolveOverrides& overrides) const {
  adapter_->check_input(spec_, a);

  solve::SolveOptions opts = spec_.solve_options();
  opts.gershgorin_shift = false;  // the evd adapter's prepare unwraps it
  opts.cancel = overrides.cancel;
  // The deadline is relative to THIS call, chained under any caller token:
  // whichever fires first decides the status.
  if (spec_.deadline_ms > 0)
    opts.cancel = opts.cancel.with_timeout(std::chrono::milliseconds(spec_.deadline_ms));
  opts.faults.attempt = overrides.fault_attempt;

  // trace=1 arms the process recorder for this call and attaches the phase
  // sink; trace=0 leaves opts.timing null so the hot path pays no clock
  // reads (the bit-identical contract of the spec grammar).
  const obs::ArmScope arm(spec_.trace);
  obs::SolveTimingSink sink;
  if (spec_.trace) opts.timing = &sink;
  const auto finalize = [&](SolveReport& report) {
    report.timings.plan_ns = plan_ns_;
    report.timings.sweep_ns = sink.sweep_ns.load(std::memory_order_relaxed);
    report.timings.comm_ns = sink.comm_ns.load(std::memory_order_relaxed);
    report.timings.assembly_ns = sink.assembly_ns.load(std::memory_order_relaxed);
  };

  // Map the transport layer's typed failures onto the api taxonomy here, at
  // the one place every backend funnels through; anything still escaping as
  // an untyped exception past this point is a bug (svc wraps it Internal).
  try {
    // The adapter sandwich: prepare -> core -> assemble. An identity
    // prepare returns an empty matrix and the core consumes the caller's
    // input by reference -- no copy, and evd/tall-svd solves run the exact
    // pre-adapter path.
    const PreparedProblem prep = adapter_->prepare(spec_, a);
    const la::Matrix& core_a = prep.a.rows() == 0 ? a : prep.a;
    SolveReport report = solve_prepared(core_a, opts);
    adapter_->assemble(spec_, prep, report);
    finalize(report);
    return report;
  } catch (const solve::TransportCorrupt& e) {
    throw SolveError(SolveStatus::TransportCorrupt, e.what());
  } catch (const solve::SolveInterrupted& e) {
    throw SolveError(e.status() == solve::RunStatus::DeadlineExceeded
                         ? SolveStatus::DeadlineExceeded
                         : SolveStatus::Cancelled,
                     e.what());
  }
}

std::vector<SolveReport> SolvePlan::solve_batch(const std::vector<la::Matrix>& as) const {
  return svc::solve_batch_parallel(*this, as);
}

SolvePlan Solver::plan(const SolverSpec& spec) {
  JMH_REQUIRE(spec.ordering != ord::OrderingKind::Custom,
              "custom orderings carry their own sequences; use plan(spec, ordering)");
  return plan(spec, ord::JacobiOrdering(spec.ordering, spec.d));
}

SolvePlan Solver::plan(const SolverSpec& spec, ord::JacobiOrdering ordering) {
  JMH_REQUIRE(spec.d >= 1, "hypercube dimension must be >= 1");
  // Task-specific legality (shapes, bseed, per-task knob bans) lives with
  // the adapter; the gates below are task-agnostic and phrased against the
  // CORE geometry (wide inputs solve their transpose, so the short side is
  // what the blocks partition and topk truncates).
  const TaskAdapter& adapter = adapter_for(spec.task);
  adapter.validate(spec);
  const CoreGeometry geo = adapter.core_geometry(spec);
  JMH_REQUIRE(geo.cols >= (std::size_t{2} << spec.d),
              "need at least one column per block (min(rows, m) >= 2^(d+1))");
  JMH_REQUIRE(spec.topk >= 0, "topk must be non-negative");
  if (spec.topk > 0) {
    JMH_REQUIRE(static_cast<std::size_t>(spec.topk) <= geo.cols,
                "topk exceeds the core column count (min(rows, m))");
    JMH_REQUIRE(spec.stop_rule == solve::StopRule::NoRotations,
                "topk needs stop=norot (per-column activity has no off(A) analogue)");
    JMH_REQUIRE(!spec.gershgorin_shift,
                "topk needs shift=0 (the shift reorders the spectrum the ranking tracks)");
  }
  return SolvePlan(spec, std::move(ordering));
}

SolveReport Solver::solve(const SolverSpec& spec, const la::Matrix& a) {
  return plan(spec).solve(a);
}

}  // namespace jmh::api
