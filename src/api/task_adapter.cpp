#include "api/task_adapter.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "la/pca.hpp"
#include "la/shift.hpp"
#include "la/sym_gen.hpp"

namespace jmh::api {

namespace {

/// True when the spec names a wide rectangular input (rows < m): the core
/// solves the transpose, and assemble swaps the singular-vector roles.
bool is_wide(const SolverSpec& spec) { return spec.rows != 0 && spec.rows < spec.m; }

// -- evd ---------------------------------------------------------------------

class EvdAdapter final : public TaskAdapter {
 public:
  Task task() const noexcept override { return Task::Evd; }
  CoreKind core_kind() const noexcept override { return CoreKind::Eigen; }

  void validate(const SolverSpec& spec) const override {
    JMH_REQUIRE(spec.rows == 0 || spec.rows == spec.m,
                "rows != m needs task=svd|pca (the eigenproblem input is square)");
  }

  CoreGeometry core_geometry(const SolverSpec& spec) const override {
    return {spec.m, spec.m};
  }

  void check_input(const SolverSpec& spec, const la::Matrix& a) const override {
    JMH_REQUIRE(a.is_square(), "eigenproblem needs a square matrix");
    JMH_REQUIRE(a.rows() == spec.m, "matrix order must match the plan's spec.m");
  }

  PreparedProblem prepare(const SolverSpec& spec, const la::Matrix& a) const override {
    if (!spec.gershgorin_shift) return {};  // identity: the core sees the input
    // Solve A + sigma*I (positive semidefinite by Gershgorin); assemble
    // shifts the spectrum back. Same operation order as the pre-adapter
    // facade, so shifted solves stay bit-identical.
    PreparedProblem prep;
    prep.shift = la::gershgorin_radius(a);
    prep.a = la::add_diagonal_shift(a, prep.shift);
    return prep;
  }

  void assemble(const SolverSpec& spec, const PreparedProblem& prep,
                SolveReport& report) const override {
    if (!spec.gershgorin_shift) return;
    for (double& ev : report.eigenvalues) ev -= prep.shift;
  }
};

// -- svd ---------------------------------------------------------------------

class SvdAdapter final : public TaskAdapter {
 public:
  Task task() const noexcept override { return Task::Svd; }
  CoreKind core_kind() const noexcept override { return CoreKind::Svd; }

  void validate(const SolverSpec& spec) const override {
    JMH_REQUIRE(!spec.gershgorin_shift, "shift=1 needs task=evd");
  }

  CoreGeometry core_geometry(const SolverSpec& spec) const override {
    // The blocks partition the SHORT side: a wide input is solved as its
    // (tall) transpose, so its m columns become the core's rows.
    if (is_wide(spec)) return {spec.rows, spec.m};
    return {spec.m, spec.input_rows()};
  }

  void check_input(const SolverSpec& spec, const la::Matrix& a) const override {
    JMH_REQUIRE(a.cols() == spec.m, "column count must match the plan's spec.m");
    JMH_REQUIRE(a.rows() == spec.input_rows(),
                "row count must match the plan's spec rows (rows=, or m when unset)");
  }

  PreparedProblem prepare(const SolverSpec& spec, const la::Matrix& a) const override {
    if (!is_wide(spec)) return {};  // tall/square runs the caller's matrix
    PreparedProblem prep;
    prep.a = la::transposed(a);
    return prep;
  }

  void assemble(const SolverSpec& spec, const PreparedProblem&,
                SolveReport& report) const override {
    // A = U S V^T <=> A^T = V S U^T: the core factored A^T, so its U is our
    // V and vice versa. sigma is shared.
    if (is_wide(spec)) std::swap(report.u, report.eigenvectors);
  }
};

// -- pca ---------------------------------------------------------------------

class PcaAdapter final : public TaskAdapter {
 public:
  Task task() const noexcept override { return Task::Pca; }
  CoreKind core_kind() const noexcept override { return CoreKind::Svd; }

  void validate(const SolverSpec& spec) const override {
    JMH_REQUIRE(!spec.gershgorin_shift, "shift=1 needs task=evd");
    JMH_REQUIRE(spec.topk == 0,
                "topk needs task=evd|svd (pca assembles over the full spectrum)");
  }

  CoreGeometry core_geometry(const SolverSpec& spec) const override {
    if (is_wide(spec)) return {spec.rows, spec.m};
    return {spec.m, spec.input_rows()};
  }

  void check_input(const SolverSpec& spec, const la::Matrix& a) const override {
    JMH_REQUIRE(a.cols() == spec.m, "column count must match the plan's spec.m");
    JMH_REQUIRE(a.rows() == spec.input_rows(),
                "row count must match the plan's spec rows (rows=, or m when unset)");
  }

  PreparedProblem prepare(const SolverSpec& spec, const la::Matrix& a) const override {
    // PCA is the SVD of the column-centered data matrix. Centering always
    // happens in the caller's orientation (columns = variables); only then
    // does a wide input flip to its transpose for the core.
    PreparedProblem prep;
    la::Matrix centered = a;
    prep.col_means = la::center_columns(centered);
    prep.a = is_wide(spec) ? la::transposed(centered) : std::move(centered);
    return prep;
  }

  void assemble(const SolverSpec& spec, const PreparedProblem&,
                SolveReport& report) const override {
    if (is_wide(spec)) std::swap(report.u, report.eigenvectors);
    report.explained_variance = la::explained_variance_ratios(report.singular_values);
  }
};

// -- gevd --------------------------------------------------------------------

class GevdAdapter final : public TaskAdapter {
 public:
  Task task() const noexcept override { return Task::Gevd; }
  CoreKind core_kind() const noexcept override { return CoreKind::Eigen; }

  void validate(const SolverSpec& spec) const override {
    JMH_REQUIRE(spec.rows == 0 || spec.rows == spec.m,
                "rows != m needs task=svd|pca (the generalized eigenproblem input is square)");
    JMH_REQUIRE(spec.bseed >= 1,
                "task=gevd needs bseed >= 1 (names the deterministic SPD B-side)");
    JMH_REQUIRE(!spec.gershgorin_shift, "shift=1 needs task=evd");
    JMH_REQUIRE(spec.topk == 0,
                "topk needs task=evd|svd (gevd assembles over the full spectrum)");
  }

  CoreGeometry core_geometry(const SolverSpec& spec) const override {
    return {spec.m, spec.m};
  }

  void check_input(const SolverSpec& spec, const la::Matrix& a) const override {
    JMH_REQUIRE(a.is_square(), "generalized eigenproblem needs a square matrix");
    JMH_REQUIRE(a.rows() == spec.m, "matrix order must match the plan's spec.m");
  }

  PreparedProblem prepare(const SolverSpec& spec, const la::Matrix& a) const override {
    // A x = lambda B x with B = L L^T reduces to the standard symmetric
    // problem C y = lambda y, C = L^{-1} A L^{-T}, x = L^{-T} y. B is
    // reconstructed from bseed so every backend whitens identically.
    PreparedProblem prep;
    la::Matrix l = la::cholesky_factor(gevd_b_matrix(spec));
    prep.a = la::whiten_symmetric(a, l);
    prep.chol_l = std::move(l);
    return prep;
  }

  void assemble(const SolverSpec&, const PreparedProblem& prep,
                SolveReport& report) const override {
    // Back-substitute the whitened eigenvectors: x_k = L^{-T} y_k. The
    // columns are B-orthonormal (x_i^T B x_j = delta_ij), not orthonormal.
    report.eigenvectors = la::unwhiten_columns(prep.chol_l, report.eigenvectors);
  }
};

}  // namespace

const TaskAdapter& adapter_for(Task task) {
  static const EvdAdapter evd;
  static const SvdAdapter svd;
  static const PcaAdapter pca;
  static const GevdAdapter gevd;
  switch (task) {
    case Task::Evd: return evd;
    case Task::Svd: return svd;
    case Task::Pca: return pca;
    case Task::Gevd: return gevd;
  }
  JMH_CHECK(false, "unknown Task");
  return evd;  // unreachable
}

la::Matrix gevd_b_matrix(const SolverSpec& spec) {
  Xoshiro256 rng(spec.bseed);
  return la::random_spd(spec.m, rng);
}

}  // namespace jmh::api
