#include "api/spec.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace jmh::api {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("SolverSpec::parse: " + what);
}

std::string lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

// %.17g round-trips any double exactly through strtod.
std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::uint64_t parse_uint(std::string_view key, const std::string& value) {
  // The first character must be a digit: strtoull itself accepts a leading
  // '+' (and leading whitespace), which would let "m=+5" and "m=5" name the
  // same scenario and break parse(to_string(spec)) as the canonical fixed
  // point.
  if (value.empty() || !std::isdigit(static_cast<unsigned char>(value[0])))
    fail("key '" + std::string(key) + "' needs a non-negative integer, got '" + value + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size())
    fail("key '" + std::string(key) + "' needs a non-negative integer, got '" + value + "'");
  return v;
}

/// parse_uint with an inclusive upper bound, for values narrowed into int
/// fields: without the check, d=4294967297 would silently truncate to d=1.
std::uint64_t parse_uint_bounded(std::string_view key, const std::string& value,
                                 std::uint64_t max) {
  const std::uint64_t v = parse_uint(key, value);
  if (v > max)
    fail("key '" + std::string(key) + "' value " + value + " exceeds the maximum " +
         std::to_string(max));
  return v;
}

double parse_double(std::string_view key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size() || value.empty())
    fail("key '" + std::string(key) + "' needs a number, got '" + value + "'");
  // NaN compares false against every bound below, so "threshold=nan" would
  // sail through its sign check and poison the convergence math; Inf
  // likewise poisons the cost model. Reject both, naming the key.
  if (!std::isfinite(v))
    fail("key '" + std::string(key) + "' needs a finite number, got '" + value + "'");
  return v;
}

bool parse_bool(std::string_view key, const std::string& value) {
  if (value == "1" || value == "true" || value == "yes" || value == "on") return true;
  if (value == "0" || value == "false" || value == "no" || value == "off") return false;
  fail("key '" + std::string(key) + "' needs 0|1, got '" + value + "'");
}

}  // namespace

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::Inline: return "inline";
    case Backend::MpiLite: return "mpi";
    case Backend::Sim: return "sim";
  }
  return "?";
}

std::string to_string(Task task) {
  switch (task) {
    case Task::Evd: return "evd";
    case Task::Svd: return "svd";
    case Task::Pca: return "pca";
    case Task::Gevd: return "gevd";
  }
  return "?";
}

bool parse_task(std::string_view text, Task& out) {
  const std::string norm = lower(text);
  if (norm == "evd" || norm == "eig" || norm == "eigen") out = Task::Evd;
  else if (norm == "svd") out = Task::Svd;
  else if (norm == "pca") out = Task::Pca;
  else if (norm == "gevd") out = Task::Gevd;
  else return false;
  return true;
}

bool parse_backend(std::string_view text, Backend& out) {
  const std::string norm = lower(text);
  if (norm == "inline") out = Backend::Inline;
  else if (norm == "mpi" || norm == "mpilite" || norm == "mpi_lite" || norm == "mpi-lite")
    out = Backend::MpiLite;
  else if (norm == "sim") out = Backend::Sim;
  else return false;
  return true;
}

solve::SolveOptions SolverSpec::solve_options() const {
  solve::SolveOptions opts;
  opts.threshold = threshold;
  opts.max_sweeps = max_sweeps;
  opts.stop_rule = stop_rule;
  opts.off_tol = off_tol;
  opts.gershgorin_shift = gershgorin_shift;
  opts.topk = topk;
  opts.faults = faults;
  // deadline_ms is NOT resolved here: a deadline is relative to solve()
  // entry, so SolvePlan::solve derives the cancel token per call.
  return opts;
}

std::string SolverSpec::to_string() const {
  std::string out;
  out += "task=" + api::to_string(task);
  out += ",backend=" + api::to_string(backend);
  out += ",ordering=" + ord::spec_token(ordering);
  out += ",m=" + std::to_string(m);
  // rows == m means "square", which 0 already names: render the normalized
  // form so one scenario has exactly one canonical string (the plan-cache
  // key).
  out += ",rows=" + std::to_string(rows == m ? std::size_t{0} : rows);
  out += ",d=" + std::to_string(d);
  out += ",pipeline=";
  switch (pipelining) {
    case PipeliningPolicy::Off: out += "off"; break;
    case PipeliningPolicy::Auto: out += "auto"; break;
    case PipeliningPolicy::Fixed: out += std::to_string(q); break;
  }
  out += ",ts=" + format_double(machine.ts);
  out += ",tw=" + format_double(machine.tw);
  out += ",ports=" + (machine.all_port() ? std::string("all") : std::to_string(machine.ports));
  out += ",overlap=" + std::string(overlap_startup ? "1" : "0");
  out += ",threshold=" + format_double(threshold);
  out += ",max_sweeps=" + std::to_string(max_sweeps);
  out += ",stop=";
  switch (stop_rule) {
    case solve::StopRule::NoRotations: out += "norot"; break;
    case solve::StopRule::OffDiagonal: out += "offdiag"; break;
    case solve::StopRule::OffDiagonalAbsolute: out += "offdiag_abs"; break;
  }
  out += ",off_tol=" + format_double(off_tol);
  out += ",shift=" + std::string(gershgorin_shift ? "1" : "0");
  out += ",bseed=" + std::to_string(bseed);
  out += ",topk=" + std::to_string(topk);
  out += ",threads=" + std::to_string(threads);
  out += ",deadline_ms=" + std::to_string(deadline_ms);
  out += ",trace=" + std::string(trace ? "1" : "0");
  out += ",faults=";
  if (!faults.enabled()) {
    out += "off";
  } else {
    out += std::to_string(faults.seed);
    out += ':' + format_double(faults.corrupt_rate);
    out += ':' + format_double(faults.delay_rate);
    out += ':' + std::to_string(faults.delay_us);
    out += ':' + format_double(faults.vote_fail_rate);
  }
  return out;
}

SolverSpec SolverSpec::parse(const std::string& text) {
  SolverSpec spec;
  // A spec is a scenario NAME: silently letting a later duplicate win would
  // give two canonical-looking strings different meanings, so duplicates
  // are an error. One bit per known key keeps the check allocation-free
  // (BM_SpecRoundTrip is a gated hot case).
  enum KeyBit : std::uint32_t {
    kBackend, kOrdering, kM, kD, kPipeline, kTs, kTw, kPorts, kOverlap,
    kThreshold, kMaxSweeps, kStop, kOffTol, kShift, kTask, kRows, kTopk,
    kThreads, kDeadlineMs, kTrace, kFaults, kBseed,
  };
  std::uint32_t seen_keys = 0;
  const auto mark_seen = [&](std::string_view key, KeyBit bit) {
    const std::uint32_t mask = std::uint32_t{1} << bit;
    if (seen_keys & mask) fail("duplicate key '" + std::string(key) + "'");
    seen_keys |= mask;
  };
  std::string_view rest = trim(text);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view token =
        trim(comma == std::string_view::npos ? rest : rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos)
      fail("token '" + std::string(token) + "' is not key=value");
    const std::string_view key = trim(token.substr(0, eq));
    const std::string value = lower(trim(token.substr(eq + 1)));
    if (key.empty() || value.empty())
      fail("token '" + std::string(token) + "' has an empty key or value");

    if (key == "task") {
      mark_seen(key, kTask);
      if (!parse_task(value, spec.task)) fail("unknown task '" + value + "' (evd|svd|pca|gevd)");
    } else if (key == "backend") {
      mark_seen(key, kBackend);
      if (!parse_backend(value, spec.backend))
        fail("unknown backend '" + value + "' (inline|mpi|sim)");
    } else if (key == "rows") {
      mark_seen(key, kRows);
      spec.rows = static_cast<std::size_t>(
          parse_uint_bounded(key, value, std::numeric_limits<std::size_t>::max()));
    } else if (key == "ordering") {
      mark_seen(key, kOrdering);
      if (!ord::parse_ordering_kind(value, spec.ordering))
        fail("unknown ordering '" + value + "' (br|pbr|d4|minalpha)");
      if (spec.ordering == ord::OrderingKind::Custom)
        fail("ordering=custom needs programmatic sequences; use Solver::plan(spec, ordering)");
    } else if (key == "m") {
      mark_seen(key, kM);
      spec.m = static_cast<std::size_t>(
          parse_uint_bounded(key, value, std::numeric_limits<std::size_t>::max()));
      if (spec.m == 0) fail("m must be >= 1");
    } else if (key == "d") {
      mark_seen(key, kD);
      spec.d = static_cast<int>(
          parse_uint_bounded(key, value, std::numeric_limits<int>::max()));
      if (spec.d < 1) fail("d must be >= 1");
    } else if (key == "pipeline") {
      mark_seen(key, kPipeline);
      if (value == "off") {
        spec.pipelining = PipeliningPolicy::Off;
      } else if (value == "auto") {
        spec.pipelining = PipeliningPolicy::Auto;
      } else {
        spec.pipelining = PipeliningPolicy::Fixed;
        spec.q = parse_uint(key, value);
        if (spec.q < 1) fail("pipeline=<q> needs q >= 1 (or off|auto)");
      }
    } else if (key == "ts") {
      mark_seen(key, kTs);
      spec.machine.ts = parse_double(key, value);
      if (spec.machine.ts < 0.0) fail("ts must be >= 0");
    } else if (key == "tw") {
      mark_seen(key, kTw);
      spec.machine.tw = parse_double(key, value);
      if (spec.machine.tw < 0.0) fail("tw must be >= 0");
    } else if (key == "ports") {
      mark_seen(key, kPorts);
      if (value == "all") {
        spec.machine.ports = pipe::MachineParams::kAllPort;
      } else {
        spec.machine.ports = static_cast<int>(
            parse_uint_bounded(key, value, std::numeric_limits<int>::max()));
        if (spec.machine.ports < 1) fail("ports must be >= 1 or 'all'");
      }
    } else if (key == "overlap") {
      mark_seen(key, kOverlap);
      spec.overlap_startup = parse_bool(key, value);
    } else if (key == "threshold") {
      mark_seen(key, kThreshold);
      spec.threshold = parse_double(key, value);
      if (spec.threshold <= 0.0) fail("threshold must be > 0");
    } else if (key == "max_sweeps") {
      mark_seen(key, kMaxSweeps);
      spec.max_sweeps = static_cast<int>(
          parse_uint_bounded(key, value, std::numeric_limits<int>::max()));
      if (spec.max_sweeps < 1) fail("max_sweeps must be >= 1");
    } else if (key == "stop") {
      mark_seen(key, kStop);
      if (value == "norot") spec.stop_rule = solve::StopRule::NoRotations;
      else if (value == "offdiag") spec.stop_rule = solve::StopRule::OffDiagonal;
      else if (value == "offdiag_abs") spec.stop_rule = solve::StopRule::OffDiagonalAbsolute;
      else fail("unknown stop rule '" + value + "' (norot|offdiag|offdiag_abs)");
    } else if (key == "off_tol") {
      mark_seen(key, kOffTol);
      spec.off_tol = parse_double(key, value);
      if (spec.off_tol <= 0.0) fail("off_tol must be > 0");
    } else if (key == "shift") {
      mark_seen(key, kShift);
      spec.gershgorin_shift = parse_bool(key, value);
    } else if (key == "bseed") {
      mark_seen(key, kBseed);
      spec.bseed = parse_uint(key, value);
    } else if (key == "topk") {
      mark_seen(key, kTopk);
      spec.topk = static_cast<int>(
          parse_uint_bounded(key, value, std::numeric_limits<int>::max()));
    } else if (key == "threads") {
      mark_seen(key, kThreads);
      spec.threads = static_cast<std::size_t>(
          parse_uint_bounded(key, value, std::numeric_limits<std::size_t>::max()));
    } else if (key == "deadline_ms") {
      mark_seen(key, kDeadlineMs);
      // Bounded well under steady_clock's representable range so
      // now() + deadline never overflows the time_point arithmetic.
      spec.deadline_ms = parse_uint_bounded(key, value, 1000000000ull);
    } else if (key == "trace") {
      mark_seen(key, kTrace);
      spec.trace = parse_bool(key, value);
    } else if (key == "faults") {
      mark_seen(key, kFaults);
      if (value == "off") {
        spec.faults = solve::FaultPlan{};
      } else {
        // <seed>:<corrupt>:<delay>:<delay_us>:<vote>, exactly five fields.
        std::string parts[5];
        std::size_t n = 0, start = 0;
        while (true) {
          const std::size_t colon = value.find(':', start);
          const std::string part = value.substr(
              start, colon == std::string::npos ? colon : colon - start);
          if (n < 5) parts[n] = part;
          ++n;
          if (colon == std::string::npos) break;
          start = colon + 1;
        }
        if (n != 5)
          fail("key 'faults' needs off or <seed>:<corrupt>:<delay>:<delay_us>:<vote>, got '" +
               value + "'");
        spec.faults.seed = parse_uint(key, parts[0]);
        if (spec.faults.seed == 0) fail("key 'faults' seed must be >= 1 (use faults=off to disable)");
        spec.faults.corrupt_rate = parse_double(key, parts[1]);
        spec.faults.delay_rate = parse_double(key, parts[2]);
        spec.faults.delay_us = parse_uint_bounded(key, parts[3], 1000000000ull);
        spec.faults.vote_fail_rate = parse_double(key, parts[4]);
        for (double rate : {spec.faults.corrupt_rate, spec.faults.delay_rate,
                            spec.faults.vote_fail_rate})
          if (rate < 0.0 || rate > 1.0) fail("key 'faults' rates must be in [0, 1]");
      }
    } else {
      fail("unknown key '" + std::string(key) + "'");
    }
  }
  // Cross-key constraints (checked on the final values, so key order in the
  // input does not matter). Solver::plan re-validates for specs built
  // programmatically.
  if ((spec.task == Task::Evd || spec.task == Task::Gevd) && spec.rows != 0 &&
      spec.rows != spec.m)
    fail("rows=" + std::to_string(spec.rows) +
         " needs task=svd|pca (the eigenproblem input is square m x m)");
  if (spec.task != Task::Evd && spec.gershgorin_shift)
    fail("shift=1 needs task=evd (a diagonal shift has no SVD/PCA/GEVD meaning)");
  if (spec.task == Task::Gevd && spec.bseed == 0)
    fail("task=gevd needs bseed=<seed> >= 1 (names the deterministic SPD B-side)");
  if (spec.task != Task::Gevd && spec.bseed != 0)
    fail("key 'bseed' needs task=gevd (no other task has a B-side matrix)");
  if (spec.topk > 0) {
    if (spec.task != Task::Evd && spec.task != Task::Svd)
      fail("topk needs task=evd|svd (pca/gevd assemble over the full spectrum)");
    // The core partitions min(rows, m) columns (a wide input is solved as
    // its transpose), so that is the truncation ceiling.
    const std::size_t core_cols = spec.rows != 0 && spec.rows < spec.m ? spec.rows : spec.m;
    if (static_cast<std::size_t>(spec.topk) > core_cols)
      fail("topk=" + std::to_string(spec.topk) + " exceeds the core column count " +
           std::to_string(core_cols) + " (min(rows, m))");
    if (spec.stop_rule != solve::StopRule::NoRotations)
      fail("topk needs stop=norot (per-column activity has no off(A) analogue)");
    if (spec.gershgorin_shift)
      fail("topk needs shift=0 (the shift reorders the spectrum the ranking tracks)");
  }
  // "rows=m" and "rows=0" name the same square scenario: normalize, so the
  // two spellings parse to EQUAL specs with one canonical string (otherwise
  // the plan cache would compile duplicate plans for one scenario -- the
  // same aliasing the leading-'+' rejection exists to prevent).
  if (spec.rows == spec.m) spec.rows = 0;
  return spec;
}

}  // namespace jmh::api
