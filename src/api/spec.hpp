// SolverSpec: the declarative scenario description behind the api facade.
//
// One value object names everything a solve needs -- problem geometry
// (m, d), the Jacobi ordering, the execution backend, the pipelining
// policy, the machine model, and the convergence knobs -- so a scenario is
// data, not wiring code. Solver::plan (api/solver.hpp) compiles a spec once
// into a reusable SolvePlan; to_string/parse give every spec a canonical
// textual name (comma-separated key=value) that round-trips exactly, so the
// CLI, benches and CI can pass scenarios as strings.
//
// Key=value grammar (all keys optional; unlisted keys keep their defaults):
//   task=evd|svd|pca|gevd      workload: symmetric eigendecomposition of an
//                              m x m input, thin SVD of a rows x m input,
//                              PCA of a rows x m data matrix (center
//                              columns + svd + explained-variance ratios),
//                              or the generalized symmetric eigenproblem
//                              A x = lambda B x via Cholesky pre-whitening
//                              (B named by bseed=) (default evd)
//   backend=inline|mpi|sim     execution substrate (default inline)
//   ordering=br|pbr|d4|minalpha   exchange-sequence family (default d4)
//   m=<n>                      matrix order; for task=svd the COLUMN count
//                              (the blocks partition columns) (default 32)
//   rows=<n>                   input row count; 0 = square (rows = m). Only
//                              task=svd|pca accept a non-square value; tall
//                              (rows > m) runs directly, wide (rows < m) is
//                              solved as the transpose with U/V swapped in
//                              assembly (default 0)
//   d=<n>                      hypercube dimension (default 2)
//   pipeline=off|auto|<q>      exchange-phase packetization (default off);
//                              auto = pipe::find_optimal_sweep_q
//   ts=<f> tw=<f> ports=all|<n>   machine model (Sim charging + Auto choice)
//   overlap=0|1                sim overlapped-startup hardware (default 0)
//   threshold=<f>              rotation threshold
//   max_sweeps=<n>             sweep cap (default 60)
//   stop=norot|offdiag|offdiag_abs   StopRule (default norot); offdiag_abs
//                              is the ABSOLUTE off-diagonal bound
//                              (sqrt(2*off2) <= off_tol, no ||A||_F
//                              scaling) -- the rule rank-deficient and
//                              centered inputs need, where stop=norot
//                              keeps rotating null-space column pairs
//                              until their norms underflow (~2x the
//                              sweeps, a timeout under real budgets)
//   off_tol=<f>                off-diagonal tolerance (stop=offdiag[_abs])
//   shift=0|1                  Gershgorin shift (default 0, task=evd only)
//   bseed=<n>                  task=gevd's B-side input: the SPD matrix
//                              la::random_spd(m, rng(bseed)), generated
//                              deterministically so every backend and the
//                              sequential reference whiten identically.
//                              Required (>= 1) for task=gevd, rejected
//                              elsewhere; 0 = unset (default 0)
//   topk=<k>                   truncated solve: stop once the leading k
//                              columns (by ||b_k||^2) are rotation-free and
//                              extract only those k eigenpairs / singular
//                              triplets; 0 = full solve (default 0). Needs
//                              stop=norot and shift=0; topk=m is bit-for-bit
//                              the full solve
//   threads=<n>                resize the process-wide exec::ThreadPool to n
//                              workers at plan time (best-effort: an active
//                              pool keeps its width); 0 = leave as is
//                              (default 0)
//   deadline_ms=<n>            per-solve wall-clock budget, measured from
//                              solve() entry; the engine stops at the next
//                              sweep boundary past it and the solve fails
//                              with DEADLINE_EXCEEDED. 0 = none (default 0)
//   trace=0|1                  arm the obs:: trace recorder for solves of
//                              this plan (spans recorded per sweep /
//                              exchange, PhaseTimings on the report).
//                              trace=0 solves stay bit-identical and pay
//                              one relaxed load per span site (default 0)
//   faults=off|<seed>:<corrupt>:<delay>:<delay_us>:<vote>
//                              deterministic fault injection
//                              (solve::FaultPlan): a nonzero schedule seed,
//                              the corrupt/delay/vote-failure rates in
//                              [0,1], and the per-delay stall in
//                              microseconds. Colon-separated because comma
//                              is the spec token separator (default off)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ord/ordering.hpp"
#include "pipe/machine.hpp"
#include "solve/transport.hpp"

namespace jmh::api {

/// Version of the spec grammar / canonical string, echoed as the FIRST
/// field of report_to_json so downstream consumers can dispatch before
/// reading anything else. Bump when the grammar changes meaning:
///   1 -- through the fault-tolerant serving PR (deadline_ms, faults)
///   2 -- adds the trace= key (obs:: span recording + PhaseTimings)
///   3 -- adds task=pca|gevd, stop=offdiag_abs, the bseed= key, and wide
///        (rows < m) task=svd|pca inputs
inline constexpr int kSpecVersion = 3;

/// Execution substrate of a solve (see the Transport table in
/// ARCHITECTURE.md; each backend maps onto one Transport implementation).
enum class Backend {
  Inline,   ///< all nodes in the calling thread (InlineTransport)
  MpiLite,  ///< one thread per node, real messages (MpiLiteTransport)
  Sim,      ///< inline numerics + modeled per-link time (SimTransport)
};

std::string to_string(Backend backend);
bool parse_backend(std::string_view text, Backend& out);

/// The workload a spec names. All run the same sweep machinery (one-sided
/// Jacobi orthogonalizes columns either way); they differ in the pre/post
/// transforms a TaskAdapter (api/task_adapter.hpp) wraps around the core:
/// the input shape accepted, the matrix handed to the sweeps, and how the
/// core result is assembled into the report.
enum class Task {
  Evd,   ///< symmetric eigendecomposition of a square m x m input
  Svd,   ///< thin SVD of a (possibly rectangular) rows x m input
  Pca,   ///< PCA of a rows x m data matrix: center columns, SVD, ratios
  Gevd,  ///< generalized A x = lambda B x, B SPD from bseed=, via Cholesky
};

std::string to_string(Task task);
bool parse_task(std::string_view text, Task& out);

/// Exchange-phase packetization policy.
enum class PipeliningPolicy {
  Off,    ///< full-block transitions
  Fixed,  ///< q packets per block, q from SolverSpec::q
  Auto,   ///< q chosen by pipe::find_optimal_sweep_q at plan time
};

struct SolverSpec {
  Task task = Task::Evd;
  std::size_t m = 32;   ///< matrix order (task=svd: column count)
  /// Input rows; 0 = square (== m), and rows == m is normalized to 0 by
  /// parse/to_string so each scenario has one canonical name. Non-square
  /// (tall rows > m or wide rows < m) needs task=svd|pca.
  std::size_t rows = 0;
  int d = 2;                                              ///< hypercube dimension
  ord::OrderingKind ordering = ord::OrderingKind::Degree4;
  Backend backend = Backend::Inline;
  PipeliningPolicy pipelining = PipeliningPolicy::Off;
  std::uint64_t q = 1;          ///< packets per block (Fixed policy only)
  pipe::MachineParams machine;  ///< Sim charging and Auto optimization
  bool overlap_startup = false; ///< sim::SimConfig::overlap_startup
  double threshold = la::kDefaultThreshold;
  int max_sweeps = 60;
  solve::StopRule stop_rule = solve::StopRule::NoRotations;
  double off_tol = 1e-8;
  bool gershgorin_shift = false;
  /// task=gevd's deterministic B-side: the SPD matrix is
  /// la::random_spd(m, Xoshiro256(bseed)), so every backend, the CLI
  /// --check path, and the sequential reference reconstruct the identical
  /// B from the spec string alone. Required (>= 1) for task=gevd and
  /// rejected for every other task; 0 = unset.
  std::uint64_t bseed = 0;
  /// Truncated-solve order: 0 = full solve; k > 0 stops the sweep loop once
  /// the leading k columns are rotation-free and extracts only those pairs
  /// (solve::SolveOptions::topk has the precise semantics).
  int topk = 0;
  /// Requested exec::ThreadPool width, applied best-effort at plan time
  /// (ThreadPool::ensure_workers); 0 = leave the pool as is. Not part of the
  /// numerical scenario -- results are identical for every value.
  std::size_t threads = 0;
  /// Per-solve wall-clock budget in milliseconds, measured from solve()
  /// entry; 0 = no deadline. SolvePlan::solve derives a deadline token from
  /// it (composed under any caller-supplied SolveOverrides::cancel).
  std::uint64_t deadline_ms = 0;
  /// Arm the obs:: trace recorder for this plan's solves: spans per sweep /
  /// exchange / assembly plus PhaseTimings sweep/comm attribution on the
  /// report. Purely observational -- results are bit-identical either way;
  /// untraced solves pay one relaxed load per span site.
  bool trace = false;
  /// Deterministic fault injection (seed 0 = off). `faults.attempt` is NOT
  /// part of the spec grammar -- it is the service's per-retry redraw knob
  /// (SolveOverrides::fault_attempt) and stays 0 in any parsed spec.
  solve::FaultPlan faults;

  /// The convergence-knob slice as the executors consume it.
  solve::SolveOptions solve_options() const;

  /// The row count an input matrix must have (rows, or m when rows == 0).
  std::size_t input_rows() const noexcept { return rows == 0 ? m : rows; }

  /// Canonical textual name: every key in a fixed order, doubles printed
  /// round-trip exactly. parse(to_string(s)) == s for every parseable spec;
  /// the one exception is ordering = Custom, which renders as
  /// "ordering=custom" for display but cannot be parsed back (custom
  /// sequences only exist programmatically).
  std::string to_string() const;

  /// Parses a key=value spec (see grammar above), starting from defaults.
  /// Throws std::invalid_argument on unknown keys, malformed tokens, or
  /// invalid values (including ordering=custom: custom orderings carry
  /// their own sequences and must be supplied programmatically to
  /// Solver::plan).
  static SolverSpec parse(const std::string& text);

  bool operator==(const SolverSpec&) const = default;
};

}  // namespace jmh::api
