// E3-E5 (paper Figure 2 a/b/c): communication cost of one sweep, relative
// to the unpipelined CC-cube BR algorithm, as a function of the hypercube
// dimension, for matrix sizes m = 2^18, 2^23 and 2^32 with Ts = 1000 and
// Tw = 100 time units.
//
// Series: BR (baseline == 1), pipelined BR, degree-4, permuted-BR, and the
// idealized lower bound; the pipelining degree Q is optimized per exchange
// phase. "deep" marks the permuted-BR point where its largest (most
// expensive) exchange phase ran in deep pipelining mode (the paper's
// filled-vs-unfilled symbols).
//
// Usage: bench_fig2_commcost [log2_m ...]    (default: 18 23 32)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_env.hpp"
#include "pipe/cost_model.hpp"

namespace {

void run_figure(double log2_m) {
  using namespace jmh::pipe;
  using jmh::ord::OrderingKind;

  MachineParams machine;
  machine.ts = 1000.0;
  machine.tw = 100.0;

  std::printf("Figure 2 (m = 2^%.0f): communication cost relative to BR\n", log2_m);
  // The scenario each cell prices, as a replayable facade spec (solve it
  // for real with `eigensolver_cli --spec` at a feasible m).
  std::printf("scenario: \"backend=sim,ordering=<series>,m=%.0f,d=<d>,pipeline=auto,"
              "ts=%.0f,tw=%.0f\"\n",
              std::ldexp(1.0, static_cast<int>(log2_m)), machine.ts, machine.tw);
  std::printf("  d |    BR  pipBR  degree-4  permuted-BR  lower-bound  pBR-mode\n");
  std::printf("----+-----------------------------------------------------------\n");

  for (int d = jmh::bench::min_d(3, 1, 15); d <= jmh::bench::max_d(15, 1, 15); ++d) {
    ProblemParams prob;
    prob.d = d;
    prob.m = std::ldexp(1.0, static_cast<int>(log2_m));
    if (prob.columns_per_block() < 1.0) {
      std::printf(" %2d | (matrix too small for 2^%d nodes)\n", d, d);
      continue;
    }
    const double base = sweep_cost_unpipelined(prob, machine);
    const auto br = sweep_cost_pipelined(OrderingKind::BR, prob, machine);
    const auto d4 = sweep_cost_pipelined(OrderingKind::Degree4, prob, machine);
    const auto pbr = sweep_cost_pipelined(OrderingKind::PermutedBR, prob, machine);
    const auto lb = sweep_cost_lower_bound(prob, machine);
    std::printf(" %2d | 1.000  %.3f     %.3f        %.3f        %.3f  %s\n", d,
                br.total / base, d4.total / base, pbr.total / base, lb.total / base,
                pbr.deep.front() ? "deep" : "shallow");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> sizes;
  for (int i = 1; i < argc; ++i) sizes.push_back(std::atof(argv[i]));
  if (sizes.empty()) sizes = {18.0, 23.0, 32.0};

  std::printf("Ts = 1000, Tw = 100 (paper section 4). Q optimized per phase.\n\n");
  for (double s : sizes) run_figure(s);

  std::printf("Expected shapes (paper): pipelined BR -> 0.5; degree-4 stable ~0.25;\n");
  std::printf("permuted-BR tracks the lower bound under deep pipelining and degrades\n");
  std::printf("toward BR when small matrices force shallow mode at large d.\n");
  return 0;
}
