// E10: google-benchmark microbenchmarks of the library's kernels -- the
// components whose throughput determines experiment wall-clock time.
#include <benchmark/benchmark.h>

#include <chrono>

#include "api/solver.hpp"
#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "la/kernels.hpp"
#include "la/rotation.hpp"
#include "la/sym_gen.hpp"
#include "obs/trace.hpp"
#include "ord/bounds.hpp"
#include "ord/br.hpp"
#include "ord/degree4.hpp"
#include "ord/min_alpha.hpp"
#include "ord/permuted_br.hpp"
#include "ord/schedule.hpp"
#include "pipe/cost_model.hpp"
#include "pipe/optimizer.hpp"
#include "sim/event_queue.hpp"
#include "sim/programs.hpp"
#include "solve/parallel_jacobi.hpp"
#include "solve/pipelined_executor.hpp"
#include "svc/service.hpp"

namespace {

void BM_RotationKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(1);
  std::vector<double> x(n), y(n), vx(n), vy(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    jmh::la::pair_columns(x, y, vx, vy, 1e-300);  // force the rotation
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(4 * n * 8));
}
BENCHMARK(BM_RotationKernel)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GramKernel(benchmark::State& state) {
  // The single-pass (bii, bjj, bij) kernel alone: the read half of a pair.
  const auto n = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(1);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    const auto g = jmh::la::kernels::gram3(x.data(), y.data(), n);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * 8));
}
BENCHMARK(BM_GramKernel)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BrGeneration(benchmark::State& state) {
  const int e = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(jmh::ord::br_sequence(e));
}
BENCHMARK(BM_BrGeneration)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_PermutedBrGeneration(benchmark::State& state) {
  const int e = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(jmh::ord::permuted_br_sequence(e));
}
BENCHMARK(BM_PermutedBrGeneration)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_Degree4Generation(benchmark::State& state) {
  const int e = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(jmh::ord::degree4_sequence(e));
}
BENCHMARK(BM_Degree4Generation)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_WindowStats(benchmark::State& state) {
  const auto seq = jmh::ord::permuted_br_sequence(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(seq.window_stats(seq.e()));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(seq.size()));
}
BENCHMARK(BM_WindowStats)->Arg(10)->Arg(14)->Arg(18);

void BM_HamiltonianValidation(benchmark::State& state) {
  const auto seq = jmh::ord::degree4_sequence(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(seq.is_valid());
}
BENCHMARK(BM_HamiltonianValidation)->Arg(10)->Arg(14)->Arg(18);

void BM_MinAlphaSearch(benchmark::State& state) {
  const int e = static_cast<int>(state.range(0));
  const int bound = static_cast<int>(jmh::ord::alpha_lower_bound(e));
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::ord::find_sequence_with_alpha(e, bound));
}
BENCHMARK(BM_MinAlphaSearch)->Arg(3)->Arg(4)->Arg(5);

void BM_SweepVerification(benchmark::State& state) {
  const jmh::ord::JacobiOrdering ordering(jmh::ord::OrderingKind::PermutedBR,
                                          static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::ord::verify_sweeps(ordering, 1));
}
BENCHMARK(BM_SweepVerification)->Arg(4)->Arg(6)->Arg(8);

void BM_OptimalQ(benchmark::State& state) {
  const auto seq = jmh::ord::permuted_br_sequence(static_cast<int>(state.range(0)));
  jmh::pipe::MachineParams machine;
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::pipe::find_optimal_q(seq, 1e6, machine, 1 << 20));
}
BENCHMARK(BM_OptimalQ)->Arg(8)->Arg(12)->Arg(15);

void BM_SweepCostModel(benchmark::State& state) {
  jmh::pipe::ProblemParams prob;
  prob.d = static_cast<int>(state.range(0));
  prob.m = 1 << 23;
  jmh::pipe::MachineParams machine;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        jmh::pipe::sweep_cost_pipelined(jmh::ord::OrderingKind::PermutedBR, prob, machine));
}
BENCHMARK(BM_SweepCostModel)->Arg(6)->Arg(10)->Arg(14);

void BM_EventQueueThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    jmh::sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < n; ++i) q.schedule(static_cast<double>(i % 97), [&] { ++fired; });
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1024)->Arg(16384);

void BM_SimulatedPhase(benchmark::State& state) {
  const auto seq = jmh::ord::degree4_sequence(static_cast<int>(state.range(0)));
  jmh::sim::SimConfig cfg;
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::sim::simulate_pipelined_phase(seq, 8, 4096.0, seq.e(), cfg));
}
BENCHMARK(BM_SimulatedPhase)->Arg(5)->Arg(7)->Arg(9);

void BM_InlineSolve(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  const jmh::ord::JacobiOrdering ordering(jmh::ord::OrderingKind::Degree4, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::solve::solve_inline(a, ordering));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InlineSolve)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_MpiSolve(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  const jmh::ord::JacobiOrdering ordering(jmh::ord::OrderingKind::Degree4, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::solve::solve_mpi(a, ordering));
}
BENCHMARK(BM_MpiSolve)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_MpiSolvePipelined(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  const jmh::ord::JacobiOrdering ordering(jmh::ord::OrderingKind::Degree4, 2);
  jmh::solve::PipelinedSolveOptions opts;
  opts.q = 4;
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::solve::solve_mpi_pipelined(a, ordering, opts));
}
BENCHMARK(BM_MpiSolvePipelined)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// --- api facade: plan construction vs. reuse ---------------------------------
// The facade exists to amortize expensive setup (ordering sequences, sweep
// schedule, auto pipelining degree) across many solves. These three cases
// price that claim: building a plan, solving with a reused plan, and
// rebuilding the plan for every solve (what the legacy free functions do).

void BM_PlanConstruction(benchmark::State& state) {
  // MinAlpha is the expensive ordering (backtracking sequence search);
  // pipeline=auto adds the optimizer pass.
  const auto spec = jmh::api::SolverSpec::parse(
      "backend=inline,ordering=minalpha,m=128,d=" + std::to_string(state.range(0)) +
      ",pipeline=auto");
  for (auto _ : state) benchmark::DoNotOptimize(jmh::api::Solver::plan(spec));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanConstruction)->Arg(2)->Arg(4)->Arg(5)->Unit(benchmark::kMicrosecond);

void BM_PlanReuseSolve(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  const auto spec = jmh::api::SolverSpec::parse("backend=inline,ordering=minalpha,m=" +
                                                std::to_string(m) + ",d=2,pipeline=auto");
  const jmh::api::SolvePlan plan = jmh::api::Solver::plan(spec);
  for (auto _ : state) benchmark::DoNotOptimize(plan.solve(a));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanReuseSolve)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_PerSolveReconstruction(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  const auto spec = jmh::api::SolverSpec::parse("backend=inline,ordering=minalpha,m=" +
                                                std::to_string(m) + ",d=2,pipeline=auto");
  for (auto _ : state) benchmark::DoNotOptimize(jmh::api::Solver::solve(spec, a));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerSolveReconstruction)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SpecRoundTrip(benchmark::State& state) {
  const jmh::api::SolverSpec spec = jmh::api::SolverSpec::parse(
      "backend=sim,ordering=minalpha,m=4096,d=5,pipeline=auto,stop=offdiag");
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::api::SolverSpec::parse(spec.to_string()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecRoundTrip);

void BM_BlockSerializeRoundtrip(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  const jmh::solve::BlockLayout layout(m, 2);
  const jmh::solve::ColumnBlock blk = jmh::solve::extract_block(a, layout, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::solve::ColumnBlock::deserialize(blk.serialize()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(blk.serialize().size() * 8));
}
BENCHMARK(BM_BlockSerializeRoundtrip)->Arg(64)->Arg(256)->Arg(1024);

void BM_BlockSerializeInto(benchmark::State& state) {
  // The allocation-free round trip the steady-state exchange loop runs:
  // serialize into a reused payload, parse back into a reused block.
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  const jmh::solve::BlockLayout layout(m, 2);
  const jmh::solve::ColumnBlock blk = jmh::solve::extract_block(a, layout, 0);
  jmh::net::Payload buf;
  jmh::solve::ColumnBlock back;
  for (auto _ : state) {
    blk.serialize_into(buf);
    back.assign_from(buf);
    benchmark::DoNotOptimize(back.b.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(buf.size() * 8));
}
BENCHMARK(BM_BlockSerializeInto)->Arg(64)->Arg(256)->Arg(1024);

void BM_SweepCancelCheck(benchmark::State& state) {
  // The per-sweep-boundary cancellation cost the solve engines pay: one
  // CancelToken::poll(). Arg 0 = flag-only armed token (an atomic load up
  // the one-link parent chain); Arg 1 = deadline token (adds the
  // steady_clock read). PERF.md quotes these as the overhead ceiling.
  const jmh::common::CancelToken token =
      state.range(0) == 0
          ? jmh::common::CancelToken::source()
          : jmh::common::CancelToken::source().with_timeout(std::chrono::hours(24));
  for (auto _ : state) benchmark::DoNotOptimize(token.poll());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SweepCancelCheck)->Arg(0)->Arg(1);

// --- obs: tracing overhead ---------------------------------------------------
// The observability contract, priced. Arg 0: a DISARMED span site -- one
// relaxed load plus a branch, the cost every sweep pays for carrying the
// instrumentation (the "few ns" ceiling BENCH_obs.json gates). Arg 1: an
// ARMED span -- two clock reads plus a locked ring store.
void BM_TraceSpan(benchmark::State& state) {
  {
    const jmh::obs::ArmScope arm(state.range(0) == 1);
    for (auto _ : state) {
      const jmh::obs::SpanScope span("bench.span", jmh::obs::Category::kExec,
                                     static_cast<std::uint64_t>(state.range(0)));
      benchmark::DoNotOptimize(&span);
    }
  }
  jmh::obs::reset_tracing();  // drop the bench's ring events (arm already ended)
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan)->Arg(0)->Arg(1);

// BM_PlanReuseSolve's traced twin: the identical reused-plan solve with
// trace=1, so fresh/baseline ratios AND the traced/untraced pair in one run
// price the armed-mode overhead (sweep/comm/assembly spans + PhaseTimings
// accumulation). PERF.md quotes the pair.
void BM_SolveTraced(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  const auto spec = jmh::api::SolverSpec::parse(
      "backend=inline,ordering=minalpha,m=" + std::to_string(m) +
      ",d=2,pipeline=auto,trace=1");
  const jmh::api::SolvePlan plan = jmh::api::Solver::plan(spec);
  for (auto _ : state) benchmark::DoNotOptimize(plan.solve(a));
  jmh::obs::reset_tracing();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolveTraced)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// --- svc: service throughput vs worker count ---------------------------------
// The serving-layer headline: a same-spec inline workload (the cache-hot,
// compute-bound case) pushed through the SolverService at 1/2/4 workers.
// Real time is the metric -- the work happens on the pool, not the bench
// thread. Per-iteration cost includes service construction + teardown, so
// kJobs is large enough that steady-state solving dominates.

void BM_ServiceThroughput(benchmark::State& state) {
  constexpr std::size_t kJobs = 32;
  const std::string spec = "backend=inline,ordering=d4,m=32,d=2";
  std::vector<jmh::la::Matrix> matrices;
  for (std::uint64_t seed = 1; seed <= kJobs; ++seed) {
    jmh::Xoshiro256 rng(seed);
    matrices.push_back(jmh::la::random_uniform_symmetric(32, rng));
  }
  for (auto _ : state) {
    jmh::svc::ServiceConfig cfg;
    cfg.workers = static_cast<std::size_t>(state.range(0));
    cfg.queue_capacity = kJobs;
    cfg.cache_capacity = 4;
    jmh::svc::SolverService service(cfg);
    std::vector<std::future<jmh::api::SolveReport>> futures;
    futures.reserve(kJobs);
    for (const auto& a : matrices) futures.push_back(service.submit(spec, a));
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kJobs));
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Deliberate oversubscription: mpi-backend jobs (a gang of 2^d rank tasks
// each) through `workers` concurrent dispatchers, so jobs x ranks well
// exceeds the host's hardware threads. This is the case the shared
// exec::ThreadPool exists for -- rank gangs from concurrent jobs interleave
// on one fixed worker set instead of multiplying threads. The same binary
// run with JMH_EXEC_POOL=off measures the legacy thread-per-rank baseline
// (PERF.md records the A/B).
void BM_ServiceOversub(benchmark::State& state) {
  constexpr std::size_t kJobs = 8;
  const std::string spec = "backend=mpi,ordering=d4,m=32,d=2";  // 4 ranks per job
  std::vector<jmh::la::Matrix> matrices;
  for (std::uint64_t seed = 1; seed <= kJobs; ++seed) {
    jmh::Xoshiro256 rng(seed);
    matrices.push_back(jmh::la::random_uniform_symmetric(32, rng));
  }
  for (auto _ : state) {
    jmh::svc::ServiceConfig cfg;
    cfg.workers = static_cast<std::size_t>(state.range(0));
    cfg.queue_capacity = kJobs;
    cfg.cache_capacity = 4;
    jmh::svc::SolverService service(cfg);
    std::vector<std::future<jmh::api::SolveReport>> futures;
    futures.reserve(kJobs);
    for (const auto& a : matrices) futures.push_back(service.submit(spec, a));
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kJobs));
}
BENCHMARK(BM_ServiceOversub)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Truncated solves: topk=k of a m=64 eigenproblem through a reused plan.
// k = m is the full-extraction degenerate case (identical numerics, the
// bigger per-sweep vote), so the spread across args isolates what
// truncation saves. Gated against BENCH_exec.json.
void BM_TopkSolve(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(64, rng);
  const auto spec = jmh::api::SolverSpec::parse(
      "backend=inline,ordering=d4,m=64,d=2,topk=" + std::to_string(k));
  const jmh::api::SolvePlan plan = jmh::api::Solver::plan(spec);
  for (auto _ : state) benchmark::DoNotOptimize(plan.solve(a));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopkSolve)->Arg(8)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// --- the SVD workload --------------------------------------------------------
// task=svd through a reused plan on the inline backend: a tall 3:2
// rectangular input factored by the same sweep machinery as the
// eigenproblem. Gated against BENCH_svd.json.

void BM_SvdSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = n + n / 2;
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform(rows, n, rng);
  const auto spec = jmh::api::SolverSpec::parse(
      "task=svd,backend=inline,ordering=d4,m=" + std::to_string(n) +
      ",rows=" + std::to_string(rows) + ",d=2");
  const jmh::api::SolvePlan plan = jmh::api::Solver::plan(spec);
  for (auto _ : state) benchmark::DoNotOptimize(plan.solve(a));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvdSolve)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// --- the task-adapter workloads ----------------------------------------------
// task=pca and wide task=svd through reused plans on the inline backend:
// pca adds the prepare (column centering) and assemble (variance ratios)
// adapter stages on top of the svd core; wide svd measures the transpose
// trick (core solves the n x n/2 transpose, assemble swaps U/V). Gated
// against BENCH_tasks.json.

void BM_PcaSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = n + n / 2;
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform(rows, n, rng);
  const auto spec = jmh::api::SolverSpec::parse(
      "task=pca,backend=inline,ordering=d4,m=" + std::to_string(n) +
      ",rows=" + std::to_string(rows) + ",d=2,stop=offdiag_abs");
  const jmh::api::SolvePlan plan = jmh::api::Solver::plan(spec);
  for (auto _ : state) benchmark::DoNotOptimize(plan.solve(a));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcaSolve)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_WideSvdSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = n / 2;
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform(rows, n, rng);
  const auto spec = jmh::api::SolverSpec::parse(
      "task=svd,backend=inline,ordering=d4,m=" + std::to_string(n) +
      ",rows=" + std::to_string(rows) + ",d=2");
  const jmh::api::SolvePlan plan = jmh::api::Solver::plan(spec);
  for (auto _ : state) benchmark::DoNotOptimize(plan.solve(a));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WideSvdSolve)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SequentialCyclicSolve(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  jmh::Xoshiro256 rng(7);
  const jmh::la::Matrix a = jmh::la::random_uniform_symmetric(m, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(jmh::la::onesided_jacobi_cyclic(a));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialCyclicSolve)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
