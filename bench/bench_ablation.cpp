// Design-choice ablations (DESIGN.md E8+):
//
//  A. Pipelining-degree sweep: phase cost vs Q for each ordering at fixed
//     (e, S) -- shows why the optimum Q differs per ordering and where the
//     shallow/deep boundary sits.
//  B. Port-count ablation: how much of each ordering's win survives on
//     1-port / 2-port / 4-port hardware vs all-port (the paper assumes
//     all-port; BR is insensitive, degree-4 needs >= 4 ports).
//  C. Startup-overlap ablation: the paper's model serializes all startups
//     before any transmission; overlapped hardware shaves a bounded
//     fraction (reported per ordering).
//  D. min-alpha vs permuted-BR on small cubes, where both are defined.
#include <cmath>
#include <cstdio>

#include "bench_env.hpp"

#include "pipe/cost_model.hpp"
#include "pipe/execution_model.hpp"
#include "pipe/optimizer.hpp"
#include "sim/programs.hpp"

int main() {
  using namespace jmh;
  using ord::OrderingKind;

  pipe::MachineParams machine;
  machine.ts = 1000.0;
  machine.tw = 100.0;

  const int e = 6;
  const double s = 1 << 16;

  std::printf("A. Phase cost vs pipelining degree Q (e = %d, S = %.0f, all-port)\n", e, s);
  std::printf("     Q |        BR   permuted-BR    degree-4   min-alpha\n");
  for (std::uint64_t q : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u, 63u, 64u, 96u,
                          128u, 256u}) {
    std::printf("  %4llu |", static_cast<unsigned long long>(q));
    for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4,
                      OrderingKind::MinAlpha}) {
      const auto seq = ord::make_exchange_sequence(kind, e);
      std::printf(" %11.0f", pipe::phase_cost_pipelined(seq, q, s, machine));
    }
    std::printf("\n");
  }

  std::printf("\nB. Sweep cost relative to unpipelined BR, by port count (d = 8, m = 2^20)\n");
  std::printf("  ports |     BR  permuted-BR  degree-4\n");
  for (int ports : {1, 2, 4, pipe::MachineParams::kAllPort}) {
    pipe::MachineParams m2 = machine;
    m2.ports = ports;
    pipe::ProblemParams prob;
    prob.d = 8;
    prob.m = std::ldexp(1.0, 20);
    const double base = pipe::sweep_cost_unpipelined(prob, m2);
    if (ports == pipe::MachineParams::kAllPort)
      std::printf("    all |");
    else
      std::printf("  %5d |", ports);
    for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4}) {
      std::printf(" %6.3f", pipe::sweep_cost_pipelined(kind, prob, m2).total / base);
      if (kind == OrderingKind::BR) std::printf("      ");
    }
    std::printf("\n");
  }

  std::printf("\nC. Startup-overlap ablation: simulated phase time / paper model (e = 5, Q opt)\n");
  sim::SimConfig strict;
  strict.machine = machine;
  sim::SimConfig overlap = strict;
  overlap.overlap_startup = true;
  std::printf("  kind          Q*    strict/model  overlapped/model\n");
  for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4}) {
    const auto seq = ord::make_exchange_sequence(kind, 5);
    const auto opt = pipe::find_optimal_q(seq, s, machine, 128);
    const double model = pipe::phase_cost_pipelined(seq, opt.q, s, machine);
    const double t_strict = sim::simulate_pipelined_phase(seq, opt.q, s, 5, strict);
    const double t_overlap = sim::simulate_pipelined_phase(seq, opt.q, s, 5, overlap);
    std::printf("  %-12s %3llu      %.4f          %.4f\n", ord::to_string(kind).c_str(),
                static_cast<unsigned long long>(opt.q), t_strict / model, t_overlap / model);
  }

  std::printf("\nE. End-to-end sweep speedup vs d (m = 2^18, t_flop = 0.2: comm-bound regime)\n");
  std::printf("   d |      BR  permuted-BR  degree-4   (ideal = 2^d)\n");
  for (int d = jmh::bench::min_d(4, 1, 10); d <= jmh::bench::max_d(10, 1, 10); d += 2) {
    pipe::ExecutionParams exec;
    exec.machine = machine;
    exec.t_flop = 0.2;
    pipe::ProblemParams prob;
    prob.d = d;
    prob.m = std::ldexp(1.0, 18);
    std::printf("  %2d |", d);
    for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4}) {
      std::printf(" %7.1f", pipe::sweep_speedup(kind, prob, exec));
      if (kind != OrderingKind::Degree4) std::printf("     ");
    }
    std::printf("   %6.0f\n", std::ldexp(1.0, d));
  }

  std::printf("\nD. min-alpha vs permuted-BR, small phases (deep pipelining, Q = 4K)\n");
  std::printf("  e |  alpha(min-a)  alpha(pBR)   cost(min-a)   cost(pBR)\n");
  for (int ee : {4, 5, 6}) {
    const auto ma = ord::make_exchange_sequence(OrderingKind::MinAlpha, ee);
    const auto pb = ord::make_exchange_sequence(OrderingKind::PermutedBR, ee);
    const std::uint64_t q = 4 * ma.size();
    std::printf("  %d | %13d %11d %13.0f %11.0f\n", ee, ma.alpha(), pb.alpha(),
                pipe::phase_cost_pipelined(ma, q, s, machine),
                pipe::phase_cost_pipelined(pb, q, s, machine));
  }
  return 0;
}
