// E9: cross-validation of the analytical cost model (pipe/) against the
// discrete-event simulator (sim/).
//
//  * Unpipelined sweeps: simulated makespan must equal
//    (2^{d+1}-1)(Ts + S*Tw) exactly.
//  * Pipelined exchange phases: simulated makespan must equal
//    phase_cost_pipelined under the strict (paper-model) startup
//    discipline, for every ordering, across shallow and deep degrees.
//  * Overlapped-startup hardware: reports how conservative the paper's
//    closed form is when transmissions may overlap later startups.
#include <cmath>
#include <cstdio>

#include "bench_env.hpp"
#include "pipe/cost_model.hpp"
#include "sim/programs.hpp"

int main() {
  using namespace jmh;
  using ord::OrderingKind;

  const int d_min = bench::min_d(1, 1, 5);
  const int d_max = bench::max_d(5, d_min, 5);

  sim::SimConfig strict;
  strict.machine.ts = 1000.0;
  strict.machine.tw = 100.0;
  sim::SimConfig overlap = strict;
  overlap.overlap_startup = true;

  int failures = 0;

  std::printf("Unpipelined sweeps: simulator vs closed form\n");
  std::printf("  d  ordering      simulated      model         match\n");
  for (int d = d_min; d <= d_max; ++d) {
    const ord::JacobiOrdering ordering(OrderingKind::PermutedBR, d);
    const double s = 256.0;
    const double simulated = sim::simulate_sweep(ordering, 0, s, strict);
    const double model = static_cast<double>((std::uint64_t{2} << d) - 1) *
                         pipe::transition_cost(strict.machine, s);
    const bool ok = std::abs(simulated - model) < 1e-6;
    failures += !ok;
    std::printf(" %2d  %-12s %12.0f  %12.0f  %s\n", d, "permuted-BR", simulated, model,
                ok ? "OK" : "MISMATCH");
  }

  std::printf("\nPipelined exchange phases: simulator vs phase_cost_pipelined\n");
  std::printf("  kind         e    Q   simulated       model       ratio(overlap/model)\n");
  for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4}) {
    for (int e : {4, 6}) {
      for (std::uint64_t q : {2u, 4u, 8u, 31u, 80u}) {
        const auto seq = ord::make_exchange_sequence(kind, e);
        const double s = 4096.0;
        const double simulated = sim::simulate_pipelined_phase(seq, q, s, e, strict);
        const double model = pipe::phase_cost_pipelined(seq, q, s, strict.machine);
        const double relaxed = sim::simulate_pipelined_phase(seq, q, s, e, overlap);
        const bool ok = std::abs(simulated - model) < 1e-6 * model;
        failures += !ok;
        std::printf("  %-12s %d %4llu %11.0f %11.0f  %s   %.3f\n",
                    ord::to_string(kind).c_str(), e, static_cast<unsigned long long>(q),
                    simulated, model, ok ? "OK" : "MISMATCH", relaxed / model);
      }
    }
  }

  std::printf("\nFull pipelined sweeps: simulator vs sweep_cost_pipelined (optimal Q per phase)\n");
  std::printf("  kind          d      m    simulated       model    match   mean-util\n");
  for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4}) {
    for (int d : {3, 5}) {
      if (d < d_min || d > d_max) continue;
      pipe::ProblemParams prob;
      prob.d = d;
      prob.m = 4096.0;
      const pipe::SweepCost model = pipe::sweep_cost_pipelined(kind, prob, strict.machine);
      const ord::JacobiOrdering ordering(kind, d);
      const sim::SimResult r = sim::simulate_sweep_pipelined(
          ordering, 0, prob.step_message_elems(), model.q, strict);
      const bool ok = std::abs(r.makespan - model.total) < 1e-6 * model.total;
      failures += !ok;
      std::printf("  %-12s %d  %5.0f  %11.0f %11.0f  %s   %5.1f%%\n",
                  ord::to_string(kind).c_str(), d, prob.m, r.makespan, model.total,
                  ok ? "OK" : "MISMATCH", 100.0 * r.mean_link_utilization());
    }
  }

  std::printf("\n%s\n", failures == 0
                            ? "VALIDATED: the discrete-event simulator reproduces the paper's"
                              "\nanalytical model exactly under the strict startup discipline."
                            : "VALIDATION FAILURES PRESENT");
  return failures == 0 ? 0 : 1;
}
