// Environment knobs for the bench/ harness (the BenchEngine pattern:
// runtime-tunable via env vars so CI can run a fast smoke subset without a
// separate build).
//
//   BENCH_SAMPLES=N  -- samples / repetitions per measured point
//                       (default: each bench's paper-faithful count)
//   BENCH_MIN_D=N    -- smallest hypercube dimension to sweep
//   BENCH_MAX_D=N    -- largest hypercube dimension to sweep
//
// Each bench clamps the requested range to what it supports, so e.g.
// BENCH_MAX_D=4 turns the Figure 2 reproduction into a seconds-long smoke
// run while leaving default invocations bit-identical to before.
#pragma once

#include <algorithm>
#include <cstdlib>

namespace jmh::bench {

/// Integer env var with a default; non-numeric values fall back to 0.
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// BENCH_SAMPLES, bounded below by 1.
inline int samples(int fallback) { return std::max(1, env_int("BENCH_SAMPLES", fallback)); }

/// BENCH_MIN_D clamped to [lo, hi].
inline int min_d(int fallback, int lo, int hi) {
  return std::clamp(env_int("BENCH_MIN_D", fallback), lo, hi);
}

/// BENCH_MAX_D clamped to [lo, hi].
inline int max_d(int fallback, int lo, int hi) {
  return std::clamp(env_int("BENCH_MAX_D", fallback), lo, hi);
}

}  // namespace jmh::bench
