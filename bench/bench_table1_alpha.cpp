// E1 (paper Table 1): alpha of the permuted-BR sequences vs the lower bound
// ceil((2^e-1)/e), for e in [7, 14]. Also prints the paper's printed values
// for side-by-side comparison and extends the table to e = 20 (experiment
// E8) to exhibit the asymptotic ratio of appendix Theorems 2/3.
#include <cstdio>

#include "ord/bounds.hpp"
#include "ord/permuted_br.hpp"

namespace {

struct PaperRow {
  int e;
  int alpha;
  int lower_bound;
};

// Reconstructed row order of the paper's Table 1 (DESIGN.md note 3). The
// paper prints lb=58 for e=9; ceil(511/9)=57 -- both shown below.
constexpr PaperRow kPaperTable1[] = {
    {7, 23, 19},    {8, 43, 32},    {9, 67, 58},    {10, 131, 103},
    {11, 289, 187}, {12, 577, 342}, {13, 776, 631}, {14, 1543, 1171},
};

}  // namespace

int main() {
  using namespace jmh::ord;

  std::printf("Table 1: alpha of the permuted-BR ordering vs lower bound\n");
  std::printf("(paper columns shown for comparison; ours uses floor semantics for\n");
  std::printf(" the general-e transformations, DESIGN.md note 4)\n\n");
  std::printf("  e |  alpha  lower-bound  ratio |  paper-alpha  paper-lb  paper-ratio\n");
  std::printf("----+----------------------------+------------------------------------\n");
  for (const auto& row : kPaperTable1) {
    const LinkSequence seq = permuted_br_sequence(row.e);
    const auto lb = alpha_lower_bound(row.e);
    std::printf(" %2d | %6d %11llu %6.2f | %11d %9d %11.2f\n", row.e, seq.alpha(),
                static_cast<unsigned long long>(lb),
                static_cast<double>(seq.alpha()) / static_cast<double>(lb), row.alpha,
                row.lower_bound,
                static_cast<double>(row.alpha) / static_cast<double>(row.lower_bound));
  }

  std::printf("\nE8 extension: asymptotics up to e = 20 (Theorem 2 bound where e-1 is a\n");
  std::printf("power of two; Theorem 3 predicts ratio -> 1.25)\n\n");
  std::printf("  e |  alpha  lower-bound  ratio  thm2-bound\n");
  std::printf("----+---------------------------------------\n");
  for (int e = 7; e <= 20; ++e) {
    const LinkSequence seq = permuted_br_sequence(e);
    const auto lb = alpha_lower_bound(e);
    const bool pow2 = ((e - 1) & (e - 2)) == 0;
    std::printf(" %2d | %6d %11llu %6.3f  ", e, seq.alpha(),
                static_cast<unsigned long long>(lb),
                static_cast<double>(seq.alpha()) / static_cast<double>(lb));
    if (pow2)
      std::printf("%10.1f\n", permuted_br_alpha_bound(e));
    else
      std::printf("%10s\n", "-");
  }
  std::printf("\nAll sequences validated as Hamiltonian paths of their e-cubes.\n");
  for (int e = 7; e <= 20; ++e) {
    if (!permuted_br_sequence(e).is_valid()) {
      std::printf("VALIDATION FAILED for e=%d\n", e);
      return 1;
    }
  }
  return 0;
}
