// E2 (paper Table 2): convergence rate of the BR, permuted-BR and degree-4
// orderings. For every (m, P) with m in {8,16,32,64} and P = 2..m/2 powers
// of two, solves 30 random symmetric matrices (entries uniform on [-1,1])
// with each ordering and reports the average number of sweeps.
//
// Expected outcome (paper section 3.4): the three orderings have
// practically identical convergence rates, in the 3-6 sweep range.
#include <cstdio>

#include "bench_env.hpp"
#include "solve/convergence.hpp"

namespace {

// Paper Table 2 values, reconstructed grid order (m asc, P asc). The exact
// per-cell means depend on the threshold and rotation order, so these are
// context, not pass/fail targets.
constexpr double kPaperBr[] = {3.76, 4.26, 4.50, 5.03, 5.03, 6.00, 6.03,
                               5.00, 5.96, 5.73, 5.00, 3.23, 4.03, 4.56};

}  // namespace

int main() {
  using namespace jmh::solve;

  ConvergenceConfig config;
  config.repetitions = jmh::bench::samples(30);  // paper default; BENCH_SAMPLES overrides

  std::printf("Table 2: mean sweeps to convergence over %d random matrices\n",
              config.repetitions);
  std::printf("(entries uniform on [-1,1]; threshold %.0e; paper-BR column is the\n",
              config.threshold);
  std::printf(" closest reading of the paper's scrambled table, for context)\n");
  // Each cell replays through the facade as a named scenario.
  std::printf("scenario: \"ordering=<col>,m=<m>,d=<log2 P>,stop=%s,off_tol=%g,"
              "threshold=%g\"\n\n",
              config.stop_rule == StopRule::OffDiagonal ? "offdiag" : "norot", config.off_tol,
              config.threshold);
  std::printf("   m    P |     BR  permuted-BR  degree-4 | paper-BR(ctx)\n");
  std::printf("---------+--------------------------------+--------------\n");

  const auto rows = table2_grid(config);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf(" %3zu %4d | %6.2f %12.2f %9.2f | %8.2f\n", r.m, r.p, r.br, r.permuted_br,
                r.degree4, i < std::size(kPaperBr) ? kPaperBr[i] : 0.0);
  }

  // The paper's qualitative claim: convergence rates are practically equal.
  double worst_gap = 0.0;
  for (const auto& r : rows) {
    worst_gap = std::max(worst_gap, std::abs(r.br - r.permuted_br));
    worst_gap = std::max(worst_gap, std::abs(r.br - r.degree4));
  }
  std::printf("\nLargest mean-sweep gap between orderings: %.2f sweeps\n", worst_gap);
  std::printf("%s\n", worst_gap <= 1.0 ? "CONFIRMS paper: rates practically identical"
                                       : "WARNING: orderings diverge more than expected");
  return worst_gap <= 1.0 ? 0 : 1;
}
