// E6 (paper section 3.1): the minimum-alpha sequences. Validates the
// paper's published sequences for e = 2..6 and re-derives optimal
// sequences by branch-and-bound for e <= 5 (e = 6 is attempted under a
// node budget; the paper itself could only solve e < 7).
#include <chrono>
#include <cstdio>

#include "ord/bounds.hpp"
#include "ord/min_alpha.hpp"

int main() {
  using namespace jmh::ord;
  using Clock = std::chrono::steady_clock;

  std::printf("Published min-alpha sequences (paper section 3.1):\n\n");
  std::printf(" e | alpha lower-bound valid  sequence\n");
  std::printf("---+----------------------------------\n");
  for (int e = 2; e <= kMaxPaperMinAlphaE; ++e) {
    const LinkSequence seq = paper_min_alpha_sequence(e);
    std::printf(" %d | %5d %11llu %5s  %s\n", e, seq.alpha(),
                static_cast<unsigned long long>(alpha_lower_bound(e)),
                seq.is_valid() ? "yes" : "NO!", seq.to_string().c_str());
  }

  std::printf("\nBranch-and-bound re-derivation (alpha bound = lower bound):\n\n");
  std::printf(" e | found alpha  nodes-expanded  time\n");
  std::printf("---+-----------------------------------\n");
  for (int e = 2; e <= 6; ++e) {
    const auto t0 = Clock::now();
    const std::uint64_t budget = e < 6 ? 0 : 200'000'000;  // cap only the hard case
    const auto r = find_sequence_with_alpha(e, static_cast<int>(alpha_lower_bound(e)), budget);
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r.sequence) {
      std::printf(" %d | %11d %15llu  %.3fs\n", e, r.sequence->alpha(),
                  static_cast<unsigned long long>(r.nodes_expanded), secs);
    } else {
      std::printf(" %d | %11s %15llu  %.3fs (%s)\n", e, "-",
                  static_cast<unsigned long long>(r.nodes_expanded), secs,
                  r.exhausted ? "proved infeasible" : "budget exhausted");
    }
  }
  std::printf("\n(The optimum always equals ceil((2^e-1)/e) for e <= 6, matching the paper.)\n");
  return 0;
}
