// Link-utilization accounting of the discrete-event simulator: the
// quantity the multi-port orderings exist to improve.
#include <gtest/gtest.h>

#include "sim/programs.hpp"

namespace jmh::sim {
namespace {

SimConfig paper_config() {
  SimConfig c;
  c.machine.ts = 1000.0;
  c.machine.tw = 100.0;
  return c;
}

TEST(Utilization, SingleLinkStage) {
  const Network net(2, paper_config());
  Program p;
  p.push_back(std::vector<NodeStage>(4, NodeStage{{0, 50.0}}));
  const SimResult r = net.run_program(p);
  ASSERT_EQ(r.link_busy.size(), 8u);  // 4 nodes x 2 links
  // Each node's link-0 channel busy 50*tw; link-1 channels idle.
  for (cube::Node n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(r.link_busy[n * 2 + 0], 5000.0);
    EXPECT_DOUBLE_EQ(r.link_busy[n * 2 + 1], 0.0);
  }
  EXPECT_DOUBLE_EQ(r.peak_link_utilization(), 5000.0 / r.makespan);
  EXPECT_DOUBLE_EQ(r.mean_link_utilization(), 2500.0 / r.makespan);
}

TEST(Utilization, EmptyProgram) {
  const Network net(2, paper_config());
  const SimResult r = net.run_program({});
  EXPECT_DOUBLE_EQ(r.mean_link_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(r.peak_link_utilization(), 0.0);
}

TEST(Utilization, BalancedOrderingUsesLinksMoreEvenly) {
  // At shallow pipelining degree 4, the degree-4 ordering's kernel windows
  // drive 4 distinct links; BR keeps hammering link 0. Mean utilization
  // must be significantly higher for degree-4.
  const auto cfg = paper_config();
  const int e = 6;
  const std::uint64_t q = 4;
  const double s = 1 << 14;

  const auto run = [&](ord::OrderingKind kind) {
    const auto seq = ord::make_exchange_sequence(kind, e);
    const Network net(e, cfg);
    return net.run_program(build_pipelined_phase_program(seq, q, s, e));
  };
  const SimResult br = run(ord::OrderingKind::BR);
  const SimResult d4 = run(ord::OrderingKind::Degree4);
  EXPECT_GT(d4.mean_link_utilization(), 1.5 * br.mean_link_utilization());
  // Same transported volume, so the better-utilized schedule finishes sooner.
  EXPECT_LT(d4.makespan, br.makespan);
}

TEST(Utilization, PeakBoundsMean) {
  const auto cfg = paper_config();
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::PermutedBR, 5);
  const Network net(5, cfg);
  const SimResult r = net.run_program(build_pipelined_phase_program(seq, 8, 1024.0, 5));
  EXPECT_GE(r.peak_link_utilization(), r.mean_link_utilization());
  EXPECT_LE(r.peak_link_utilization(), 1.0 + 1e-12);
}

TEST(Utilization, BusyTimeIndependentOfStartupModel) {
  // Busy time counts transmission only; overlapping startups changes the
  // makespan, not the busy totals.
  SimConfig strict = paper_config();
  SimConfig overlap = paper_config();
  overlap.overlap_startup = true;
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::Degree4, 5);
  const Program p = build_pipelined_phase_program(seq, 4, 2048.0, 5);
  const SimResult a = Network(5, strict).run_program(p);
  const SimResult b = Network(5, overlap).run_program(p);
  ASSERT_EQ(a.link_busy.size(), b.link_busy.size());
  for (std::size_t i = 0; i < a.link_busy.size(); ++i)
    EXPECT_DOUBLE_EQ(a.link_busy[i], b.link_busy[i]);
}

}  // namespace
}  // namespace jmh::sim
