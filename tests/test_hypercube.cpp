#include "cube/hypercube.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace jmh::cube {
namespace {

TEST(Hypercube, Sizes) {
  const Hypercube c(4);
  EXPECT_EQ(c.dimension(), 4);
  EXPECT_EQ(c.num_nodes(), 16u);
  EXPECT_EQ(c.num_links(), 32u);  // 16 nodes * 4 links / 2
}

TEST(Hypercube, DimensionZero) {
  const Hypercube c(0);
  EXPECT_EQ(c.num_nodes(), 1u);
  EXPECT_EQ(c.num_links(), 0u);
}

TEST(Hypercube, RejectsBadDimension) {
  EXPECT_THROW(Hypercube(-1), std::invalid_argument);
  EXPECT_THROW(Hypercube(Hypercube::kMaxDimension + 1), std::invalid_argument);
}

TEST(Hypercube, NeighborFlipsExactlyOneBit) {
  const Hypercube c(5);
  for (Node n = 0; n < c.num_nodes(); ++n) {
    for (Link l = 0; l < c.dimension(); ++l) {
      const Node nb = c.neighbor(n, l);
      EXPECT_EQ(n ^ nb, Node{1} << l);
      EXPECT_EQ(c.neighbor(nb, l), n);  // involutive
    }
  }
}

TEST(Hypercube, PaperExampleNode2Link1ReachesNode0) {
  // Paper section 2.1: "node 2 uses link 1 (or dimension 1) to send
  // messages to node 0".
  const Hypercube c(3);
  EXPECT_EQ(c.neighbor(2, 1), 0u);
}

TEST(Hypercube, LinkBetween) {
  const Hypercube c(4);
  EXPECT_EQ(c.link_between(0, 1), 0);
  EXPECT_EQ(c.link_between(0, 8), 3);
  EXPECT_EQ(c.link_between(5, 7), 1);
  EXPECT_EQ(c.link_between(0, 3), -1);  // distance 2
  EXPECT_EQ(c.link_between(6, 6), -1);  // same node
}

TEST(Hypercube, DistanceIsHamming) {
  const Hypercube c(4);
  EXPECT_EQ(c.distance(0, 15), 4);
  EXPECT_EQ(c.distance(5, 5), 0);
  EXPECT_EQ(c.distance(0b1010, 0b0110), 2);
}

TEST(Hypercube, NeighborsList) {
  const Hypercube c(3);
  const auto nb = c.neighbors(5);  // 101 -> 100, 111, 001
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 4u);
  EXPECT_EQ(nb[1], 7u);
  EXPECT_EQ(nb[2], 1u);
}

TEST(Hypercube, SubcubeMembers) {
  const Hypercube c(4);
  const auto sub = c.subcube_members(0b1010, 2);  // low 2 dims of base 1000
  ASSERT_EQ(sub.size(), 4u);
  EXPECT_EQ(sub[0], 0b1000u);
  EXPECT_EQ(sub[3], 0b1011u);
  // Whole cube.
  EXPECT_EQ(c.subcube_members(3, 4).size(), 16u);
  // Trivial subcube.
  const auto self = c.subcube_members(7, 0);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], 7u);
}

TEST(Hypercube, GrayPathVisitsAllNodesOnce) {
  const Hypercube c(6);
  const auto path = c.gray_path();
  ASSERT_EQ(path.size(), c.num_nodes());
  std::vector<bool> seen(c.num_nodes(), false);
  for (std::size_t i = 0; i < path.size(); ++i) {
    EXPECT_FALSE(seen[path[i]]);
    seen[path[i]] = true;
    if (i > 0) {
      EXPECT_EQ(c.distance(path[i - 1], path[i]), 1);
    }
  }
}

class HypercubeDimTest : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeDimTest, EveryNodeHasDDistinctNeighbors) {
  const Hypercube c(GetParam());
  for (Node n = 0; n < c.num_nodes(); ++n) {
    auto nb = c.neighbors(n);
    std::sort(nb.begin(), nb.end());
    EXPECT_EQ(std::adjacent_find(nb.begin(), nb.end()), nb.end());
    EXPECT_EQ(nb.size(), static_cast<std::size_t>(c.dimension()));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeDimTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace jmh::cube
