#include "la/shift.hpp"

#include <gtest/gtest.h>

#include "la/eigen_check.hpp"
#include "la/onesided_jacobi.hpp"
#include "la/sym_gen.hpp"
#include "solve/parallel_jacobi.hpp"

namespace jmh::la {
namespace {

TEST(Shift, GershgorinBoundsSpectralRadius) {
  Xoshiro256 rng(3);
  const Matrix a = random_uniform_symmetric(12, rng);
  const double radius = gershgorin_radius(a);
  const auto r = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(std::abs(r.eigenvalues.front()), radius);
  EXPECT_LE(std::abs(r.eigenvalues.back()), radius);
}

TEST(Shift, GershgorinOfDiagonal) {
  const Matrix d = diagonal({3.0, -7.0, 1.0});
  EXPECT_DOUBLE_EQ(gershgorin_radius(d), 7.0);
}

TEST(Shift, AddDiagonalShift) {
  Matrix a(2, 2);
  a(0, 1) = a(1, 0) = 2.0;
  const Matrix s = add_diagonal_shift(a, 5.0);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 2.0);
}

TEST(Shift, ShiftedSolveSeparatesPlusMinusTies) {
  // The exact configuration the unshifted method cannot handle (see
  // test_onesided_jacobi PlusMinusTieLimitation): +/-lambda pairs.
  Xoshiro256 rng(19);
  const std::vector<double> spectrum = {-2.0, 1.0, 2.0, 5.0};
  const Matrix a = symmetric_with_spectrum(spectrum, rng);
  JacobiOptions opts;
  opts.gershgorin_shift = true;
  const auto r = onesided_jacobi_cyclic(a, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(spectrum_distance(r.eigenvalues, spectrum), 1e-8);
  EXPECT_LT(eigenpair_residual(a, r.eigenvalues, r.eigenvectors), 1e-9);
}

TEST(Shift, ShiftedSolveMatchesUnshiftedOnGenericMatrix) {
  Xoshiro256 rng(7);
  const Matrix a = random_uniform_symmetric(10, rng);
  JacobiOptions shifted;
  shifted.gershgorin_shift = true;
  const auto r1 = onesided_jacobi_cyclic(a, shifted);
  const auto r2 = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_LT(spectrum_distance(r1.eigenvalues, r2.eigenvalues), 1e-8);
}

TEST(Shift, DistributedShiftedSolve) {
  Xoshiro256 rng(23);
  const std::vector<double> spectrum = {-4.0, -1.0, 1.0, 2.0, 3.0, 4.0, 6.0, 9.0};
  const Matrix a = symmetric_with_spectrum(spectrum, rng);
  const ord::JacobiOrdering ordering(ord::OrderingKind::PermutedBR, 1);
  solve::SolveOptions opts;
  opts.gershgorin_shift = true;
  const auto r = solve::solve_inline(a, ordering, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(spectrum_distance(r.eigenvalues, spectrum), 1e-8);
}

TEST(Shift, DistributedMpiShiftedSolve) {
  Xoshiro256 rng(29);
  const std::vector<double> spectrum = {-3.0, -1.5, 1.5, 3.0, 4.0, 5.0, 6.0, 7.0};
  const Matrix a = symmetric_with_spectrum(spectrum, rng);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 1);
  solve::SolveOptions opts;
  opts.gershgorin_shift = true;
  const auto r = solve::solve_mpi(a, ordering, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(spectrum_distance(r.eigenvalues, spectrum), 1e-8);
}

TEST(Shift, NonSquareRejected) {
  Matrix a(2, 3);
  EXPECT_THROW(gershgorin_radius(a), std::invalid_argument);
  EXPECT_THROW(add_diagonal_shift(a, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::la
