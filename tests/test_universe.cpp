#include "net/universe.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace jmh::net {
namespace {

TEST(Universe, RunsEveryRankOnce) {
  Universe u(8);
  std::atomic<int> count{0};
  std::atomic<int> rank_mask{0};
  u.run([&](Comm& c) {
    ++count;
    rank_mask |= 1 << c.rank();
    EXPECT_EQ(c.size(), 8);
  });
  EXPECT_EQ(count.load(), 8);
  EXPECT_EQ(rank_mask.load(), 0xff);
}

TEST(Universe, PointToPoint) {
  Universe u(2);
  u.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 3, Payload{1.5, 2.5});
      const Payload back = c.recv(1, 4);
      EXPECT_EQ(back, (Payload{4.0}));
    } else {
      const Payload got = c.recv(0, 3);
      EXPECT_EQ(got, (Payload{1.5, 2.5}));
      c.send_scalar(0, 4, 4.0);
    }
  });
}

TEST(Universe, SendrecvSwapsPayloads) {
  Universe u(2);
  u.run([](Comm& c) {
    const double mine = static_cast<double>(c.rank());
    const Payload got = c.sendrecv(1 - c.rank(), 0, std::span<const double>(&mine, 1));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], static_cast<double>(1 - c.rank()));
  });
}

TEST(Universe, BarrierSynchronizes) {
  Universe u(4);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  u.run([&](Comm& c) {
    ++before;
    c.barrier();
    if (before.load() != 4) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Universe, RepeatedBarriers) {
  Universe u(3);
  u.run([](Comm& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
  });
}

TEST(Universe, ExceptionPropagatesWithoutDeadlock) {
  Universe u(4);
  EXPECT_THROW(u.run([](Comm& c) {
    if (c.rank() == 2) throw std::runtime_error("rank 2 failed");
    // Other ranks block on a message that will never come; the poison
    // mechanism must wake them.
    c.recv(3, 999);
  }),
               std::runtime_error);
}

TEST(Universe, ExceptionInBarrierPropagates) {
  Universe u(3);
  EXPECT_THROW(u.run([](Comm& c) {
    if (c.rank() == 0) throw std::logic_error("boom");
    c.barrier();
  }),
               std::logic_error);
}

TEST(Universe, ReusableAfterFailure) {
  Universe u(2);
  EXPECT_THROW(u.run([](Comm&) { throw std::runtime_error("first"); }), std::runtime_error);
  std::atomic<int> ok{0};
  u.run([&](Comm& c) {
    c.barrier();
    ++ok;
  });
  EXPECT_EQ(ok.load(), 2);
}

TEST(Universe, ScalarHelpers) {
  Universe u(2);
  u.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_scalar(1, 0, 3.25);
    } else {
      EXPECT_EQ(c.recv_scalar(0, 0), 3.25);
    }
  });
}

TEST(Universe, ManyMessagesStressOrdering) {
  Universe u(2);
  u.run([](Comm& c) {
    constexpr int kN = 500;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.send_scalar(1, 7, static_cast<double>(i));
    } else {
      for (int i = 0; i < kN; ++i) EXPECT_EQ(c.recv_scalar(0, 7), static_cast<double>(i));
    }
  });
}

TEST(Universe, RejectsBadRankCount) {
  EXPECT_THROW(Universe(0), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::net
