#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace jmh::sim {
namespace {

SimConfig paper_config() {
  SimConfig c;
  c.machine.ts = 1000.0;
  c.machine.tw = 100.0;
  return c;
}

std::vector<NodeStage> uniform_stage(int d, NodeStage stage) {
  return std::vector<NodeStage>(std::size_t{1} << d, std::move(stage));
}

TEST(NetworkSim, SingleMessageStage) {
  const Network net(3, paper_config());
  const double t = net.run_stage(uniform_stage(3, {{0, 50.0}}));
  EXPECT_DOUBLE_EQ(t, 1000.0 + 50.0 * 100.0);
}

TEST(NetworkSim, MultiLinkAllPortParallelTransmission) {
  // Three messages on distinct links: 3 startups serialized, transmissions
  // parallel -> 3*ts + max(elems)*tw.
  const Network net(3, paper_config());
  const double t = net.run_stage(uniform_stage(3, {{0, 10.0}, {1, 30.0}, {2, 20.0}}));
  EXPECT_DOUBLE_EQ(t, 3 * 1000.0 + 30.0 * 100.0);
}

TEST(NetworkSim, MatchesCommOpCostClosedForm) {
  const auto cfg = paper_config();
  const Network net(4, cfg);
  // Window with multiplicities 3,2,1,1 packets of 8 elements.
  const NodeStage stage = {{0, 24.0}, {1, 16.0}, {2, 8.0}, {3, 8.0}};
  const double simulated = net.run_stage(uniform_stage(4, stage));
  const double model = pipe::comm_op_cost(cfg.machine, 4, 3, 7, 8.0);
  EXPECT_DOUBLE_EQ(simulated, model);
}

TEST(NetworkSim, OnePortSerializesTransmissions) {
  SimConfig cfg = paper_config();
  cfg.machine.ports = 1;
  const Network net(2, cfg);
  const double t = net.run_stage(uniform_stage(2, {{0, 10.0}, {1, 20.0}}));
  // 2 startups + both transmissions back to back.
  EXPECT_DOUBLE_EQ(t, 2 * 1000.0 + (10.0 + 20.0) * 100.0);
}

TEST(NetworkSim, TwoPortLimitsConcurrency) {
  SimConfig cfg = paper_config();
  cfg.machine.ports = 2;
  const Network net(3, cfg);
  // Three equal messages, 2 ports: two in parallel, then the third.
  const double t = net.run_stage(uniform_stage(3, {{0, 10.0}, {1, 10.0}, {2, 10.0}}));
  EXPECT_DOUBLE_EQ(t, 3 * 1000.0 + 2 * 10.0 * 100.0);
}

TEST(NetworkSim, OverlapStartupIsNeverSlower) {
  SimConfig strict = paper_config();
  SimConfig overlap = paper_config();
  overlap.overlap_startup = true;
  const NodeStage stage = {{0, 40.0}, {1, 10.0}, {2, 25.0}};
  const double t_strict = Network(3, strict).run_stage(uniform_stage(3, stage));
  const double t_overlap = Network(3, overlap).run_stage(uniform_stage(3, stage));
  EXPECT_LE(t_overlap, t_strict);
  // With overlap, the first transmission starts at ts: 1*ts + 40*tw bounds.
  EXPECT_GE(t_overlap, 1000.0 + 40.0 * 100.0);
}

TEST(NetworkSim, EmptyStageIsFree) {
  const Network net(2, paper_config());
  EXPECT_DOUBLE_EQ(net.run_stage(uniform_stage(2, {})), 0.0);
}

TEST(NetworkSim, ZeroElementMessageStillPaysStartup) {
  const Network net(1, paper_config());
  EXPECT_DOUBLE_EQ(net.run_stage(uniform_stage(1, {{0, 0.0}})), 1000.0);
}

TEST(NetworkSim, DuplicateLinkRejected) {
  const Network net(2, paper_config());
  EXPECT_THROW(net.run_stage(uniform_stage(2, {{0, 1.0}, {0, 2.0}})), std::invalid_argument);
}

TEST(NetworkSim, WrongNodeCountRejected) {
  const Network net(2, paper_config());
  EXPECT_THROW(net.run_stage({{}, {}}), std::invalid_argument);  // 2 nodes given, 4 needed
}

TEST(NetworkSim, ProgramAccumulatesStages) {
  const Network net(2, paper_config());
  Program program;
  program.push_back(uniform_stage(2, {{0, 10.0}}));
  program.push_back(uniform_stage(2, {{1, 20.0}}));
  const SimResult r = net.run_program(program);
  ASSERT_EQ(r.stage_times.size(), 2u);
  EXPECT_DOUBLE_EQ(r.stage_times[0], 1000.0 + 1000.0);
  EXPECT_DOUBLE_EQ(r.stage_times[1], 1000.0 + 2000.0);
  EXPECT_DOUBLE_EQ(r.makespan, r.stage_times[0] + r.stage_times[1]);
}

}  // namespace
}  // namespace jmh::sim
