#include "ord/sequence.hpp"

#include <gtest/gtest.h>

#include "ord/br.hpp"

namespace jmh::ord {
namespace {

TEST(LinkSequence, ValidatesLength) {
  EXPECT_NO_THROW(LinkSequence({0, 1, 0}, 2));
  EXPECT_THROW(LinkSequence({0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(LinkSequence({0, 1, 0, 1}, 2), std::invalid_argument);
}

TEST(LinkSequence, ValidatesLinkRange) {
  EXPECT_THROW(LinkSequence({0, 2, 0}, 2), std::invalid_argument);
  EXPECT_THROW(LinkSequence({0, -1, 0}, 2), std::invalid_argument);
}

TEST(LinkSequence, AlphaAndHistogram) {
  const LinkSequence s({0, 1, 0, 2, 0, 1, 0}, 3);
  EXPECT_EQ(s.alpha(), 4);
  const auto h = s.histogram();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 4);
  EXPECT_EQ(h[1], 2);
  EXPECT_EQ(h[2], 1);
}

TEST(LinkSequence, WindowStatsSliding) {
  const LinkSequence s({0, 1, 0, 2, 0, 1, 0}, 3);
  const auto w = s.window_stats(3);
  ASSERT_EQ(w.size(), 5u);
  // windows: 010, 102, 020, 201, 010
  EXPECT_EQ(w[0].distinct, 2);
  EXPECT_EQ(w[0].max_mult, 2);
  EXPECT_EQ(w[1].distinct, 3);
  EXPECT_EQ(w[1].max_mult, 1);
  EXPECT_EQ(w[2].distinct, 2);
  EXPECT_EQ(w[2].max_mult, 2);
  EXPECT_EQ(w[3].distinct, 3);
  EXPECT_EQ(w[3].max_mult, 1);
  EXPECT_EQ(w[4].distinct, 2);
  EXPECT_EQ(w[4].max_mult, 2);
}

TEST(LinkSequence, WindowStatsFullLength) {
  const LinkSequence s({0, 1, 0, 2, 0, 1, 0}, 3);
  const auto w = s.window_stats(7);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].distinct, 3);
  EXPECT_EQ(w[0].max_mult, 4);
}

TEST(LinkSequence, WindowStatsMatchBruteForce) {
  // Property check against a brute-force recount on a few BR sequences.
  for (int e : {3, 4, 5, 6}) {
    const LinkSequence s = br_sequence(e);
    for (std::size_t q : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
      const auto fast = s.window_stats(q);
      ASSERT_EQ(fast.size(), s.size() - q + 1);
      for (std::size_t i = 0; i + q <= s.size(); ++i) {
        std::vector<int> count(static_cast<std::size_t>(e), 0);
        int distinct = 0, mx = 0;
        for (std::size_t j = i; j < i + q; ++j) {
          if (count[static_cast<std::size_t>(s[j])]++ == 0) ++distinct;
          mx = std::max(mx, count[static_cast<std::size_t>(s[j])]);
        }
        EXPECT_EQ(fast[i].distinct, distinct) << "e=" << e << " q=" << q << " i=" << i;
        EXPECT_EQ(fast[i].max_mult, mx) << "e=" << e << " q=" << q << " i=" << i;
      }
    }
  }
}

TEST(LinkSequence, DegreeOfBRIsTwo) {
  // Paper Definition 2: D_e^BR has degree 2 for any e.
  for (int e = 2; e <= 10; ++e) EXPECT_EQ(br_sequence(e).degree(), 2) << e;
}

TEST(LinkSequence, DistinctWindowFraction) {
  const LinkSequence s({0, 1, 0, 2, 0, 1, 0}, 3);
  EXPECT_DOUBLE_EQ(s.distinct_window_fraction(1), 1.0);
  EXPECT_DOUBLE_EQ(s.distinct_window_fraction(2), 1.0);
  EXPECT_NEAR(s.distinct_window_fraction(3), 2.0 / 5.0, 1e-12);
}

TEST(LinkSequence, ToStringRoundTrip) {
  const LinkSequence s({0, 1, 0, 2, 0, 1, 0}, 3);
  EXPECT_EQ(s.to_string(), "0102010");
  const LinkSequence parsed = sequence_from_string("0102010", 3);
  EXPECT_EQ(parsed.links(), s.links());
}

TEST(LinkSequence, ToStringLargeLinkBrackets) {
  std::vector<Link> links((std::size_t{1} << 11) - 1, 0);
  links[0] = 10;
  for (int l = 1; l < 11; ++l) links[static_cast<std::size_t>(l)] = l;
  const LinkSequence s(links, 11);
  EXPECT_EQ(s.to_string().substr(0, 6), "[10]12");
}

TEST(LinkSequence, ParseRejectsNonDigits) {
  EXPECT_THROW(sequence_from_string("01a", 2), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::ord
