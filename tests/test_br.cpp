#include "ord/br.hpp"

#include <gtest/gtest.h>

#include "ord/bounds.hpp"

namespace jmh::ord {
namespace {

TEST(Br, SmallSequencesMatchPaper) {
  EXPECT_EQ(br_sequence(1).to_string(), "0");
  EXPECT_EQ(br_sequence(2).to_string(), "010");
  EXPECT_EQ(br_sequence(3).to_string(), "0102010");
  // Paper 2.3.1: "the sequence of links for e=4 is D4BR = <010201030102010>".
  EXPECT_EQ(br_sequence(4).to_string(), "010201030102010");
}

TEST(Br, RecursiveStructure) {
  // D_i = <D_{i-1}, i-1, D_{i-1}>.
  for (int e = 2; e <= 12; ++e) {
    const auto smaller = br_sequence(e - 1).links();
    const auto larger = br_sequence(e).links();
    ASSERT_EQ(larger.size(), 2 * smaller.size() + 1);
    for (std::size_t i = 0; i < smaller.size(); ++i) {
      EXPECT_EQ(larger[i], smaller[i]);
      EXPECT_EQ(larger[smaller.size() + 1 + i], smaller[i]);
    }
    EXPECT_EQ(larger[smaller.size()], e - 1);
  }
}

TEST(Br, LinkAtMatchesSequence) {
  const auto seq = br_sequence(10);
  for (std::size_t t = 1; t <= seq.size(); ++t)
    EXPECT_EQ(br_link_at(t), seq[t - 1]);
}

class BrValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(BrValidityTest, IsESequence) {
  EXPECT_TRUE(br_sequence(GetParam()).is_valid());
}

TEST_P(BrValidityTest, AlphaIsHalfLengthPlusHalf) {
  // alpha(D_e^BR) = 2^{e-1}: link 0 occupies every other position.
  const int e = GetParam();
  EXPECT_EQ(static_cast<std::uint64_t>(br_sequence(e).alpha()), br_alpha(e));
}

TEST_P(BrValidityTest, EveryWindowIsHalfZeros) {
  // Section 2.4: any subsequence of Q consecutive elements has at least
  // floor(Q/2) elements equal to 0 -- the reason pipelined BR gains at most 2x.
  const int e = GetParam();
  const auto seq = br_sequence(e);
  for (std::size_t q : {2u, 3u, 4u, 7u}) {
    if (q > seq.size()) continue;
    for (std::size_t i = 0; i + q <= seq.size(); ++i) {
      std::size_t zeros = 0;
      for (std::size_t j = i; j < i + q; ++j)
        if (seq[j] == 0) ++zeros;
      EXPECT_GE(zeros, q / 2) << "e=" << e << " window at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Phases, BrValidityTest, ::testing::Range(1, 15));

TEST(Br, HistogramIsGeometric) {
  // Link i appears 2^{e-1-i} times.
  const int e = 9;
  const auto h = br_sequence(e).histogram();
  for (int i = 0; i < e; ++i)
    EXPECT_EQ(h[static_cast<std::size_t>(i)], 1 << (e - 1 - i)) << i;
}

TEST(Br, LinkAtRejectsZero) { EXPECT_THROW(br_link_at(0), std::invalid_argument); }

}  // namespace
}  // namespace jmh::ord
