// One shared immutable SolvePlan used from many threads at once, on every
// backend: results must be bit-identical to a single-threaded run -- the
// thread-shareability contract the svc worker pool is built on. Also covers
// the parallel solve_batch rerouting (svc::solve_batch_parallel).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "api/solver.hpp"
#include "la/sym_gen.hpp"
#include "svc/service.hpp"

namespace jmh::api {
namespace {

constexpr std::size_t kM = 16;
constexpr int kThreads = 4;
constexpr std::uint64_t kSeeds[] = {3, 14, 159};

la::Matrix test_matrix(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(kM, rng);
}

void expect_bit_identical(const SolveReport& got, const SolveReport& want,
                          const std::string& context) {
  EXPECT_EQ(got.eigenvalues, want.eigenvalues) << context;
  EXPECT_EQ(la::Matrix::max_abs_diff(got.eigenvectors, want.eigenvectors), 0.0) << context;
  EXPECT_EQ(got.sweeps, want.sweeps) << context;
  EXPECT_EQ(got.rotations, want.rotations) << context;
  EXPECT_EQ(got.comm.messages, want.comm.messages) << context;
  EXPECT_EQ(got.comm.elements, want.comm.elements) << context;
  EXPECT_EQ(got.comm.barriers, want.comm.barriers) << context;
  EXPECT_EQ(got.modeled_time, want.modeled_time) << context;
  EXPECT_EQ(got.vote_time, want.vote_time) << context;
  EXPECT_EQ(got.modeled_sweeps, want.modeled_sweeps) << context;
  EXPECT_EQ(got.link_busy, want.link_busy) << context;
}

// kThreads threads all solving every matrix through ONE plan, compared to
// the single-threaded reference reports.
void run_concurrency_case(const std::string& spec_text) {
  const SolvePlan plan = Solver::plan(SolverSpec::parse(spec_text));

  std::vector<la::Matrix> matrices;
  std::vector<SolveReport> reference;
  for (std::uint64_t seed : kSeeds) {
    matrices.push_back(test_matrix(seed));
    reference.push_back(plan.solve(matrices.back()));
    ASSERT_TRUE(reference.back().converged) << spec_text;
  }

  std::vector<std::vector<SolveReport>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&plan, &matrices, &results, t] {
      for (const la::Matrix& a : matrices) results[t].push_back(plan.solve(a));
    });
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t)
    for (std::size_t i = 0; i < matrices.size(); ++i)
      expect_bit_identical(results[t][i], reference[i],
                           spec_text + " thread " + std::to_string(t) + " matrix " +
                               std::to_string(i));
}

TEST(PlanConcurrency, InlineBackend) {
  run_concurrency_case("backend=inline,ordering=d4,m=16,d=2");
}

TEST(PlanConcurrency, MpiLiteBackend) {
  // Each concurrent solve spawns its own 2^d-rank Universe; nothing is
  // shared between runs except the immutable plan.
  run_concurrency_case("backend=mpi,ordering=d4,m=16,d=2");
}

TEST(PlanConcurrency, MpiLiteBackendPipelined) {
  run_concurrency_case("backend=mpi,ordering=pbr,m=16,d=2,pipeline=2");
}

TEST(PlanConcurrency, SimBackend) {
  // Every concurrent run charges its own sim::Network; modeled times must
  // agree exactly, not just numerics.
  run_concurrency_case("backend=sim,ordering=pbr,m=16,d=2,pipeline=auto");
}

// solve_batch now routes through the svc pool: the parallel result must be
// indistinguishable from the sequential loop it replaced.
TEST(PlanConcurrency, ParallelSolveBatchMatchesSequential) {
  const SolvePlan plan = Solver::plan(SolverSpec::parse("ordering=d4,m=16,d=2"));
  std::vector<la::Matrix> batch;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) batch.push_back(test_matrix(seed));

  std::vector<SolveReport> sequential;
  for (const la::Matrix& a : batch) sequential.push_back(plan.solve(a));

  const std::vector<SolveReport> parallel = plan.solve_batch(batch);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    expect_bit_identical(parallel[i], sequential[i], "batch index " + std::to_string(i));

  // Explicit pool sizes agree too (1 = the sequential path itself).
  for (std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    const std::vector<SolveReport> pooled = svc::solve_batch_parallel(plan, batch, workers);
    for (std::size_t i = 0; i < batch.size(); ++i)
      expect_bit_identical(pooled[i], sequential[i],
                           "workers=" + std::to_string(workers) + " index " +
                               std::to_string(i));
  }
}

TEST(PlanConcurrency, ParallelSolveBatchPropagatesErrors) {
  const SolvePlan plan = Solver::plan(SolverSpec::parse("ordering=d4,m=16,d=2"));
  std::vector<la::Matrix> batch;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) batch.push_back(test_matrix(seed));
  batch.push_back(la::Matrix(12, 12));  // wrong order: plan.solve throws
  EXPECT_THROW(svc::solve_batch_parallel(plan, batch, 3), std::invalid_argument);
  EXPECT_TRUE(svc::solve_batch_parallel(plan, {}, 3).empty());
}

}  // namespace
}  // namespace jmh::api
