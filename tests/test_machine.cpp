#include "pipe/machine.hpp"

#include <gtest/gtest.h>

namespace jmh::pipe {
namespace {

MachineParams paper_machine() {
  MachineParams m;
  m.ts = 1000.0;
  m.tw = 100.0;
  return m;
}

TEST(Machine, TransitionCost) {
  const auto m = paper_machine();
  EXPECT_DOUBLE_EQ(transition_cost(m, 50.0), 1000.0 + 50.0 * 100.0);
}

TEST(Machine, AllPortKernelCostMatchesPaperFormula) {
  // Paper section 3.1: e*Ts + alpha*S*Tw for a deep kernel stage.
  const auto m = paper_machine();
  const int e = 5, alpha = 7, total = 31;
  const double s = 10.0;
  EXPECT_DOUBLE_EQ(comm_op_cost(m, e, alpha, total, s), e * 1000.0 + alpha * s * 100.0);
}

TEST(Machine, OnePortSerializesEverything) {
  MachineParams m = paper_machine();
  m.ports = 1;
  EXPECT_DOUBLE_EQ(comm_op_cost(m, 3, 2, 5, 10.0), 3 * 1000.0 + 5 * 10.0 * 100.0);
}

TEST(Machine, KPortInterpolates) {
  MachineParams m = paper_machine();
  m.ports = 2;
  // total 6 packets over 2 ports -> 3 serial rounds, even though max_mult=2.
  EXPECT_DOUBLE_EQ(comm_op_cost(m, 3, 2, 6, 10.0), 3 * 1000.0 + 3 * 10.0 * 100.0);
  // If one link dominates, max_mult governs.
  EXPECT_DOUBLE_EQ(comm_op_cost(m, 3, 4, 6, 10.0), 3 * 1000.0 + 4 * 10.0 * 100.0);
}

TEST(Machine, AllPortDominatedByBusiestLink) {
  const auto m = paper_machine();
  EXPECT_DOUBLE_EQ(comm_op_cost(m, 4, 3, 10, 2.0), 4 * 1000.0 + 3 * 2.0 * 100.0);
}

TEST(Machine, ZeroMessagesIsFree) {
  EXPECT_DOUBLE_EQ(comm_op_cost(paper_machine(), 0, 0, 0, 10.0), 0.0);
}

TEST(Machine, InvalidArgumentsRejected) {
  EXPECT_THROW(comm_op_cost(paper_machine(), 1, 2, 1, 10.0), std::invalid_argument);
  EXPECT_THROW(comm_op_cost(paper_machine(), 1, 1, 1, -1.0), std::invalid_argument);
  MachineParams bad = paper_machine();
  bad.ports = 0;
  EXPECT_THROW(comm_op_cost(bad, 1, 1, 1, 1.0), std::invalid_argument);
}

TEST(Machine, AllPortFlag) {
  MachineParams m;
  EXPECT_TRUE(m.all_port());
  m.ports = 3;
  EXPECT_FALSE(m.all_port());
}

}  // namespace
}  // namespace jmh::pipe
