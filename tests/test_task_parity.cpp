// The three tasks the adapter layer added -- wide task=svd, task=pca and
// task=gevd -- through every backend: one spec solved on inline, mpi,
// mpi+pipelined and sim must produce BIT-IDENTICAL results (the adapters'
// pre/post transforms are pure functions applied outside the sweep core, so
// the existing rotation-order arguments carry over unchanged), and every
// result must check out against a sequential reference built from the same
// transforms.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <vector>

#include "api/solver.hpp"
#include "api/task_adapter.hpp"
#include "la/eigen_check.hpp"
#include "la/onesided_jacobi.hpp"
#include "la/pca.hpp"
#include "la/svd.hpp"
#include "la/sym_gen.hpp"
#include "svc/service.hpp"

namespace jmh::api {
namespace {

la::Matrix rect_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform(rows, cols, rng);
}

la::Matrix sym_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

/// The first k columns of a matrix, for residual checks restricted to the
/// numerically nonzero part of a rank-deficient factorization.
la::Matrix leading_cols(const la::Matrix& m, std::size_t k) {
  la::Matrix out(m.rows(), k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t r = 0; r < m.rows(); ++r) out(r, c) = m(r, c);
  return out;
}

SolveReport solve_with_backend(SolverSpec spec, Backend backend, const la::Matrix& a) {
  spec.backend = backend;
  return Solver::plan(spec).solve(a);
}

/// The four-backend sweep every new task must pass: mpi, mpi+pipelined(q=2)
/// and sim each bit-identical to inline on @p a.
std::vector<SolveReport> all_backends(const SolverSpec& spec, const la::Matrix& a) {
  std::vector<SolveReport> out;
  out.push_back(solve_with_backend(spec, Backend::Inline, a));
  out.push_back(solve_with_backend(spec, Backend::MpiLite, a));
  SolverSpec piped = spec;
  piped.pipelining = PipeliningPolicy::Fixed;
  piped.q = 2;
  out.push_back(solve_with_backend(piped, Backend::MpiLite, a));
  out.push_back(solve_with_backend(spec, Backend::Sim, a));
  return out;
}

void expect_bit_identical(const SolveReport& r, const SolveReport& ref, const char* label) {
  EXPECT_EQ(r.singular_values, ref.singular_values) << label;
  EXPECT_EQ(r.eigenvalues, ref.eigenvalues) << label;
  EXPECT_EQ(la::Matrix::max_abs_diff(r.u, ref.u), 0.0) << label;
  EXPECT_EQ(la::Matrix::max_abs_diff(r.eigenvectors, ref.eigenvectors), 0.0) << label;
  EXPECT_EQ(r.explained_variance, ref.explained_variance) << label;
  EXPECT_EQ(r.sweeps, ref.sweeps) << label;
  EXPECT_EQ(r.rotations, ref.rotations) << label;
}

constexpr const char* kBackendLabels[] = {"inline", "mpi", "mpi+pipelined", "sim"};

// --- wide svd ----------------------------------------------------------------

class WideSvdParityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WideSvdParityTest, AllBackendsBitIdenticalAndMatchReference) {
  // 16 x 24 wide: the core solves the 24 x 16 transpose (blocks partition
  // the 16-column short side), assemble swaps U and V back.
  const la::Matrix a = rect_matrix(16, 24, GetParam());
  const SolverSpec spec = SolverSpec::parse("task=svd,ordering=d4,m=24,rows=16,d=2");

  const std::vector<SolveReport> reports = all_backends(spec, a);
  const SolveReport& inline_r = reports[0];
  for (std::size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].converged) << kBackendLabels[i];
    expect_bit_identical(reports[i], inline_r, kBackendLabels[i]);
  }

  // min(rows, m) singular triplets, in the CALLER's orientation: U is
  // rows x k, V is m x k.
  ASSERT_EQ(inline_r.singular_values.size(), 16u);
  EXPECT_EQ(inline_r.u.rows(), 16u);
  EXPECT_EQ(inline_r.u.cols(), 16u);
  EXPECT_EQ(inline_r.eigenvectors.rows(), 24u);
  EXPECT_EQ(inline_r.eigenvectors.cols(), 16u);

  // The assembled triplets factor the WIDE input, not its transpose.
  EXPECT_LT(la::svd_residual(a, inline_r.singular_values, inline_r.u, inline_r.eigenvectors),
            1e-10);
  EXPECT_LT(la::orthogonality_defect(inline_r.u), 1e-10);
  EXPECT_LT(la::orthogonality_defect(inline_r.eigenvectors), 1e-10);

  // And the spectrum agrees with the shape-agnostic sequential reference.
  const la::SvdResult ref = la::onesided_jacobi_svd_any(a);
  ASSERT_TRUE(ref.converged);
  EXPECT_LT(la::spectrum_distance(inline_r.singular_values, ref.singular_values), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideSvdParityTest, ::testing::Values(3u, 58u, 4096u));

// --- pca ----------------------------------------------------------------------

class PcaParityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcaParityTest, AllBackendsBitIdenticalAndMatchReference) {
  const la::Matrix a = rect_matrix(40, 16, GetParam());
  const SolverSpec spec = SolverSpec::parse("task=pca,ordering=d4,m=16,rows=40,d=2");

  const std::vector<SolveReport> reports = all_backends(spec, a);
  const SolveReport& inline_r = reports[0];
  for (std::size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].converged) << kBackendLabels[i];
    expect_bit_identical(reports[i], inline_r, kBackendLabels[i]);
  }

  // Explained-variance ratios: descending with sigma, summing to 1.
  ASSERT_EQ(inline_r.explained_variance.size(), 16u);
  double total = 0.0;
  for (std::size_t k = 0; k < inline_r.explained_variance.size(); ++k) {
    total += inline_r.explained_variance[k];
    if (k > 0) {
      EXPECT_LE(inline_r.explained_variance[k], inline_r.explained_variance[k - 1]);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);

  // PCA is the SVD of the centered data matrix: the triplets must factor
  // that matrix, and the spectrum must match the sequential center + svd
  // reference built from the same la:: transforms.
  la::Matrix centered = a;
  la::center_columns(centered);
  EXPECT_LT(la::svd_residual(centered, inline_r.singular_values, inline_r.u,
                             inline_r.eigenvectors),
            1e-10);
  const la::SvdResult ref = la::onesided_jacobi_svd_any(centered);
  ASSERT_TRUE(ref.converged);
  EXPECT_LT(la::spectrum_distance(inline_r.singular_values, ref.singular_values), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcaParityTest, ::testing::Values(7u, 21u, 777u));

TEST(PcaParity, WideDataMatrixAcrossBackends) {
  // Fewer samples than variables (8 x 16): centering happens in the data
  // orientation, THEN the core solves the transpose.
  const la::Matrix a = rect_matrix(8, 16, 31);
  const SolverSpec spec =
      SolverSpec::parse("task=pca,ordering=pbr,m=16,rows=8,d=1,stop=offdiag_abs");

  const std::vector<SolveReport> reports = all_backends(spec, a);
  const SolveReport& inline_r = reports[0];
  for (std::size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].converged) << kBackendLabels[i];
    expect_bit_identical(reports[i], inline_r, kBackendLabels[i]);
  }

  // Centering 8 samples leaves at most 7 independent directions, so the
  // residual is checked over the leading 7 components only: the trailing
  // null component sits at sigma ~ 1e-16 noise under the early absolute
  // stop, and its normalized direction is junk that A * v_k would amplify.
  la::Matrix centered = a;
  la::center_columns(centered);
  const std::vector<double> lead(inline_r.singular_values.begin(),
                                 inline_r.singular_values.begin() + 7);
  EXPECT_LT(la::svd_residual(centered, lead, leading_cols(inline_r.u, 7),
                             leading_cols(inline_r.eigenvectors, 7)),
            1e-10);
  // The last ratio must be (numerically) zero and the top ones carry it all.
  ASSERT_EQ(inline_r.explained_variance.size(), 8u);
  EXPECT_LT(inline_r.explained_variance.back(), 1e-20);
}

// --- gevd ----------------------------------------------------------------------

/// max_k ||A x_k - lambda_k B x_k||_2 / ||A||_F -- the generalized
/// eigenpair residual.
double gevd_residual(const la::Matrix& a, const la::Matrix& b,
                     const std::vector<double>& lambda, const la::Matrix& x) {
  const std::size_t n = a.rows();
  double worst = 0.0;
  for (std::size_t k = 0; k < lambda.size(); ++k) {
    const auto xk = x.col(k);
    double norm2 = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double ax = 0.0, bx = 0.0;
      for (std::size_t c = 0; c < n; ++c) {
        ax += a(r, c) * xk[c];
        bx += b(r, c) * xk[c];
      }
      const double resid = ax - lambda[k] * bx;
      norm2 += resid * resid;
    }
    worst = std::max(worst, std::sqrt(norm2));
  }
  return worst / la::frobenius(a);
}

class GevdParityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GevdParityTest, AllBackendsBitIdenticalAndMatchReference) {
  const la::Matrix a = sym_matrix(16, GetParam());
  const SolverSpec spec =
      SolverSpec::parse("task=gevd,bseed=11,ordering=d4,m=16,d=2");

  const std::vector<SolveReport> reports = all_backends(spec, a);
  const SolveReport& inline_r = reports[0];
  for (std::size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].converged) << kBackendLabels[i];
    expect_bit_identical(reports[i], inline_r, kBackendLabels[i]);
  }
  ASSERT_EQ(inline_r.eigenvalues.size(), 16u);
  EXPECT_TRUE(inline_r.singular_values.empty());  // eigen-shaped result

  // The assembled pairs solve A x = lambda B x for the spec's B, and the
  // eigenvectors are B-orthonormal (x_i^T B x_j = delta_ij).
  const la::Matrix b = gevd_b_matrix(spec);
  EXPECT_LT(gevd_residual(a, b, inline_r.eigenvalues, inline_r.eigenvectors), 1e-10);
  const std::size_t n = b.rows();
  double gram_defect = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double xbx = 0.0;
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
          xbx += inline_r.eigenvectors(r, i) * b(r, c) * inline_r.eigenvectors(c, j);
      gram_defect = std::max(gram_defect, std::abs(xbx - (i == j ? 1.0 : 0.0)));
    }
  EXPECT_LT(gram_defect, 1e-10);

  // Sequential reference: the identical whiten -> EVD pipeline run through
  // the la:: building blocks directly.
  const la::Matrix l = la::cholesky_factor(b);
  const la::JacobiResult ref = la::onesided_jacobi_cyclic(la::whiten_symmetric(a, l));
  ASSERT_TRUE(ref.converged);
  EXPECT_LT(la::spectrum_distance(inline_r.eigenvalues, ref.eigenvalues), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GevdParityTest, ::testing::Values(2u, 64u, 909u));

TEST(GevdParity, DifferentBseedsNameDifferentProblems) {
  const la::Matrix a = sym_matrix(16, 5);
  const SolveReport r1 = Solver::solve(SolverSpec::parse("task=gevd,bseed=1,m=16,d=2"), a);
  const SolveReport r2 = Solver::solve(SolverSpec::parse("task=gevd,bseed=2,m=16,d=2"), a);
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_NE(r1.eigenvalues, r2.eigenvalues);
  // ... and the same bseed reproduces the identical problem.
  const SolveReport r1again =
      Solver::solve(SolverSpec::parse("task=gevd,bseed=1,m=16,d=2"), a);
  EXPECT_EQ(r1again.eigenvalues, r1.eigenvalues);
}

// --- mixed service traffic ------------------------------------------------------

// All four tasks through one service instance: the spec string stays the
// plan-cache key, and every served report is bit-identical to a direct
// plan.solve of the same matrix.
TEST(TaskParity, ServiceServesAllFourTasks) {
  const std::string specs[] = {
      "backend=inline,ordering=d4,m=16,d=2",
      "task=svd,backend=inline,ordering=d4,m=24,rows=16,d=2",  // wide
      "task=pca,backend=inline,ordering=d4,m=16,rows=40,d=2",
      "task=gevd,bseed=11,backend=inline,ordering=d4,m=16,d=2",
  };
  const la::Matrix inputs[] = {
      sym_matrix(16, 1),
      rect_matrix(16, 24, 2),
      rect_matrix(40, 16, 3),
      sym_matrix(16, 4),
  };

  svc::SolverService service({.workers = 2, .queue_capacity = 16, .cache_capacity = 8});
  std::vector<std::future<SolveReport>> jobs;
  for (std::size_t i = 0; i < 4; ++i) jobs.push_back(service.submit(specs[i], inputs[i]));
  for (std::size_t i = 0; i < 4; ++i) {
    const SolveReport served = jobs[i].get();
    const SolveReport direct = Solver::plan(SolverSpec::parse(specs[i])).solve(inputs[i]);
    expect_bit_identical(served, direct, specs[i].c_str());
    EXPECT_EQ(served.status, SolveStatus::Ok) << specs[i];
  }
}

}  // namespace
}  // namespace jmh::api
