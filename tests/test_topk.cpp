// Truncated (topk=k) solves: the engine stops once the leading k columns
// (by ||b_k||^2) are rotation-free and assembly extracts only those pairs.
//
// The contracts under test:
//   * topk=m is bit-for-bit THE full solve on every backend (same sweeps,
//     rotations, values, vectors) -- the all-column selection routes through
//     the identical extraction code path;
//   * a truncated solve is bit-identical across inline / mpi / mpi+pipelined
//     / sim, because the selection is made from the allreduced convergence
//     vote every endpoint shares, never re-derived locally;
//   * truncation saves work (fewer counted sweeps and rotations than the
//     full solve) while the leading pairs stay accurate (residual checks
//     against the input and against the full solve's spectrum);
//   * validation: topk needs stop=norot, shift=0, and topk <= m.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "api/solver.hpp"
#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"

namespace jmh::api {
namespace {

la::Matrix sym_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

la::Matrix rect_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform(rows, cols, rng);
}

SolveReport solve_with_backend(SolverSpec spec, Backend backend, const la::Matrix& a) {
  spec.backend = backend;
  return Solver::plan(spec).solve(a);
}

void expect_bit_identical_evd(const SolveReport& r, const SolveReport& ref,
                              const char* label) {
  EXPECT_EQ(r.eigenvalues, ref.eigenvalues) << label;
  EXPECT_EQ(la::Matrix::max_abs_diff(r.eigenvectors, ref.eigenvectors), 0.0) << label;
  EXPECT_EQ(r.sweeps, ref.sweeps) << label;
  EXPECT_EQ(r.rotations, ref.rotations) << label;
}

void expect_bit_identical_svd(const SolveReport& r, const SolveReport& ref,
                              const char* label) {
  EXPECT_EQ(r.singular_values, ref.singular_values) << label;
  EXPECT_EQ(la::Matrix::max_abs_diff(r.u, ref.u), 0.0) << label;
  EXPECT_EQ(la::Matrix::max_abs_diff(r.eigenvectors, ref.eigenvectors), 0.0) << label;
  EXPECT_EQ(r.sweeps, ref.sweeps) << label;
  EXPECT_EQ(r.rotations, ref.rotations) << label;
}

TEST(Topk, TopkEqualsMIsBitForBitTheFullSolve) {
  const la::Matrix a = sym_matrix(32, 7);
  const SolverSpec full = SolverSpec::parse("ordering=d4,m=32,d=2");
  const SolverSpec trunc = SolverSpec::parse("ordering=d4,m=32,d=2,topk=32");

  for (Backend backend : {Backend::Inline, Backend::MpiLite, Backend::Sim}) {
    const SolveReport full_r = solve_with_backend(full, backend, a);
    const SolveReport trunc_r = solve_with_backend(trunc, backend, a);
    ASSERT_TRUE(full_r.converged && trunc_r.converged);
    expect_bit_identical_evd(trunc_r, full_r, to_string(backend).c_str());
  }
}

TEST(Topk, TopkEqualsMIsBitForBitTheFullSvd) {
  const la::Matrix a = rect_matrix(24, 16, 11);
  const SolverSpec full = SolverSpec::parse("task=svd,ordering=d4,m=16,rows=24,d=2");
  const SolverSpec trunc = SolverSpec::parse("task=svd,ordering=d4,m=16,rows=24,d=2,topk=16");

  for (Backend backend : {Backend::Inline, Backend::MpiLite, Backend::Sim}) {
    const SolveReport full_r = solve_with_backend(full, backend, a);
    const SolveReport trunc_r = solve_with_backend(trunc, backend, a);
    ASSERT_TRUE(full_r.converged && trunc_r.converged);
    expect_bit_identical_svd(trunc_r, full_r, to_string(backend).c_str());
  }
}

TEST(Topk, TruncatedSvdBitIdenticalAcrossBackends) {
  const la::Matrix a = rect_matrix(40, 32, 3);
  const SolverSpec spec = SolverSpec::parse("task=svd,ordering=d4,m=32,rows=40,d=2,topk=6");

  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);
  const SolveReport sim_r = solve_with_backend(spec, Backend::Sim, a);
  SolverSpec piped = spec;
  piped.pipelining = PipeliningPolicy::Fixed;
  piped.q = 2;
  const SolveReport pipe_r = solve_with_backend(piped, Backend::MpiLite, a);

  ASSERT_TRUE(inline_r.converged && mpi_r.converged && sim_r.converged && pipe_r.converged);
  ASSERT_EQ(inline_r.singular_values.size(), 6u);
  ASSERT_EQ(inline_r.u.cols(), 6u);
  ASSERT_EQ(inline_r.eigenvectors.cols(), 6u);
  EXPECT_EQ(inline_r.topk, 6);

  expect_bit_identical_svd(mpi_r, inline_r, "mpi vs inline");
  expect_bit_identical_svd(sim_r, inline_r, "sim vs inline");
  expect_bit_identical_svd(pipe_r, inline_r, "mpi-pipelined vs inline");

  // Descending order, and the triplets are true singular triplets of A.
  EXPECT_TRUE(std::is_sorted(inline_r.singular_values.rbegin(),
                             inline_r.singular_values.rend()));
  EXPECT_LT(la::svd_residual(a, inline_r.singular_values, inline_r.u, inline_r.eigenvectors),
            1e-8);
  EXPECT_LT(la::orthogonality_defect(inline_r.u), 1e-8);
  EXPECT_LT(la::orthogonality_defect(inline_r.eigenvectors), 1e-8);

  // The leading values agree with the full solve's head.
  const SolveReport full_r = solve_with_backend(
      SolverSpec::parse("task=svd,ordering=d4,m=32,rows=40,d=2"), Backend::Inline, a);
  ASSERT_TRUE(full_r.converged);
  for (std::size_t k = 0; k < 6; ++k)
    EXPECT_NEAR(inline_r.singular_values[k], full_r.singular_values[k],
                1e-8 * full_r.singular_values.front())
        << "k=" << k;
}

// The acceptance case: a d >= 6 problem (64 blocks, 128 columns) where the
// truncated solve provably does less work -- fewer counted sweeps AND fewer
// rotations than the full run -- with bit-identical results on every
// backend that shares the rotation order.
//
// The input makes the dominant subspace decouple early: a dense 8 x 8 block
// with the 8 largest-|lambda| eigenvalues, direct-summed with a dense
// random 120 x 120 tail (spectral radius well below the head's). The head
// resolves in fewer sweeps than the tail, and the engine's per-column
// activity tracking notices. (On a generic dense matrix every column stays
// rotation-active until global convergence -- threshold rotations touch all
// pairs -- so truncation saves assembly, not sweeps; the decoupled case is
// where the early exit pays.)
TEST(Topk, DeepCubeTruncationSavesWorkAcrossBackends) {
  std::vector<double> head_spec;
  for (int k = 0; k < 8; ++k) head_spec.push_back(93.0 + k);
  Xoshiro256 rng(2026);
  const la::Matrix head = la::symmetric_with_spectrum(head_spec, rng);
  const la::Matrix tail = la::random_uniform_symmetric(120, rng);
  la::Matrix a(128, 128);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) a(i, j) = head(i, j);
  for (std::size_t i = 0; i < 120; ++i)
    for (std::size_t j = 0; j < 120; ++j) a(8 + i, 8 + j) = tail(i, j);
  const SolverSpec spec = SolverSpec::parse("ordering=d4,m=128,d=6,topk=8");

  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport sim_r = solve_with_backend(spec, Backend::Sim, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);

  ASSERT_TRUE(inline_r.converged && sim_r.converged && mpi_r.converged);
  ASSERT_EQ(inline_r.eigenvalues.size(), 8u);
  ASSERT_EQ(inline_r.eigenvectors.cols(), 8u);
  expect_bit_identical_evd(sim_r, inline_r, "sim vs inline");
  expect_bit_identical_evd(mpi_r, inline_r, "mpi vs inline");

  const SolveReport full_r = solve_with_backend(
      SolverSpec::parse("ordering=d4,m=128,d=6"), Backend::Inline, a);
  ASSERT_TRUE(full_r.converged);
  EXPECT_LT(inline_r.sweeps, full_r.sweeps);
  EXPECT_LT(inline_r.rotations, full_r.rotations);

  // The 8 extracted pairs are genuine eigenpairs of A (the trailing columns
  // were abandoned mid-flight; the leading ones must not suffer for it).
  EXPECT_LT(la::eigenpair_residual(a, inline_r.eigenvalues, inline_r.eigenvectors), 1e-8);
  EXPECT_LT(la::orthogonality_defect(inline_r.eigenvectors), 1e-8);

  // topk ranks by |lambda| (||b_k|| -> |lambda_k|), so the selected pairs
  // are the head block's eigenvalues 93..100 -- the 8 largest-magnitude
  // eigenvalues of A -- each recovered to high accuracy.
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_NEAR(inline_r.eigenvalues[k], 93.0 + static_cast<double>(k), 1e-7) << "k=" << k;
}

TEST(Topk, PlanRejectsInvalidTopkCombinations) {
  SolverSpec spec;
  spec.m = 32;
  spec.d = 2;
  spec.topk = -1;
  EXPECT_THROW(Solver::plan(spec), std::invalid_argument);
  spec.topk = 33;
  EXPECT_THROW(Solver::plan(spec), std::invalid_argument);
  spec.topk = 4;
  spec.stop_rule = solve::StopRule::OffDiagonal;
  EXPECT_THROW(Solver::plan(spec), std::invalid_argument);
  spec.stop_rule = solve::StopRule::NoRotations;
  spec.gershgorin_shift = true;
  EXPECT_THROW(Solver::plan(spec), std::invalid_argument);
  spec.gershgorin_shift = false;
  EXPECT_NO_THROW(Solver::plan(spec));
}

}  // namespace
}  // namespace jmh::api
