#include "sim/programs.hpp"

#include <gtest/gtest.h>

#include "pipe/optimizer.hpp"

namespace jmh::sim {
namespace {

SimConfig paper_config() {
  SimConfig c;
  c.machine.ts = 1000.0;
  c.machine.tw = 100.0;
  return c;
}

TEST(Programs, SweepProgramShape) {
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 3);
  const Program p = build_sweep_program(ordering, 0, 64.0);
  ASSERT_EQ(p.size(), ordering.steps_per_sweep());
  for (const auto& stage : p) {
    ASSERT_EQ(stage.size(), 8u);
    for (const auto& node : stage) {
      ASSERT_EQ(node.size(), 1u);
      EXPECT_DOUBLE_EQ(node[0].elems, 64.0);
    }
  }
}

TEST(Programs, SimulatedSweepMatchesClosedForm) {
  // E9: the unpipelined sweep's simulated makespan must equal
  // (2^{d+1}-1) * (ts + S*tw) exactly.
  const auto cfg = paper_config();
  for (int d : {1, 2, 3, 4}) {
    const ord::JacobiOrdering ordering(ord::OrderingKind::PermutedBR, d);
    const double s = 128.0;
    const double simulated = simulate_sweep(ordering, 0, s, cfg);
    const double expected =
        static_cast<double>((std::uint64_t{2} << d) - 1) * (1000.0 + s * 100.0);
    EXPECT_DOUBLE_EQ(simulated, expected) << "d=" << d;
  }
}

TEST(Programs, PipelinedPhaseMatchesCostModel) {
  // E9: simulated pipelined phases must agree with
  // pipe::phase_cost_pipelined under the strict startup model.
  const auto cfg = paper_config();
  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                    ord::OrderingKind::Degree4}) {
    for (int e : {3, 4, 5}) {
      const auto seq = ord::make_exchange_sequence(kind, e);
      for (std::uint64_t q : {1u, 2u, 4u, 8u, 40u}) {
        const double s = 512.0;
        const double simulated = simulate_pipelined_phase(seq, q, s, /*d=*/e, cfg);
        const double model = pipe::phase_cost_pipelined(seq, q, s, cfg.machine);
        EXPECT_NEAR(simulated, model, 1e-6)
            << ord::to_string(kind) << " e=" << e << " q=" << q;
      }
    }
  }
}

TEST(Programs, PipelinedProgramPacksLinks) {
  // At Q=7 on BR's e=3 sequence (0102010), the full-window kernel stage
  // packs 4 packets on link 0, 2 on link 1, 1 on link 2.
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::BR, 3);
  const Program p = build_pipelined_phase_program(seq, 7, 70.0, 3);
  // Stages: 6 prologue + 1 kernel + 6 epilogue.
  ASSERT_EQ(p.size(), 13u);
  const NodeStage& kernel = p[6][0];
  ASSERT_EQ(kernel.size(), 3u);
  const double packet = 10.0;
  EXPECT_DOUBLE_EQ(kernel[0].elems, 4 * packet);
  EXPECT_DOUBLE_EQ(kernel[1].elems, 2 * packet);
  EXPECT_DOUBLE_EQ(kernel[2].elems, 1 * packet);
}

TEST(Programs, OverlappedHardwareBeatsModel) {
  // The ablation claim: letting transmissions overlap later startups can
  // only reduce the phase time.
  SimConfig overlap = paper_config();
  overlap.overlap_startup = true;
  const auto strict = paper_config();
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::Degree4, 5);
  for (std::uint64_t q : {4u, 8u, 16u}) {
    const double t_overlap = simulate_pipelined_phase(seq, q, 256.0, 5, overlap);
    const double t_strict = simulate_pipelined_phase(seq, q, 256.0, 5, strict);
    EXPECT_LE(t_overlap, t_strict + 1e-9) << q;
  }
}

TEST(Programs, PhaseOnLargerCubeUsesSameLinks) {
  // An exchange phase e < d runs in parallel in every e-subcube; the program
  // must still be valid on the full d-cube.
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::BR, 2);
  const auto cfg = paper_config();
  const double t_small = simulate_pipelined_phase(seq, 2, 64.0, 2, cfg);
  const double t_large = simulate_pipelined_phase(seq, 2, 64.0, 5, cfg);
  EXPECT_DOUBLE_EQ(t_small, t_large);
}

}  // namespace
}  // namespace jmh::sim
