#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace jmh {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(SpanStats, MeanOf) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
}

TEST(SpanStats, MaxOf) {
  const std::vector<double> xs = {1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(max_of(xs), 9.0);
}

}  // namespace
}  // namespace jmh
