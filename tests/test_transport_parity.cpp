// Transport parity: the four executors are wrappers over one sweep engine
// (solve/sweep_engine.hpp), so for a fixed seed matrix every transport must
// produce the same spectrum. Inline, mpi_lite and sim follow the identical
// rotation order and agree to the last bit in exact arithmetic; the
// pipelined path reorders floating-point operations and agrees to
// round-off.
#include <gtest/gtest.h>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"
#include "solve/parallel_jacobi.hpp"
#include "solve/pipelined_executor.hpp"
#include "solve/sim_transport.hpp"

namespace jmh::solve {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

class TransportParityTest : public ::testing::TestWithParam<ord::OrderingKind> {};

TEST_P(TransportParityTest, AllTransportsAgree) {
  const ord::OrderingKind kind = GetParam();
  const int d = 2;
  const la::Matrix a = test_matrix(16, 4242);
  const ord::JacobiOrdering ordering(kind, d);

  const DistributedResult inline_r = solve_inline(a, ordering);
  const DistributedResult mpi_r = solve_mpi(a, ordering);
  PipelinedSolveOptions popts;
  popts.q = 2;
  const DistributedResult pipe_r = solve_mpi_pipelined(a, ordering, popts);
  const SimSolveResult sim_r = solve_sim(a, ordering);

  ASSERT_TRUE(inline_r.converged);
  ASSERT_TRUE(mpi_r.converged);
  ASSERT_TRUE(pipe_r.converged);
  ASSERT_TRUE(sim_r.converged);

  // Inline and mpi_lite run the same rotation sequence: identical sweep
  // counts and (up to message framing) identical numbers.
  EXPECT_EQ(mpi_r.sweeps, inline_r.sweeps);
  EXPECT_LT(la::spectrum_distance(mpi_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::Matrix::max_abs_diff(mpi_r.eigenvectors, inline_r.eigenvectors), 1e-12);

  // SimTransport shares InlineTransport numerics exactly.
  EXPECT_EQ(sim_r.sweeps, inline_r.sweeps);
  EXPECT_LT(la::spectrum_distance(sim_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::Matrix::max_abs_diff(sim_r.eigenvectors, inline_r.eigenvectors), 1e-12);
  EXPECT_GT(sim_r.modeled_time, 0.0);

  // Pipelining reorders rotations; eigenvalue sets agree to round-off.
  EXPECT_LT(la::spectrum_distance(pipe_r.eigenvalues, inline_r.eigenvalues), 1e-10);
  EXPECT_LT(la::eigenpair_residual(a, pipe_r.eigenvalues, pipe_r.eigenvectors), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, TransportParityTest,
                         ::testing::Values(ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                                           ord::OrderingKind::Degree4,
                                           ord::OrderingKind::MinAlpha),
                         [](const ::testing::TestParamInfo<ord::OrderingKind>& info) {
                           std::string name = ord::to_string(info.param);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(TransportParity, UnevenColumnSplitAcrossTransports) {
  // 13 columns over 8 blocks: sizes differ by one; every substrate must
  // still cover all pairs.
  const la::Matrix a = test_matrix(13, 77);
  const ord::JacobiOrdering ordering(ord::OrderingKind::PermutedBR, 2);
  const DistributedResult inline_r = solve_inline(a, ordering);
  const DistributedResult mpi_r = solve_mpi(a, ordering);
  const SimSolveResult sim_r = solve_sim(a, ordering);
  ASSERT_TRUE(inline_r.converged);
  EXPECT_EQ(mpi_r.sweeps, inline_r.sweeps);
  EXPECT_LT(la::spectrum_distance(mpi_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::spectrum_distance(sim_r.eigenvalues, inline_r.eigenvalues), 1e-12);
}

TEST(TransportParity, GershgorinShiftThroughEveryWrapper) {
  const la::Matrix a = test_matrix(16, 99);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 2);
  SolveOptions opts;
  opts.gershgorin_shift = true;
  const DistributedResult inline_r = solve_inline(a, ordering, opts);
  const DistributedResult mpi_r = solve_mpi(a, ordering, opts);
  SimSolveOptions sopts;
  sopts.gershgorin_shift = true;
  const SimSolveResult sim_r = solve_sim(a, ordering, sopts);
  ASSERT_TRUE(inline_r.converged);
  EXPECT_LT(la::spectrum_distance(mpi_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::spectrum_distance(sim_r.eigenvalues, inline_r.eigenvalues), 1e-12);
}

}  // namespace
}  // namespace jmh::solve
