// Transport parity through the api facade: every backend of one SolverSpec
// is a different Transport plugged into the same sweep engine, so for a
// fixed seed matrix every backend must produce the same spectrum. Inline,
// mpi_lite and sim follow the identical rotation order and agree to the
// last bit in exact arithmetic; the pipelined path reorders floating-point
// operations and agrees to round-off.
#include <gtest/gtest.h>

#include "api/solver.hpp"
#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"

namespace jmh::api {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

SolveReport solve_with_backend(SolverSpec spec, Backend backend, const la::Matrix& a) {
  spec.backend = backend;
  return Solver::plan(spec).solve(a);
}

class TransportParityTest : public ::testing::TestWithParam<ord::OrderingKind> {};

TEST_P(TransportParityTest, AllBackendsAgree) {
  const la::Matrix a = test_matrix(16, 4242);
  SolverSpec spec = SolverSpec::parse("m=16,d=2");
  spec.ordering = GetParam();

  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);
  const SolveReport sim_r = solve_with_backend(spec, Backend::Sim, a);

  SolverSpec piped = spec;
  piped.pipelining = PipeliningPolicy::Fixed;
  piped.q = 2;
  const SolveReport pipe_r = solve_with_backend(piped, Backend::MpiLite, a);

  ASSERT_TRUE(inline_r.converged);
  ASSERT_TRUE(mpi_r.converged);
  ASSERT_TRUE(pipe_r.converged);
  ASSERT_TRUE(sim_r.converged);

  // Inline and mpi_lite run the same rotation sequence: identical sweep
  // counts and (up to message framing) identical numbers.
  EXPECT_EQ(mpi_r.sweeps, inline_r.sweeps);
  EXPECT_LT(la::spectrum_distance(mpi_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::Matrix::max_abs_diff(mpi_r.eigenvectors, inline_r.eigenvectors), 1e-12);

  // SimTransport shares InlineTransport numerics exactly.
  EXPECT_EQ(sim_r.sweeps, inline_r.sweeps);
  EXPECT_LT(la::spectrum_distance(sim_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::Matrix::max_abs_diff(sim_r.eigenvectors, inline_r.eigenvectors), 1e-12);
  ASSERT_TRUE(sim_r.has_model);
  EXPECT_GT(sim_r.modeled_time, 0.0);

  // Pipelining reorders rotations; eigenvalue sets agree to round-off.
  EXPECT_EQ(pipe_r.pipelining_q, 2u);
  EXPECT_LT(la::spectrum_distance(pipe_r.eigenvalues, inline_r.eigenvalues), 1e-10);
  EXPECT_LT(la::eigenpair_residual(a, pipe_r.eigenvalues, pipe_r.eigenvectors), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, TransportParityTest,
                         ::testing::Values(ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                                           ord::OrderingKind::Degree4,
                                           ord::OrderingKind::MinAlpha),
                         [](const ::testing::TestParamInfo<ord::OrderingKind>& pinfo) {
                           std::string name = ord::to_string(pinfo.param);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(TransportParity, UnevenColumnSplitAcrossBackends) {
  // 13 columns over 8 blocks: sizes differ by one; every substrate must
  // still cover all pairs.
  const la::Matrix a = test_matrix(13, 77);
  const SolverSpec spec = SolverSpec::parse("ordering=pbr,m=13,d=2");
  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);
  const SolveReport sim_r = solve_with_backend(spec, Backend::Sim, a);
  ASSERT_TRUE(inline_r.converged);
  EXPECT_EQ(mpi_r.sweeps, inline_r.sweeps);
  EXPECT_LT(la::spectrum_distance(mpi_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::spectrum_distance(sim_r.eigenvalues, inline_r.eigenvalues), 1e-12);
}

TEST(TransportParity, GershgorinShiftThroughEveryBackend) {
  const la::Matrix a = test_matrix(16, 99);
  const SolverSpec spec = SolverSpec::parse("ordering=br,m=16,d=2,shift=1");
  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);
  const SolveReport sim_r = solve_with_backend(spec, Backend::Sim, a);
  ASSERT_TRUE(inline_r.converged);
  EXPECT_LT(la::spectrum_distance(mpi_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::spectrum_distance(sim_r.eigenvalues, inline_r.eigenvalues), 1e-12);
}

}  // namespace
}  // namespace jmh::api
