#include "pipe/pipelining.hpp"

#include <gtest/gtest.h>

#include "ord/br.hpp"
#include "ord/degree4.hpp"
#include "ord/permuted_br.hpp"

namespace jmh::pipe {
namespace {

using ord::br_sequence;

TEST(Pipelining, UnpipelinedDegenerate) {
  const auto seq = br_sequence(3);  // K = 7
  const PipelineSchedule s(seq, 1);
  EXPECT_FALSE(s.deep());
  ASSERT_EQ(s.stages().size(), 7u);
  for (const auto& st : s.stages()) {
    EXPECT_EQ(st.part, Stage::Part::Kernel);
    EXPECT_EQ(st.window_len, 1);
    EXPECT_EQ(st.distinct, 1);
    EXPECT_EQ(st.max_mult, 1);
  }
  EXPECT_EQ(s.total_packets(), 7u);
}

TEST(Pipelining, PaperShallowExample) {
  // Section 2.4: K=7, links 0,1,0,2,0,1,0, Q=3. Kernel windows are the
  // length-3 sliding windows; prologue uses links 0 then 0-1; epilogue 1-0
  // then 0.
  const auto seq = br_sequence(3);
  const PipelineSchedule s(seq, 3);
  EXPECT_FALSE(s.deep());
  // 2 prologue + 5 kernel + 2 epilogue.
  ASSERT_EQ(s.stages().size(), 9u);
  EXPECT_EQ(s.stages()[0].part, Stage::Part::Prologue);
  EXPECT_EQ(s.stages()[0].window_len, 1);
  EXPECT_EQ(s.stages()[1].window_len, 2);
  EXPECT_EQ(s.stages()[1].distinct, 2);  // links 0-1
  for (int i = 2; i <= 6; ++i) EXPECT_EQ(s.stages()[static_cast<std::size_t>(i)].part, Stage::Part::Kernel);
  // kernel windows: 010, 102, 020, 201, 010
  EXPECT_EQ(s.stages()[2].distinct, 2);
  EXPECT_EQ(s.stages()[3].distinct, 3);
  EXPECT_EQ(s.stages()[4].distinct, 2);
  EXPECT_EQ(s.stages()[5].distinct, 3);
  EXPECT_EQ(s.stages()[6].distinct, 2);
  EXPECT_EQ(s.stages()[7].part, Stage::Part::Epilogue);
  EXPECT_EQ(s.stages()[7].window_len, 2);
  EXPECT_EQ(s.stages()[8].window_len, 1);
  EXPECT_EQ(s.total_packets(), 21u);  // K*Q
}

TEST(Pipelining, PaperDeepExample) {
  // Section 2.4: K=3 (links 0,1,0), Q=100: prologue 0 then 0-1; 98 kernel
  // stages of 0-1-0; epilogue 1-0 then 0.
  const auto seq = br_sequence(2);
  const PipelineSchedule s(seq, 100);
  EXPECT_TRUE(s.deep());
  ASSERT_EQ(s.stages().size(), 2u + 98u + 2u);
  EXPECT_EQ(s.stages()[0].part, Stage::Part::Prologue);
  EXPECT_EQ(s.stages()[0].distinct, 1);
  EXPECT_EQ(s.stages()[1].distinct, 2);
  for (std::size_t i = 2; i < 100; ++i) {
    EXPECT_EQ(s.stages()[i].part, Stage::Part::Kernel);
    EXPECT_EQ(s.stages()[i].window_len, 3);
    EXPECT_EQ(s.stages()[i].distinct, 2);
    EXPECT_EQ(s.stages()[i].max_mult, 2);  // link 0 carries two packets
  }
  EXPECT_EQ(s.stages()[100].part, Stage::Part::Epilogue);
  EXPECT_EQ(s.total_packets(), 300u);  // K*Q
}

TEST(Pipelining, QEqualsKBoundary) {
  const auto seq = br_sequence(3);
  const PipelineSchedule s(seq, 7);
  EXPECT_FALSE(s.deep());
  // 6 prologue + 1 kernel + 6 epilogue.
  ASSERT_EQ(s.stages().size(), 13u);
  EXPECT_EQ(s.stages()[6].part, Stage::Part::Kernel);
  EXPECT_EQ(s.stages()[6].window_len, 7);
  EXPECT_EQ(s.stages()[6].max_mult, seq.alpha());
  EXPECT_EQ(s.total_packets(), 49u);
}

TEST(Pipelining, DeepKernelUsesAlpha) {
  const auto seq = ord::permuted_br_sequence(5);
  const PipelineSchedule s(seq, 40);  // K = 31
  for (const auto& st : s.stages()) {
    if (st.part == Stage::Part::Kernel) {
      EXPECT_EQ(st.distinct, 5);
      EXPECT_EQ(st.max_mult, seq.alpha());
    }
  }
}

class PacketAccountingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketAccountingTest, TotalPacketsIsKQ) {
  const auto seq = ord::degree4_sequence(5);  // K = 31
  const std::uint64_t q = GetParam();
  const PipelineSchedule s(seq, q);
  EXPECT_EQ(s.total_packets(), seq.size() * q);
}

INSTANTIATE_TEST_SUITE_P(Degrees, PacketAccountingTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 30, 31, 32, 33, 64,
                                           100));

TEST(Pipelining, RejectsZeroQ) {
  EXPECT_THROW(PipelineSchedule(br_sequence(3), 0), std::invalid_argument);
}

TEST(Pipelining, Degree4WindowsAreDistinctAtQ4) {
  // The payoff of the degree-4 ordering: at Q=4 almost every kernel stage
  // uses 4 distinct links (max_mult 1), so 4 messages travel in parallel.
  const auto seq = ord::degree4_sequence(6);
  const PipelineSchedule s(seq, 4);
  std::size_t distinct4 = 0, kernels = 0;
  for (const auto& st : s.stages()) {
    if (st.part != Stage::Part::Kernel) continue;
    ++kernels;
    if (st.distinct == 4 && st.max_mult == 1) ++distinct4;
  }
  EXPECT_GT(distinct4, kernels * 9 / 10);
}

}  // namespace
}  // namespace jmh::pipe
