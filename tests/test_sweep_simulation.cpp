// Full-sweep cross-validation: the discrete-event simulation of an entire
// pipelined sweep must reproduce pipe::sweep_cost_pipelined exactly when
// run with the same per-phase pipelining degrees -- closing the loop on
// the Figure 2 methodology at sweep granularity.
#include <gtest/gtest.h>

#include "pipe/cost_model.hpp"
#include "sim/programs.hpp"

namespace jmh {
namespace {

sim::SimConfig paper_config() {
  sim::SimConfig c;
  c.machine.ts = 1000.0;
  c.machine.tw = 100.0;
  return c;
}

struct SweepSimCase {
  ord::OrderingKind kind;
  int d;
  double m;
};

class SweepSimTest : public ::testing::TestWithParam<SweepSimCase> {};

TEST_P(SweepSimTest, SimulatedSweepMatchesCostModel) {
  const auto [kind, d, m] = GetParam();
  const auto cfg = paper_config();
  pipe::ProblemParams prob;
  prob.d = d;
  prob.m = m;
  const pipe::SweepCost model = pipe::sweep_cost_pipelined(kind, prob, cfg.machine);

  const ord::JacobiOrdering ordering(kind, d);
  const sim::SimResult simulated = sim::simulate_sweep_pipelined(
      ordering, /*sweep=*/0, prob.step_message_elems(), model.q, cfg);

  EXPECT_NEAR(simulated.makespan, model.total, 1e-6 * model.total)
      << ord::to_string(kind) << " d=" << d;
}

std::vector<SweepSimCase> sweep_sim_cases() {
  std::vector<SweepSimCase> cases;
  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                    ord::OrderingKind::Degree4, ord::OrderingKind::MinAlpha}) {
    cases.push_back({kind, 3, 512.0});
    cases.push_back({kind, 5, 4096.0});
    cases.push_back({kind, 6, 256.0});  // shallow regime (few columns/block)
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, SweepSimTest, ::testing::ValuesIn(sweep_sim_cases()),
                         [](const ::testing::TestParamInfo<SweepSimCase>& pinfo) {
                           std::string name = ord::to_string(pinfo.param.kind) + "_d" +
                                              std::to_string(pinfo.param.d) + "_m" +
                                              std::to_string(static_cast<int>(pinfo.param.m));
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(SweepSim, LaterSweepsCostTheSame) {
  // sigma_s only relabels links; the sweep cost is relabel-invariant.
  const auto cfg = paper_config();
  pipe::ProblemParams prob;
  prob.d = 4;
  prob.m = 1024.0;
  const auto model =
      pipe::sweep_cost_pipelined(ord::OrderingKind::PermutedBR, prob, cfg.machine);
  const ord::JacobiOrdering ordering(ord::OrderingKind::PermutedBR, 4);
  const double s0 =
      sim::simulate_sweep_pipelined(ordering, 0, prob.step_message_elems(), model.q, cfg)
          .makespan;
  for (int sweep : {1, 2, 3}) {
    const double s =
        sim::simulate_sweep_pipelined(ordering, sweep, prob.step_message_elems(), model.q, cfg)
            .makespan;
    EXPECT_DOUBLE_EQ(s, s0) << sweep;
  }
}

TEST(SweepSim, PipelinedSweepBeatsUnpipelined) {
  const auto cfg = paper_config();
  pipe::ProblemParams prob;
  prob.d = 5;
  prob.m = 4096.0;
  const auto model = pipe::sweep_cost_pipelined(ord::OrderingKind::Degree4, prob, cfg.machine);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 5);
  const double pipelined =
      sim::simulate_sweep_pipelined(ordering, 0, prob.step_message_elems(), model.q, cfg)
          .makespan;
  const double plain = sim::simulate_sweep(ordering, 0, prob.step_message_elems(), cfg);
  EXPECT_LT(pipelined, plain);
}

TEST(SweepSim, WrongDegreeCountRejected) {
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 3);
  EXPECT_THROW(
      sim::build_pipelined_sweep_program(ordering, 0, 64.0, {1, 1}),  // needs 3 degrees
      std::invalid_argument);
}

TEST(SweepSim, UtilizationRisesWithBetterOrdering) {
  const auto cfg = paper_config();
  pipe::ProblemParams prob;
  prob.d = 5;
  prob.m = 4096.0;
  const auto run = [&](ord::OrderingKind kind) {
    const auto model = pipe::sweep_cost_pipelined(kind, prob, cfg.machine);
    const ord::JacobiOrdering ordering(kind, 5);
    return sim::simulate_sweep_pipelined(ordering, 0, prob.step_message_elems(), model.q, cfg);
  };
  const auto br = run(ord::OrderingKind::BR);
  const auto d4 = run(ord::OrderingKind::Degree4);
  EXPECT_GT(d4.mean_link_utilization(), br.mean_link_utilization());
}

}  // namespace
}  // namespace jmh
