// The fused kernels (la/kernels.hpp) against their naive references.
//
// gram3's accumulation order is pinned by contract (4 lanes, tail into
// lane 0, (l0+l1)+(l2+l3) combine), so a scalar transcription of that
// contract must match the library kernel BIT-FOR-BIT -- the library builds
// with -ffp-contract=off precisely so vectorization cannot change
// rounding. fused_rotate is elementwise, so it must match two consecutive
// apply_rotation calls bit-for-bit with no caveats.
//
// This file also smoke-tests the allocation-free serialize path with
// common::AllocGuard, so steady-state serialize_into / assign_from /
// split_into / merge_into round trips can be asserted to allocate nothing.
// The guard only counts in JMH_DASSERT (debug) builds; in release builds
// those assertions are vacuous and the tests skip.
#include "la/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/alloc_guard.hpp"
#include "common/rng.hpp"
#include "la/matrix.hpp"
#include "la/rotation.hpp"
#include "la/sym_gen.hpp"
#include "solve/block_layout.hpp"
#include "solve/jacobi_node.hpp"

namespace jmh::la {
namespace {

// Scalar transcription of gram3's pinned accumulation order.
kernels::Gram gram3_reference(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double xx[4] = {0, 0, 0, 0}, yy[4] = {0, 0, 0, 0}, xy[4] = {0, 0, 0, 0};
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    for (std::size_t k = 0; k < 4; ++k) {
      xx[k] += x[r + k] * x[r + k];
      yy[k] += y[r + k] * y[r + k];
      xy[k] += x[r + k] * y[r + k];
    }
  }
  for (; r < n; ++r) {
    xx[0] += x[r] * x[r];
    yy[0] += y[r] * y[r];
    xy[0] += x[r] * y[r];
  }
  kernels::Gram g;
  g.xx = (xx[0] + xx[1]) + (xx[2] + xx[3]);
  g.yy = (yy[0] + yy[1]) + (yy[2] + yy[3]);
  g.xy = (xy[0] + xy[1]) + (xy[2] + xy[3]);
  return g;
}

std::vector<double> random_column(std::size_t n, Xoshiro256& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

// Sizes chosen to exercise every unroll-tail length (n % 4 in {0,1,2,3})
// at small, vector-width, and cache-relevant scales.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 100, 1021, 1024};

TEST(GramKernel, MatchesPinnedOrderReferenceBitForBit) {
  Xoshiro256 rng(11);
  for (const std::size_t n : kSizes) {
    const auto x = random_column(n, rng);
    const auto y = random_column(n, rng);
    const kernels::Gram got = kernels::gram3(x.data(), y.data(), n);
    const kernels::Gram want = gram3_reference(x, y);
    EXPECT_EQ(got.xx, want.xx) << "n=" << n;
    EXPECT_EQ(got.yy, want.yy) << "n=" << n;
    EXPECT_EQ(got.xy, want.xy) << "n=" << n;
  }
}

TEST(GramKernel, AgreesWithSequentialDot) {
  // Different accumulation order than la::dot, so equality is approximate:
  // both are within a few ulps of the exact sum.
  Xoshiro256 rng(13);
  for (const std::size_t n : kSizes) {
    if (n == 0) continue;
    const auto x = random_column(n, rng);
    const auto y = random_column(n, rng);
    const kernels::Gram g = kernels::gram3(x.data(), y.data(), n);
    const double tol = 1e-13 * static_cast<double>(n);
    EXPECT_NEAR(g.xx, dot(x, x), tol * g.xx);
    EXPECT_NEAR(g.yy, dot(y, y), tol * g.yy);
    EXPECT_NEAR(g.xy, dot(x, y), tol * (std::abs(g.xy) + 1.0));
  }
}

TEST(FusedRotate, MatchesTwoApplyRotationsBitForBit) {
  Xoshiro256 rng(17);
  const double c = 0.8, s = 0.6;
  for (const std::size_t n : kSizes) {
    auto bi = random_column(n, rng), bj = random_column(n, rng);
    auto vi = random_column(n, rng), vj = random_column(n, rng);
    auto bi_ref = bi, bj_ref = bj, vi_ref = vi, vj_ref = vj;

    kernels::fused_rotate(bi.data(), bj.data(), vi.data(), vj.data(), n, c, s);
    apply_rotation(bi_ref, bj_ref, c, s);
    apply_rotation(vi_ref, vj_ref, c, s);

    EXPECT_EQ(bi, bi_ref) << "n=" << n;
    EXPECT_EQ(bj, bj_ref) << "n=" << n;
    EXPECT_EQ(vi, vi_ref) << "n=" << n;
    EXPECT_EQ(vj, vj_ref) << "n=" << n;
  }
}

TEST(FusedPairing, PairColumnsStatsComposesTheKernels) {
  // pair_columns_stats must be exactly gram3 -> compute_rotation ->
  // fused_rotate; no hidden extra arithmetic.
  Xoshiro256 rng(19);
  for (const std::size_t n : {5ul, 16ul, 33ul}) {
    auto bi = random_column(n, rng), bj = random_column(n, rng);
    auto vi = random_column(n, rng), vj = random_column(n, rng);
    auto bi2 = bi, bj2 = bj, vi2 = vi, vj2 = vj;

    const PairOutcome o = pair_columns_stats(bi, bj, vi, vj, 1e-14);

    const kernels::Gram g = kernels::gram3(bi2.data(), bj2.data(), n);
    EXPECT_EQ(o.bii, g.xx);
    EXPECT_EQ(o.bjj, g.yy);
    EXPECT_EQ(o.bij, g.xy);
    const RotationDecision d = compute_rotation(g.xx, g.yy, g.xy, 1e-14);
    ASSERT_EQ(o.rotated, d.rotate);
    if (d.rotate)
      kernels::fused_rotate(bi2.data(), bj2.data(), vi2.data(), vj2.data(), n, d.c, d.s);
    EXPECT_EQ(bi, bi2);
    EXPECT_EQ(bj, bj2);
    EXPECT_EQ(vi, vi2);
    EXPECT_EQ(vj, vj2);
  }
}

}  // namespace
}  // namespace jmh::la

namespace jmh::solve {
namespace {

ColumnBlock sample_block(std::size_t m) {
  Xoshiro256 rng(23);
  const la::Matrix a = la::random_uniform_symmetric(m, rng);
  const BlockLayout layout(m, 2);
  return extract_block(a, layout, 1);
}

TEST(AllocationFree, SteadyStateSerializeRoundTrip) {
  if (!common::kAllocGuardActive) GTEST_SKIP() << "AllocGuard counts only in JMH_DASSERT builds";
  const ColumnBlock blk = sample_block(32);
  net::Payload buf;
  ColumnBlock back;
  // Warm-up sizes every buffer; steady state must then reuse capacity.
  blk.serialize_into(buf);
  back.assign_from(buf);

  const common::AllocGuard guard;
  for (int i = 0; i < 32; ++i) {
    blk.serialize_into(buf);
    back.assign_from(buf);
  }
  EXPECT_EQ(guard.allocations(), 0u)
      << "serialize_into/assign_from allocated in steady state";
  EXPECT_EQ(back.cols, blk.cols);
  EXPECT_EQ(back.b, blk.b);
  EXPECT_EQ(back.v, blk.v);
}

TEST(AllocationFree, SteadyStateSplitMerge) {
  if (!common::kAllocGuardActive) GTEST_SKIP() << "AllocGuard counts only in JMH_DASSERT builds";
  const ColumnBlock blk = sample_block(32);
  std::vector<ColumnBlock> packets;
  ColumnBlock merged;
  blk.split_into(4, packets);
  ColumnBlock::merge_into(packets, merged);

  const common::AllocGuard guard;
  for (int i = 0; i < 32; ++i) {
    blk.split_into(4, packets);
    ColumnBlock::merge_into(packets, merged);
  }
  EXPECT_EQ(guard.allocations(), 0u)
      << "split_into/merge_into allocated in steady state";
  EXPECT_EQ(merged.cols, blk.cols);
  EXPECT_EQ(merged.b, blk.b);
  EXPECT_EQ(merged.v, blk.v);
}

}  // namespace
}  // namespace jmh::solve
