#include "ord/analysis.hpp"

#include <gtest/gtest.h>

#include "ord/br.hpp"
#include "ord/degree4.hpp"
#include "ord/permuted_br.hpp"

namespace jmh::ord {
namespace {

TEST(Analysis, ReportBasicsForBr) {
  const auto r = analyze(br_sequence(5));
  EXPECT_EQ(r.e, 5);
  EXPECT_EQ(r.length, 31u);
  EXPECT_EQ(r.alpha, 16);
  EXPECT_EQ(r.lower_bound, 7u);
  EXPECT_NEAR(r.alpha_ratio, 16.0 / 7.0, 1e-12);
  EXPECT_EQ(r.degree, 2);
  EXPECT_TRUE(r.valid);
  // BR histogram is geometric: 16 8 4 2 1 -> balance 1/16.
  EXPECT_NEAR(r.balance, 1.0 / 16.0, 1e-12);
}

TEST(Analysis, PermutedBrIsMoreBalanced) {
  for (int e : {6, 8, 10}) {
    const auto br = analyze(br_sequence(e));
    const auto pbr = analyze(permuted_br_sequence(e));
    EXPECT_GT(pbr.balance, br.balance) << e;
    EXPECT_LT(pbr.alpha_ratio, br.alpha_ratio) << e;
  }
}

TEST(Analysis, DistinctFractionLengthAndRange) {
  const auto r = analyze(degree4_sequence(6));
  ASSERT_EQ(r.distinct_fraction.size(), 6u);
  for (double f : r.distinct_fraction) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Degree-4 means lengths 1..4 are majority-distinct, length 5 is not.
  EXPECT_GT(r.distinct_fraction[3], 0.5);
  EXPECT_LT(r.distinct_fraction[4], 0.5);
}

TEST(Analysis, WindowProfileMonotone) {
  const auto seq = permuted_br_sequence(7);
  const auto profile = window_max_mult_profile(seq, 20);
  ASSERT_EQ(profile.size(), 20u);
  EXPECT_EQ(profile[0], 1);  // singleton windows
  for (std::size_t i = 1; i < profile.size(); ++i)
    EXPECT_GE(profile[i], profile[i - 1]);  // longer windows can't reduce max mult
}

TEST(Analysis, WindowProfileBrDoublesEveryOther) {
  // BR: any window of length q contains ceil(q/2) zeros.
  const auto profile = window_max_mult_profile(br_sequence(6), 8);
  for (std::size_t q = 1; q <= 8; ++q)
    EXPECT_EQ(profile[q - 1], static_cast<int>((q + 1) / 2)) << q;
}

TEST(Analysis, MeanDistinctLinks) {
  // Degree-4 at q=4: nearly every window has 4 distinct links.
  EXPECT_GT(mean_distinct_links(degree4_sequence(6), 4), 3.8);
  // BR at q=4: windows look like 0x0y -> 3 distinct at best.
  EXPECT_LE(mean_distinct_links(br_sequence(6), 4), 3.0);
}

TEST(Analysis, RenderReportMentionsKeyNumbers) {
  const auto text = render_report(analyze(br_sequence(4)), "BR");
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("8"), std::string::npos);   // alpha of BR e=4
  EXPECT_NE(text.find("yes"), std::string::npos);  // validity
}

TEST(Analysis, CompareOrderingsSkipsUndefinedDegree4) {
  const auto small = compare_orderings(3);
  EXPECT_EQ(small.find("degree-4"), std::string::npos);
  const auto big = compare_orderings(5);
  EXPECT_NE(big.find("degree-4"), std::string::npos);
  EXPECT_NE(big.find("permuted-BR"), std::string::npos);
}

}  // namespace
}  // namespace jmh::ord
