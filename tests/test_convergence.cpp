#include "solve/convergence.hpp"

#include <gtest/gtest.h>

namespace jmh::solve {
namespace {

ConvergenceConfig quick_config() {
  ConvergenceConfig c;
  c.repetitions = 5;  // keep unit tests fast; the bench runs the full 30
  return c;
}

TEST(Convergence, CellConverges) {
  const auto cell = convergence_cell(16, 4, ord::OrderingKind::BR, quick_config());
  EXPECT_EQ(cell.m, 16u);
  EXPECT_EQ(cell.p, 4);
  EXPECT_GT(cell.mean_sweeps, 2.0);
  EXPECT_LT(cell.mean_sweeps, 12.0);
}

TEST(Convergence, DeterministicAcrossCalls) {
  const auto a = convergence_cell(16, 2, ord::OrderingKind::Degree4, quick_config());
  const auto b = convergence_cell(16, 2, ord::OrderingKind::Degree4, quick_config());
  EXPECT_DOUBLE_EQ(a.mean_sweeps, b.mean_sweeps);
}

TEST(Convergence, OrderingsHaveSimilarRates) {
  // The paper's 3.4 conclusion: convergence is practically the same for BR,
  // permuted-BR and degree-4. Allow one sweep of slack on a small sample.
  const auto cfg = quick_config();
  const double br = convergence_cell(16, 4, ord::OrderingKind::BR, cfg).mean_sweeps;
  const double pbr = convergence_cell(16, 4, ord::OrderingKind::PermutedBR, cfg).mean_sweeps;
  const double d4 = convergence_cell(16, 4, ord::OrderingKind::Degree4, cfg).mean_sweeps;
  EXPECT_NEAR(pbr, br, 1.0);
  EXPECT_NEAR(d4, br, 1.0);
}

TEST(Convergence, SweepsGrowWithMatrixSize) {
  const auto cfg = quick_config();
  const double small = convergence_cell(8, 2, ord::OrderingKind::BR, cfg).mean_sweeps;
  const double large = convergence_cell(64, 2, ord::OrderingKind::BR, cfg).mean_sweeps;
  EXPECT_GE(large + 0.5, small);
}

TEST(Convergence, RejectsBadP) {
  EXPECT_THROW(convergence_cell(16, 3, ord::OrderingKind::BR, quick_config()),
               std::invalid_argument);
  EXPECT_THROW(convergence_cell(16, 1, ord::OrderingKind::BR, quick_config()),
               std::invalid_argument);
}

TEST(Convergence, Table2GridShape) {
  ConvergenceConfig cfg;
  cfg.repetitions = 1;  // shape test only
  const auto rows = table2_grid(cfg);
  // m=8: P in {2,4}; m=16: {2,4,8}; m=32: {2..16}; m=64: {2..32} -> 14 rows.
  ASSERT_EQ(rows.size(), 14u);
  EXPECT_EQ(rows.front().m, 8u);
  EXPECT_EQ(rows.front().p, 2);
  EXPECT_EQ(rows.back().m, 64u);
  EXPECT_EQ(rows.back().p, 32);
  for (const auto& r : rows) {
    EXPECT_GT(r.br, 0.0);
    EXPECT_GT(r.permuted_br, 0.0);
    EXPECT_GT(r.degree4, 0.0);
  }
}

}  // namespace
}  // namespace jmh::solve
