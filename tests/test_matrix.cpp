#include "la/matrix.hpp"

#include <gtest/gtest.h>

namespace jmh::la {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t c = 0; c < 4; ++c)
    for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  m(1, 1) = 4;
  const auto& d = m.data();
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], 3);
  EXPECT_EQ(d[3], 4);
}

TEST(Matrix, ColSpanAliasesStorage) {
  Matrix m(3, 3);
  auto col = m.col(1);
  col[2] = 7.5;
  EXPECT_EQ(m(2, 1), 7.5);
}

#ifndef NDEBUG
// Element/column bounds checks are JMH_DASSERT: present in debug builds
// only (release builds compile them out of the hot kernels).
TEST(Matrix, BoundsCheckedInDebug) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::invalid_argument);
  EXPECT_THROW(m(0, 2), std::invalid_argument);
  EXPECT_THROW(m.col(2), std::invalid_argument);
}
#endif

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2), b(2, 2);
  a(1, 1) = 3.0;
  b(1, 1) = 5.5;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 2.5);
}

TEST(Matvec, KnownProduct) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const std::vector<double> x = {1, 1, 1};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Dot, Basics) {
  const std::vector<double> x = {1, 2, 3}, y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
}

TEST(OffdiagFrobenius, CountsOnlyOffDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 100;
  a(1, 1) = -50;
  a(0, 1) = 3;
  a(1, 0) = 4;
  EXPECT_DOUBLE_EQ(offdiag_frobenius(a), 5.0);
}

}  // namespace
}  // namespace jmh::la
