// obs::Registry: counter/histogram identity and arithmetic, the log-linear
// quantile bounds, RAII gauge lifetime, both expositions, and counter
// exactness under concurrent hammering.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace jmh::obs {
namespace {

TEST(Registry, NamedCountersAreSharedAndStable) {
  Registry reg;
  Counter& a = reg.counter("jobs");
  Counter& b = reg.counter("jobs");
  EXPECT_EQ(&a, &b) << "same name must resolve to one counter";
  EXPECT_EQ(a.value(), 0u);
  a.add();
  a.add(41);
  EXPECT_EQ(b.value(), 42u);
  EXPECT_NE(&a, &reg.counter("other_jobs"));
}

TEST(Registry, HistogramBucketsByBitWidth) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_upper(0.5), 0u) << "empty histogram quantile is 0";

  h.observe(0);    // bucket 0: exact zeros
  h.observe(1);    // bucket 1: [1, 2)
  h.observe(5);    // bucket 3: [4, 8)
  h.observe(100);  // bucket 7: [64, 128)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
  EXPECT_EQ(h.bucket(2), 0u);

  // quantile_upper answers the inclusive power-of-two upper bound of the
  // bucket the q-th sample falls in (samples ordered by bucket).
  EXPECT_EQ(h.quantile_upper(0.0), 0u);    // rank 0: the exact zero
  EXPECT_EQ(h.quantile_upper(0.5), 1u);    // rank 1: bucket [1,2) -> 1
  EXPECT_EQ(h.quantile_upper(0.9), 7u);    // rank 2 of 0..3: bucket [4,8) -> 7
  EXPECT_EQ(h.quantile_upper(1.0), 127u);  // rank 3: bucket [64,128) -> 127
}

TEST(Registry, GaugeHandleUnregistersOnDestruction) {
  Registry reg;
  double depth = 3.5;
  {
    const GaugeHandle handle = reg.register_gauge("queue_depth", [&depth] { return depth; });
    const std::string text = reg.render_text();
    EXPECT_NE(text.find("queue_depth 3.5"), std::string::npos) << text;
  }
  EXPECT_EQ(reg.render_text().find("queue_depth"), std::string::npos)
      << "destroyed handle must remove the gauge";
}

TEST(Registry, RenderTextIsSortedOneMetricPerLine) {
  Registry reg;
  reg.counter("b_second").add(2);
  reg.counter("a_first").add(1);
  reg.histogram("lat").observe(10);
  const std::string text = reg.render_text();
  const std::size_t a = text.find("a_first 1");
  const std::size_t b = text.find("b_second 2");
  ASSERT_NE(a, std::string::npos) << text;
  ASSERT_NE(b, std::string::npos) << text;
  EXPECT_LT(a, b) << "metrics must render sorted by name";
  EXPECT_NE(text.find("lat.count 1"), std::string::npos) << text;
  EXPECT_NE(text.find("lat.sum 10"), std::string::npos) << text;
  EXPECT_NE(text.find("lat.p50 "), std::string::npos) << text;
}

TEST(Registry, RenderJsonHasAllThreeSections) {
  Registry reg;
  reg.counter("done").add(7);
  reg.histogram("lat").observe(100);
  double busy = 0.25;
  const GaugeHandle handle = reg.register_gauge("busy", [&busy] { return busy; });
  const std::string json = reg.render_json();
  EXPECT_EQ(json.rfind("{\"counters\":{", 0), 0u) << json;
  EXPECT_NE(json.find("\"done\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"busy\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

// The add() contract is a relaxed fetch_add: concurrent increments must
// never be lost. Also hammers create-on-first-use from several threads.
TEST(Registry, ConcurrentCountingIsExact) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      Counter& c = reg.counter("hammer");  // racing first-use lookups
      Histogram& h = reg.histogram("hammer_lat");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(i);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("hammer").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("hammer_lat").count(), kThreads * kPerThread);
}

TEST(Registry, GlobalIsOneInstance) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
  // The process-wide registry is shared state: poke a test-scoped name and
  // verify identity, leave everything else alone.
  Counter& c = Registry::global().counter("test.obs_registry.probe");
  c.add();
  EXPECT_GE(Registry::global().counter("test.obs_registry.probe").value(), 1u);
}

}  // namespace
}  // namespace jmh::obs
