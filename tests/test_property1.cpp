// Property-based validation of the paper's Property 1: applying a link
// permutation to a subsequence of a valid sequence that is itself a
// Hamiltonian path of a subcube yields another valid sequence.
//
// REPRODUCTION FINDING (DESIGN.md note 7): the property as literally
// stated -- "let sigma be ANY permutation of the link identifiers" -- is
// false: sigma must map the subsequence's own link set into itself, or the
// relabeled walk leaves its subcube and collides with nodes the rest of
// the sequence visits. Counterexample below
// (PermutationEscapingSubcubeBreaksValidity). Every transformation the
// paper actually performs satisfies the stronger precondition, so the
// permuted-BR construction is unaffected; these tests fuzz the corrected
// statement far beyond the specific transpositions the paper uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "ord/br.hpp"
#include "ord/degree4.hpp"
#include "ord/min_alpha.hpp"
#include "ord/permuted_br.hpp"

namespace jmh::ord {
namespace {

// Random permutation of links [0, span) extended by the identity on
// [span, e): the corrected Property-1 precondition for a subsequence whose
// subcube is spanned by dimensions [0, span).
std::vector<Link> random_subcube_permutation(int e, int span, Xoshiro256& rng) {
  std::vector<Link> p(static_cast<std::size_t>(e));
  std::iota(p.begin(), p.end(), 0);
  for (std::size_t i = static_cast<std::size_t>(span); i > 1; --i)
    std::swap(p[i - 1], p[rng.below(i)]);
  return p;
}

// The (e-k-1)-subsequences of D_e^BR occupy [j*B, j*B + B - 2], B = 2^{e-k-1},
// and use links [0, e-k-2].
struct Subseq {
  std::size_t begin;
  std::size_t len;
  int link_span;
};

Subseq br_subsequence(int e, int k, std::size_t j) {
  const std::size_t block = std::size_t{1} << (e - k - 1);
  return {j * block, block - 1, e - k - 1};
}

class Property1Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Property1Fuzz, SubcubePermutationOnBrSubsequencePreservesValidity) {
  const int e = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(e) * 7919);
  for (int trial = 0; trial < 40; ++trial) {
    auto links = br_sequence(e).links();
    const int k = static_cast<int>(rng.below(static_cast<std::uint64_t>(e - 1)));
    const std::size_t num_subseqs = std::size_t{1} << (k + 1);
    const auto [begin, len, span] = br_subsequence(e, k, rng.below(num_subseqs));
    const auto perm = random_subcube_permutation(e, span, rng);
    for (std::size_t p = begin; p < begin + len; ++p)
      links[p] = perm[static_cast<std::size_t>(links[p])];
    EXPECT_TRUE(LinkSequence(links, e).is_valid())
        << "e=" << e << " trial=" << trial << " k=" << k;
  }
}

TEST_P(Property1Fuzz, StackedSubcubePermutationsPreserveValidity) {
  // Apply a random subcube-stabilizing permutation to every odd subsequence
  // at every level, mimicking the permuted-BR construction with arbitrary
  // (not the paper's) base permutations. As in the construction, a
  // permutation for a nested subsequence must be conjugated by ("compounded
  // with", in the paper's words) the permutations already applied to its
  // enclosing subsequences -- otherwise it no longer stabilizes the
  // subsequence's *current* link set; the naive unconjugated variant is the
  // negative control below.
  const int e = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(e) * 104729);
  auto links = br_sequence(e).links();
  std::vector<std::vector<Link>> phi(1);  // enclosing composition per subsequence
  {
    std::vector<Link> id(static_cast<std::size_t>(e));
    std::iota(id.begin(), id.end(), 0);
    phi[0] = id;
  }
  for (int k = 0; k + 1 < e; ++k) {
    std::vector<std::vector<Link>> next;
    for (const auto& p : phi) {
      next.push_back(p);
      next.push_back(p);
    }
    phi = std::move(next);
    const std::size_t num_subseqs = std::size_t{1} << (k + 1);
    for (std::size_t j = 1; j < num_subseqs; j += 2) {
      const auto [begin, len, span] = br_subsequence(e, k, j);
      if (len == 0) continue;
      const auto base = random_subcube_permutation(e, span, rng);
      // sigma = phi . base . phi^{-1}
      std::vector<Link> inv(static_cast<std::size_t>(e));
      for (int x = 0; x < e; ++x) inv[static_cast<std::size_t>(phi[j][static_cast<std::size_t>(x)])] = x;
      std::vector<Link> sigma(static_cast<std::size_t>(e));
      for (int x = 0; x < e; ++x)
        sigma[static_cast<std::size_t>(x)] =
            phi[j][static_cast<std::size_t>(base[static_cast<std::size_t>(inv[static_cast<std::size_t>(x)])])];
      for (std::size_t p = begin; p < begin + len; ++p)
        links[p] = sigma[static_cast<std::size_t>(links[p])];
      // Compound for deeper levels.
      std::vector<Link> composed(static_cast<std::size_t>(e));
      for (int x = 0; x < e; ++x)
        composed[static_cast<std::size_t>(x)] =
            sigma[static_cast<std::size_t>(phi[j][static_cast<std::size_t>(x)])];
      phi[j] = composed;
    }
    ASSERT_TRUE(LinkSequence(links, e).is_valid()) << "e=" << e << " after level " << k;
  }
}

TEST(Property1, UnconjugatedNestedPermutationsBreakValidity) {
  // Negative control for the stacked test: skipping the paper's
  // compounding step (applying a raw [0, e-k-2]-stabilizing permutation to
  // a subsequence that earlier transformations already relabeled) breaks
  // validity for some draw.
  const int e = 6;
  Xoshiro256 rng(static_cast<std::uint64_t>(e) * 104729);
  bool found_invalid = false;
  for (int trial = 0; trial < 50 && !found_invalid; ++trial) {
    auto links = br_sequence(e).links();
    for (int k = 0; k + 1 < e && !found_invalid; ++k) {
      const std::size_t num_subseqs = std::size_t{1} << (k + 1);
      for (std::size_t j = 1; j < num_subseqs; j += 2) {
        const auto [begin, len, span] = br_subsequence(e, k, j);
        if (len == 0) continue;
        const auto perm = random_subcube_permutation(e, span, rng);
        for (std::size_t p = begin; p < begin + len; ++p)
          links[p] = perm[static_cast<std::size_t>(links[p])];
      }
      if (!LinkSequence(links, e).is_valid()) found_invalid = true;
    }
  }
  EXPECT_TRUE(found_invalid);
}

INSTANTIATE_TEST_SUITE_P(Phases, Property1Fuzz, ::testing::Values(3, 4, 5, 6, 7, 8, 10));

TEST(Property1, WholeSequencePermutationPreservesValidity) {
  // The whole-sequence case: a global relabeling of all e links.
  Xoshiro256 rng(11);
  for (auto make : {+[](int e) { return br_sequence(e); },
                    +[](int e) { return permuted_br_sequence(e); },
                    +[](int e) { return degree4_sequence(e); }}) {
    const int e = 6;
    auto links = make(e).links();
    const auto perm = random_subcube_permutation(e, e, rng);
    for (auto& l : links) l = perm[static_cast<std::size_t>(l)];
    EXPECT_TRUE(LinkSequence(links, e).is_valid());
  }
}

TEST(Property1, PermutationEscapingSubcubeBreaksValidity) {
  // The counterexample to the literal "any permutation" reading: in
  // D_3^BR = <0102010>, the tail <010> is a Hamiltonian path of a
  // 2-subcube (links {0,1}); swapping links 0 and 2 maps it to <212>,
  // whose walk escapes that subcube and revisits nodes of the prefix.
  EXPECT_TRUE(LinkSequence({0, 1, 0, 2, 0, 1, 0}, 3).is_valid());
  EXPECT_FALSE(LinkSequence({0, 1, 0, 2, 2, 1, 2}, 3).is_valid());
}

TEST(Property1, PaperExampleZeroOneSwap) {
  // The paper's own example: swapping 0 and 1 (which stabilizes the
  // 2-subcube's links) in the tail of <0102010> gives <0102101>, valid.
  EXPECT_TRUE(LinkSequence({0, 1, 0, 2, 1, 0, 1}, 3).is_valid());
}

TEST(Property1, PermutingNonSubcubeRangeCanBreakValidity) {
  // Negative control: permuting a misaligned range (not a subcube
  // Hamiltonian path) must be able to produce invalid sequences.
  Xoshiro256 rng(13);
  const int e = 5;
  bool found_invalid = false;
  for (int trial = 0; trial < 200 && !found_invalid; ++trial) {
    auto links = br_sequence(e).links();
    const std::size_t begin = 1 + rng.below(8);  // misaligned on purpose
    const std::size_t len = 3 + rng.below(8);
    const auto perm = random_subcube_permutation(e, e, rng);
    for (std::size_t p = begin; p < std::min(begin + len, links.size()); ++p)
      links[p] = perm[static_cast<std::size_t>(links[p])];
    if (!LinkSequence(links, e).is_valid()) found_invalid = true;
  }
  EXPECT_TRUE(found_invalid);
}

TEST(Property1, MinAlphaSequencesTolerateGlobalRelabeling) {
  Xoshiro256 rng(17);
  for (int e = 2; e <= 6; ++e) {
    auto links = paper_min_alpha_sequence(e).links();
    const auto perm = random_subcube_permutation(e, e, rng);
    for (auto& l : links) l = perm[static_cast<std::size_t>(l)];
    const LinkSequence s(links, e);
    EXPECT_TRUE(s.is_valid()) << e;
    EXPECT_EQ(s.alpha(), paper_min_alpha_sequence(e).alpha()) << e;  // alpha is relabel-invariant
  }
}

}  // namespace
}  // namespace jmh::ord
