// task=svd through every backend: the same sweep machinery that carries the
// eigenproblem carries the SVD, so one spec solved on inline, mpi,
// mpi+pipelined and sim must produce BIT-IDENTICAL {singular values, U, V}.
// (Inline/mpi/sim follow the identical rotation order; the pipelined path
// visits the same column pairs in an order that only swaps rotations on
// disjoint column sets, so it commutes exactly. All four backends also
// assemble through the same la::svd_from_bv.)
#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <vector>

#include "api/solver.hpp"
#include "la/eigen_check.hpp"
#include "la/svd.hpp"
#include "la/sym_gen.hpp"
#include "svc/service.hpp"

namespace jmh::api {
namespace {

la::Matrix rect_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform(rows, cols, rng);
}

SolveReport solve_with_backend(SolverSpec spec, Backend backend, const la::Matrix& a) {
  spec.backend = backend;
  return Solver::plan(spec).solve(a);
}

void expect_bit_identical(const SolveReport& r, const SolveReport& ref, const char* label) {
  EXPECT_EQ(r.singular_values, ref.singular_values) << label;
  EXPECT_EQ(la::Matrix::max_abs_diff(r.u, ref.u), 0.0) << label;
  EXPECT_EQ(la::Matrix::max_abs_diff(r.eigenvectors, ref.eigenvectors), 0.0) << label;
  EXPECT_EQ(r.sweeps, ref.sweeps) << label;
  EXPECT_EQ(r.rotations, ref.rotations) << label;
}

class SvdParityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SvdParityTest, AllBackendsBitIdenticalOnRectangularInput) {
  const la::Matrix a = rect_matrix(24, 16, GetParam());
  const SolverSpec spec = SolverSpec::parse("task=svd,ordering=d4,m=16,rows=24,d=2");

  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);
  const SolveReport sim_r = solve_with_backend(spec, Backend::Sim, a);
  SolverSpec piped = spec;
  piped.pipelining = PipeliningPolicy::Fixed;
  piped.q = 2;
  const SolveReport pipe_r = solve_with_backend(piped, Backend::MpiLite, a);

  ASSERT_TRUE(inline_r.converged && mpi_r.converged && sim_r.converged && pipe_r.converged);
  ASSERT_EQ(inline_r.singular_values.size(), 16u);
  EXPECT_TRUE(inline_r.eigenvalues.empty());  // svd fills the svd fields only

  expect_bit_identical(mpi_r, inline_r, "mpi vs inline");
  expect_bit_identical(sim_r, inline_r, "sim vs inline");
  expect_bit_identical(pipe_r, inline_r, "mpi-pipelined vs inline");
  EXPECT_EQ(pipe_r.pipelining_q, 2u);
  EXPECT_GT(mpi_r.comm.messages, 0u);
  ASSERT_TRUE(sim_r.has_model);
  EXPECT_GT(sim_r.modeled_time, 0.0);

  // Acceptance bound: max_k ||A v_k - sigma_k u_k|| <= 1e-10 * ||A||_F
  // (svd_residual is relative to ||A||_F).
  EXPECT_LT(la::svd_residual(a, inline_r.singular_values, inline_r.u, inline_r.eigenvectors),
            1e-10);
  EXPECT_LT(la::orthogonality_defect(inline_r.u), 1e-10);
  EXPECT_LT(la::orthogonality_defect(inline_r.eigenvectors), 1e-10);

  // And the distributed runs agree with the sequential reference spectrum.
  const la::SvdResult ref = la::onesided_jacobi_svd_cyclic(a);
  ASSERT_TRUE(ref.converged);
  EXPECT_LT(la::spectrum_distance(inline_r.singular_values, ref.singular_values), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvdParityTest, ::testing::Values(1u, 4242u, 99u));

TEST(SvdParity, SquareSvdAcrossBackends) {
  const la::Matrix a = rect_matrix(16, 16, 17);
  const SolverSpec spec = SolverSpec::parse("task=svd,ordering=pbr,m=16,d=2");
  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);
  const SolveReport sim_r = solve_with_backend(spec, Backend::Sim, a);
  ASSERT_TRUE(inline_r.converged);
  expect_bit_identical(mpi_r, inline_r, "mpi vs inline");
  expect_bit_identical(sim_r, inline_r, "sim vs inline");
  EXPECT_LT(la::svd_residual(a, inline_r.singular_values, inline_r.u, inline_r.eigenvectors),
            1e-10);
}

TEST(SvdParity, AutoPipeliningKeepsSvdNumerics) {
  const la::Matrix a = rect_matrix(40, 32, 8);
  const SolveReport plain =
      Solver::solve(SolverSpec::parse("task=svd,backend=sim,ordering=pbr,m=32,rows=40,d=2"), a);
  const SolveReport piped = Solver::solve(
      SolverSpec::parse("task=svd,backend=sim,ordering=pbr,m=32,rows=40,d=2,pipeline=auto"), a);
  ASSERT_TRUE(plain.converged && piped.converged);
  EXPECT_EQ(piped.singular_values, plain.singular_values);
  EXPECT_GT(piped.pipelining_q, 0u);
  EXPECT_GT(piped.modeled_time, 0.0);
}

TEST(SvdParity, UnevenColumnSplitAcrossBackends) {
  // 13 columns over 8 blocks (sizes differ by one) and a rectangular input:
  // every substrate must still cover all pairs.
  const la::Matrix a = rect_matrix(19, 13, 77);
  const SolverSpec spec = SolverSpec::parse("task=svd,ordering=pbr,m=13,rows=19,d=2");
  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);
  ASSERT_TRUE(inline_r.converged);
  expect_bit_identical(mpi_r, inline_r, "mpi vs inline");
  EXPECT_LT(la::svd_residual(a, inline_r.singular_values, inline_r.u, inline_r.eigenvectors),
            1e-10);
}

TEST(SvdParity, PlanRejectsWrongShape) {
  const SolvePlan plan = Solver::plan(SolverSpec::parse("task=svd,m=16,rows=24,d=2"));
  EXPECT_THROW(plan.solve(rect_matrix(16, 16, 1)), std::invalid_argument);  // wrong rows
  EXPECT_THROW(plan.solve(rect_matrix(24, 12, 1)), std::invalid_argument);  // wrong cols
  // A wide spec PLANS fine (the transpose trick handles it; the blocks
  // partition the short side) but still rejects a mismatched input shape.
  const SolvePlan wide = Solver::plan(SolverSpec::parse("task=svd,m=16,rows=8,d=1"));
  EXPECT_THROW(wide.solve(rect_matrix(16, 8, 1)), std::invalid_argument);  // transposed input
  EXPECT_NO_THROW(wide.solve(rect_matrix(8, 16, 1)));
  // The column-per-block gate applies to the CORE columns = the short side:
  // rows=8 on a 2-cube (needs >= 8) passes, but a 3-cube (needs >= 16) not.
  EXPECT_NO_THROW(Solver::plan(SolverSpec::parse("task=svd,m=32,rows=8,d=2")));
  EXPECT_THROW(Solver::plan(SolverSpec::parse("task=svd,m=32,rows=8,d=3")),
               std::invalid_argument);
}

// Mixed EVD/SVD traffic through the same service: the spec string is the
// plan-cache key, so both workloads share PlanCache/JobQueue untouched, and
// every served report is bit-identical to a direct plan.solve.
TEST(SvdParity, ServiceServesMixedEvdSvdTraffic) {
  const std::string evd_spec = "backend=inline,ordering=d4,m=16,d=2";
  const std::string svd_spec = "task=svd,backend=inline,ordering=d4,m=16,rows=24,d=2";
  const SolvePlan evd_plan = Solver::plan(SolverSpec::parse(evd_spec));
  const SolvePlan svd_plan = Solver::plan(SolverSpec::parse(svd_spec));

  svc::SolverService service({.workers = 2, .queue_capacity = 16, .cache_capacity = 4});
  std::vector<std::future<SolveReport>> evd_jobs;
  std::vector<std::future<SolveReport>> svd_jobs;
  std::vector<la::Matrix> evd_inputs;
  std::vector<la::Matrix> svd_inputs;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Xoshiro256 rng(seed);
    evd_inputs.push_back(la::random_uniform_symmetric(16, rng));
    svd_inputs.push_back(rect_matrix(24, 16, seed));
    evd_jobs.push_back(service.submit(evd_spec, evd_inputs.back()));
    svd_jobs.push_back(service.submit(svd_spec, svd_inputs.back()));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const SolveReport evd_r = evd_jobs[i].get();
    const SolveReport svd_r = svd_jobs[i].get();
    const SolveReport evd_ref = evd_plan.solve(evd_inputs[i]);
    const SolveReport svd_ref = svd_plan.solve(svd_inputs[i]);
    EXPECT_EQ(evd_r.eigenvalues, evd_ref.eigenvalues);
    EXPECT_EQ(la::Matrix::max_abs_diff(evd_r.eigenvectors, evd_ref.eigenvectors), 0.0);
    expect_bit_identical(svd_r, svd_ref, "service svd vs plan.solve");
  }
}

}  // namespace
}  // namespace jmh::api
