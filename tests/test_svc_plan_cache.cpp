// svc::PlanCache: canonical-key hits, LRU eviction, miss-path compilation,
// error passthrough, and concurrent resolution of one cold key.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "svc/plan_cache.hpp"

namespace jmh::svc {
namespace {

TEST(PlanCache, HitsAndMissesCount) {
  PlanCache cache(8);
  const auto p1 = cache.get("backend=inline,ordering=d4,m=16,d=2");
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const auto p2 = cache.get("backend=inline,ordering=d4,m=16,d=2");
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(p1.get(), p2.get()) << "a hit must share the compiled plan";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, KeysAreCanonicalized) {
  PlanCache cache(8);
  // Same scenario spelled three ways: reordered keys, whitespace, defaults
  // made explicit. All collapse to one SolverSpec::to_string() key.
  const auto a = cache.get("m=16,d=2");
  const auto b = cache.get("d=2, m=16");
  const auto c = cache.get("backend=inline,m=16,d=2,pipeline=off");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a.get(), c.get());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  const std::string s1 = "ordering=d4,m=16,d=2";
  const std::string s2 = "ordering=br,m=16,d=2";
  const std::string s3 = "ordering=pbr,m=16,d=2";

  const auto p1 = cache.get(s1);
  cache.get(s2);
  cache.get(s1);  // touch s1: s2 becomes the LRU victim
  cache.get(s3);  // evicts s2
  EXPECT_EQ(cache.size(), 2u);

  const auto before = cache.misses();
  const auto p1_again = cache.get(s1);
  EXPECT_EQ(cache.misses(), before) << "s1 was touched, must still be resident";
  EXPECT_EQ(p1.get(), p1_again.get());

  cache.get(s2);
  EXPECT_EQ(cache.misses(), before + 1) << "s2 was the LRU entry and must recompile";
}

TEST(PlanCache, EvictionDoesNotInvalidateHeldPlans) {
  PlanCache cache(1);
  const auto held = cache.get("ordering=d4,m=16,d=2");
  cache.get("ordering=br,m=16,d=2");  // evicts the first entry
  // The held shared_ptr keeps the evicted plan alive and usable.
  EXPECT_EQ(held->spec().ordering, ord::OrderingKind::Degree4);
  EXPECT_EQ(held->ordering().dimension(), 2);
}

TEST(PlanCache, ZeroCapacityIsPassthrough) {
  PlanCache cache(0);
  const auto a = cache.get("m=16,d=2");
  const auto b = cache.get("m=16,d=2");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCache, BadSpecsThrowAndCacheNothing) {
  PlanCache cache(8);
  EXPECT_THROW(cache.get("bogus=1"), std::invalid_argument);
  EXPECT_THROW(cache.get("m=4,d=2"), std::invalid_argument);  // infeasible
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCache, ConcurrentColdKeyConverges) {
  PlanCache cache(8);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const api::SolvePlan>> plans(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&cache, &plans, t] { plans[t] = cache.get("ordering=d4,m=16,d=2"); });
  for (auto& th : threads) th.join();

  for (const auto& p : plans) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->spec().m, 16u);
  }
  // Racing threads may each compile the cold key, but the cache ends with
  // exactly one resident entry and serves it to everyone afterwards.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits() + cache.misses(), static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(cache.misses(), 1u);
  const auto resident = cache.get("ordering=d4,m=16,d=2");
  EXPECT_EQ(resident->spec().ordering, ord::OrderingKind::Degree4);
}

}  // namespace
}  // namespace jmh::svc
