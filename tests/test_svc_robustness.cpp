// svc::SolverService under adversity: non-finite inputs rejected at
// admission, queue-expired deadlines shed before dispatch, shutdown_now's
// bounded cancellation drain, retry-with-backoff through injected transport
// corruption, chaos replay determinism, and the failure-taxonomy counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "la/sym_gen.hpp"
#include "solve/fault_injection.hpp"
#include "svc/service.hpp"

namespace jmh::svc {
namespace {

constexpr const char* kSpec = "backend=inline,ordering=d4,m=16,d=2";

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

api::SolveStatus status_of(std::future<api::SolveReport>& f) {
  // Hold the shared state across the catch via a shared_future: a plain
  // get() releases its state ref while UNWINDING, so the worker's later
  // job teardown can be the exception object's final release -- real
  // synchronization (the eptr refcount) lives in uninstrumented libstdc++
  // and TSan would flag the read below against that free. The sf keeps
  // main's state ref alive past the read, ordering the teardown through
  // instrumented shared_ptr atomics instead.
  const std::shared_future<api::SolveReport> sf = f.share();
  try {
    sf.get();
    return api::SolveStatus::Ok;
  } catch (const api::SolveError& e) {
    return e.status();
  }
}

// Regression: a NaN smuggled into the input used to churn a full solve into
// nonsense. Now it is rejected at the door with INVALID_INPUT, before any
// queueing or planning.
TEST(SolverServiceRobustness, NonFiniteInputRejectedAtSubmit) {
  SolverService service({.workers = 1});
  la::Matrix bad = test_matrix(16, 1);
  bad.col(3)[5] = std::numeric_limits<double>::quiet_NaN();
  auto f = service.submit(kSpec, bad);
  EXPECT_EQ(status_of(f), api::SolveStatus::InvalidInput);

  la::Matrix inf = test_matrix(16, 2);
  inf.col(0)[0] = std::numeric_limits<double>::infinity();
  auto f2 = service.try_submit(kSpec, inf);
  ASSERT_TRUE(f2.has_value()) << "examined-and-rejected is not shedding";
  EXPECT_EQ(status_of(*f2), api::SolveStatus::InvalidInput);

  const Metrics m = service.metrics();
  EXPECT_EQ(m.jobs_invalid, 2u);
  EXPECT_EQ(m.jobs_failed, 2u);
  EXPECT_EQ(m.jobs_done, 0u);
}

// A job whose end-to-end deadline lapses while QUEUED is shed without
// solving: under overload the service stops burning compute on answers
// nobody is waiting for.
TEST(SolverServiceRobustness, QueueExpiredDeadlinesAreShedWithoutSolving) {
  // One worker, wedged by a chaos-free long job: jam the queue by hand.
  SolverService service({.workers = 1, .max_coalesce = 1});
  // A 1ms-deadline job admitted behind a stalling one: the stall comes from
  // a job whose spec carries delay faults (5ms per step stretches the solve
  // far past the follower's deadline).
  auto slow = service.submit(std::string(kSpec) + ",faults=1:0:1:5000:0", test_matrix(16, 3));
  auto doomed = service.submit(kSpec, test_matrix(16, 4), {.deadline_ms = 1});
  EXPECT_EQ(status_of(doomed), api::SolveStatus::DeadlineExceeded);
  EXPECT_EQ(status_of(slow), api::SolveStatus::Ok);  // delays are not errors
  service.drain();  // counter updates may trail future readiness
  const Metrics m = service.metrics();
  EXPECT_EQ(m.jobs_deadline, 1u);
  EXPECT_EQ(m.jobs_done, 1u);
}

// A deadline generous enough never to fire leaves the served result
// bit-identical in the solution fields (the armed token widens votes; the
// numerics are pinned by test_svc_service's parity suite for unarmed runs).
TEST(SolverServiceRobustness, GenerousDeadlineStillSolvesCorrectly) {
  const la::Matrix a = test_matrix(16, 5);
  SolverService service({.workers = 1});
  auto f = service.submit(kSpec, a, {.deadline_ms = 3600000});
  const api::SolveReport r = f.get();
  const api::SolveReport want = api::Solver::solve(api::SolverSpec::parse(kSpec), a);
  EXPECT_EQ(r.eigenvalues, want.eigenvalues);
  EXPECT_EQ(r.sweeps, want.sweeps);
  EXPECT_EQ(r.status, api::SolveStatus::Ok);
}

// shutdown_now: queued jobs fail CANCELLED without solving, in-flight
// armed jobs abort at the next sweep boundary, and the whole drain is
// bounded in time (enforced by the test's own future waits).
TEST(SolverServiceRobustness, ShutdownNowCancelsQueuedAndInFlightJobs) {
  SolverService service({.workers = 1, .max_coalesce = 1});
  // The in-flight job: armed (60s deadline) and stretched by delay faults
  // so shutdown_now lands mid-solve, not after it.
  auto inflight = service.submit(std::string(kSpec) + ",faults=2:0:1:2000:0",
                                 test_matrix(16, 6), {.deadline_ms = 60000});
  // Queued behind it: never starts.
  std::vector<std::future<api::SolveReport>> queued;
  for (std::uint64_t s = 7; s < 12; ++s)
    queued.push_back(service.submit(kSpec, test_matrix(16, s)));

  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // let it start
  service.shutdown_now();

  EXPECT_EQ(status_of(inflight), api::SolveStatus::Cancelled);
  for (auto& f : queued) EXPECT_EQ(status_of(f), api::SolveStatus::Cancelled);

  // Post-shutdown submits are shed, not queued.
  auto late = service.submit(kSpec, test_matrix(16, 20));
  EXPECT_EQ(status_of(late), api::SolveStatus::Shed);
  const Metrics m = service.metrics();
  EXPECT_GE(m.jobs_cancelled, 6u);
  EXPECT_EQ(m.jobs_shed, 1u);
}

// Retry-with-backoff: an attempt-0 corruption that attempt 1 does not
// re-hit (the schedule re-keys per attempt) is absorbed by the service --
// the job still succeeds, the retry is counted.
TEST(SolverServiceRobustness, RetriesAbsorbTransientCorruption) {
  // Find a seed whose attempt-0 schedule corrupts an early step but whose
  // attempt-1 schedule is clean over the whole solve (~256 steps is far
  // more than the m=16 solve runs).
  const double rate = 0.005;
  std::uint64_t seed = 0;
  for (std::uint64_t cand = 1; cand < 50000 && seed == 0; ++cand) {
    solve::FaultSchedule first({.seed = cand, .corrupt_rate = rate, .attempt = 0});
    solve::FaultSchedule second({.seed = cand, .corrupt_rate = rate, .attempt = 1});
    bool hits_early = false, clean_retry = true;
    for (std::uint64_t step = 0; step < 256; ++step) {
      if (step < 32 && first.corrupt_at(step)) hits_early = true;
      if (second.corrupt_at(step)) clean_retry = false;
    }
    if (hits_early && clean_retry) seed = cand;
  }
  ASSERT_NE(seed, 0u) << "no suitable seed in range (rate tuning drifted?)";

  const std::string spec = std::string(kSpec) + ",faults=" + std::to_string(seed) + ":" +
                           std::to_string(rate) + ":0:0:0";
  SolverService service({.workers = 1, .max_retries = 2, .retry_backoff_ms = 1});
  auto f = service.submit(spec, test_matrix(16, 13));
  EXPECT_EQ(status_of(f), api::SolveStatus::Ok);
  service.drain();
  const Metrics m = service.metrics();
  EXPECT_GE(m.retries, 1u);
  EXPECT_EQ(m.jobs_done, 1u);
  EXPECT_EQ(m.jobs_corrupt, 0u);
}

// With retries exhausted (rate 1.0 corrupts every attempt) the job fails
// TRANSPORT_CORRUPT and the retry count shows the attempts that were made.
TEST(SolverServiceRobustness, ExhaustedRetriesSurfaceTransportCorrupt) {
  SolverService service({.workers = 1, .max_retries = 2, .retry_backoff_ms = 1});
  auto f = service.submit(std::string(kSpec) + ",faults=17:1:0:0:0", test_matrix(16, 14));
  EXPECT_EQ(status_of(f), api::SolveStatus::TransportCorrupt);
  service.drain();
  const Metrics m = service.metrics();
  EXPECT_EQ(m.retries, 2u);
  EXPECT_EQ(m.jobs_corrupt, 1u);
  EXPECT_EQ(m.jobs_failed, 1u);
}

// Chaos is deterministic: the same seed over the same submission order
// injects the same stalls and storms (counters match across two runs).
TEST(SolverServiceRobustness, ChaosReplaysDeterministically) {
  auto run = [](std::uint64_t chaos_seed) {
    ServiceConfig cfg{.workers = 1, .max_coalesce = 1};
    cfg.chaos = {.seed = chaos_seed, .stall_rate = 0.3, .stall_ms = 1,
                 .storm_rate = 0.3, .storm_deadline_ms = 1};
    SolverService service(cfg);
    std::vector<std::future<api::SolveReport>> futures;
    for (std::uint64_t s = 1; s <= 20; ++s)
      futures.push_back(service.submit(kSpec, test_matrix(16, s)));
    std::vector<api::SolveStatus> statuses;
    for (auto& f : futures) statuses.push_back(status_of(f));
    service.drain();
    const Metrics m = service.metrics();
    return std::tuple(m.chaos_stalls, m.chaos_storms, statuses);
  };
  const auto first = run(321);
  const auto second = run(321);
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second));
  EXPECT_GT(std::get<0>(first) + std::get<1>(first), 0u);
  // Storm-hit statuses may be DeadlineExceeded or Ok depending on solve
  // speed, but the INJECTION pattern is identical, so so are the outcomes
  // per index up to solve-speed jitter on the storm deadline; the strong
  // invariant is that every status is from the allowed degraded set.
  for (const api::SolveStatus s : std::get<2>(first))
    EXPECT_TRUE(s == api::SolveStatus::Ok || s == api::SolveStatus::DeadlineExceeded);
}

// Every spec-invalid path is still a plain std::invalid_argument through
// the future (the pinned submit contract), counted as invalid input.
TEST(SolverServiceRobustness, InvalidSpecsCountedInTaxonomy) {
  SolverService service({.workers = 1});
  auto f = service.submit("m=banana", test_matrix(16, 15));
  EXPECT_THROW(f.get(), std::invalid_argument);
  service.drain();
  const Metrics m = service.metrics();
  EXPECT_EQ(m.jobs_invalid, 1u);
}

// The metrics summary names the new counters once they are nonzero.
TEST(SolverServiceRobustness, SummaryMentionsFaultAndChaosCounters) {
  Metrics m;
  m.jobs_deadline = 3;
  m.retries = 2;
  m.chaos_stalls = 1;
  const std::string text = m.summary();
  EXPECT_NE(text.find("faults"), std::string::npos);
  EXPECT_NE(text.find("3 deadline"), std::string::npos);
  EXPECT_NE(text.find("2 retries"), std::string::npos);
  EXPECT_NE(text.find("chaos"), std::string::npos);
}

}  // namespace
}  // namespace jmh::svc
