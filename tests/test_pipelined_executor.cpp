#include "solve/pipelined_executor.hpp"

#include <gtest/gtest.h>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"

namespace jmh::solve {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

TEST(ColumnBlockSplit, EvenSplit) {
  const la::Matrix a = test_matrix(16, 1);
  const BlockLayout layout(16, 1);  // blocks of 4
  const ColumnBlock blk = extract_block(a, layout, 2);
  const auto packets = blk.split(2);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].num_cols(), 2u);
  EXPECT_EQ(packets[1].num_cols(), 2u);
  EXPECT_EQ(packets[0].id, blk.id);
  EXPECT_EQ(packets[0].cols[0], blk.cols[0]);
  EXPECT_EQ(packets[1].cols[1], blk.cols[3]);
}

TEST(ColumnBlockSplit, MoreTrailingPacketsThanColumns) {
  const la::Matrix a = test_matrix(16, 1);
  const BlockLayout layout(16, 2);  // blocks of 2
  const ColumnBlock blk = extract_block(a, layout, 1);
  const auto packets = blk.split(5);
  ASSERT_EQ(packets.size(), 5u);
  std::size_t total = 0;
  for (const auto& p : packets) total += p.num_cols();
  EXPECT_EQ(total, 2u);
}

TEST(ColumnBlockSplit, MergeInvertsSplit) {
  const la::Matrix a = test_matrix(16, 3);
  const BlockLayout layout(16, 1);
  const ColumnBlock blk = extract_block(a, layout, 3);
  for (std::size_t q : {1u, 2u, 3u, 4u, 7u}) {
    const ColumnBlock back = ColumnBlock::merge(blk.split(q));
    EXPECT_EQ(back.cols, blk.cols) << q;
    EXPECT_EQ(back.b, blk.b) << q;
    EXPECT_EQ(back.v, blk.v) << q;
  }
}

TEST(ColumnBlockSplit, MergeRejectsMixedBlocks) {
  const la::Matrix a = test_matrix(16, 3);
  const BlockLayout layout(16, 1);
  const ColumnBlock b0 = extract_block(a, layout, 0);
  const ColumnBlock b1 = extract_block(a, layout, 1);
  EXPECT_THROW(ColumnBlock::merge({b0, b1}), std::invalid_argument);
  EXPECT_THROW(ColumnBlock::merge({}), std::invalid_argument);
}

struct PipelinedCase {
  ord::OrderingKind kind;
  int d;
  std::size_t m;
  std::uint64_t q;
};

class PipelinedSolverTest : public ::testing::TestWithParam<PipelinedCase> {};

TEST_P(PipelinedSolverTest, MatchesUnpipelinedSolve) {
  const auto [kind, d, m, q] = GetParam();
  const la::Matrix a = test_matrix(m, 100 + m + q);
  const ord::JacobiOrdering ordering(kind, d);

  PipelinedSolveOptions opts;
  opts.q = q;
  const DistributedResult pip = solve_mpi_pipelined(a, ordering, opts);
  const DistributedResult ref = solve_inline(a, ordering);

  ASSERT_TRUE(pip.converged);
  // Rotation order differs between executors (packet-major vs row-major),
  // so agreement is up to floating-point reordering, not bitwise.
  EXPECT_LT(la::spectrum_distance(pip.eigenvalues, ref.eigenvalues), 1e-8);
  EXPECT_LT(la::eigenpair_residual(a, pip.eigenvalues, pip.eigenvectors), 1e-9);
  EXPECT_LT(la::orthogonality_defect(pip.eigenvectors), 1e-10);
  EXPECT_NEAR(pip.sweeps, ref.sweeps, 1);
}

std::vector<PipelinedCase> pipelined_cases() {
  return {
      {ord::OrderingKind::BR, 1, 8, 1},        {ord::OrderingKind::BR, 2, 16, 2},
      {ord::OrderingKind::PermutedBR, 2, 16, 2}, {ord::OrderingKind::Degree4, 2, 16, 2},
      {ord::OrderingKind::Degree4, 2, 32, 4},  {ord::OrderingKind::PermutedBR, 3, 32, 2},
      {ord::OrderingKind::MinAlpha, 2, 16, 2},
  };
}

INSTANTIATE_TEST_SUITE_P(Grid, PipelinedSolverTest, ::testing::ValuesIn(pipelined_cases()),
                         [](const ::testing::TestParamInfo<PipelinedCase>& pinfo) {
                           std::string name = ord::to_string(pinfo.param.kind) + "_d" +
                                              std::to_string(pinfo.param.d) + "_m" +
                                              std::to_string(pinfo.param.m) + "_q" +
                                              std::to_string(pinfo.param.q);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(PipelinedSolver, AutoQ) {
  const la::Matrix a = test_matrix(32, 7);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 2);
  const DistributedResult r = solve_mpi_pipelined(a, ordering);  // q = 0 -> auto
  ASSERT_TRUE(r.converged);
  EXPECT_LT(la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors), 1e-9);
}

TEST(PipelinedSolver, QLargerThanBlock) {
  // Degenerate empty packets must not break anything.
  const la::Matrix a = test_matrix(16, 9);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 2);
  PipelinedSolveOptions opts;
  opts.q = 7;  // blocks have 2 columns
  const DistributedResult r = solve_mpi_pipelined(a, ordering, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors), 1e-9);
}

TEST(PipelinedSolver, MoreMessagesSmallerEach) {
  // Pipelining with q packets multiplies message count without changing
  // (column) volume.
  const la::Matrix a = test_matrix(32, 11);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 2);
  PipelinedSolveOptions q1;
  q1.q = 1;
  PipelinedSolveOptions q4;
  q4.q = 4;
  const auto r1 = solve_mpi_pipelined(a, ordering, q1);
  const auto r4 = solve_mpi_pipelined(a, ordering, q4);
  ASSERT_TRUE(r1.converged && r4.converged);
  EXPECT_GT(r4.comm.messages, 2 * r1.comm.messages);
  // Column payload volume is identical; only per-packet headers differ.
  const double vol1 = static_cast<double>(r1.comm.elements);
  const double vol4 = static_cast<double>(r4.comm.elements);
  EXPECT_NEAR(vol4 / vol1, 1.0, 0.15);
}

TEST(PipelinedSolver, WithGershgorinShift) {
  Xoshiro256 rng(91);
  const std::vector<double> spectrum = {-5.0, -2.0, 2.0, 3.0, 5.0, 6.0, 8.0, 11.0};
  const la::Matrix a = la::symmetric_with_spectrum(spectrum, rng);
  const ord::JacobiOrdering ordering(ord::OrderingKind::PermutedBR, 1);
  PipelinedSolveOptions opts;
  opts.gershgorin_shift = true;
  opts.q = 2;
  const auto r = solve_mpi_pipelined(a, ordering, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(la::spectrum_distance(r.eigenvalues, spectrum), 1e-8);
}

}  // namespace
}  // namespace jmh::solve
