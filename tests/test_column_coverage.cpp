// Direct column-level coverage check: one sweep of the distributed
// algorithm pairs every unordered column pair exactly once. This refines
// the block-level all-pairs-once verification (test_schedule) down to the
// rotation level by instrumenting a probe solver pass.
#include <gtest/gtest.h>

#include "ord/schedule.hpp"
#include "solve/block_layout.hpp"

namespace jmh::solve {
namespace {

// Replays one sweep at block granularity and expands every meeting into
// column pairs (intra-block pairs at sweep start + cross pairs per step).
std::vector<int> column_pair_counts(ord::OrderingKind kind, int d, std::size_t m, int sweep) {
  const BlockLayout layout(m, d);
  const ord::JacobiOrdering ordering(kind, d);
  std::vector<int> met(m * m, 0);

  auto meet = [&](std::size_t i, std::size_t j) {
    ++met[std::min(i, j) * m + std::max(i, j)];
  };
  auto cross = [&](ord::BlockId a, ord::BlockId b) {
    for (std::size_t i = layout.block_begin(a); i < layout.block_begin(a) + layout.block_size(a); ++i)
      for (std::size_t j = layout.block_begin(b); j < layout.block_begin(b) + layout.block_size(b); ++j)
        meet(i, j);
  };

  // Step (1): intra-block pairings.
  for (ord::BlockId b = 0; b < layout.num_blocks(); ++b) {
    for (std::size_t i = layout.block_begin(b); i < layout.block_begin(b) + layout.block_size(b); ++i)
      for (std::size_t j = i + 1; j < layout.block_begin(b) + layout.block_size(b); ++j)
        meet(i, j);
  }
  // Steps (2)/(3): block meetings from the schedule.
  ord::BlockTracker tracker(d);
  for (const auto& step : ord::run_sweep(ordering, sweep, tracker))
    for (const auto& meeting : step) cross(meeting.fixed, meeting.mobile);
  return met;
}

struct CoverageCase {
  ord::OrderingKind kind;
  int d;
  std::size_t m;
};

class ColumnCoverageTest : public ::testing::TestWithParam<CoverageCase> {};

TEST_P(ColumnCoverageTest, EveryColumnPairExactlyOnce) {
  const auto [kind, d, m] = GetParam();
  const auto met = column_pair_counts(kind, d, m, /*sweep=*/0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j)
      ASSERT_EQ(met[i * m + j], 1) << "pair (" << i << ',' << j << ')';
}

TEST_P(ColumnCoverageTest, SecondSweepAlsoCovers) {
  const auto [kind, d, m] = GetParam();
  // Sweep 1 uses the rotated link map sigma_1 and starts from sweep 0's
  // end placement -- coverage must be preserved. (The helper replays from
  // the initial placement with sweep-1 links, which by vertex-transitivity
  // verifies the same property.)
  const auto met = column_pair_counts(kind, d, m, /*sweep=*/1);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j)
      ASSERT_EQ(met[i * m + j], 1) << "pair (" << i << ',' << j << ')';
}

std::vector<CoverageCase> coverage_cases() {
  return {
      {ord::OrderingKind::BR, 2, 16},        {ord::OrderingKind::BR, 3, 16},
      {ord::OrderingKind::PermutedBR, 2, 16}, {ord::OrderingKind::PermutedBR, 3, 24},
      {ord::OrderingKind::Degree4, 2, 16},   {ord::OrderingKind::Degree4, 3, 32},
      {ord::OrderingKind::MinAlpha, 2, 13},  // uneven split
      {ord::OrderingKind::BR, 2, 13},
  };
}

INSTANTIATE_TEST_SUITE_P(Grid, ColumnCoverageTest, ::testing::ValuesIn(coverage_cases()),
                         [](const ::testing::TestParamInfo<CoverageCase>& pinfo) {
                           std::string name = ord::to_string(pinfo.param.kind) + "_d" +
                                              std::to_string(pinfo.param.d) + "_m" +
                                              std::to_string(pinfo.param.m);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(ColumnCoverage, TotalPairingCountIsTriangular) {
  const std::size_t m = 16;
  const auto met = column_pair_counts(ord::OrderingKind::BR, 2, m, 0);
  std::size_t total = 0;
  for (int c : met) total += static_cast<std::size_t>(c);
  EXPECT_EQ(total, m * (m - 1) / 2);
}

}  // namespace
}  // namespace jmh::solve
