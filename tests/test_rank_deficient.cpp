// Rank-deficient and wide inputs versus the stop rules.
//
// StopRule::NoRotations terminates late on a null space: the relative
// rotation test |b_i . b_j| > threshold * sqrt(b_ii * b_jj) compares decayed
// null-column dot products against equally decayed norms, so the ratio does
// not shrink with the columns and the pairs keep rotating until their norms
// underflow to EXACT zero -- roughly doubling the sweep count (15 vs 7 on
// the rank-8 input below). Under a realistic sweep budget the solve times
// out and reports converged == false. That failing case is pinned here as
// the motivation for StopRule::OffDiagonalAbsolute, which measures
// sqrt(2 * sum b_ij^2) against an ABSOLUTE off_tol: null columns contribute
// absolutely tiny off-diagonal mass, so the same inputs converge early.
#include <gtest/gtest.h>

#include <vector>

#include "api/solver.hpp"
#include "la/eigen_check.hpp"
#include "la/pca.hpp"
#include "la/svd.hpp"
#include "la/sym_gen.hpp"

namespace jmh::api {
namespace {

/// rows x cols matrix of the given rank: the product of two uniform
/// factors (rows x rank) * (rank x cols), entries O(1).
la::Matrix low_rank_matrix(std::size_t rows, std::size_t cols, std::size_t rank,
                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const la::Matrix left = la::random_uniform(rows, rank, rng);
  const la::Matrix right = la::random_uniform(rank, cols, rng);
  la::Matrix out(rows, cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) {
      double sum = 0.0;
      for (std::size_t k = 0; k < rank; ++k) sum += left(r, k) * right(k, c);
      out(r, c) = sum;
    }
  return out;
}

SolveReport solve_with_backend(SolverSpec spec, Backend backend, const la::Matrix& a) {
  spec.backend = backend;
  return Solver::plan(spec).solve(a);
}

/// The first k columns of a matrix, for residual checks restricted to the
/// numerically nonzero part of a rank-deficient factorization.
la::Matrix leading_cols(const la::Matrix& m, std::size_t k) {
  la::Matrix out(m.rows(), k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t r = 0; r < m.rows(); ++r) out(r, c) = m(r, c);
  return out;
}

// The pre-fix failing case, pinned: a rank-8 tall input under the default
// stop=norot burns the whole 12-sweep budget grinding null-column norms
// toward underflow (it needs 15 sweeps to reach a rotation-free sweep;
// stop=offdiag_abs converges at 7 on the identical input, next test).
TEST(RankDeficient, NoRotationsStallsOnRankDeficientInput) {
  const la::Matrix a = low_rank_matrix(24, 16, 8, 42);
  const SolveReport r = Solver::solve(
      SolverSpec::parse("task=svd,m=16,rows=24,d=2,max_sweeps=12"), a);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.sweeps, 12);
}

// The same input under the absolute rule converges, factors the matrix to
// the acceptance bound, and exposes the 8-dimensional null space as
// (numerically) zero trailing singular values.
TEST(RankDeficient, AbsoluteOffDiagonalConvergesOnRankDeficientInput) {
  const la::Matrix a = low_rank_matrix(24, 16, 8, 42);
  const SolveReport r = Solver::solve(
      SolverSpec::parse("task=svd,m=16,rows=24,d=2,stop=offdiag_abs"), a);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.sweeps, 12);  // within the budget the stall test exhausts
  EXPECT_LT(la::svd_residual(a, r.singular_values, r.u, r.eigenvectors), 1e-10);
  ASSERT_EQ(r.singular_values.size(), 16u);
  for (std::size_t k = 8; k < 16; ++k) EXPECT_LT(r.singular_values[k], 1e-10) << k;
  for (std::size_t k = 0; k < 8; ++k) EXPECT_GT(r.singular_values[k], 1e-6) << k;
}

// The absolute rule is a per-sweep vote like the others: every backend must
// stop after the identical sweep and produce bit-identical results.
TEST(RankDeficient, AbsoluteStopBitIdenticalAcrossBackends) {
  const la::Matrix a = low_rank_matrix(24, 16, 8, 7);
  const SolverSpec spec =
      SolverSpec::parse("task=svd,ordering=d4,m=16,rows=24,d=2,stop=offdiag_abs");
  const SolveReport inline_r = solve_with_backend(spec, Backend::Inline, a);
  const SolveReport mpi_r = solve_with_backend(spec, Backend::MpiLite, a);
  const SolveReport sim_r = solve_with_backend(spec, Backend::Sim, a);
  SolverSpec piped = spec;
  piped.pipelining = PipeliningPolicy::Fixed;
  piped.q = 2;
  const SolveReport pipe_r = solve_with_backend(piped, Backend::MpiLite, a);
  ASSERT_TRUE(inline_r.converged && mpi_r.converged && sim_r.converged && pipe_r.converged);
  for (const SolveReport* r : {&mpi_r, &sim_r, &pipe_r}) {
    EXPECT_EQ(r->singular_values, inline_r.singular_values);
    EXPECT_EQ(la::Matrix::max_abs_diff(r->u, inline_r.u), 0.0);
    EXPECT_EQ(la::Matrix::max_abs_diff(r->eigenvectors, inline_r.eigenvectors), 0.0);
    EXPECT_EQ(r->sweeps, inline_r.sweeps);
    EXPECT_EQ(r->rotations, inline_r.rotations);
  }
}

// Centering a SQUARE data matrix drops its rank to m - 1 (every centered
// column is orthogonal to the all-ones direction): exactly the null-space
// shape the absolute rule exists for. task=pca on a square input must
// converge under stop=offdiag_abs and report a zero trailing component.
TEST(RankDeficient, SquarePcaConvergesUnderAbsoluteStop) {
  Xoshiro256 rng(12);
  const la::Matrix a = la::random_uniform(16, 16, rng);
  const SolveReport r = Solver::solve(
      SolverSpec::parse("task=pca,m=16,d=2,stop=offdiag_abs"), a);
  ASSERT_TRUE(r.converged);
  la::Matrix centered = a;
  la::center_columns(centered);
  EXPECT_LT(la::svd_residual(centered, r.singular_values, r.u, r.eigenvectors), 1e-10);
  ASSERT_EQ(r.explained_variance.size(), 16u);
  EXPECT_LT(r.singular_values.back(), 1e-10);
  EXPECT_LT(r.explained_variance.back(), 1e-20);
}

// A wide input whose SHORT side is itself rank-deficient: the transpose
// trick and the absolute stop have to compose. The column-form residual is
// checked over the rank-4 leading part only: the early absolute stop leaves
// the null columns at sigma ~ 1e-16 NOISE (not the exact zeros a norot run
// grinds out), so their normalized directions are junk -- the sigma-weighted
// reconstruction ignores them, but A * v_k would amplify them.
TEST(RankDeficient, WideRankDeficientSvdConverges) {
  const la::Matrix a = low_rank_matrix(8, 16, 4, 9);
  const SolveReport r = Solver::solve(
      SolverSpec::parse("task=svd,m=16,rows=8,d=1,stop=offdiag_abs"), a);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.singular_values.size(), 8u);
  const std::vector<double> lead(r.singular_values.begin(), r.singular_values.begin() + 4);
  EXPECT_LT(la::svd_residual(a, lead, leading_cols(r.u, 4), leading_cols(r.eigenvectors, 4)),
            1e-10);
  for (std::size_t k = 4; k < 8; ++k) EXPECT_LT(r.singular_values[k], 1e-10) << k;
}

// The absolute rule must not disturb full-rank behavior: on a well-
// conditioned input it reaches the same factorization (to the acceptance
// bound) as the default rule, just via the off(A) vote.
TEST(RankDeficient, AbsoluteStopMatchesDefaultOnFullRankInput) {
  Xoshiro256 rng(3);
  const la::Matrix a = la::random_uniform(24, 16, rng);
  const SolveReport norot =
      Solver::solve(SolverSpec::parse("task=svd,m=16,rows=24,d=2"), a);
  const SolveReport abs_r = Solver::solve(
      SolverSpec::parse("task=svd,m=16,rows=24,d=2,stop=offdiag_abs"), a);
  ASSERT_TRUE(norot.converged && abs_r.converged);
  ASSERT_EQ(abs_r.singular_values.size(), norot.singular_values.size());
  EXPECT_LT(la::spectrum_distance(abs_r.singular_values, norot.singular_values), 1e-8);
  EXPECT_LT(la::svd_residual(a, abs_r.singular_values, abs_r.u, abs_r.eigenvectors), 1e-10);
}

}  // namespace
}  // namespace jmh::api
