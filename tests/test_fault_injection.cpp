// solve::FaultInjectingTransport and the api error taxonomy: a disabled or
// zero-rate fault plan is bit-invisible on every backend; every injected
// fault class terminates the solve with the matching api::SolveStatus, never
// silent garbage; and the whole harness replays deterministically from its
// seed -- including a chaos soak asserting the "zero wrong-but-OK" property
// (an OK report under faults is bit-identical to the fault-free one).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "la/sym_gen.hpp"
#include "solve/fault_injection.hpp"

namespace jmh::api {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

void expect_bit_identical(const SolveReport& got, const SolveReport& want) {
  EXPECT_EQ(got.eigenvalues, want.eigenvalues);
  EXPECT_EQ(la::Matrix::max_abs_diff(got.eigenvectors, want.eigenvectors), 0.0);
  EXPECT_EQ(got.sweeps, want.sweeps);
  EXPECT_EQ(got.rotations, want.rotations);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_EQ(got.comm.messages, want.comm.messages);
  EXPECT_EQ(got.comm.elements, want.comm.elements);
  EXPECT_EQ(got.modeled_time, want.modeled_time);
  EXPECT_EQ(got.vote_time, want.vote_time);
  EXPECT_EQ(got.status, want.status);
}

// The acceptance criterion for the decorator itself: an armed-but-idle
// fault plan (seed set, every rate zero) must be invisible -- bit-identical
// reports, comm counters and model times included, on every backend.
TEST(FaultInjection, ZeroRatePlanIsBitInvisibleOnEveryBackend) {
  const la::Matrix a = test_matrix(16, 77);
  const std::vector<std::string> scenarios = {
      "backend=inline,ordering=d4,m=16,d=2",
      "backend=mpi,ordering=d4,m=16,d=2",
      "backend=mpi,ordering=d4,m=16,d=2,pipeline=2",
      "backend=sim,ordering=pbr,m=16,d=2,pipeline=auto",
  };
  for (const std::string& scenario : scenarios) {
    const SolveReport bare = Solver::solve(SolverSpec::parse(scenario + ",faults=off"), a);
    const SolveReport faulted =
        Solver::solve(SolverSpec::parse(scenario + ",faults=42:0:0:0:0"), a);
    ASSERT_TRUE(bare.converged) << scenario;
    expect_bit_identical(faulted, bare);
  }
}

TEST(FaultInjection, CorruptionSurfacesAsTransportCorruptOnEveryBackend) {
  const la::Matrix a = test_matrix(16, 5);
  for (const char* backend : {"inline", "mpi", "sim"}) {
    const SolverSpec spec = SolverSpec::parse(
        "backend=" + std::string(backend) + ",ordering=d4,m=16,d=2,faults=9:1:0:0:0");
    try {
      Solver::solve(spec, a);
      FAIL() << backend << ": corrupted blocks must not produce a report";
    } catch (const SolveError& e) {
      EXPECT_EQ(e.status(), SolveStatus::TransportCorrupt) << backend;
      EXPECT_NE(std::string(e.what()).find("TRANSPORT_CORRUPT"), std::string::npos);
    }
  }
}

TEST(FaultInjection, VoteFaultSurfacesAsTransportCorrupt) {
  const la::Matrix a = test_matrix(16, 6);
  const SolverSpec spec = SolverSpec::parse("m=16,d=2,faults=11:0:0:0:1");
  try {
    Solver::solve(spec, a);
    FAIL() << "a failed allreduce vote must not produce a report";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), SolveStatus::TransportCorrupt);
  }
}

// Injected per-step delays stretch the sweep past a tight spec deadline:
// the solve must come back DEADLINE_EXCEEDED (cancelled at a sweep
// boundary), not hang and not return partial results.
TEST(FaultInjection, DelaysPlusDeadlineYieldDeadlineExceeded) {
  const la::Matrix a = test_matrix(16, 7);
  // Every step sleeps 5ms against a 1ms deadline: the first boundary check
  // after sweep 1 fires long past the deadline, whatever the machine speed.
  const SolverSpec spec =
      SolverSpec::parse("m=16,d=2,deadline_ms=1,faults=3:0:1:5000:0");
  try {
    Solver::solve(spec, a);
    FAIL() << "the deadline must fire before convergence";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), SolveStatus::DeadlineExceeded);
  }
}

// The schedule is a pure function of (seed, attempt): the same spec replays
// to the same outcome, and bumping the attempt re-keys the draws.
TEST(FaultInjection, ScheduleReplaysDeterministically) {
  const solve::FaultPlan plan{.seed = 123, .corrupt_rate = 0.3, .delay_rate = 0.2,
                              .delay_us = 1, .vote_fail_rate = 0.1, .attempt = 0};
  solve::FaultSchedule s1(plan);
  solve::FaultSchedule s2(plan);
  solve::FaultPlan retry = plan;
  retry.attempt = 1;
  solve::FaultSchedule s3(retry);
  bool any_differs = false;
  for (std::uint64_t step = 0; step < 256; ++step) {
    EXPECT_EQ(s1.corrupt_at(step), s2.corrupt_at(step));
    EXPECT_EQ(s1.delay_at(step), s2.delay_at(step));
    EXPECT_EQ(s1.vote_fails(step), s2.vote_fails(step));
    EXPECT_EQ(s1.corrupt_bit(step), s2.corrupt_bit(step));
    any_differs = any_differs || s1.corrupt_at(step) != s3.corrupt_at(step);
  }
  // A retry must not deterministically re-hit the same corruption.
  EXPECT_TRUE(any_differs);
}

TEST(FaultInjection, SolveOutcomeReplaysDeterministically) {
  const la::Matrix a = test_matrix(16, 8);
  const SolverSpec spec = SolverSpec::parse("m=16,d=2,faults=555:0.05:0:0:0.02");
  auto outcome = [&]() -> std::string {
    try {
      const SolveReport r = Solver::solve(spec, a);
      return "ok:" + std::to_string(r.sweeps) + ":" + std::to_string(r.rotations);
    } catch (const SolveError& e) {
      return std::string("err:") + to_string(e.status());
    }
  };
  const std::string first = outcome();
  EXPECT_EQ(outcome(), first);
  EXPECT_EQ(outcome(), first);
}

// The chaos soak and the core safety property: across hundreds of seeded
// fault scenarios, EVERY solve either fails with a typed status or returns
// a report bit-identical to the fault-free run. Zero wrong-but-OK: faults
// may kill a solve, they may never silently change its answer.
TEST(FaultInjection, ChaosSoakNeverReturnsWrongButOk) {
  const la::Matrix a = test_matrix(16, 99);
  const std::string scenario = "backend=inline,ordering=d4,m=16,d=2";
  const SolveReport reference = Solver::solve(SolverSpec::parse(scenario), a);
  ASSERT_TRUE(reference.converged);

  int ok = 0, corrupt = 0;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    SolverSpec spec = SolverSpec::parse(scenario);
    spec.faults.seed = seed;
    spec.faults.corrupt_rate = 0.01;
    spec.faults.vote_fail_rate = 0.002;
    try {
      const SolveReport r = Solver::solve(spec, a);
      ++ok;
      // Survived the schedule: the answer must be EXACTLY the fault-free
      // one (checksums and the vote path never perturb the numerics).
      EXPECT_EQ(r.eigenvalues, reference.eigenvalues) << "seed " << seed;
      EXPECT_EQ(r.sweeps, reference.sweeps) << "seed " << seed;
      EXPECT_EQ(r.rotations, reference.rotations) << "seed " << seed;
      EXPECT_EQ(r.status, SolveStatus::Ok) << "seed " << seed;
    } catch (const SolveError& e) {
      ++corrupt;
      EXPECT_EQ(e.status(), SolveStatus::TransportCorrupt) << "seed " << seed;
    }
  }
  // The rates are tuned so both outcomes occur: the soak exercises the
  // clean path AND the abort path, not one of them 500 times.
  EXPECT_GT(ok, 0);
  EXPECT_GT(corrupt, 0);
}

}  // namespace
}  // namespace jmh::api
