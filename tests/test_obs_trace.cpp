// obs:: tracing: span nesting per thread, ring wrap semantics (drop oldest,
// count drops, never stall), the trace=0 bit-identical contract on every
// backend scenario, allocation-free armed recording, phase-attributed
// report timings, and the Chrome trace_event JSON golden.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/solver.hpp"
#include "common/alloc_guard.hpp"
#include "la/sym_gen.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"

namespace jmh::obs {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

// The four backend execution scenarios of the paper protocol: inline,
// mpi_lite full-block, mpi_lite pipelined, and the simulated machine.
const char* const kScenarios[] = {
    "backend=inline,ordering=d4,m=16,d=2",
    "backend=mpi,ordering=d4,m=16,d=2",
    "backend=mpi,ordering=br,m=16,d=2,pipeline=2",
    "backend=sim,ordering=pbr,m=16,d=2,pipeline=auto",
};

void expect_bit_identical(const api::SolveReport& got, const api::SolveReport& want,
                          const char* label) {
  EXPECT_EQ(got.eigenvalues, want.eigenvalues) << label;
  EXPECT_EQ(la::Matrix::max_abs_diff(got.eigenvectors, want.eigenvectors), 0.0) << label;
  EXPECT_EQ(got.sweeps, want.sweeps) << label;
  EXPECT_EQ(got.rotations, want.rotations) << label;
  EXPECT_EQ(got.converged, want.converged) << label;
  EXPECT_EQ(got.comm.messages, want.comm.messages) << label;
  EXPECT_EQ(got.comm.elements, want.comm.elements) << label;
  EXPECT_EQ(got.comm.barriers, want.comm.barriers) << label;
  EXPECT_EQ(got.modeled_time, want.modeled_time) << label;
  EXPECT_EQ(got.link_busy, want.link_busy) << label;
}

#if JMH_TRACE_ENABLED

TEST(Trace, SpansNestPerThread) {
  reset_tracing();
  const ArmScope arm(true);
  {
    const SpanScope outer("outer", Category::kExec, 1);
    {
      const SpanScope inner("inner", Category::kExec, 2);
    }
  }
  const std::vector<TraceEvent> events = snapshot_trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Complete events are recorded at scope EXIT, so the inner span lands
  // first; both must carry this thread's ring id and nest by interval.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
}

TEST(Trace, ThreadsRecordIntoDistinctRings) {
  reset_tracing();
  const ArmScope arm(true);
  trace_record("main", Category::kExec, trace_now_ns(), 0, 0);
  std::thread other([] { trace_record("other", Category::kExec, trace_now_ns(), 0, 0); });
  other.join();
  const std::vector<TraceEvent> events = snapshot_trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Trace, RingWrapDropsOldestAndCounts) {
  reset_tracing();
  const ArmScope arm(true);
  const std::size_t cap = trace_ring_capacity();
  ASSERT_GT(cap, 0u);
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < cap + extra; ++i)
    trace_record("e", Category::kExec, i, 1, i);  // arg = sequence number
  EXPECT_EQ(trace_recorded_events(), cap + extra);
  EXPECT_EQ(trace_dropped_events(), extra);
  const std::vector<TraceEvent> events = snapshot_trace_events();
  ASSERT_EQ(events.size(), cap);
  // Oldest events are the ones dropped: the survivors are the LAST cap
  // records, oldest-first.
  for (std::size_t i = 0; i < cap; ++i)
    ASSERT_EQ(events[i].arg, extra + i) << "index " << i;
}

#ifndef NDEBUG
TEST(Trace, ArmedRecordingIsAllocationFreeAfterWarmup) {
  reset_tracing();
  const ArmScope arm(true);
  trace_record("warmup", Category::kExec, 0, 0, 0);  // ring created here
  const common::AllocGuard guard;
  for (int i = 0; i < 1000; ++i) {
    const SpanScope span("steady", Category::kSweep, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(guard.allocations(), 0u)
      << "armed span recording allocated after the ring warmed up";
}
#endif

// trace=1 must observe, never perturb: solution fields, sweep counts, and
// traffic counters stay bit-identical to the trace=0 run on every backend
// scenario -- and the trace=0 run records NOTHING.
TEST(Trace, UnarmedSolveIsBitIdenticalOnEveryBackend) {
  const la::Matrix a = test_matrix(16, 42);
  for (const char* scenario : kScenarios) {
    reset_tracing();
    const api::SolveReport plain =
        api::Solver::solve(api::SolverSpec::parse(scenario), a);
    EXPECT_EQ(trace_recorded_events(), 0u)
        << scenario << ": an unarmed solve recorded trace events";
    EXPECT_EQ(plain.timings.sweep_ns, 0u) << scenario;
    EXPECT_EQ(plain.timings.comm_ns, 0u) << scenario;
    EXPECT_EQ(plain.timings.assembly_ns, 0u) << scenario;

    std::string traced_spec(scenario);  // built by append: gcc 12 -Wrestrict
    traced_spec += ",trace=1";
    const api::SolveReport traced =
        api::Solver::solve(api::SolverSpec::parse(traced_spec), a);
    EXPECT_GT(trace_recorded_events(), 0u) << scenario;
    expect_bit_identical(traced, plain, scenario);
  }
}

TEST(Trace, TracedSolvePopulatesPhaseTimings) {
  reset_tracing();
  const la::Matrix a = test_matrix(32, 7);
  const api::SolveReport r = api::Solver::solve(
      api::SolverSpec::parse("backend=mpi,ordering=d4,m=32,d=2,trace=1"), a);
  EXPECT_GT(r.timings.plan_ns, 0u);
  EXPECT_GT(r.timings.sweep_ns, 0u);
  EXPECT_GT(r.timings.comm_ns, 0u);
  // comm is attributed from within the sweeps (plus the init allreduce), so
  // a comm total beyond sweep + one allreduce would be double counting.
  EXPECT_EQ(r.timings.queue_ns, 0u);  // svc fills this; a direct solve does not
  EXPECT_EQ(r.timings.retries, 0u);
}

// Service jobs carry the serving-plane attribution: queue_ns from the
// admission timestamp, the svc.queue_wait span, and per-job svc.solve
// envelopes in the trace.
TEST(Trace, ServiceJobsCarryQueueAttribution) {
  reset_tracing();
  const std::string spec = "backend=inline,ordering=d4,m=16,d=2,trace=1";
  svc::SolverService service({.workers = 1, .queue_capacity = 8});
  auto f1 = service.submit(spec, test_matrix(16, 1));
  auto f2 = service.submit(spec, test_matrix(16, 2));
  const api::SolveReport r1 = f1.get();
  const api::SolveReport r2 = f2.get();
  service.drain();
  EXPECT_GT(r1.timings.queue_ns, 0u);
  EXPECT_GT(r2.timings.queue_ns, 0u);
  EXPECT_GT(r1.timings.sweep_ns, 0u);
  bool saw_queue_wait = false;
  bool saw_svc_solve = false;
  for (const TraceEvent& e : snapshot_trace_events()) {
    if (std::string(e.name) == "svc.queue_wait") saw_queue_wait = true;
    if (std::string(e.name) == "svc.solve") saw_svc_solve = true;
  }
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_svc_solve);
}

// The Chrome trace_event rendering is a machine interface: golden-pinned
// modulo timing digits. Regenerate with JMH_UPDATE_GOLDEN=1.
TEST(Trace, ChromeJsonMatchesGolden) {
  reset_tracing();
  const la::Matrix a = test_matrix(16, 3);
  // Single-threaded inline scenario, one sweep: a deterministic span
  // sequence on one ring.
  (void)api::Solver::solve(
      api::SolverSpec::parse("backend=inline,ordering=d4,m=16,d=2,max_sweeps=1,trace=1"), a);
  std::string json = chrome_trace_json();

  // Normalize what legitimately varies run to run: timestamps, durations,
  // and the ring id (earlier tests may have registered rings first).
  json = std::regex_replace(json, std::regex(R"("ts":[0-9.]+)"), "\"ts\":T");
  json = std::regex_replace(json, std::regex(R"("dur":[0-9.]+)"), "\"dur\":D");
  json = std::regex_replace(json, std::regex(R"("tid":[0-9]+)"), "\"tid\":N");

  std::string golden_path(JMH_SOURCE_DIR);  // built by append: gcc 12 -Wrestrict
  golden_path += "/tests/golden/trace_inline_m16.json";
  if (std::getenv("JMH_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << json;
    GTEST_SKIP() << "golden updated: " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden " << golden_path
                  << " (regenerate with JMH_UPDATE_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(json, want.str());
}

#endif  // JMH_TRACE_ENABLED

// Structural validation holds in BOTH trace modes: the writer always emits
// a loadable trace_event document.
TEST(Trace, ChromeJsonIsStructurallyValid) {
  std::ostringstream out;
  write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(chrome_trace_json(), json);
}

}  // namespace
}  // namespace jmh::obs
