#include "pipe/execution_model.hpp"

#include <gtest/gtest.h>

namespace jmh::pipe {
namespace {

ExecutionParams paper_exec() {
  ExecutionParams e;
  e.machine.ts = 1000.0;
  e.machine.tw = 100.0;
  e.t_flop = 1.0;
  return e;
}

TEST(ExecutionModel, ComputeScalesInverselyWithNodes) {
  const auto exec = paper_exec();
  ProblemParams small, large;
  small.d = 3;
  large.d = 5;
  small.m = large.m = 1 << 12;
  EXPECT_NEAR(sweep_compute_time(small, exec) / sweep_compute_time(large, exec), 4.0, 1e-9);
}

TEST(ExecutionModel, SequentialMatchesSingleNodeWork) {
  const auto exec = paper_exec();
  ProblemParams p;
  p.d = 3;
  p.m = 1 << 10;
  // 2^d nodes each hold 1/2^d of the pairings.
  EXPECT_NEAR(sequential_sweep_time(p.m, exec),
              sweep_compute_time(p, exec) * std::ldexp(1.0, p.d), 1e-3);
}

TEST(ExecutionModel, TotalsAddUp) {
  const auto exec = paper_exec();
  ProblemParams p;
  p.d = 4;
  p.m = 1 << 12;
  const auto r = sweep_execution(ord::OrderingKind::Degree4, p, exec);
  EXPECT_NEAR(r.total, r.compute + r.comm, 1e-9);
  EXPECT_NEAR(r.comm_fraction, r.comm / r.total, 1e-12);
  EXPECT_GT(r.comm, 0.0);
  EXPECT_GT(r.compute, 0.0);
}

TEST(ExecutionModel, PipeliningImprovesExecutionTime) {
  const auto exec = paper_exec();
  ProblemParams p;
  p.d = 6;
  p.m = 1 << 14;
  const auto base = sweep_execution_unpipelined(p, exec);
  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                    ord::OrderingKind::Degree4}) {
    EXPECT_LE(sweep_execution(kind, p, exec).total, base.total + 1e-6);
  }
}

TEST(ExecutionModel, OrderingChoiceMattersWhenCommBound) {
  // Communication-bound regime (slow network relative to flops): degree-4
  // must beat BR end-to-end, not just on the comm term.
  ExecutionParams exec = paper_exec();
  exec.t_flop = 0.01;  // fast CPU -> comm dominates
  ProblemParams p;
  p.d = 8;
  p.m = 1 << 14;
  const double br = sweep_execution(ord::OrderingKind::BR, p, exec).total;
  const double d4 = sweep_execution(ord::OrderingKind::Degree4, p, exec).total;
  EXPECT_LT(d4, 0.7 * br);
}

TEST(ExecutionModel, OrderingChoiceIrrelevantWhenComputeBound) {
  ExecutionParams exec = paper_exec();
  exec.t_flop = 1000.0;  // slow CPU -> compute dominates
  ProblemParams p;
  p.d = 4;
  p.m = 1 << 10;
  const double br = sweep_execution(ord::OrderingKind::BR, p, exec).total;
  const double d4 = sweep_execution(ord::OrderingKind::Degree4, p, exec).total;
  EXPECT_NEAR(d4 / br, 1.0, 0.01);
}

TEST(ExecutionModel, SpeedupBoundedByNodeCount) {
  const auto exec = paper_exec();
  for (int d : {2, 4, 6}) {
    ProblemParams p;
    p.d = d;
    p.m = 1 << 13;
    const double s = sweep_speedup(ord::OrderingKind::PermutedBR, p, exec);
    EXPECT_GT(s, 1.0) << d;
    EXPECT_LE(s, std::ldexp(1.0, d) + 1e-9) << d;
  }
}

TEST(ExecutionModel, SpeedupImprovesWithBetterOrdering) {
  ExecutionParams exec = paper_exec();
  exec.t_flop = 0.05;
  ProblemParams p;
  p.d = 8;
  p.m = 1 << 14;
  EXPECT_GT(sweep_speedup(ord::OrderingKind::Degree4, p, exec),
            sweep_speedup(ord::OrderingKind::BR, p, exec));
}

}  // namespace
}  // namespace jmh::pipe
