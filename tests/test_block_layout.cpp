#include "solve/block_layout.hpp"

#include <gtest/gtest.h>

namespace jmh::solve {
namespace {

TEST(BlockLayout, EvenSplit) {
  const BlockLayout l(16, 2);  // 8 blocks of 2
  EXPECT_EQ(l.num_blocks(), 8u);
  for (ord::BlockId b = 0; b < 8; ++b) {
    EXPECT_EQ(l.block_size(b), 2u);
    EXPECT_EQ(l.block_begin(b), 2u * b);
  }
}

TEST(BlockLayout, UnevenSplitDiffersByAtMostOne) {
  const BlockLayout l(13, 2);  // 8 blocks over 13 columns
  std::size_t total = 0;
  std::size_t smallest = 13, largest = 0;
  for (ord::BlockId b = 0; b < l.num_blocks(); ++b) {
    const std::size_t s = l.block_size(b);
    total += s;
    smallest = std::min(smallest, s);
    largest = std::max(largest, s);
  }
  EXPECT_EQ(total, 13u);
  EXPECT_LE(largest - smallest, 1u);
}

TEST(BlockLayout, BlocksArePartition) {
  const BlockLayout l(37, 3);
  std::size_t next = 0;
  for (ord::BlockId b = 0; b < l.num_blocks(); ++b) {
    EXPECT_EQ(l.block_begin(b), next);
    next += l.block_size(b);
  }
  EXPECT_EQ(next, 37u);
}

TEST(BlockLayout, BlockOfInvertsBegin) {
  const BlockLayout l(37, 3);
  for (std::size_t col = 0; col < 37; ++col) {
    const ord::BlockId b = l.block_of(col);
    EXPECT_GE(col, l.block_begin(b));
    EXPECT_LT(col, l.block_begin(b) + l.block_size(b));
  }
}

TEST(BlockLayout, InitialAssignment) {
  const BlockLayout l(16, 2);
  EXPECT_EQ(l.initial_fixed(0), 0u);
  EXPECT_EQ(l.initial_mobile(0), 1u);
  EXPECT_EQ(l.initial_fixed(3), 6u);
  EXPECT_EQ(l.initial_mobile(3), 7u);
}

TEST(BlockLayout, RejectsTooFewColumns) {
  EXPECT_THROW(BlockLayout(7, 2), std::invalid_argument);  // 8 blocks need >= 8 cols
}

TEST(BlockLayout, PaperBlockCount) {
  // Paper 2.3.1: m columns grouped into 2^{d+1} blocks of m/2^{d+1}.
  const BlockLayout l(64, 3);
  EXPECT_EQ(l.num_blocks(), 16u);
  EXPECT_EQ(l.block_size(5), 4u);
}

}  // namespace
}  // namespace jmh::solve
