// The allocation-discipline checker itself (common/alloc_guard.hpp), and
// the sweep engine's steady-state audit built on it.
//
// Three layers of regression cover:
//   1. the counter mechanics -- a planted allocation is seen, AllocExempt
//      scopes hide wire allocations, rebase() restarts the window;
//   2. the engine audit trips -- a transport that plants one allocation per
//      phase makes run_sweep_protocol throw on the first steady-state sweep;
//   3. the opt-out works -- the same leaky transport reporting
//      steady_state_alloc_free() == false runs to convergence unaudited.
//
// The counting shim exists only in JMH_DASSERT builds; under NDEBUG every
// test here skips (the audit it covers is compiled out too).
#include "common/alloc_guard.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "la/sym_gen.hpp"
#include "ord/ordering.hpp"
#include "solve/inline_transport.hpp"
#include "solve/sweep_engine.hpp"

namespace jmh::solve {
namespace {

#define SKIP_UNLESS_COUNTING() \
  if (!common::kAllocGuardActive) GTEST_SKIP() << "AllocGuard counts only in JMH_DASSERT builds"

TEST(AllocGuard, SeesPlantedAllocation) {
  SKIP_UNLESS_COUNTING();
  const common::AllocGuard guard;
  EXPECT_EQ(guard.allocations(), 0u);
  auto planted = std::make_unique<int>(7);
  EXPECT_GE(guard.allocations(), 1u);
}

TEST(AllocGuard, ExemptScopeHidesWireAllocations) {
  SKIP_UNLESS_COUNTING();
  const common::AllocGuard guard;
  {
    const common::AllocExempt wire;
    auto hidden = std::make_unique<int>(1);
  }
  EXPECT_EQ(guard.allocations(), 0u) << "exempt allocation was counted";
  {
    const common::AllocExempt outer;
    const common::AllocExempt inner;  // scopes nest
    auto hidden = std::make_unique<int>(2);
  }
  auto counted = std::make_unique<int>(3);  // scope ended: counting resumes
  EXPECT_GE(guard.allocations(), 1u);
}

TEST(AllocGuard, RebaseRestartsTheWindow) {
  SKIP_UNLESS_COUNTING();
  common::AllocGuard guard;
  auto warmup = std::make_unique<int>(4);
  EXPECT_GE(guard.allocations(), 1u);
  guard.rebase();
  EXPECT_EQ(guard.allocations(), 0u);
}

// InlineTransport with one deliberate heap allocation per phase -- the
// exact defect class the engine audit exists to catch (a scratch buffer
// that silently regressed to per-sweep construction).
class LeakyTransport : public InlineTransport {
 public:
  LeakyTransport(const la::Matrix& a, int d, bool confess)
      : InlineTransport(a, d), confess_(confess) {}

  SweepStats run_phase(const PhaseContext& ctx) override {
    leak_ = std::vector<double>(64, 1.0);
    return InlineTransport::run_phase(ctx);
  }

  bool steady_state_alloc_free() const noexcept override { return confess_; }

 private:
  bool confess_;
  std::vector<double> leak_;
};

la::Matrix test_matrix() {
  Xoshiro256 rng(29);
  return la::random_uniform_symmetric(16, rng);
}

TEST(AllocGuardEngine, AuditTripsOnPlantedPhaseAllocation) {
  SKIP_UNLESS_COUNTING();
  const la::Matrix a = test_matrix();
  LeakyTransport transport(a, 1, /*confess=*/true);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 1);
  EXPECT_THROW(run_sweep_protocol(transport, ordering, SolveOptions{}), std::invalid_argument)
      << "a per-phase allocation in sweep >= 1 must fail the steady-state audit";
}

TEST(AllocGuardEngine, OptOutTransportIsNotAudited) {
  SKIP_UNLESS_COUNTING();
  const la::Matrix a = test_matrix();
  LeakyTransport transport(a, 1, /*confess=*/false);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 1);
  const EngineResult res = run_sweep_protocol(transport, ordering, SolveOptions{});
  EXPECT_TRUE(res.converged) << "opted-out transport must run unaudited to convergence";
}

TEST(AllocGuardEngine, CleanTransportPassesTheAudit) {
  SKIP_UNLESS_COUNTING();
  const la::Matrix a = test_matrix();
  InlineTransport transport(a, 1);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 1);
  const EngineResult res = run_sweep_protocol(transport, ordering, SolveOptions{});
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace jmh::solve
