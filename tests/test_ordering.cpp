#include "ord/ordering.hpp"

#include <gtest/gtest.h>

#include "ord/br.hpp"
#include "ord/degree4.hpp"
#include "ord/min_alpha.hpp"
#include "ord/permuted_br.hpp"

namespace jmh::ord {
namespace {

TEST(Ordering, StepsPerSweep) {
  for (int d = 1; d <= 8; ++d) {
    const JacobiOrdering ord(OrderingKind::BR, d);
    EXPECT_EQ(ord.steps_per_sweep(), (std::size_t{2} << d) - 1);
    EXPECT_EQ(ord.num_blocks(), std::size_t{2} << d);
    EXPECT_EQ(ord.sweep_transitions(0).size(), ord.steps_per_sweep());
  }
}

TEST(Ordering, PhaseDecomposition) {
  const JacobiOrdering ord(OrderingKind::BR, 3);
  const auto& phases = ord.phases();
  // d exchange phases + d divisions + 1 last transition.
  ASSERT_EQ(phases.size(), 7u);
  EXPECT_EQ(phases[0].type, PhaseInfo::Type::Exchange);
  EXPECT_EQ(phases[0].e, 3);
  EXPECT_EQ(phases[0].num_steps, 7u);
  EXPECT_EQ(phases[1].type, PhaseInfo::Type::Division);
  EXPECT_EQ(phases[2].e, 2);
  EXPECT_EQ(phases[2].num_steps, 3u);
  EXPECT_EQ(phases[4].e, 1);
  EXPECT_EQ(phases[6].type, PhaseInfo::Type::LastTransition);
  // Contiguous coverage.
  std::size_t next = 0;
  for (const auto& p : phases) {
    EXPECT_EQ(p.first_step, next);
    next += p.num_steps;
  }
  EXPECT_EQ(next, ord.steps_per_sweep());
}

TEST(Ordering, TransitionLinksComeFromSequences) {
  const JacobiOrdering ord(OrderingKind::PermutedBR, 4);
  const auto ts = ord.sweep_transitions(0);
  std::size_t pos = 0;
  for (int e = 4; e >= 1; --e) {
    const auto& seq = ord.exchange_sequence(e);
    for (std::size_t i = 0; i < seq.size(); ++i, ++pos) {
      EXPECT_EQ(ts[pos].link, seq[i]);
      EXPECT_FALSE(ts[pos].division);
    }
    EXPECT_EQ(ts[pos].link, e - 1);  // division through link e-1
    EXPECT_TRUE(ts[pos].division);
    ++pos;
  }
  EXPECT_EQ(ts[pos].link, 3);  // last transition through link d-1
  EXPECT_FALSE(ts[pos].division);
}

TEST(Ordering, SweepLinkRotation) {
  // sigma_s(i) = (i - s) mod d.
  const JacobiOrdering ord(OrderingKind::BR, 4);
  EXPECT_EQ(ord.sweep_link_map(0, 2), 2);
  EXPECT_EQ(ord.sweep_link_map(1, 2), 1);
  EXPECT_EQ(ord.sweep_link_map(1, 0), 3);
  EXPECT_EQ(ord.sweep_link_map(4, 2), 2);  // period d
  EXPECT_EQ(ord.sweep_link_map(5, 2), 1);
}

TEST(Ordering, SweepTransitionsApplyRotation) {
  const JacobiOrdering ord(OrderingKind::BR, 3);
  const auto base = ord.sweep_transitions(0);
  const auto next = ord.sweep_transitions(1);
  ASSERT_EQ(base.size(), next.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(next[i].link, (base[i].link + 2) % 3) << i;  // (l - 1) mod 3
    EXPECT_EQ(next[i].division, base[i].division);
  }
}

TEST(Ordering, SequenceFamilies) {
  EXPECT_EQ(make_exchange_sequence(OrderingKind::BR, 5).links(), br_sequence(5).links());
  EXPECT_EQ(make_exchange_sequence(OrderingKind::PermutedBR, 5).links(),
            permuted_br_sequence(5).links());
  EXPECT_EQ(make_exchange_sequence(OrderingKind::Degree4, 5).links(),
            degree4_sequence(5).links());
  EXPECT_EQ(make_exchange_sequence(OrderingKind::MinAlpha, 5).links(),
            paper_min_alpha_sequence(5).links());
}

TEST(Ordering, SequenceFallbacks) {
  // degree-4 undefined for e<4 -> BR; min-alpha beyond e=6 -> permuted-BR.
  EXPECT_EQ(make_exchange_sequence(OrderingKind::Degree4, 3).links(), br_sequence(3).links());
  EXPECT_EQ(make_exchange_sequence(OrderingKind::MinAlpha, 8).links(),
            permuted_br_sequence(8).links());
  EXPECT_EQ(make_exchange_sequence(OrderingKind::PermutedBR, 1).links(),
            br_sequence(1).links());
}

TEST(Ordering, ToString) {
  EXPECT_EQ(to_string(OrderingKind::BR), "BR");
  EXPECT_EQ(to_string(OrderingKind::PermutedBR), "permuted-BR");
  EXPECT_EQ(to_string(OrderingKind::Degree4), "degree-4");
  EXPECT_EQ(to_string(OrderingKind::MinAlpha), "min-alpha");
}

TEST(Ordering, RejectsBadDimension) {
  EXPECT_THROW(JacobiOrdering(OrderingKind::BR, 0), std::invalid_argument);
}

class OrderingKindTest : public ::testing::TestWithParam<OrderingKind> {};

TEST_P(OrderingKindTest, AllExchangeSequencesValid) {
  for (int d = 1; d <= 9; ++d) {
    const JacobiOrdering ord(GetParam(), d);
    for (int e = 1; e <= d; ++e) EXPECT_TRUE(ord.exchange_sequence(e).is_valid());
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, OrderingKindTest,
                         ::testing::Values(OrderingKind::BR, OrderingKind::PermutedBR,
                                           OrderingKind::Degree4, OrderingKind::MinAlpha));

}  // namespace
}  // namespace jmh::ord
