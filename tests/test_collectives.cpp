#include "net/collectives.hpp"

#include <gtest/gtest.h>

namespace jmh::net {
namespace {

TEST(Collectives, AllreduceSumPow2) {
  Universe u(8);
  u.run([](Comm& c) {
    const double total = allreduce_sum(c, static_cast<double>(c.rank()));
    EXPECT_DOUBLE_EQ(total, 28.0);  // 0+..+7
  });
}

TEST(Collectives, AllreduceSumNonPow2) {
  Universe u(5);
  u.run([](Comm& c) {
    const double total = allreduce_sum(c, 1.0);
    EXPECT_DOUBLE_EQ(total, 5.0);
  });
}

TEST(Collectives, AllreduceMax) {
  Universe u(4);
  u.run([](Comm& c) {
    const double mx = allreduce_max(c, static_cast<double>(c.rank() * c.rank()));
    EXPECT_DOUBLE_EQ(mx, 9.0);
  });
}

TEST(Collectives, AllreduceAnd) {
  Universe u(4);
  u.run([](Comm& c) {
    EXPECT_TRUE(allreduce_and(c, true));
    EXPECT_FALSE(allreduce_and(c, c.rank() != 2));
    EXPECT_FALSE(allreduce_and(c, false));
  });
}

TEST(Collectives, AllgathervConcatenatesInRankOrder) {
  Universe u(4);
  u.run([](Comm& c) {
    // Rank r contributes r+1 copies of r.
    std::vector<double> mine(static_cast<std::size_t>(c.rank() + 1),
                             static_cast<double>(c.rank()));
    const auto all = allgatherv(c, mine);
    ASSERT_EQ(all.size(), 10u);  // 1+2+3+4
    std::size_t pos = 0;
    for (int r = 0; r < 4; ++r)
      for (int i = 0; i <= r; ++i) EXPECT_EQ(all[pos++], static_cast<double>(r));
  });
}

TEST(Collectives, AllgathervEmptyContributions) {
  Universe u(3);
  u.run([](Comm& c) {
    std::vector<double> mine;
    if (c.rank() == 1) mine = {5.0};
    const auto all = allgatherv(c, mine);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], 5.0);
  });
}

TEST(Collectives, Broadcast) {
  Universe u(4);
  u.run([](Comm& c) {
    std::vector<double> data;
    if (c.rank() == 2) data = {1.0, 2.0, 3.0};
    const auto got = broadcast(c, 2, data);
    EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
  });
}

TEST(Collectives, BroadcastRejectsBadRoot) {
  Universe u(2);
  EXPECT_THROW(u.run([](Comm& c) { broadcast(c, 5, std::vector<double>{}); }),
               std::invalid_argument);
}

TEST(Collectives, RepeatedAllreducesStayConsistent) {
  Universe u(8);
  u.run([](Comm& c) {
    for (int round = 0; round < 20; ++round) {
      const double total = allreduce_sum(c, static_cast<double>(round));
      EXPECT_DOUBLE_EQ(total, 8.0 * round);
    }
  });
}

}  // namespace
}  // namespace jmh::net
