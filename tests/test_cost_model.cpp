#include "pipe/cost_model.hpp"

#include <gtest/gtest.h>

#include "pipe/optimizer.hpp"

namespace jmh::pipe {
namespace {

MachineParams paper_machine() {
  MachineParams m;
  m.ts = 1000.0;
  m.tw = 100.0;
  return m;
}

TEST(ProblemParams, Geometry) {
  ProblemParams p;
  p.d = 3;
  p.m = 64.0;
  EXPECT_DOUBLE_EQ(p.columns_per_block(), 4.0);           // 64 / 16
  EXPECT_DOUBLE_EQ(p.step_message_elems(), 2.0 * 64 * 4);  // block of A + block of U
  EXPECT_EQ(p.q_max(), 4u);
}

TEST(ProblemParams, TallGeometryChargesRowsPlusM) {
  // A tall task=svd transition moves a block of B (rows x cpb) plus the
  // matching block of V (m x cpb): (rows + m) * cpb elements per step, not
  // the square model's 2 * m * cpb.
  ProblemParams p;
  p.d = 3;
  p.m = 64.0;
  p.rows = 1024.0;
  EXPECT_DOUBLE_EQ(p.input_rows(), 1024.0);
  EXPECT_DOUBLE_EQ(p.step_message_elems(), (1024.0 + 64.0) * 4.0);
  // rows == 0 keeps the historical square payload bit-for-bit.
  p.rows = 0.0;
  EXPECT_DOUBLE_EQ(p.input_rows(), 64.0);
  EXPECT_DOUBLE_EQ(p.step_message_elems(), 2.0 * 64.0 * 4.0);
}

TEST(ProblemParams, TooSmallMatrixRejected) {
  ProblemParams p;
  p.d = 5;
  p.m = 32.0;  // 64 blocks > 32 columns
  EXPECT_THROW(p.q_max(), std::invalid_argument);
}

TEST(CostModel, UnpipelinedPhase) {
  const auto m = paper_machine();
  EXPECT_DOUBLE_EQ(phase_cost_unpipelined(7, 10.0, m), 7 * (1000.0 + 1000.0));
}

TEST(CostModel, PipelinedQ1EqualsUnpipelined) {
  const auto m = paper_machine();
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::BR, 4);
  EXPECT_DOUBLE_EQ(phase_cost_pipelined(seq, 1, 10.0, m),
                   phase_cost_unpipelined(seq.size(), 10.0, m));
}

TEST(CostModel, DeepClosedFormMatchesExplicitSchedule) {
  // The deep-mode closed form must agree with summing the materialized
  // schedule's stages.
  const auto m = paper_machine();
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::PermutedBR, 4);  // K=15
  for (std::uint64_t q : {16u, 20u, 40u, 100u}) {
    const PipelineSchedule sched(seq, q);
    const double packet = 10.0 / static_cast<double>(q);
    double explicit_total = 0.0;
    for (const auto& st : sched.stages())
      explicit_total += comm_op_cost(m, st.distinct, st.max_mult, st.window_len, packet);
    EXPECT_NEAR(phase_cost_pipelined(seq, q, 10.0, m), explicit_total, 1e-6) << "q=" << q;
  }
}

TEST(CostModel, IdealNeverExceedsRealSequences) {
  const auto m = paper_machine();
  const double s = 1e4;
  for (int e : {3, 5, 7}) {
    for (std::uint64_t q : {1u, 2u, 4u, 8u, 40u, 200u}) {
      const double ideal = phase_cost_ideal(e, q, s, m);
      for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                        ord::OrderingKind::Degree4, ord::OrderingKind::MinAlpha}) {
        const auto seq = ord::make_exchange_sequence(kind, e);
        EXPECT_LE(ideal, phase_cost_pipelined(seq, q, s, m) + 1e-9)
            << "e=" << e << " q=" << q << " kind=" << ord::to_string(kind);
      }
    }
  }
}

TEST(CostModel, SweepUnpipelined) {
  const auto m = paper_machine();
  ProblemParams p;
  p.d = 3;
  p.m = 64.0;
  const double per_transition = 1000.0 + p.step_message_elems() * 100.0;
  EXPECT_DOUBLE_EQ(sweep_cost_unpipelined(p, m), 15.0 * per_transition);
}

TEST(CostModel, PipelinedNeverWorseThanUnpipelined) {
  const auto m = paper_machine();
  for (int d : {3, 5, 7}) {
    ProblemParams p;
    p.d = d;
    p.m = 4096.0;
    const double base = sweep_cost_unpipelined(p, m);
    for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                      ord::OrderingKind::Degree4}) {
      EXPECT_LE(sweep_cost_pipelined(kind, p, m).total, base + 1e-6) << d;
    }
  }
}

TEST(CostModel, LowerBoundBelowEveryOrdering) {
  const auto m = paper_machine();
  ProblemParams p;
  p.d = 6;
  p.m = 1 << 16;
  const double lb = sweep_cost_lower_bound(p, m).total;
  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                    ord::OrderingKind::Degree4, ord::OrderingKind::MinAlpha}) {
    EXPECT_LE(lb, sweep_cost_pipelined(kind, p, m).total + 1e-6);
  }
}

TEST(CostModel, PipelinedBrGainsCapAtTwo) {
  // Section 2.4: BR's pipelined communication cost cannot drop below ~half
  // of the unpipelined cost (bandwidth-dominated regime).
  MachineParams m = paper_machine();
  m.ts = 1.0;  // make startups negligible -> pure bandwidth regime
  ProblemParams p;
  p.d = 8;
  p.m = 1 << 20;
  const double base = sweep_cost_unpipelined(p, m);
  const double pip = sweep_cost_pipelined(ord::OrderingKind::BR, p, m).total;
  EXPECT_GT(pip / base, 0.45);
  EXPECT_LT(pip / base, 0.75);
}

TEST(CostModel, PermutedBrApproachesLowerBoundWhenDeep) {
  // Figure 2(c) regime: huge matrix, deep pipelining everywhere.
  const auto m = paper_machine();
  ProblemParams p;
  p.d = 10;
  p.m = std::ldexp(1.0, 26);
  const auto pbr = sweep_cost_pipelined(ord::OrderingKind::PermutedBR, p, m);
  const auto lb = sweep_cost_lower_bound(p, m);
  EXPECT_TRUE(pbr.deep.front());  // largest phase runs deep
  EXPECT_LT(pbr.total / lb.total, 1.6);
}

TEST(CostModel, Degree4QuarterOfBr) {
  // The headline claim: degree-4 halves pipelined-BR (i.e. ~1/4 of plain BR).
  const auto m = paper_machine();
  ProblemParams p;
  p.d = 10;
  p.m = std::ldexp(1.0, 18);
  const double base = sweep_cost_unpipelined(p, m);
  const double d4 = sweep_cost_pipelined(ord::OrderingKind::Degree4, p, m).total;
  const double br = sweep_cost_pipelined(ord::OrderingKind::BR, p, m).total;
  EXPECT_NEAR(d4 / base, 0.25, 0.05);
  EXPECT_NEAR(br / base, 0.50, 0.05);
}

TEST(Optimizer, MatchesExhaustiveSearchOnSmallPhase) {
  const auto m = paper_machine();
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::Degree4, 4);  // K=15
  const double s = 500.0;
  const std::uint64_t q_max = 60;
  double best_cost = phase_cost_pipelined(seq, 1, s, m);
  std::uint64_t best_q = 1;
  for (std::uint64_t q = 2; q <= q_max; ++q) {
    const double c = phase_cost_pipelined(seq, q, s, m);
    if (c < best_cost) {
      best_cost = c;
      best_q = q;
    }
  }
  const OptimalQ opt = find_optimal_q(seq, s, m, q_max);
  EXPECT_NEAR(opt.cost, best_cost, best_cost * 0.02) << "opt.q=" << opt.q << " vs " << best_q;
}

TEST(Optimizer, RespectsQMax) {
  const auto m = paper_machine();
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::PermutedBR, 5);
  const OptimalQ opt = find_optimal_q(seq, 1e6, m, 4);
  EXPECT_LE(opt.q, 4u);
}

// Regression for the square-payload bug: find_optimal_sweep_q used to
// charge 2 * m * cpb elements per transition regardless of the input shape,
// so a tall task=svd problem -- whose transitions carry (rows + m) * cpb
// elements -- was optimized for the wrong payload. On this instance the
// correct model picks a deeper q than the square model does, so the test
// fails if the payload reverts to 2m.
TEST(Optimizer, SweepQIsRowsAware) {
  MachineParams mach;
  mach.ts = 1000.0;
  mach.tw = 1.0;
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 2);
  const std::uint64_t q_max = 8;  // 64 / 2^3 columns per block

  ProblemParams tall;
  tall.d = 2;
  tall.m = 64.0;
  tall.rows = 512.0;
  const OptimalQ best = find_optimal_sweep_q(ordering, tall, mach, q_max);

  // Brute-force argmin of the summed exchange-phase cost at the TALL
  // payload over every feasible q (exhaustive: q_max = 8).
  const double step_elems = tall.step_message_elems();
  std::uint64_t expected_q = 0;
  double expected_cost = 0.0;
  for (std::uint64_t q = 1; q <= q_max; ++q) {
    double total = 0.0;
    for (int e = 2; e >= 1; --e)
      total += phase_cost_pipelined(ordering.exchange_sequence(e), q, step_elems, mach);
    if (expected_q == 0 || total < expected_cost) {
      expected_q = q;
      expected_cost = total;
    }
  }
  EXPECT_EQ(best.q, expected_q);
  EXPECT_DOUBLE_EQ(best.cost, expected_cost);

  // The square model picks a different q here, so charging 2m would be a
  // test-visible regression, not a silent cost shift.
  ProblemParams square = tall;
  square.rows = 0.0;
  const OptimalQ square_best = find_optimal_sweep_q(ordering, square, mach, q_max);
  EXPECT_NE(square_best.q, best.q);
}

TEST(Optimizer, IdealOptimumAtMostReal) {
  const auto m = paper_machine();
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::PermutedBR, 6);
  const double s = 1e5;
  const auto real = find_optimal_q(seq, s, m, 1 << 20);
  const auto ideal = find_optimal_q_ideal(6, s, m, 1 << 20);
  EXPECT_LE(ideal.cost, real.cost + 1e-6);
}

}  // namespace
}  // namespace jmh::pipe
