#include "la/sym_gen.hpp"

#include <gtest/gtest.h>

#include "la/eigen_check.hpp"
#include "la/onesided_jacobi.hpp"

namespace jmh::la {
namespace {

TEST(SymGen, RandomUniformIsSymmetricAndBounded) {
  Xoshiro256 rng(17);
  const Matrix a = random_uniform_symmetric(16, rng);
  for (std::size_t c = 0; c < 16; ++c) {
    for (std::size_t r = 0; r < 16; ++r) {
      EXPECT_EQ(a(r, c), a(c, r));
      EXPECT_GE(a(r, c), -1.0);
      EXPECT_LT(a(r, c), 1.0);
    }
  }
}

TEST(SymGen, RandomUniformIsSeedDeterministic) {
  Xoshiro256 r1(5), r2(5);
  const Matrix a = random_uniform_symmetric(8, r1);
  const Matrix b = random_uniform_symmetric(8, r2);
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.0);
}

TEST(SymGen, Diagonal) {
  const Matrix d = diagonal({1.0, 2.0, 3.0});
  EXPECT_EQ(d(0, 0), 1.0);
  EXPECT_EQ(d(2, 2), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(SymGen, TridiagShape) {
  const Matrix t = tridiag_toeplitz(5, 2.0, -1.0);
  EXPECT_EQ(t(0, 0), 2.0);
  EXPECT_EQ(t(1, 0), -1.0);
  EXPECT_EQ(t(0, 1), -1.0);
  EXPECT_EQ(t(2, 0), 0.0);
}

TEST(SymGen, TridiagEigenvaluesAscending) {
  const auto ev = tridiag_toeplitz_eigenvalues(7, 2.0, -1.0);
  ASSERT_EQ(ev.size(), 7u);
  for (std::size_t i = 1; i < ev.size(); ++i) EXPECT_LT(ev[i - 1], ev[i]);
  // The classic 1D Laplacian spectrum lies in (0, 4).
  EXPECT_GT(ev.front(), 0.0);
  EXPECT_LT(ev.back(), 4.0);
}

TEST(SymGen, SpectrumMatrixIsSymmetric) {
  Xoshiro256 rng(3);
  const Matrix a = symmetric_with_spectrum({1.0, 2.0, 5.0, -4.0}, rng);
  for (std::size_t c = 0; c < 4; ++c)
    for (std::size_t r = 0; r < 4; ++r) EXPECT_NEAR(a(r, c), a(c, r), 1e-12);
}

TEST(SymGen, SpectrumMatrixPreservesEigenvalues) {
  Xoshiro256 rng(11);
  const std::vector<double> spectrum = {-3.0, -1.0, 0.5, 2.0, 10.0};
  const Matrix a = symmetric_with_spectrum(spectrum, rng);
  const auto result = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(result.converged);
  std::vector<double> want = spectrum;
  std::sort(want.begin(), want.end());
  EXPECT_LT(spectrum_distance(result.eigenvalues, want), 1e-9);
}

TEST(SymGen, SpectrumMatrixIsNotDiagonal) {
  // The Householder mixing must actually rotate the basis.
  Xoshiro256 rng(7);
  const Matrix a = symmetric_with_spectrum({1.0, 2.0, 3.0, 4.0}, rng);
  EXPECT_GT(offdiag_frobenius(a), 0.1);
}

}  // namespace
}  // namespace jmh::la
