#include "ord/min_alpha.hpp"

#include <gtest/gtest.h>

#include "ord/bounds.hpp"

namespace jmh::ord {
namespace {

TEST(MinAlpha, PaperSequencesAreValid) {
  for (int e = 2; e <= kMaxPaperMinAlphaE; ++e)
    EXPECT_TRUE(paper_min_alpha_sequence(e).is_valid()) << "e=" << e;
}

TEST(MinAlpha, PaperSequencesHaveClaimedAlpha) {
  // Section 3.1: alpha = 2, 3, 4, 7, 11 for e = 2..6.
  const int claimed[] = {2, 3, 4, 7, 11};
  for (int e = 2; e <= 6; ++e)
    EXPECT_EQ(paper_min_alpha_sequence(e).alpha(), claimed[e - 2]) << "e=" << e;
}

TEST(MinAlpha, PaperAlphasMeetTheLowerBound) {
  // All published optima coincide with ceil((2^e-1)/e).
  for (int e = 2; e <= 6; ++e)
    EXPECT_EQ(static_cast<std::uint64_t>(paper_min_alpha_sequence(e).alpha()),
              alpha_lower_bound(e))
        << "e=" << e;
}

TEST(MinAlpha, RejectsOutOfRange) {
  EXPECT_THROW(paper_min_alpha_sequence(1), std::invalid_argument);
  EXPECT_THROW(paper_min_alpha_sequence(7), std::invalid_argument);
}

class MinAlphaSearchTest : public ::testing::TestWithParam<int> {};

TEST_P(MinAlphaSearchTest, SearchAttainsLowerBound) {
  const int e = GetParam();
  const auto seq = search_min_alpha(e);
  ASSERT_TRUE(seq.has_value()) << "search budget exhausted for e=" << e;
  EXPECT_TRUE(seq->is_valid());
  EXPECT_EQ(static_cast<std::uint64_t>(seq->alpha()), alpha_lower_bound(e));
}

INSTANTIATE_TEST_SUITE_P(SmallCubes, MinAlphaSearchTest, ::testing::Range(1, 6));

TEST(MinAlphaSearch, InfeasibleBoundIsProvedInfeasible) {
  // alpha = 1 cannot work for e = 3 (7 elements over 3 links).
  const auto r = find_sequence_with_alpha(3, 1);
  EXPECT_FALSE(r.sequence.has_value());
  EXPECT_TRUE(r.exhausted);
}

TEST(MinAlphaSearch, GenerousBoundFindsBrLikeSequence) {
  const auto r = find_sequence_with_alpha(4, 8);
  ASSERT_TRUE(r.sequence.has_value());
  EXPECT_TRUE(r.sequence->is_valid());
  EXPECT_LE(r.sequence->alpha(), 8);
}

TEST(MinAlphaSearch, BudgetExhaustionReported) {
  const auto r = find_sequence_with_alpha(6, static_cast<int>(alpha_lower_bound(6)), 10);
  if (!r.sequence) {
    EXPECT_FALSE(r.exhausted);
  }
}

TEST(MinAlphaSearch, NodeCountIsCounted) {
  const auto r = find_sequence_with_alpha(3, 3);
  EXPECT_GT(r.nodes_expanded, 0u);
}

}  // namespace
}  // namespace jmh::ord
