#include "net/hypercube_comm.hpp"

#include <gtest/gtest.h>

namespace jmh::net {
namespace {

TEST(HypercubeComm, RequiresPowerOfTwo) {
  Universe u(3);
  EXPECT_THROW(u.run([](Comm& c) { HypercubeComm hc(c); }), std::invalid_argument);
}

TEST(HypercubeComm, DimensionAndNeighbors) {
  Universe u(8);
  u.run([](Comm& c) {
    HypercubeComm hc(c);
    EXPECT_EQ(hc.dimension(), 3);
    EXPECT_EQ(hc.node(), static_cast<cube::Node>(c.rank()));
    for (cube::Link l = 0; l < 3; ++l)
      EXPECT_EQ(hc.neighbor(l), static_cast<cube::Node>(c.rank() ^ (1 << l)));
  });
}

TEST(HypercubeComm, ExchangeAcrossEachDimension) {
  Universe u(8);
  u.run([](Comm& c) {
    HypercubeComm hc(c);
    for (cube::Link l = 0; l < 3; ++l) {
      const double mine = static_cast<double>(c.rank());
      const Payload got = hc.exchange(l, std::span<const double>(&mine, 1));
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], static_cast<double>(c.rank() ^ (1 << l)));
    }
  });
}

TEST(HypercubeComm, DirectedSendRecv) {
  Universe u(4);
  u.run([](Comm& c) {
    HypercubeComm hc(c);
    // Everyone sends its rank across link 0 and receives the neighbor's.
    const double mine = static_cast<double>(c.rank());
    hc.send(0, std::span<const double>(&mine, 1));
    const Payload got = hc.recv(0);
    EXPECT_EQ(got[0], static_cast<double>(c.rank() ^ 1));
  });
}

TEST(HypercubeComm, TagsIsolateConcurrentExchanges) {
  Universe u(4);
  u.run([](Comm& c) {
    HypercubeComm hc(c);
    // Issue sends on two links with distinct tags before receiving either;
    // matching must not cross over.
    const double a = 10.0 + c.rank(), b = 20.0 + c.rank();
    hc.send(0, std::span<const double>(&a, 1), /*tag=*/1);
    hc.send(1, std::span<const double>(&b, 1), /*tag=*/2);
    EXPECT_EQ(hc.recv(0, 1)[0], 10.0 + (c.rank() ^ 1));
    EXPECT_EQ(hc.recv(1, 2)[0], 20.0 + (c.rank() ^ 2));
  });
}

TEST(HypercubeComm, InvalidLinkRejected) {
  Universe u(2);
  EXPECT_THROW(u.run([](Comm& c) {
    HypercubeComm hc(c);
    const double x = 0.0;
    hc.exchange(1, std::span<const double>(&x, 1));
  }),
               std::invalid_argument);
}

TEST(HypercubeComm, SingleNodeCube) {
  Universe u(1);
  u.run([](Comm& c) {
    HypercubeComm hc(c);
    EXPECT_EQ(hc.dimension(), 0);
  });
}

}  // namespace
}  // namespace jmh::net
