#include "la/onesided_jacobi.hpp"

#include <gtest/gtest.h>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"

namespace jmh::la {
namespace {

TEST(CyclicPattern, CoversAllPairs) {
  for (std::size_t n : {2u, 3u, 8u, 15u}) {
    const auto p = cyclic_pattern(n);
    EXPECT_TRUE(is_complete_pattern(p, n));
  }
}

TEST(CompletePattern, RejectsBadPatterns) {
  EXPECT_FALSE(is_complete_pattern({{0, 1}}, 3));               // too short
  EXPECT_FALSE(is_complete_pattern({{0, 1}, {0, 1}, {1, 2}}, 3));  // duplicate
  EXPECT_FALSE(is_complete_pattern({{0, 1}, {0, 2}, {2, 2}}, 3));  // self pair
  EXPECT_TRUE(is_complete_pattern({{0, 1}, {0, 2}, {1, 2}}, 3));
  EXPECT_TRUE(is_complete_pattern({{1, 0}, {2, 0}, {1, 2}}, 3));  // order-free
}

TEST(OnesidedJacobi, DiagonalMatrixConvergesImmediately) {
  const Matrix a = diagonal({3.0, 1.0, 2.0});
  const auto r = onesided_jacobi_cyclic(a);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.sweeps, 0);
  EXPECT_EQ(r.rotations, 0u);
  const std::vector<double> want = {1.0, 2.0, 3.0};
  EXPECT_LT(spectrum_distance(r.eigenvalues, want), 1e-14);
}

TEST(OnesidedJacobi, TwoByTwoKnownEigenvalues) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 2.0;
  a(0, 1) = a(1, 0) = 1.0;
  const auto r = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-12);
}

TEST(OnesidedJacobi, TridiagonalClosedFormSpectrum) {
  const std::size_t n = 12;
  const Matrix a = tridiag_toeplitz(n, 2.0, -1.0);
  const auto r = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(spectrum_distance(r.eigenvalues, tridiag_toeplitz_eigenvalues(n, 2.0, -1.0)),
            1e-10);
}

TEST(OnesidedJacobi, ResidualAndOrthogonality) {
  Xoshiro256 rng(31);
  const Matrix a = random_uniform_symmetric(20, rng);
  const auto r = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(eigenpair_residual(a, r.eigenvalues, r.eigenvectors), 1e-10);
  EXPECT_LT(orthogonality_defect(r.eigenvectors), 1e-12);
}

TEST(OnesidedJacobi, NegativeEigenvaluesRecovered) {
  Xoshiro256 rng(13);
  const std::vector<double> spectrum = {-10.0, -2.5, 0.0, 1.0, 7.75};
  const Matrix a = symmetric_with_spectrum(spectrum, rng);
  const auto r = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(spectrum_distance(r.eigenvalues, spectrum), 1e-9);
}

TEST(OnesidedJacobi, TraceIsPreserved) {
  Xoshiro256 rng(37);
  const Matrix a = random_uniform_symmetric(10, rng);
  double trace = 0.0;
  for (std::size_t i = 0; i < 10; ++i) trace += a(i, i);
  const auto r = onesided_jacobi_cyclic(a);
  double sum = 0.0;
  for (double ev : r.eigenvalues) sum += ev;
  EXPECT_NEAR(sum, trace, 1e-10);
}

TEST(OnesidedJacobi, CustomPatternProviderIsUsed) {
  // A reversed-order pattern must still converge to the same spectrum.
  Xoshiro256 rng(41);
  const Matrix a = random_uniform_symmetric(9, rng);
  auto reversed = [&](int) {
    auto p = cyclic_pattern(9);
    std::reverse(p.begin(), p.end());
    return p;
  };
  const auto r1 = onesided_jacobi(a, reversed);
  const auto r2 = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(r1.converged);
  EXPECT_LT(spectrum_distance(r1.eigenvalues, r2.eigenvalues), 1e-9);
}

TEST(OnesidedJacobi, IncompletePatternRejected) {
  const Matrix a = Matrix::identity(4);
  EXPECT_THROW(onesided_jacobi(a, [](int) { return SweepPattern{{0, 1}}; }),
               std::invalid_argument);
}

TEST(OnesidedJacobi, MaxSweepsCapRespected) {
  Xoshiro256 rng(43);
  const Matrix a = random_uniform_symmetric(16, rng);
  JacobiOptions opts;
  opts.max_sweeps = 1;
  const auto r = onesided_jacobi_cyclic(a, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.sweeps, 1);
}

TEST(OnesidedJacobi, PlusMinusTieLimitation) {
  // Known property of the one-sided method: it converges to the SVD, so a
  // spectrum containing both +lambda and -lambda leaves a 2-dimensional
  // singular subspace in which eigenvectors are not separated. The method
  // *does* stop (columns orthogonal), but Rayleigh quotients land between
  // the tied eigenvalues. The paper's uniform[-1,1] workload almost surely
  // has no magnitude ties, so the experiments are unaffected.
  Xoshiro256 rng(19);
  const std::vector<double> spectrum = {-2.0, 1.0, 2.0, 5.0};
  const Matrix a = symmetric_with_spectrum(spectrum, rng);
  const auto r = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(r.converged);
  // The untied eigenvalues are still exact...
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[3], 5.0, 1e-10);
  // ...and the tied pair sums to its trace contribution even when the
  // individual Rayleigh quotients are mixed.
  EXPECT_NEAR(r.eigenvalues[0] + r.eigenvalues[2], 0.0, 1e-10);
}

TEST(OnesidedJacobi, SweepCountGrowsWithSize) {
  Xoshiro256 rng(47);
  const auto small = onesided_jacobi_cyclic(random_uniform_symmetric(8, rng));
  const auto large = onesided_jacobi_cyclic(random_uniform_symmetric(48, rng));
  EXPECT_LE(small.sweeps, large.sweeps + 1);
  EXPECT_LE(large.sweeps, 15);
}

}  // namespace
}  // namespace jmh::la
