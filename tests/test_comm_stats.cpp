// Traffic accounting of the mpi_lite runtime.
#include <gtest/gtest.h>

#include "net/collectives.hpp"
#include "net/universe.hpp"
#include "solve/parallel_jacobi.hpp"

#include "la/sym_gen.hpp"

namespace jmh::net {
namespace {

TEST(CommStats, CountsPointToPoint) {
  Universe u(2);
  u.run([](Comm& c) {
    if (c.rank() == 0) c.send(1, 0, Payload{1.0, 2.0, 3.0});
    else c.recv(0, 0);
  });
  const CommStats s = u.stats();
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.elements, 3u);
}

TEST(CommStats, CountsBarriers) {
  Universe u(4);
  u.run([](Comm& c) {
    for (int i = 0; i < 5; ++i) c.barrier();
  });
  EXPECT_EQ(u.stats().barriers, 5u);
  EXPECT_EQ(u.stats().messages, 0u);
}

TEST(CommStats, SendrecvCountsBothDirections) {
  Universe u(2);
  u.run([](Comm& c) {
    const double x = 1.0;
    c.sendrecv(1 - c.rank(), 0, std::span<const double>(&x, 1));
  });
  EXPECT_EQ(u.stats().messages, 2u);
  EXPECT_EQ(u.stats().elements, 2u);
}

TEST(CommStats, ResetBetweenRuns) {
  Universe u(2);
  u.run([](Comm& c) {
    if (c.rank() == 0) c.send_scalar(1, 0, 1.0);
    else c.recv(0, 0);
  });
  EXPECT_EQ(u.stats().messages, 1u);
  u.run([](Comm&) {});
  EXPECT_EQ(u.stats().messages, 0u);
}

TEST(CommStats, ButterflyAllreduceVolume) {
  // Recursive doubling over P=8: log2(8)=3 rounds, each rank sends one
  // scalar per round -> 24 messages of 1 element.
  Universe u(8);
  u.run([](Comm& c) { allreduce_sum(c, 1.0); });
  EXPECT_EQ(u.stats().messages, 24u);
  EXPECT_EQ(u.stats().elements, 24u);
}

TEST(CommStats, DistributedSolveTrafficAccounted) {
  // The dominant traffic of a distributed sweep is one block (of B and V)
  // per node per transition: a d=2 sweep has 7 transitions and 4 nodes, a
  // block payload is 3 + 2 + 2*2*16 = 69 doubles for m=16.
  Xoshiro256 rng(5);
  const la::Matrix a = la::random_uniform_symmetric(16, rng);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 2);
  const auto r = solve::solve_mpi(a, ordering);
  ASSERT_TRUE(r.converged);
  // sweeps+1 sweep bodies were executed (the last detects convergence).
  const std::uint64_t sweep_bodies = static_cast<std::uint64_t>(r.sweeps) + 1;
  const std::uint64_t block_msgs = sweep_bodies * 7 * 4;
  // Each sweep also runs 2 allreduces (3 rounds x 4 ranks x 2 values = 24
  // msgs) and the run ends with one frobenius allreduce + allgather.
  EXPECT_GE(r.comm.messages, block_msgs);
  EXPECT_LE(r.comm.messages, block_msgs + sweep_bodies * 64 + 64);
  // Block payload volume dominates: at least 69 doubles per block message.
  EXPECT_GE(r.comm.elements, block_msgs * 69);
}

TEST(CommStats, InlineSolverHasNoTraffic) {
  Xoshiro256 rng(5);
  const la::Matrix a = la::random_uniform_symmetric(16, rng);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 2);
  const auto r = solve::solve_inline(a, ordering);
  EXPECT_EQ(r.comm.messages, 0u);
  EXPECT_EQ(r.comm.elements, 0u);
}

}  // namespace
}  // namespace jmh::net
