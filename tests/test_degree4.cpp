#include "ord/degree4.hpp"

#include <gtest/gtest.h>

#include "cube/path.hpp"

namespace jmh::ord {
namespace {

TEST(Degree4, BuildingBlockE3) {
  const auto e3 = degree4_building_block(3);
  const std::vector<Link> expected = {0, 1, 2, 3, 0, 1, 2};
  EXPECT_EQ(e3, expected);
}

TEST(Degree4, BuildingBlockRecursion) {
  // E_i = <E_{i-1}, i, E_{i-1}>.
  for (int i = 4; i <= 10; ++i) {
    const auto smaller = degree4_building_block(i - 1);
    const auto larger = degree4_building_block(i);
    ASSERT_EQ(larger.size(), 2 * smaller.size() + 1);
    EXPECT_EQ(larger[smaller.size()], i);
    for (std::size_t p = 0; p < smaller.size(); ++p) {
      EXPECT_EQ(larger[p], smaller[p]);
      EXPECT_EQ(larger[smaller.size() + 1 + p], smaller[p]);
    }
  }
}

TEST(Degree4, PaperExampleE5) {
  // Section 3.3: D5D4 = <0123012401230121012301240123012>.
  EXPECT_EQ(degree4_sequence(5).to_string(), "0123012401230121012301240123012");
}

class Degree4ValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(Degree4ValidityTest, IsESequence) {
  // Paper Theorem 1.
  EXPECT_TRUE(degree4_sequence(GetParam()).is_valid());
}

TEST_P(Degree4ValidityTest, HasDegreeFour) {
  // Paper Definition 2/3: the majority of length-4 windows are distinct.
  EXPECT_EQ(degree4_sequence(GetParam()).degree(), 4);
}

TEST_P(Degree4ValidityTest, EndsNeighborInDimensionOne) {
  // Lemma 1: start and end of the D_e^D4 walk differ in dimension 1.
  const int e = GetParam();
  const cube::Hypercube cube(e);
  const cube::Node end = cube::walk_end(cube, 0, degree4_sequence(e).links());
  EXPECT_EQ(cube.link_between(0, end), 1);
}

TEST_P(Degree4ValidityTest, ExactlyFourRepeatingWindows) {
  // Section 3.3: only the four central length-4 windows straddling the
  // middle "1" contain a repeat (for any e > 3).
  const int e = GetParam();
  const auto seq = degree4_sequence(e);
  const auto stats = seq.window_stats(4);
  std::size_t repeats = 0;
  for (const auto& w : stats)
    if (w.max_mult > 1) ++repeats;
  EXPECT_EQ(repeats, 4u);
}

INSTANTIATE_TEST_SUITE_P(Phases, Degree4ValidityTest, ::testing::Range(4, 16));

TEST(Degree4, CentralRepeatingWindowsAreThePaperOnes) {
  // For e=5 the repeating windows are <0121>, <1210>, <2101>, <1012>.
  const auto seq = degree4_sequence(5);
  const auto stats = seq.window_stats(4);
  std::vector<std::string> repeats;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (stats[i].max_mult > 1) {
      std::string w;
      for (std::size_t j = i; j < i + 4; ++j) w += static_cast<char>('0' + seq[j]);
      repeats.push_back(w);
    }
  }
  const std::vector<std::string> expected = {"0121", "1210", "2101", "1012"};
  EXPECT_EQ(repeats, expected);
}

TEST(Degree4, RejectsSmallE) {
  EXPECT_THROW(degree4_sequence(3), std::invalid_argument);
  EXPECT_THROW(degree4_building_block(2), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::ord
