#include "ord/schedule.hpp"

#include <gtest/gtest.h>

namespace jmh::ord {
namespace {

TEST(BlockTracker, InitialPlacement) {
  const BlockTracker t(3);
  EXPECT_EQ(t.num_nodes(), 8u);
  EXPECT_EQ(t.num_blocks(), 16u);
  for (cube::Node n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.fixed_block(n), 2 * n);
    EXPECT_EQ(t.mobile_block(n), 2 * n + 1);
  }
}

TEST(BlockTracker, ExchangeSwapsMobiles) {
  BlockTracker t(2);
  t.apply({0, false});
  // Pair (0,1): mobiles 1 and 3 swap. Pair (2,3): mobiles 5 and 7 swap.
  EXPECT_EQ(t.fixed_block(0), 0u);
  EXPECT_EQ(t.mobile_block(0), 3u);
  EXPECT_EQ(t.mobile_block(1), 1u);
  EXPECT_EQ(t.mobile_block(2), 7u);
  EXPECT_EQ(t.mobile_block(3), 5u);
}

TEST(BlockTracker, ExchangeIsInvolutive) {
  BlockTracker t(3);
  t.apply({1, false});
  t.apply({1, false});
  for (cube::Node n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.fixed_block(n), 2 * n);
    EXPECT_EQ(t.mobile_block(n), 2 * n + 1);
  }
}

TEST(BlockTracker, DivisionGathersRoles) {
  BlockTracker t(1);
  t.apply({0, true});
  // Node 0 keeps fixed 0, receives node 1's fixed 2 as mobile; node 1 keeps
  // mobile 3 as new fixed and receives node 0's mobile 1.
  EXPECT_EQ(t.fixed_block(0), 0u);
  EXPECT_EQ(t.mobile_block(0), 2u);
  EXPECT_EQ(t.fixed_block(1), 3u);
  EXPECT_EQ(t.mobile_block(1), 1u);
}

TEST(BlockTracker, LocateFindsEveryBlock) {
  BlockTracker t(3);
  t.apply({0, false});
  t.apply({2, true});
  t.apply({1, false});
  for (BlockId b = 0; b < t.num_blocks(); ++b) {
    const cube::Node n = t.locate(b);
    EXPECT_TRUE(t.fixed_block(n) == b || t.mobile_block(n) == b);
  }
}

TEST(RunSweep, StepCountAndMeetingShape) {
  const JacobiOrdering ord(OrderingKind::BR, 2);
  BlockTracker t(2);
  const auto steps = run_sweep(ord, 0, t);
  ASSERT_EQ(steps.size(), 7u);
  for (const auto& step : steps) {
    ASSERT_EQ(step.size(), 4u);
    for (const auto& m : step) EXPECT_NE(m.fixed, m.mobile);
  }
}

TEST(VerifySweep, D1ByHand) {
  // The worked d=1 example in the ordering.hpp header comment.
  const JacobiOrdering ord(OrderingKind::BR, 1);
  BlockTracker t(1);
  const auto steps = run_sweep(ord, 0, t);
  ASSERT_EQ(steps.size(), 3u);
  // Step 0: (0,1) and (2,3); step 1: (0,3) and (2,1); step 2: (0,2), (1,3).
  EXPECT_EQ(steps[0][0].fixed, 0u);
  EXPECT_EQ(steps[0][0].mobile, 1u);
  EXPECT_EQ(steps[1][0].mobile, 3u);
  EXPECT_EQ(steps[2][0].mobile, 2u);
  // Node 1 keeps its mobile (block 1) as the new fixed and receives block 3.
  EXPECT_EQ(steps[2][1].fixed, 1u);
  EXPECT_EQ(steps[2][1].mobile, 3u);
}

struct SweepCase {
  OrderingKind kind;
  int d;
};

class AllPairsOnceTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AllPairsOnceTest, EveryBlockPairMeetsExactlyOncePerSweep) {
  const auto [kind, d] = GetParam();
  const JacobiOrdering ord(kind, d);
  const auto v = verify_sweeps(ord, 3);  // three chained sweeps incl. sigma_s
  EXPECT_TRUE(v.ok) << v.error;
}

std::vector<SweepCase> all_pairs_cases() {
  std::vector<SweepCase> cases;
  for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4,
                    OrderingKind::MinAlpha}) {
    for (int d = 1; d <= 7; ++d) cases.push_back({kind, d});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweeps, AllPairsOnceTest, ::testing::ValuesIn(all_pairs_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& pinfo) {
                           std::string name = to_string(pinfo.param.kind) + "_d" +
                                              std::to_string(pinfo.param.d);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(VerifySweep, DetectsBrokenSchedule) {
  // Sanity-check the checker itself: drop the division semantics and the
  // all-pairs property must fail (fixed blocks never meet each other).
  const JacobiOrdering ord(OrderingKind::BR, 2);
  BlockTracker t(2);
  // Replay the sweep with divisions downgraded to plain exchanges.
  const auto transitions = ord.sweep_transitions(0);
  const std::uint64_t nblocks = t.num_blocks();
  std::vector<int> met(nblocks * nblocks, 0);
  bool duplicate = false;
  for (const auto& tr : transitions) {
    for (cube::Node n = 0; n < t.num_nodes(); ++n) {
      const BlockId lo = std::min(t.fixed_block(n), t.mobile_block(n));
      const BlockId hi = std::max(t.fixed_block(n), t.mobile_block(n));
      if (++met[lo * nblocks + hi] > 1) duplicate = true;
    }
    t.apply({tr.link, false});  // division flag stripped
  }
  EXPECT_TRUE(duplicate);
}

TEST(SweepVerification, NamesMatter) {
  // to_string on kinds is used for test naming; keep it slug-safe.
  for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4,
                    OrderingKind::MinAlpha}) {
    const std::string s = to_string(kind);
    EXPECT_FALSE(s.empty());
  }
}

}  // namespace
}  // namespace jmh::ord
