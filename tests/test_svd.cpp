// The sequential one-sided Jacobi SVD reference (la/svd.hpp): recovery of
// known singular values, residual and orthogonality on random rectangular
// inputs, consistency with the eigensolver applied to A^T A, and the
// deterministic extraction contract of svd_from_bv.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/eigen_check.hpp"
#include "la/svd.hpp"
#include "la/sym_gen.hpp"

namespace jmh::la {
namespace {

Matrix rect_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return random_uniform(rows, cols, rng);
}

TEST(OnesidedSvd, RecoversDiagonalSingularValues) {
  // A tall matrix whose columns are scaled unit vectors: the singular
  // values are exactly the scales, sorted descending.
  Matrix a(6, 4);
  a(0, 0) = 3.0;
  a(1, 1) = -7.0;  // sigma = |scale|
  a(2, 2) = 0.5;
  a(3, 3) = 5.0;
  const SvdResult r = onesided_jacobi_svd_cyclic(a);
  ASSERT_TRUE(r.converged);
  const std::vector<double> expected = {7.0, 5.0, 3.0, 0.5};
  ASSERT_EQ(r.singular_values.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k)
    EXPECT_NEAR(r.singular_values[k], expected[k], 1e-12);
  EXPECT_LT(svd_residual(a, r.singular_values, r.u, r.v), 1e-12);
}

TEST(OnesidedSvd, TallRandomResidualAndOrthogonality) {
  const Matrix a = rect_matrix(24, 16, 7);
  const SvdResult r = onesided_jacobi_svd_cyclic(a);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.singular_values.size(), 16u);
  EXPECT_EQ(r.u.rows(), 24u);
  EXPECT_EQ(r.u.cols(), 16u);
  EXPECT_EQ(r.v.rows(), 16u);
  EXPECT_EQ(r.v.cols(), 16u);
  // Descending and non-negative.
  for (std::size_t k = 0; k + 1 < 16; ++k)
    EXPECT_GE(r.singular_values[k], r.singular_values[k + 1]);
  EXPECT_GE(r.singular_values.back(), 0.0);
  EXPECT_LT(svd_residual(a, r.singular_values, r.u, r.v), 1e-12);
  EXPECT_LT(orthogonality_defect(r.u), 1e-10);
  EXPECT_LT(orthogonality_defect(r.v), 1e-10);
}

TEST(OnesidedSvd, MatchesEigenvaluesOfGramMatrix) {
  // sigma_k(A)^2 are the eigenvalues of A^T A: cross-check against the
  // symmetric eigensolver reference on the explicitly formed Gram matrix.
  const Matrix a = rect_matrix(20, 12, 11);
  Matrix gram(12, 12);
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j) gram(i, j) = dot(a.col(i), a.col(j));

  const SvdResult svd = onesided_jacobi_svd_cyclic(a);
  const JacobiResult evd = onesided_jacobi_cyclic(gram);
  ASSERT_TRUE(svd.converged && evd.converged);
  // evd ascending, svd descending.
  for (std::size_t k = 0; k < 12; ++k) {
    const double sigma2 = svd.singular_values[k] * svd.singular_values[k];
    EXPECT_NEAR(sigma2, evd.eigenvalues[11 - k], 1e-9 * std::abs(evd.eigenvalues[11]));
  }
}

TEST(OnesidedSvd, RejectsWideInputs) {
  // 12 columns in R^8 put 4 columns in the null space, whose mutual dot
  // products never pass the relative rotation threshold -- the method
  // cannot converge, so wide inputs are rejected up front (factor the
  // transpose instead).
  EXPECT_THROW(onesided_jacobi_svd_cyclic(rect_matrix(8, 12, 3)), std::invalid_argument);
}

TEST(OnesidedSvd, SquareInputMatchesTallMachinery) {
  const Matrix a = rect_matrix(12, 12, 5);
  const SvdResult r = onesided_jacobi_svd_cyclic(a);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(svd_residual(a, r.singular_values, r.u, r.v), 1e-12);
  EXPECT_LT(orthogonality_defect(r.u), 1e-10);
  EXPECT_LT(orthogonality_defect(r.v), 1e-10);
}

TEST(OnesidedSvd, RejectsGershgorinShift) {
  JacobiOptions opts;
  opts.gershgorin_shift = true;
  EXPECT_THROW(onesided_jacobi_svd_cyclic(rect_matrix(8, 8, 1), opts), std::invalid_argument);
}

TEST(SvdFromBv, DeterministicTieBreakOnEqualSigmas) {
  // Two columns with identical norms: the extraction must order them by
  // original column index, making the result a pure function of (B, V).
  Matrix b(3, 2);
  b(0, 0) = 2.0;
  b(1, 1) = 2.0;
  Matrix v = Matrix::identity(2);
  const SvdResult r = svd_from_bv(b, v);
  EXPECT_EQ(r.singular_values, (std::vector<double>{2.0, 2.0}));
  EXPECT_EQ(r.v(0, 0), 1.0);  // column 0 first
  EXPECT_EQ(r.v(1, 1), 1.0);
  EXPECT_EQ(r.u(0, 0), 1.0);
  EXPECT_EQ(r.u(1, 1), 1.0);
}

}  // namespace
}  // namespace jmh::la
