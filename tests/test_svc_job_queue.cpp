// svc::JobQueue: FIFO order, bounded backpressure (blocking push vs
// try_push shedding), high-water tracking, same-spec group pops, close /
// drain semantics, and an MPMC accounting smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "svc/job_queue.hpp"

namespace jmh::svc {
namespace {

Job make_job(const std::string& spec, double tag = 0.0) {
  Job job;
  job.spec = spec;
  job.matrix = la::Matrix(1, 1);
  job.matrix(0, 0) = tag;
  return job;
}

double tag_of(const Job& job) { return job.matrix(0, 0); }

TEST(JobQueue, FifoOrderAndSize) {
  JobQueue q(4);
  for (int i = 0; i < 3; ++i) {
    Job job = make_job("s", i);
    ASSERT_TRUE(q.push(job));
  }
  EXPECT_EQ(q.size(), 3u);
  Job out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(tag_of(out), i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, TryPushShedsWhenFull) {
  JobQueue q(2);
  Job a = make_job("s", 1), b = make_job("s", 2), c = make_job("s", 3);
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));
  EXPECT_EQ(tag_of(c), 3.0) << "a shed job must be left untouched";
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.high_water(), 2u);
}

TEST(JobQueue, PushBlocksUntilASlotFrees) {
  JobQueue q(1);
  Job first = make_job("s", 1);
  ASSERT_TRUE(q.push(first));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    Job second = make_job("s", 2);
    EXPECT_TRUE(q.push(second));  // blocks: queue is full
    pushed = true;
  });
  // The producer cannot complete until a pop frees the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  Job out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(tag_of(out), 1.0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(tag_of(out), 2.0);
}

TEST(JobQueue, PopGroupTakesOnlyTheFrontSameSpecRun) {
  JobQueue q(8);
  for (const auto& [spec, tag] :
       std::vector<std::pair<std::string, double>>{
           {"a", 0}, {"a", 1}, {"b", 2}, {"a", 3}, {"a", 4}}) {
    Job job = make_job(spec, tag);
    ASSERT_TRUE(q.push(job));
  }

  std::vector<Job> group;
  ASSERT_EQ(q.pop_group(group, 8), 2u) << "front run is [a, a]";
  EXPECT_EQ(group[0].spec, "a");
  EXPECT_EQ(tag_of(group[0]), 0.0);
  EXPECT_EQ(tag_of(group[1]), 1.0);

  ASSERT_EQ(q.pop_group(group, 8), 1u) << "'b' breaks the run";
  EXPECT_EQ(group[0].spec, "b");

  ASSERT_EQ(q.pop_group(group, 1), 1u) << "max_jobs = 1 degenerates to pop";
  EXPECT_EQ(tag_of(group[0]), 3.0);
  ASSERT_EQ(q.pop_group(group, 8), 1u);
  EXPECT_EQ(tag_of(group[0]), 4.0);
}

TEST(JobQueue, CloseDrainsThenStops) {
  JobQueue q(4);
  Job a = make_job("s", 1), b = make_job("s", 2);
  ASSERT_TRUE(q.push(a));
  ASSERT_TRUE(q.push(b));
  q.close();

  Job rejected = make_job("s", 3);
  EXPECT_FALSE(q.push(rejected));
  EXPECT_FALSE(q.try_push(rejected));
  EXPECT_TRUE(q.closed());

  // Admitted jobs still drain in order...
  Job out;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(tag_of(out), 1.0);
  std::vector<Job> group;
  EXPECT_EQ(q.pop_group(group, 4), 1u);
  EXPECT_EQ(tag_of(group[0]), 2.0);
  // ...then pops report shutdown instead of blocking.
  EXPECT_FALSE(q.pop(out));
  EXPECT_EQ(q.pop_group(group, 4), 0u);
}

TEST(JobQueue, CloseWakesABlockedProducer) {
  JobQueue q(1);
  Job fill = make_job("s", 1);
  ASSERT_TRUE(q.push(fill));

  std::thread producer([&] {
    Job job = make_job("s", 2);
    EXPECT_FALSE(q.push(job));  // blocked on full, woken by close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();

  // The admitted job still drains; the rejected one never entered.
  Job out;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(tag_of(out), 1.0);
  EXPECT_FALSE(q.pop(out));
}

TEST(JobQueue, CloseWakesABlockedConsumer) {
  JobQueue q(1);
  std::thread consumer([&] {
    Job out;
    EXPECT_FALSE(q.pop(out));  // blocked on empty, woken by close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(JobQueue, MpmcAccountsForEveryJob) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  JobQueue q(8);  // smaller than the job count: backpressure is exercised

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Job job = make_job("spec" + std::to_string(p), p * kPerProducer + i);
        ASSERT_TRUE(q.push(job));
      }
    });

  std::mutex seen_mu;
  std::multiset<double> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c)
    consumers.emplace_back([&] {
      std::vector<Job> group;
      while (q.pop_group(group, 4) > 0) {
        std::lock_guard lock(seen_mu);
        for (const Job& job : group) seen.insert(tag_of(job));
      }
    });

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v)
    EXPECT_EQ(seen.count(static_cast<double>(v)), 1u);
  EXPECT_GE(q.high_water(), 1u);
  EXPECT_LE(q.high_water(), q.capacity());
}

TEST(JobQueue, RejectsZeroCapacity) {
  EXPECT_THROW(JobQueue(0), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::svc
