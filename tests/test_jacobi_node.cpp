#include "solve/jacobi_node.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "la/sym_gen.hpp"

namespace jmh::solve {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed = 3) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

TEST(ColumnBlock, ExtractHoldsMatrixColumnsAndIdentity) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 2);
  const ColumnBlock blk = extract_block(a, layout, 3);
  EXPECT_EQ(blk.id, 3u);
  EXPECT_EQ(blk.rows, 16u);
  ASSERT_EQ(blk.num_cols(), 2u);
  EXPECT_EQ(blk.cols[0], 6u);
  EXPECT_EQ(blk.cols[1], 7u);
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_EQ(blk.b[r], a(r, 6));
    EXPECT_EQ(blk.b[16 + r], a(r, 7));
    EXPECT_EQ(blk.v[r], r == 6 ? 1.0 : 0.0);
    EXPECT_EQ(blk.v[16 + r], r == 7 ? 1.0 : 0.0);
  }
}

TEST(ColumnBlock, SerializeRoundTrip) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 2);
  const ColumnBlock blk = extract_block(a, layout, 5);
  const ColumnBlock back = ColumnBlock::deserialize(blk.serialize());
  EXPECT_EQ(back.id, blk.id);
  EXPECT_EQ(back.rows, blk.rows);
  EXPECT_EQ(back.cols, blk.cols);
  EXPECT_EQ(back.b, blk.b);
  EXPECT_EQ(back.v, blk.v);
}

TEST(ColumnBlock, DeserializeRejectsGarbage) {
  EXPECT_THROW(ColumnBlock::deserialize({1.0}), std::invalid_argument);
  EXPECT_THROW(ColumnBlock::deserialize({1.0, 2.0, 3.0, 4.0}), std::invalid_argument);
}

// The wire-integrity contract: a single flipped bit ANYWHERE in a
// serialized block -- header, column ids, data, or the checksum word
// itself -- fails the checksum and throws TransportCorrupt (never a silent
// wrong block, never plain invalid_argument, which is reserved for
// structurally impossible payloads like the truncations above).
TEST(ColumnBlock, AnySingleBitFlipFailsTheWireChecksum) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 2);
  const net::Payload clean = extract_block(a, layout, 5).serialize();
  net::Payload damaged = clean;
  for (std::size_t word = 0; word < clean.size(); ++word) {
    // One flip per word, walking the bit position so sign, exponent and
    // mantissa bits all get exercised across the payload.
    const int bit = static_cast<int>((word * 7 + 1) % 64);
    damaged[word] = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(clean[word]) ^ (1ull << bit));
    EXPECT_THROW(ColumnBlock::deserialize(damaged), TransportCorrupt)
        << "word " << word << " bit " << bit;
    damaged[word] = clean[word];  // restore before the next flip
  }
  // The restored payload still round-trips: the flips above were the only
  // reason anything was rejected.
  EXPECT_NO_THROW(ColumnBlock::deserialize(damaged));
}

// Corruption must not half-apply: assign_from validates before mutating,
// so a live block fed a damaged payload keeps its previous contents.
TEST(ColumnBlock, AssignFromLeavesBlockIntactOnCorruption) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 2);
  ColumnBlock blk = extract_block(a, layout, 1);
  const ColumnBlock before = blk;
  net::Payload damaged = extract_block(a, layout, 6).serialize();
  damaged[damaged.size() / 2] = std::bit_cast<double>(
      std::bit_cast<std::uint64_t>(damaged[damaged.size() / 2]) ^ 1ull);
  EXPECT_THROW(blk.assign_from(damaged), TransportCorrupt);
  EXPECT_EQ(blk.id, before.id);
  EXPECT_EQ(blk.cols, before.cols);
  EXPECT_EQ(blk.b, before.b);
  EXPECT_EQ(blk.v, before.v);
}

TEST(JacobiNode, InitialBlocks) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 2);
  const JacobiNode node(a, layout, 2);
  EXPECT_EQ(node.fixed().id, 4u);
  EXPECT_EQ(node.mobile().id, 5u);
}

TEST(JacobiNode, IntraBlockPairingsRotate) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 1);  // 4 blocks of 4 columns
  JacobiNode node(a, layout, 0);
  const std::size_t rotations = node.intra_block_pairings(1e-12).rotations;
  // 2 blocks x C(4,2) pairs, essentially all rotate on a random matrix.
  EXPECT_GT(rotations, 8u);
  EXPECT_LE(rotations, 12u);
}

TEST(JacobiNode, InterBlockPairingsCountCrossPairs) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 1);
  JacobiNode node(a, layout, 0);
  const std::size_t rotations = node.inter_block_pairings(1e-12).rotations;
  EXPECT_LE(rotations, 16u);  // 4x4 cross pairs
  EXPECT_GT(rotations, 10u);
}

TEST(JacobiNode, PairingOrthogonalizesWithinNode) {
  const la::Matrix a = test_matrix(8);
  const BlockLayout layout(8, 1);
  JacobiNode node(a, layout, 0);
  // One local sweep pass: intra + inter.
  for (int pass = 0; pass < 25; ++pass) {
    if (node.intra_block_pairings(1e-13).rotations +
            node.inter_block_pairings(1e-13).rotations ==
        0)
      break;
  }
  // All resident columns pairwise orthogonal now.
  auto& f = node.fixed();
  auto& m = node.mobile();
  for (std::size_t i = 0; i < f.num_cols(); ++i)
    for (std::size_t j = 0; j < m.num_cols(); ++j)
      EXPECT_NEAR(la::dot(f.col_b(i), m.col_b(j)), 0.0, 1e-8);
}

TEST(JacobiNode, PromoteMobileToFixedSwaps) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 2);
  JacobiNode node(a, layout, 1);
  node.promote_mobile_to_fixed();
  EXPECT_EQ(node.fixed().id, 3u);
  EXPECT_EQ(node.mobile().id, 2u);
}

TEST(JacobiNode, InstallMobileReplaces) {
  const la::Matrix a = test_matrix(16);
  const BlockLayout layout(16, 2);
  JacobiNode node(a, layout, 0);
  ColumnBlock other = extract_block(a, layout, 7);
  node.install_mobile(std::move(other));
  EXPECT_EQ(node.mobile().id, 7u);
}

}  // namespace
}  // namespace jmh::solve
