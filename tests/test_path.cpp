#include "cube/path.hpp"

#include <gtest/gtest.h>

namespace jmh::cube {
namespace {

TEST(Walk, FollowsLinks) {
  const Hypercube c(3);
  const auto nodes = walk(c, 0, {0, 1, 0, 2});
  const std::vector<Node> expected = {0, 1, 3, 2, 6};
  EXPECT_EQ(nodes, expected);
}

TEST(Walk, EmptyLinksStaysPut) {
  const Hypercube c(3);
  const auto nodes = walk(c, 5, {});
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 5u);
}

TEST(Walk, EndMatchesFullWalk) {
  const Hypercube c(4);
  const std::vector<Link> links = {0, 1, 2, 3, 0, 1};
  EXPECT_EQ(walk_end(c, 9, links), walk(c, 9, links).back());
}

TEST(Hamiltonian, GraySequenceIsHamiltonian) {
  // The BR sequence for e equals the Gray-code link order; spot-check the
  // raw checker with the e=3 sequence from the paper.
  EXPECT_TRUE(is_e_sequence({0, 1, 0, 2, 0, 1, 0}, 3));
}

TEST(Hamiltonian, RevisitedNodeRejected) {
  EXPECT_TRUE(is_hamiltonian_path(Hypercube(2), 0, {0, 1, 0}, 2));
  EXPECT_FALSE(is_e_sequence({0, 0, 0}, 2));              // bounces between two nodes
  EXPECT_FALSE(is_e_sequence({0, 1, 0, 1, 0, 1, 0}, 3));  // stays in a 2-subcube
}

TEST(Hamiltonian, WrongLengthRejected) {
  EXPECT_FALSE(is_e_sequence({0, 1}, 2));
  EXPECT_FALSE(is_e_sequence({0, 1, 0, 1}, 2));
}

TEST(Hamiltonian, LinkOutOfRangeRejected) {
  EXPECT_FALSE(is_e_sequence({0, 2, 0}, 2));
}

TEST(Hamiltonian, SubcubePathWithinLargerCube) {
  // A Hamiltonian path of the 2-subcube checked from any start node of a
  // 4-cube (the mobile block's tour during exchange phase 2).
  const Hypercube c(4);
  for (Node start = 0; start < c.num_nodes(); ++start)
    EXPECT_TRUE(is_hamiltonian_path(c, start, {0, 1, 0}, 2)) << start;
}

TEST(Hamiltonian, PaperMinAlphaExampleE3) {
  // Section 3.2 example: <0102101> is a Hamiltonian path of a 3-cube.
  EXPECT_TRUE(is_e_sequence({0, 1, 0, 2, 1, 0, 1}, 3));
}

TEST(Hamiltonian, PermutedSubsequenceExample) {
  // Property 1 example: permuting links 0 and 1 in the tail <010> of
  // <0102010> gives <0102101>, still Hamiltonian.
  EXPECT_TRUE(is_e_sequence({0, 1, 0, 2, 0, 1, 0}, 3));
  EXPECT_TRUE(is_e_sequence({0, 1, 0, 2, 1, 0, 1}, 3));
}

}  // namespace
}  // namespace jmh::cube
