// The api facade: SolverSpec round-tripping, plan compilation (including
// the optimizer-backed Auto pipelining policy), plan reuse across matrices
// and backends against the legacy entry points, batching, and thread
// shareability of one immutable plan.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>

#include "api/solver.hpp"
#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"
#include "pipe/cost_model.hpp"
#include "pipe/optimizer.hpp"
#include "solve/parallel_jacobi.hpp"
#include "solve/pipelined_executor.hpp"
#include "solve/sim_transport.hpp"

namespace jmh::api {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

TEST(SolverSpec, DefaultRoundTrips) {
  const SolverSpec spec;
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
}

TEST(SolverSpec, EveryFieldRoundTrips) {
  SolverSpec spec;
  spec.m = 48;
  spec.d = 3;
  spec.ordering = ord::OrderingKind::MinAlpha;
  spec.backend = Backend::Sim;
  spec.pipelining = PipeliningPolicy::Fixed;
  spec.q = 7;
  spec.machine.ts = 123.5;
  spec.machine.tw = 0.25;
  spec.machine.ports = 2;
  spec.overlap_startup = true;
  spec.threshold = 3.5e-13;
  spec.max_sweeps = 17;
  spec.stop_rule = solve::StopRule::OffDiagonal;
  spec.off_tol = 1e-7;
  spec.gershgorin_shift = true;
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);

  // q is serialized inside the pipeline key, so it only round-trips for the
  // Fixed policy; Off/Auto specs carry the default q.
  spec.q = SolverSpec{}.q;
  spec.pipelining = PipeliningPolicy::Auto;
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
  spec.pipelining = PipeliningPolicy::Off;
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
}

TEST(SolverSpec, PartialStringsKeepDefaults) {
  const SolverSpec defaults;
  const SolverSpec spec = SolverSpec::parse("backend=sim, ordering=min_alpha ,d=4");
  EXPECT_EQ(spec.backend, Backend::Sim);
  EXPECT_EQ(spec.ordering, ord::OrderingKind::MinAlpha);
  EXPECT_EQ(spec.d, 4);
  EXPECT_EQ(spec.m, defaults.m);
  EXPECT_EQ(spec.pipelining, defaults.pipelining);
  EXPECT_EQ(spec.machine, defaults.machine);

  EXPECT_EQ(SolverSpec::parse(""), defaults);
  EXPECT_EQ(SolverSpec::parse("  "), defaults);
}

TEST(SolverSpec, OrderingAliasesAndCase) {
  EXPECT_EQ(SolverSpec::parse("ordering=minalpha").ordering, ord::OrderingKind::MinAlpha);
  EXPECT_EQ(SolverSpec::parse("ordering=MIN-ALPHA").ordering, ord::OrderingKind::MinAlpha);
  EXPECT_EQ(SolverSpec::parse("ordering=degree4").ordering, ord::OrderingKind::Degree4);
  EXPECT_EQ(SolverSpec::parse("ordering=permuted-br").ordering, ord::OrderingKind::PermutedBR);
  EXPECT_EQ(SolverSpec::parse("pipeline=12").q, 12u);
  EXPECT_EQ(SolverSpec::parse("pipeline=12").pipelining, PipeliningPolicy::Fixed);
}

TEST(SolverSpec, RejectsDuplicateKeys) {
  // A spec is a scenario name: last-write-wins on duplicates would let two
  // different-looking strings mean the same thing, so they are rejected,
  // and the error names the offending key.
  EXPECT_THROW(SolverSpec::parse("m=16,m=32"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("backend=inline,d=2,backend=sim"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("pipeline=off,pipeline=auto"), std::invalid_argument);
  try {
    SolverSpec::parse("m=16,d=2,m=32");
    FAIL() << "duplicate key must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key 'm'"), std::string::npos)
        << "actual message: " << e.what();
  }
  // The canonical form never repeats a key, so round-tripping still works.
  SolverSpec spec;
  spec.backend = Backend::Sim;
  spec.pipelining = PipeliningPolicy::Auto;
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
}

TEST(SolverSpec, RejectsMalformedInput) {
  EXPECT_THROW(SolverSpec::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("backend"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("backend="), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("=inline"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("backend=quantum"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("ordering=custom"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("d=three"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("d=0"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("m=-4"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("pipeline=0"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("pipeline=fast"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("ts=cheap"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("ts=-1000"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("tw=-100"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("threshold=0"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("threshold=-1e-12"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("off_tol=-1e-8"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("ports=0"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("stop=never"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("shift=maybe"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("max_sweeps=0"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("topk=-1"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("topk=33"), std::invalid_argument);  // > default m=32
  EXPECT_THROW(SolverSpec::parse("topk=2,stop=offdiag"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("topk=2,shift=1"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("threads=+2"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("threads=many"), std::invalid_argument);
}

TEST(SolverSpec, TopkAndThreadsRoundTrip) {
  SolverSpec spec;
  spec.m = 64;
  spec.d = 2;
  spec.topk = 5;
  spec.threads = 3;
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
  EXPECT_EQ(SolverSpec::parse("m=64,topk=5").topk, 5);
  EXPECT_EQ(SolverSpec::parse("threads=4").threads, 4u);
  EXPECT_EQ(SolverSpec::parse("").topk, 0);
  EXPECT_EQ(SolverSpec::parse("").threads, 0u);
  // topk == m is legal (and bit-identical to the full solve downstream);
  // the cross-key check runs on final values, so key order must not matter.
  EXPECT_NO_THROW(SolverSpec::parse("topk=32"));
  EXPECT_NO_THROW(SolverSpec::parse("topk=48,m=64"));
}

TEST(SolverSpec, TaskAndRowsRoundTripAndValidate) {
  SolverSpec spec;
  spec.task = Task::Svd;
  spec.m = 16;
  spec.rows = 24;
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
  EXPECT_EQ(SolverSpec::parse("task=svd").task, Task::Svd);
  EXPECT_EQ(SolverSpec::parse("task=EVD").task, Task::Evd);
  EXPECT_EQ(SolverSpec::parse("").task, Task::Evd);
  // rows == m names the same square scenario as rows=0: parse normalizes,
  // so the two spellings compare EQUAL and share one canonical string (and
  // therefore one plan-cache entry).
  EXPECT_EQ(SolverSpec::parse("rows=32").rows, 0u);  // == default m: normalized
  EXPECT_EQ(SolverSpec::parse("task=svd,m=8,rows=8"), SolverSpec::parse("task=svd,m=8"));
  EXPECT_EQ(SolverSpec::parse("task=svd,m=8,rows=8").to_string(),
            SolverSpec::parse("task=svd,m=8").to_string());
  EXPECT_EQ(SolverSpec::parse("task=svd,m=8,rows=8").input_rows(), 8u);
  EXPECT_EQ(SolverSpec::parse("task=svd,m=8").input_rows(), 8u);  // rows=0 -> m

  EXPECT_THROW(SolverSpec::parse("task=qr"), std::invalid_argument);
  // rows != m is an svd/pca-only shape...
  EXPECT_THROW(SolverSpec::parse("m=16,rows=24"), std::invalid_argument);
  // ...but may be wide: rows < m is solved as the transpose with U/V
  // swapped back in assembly, so the spec level accepts it.
  EXPECT_NO_THROW(SolverSpec::parse("task=svd,m=16,rows=8"));
  SolverSpec wide;
  wide.task = Task::Svd;
  wide.m = 16;
  wide.rows = 8;
  EXPECT_EQ(SolverSpec::parse(wide.to_string()), wide);
  // A diagonal shift has no SVD meaning.
  EXPECT_THROW(SolverSpec::parse("task=svd,shift=1"), std::invalid_argument);
  // Cross-key checks run on final values: key order must not matter.
  EXPECT_NO_THROW(SolverSpec::parse("rows=24,m=16,task=svd"));
}

TEST(SolverSpec, PcaGevdAndStopRulesParseAndValidate) {
  EXPECT_EQ(SolverSpec::parse("task=pca").task, Task::Pca);
  EXPECT_EQ(SolverSpec::parse("task=gevd,bseed=7").task, Task::Gevd);
  EXPECT_EQ(SolverSpec::parse("task=gevd,bseed=7").bseed, 7u);
  EXPECT_EQ(SolverSpec::parse("stop=offdiag_abs").stop_rule,
            solve::StopRule::OffDiagonalAbsolute);

  // Exact round trips through the canonical string, new keys included.
  SolverSpec pca;
  pca.task = Task::Pca;
  pca.m = 16;
  pca.rows = 40;
  pca.stop_rule = solve::StopRule::OffDiagonalAbsolute;
  EXPECT_EQ(SolverSpec::parse(pca.to_string()), pca);
  SolverSpec gevd;
  gevd.task = Task::Gevd;
  gevd.m = 16;
  gevd.bseed = 99;
  EXPECT_EQ(SolverSpec::parse(gevd.to_string()), gevd);

  // Named-key combos: gevd cannot run without its B-side seed, and bseed
  // has no meaning anywhere else.
  EXPECT_THROW(SolverSpec::parse("task=gevd"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("bseed=3"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("task=pca,bseed=3"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("task=svd,bseed=3"), std::invalid_argument);
  // gevd is a square eigenproblem; pca inherits the svd shape rules.
  EXPECT_THROW(SolverSpec::parse("task=gevd,bseed=3,rows=24,m=16"), std::invalid_argument);
  EXPECT_NO_THROW(SolverSpec::parse("task=pca,m=16,rows=8"));
  // shift and topk stay evd/svd-only knobs.
  EXPECT_THROW(SolverSpec::parse("task=pca,shift=1"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("task=gevd,bseed=3,shift=1"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("task=pca,topk=2"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("task=gevd,bseed=3,topk=2"), std::invalid_argument);
  // A wide solve truncates against the CORE column count (the short side).
  EXPECT_THROW(SolverSpec::parse("task=svd,m=16,rows=8,topk=9"), std::invalid_argument);
  EXPECT_NO_THROW(SolverSpec::parse("task=svd,m=16,rows=8,topk=8"));
}

// Regression: NaN/Inf pass naive sign checks (every comparison against NaN
// is false), so "threshold=nan" used to parse and poison the convergence
// math, "ts=inf" the cost model. Every double key must reject non-finite
// values and name the key.
TEST(SolverSpec, RejectsNonFiniteDoubles) {
  for (const char* text : {"threshold=nan", "off_tol=nan", "ts=inf", "tw=nan", "ts=infinity",
                           "tw=+inf", "threshold=-nan", "off_tol=1e999"}) {
    EXPECT_THROW(SolverSpec::parse(text), std::invalid_argument) << text;
  }
  try {
    SolverSpec::parse("m=16,threshold=nan");
    FAIL() << "threshold=nan must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'threshold'"), std::string::npos)
        << "actual message: " << e.what();
  }
}

// Regression: parse_uint results were narrowed to int for d, max_sweeps and
// ports, so d=4294967297 (2^32 + 1) silently became d=1. Out-of-range
// values must fail loudly, naming the key.
TEST(SolverSpec, RejectsIntegerOverflowInsteadOfTruncating) {
  EXPECT_THROW(SolverSpec::parse("d=4294967297"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("d=2147483648"), std::invalid_argument);  // INT_MAX + 1
  EXPECT_THROW(SolverSpec::parse("max_sweeps=4294967297"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("ports=99999999999"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("m=18446744073709551616"), std::invalid_argument);  // 2^64
  try {
    SolverSpec::parse("d=4294967297");
    FAIL() << "overflowing d must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'d'"), std::string::npos)
        << "actual message: " << e.what();
  }
  // In-range values keep working up to the type boundary.
  EXPECT_EQ(SolverSpec::parse("max_sweeps=2147483647").max_sweeps, 2147483647);
}

// Regression: strtoull accepts a leading '+', so "m=+5" and "m=5" named the
// same scenario -- two spellings of one spec break parse(to_string(s)) as
// the canonical fixed point (and the plan cache's key uniqueness).
TEST(SolverSpec, RejectsNonDigitLeadingCharactersInIntegers) {
  for (const char* text : {"m=+5", "d=+3", "rows=+24", "max_sweeps=+10", "ports=+2",
                           "pipeline=+4", "m= 5x", "m=0x10"}) {
    EXPECT_THROW(SolverSpec::parse(text), std::invalid_argument) << text;
  }
  try {
    SolverSpec::parse("m=+5");
    FAIL() << "m=+5 must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'m'"), std::string::npos)
        << "actual message: " << e.what();
  }
}

// Seeded property test: any valid spec the generator can produce must
// round-trip EXACTLY through its canonical string, and the canonical string
// must be a fixed point of parse . to_string.
TEST(SolverSpec, FuzzedValidSpecsRoundTripExactly) {
  Xoshiro256 rng(20260727);
  const ord::OrderingKind kinds[] = {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                                     ord::OrderingKind::Degree4, ord::OrderingKind::MinAlpha};
  for (int iter = 0; iter < 500; ++iter) {
    SolverSpec spec;
    const Task tasks[] = {Task::Evd, Task::Svd, Task::Pca, Task::Gevd};
    spec.task = tasks[rng.below(4)];
    spec.backend = static_cast<Backend>(rng.below(3));
    spec.ordering = kinds[rng.below(4)];
    spec.d = static_cast<int>(1 + rng.below(5));
    spec.m = (std::size_t{2} << spec.d) + rng.below(100);
    // svd/pca may be rectangular either way; rows == m is the
    // normalized-to-0 form, so tall is strictly taller and wide strictly
    // wider than square.
    if ((spec.task == Task::Svd || spec.task == Task::Pca) && rng.below(2))
      spec.rows = rng.below(2) ? spec.m + 1 + rng.below(64) : 1 + rng.below(spec.m - 1);
    if (spec.task == Task::Gevd) spec.bseed = 1 + rng.below(1u << 20);
    switch (rng.below(3)) {
      case 0: spec.pipelining = PipeliningPolicy::Off; break;
      case 1: spec.pipelining = PipeliningPolicy::Auto; break;
      default:
        spec.pipelining = PipeliningPolicy::Fixed;
        spec.q = 1 + rng.below(8);
    }
    spec.machine.ts = rng.uniform(0.0, 1e4);
    spec.machine.tw = rng.uniform(0.0, 10.0);
    spec.machine.ports = rng.below(2) ? pipe::MachineParams::kAllPort
                                      : static_cast<int>(1 + rng.below(4));
    spec.overlap_startup = rng.below(2) != 0;
    spec.threshold = std::pow(10.0, -static_cast<double>(1 + rng.below(15)));
    spec.max_sweeps = static_cast<int>(1 + rng.below(200));
    const solve::StopRule rules[] = {solve::StopRule::NoRotations,
                                     solve::StopRule::OffDiagonal,
                                     solve::StopRule::OffDiagonalAbsolute};
    spec.stop_rule = rules[rng.below(3)];
    spec.off_tol = rng.uniform(1e-12, 1e-2);
    spec.gershgorin_shift = spec.task == Task::Evd && rng.below(2) != 0;
    if ((spec.task == Task::Evd || spec.task == Task::Svd) &&
        spec.stop_rule == solve::StopRule::NoRotations && !spec.gershgorin_shift &&
        rng.below(2)) {
      // Truncation is capped by the CORE column count: the short side for a
      // wide input, m otherwise.
      const std::size_t core_cols =
          spec.rows != 0 && spec.rows < spec.m ? spec.rows : spec.m;
      spec.topk = static_cast<int>(1 + rng.below(core_cols));
    }
    if (rng.below(2)) spec.threads = 1 + rng.below(8);
    if (rng.below(2)) spec.deadline_ms = 1 + rng.below(60000);
    spec.trace = rng.below(2) != 0;
    if (rng.below(3) == 0) {
      spec.faults.seed = 1 + rng.below(1u << 30);
      spec.faults.corrupt_rate = rng.uniform(0.0, 1.0);
      spec.faults.delay_rate = rng.uniform(0.0, 1.0);
      spec.faults.delay_us = rng.below(1000);
      spec.faults.vote_fail_rate = rng.uniform(0.0, 1.0);
    }

    const std::string text = spec.to_string();
    SolverSpec back;
    ASSERT_NO_THROW(back = SolverSpec::parse(text)) << "iter " << iter << ": " << text;
    EXPECT_EQ(back, spec) << "iter " << iter << ": " << text;
    EXPECT_EQ(back.to_string(), text) << "iter " << iter;
  }
}

// Adversarial malformed strings: every rejection must name the offending
// key so service logs point at the bad token, not just "parse error".
TEST(SolverSpec, MalformedStringsNameTheOffendingKey) {
  const struct {
    const char* text;
    const char* named;
  } cases[] = {
      {"threshold=nan", "'threshold'"}, {"off_tol=nan", "'off_tol'"},
      {"ts=inf", "'ts'"},               {"tw=nan", "'tw'"},
      {"m=+5", "'m'"},                  {"rows=+7", "'rows'"},
      {"d=4294967297", "'d'"},          {"max_sweeps=4294967297", "'max_sweeps'"},
      {"ports=4294967297", "'ports'"},  {"pipeline=+2", "'pipeline'"},
      {"task=lu", "task"},              {"m=16,m=16", "'m'"},
      {"deadline_ms=-5", "'deadline_ms'"},
      {"stop=absolute", "stop"},        {"bseed=+5", "'bseed'"},
      {"task=gevd,m=16", "bseed"},      {"bseed=5", "bseed"},
      {"faults=1:2:0:0:0", "'faults'"},       // corrupt rate out of [0,1]
      {"faults=0:0:0:0:0", "'faults'"},       // seed 0 is reserved for off
      {"faults=1:0:0:0", "'faults'"},         // too few fields
      {"faults=1:0:0:0:0:0", "'faults'"},     // too many fields
  };
  for (const auto& c : cases) {
    try {
      SolverSpec::parse(c.text);
      FAIL() << c.text << " must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.named), std::string::npos)
          << c.text << " -> " << e.what();
    }
  }
}

TEST(SolverPlan, RejectsInfeasibleSpecs) {
  SolverSpec spec;
  spec.m = 4;  // 2-cube needs >= 8 columns
  spec.d = 2;
  EXPECT_THROW(Solver::plan(spec), std::invalid_argument);
  spec.ordering = ord::OrderingKind::Custom;
  EXPECT_THROW(Solver::plan(spec), std::invalid_argument);
}

TEST(SolverPlan, SolveRejectsWrongOrder) {
  const SolvePlan plan = Solver::plan(SolverSpec::parse("m=16,d=2"));
  EXPECT_THROW(plan.solve(test_matrix(12, 1)), std::invalid_argument);
}

// One plan, several distinct matrices, every backend: results must be
// bit-for-bit identical to the legacy free functions (which now route
// through one-shot plans -- the point is that REUSING a plan changes
// nothing about the numerics).
TEST(SolverPlan, ReuseAcrossMatricesMatchesLegacyBitForBit) {
  const std::size_t m = 16;
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 2);

  SolverSpec base = SolverSpec::parse("ordering=d4,m=16,d=2");
  SolverSpec mpi = base;
  mpi.backend = Backend::MpiLite;
  SolverSpec sim = base;
  sim.backend = Backend::Sim;

  const SolvePlan inline_plan = Solver::plan(base);
  const SolvePlan mpi_plan = Solver::plan(mpi);
  const SolvePlan sim_plan = Solver::plan(sim);

  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const la::Matrix a = test_matrix(m, seed);
    const solve::DistributedResult ref_inline = solve::solve_inline(a, ordering);
    const solve::DistributedResult ref_mpi = solve::solve_mpi(a, ordering);
    const solve::SimSolveResult ref_sim = solve::solve_sim(a, ordering);

    const SolveReport r_inline = inline_plan.solve(a);
    const SolveReport r_mpi = mpi_plan.solve(a);
    const SolveReport r_sim = sim_plan.solve(a);

    ASSERT_TRUE(r_inline.converged);
    EXPECT_EQ(r_inline.eigenvalues, ref_inline.eigenvalues) << "seed " << seed;
    EXPECT_EQ(la::Matrix::max_abs_diff(r_inline.eigenvectors, ref_inline.eigenvectors), 0.0);
    EXPECT_EQ(r_inline.sweeps, ref_inline.sweeps);
    EXPECT_EQ(r_inline.rotations, ref_inline.rotations);

    EXPECT_EQ(r_mpi.eigenvalues, ref_mpi.eigenvalues) << "seed " << seed;
    EXPECT_EQ(la::Matrix::max_abs_diff(r_mpi.eigenvectors, ref_mpi.eigenvectors), 0.0);
    EXPECT_EQ(r_mpi.comm.messages, ref_mpi.comm.messages);
    EXPECT_EQ(r_mpi.comm.elements, ref_mpi.comm.elements);

    EXPECT_EQ(r_sim.eigenvalues, ref_sim.eigenvalues) << "seed " << seed;
    EXPECT_EQ(la::Matrix::max_abs_diff(r_sim.eigenvectors, ref_sim.eigenvectors), 0.0);
    ASSERT_TRUE(r_sim.has_model);
    EXPECT_EQ(r_sim.modeled_time, ref_sim.modeled_time);
    EXPECT_EQ(r_sim.vote_time, ref_sim.vote_time);
    EXPECT_EQ(r_sim.modeled_sweeps, ref_sim.modeled_sweeps);
    EXPECT_EQ(r_sim.link_busy, ref_sim.link_busy);
  }
}

// The acceptance-criterion cross-backend check: one spec, three backends,
// identical eigenvalues on the same input.
TEST(SolverPlan, BackendsAgreeOnTheSameInput) {
  const la::Matrix a = test_matrix(16, 4242);
  SolverSpec spec = SolverSpec::parse("ordering=pbr,m=16,d=2");

  spec.backend = Backend::Inline;
  const SolveReport r_inline = Solver::solve(spec, a);
  spec.backend = Backend::MpiLite;
  const SolveReport r_mpi = Solver::solve(spec, a);
  spec.backend = Backend::Sim;
  const SolveReport r_sim = Solver::solve(spec, a);

  ASSERT_TRUE(r_inline.converged && r_mpi.converged && r_sim.converged);
  EXPECT_EQ(r_mpi.eigenvalues, r_inline.eigenvalues);
  EXPECT_EQ(r_sim.eigenvalues, r_inline.eigenvalues);
  EXPECT_GT(r_sim.modeled_time, 0.0);
  EXPECT_GT(r_mpi.comm.messages, 0u);
}

// Auto pipelining picks the pipe::find_optimal_sweep_q degree, and that
// degree is the true argmin of the summed exchange-phase cost (brute-forced
// over the full 1..q_max range, which the small case makes exhaustive).
TEST(SolverPlan, AutoPicksOptimizerQ) {
  SolverSpec spec = SolverSpec::parse("backend=mpi,ordering=d4,m=64,d=2,pipeline=auto");
  const SolvePlan plan = Solver::plan(spec);

  const std::uint64_t q_max = 64 / 8;  // columns per block
  pipe::ProblemParams prob;
  prob.d = 2;
  prob.m = 64.0;
  const pipe::OptimalQ best =
      pipe::find_optimal_sweep_q(plan.ordering(), prob, spec.machine, q_max);
  EXPECT_EQ(plan.pipelining_q(), best.q);
  EXPECT_GT(plan.pipelining_q(), 0u);
  EXPECT_DOUBLE_EQ(plan.planned_sweep_comm_cost(), best.cost);

  // Brute-force argmin over every feasible q.
  const double step_elems = 2.0 * 64.0 * 8.0;
  double best_cost = 0.0;
  std::uint64_t best_q = 0;
  for (std::uint64_t q = 1; q <= q_max; ++q) {
    double total = 0.0;
    for (int e = plan.ordering().dimension(); e >= 1; --e)
      total += pipe::phase_cost_pipelined(plan.ordering().exchange_sequence(e), q, step_elems,
                                          spec.machine);
    if (best_q == 0 || total < best_cost) {
      best_q = q;
      best_cost = total;
    }
  }
  EXPECT_EQ(plan.pipelining_q(), best_q);
  EXPECT_DOUBLE_EQ(plan.planned_sweep_comm_cost(), best_cost);
}

// solve_mpi_pipelined's q == 0 auto mode uses the same optimizer degree:
// its message counters must match an explicit run at the optimizer's q.
TEST(SolverPlan, LegacyPipelinedAutoUsesOptimizer) {
  const la::Matrix a = test_matrix(64, 5);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 2);

  solve::PipelinedSolveOptions auto_opts;  // q = 0 -> auto
  const solve::DistributedResult auto_r = solve::solve_mpi_pipelined(a, ordering, auto_opts);

  pipe::ProblemParams prob64;
  prob64.d = 2;
  prob64.m = 64.0;
  const pipe::OptimalQ best = pipe::find_optimal_sweep_q(ordering, prob64, auto_opts.machine, 8);
  solve::PipelinedSolveOptions fixed_opts;
  fixed_opts.q = best.q;
  const solve::DistributedResult fixed_r = solve::solve_mpi_pipelined(a, ordering, fixed_opts);

  ASSERT_TRUE(auto_r.converged && fixed_r.converged);
  EXPECT_EQ(auto_r.sweeps, fixed_r.sweeps);
  EXPECT_EQ(auto_r.comm.messages, fixed_r.comm.messages);
  EXPECT_EQ(auto_r.comm.elements, fixed_r.comm.elements);
}

// An Auto sim plan charges the pipelined schedule at the optimizer's q and
// keeps inline-identical numerics.
TEST(SolverPlan, AutoSimPipeliningKeepsNumerics) {
  const la::Matrix a = test_matrix(32, 8);
  const SolveReport plain =
      Solver::solve(SolverSpec::parse("backend=sim,ordering=pbr,m=32,d=2"), a);
  const SolveReport piped =
      Solver::solve(SolverSpec::parse("backend=sim,ordering=pbr,m=32,d=2,pipeline=auto"), a);
  ASSERT_TRUE(plain.converged && piped.converged);
  EXPECT_EQ(piped.eigenvalues, plain.eigenvalues);
  EXPECT_GT(piped.pipelining_q, 0u);
  EXPECT_GT(piped.modeled_time, 0.0);
  // Pipelining at the optimal degree cannot cost more than unpipelined.
  EXPECT_LE(piped.modeled_time - piped.vote_time, plain.modeled_time - plain.vote_time);
}

TEST(SolverPlan, GershgorinShiftMatchesLegacy) {
  const la::Matrix a = test_matrix(16, 99);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 2);
  solve::SolveOptions opts;
  opts.gershgorin_shift = true;
  const solve::DistributedResult ref = solve::solve_inline(a, ordering, opts);

  const SolveReport r = Solver::solve(SolverSpec::parse("ordering=br,m=16,d=2,shift=1"), a);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.eigenvalues, ref.eigenvalues);
}

TEST(SolverPlan, SolveBatchMatchesIndividualSolves) {
  const SolvePlan plan = Solver::plan(SolverSpec::parse("ordering=d4,m=16,d=2"));
  std::vector<la::Matrix> batch;
  for (std::uint64_t seed : {1u, 2u, 3u}) batch.push_back(test_matrix(16, seed));

  const std::vector<SolveReport> reports = plan.solve_batch(batch);
  ASSERT_EQ(reports.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const SolveReport single = plan.solve(batch[i]);
    EXPECT_EQ(reports[i].eigenvalues, single.eigenvalues);
    EXPECT_EQ(reports[i].sweeps, single.sweeps);
  }
}

// One immutable plan, solved from several threads concurrently.
TEST(SolverPlan, ThreadShareable) {
  const SolvePlan plan = Solver::plan(SolverSpec::parse("ordering=pbr,m=16,d=2"));
  const la::Matrix a = test_matrix(16, 7);
  const SolveReport ref = plan.solve(a);

  std::vector<SolveReport> reports(4);
  std::vector<std::thread> threads;
  for (auto& slot : reports)
    threads.emplace_back([&plan, &a, &slot] { slot = plan.solve(a); });
  for (auto& t : threads) t.join();

  for (const SolveReport& r : reports) {
    EXPECT_EQ(r.eigenvalues, ref.eigenvalues);
    EXPECT_EQ(r.sweeps, ref.sweeps);
  }
}

TEST(SolveReport, SummaryMentionsScenarioAndModel) {
  const la::Matrix a = test_matrix(16, 3);
  const SolveReport r =
      Solver::solve(SolverSpec::parse("backend=sim,ordering=d4,m=16,d=2,pipeline=2"), a);
  const std::string text = r.summary();
  EXPECT_NE(text.find("backend=sim"), std::string::npos);
  EXPECT_NE(text.find("converged"), std::string::npos);
  EXPECT_NE(text.find("model"), std::string::npos);
  EXPECT_NE(text.find("pipeline=2"), std::string::npos);
}

// The one-line JSON rendering is a STABLE machine interface (the CLI's
// --json mode and the service driver's per-job output): this test pins the
// exact field set and order, so any change to it is a deliberate,
// test-visible API change.
TEST(SolveReport, JsonFieldSetIsPinned) {
  const la::Matrix a = test_matrix(16, 12);
  const SolveReport r =
      Solver::solve(SolverSpec::parse("backend=sim,ordering=d4,m=16,d=2,pipeline=2"), a);
  const std::string json = report_to_json(r);

  // Extract the keys in order of appearance.
  std::vector<std::string> keys;
  for (std::size_t pos = 0; (pos = json.find('"', pos)) != std::string::npos;) {
    const std::size_t end = json.find('"', pos + 1);
    ASSERT_NE(end, std::string::npos);
    if (end + 1 < json.size() && json[end + 1] == ':')
      keys.push_back(json.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  const std::vector<std::string> expected = {
      "task",          "backend",        "ordering",      "m",
      "rows",          "pipeline_q",     "topk",          "converged",
      "sweeps",        "rotations",      "spectrum_min",  "spectrum_max",
      "explained_leading",
      "comm_messages", "comm_elements",  "comm_barriers", "has_model",
      "modeled_time",  "vote_time",      "modeled_sweeps", "mean_link_utilization",
      "plan_ns",       "queue_ns",       "sweep_ns",      "comm_ns",
      "assembly_ns",   "retries",        "status"};
  {
    // spec_version leads every report (consumers dispatch on it before
    // reading anything else) and must echo the current grammar version.
    ASSERT_FALSE(keys.empty());
    EXPECT_EQ(keys.front(), "spec_version");
    EXPECT_EQ(json.rfind("{\"spec_version\":" + std::to_string(kSpecVersion) + ",", 0), 0u)
        << json.substr(0, 40);
    keys.erase(keys.begin());
  }
  EXPECT_EQ(keys, expected);

  // One line, no whitespace, and the scenario echo is right.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find(' '), std::string::npos);
  EXPECT_NE(json.find("\"backend\":\"sim\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline_q\":2"), std::string::npos);
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
  EXPECT_NE(json.find("\"m\":16"), std::string::npos);
  EXPECT_NE(json.find("\"has_model\":true"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"OK\""), std::string::npos);

  // Every backend emits the same field set (zeros outside its sections).
  const SolveReport inline_r = Solver::solve(SolverSpec::parse("m=16,d=2"), a);
  const std::string inline_json = report_to_json(inline_r);
  EXPECT_NE(inline_json.find("\"task\":\"evd\""), std::string::npos);
  EXPECT_NE(inline_json.find("\"has_model\":false"), std::string::npos);
  EXPECT_NE(inline_json.find("\"comm_messages\":0"), std::string::npos);

  // ... and so does a task=svd report, with the input shape echoed and the
  // extreme singular values in the spectrum slots.
  Xoshiro256 rng(12);
  const la::Matrix rect = la::random_uniform(24, 16, rng);
  const SolveReport svd_r =
      Solver::solve(SolverSpec::parse("task=svd,m=16,rows=24,d=2"), rect);
  const std::string svd_json = report_to_json(svd_r);
  std::vector<std::string> svd_keys;
  for (std::size_t pos = 0; (pos = svd_json.find('"', pos)) != std::string::npos;) {
    const std::size_t end = svd_json.find('"', pos + 1);
    ASSERT_NE(end, std::string::npos);
    if (end + 1 < svd_json.size() && svd_json[end + 1] == ':')
      svd_keys.push_back(svd_json.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  ASSERT_FALSE(svd_keys.empty());
  EXPECT_EQ(svd_keys.front(), "spec_version");
  svd_keys.erase(svd_keys.begin());
  EXPECT_EQ(svd_keys, expected);
  EXPECT_NE(svd_json.find("\"task\":\"svd\""), std::string::npos);
  EXPECT_NE(svd_json.find("\"m\":16"), std::string::npos);
  EXPECT_NE(svd_json.find("\"rows\":24"), std::string::npos);
  // Non-pca tasks render explained_leading as an exact 0.
  EXPECT_NE(svd_json.find("\"explained_leading\":0,"), std::string::npos);

  // A task=pca report keeps the same field set, echoes the data-matrix
  // shape, and fills explained_leading with the top component's share.
  const SolveReport pca_r = Solver::solve(
      SolverSpec::parse("task=pca,m=16,rows=24,d=2,stop=offdiag_abs"), rect);
  const std::string pca_json = report_to_json(pca_r);
  EXPECT_NE(pca_json.find("\"task\":\"pca\""), std::string::npos);
  EXPECT_NE(pca_json.find("\"m\":16"), std::string::npos);
  EXPECT_NE(pca_json.find("\"rows\":24"), std::string::npos);
  ASSERT_FALSE(pca_r.explained_variance.empty());
  EXPECT_GT(pca_r.explained_variance.front(), 0.0);
  EXPECT_EQ(pca_json.find("\"explained_leading\":0,"), std::string::npos);

  // A wide task=svd report derives its geometry from the assembled vector
  // matrices: m from V's rows, rows from U's -- the swap must land right.
  Xoshiro256 wide_rng(13);
  const la::Matrix wide_a = la::random_uniform(8, 16, wide_rng);
  const SolveReport wide_r =
      Solver::solve(SolverSpec::parse("task=svd,m=16,rows=8,d=1"), wide_a);
  const std::string wide_json = report_to_json(wide_r);
  EXPECT_NE(wide_json.find("\"m\":16"), std::string::npos);
  EXPECT_NE(wide_json.find("\"rows\":8"), std::string::npos);

  // A task=gevd report renders like an eigenproblem (spectrum from the
  // generalized eigenvalues, square geometry).
  const la::Matrix sym = test_matrix(16, 77);
  const SolveReport gevd_r =
      Solver::solve(SolverSpec::parse("task=gevd,bseed=5,m=16,d=2"), sym);
  const std::string gevd_json = report_to_json(gevd_r);
  EXPECT_NE(gevd_json.find("\"task\":\"gevd\""), std::string::npos);
  EXPECT_NE(gevd_json.find("\"m\":16"), std::string::npos);
  EXPECT_NE(gevd_json.find("\"rows\":16"), std::string::npos);
}

TEST(SolverPlan, CustomOrderingThroughTheFacade) {
  // A custom ordering (BR sequences supplied explicitly) runs through
  // plan(spec, ordering) and matches the built-in BR result.
  const int d = 2;
  std::vector<ord::LinkSequence> seqs;
  for (int e = 1; e <= d; ++e) seqs.push_back(ord::make_exchange_sequence(ord::OrderingKind::BR, e));
  ord::JacobiOrdering custom(std::move(seqs));

  SolverSpec spec = SolverSpec::parse("m=16,d=2");
  spec.ordering = ord::OrderingKind::Custom;
  const la::Matrix a = test_matrix(16, 21);
  const SolveReport r = Solver::plan(spec, custom).solve(a);

  const SolveReport ref = Solver::solve(SolverSpec::parse("ordering=br,m=16,d=2"), a);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.eigenvalues, ref.eigenvalues);
}

}  // namespace
}  // namespace jmh::api
