#include "ord/permuted_br.hpp"

#include <gtest/gtest.h>

#include "ord/bounds.hpp"
#include "ord/br.hpp"

namespace jmh::ord {
namespace {

TEST(LinkPermutation, IdentityByDefault) {
  const LinkPermutation p(5);
  EXPECT_TRUE(p.is_identity());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(p(i), i);
}

TEST(LinkPermutation, BaseTranspositionLevel0) {
  // e=17, k=0: i <-> 15-i for i in [0,15] (paper figure 3, 1st transformation).
  const auto p = LinkPermutation::base_transposition(17, 0);
  EXPECT_EQ(p(0), 15);
  EXPECT_EQ(p(15), 0);
  EXPECT_EQ(p(7), 8);
  EXPECT_EQ(p(8), 7);
  EXPECT_EQ(p(16), 16);  // separator link untouched
}

TEST(LinkPermutation, BaseTranspositionLevel1) {
  // e=17, k=1: i <-> 7-i for i in [0,7] only.
  const auto p = LinkPermutation::base_transposition(17, 1);
  EXPECT_EQ(p(0), 7);
  EXPECT_EQ(p(3), 4);
  EXPECT_EQ(p(8), 8);  // untouched above L
  EXPECT_EQ(p(15), 15);
}

TEST(LinkPermutation, ComposeAndInverse) {
  const auto a = LinkPermutation::base_transposition(9, 0);
  const auto b = LinkPermutation::base_transposition(9, 1);
  const auto ab = a * b;
  for (int x = 0; x < 9; ++x) EXPECT_EQ(ab(x), a(b(x)));
  const auto inv = ab.inverse();
  for (int x = 0; x < 9; ++x) EXPECT_EQ(inv(ab(x)), x);
}

TEST(LinkPermutation, ConjugationMatchesDefinition) {
  const auto base = LinkPermutation::base_transposition(9, 1);
  const auto phi = LinkPermutation::base_transposition(9, 0);
  const auto conj = base.conjugated_by(phi);
  for (int x = 0; x < 9; ++x) EXPECT_EQ(conj(x), phi(base(phi.inverse()(x))));
}

TEST(PermutedBr, NumTransformations) {
  EXPECT_EQ(permuted_br_num_transformations(2), 0);
  EXPECT_EQ(permuted_br_num_transformations(3), 1);
  EXPECT_EQ(permuted_br_num_transformations(5), 2);
  EXPECT_EQ(permuted_br_num_transformations(9), 3);
  EXPECT_EQ(permuted_br_num_transformations(17), 4);
  EXPECT_EQ(permuted_br_num_transformations(12), 3);  // floor(log2(11))
}

TEST(PermutedBr, PaperExampleE5) {
  // Section 3.2.1 worked example:
  // D5BR  = 0102010301020104010201030102010
  // D5pBR = 0102010310121014323132302321232
  EXPECT_EQ(br_sequence(5).to_string(), "0102010301020104010201030102010");
  EXPECT_EQ(permuted_br_sequence(5).to_string(), "0102010310121014323132302321232");
}

TEST(PermutedBr, PaperIntermediateStepE5) {
  // After the first transformation only, the example shows
  // <0102010301020104323132303231323>; our level-0 permutation applied to
  // the second 4-subsequence must reproduce it. We reconstruct it by
  // applying the recorded permutation.
  const auto sigma = permuted_br_subsequence_permutation(5, 0, 1);
  auto links = br_sequence(5).links();
  for (std::size_t p = 16; p < 31; ++p) links[p] = sigma(links[p]);
  EXPECT_EQ(LinkSequence(links, 5).to_string(), "0102010301020104323132303231323");
}

TEST(PermutedBr, E17TransformationsMatchFigure3) {
  // Spot-check the compounded permutations of paper figure 3.
  // 2nd transformation, 4th 15-subsequence: (8,15),(9,14),(10,13),(11,12).
  const auto t2_4 = permuted_br_subsequence_permutation(17, 1, 3);
  EXPECT_EQ(t2_4(8), 15);
  EXPECT_EQ(t2_4(9), 14);
  EXPECT_EQ(t2_4(10), 13);
  EXPECT_EQ(t2_4(11), 12);
  // 3rd transformation, 6th 14-subsequence: (12,15),(13,14).
  const auto t3_6 = permuted_br_subsequence_permutation(17, 2, 5);
  EXPECT_EQ(t3_6(12), 15);
  EXPECT_EQ(t3_6(13), 14);
  // 3rd transformation, 8th 14-subsequence: (8,11),(9,10).
  const auto t3_8 = permuted_br_subsequence_permutation(17, 2, 7);
  EXPECT_EQ(t3_8(8), 11);
  EXPECT_EQ(t3_8(9), 10);
  // 4th transformation, 8th 13-subsequence: (4,5).
  const auto t4_8 = permuted_br_subsequence_permutation(17, 3, 7);
  EXPECT_EQ(t4_8(4), 5);
  // Even-indexed subsequences receive no permutation.
  EXPECT_TRUE(permuted_br_subsequence_permutation(17, 1, 2).is_identity());
}

class PermutedBrValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(PermutedBrValidityTest, IsESequence) {
  EXPECT_TRUE(permuted_br_sequence(GetParam()).is_valid());
}

TEST_P(PermutedBrValidityTest, AlphaWellBelowBr) {
  const int e = GetParam();
  if (e < 4) return;  // tiny phases: no headroom to rebalance
  const auto seq = permuted_br_sequence(e);
  EXPECT_LT(static_cast<std::uint64_t>(seq.alpha()), br_alpha(e));
}

TEST_P(PermutedBrValidityTest, AlphaAtLeastLowerBound) {
  const int e = GetParam();
  EXPECT_GE(static_cast<std::uint64_t>(permuted_br_sequence(e).alpha()), alpha_lower_bound(e));
}

INSTANTIATE_TEST_SUITE_P(Phases, PermutedBrValidityTest, ::testing::Range(2, 18));

TEST(PermutedBr, AlphaNearTable1) {
  // Paper Table 1 (rows reconstructed; DESIGN.md note 3). Our floor-based
  // generalization lands within one repetition of the printed alpha for
  // every power-of-two-adjacent e, and strictly better for e = 11, 12.
  const struct {
    int e;
    int paper_alpha;
  } rows[] = {{7, 23}, {8, 43}, {9, 67}, {10, 131}, {11, 289}, {12, 577}, {13, 776}, {14, 1543}};
  for (const auto& row : rows) {
    const int ours = permuted_br_sequence(row.e).alpha();
    EXPECT_LE(ours, row.paper_alpha + 1) << "e=" << row.e;
  }
}

TEST(PermutedBr, AlphaWithinAppendixBoundForPow2) {
  // Theorem 2 bound applies when e-1 is a power of two.
  for (int e : {3, 5, 9, 17}) {
    const double bound = permuted_br_alpha_bound(e);
    EXPECT_LE(static_cast<double>(permuted_br_sequence(e).alpha()), bound + 1e-9) << "e=" << e;
  }
}

TEST(PermutedBr, RatioTendsTo125) {
  // Theorem 3: alpha / lower-bound tends to 1.25; at e=17 it should already
  // be within ~15% of that.
  const int e = 17;
  const double ratio = static_cast<double>(permuted_br_sequence(e).alpha()) /
                       static_cast<double>(alpha_lower_bound(e));
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.45);
}

TEST(PermutedBr, HistogramMoreBalancedThanBr) {
  // The whole point of the transformations: the multiplicity histogram's
  // spread shrinks dramatically.
  const int e = 10;
  const auto br = br_sequence(e).histogram();
  const auto pbr = permuted_br_sequence(e).histogram();
  const auto spread = [](const std::vector<int>& h) {
    return *std::max_element(h.begin(), h.end()) - *std::min_element(h.begin(), h.end());
  };
  EXPECT_LT(spread(pbr), spread(br) / 3);
}

TEST(PermutedBr, RejectsBadE) {
  EXPECT_THROW(permuted_br_sequence(1), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::ord
