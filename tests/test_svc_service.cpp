// svc::SolverService: service results bit-identical to direct plan.solve
// across all three backends, cache amortization, coalescing correctness,
// error isolation, metrics accounting, and shutdown/drain semantics.
#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "la/sym_gen.hpp"
#include "svc/service.hpp"

namespace jmh::svc {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

void expect_bit_identical(const api::SolveReport& got, const api::SolveReport& want) {
  EXPECT_EQ(got.eigenvalues, want.eigenvalues);
  EXPECT_EQ(la::Matrix::max_abs_diff(got.eigenvectors, want.eigenvectors), 0.0);
  EXPECT_EQ(got.sweeps, want.sweeps);
  EXPECT_EQ(got.rotations, want.rotations);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_EQ(got.comm.messages, want.comm.messages);
  EXPECT_EQ(got.comm.elements, want.comm.elements);
  EXPECT_EQ(got.modeled_time, want.modeled_time);
  EXPECT_EQ(got.link_busy, want.link_busy);
}

// The acceptance criterion: reports served through the pool are
// bit-identical to direct plan.solve for the same matrices, on every
// backend.
TEST(SolverService, ServedReportsMatchDirectSolvesBitForBit) {
  const std::vector<std::string> specs = {
      "backend=inline,ordering=d4,m=16,d=2",
      "backend=mpi,ordering=d4,m=16,d=2",
      "backend=sim,ordering=pbr,m=16,d=2,pipeline=auto",
  };
  SolverService service({.workers = 3, .queue_capacity = 16, .cache_capacity = 8});

  std::vector<std::future<api::SolveReport>> futures;
  std::vector<api::SolveReport> direct;
  for (const std::string& spec : specs) {
    const api::SolvePlan plan = api::Solver::plan(api::SolverSpec::parse(spec));
    for (std::uint64_t seed : {5u, 6u, 7u}) {
      const la::Matrix a = test_matrix(16, seed);
      direct.push_back(plan.solve(a));
      futures.push_back(service.submit(spec, a));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const api::SolveReport served = futures[i].get();
    ASSERT_TRUE(served.converged) << "job " << i;
    expect_bit_identical(served, direct[i]);
  }
}

TEST(SolverService, CacheAmortizesRepeatedSpecs) {
  SolverService service({.workers = 2, .queue_capacity = 32, .cache_capacity = 8});
  const std::string spec = "backend=inline,ordering=d4,m=16,d=2";

  std::vector<std::future<api::SolveReport>> futures;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    futures.push_back(service.submit(spec, test_matrix(16, seed)));
  for (auto& f : futures) EXPECT_TRUE(f.get().converged);
  service.drain();  // counters are recorded just after promise fulfillment

  const Metrics m = service.metrics();
  EXPECT_EQ(m.jobs_submitted, 10u);
  EXPECT_EQ(m.jobs_done, 10u);
  EXPECT_EQ(m.jobs_failed, 0u);
  // One distinct scenario: every resolution after a worker's first is a
  // hit. The cache deliberately compiles cold keys outside its lock, so
  // the 2 workers may race the first resolution and both count a miss
  // (the loser adopts the winner's entry) -- bounded by the worker count.
  EXPECT_GE(m.cache_misses, 1u);
  EXPECT_LE(m.cache_misses, 2u);
  EXPECT_EQ(m.cache_hits + m.cache_misses, 10u);
  EXPECT_EQ(m.latency_count, 10u);
  EXPECT_GT(m.latency_mean_s, 0.0);
  EXPECT_LE(m.latency_p50_s, m.latency_p90_s);
  EXPECT_LE(m.latency_p90_s, m.latency_p99_s);
  EXPECT_LE(m.latency_p99_s, m.latency_max_s);
  EXPECT_GE(m.queue_high_water, 1u);
  EXPECT_EQ(m.workers, 2u);
}

TEST(SolverService, CoalescingKeepsResultsIdentical) {
  // One worker + large coalesce bound: same-spec runs execute as batches.
  SolverService service(
      {.workers = 1, .queue_capacity = 64, .cache_capacity = 4, .max_coalesce = 8});
  const std::string spec = "backend=inline,ordering=br,m=16,d=2";
  const api::SolvePlan plan = api::Solver::plan(api::SolverSpec::parse(spec));

  std::vector<std::future<api::SolveReport>> futures;
  std::vector<api::SolveReport> direct;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const la::Matrix a = test_matrix(16, seed);
    direct.push_back(plan.solve(a));
    futures.push_back(service.submit(spec, a));
  }
  for (std::size_t i = 0; i < futures.size(); ++i)
    expect_bit_identical(futures[i].get(), direct[i]);
  service.drain();

  const Metrics m = service.metrics();
  EXPECT_EQ(m.jobs_done, 12u);
  EXPECT_EQ(m.cache_misses, 1u);
}

TEST(SolverService, BadSpecsFailTheJobNotTheService) {
  SolverService service({.workers = 1, .queue_capacity = 8, .cache_capacity = 4});

  auto bad_parse = service.submit("bogus=1", test_matrix(16, 1));
  auto infeasible = service.submit("m=4,d=2", test_matrix(4, 2));
  auto wrong_order = service.submit("m=16,d=2", test_matrix(12, 3));
  EXPECT_THROW(bad_parse.get(), std::invalid_argument);
  EXPECT_THROW(infeasible.get(), std::invalid_argument);
  EXPECT_THROW(wrong_order.get(), std::invalid_argument);

  // The service keeps serving after failures.
  auto good = service.submit("m=16,d=2", test_matrix(16, 4));
  EXPECT_TRUE(good.get().converged);
  service.drain();

  const Metrics m = service.metrics();
  EXPECT_EQ(m.jobs_failed, 3u);
  EXPECT_EQ(m.jobs_done, 1u);
}

TEST(SolverService, DrainWaitsForQuiescence) {
  SolverService service({.workers = 2, .queue_capacity = 32, .cache_capacity = 4});
  std::vector<std::future<api::SolveReport>> futures;
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    futures.push_back(service.submit("backend=inline,ordering=d4,m=16,d=2",
                                     test_matrix(16, seed)));
  service.drain();
  // After drain every future is immediately ready.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(f.get().converged);
  }
  const Metrics m = service.metrics();
  EXPECT_EQ(m.jobs_done + m.jobs_failed, m.jobs_submitted);
  EXPECT_EQ(m.queue_depth, 0u);
}

TEST(SolverService, ShutdownFulfillsAdmittedJobsAndRejectsNewOnes) {
  SolverService service({.workers = 1, .queue_capacity = 32, .cache_capacity = 4});
  std::vector<std::future<api::SolveReport>> futures;
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    futures.push_back(service.submit("backend=inline,ordering=d4,m=16,d=2",
                                     test_matrix(16, seed)));
  service.shutdown();
  for (auto& f : futures) EXPECT_TRUE(f.get().converged) << "admitted jobs must drain";

  auto rejected = service.submit("m=16,d=2", test_matrix(16, 9));
  EXPECT_THROW(rejected.get(), std::runtime_error);
  EXPECT_EQ(service.try_submit("m=16,d=2", test_matrix(16, 9)), std::nullopt);

  service.shutdown();  // idempotent
}

TEST(SolverService, TrySubmitShedsWhenSaturated) {
  // Tiny queue + slow-ish jobs: with enough rapid try_submits at least the
  // capacity bound must eventually shed (the queue holds at most 1).
  SolverService service({.workers = 1, .queue_capacity = 1, .cache_capacity = 4});
  std::vector<std::future<api::SolveReport>> admitted;
  std::size_t shed = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto f = service.try_submit("backend=inline,ordering=d4,m=32,d=2",
                                test_matrix(32, seed));
    if (f) admitted.push_back(std::move(*f));
    else ++shed;
  }
  for (auto& f : admitted) EXPECT_TRUE(f.get().converged);
  EXPECT_GT(shed, 0u);
  service.drain();
  const Metrics m = service.metrics();
  EXPECT_EQ(m.jobs_submitted, admitted.size());
  EXPECT_EQ(m.jobs_done, admitted.size());
  EXPECT_LE(m.queue_high_water, 1u);
}

TEST(SolverService, DestructorDrainsOutstandingJobs) {
  std::future<api::SolveReport> f;
  {
    SolverService service({.workers = 1, .queue_capacity = 8, .cache_capacity = 2});
    f = service.submit("backend=inline,ordering=d4,m=16,d=2", test_matrix(16, 1));
  }  // ~SolverService: close, drain, join
  EXPECT_TRUE(f.get().converged);
}

TEST(SolverService, MetricsSummaryMentionsTheKeyCounters) {
  SolverService service({.workers = 1, .queue_capacity = 8, .cache_capacity = 2});
  service.submit("backend=inline,ordering=d4,m=16,d=2", test_matrix(16, 1)).get();
  const std::string text = service.metrics().summary();
  EXPECT_NE(text.find("workers"), std::string::npos);
  EXPECT_NE(text.find("cache hits"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("high water"), std::string::npos);
  EXPECT_NE(text.find("dispatch"), std::string::npos);
}

TEST(SolverService, MetricsCarryDispatcherBusyTimeAndPoolStats) {
  SolverService service({.workers = 2, .queue_capacity = 16, .cache_capacity = 4});
  std::vector<std::future<api::SolveReport>> futures;
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    futures.push_back(service.submit("backend=inline,ordering=d4,m=32,d=2",
                                     test_matrix(32, seed)));
  for (auto& f : futures) EXPECT_TRUE(f.get().converged);
  service.drain();

  const Metrics m = service.metrics();
  ASSERT_EQ(m.worker_busy_s.size(), 2u);  // one slot per dispatcher
  double dispatched = 0.0;
  for (double b : m.worker_busy_s) {
    EXPECT_GE(b, 0.0);
    dispatched += b;
  }
  EXPECT_GT(dispatched, 0.0);  // six solves cannot take zero time

  if (exec::ThreadPool::enabled()) {
    // The shared pool section mirrors exec::ThreadPool::global().
    EXPECT_EQ(m.pool_workers, exec::ThreadPool::global().workers());
    EXPECT_EQ(m.pool_busy_s.size(), m.pool_workers);
  } else {
    EXPECT_EQ(m.pool_workers, 0u);
    EXPECT_TRUE(m.pool_busy_s.empty());
  }
}

TEST(SolverService, PoolThreadsConfigRequestsPoolWidth) {
  // pool_threads is best-effort (an active pool keeps its width), so the
  // assertion is only that construction succeeds and the metrics echo a
  // consistent pool view -- not that the resize landed.
  SolverService service(
      {.workers = 1, .queue_capacity = 8, .cache_capacity = 2, .pool_threads = 2});
  service.submit("backend=inline,ordering=d4,m=16,d=2", test_matrix(16, 1)).get();
  service.drain();
  const Metrics m = service.metrics();
  if (exec::ThreadPool::enabled()) {
    EXPECT_EQ(m.pool_workers, exec::ThreadPool::global().workers());
  }
}

}  // namespace
}  // namespace jmh::svc
