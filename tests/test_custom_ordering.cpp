// Custom (user-supplied) sequence families plugged into the full-sweep
// skeleton: any set of valid e-sequences yields a correct Jacobi ordering.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"
#include "ord/br.hpp"
#include "ord/min_alpha.hpp"
#include "ord/schedule.hpp"
#include "solve/parallel_jacobi.hpp"

namespace jmh::ord {
namespace {

std::vector<LinkSequence> searched_family(int d) {
  std::vector<LinkSequence> seqs;
  for (int e = 1; e <= d; ++e) {
    const auto found = search_min_alpha(e);
    seqs.push_back(found.value_or(br_sequence(e)));
  }
  return seqs;
}

TEST(CustomOrdering, AcceptsSearchedSequences) {
  const JacobiOrdering ordering(searched_family(4));
  EXPECT_EQ(ordering.kind(), OrderingKind::Custom);
  EXPECT_EQ(ordering.dimension(), 4);
  EXPECT_EQ(to_string(ordering.kind()), "custom");
}

TEST(CustomOrdering, AllPairsOncePerSweep) {
  const JacobiOrdering ordering(searched_family(5));
  const auto v = verify_sweeps(ordering, 2);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(CustomOrdering, ReversedBrIsAlsoValid) {
  // Reversing a Hamiltonian path gives a Hamiltonian path; the reversed-BR
  // family is a perfectly good (if pointless) ordering.
  std::vector<LinkSequence> seqs;
  for (int e = 1; e <= 4; ++e) {
    auto links = br_sequence(e).links();
    std::reverse(links.begin(), links.end());
    seqs.emplace_back(std::move(links), e);
  }
  const JacobiOrdering ordering(std::move(seqs));
  const auto v = verify_sweeps(ordering, 2);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(CustomOrdering, SolvesEigenproblem) {
  Xoshiro256 rng(71);
  const la::Matrix a = la::random_uniform_symmetric(16, rng);
  const JacobiOrdering ordering(searched_family(2));
  const auto r = solve::solve_inline(a, ordering);
  ASSERT_TRUE(r.converged);
  const auto ref = la::onesided_jacobi_cyclic(a);
  EXPECT_LT(la::spectrum_distance(r.eigenvalues, ref.eigenvalues), 1e-8);
}

TEST(CustomOrdering, RejectsInvalidSequence) {
  // 0,0,0 is not a Hamiltonian path of the 2-cube.
  std::vector<LinkSequence> seqs;
  seqs.push_back(br_sequence(1));
  seqs.emplace_back(std::vector<Link>{0, 0, 0}, 2);
  EXPECT_THROW(JacobiOrdering(std::move(seqs)), std::invalid_argument);
}

TEST(CustomOrdering, RejectsMisorderedPhases) {
  std::vector<LinkSequence> seqs;
  seqs.push_back(br_sequence(2));  // should be D_1 at position 0
  EXPECT_THROW(JacobiOrdering(std::move(seqs)), std::invalid_argument);
}

TEST(CustomOrdering, RejectsEmptyFamily) {
  EXPECT_THROW(JacobiOrdering(std::vector<LinkSequence>{}), std::invalid_argument);
}

TEST(CustomOrdering, KindConstructorRejectsCustom) {
  EXPECT_THROW(JacobiOrdering(OrderingKind::Custom, 3), std::invalid_argument);
  EXPECT_THROW(make_exchange_sequence(OrderingKind::Custom, 3), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::ord
