#include "ord/bounds.hpp"

#include <gtest/gtest.h>

namespace jmh::ord {
namespace {

TEST(Bounds, LowerBoundMatchesPaperTable1) {
  // ceil((2^e - 1)/e); see DESIGN.md note 3 -- the paper prints 58 for e=9
  // where the formula gives 57, flagged in EXPERIMENTS.md.
  EXPECT_EQ(alpha_lower_bound(7), 19u);
  EXPECT_EQ(alpha_lower_bound(8), 32u);
  EXPECT_EQ(alpha_lower_bound(9), 57u);
  EXPECT_EQ(alpha_lower_bound(10), 103u);
  EXPECT_EQ(alpha_lower_bound(11), 187u);
  EXPECT_EQ(alpha_lower_bound(12), 342u);
  EXPECT_EQ(alpha_lower_bound(13), 631u);
  EXPECT_EQ(alpha_lower_bound(14), 1171u);
}

TEST(Bounds, LowerBoundSmallCases) {
  EXPECT_EQ(alpha_lower_bound(1), 1u);
  EXPECT_EQ(alpha_lower_bound(2), 2u);
  EXPECT_EQ(alpha_lower_bound(3), 3u);
  EXPECT_EQ(alpha_lower_bound(4), 4u);
  EXPECT_EQ(alpha_lower_bound(5), 7u);
  EXPECT_EQ(alpha_lower_bound(6), 11u);
}

TEST(Bounds, BrAlpha) {
  EXPECT_EQ(br_alpha(1), 1u);
  EXPECT_EQ(br_alpha(5), 16u);
  EXPECT_EQ(br_alpha(10), 512u);
}

TEST(Bounds, PermutedBrBoundFormula) {
  // Theorem 2: 2^e/(e-1) + 2^{e-2}/(e-1) - 2^e/(e-1)^2.
  EXPECT_NEAR(permuted_br_alpha_bound(9), 512.0 / 8 + 128.0 / 8 - 512.0 / 64, 1e-12);
  EXPECT_NEAR(permuted_br_alpha_bound(17), 131072.0 / 16 + 32768.0 / 16 - 131072.0 / 256,
              1e-9);
}

TEST(Bounds, RatioTendsTo125) {
  // Theorem 3: bound / lower-bound -> 1.25 for large e.
  for (int e : {33, 49, 62}) {
    const double ratio =
        permuted_br_alpha_bound(e) / static_cast<double>(alpha_lower_bound(e));
    EXPECT_NEAR(ratio, permuted_br_asymptotic_ratio(), 0.08) << "e=" << e;
  }
}

TEST(Bounds, RangeChecks) {
  EXPECT_THROW(alpha_lower_bound(0), std::invalid_argument);
  EXPECT_THROW(alpha_lower_bound(63), std::invalid_argument);
  EXPECT_THROW(br_alpha(0), std::invalid_argument);
  EXPECT_THROW(permuted_br_alpha_bound(1), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::ord
