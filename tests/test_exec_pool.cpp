// exec::ThreadPool: the process-wide execution substrate. The properties
// under test are the ones the layers above lean on:
//   * TaskGroup::wait is a helping wait -- tasks may submit nested groups
//     and wait on them from inside a pool task without deadlocking, at any
//     worker count (the waiter executes its own group's queued tasks);
//   * run_gang admits all-or-nothing and the caller participates, so every
//     admitted gang has enough live executors for closures that BLOCK on
//     each other -- including gangs wider than the pool (temporary threads)
//     and gangs launched from inside a pool task (detached fallback);
//   * exceptions propagate: first error by submission (gang: lowest index)
//     order, after every closure finished;
//   * ensure_workers resizes only an idle pool;
//   * the observability counters (queue high-water, per-worker busy time)
//     move when work moves.
// The stress cases double as the TSan workload for the exec suite (CI runs
// this binary under JMH_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"

namespace jmh::exec {
namespace {

void spin_until(const std::atomic<int>& counter, int target) {
  while (counter.load() < target) std::this_thread::yield();
}

TEST(ExecPool, GroupRunsEveryTask) {
  ThreadPool pool(PoolConfig{2, false});
  EXPECT_EQ(pool.workers(), 2u);
  std::atomic<int> ran{0};
  ThreadPool::TaskGroup group = pool.group();
  for (int i = 0; i < 64; ++i) group.add([&] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ExecPool, NestedGroupsFromInsideTasksCannotDeadlock) {
  // Every task forks a subgroup and waits on it while every worker is busy
  // doing the same: only the helping wait makes progress possible. One
  // worker is the adversarial case -- nothing else can help.
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    ThreadPool pool(PoolConfig{workers, false});
    std::atomic<int> leaves{0};
    ThreadPool::TaskGroup outer = pool.group();
    for (int i = 0; i < 8; ++i) {
      outer.add([&] {
        ThreadPool::TaskGroup inner = pool.group();
        for (int j = 0; j < 8; ++j) {
          inner.add([&] {
            ThreadPool::TaskGroup leaf = pool.group();
            leaf.add([&] { leaves.fetch_add(1); });
            leaf.wait();
          });
        }
        inner.wait();
      });
    }
    outer.wait();
    EXPECT_EQ(leaves.load(), 64) << "workers=" << workers;
  }
}

TEST(ExecPool, GroupRethrowsFirstErrorInSubmissionOrder) {
  ThreadPool pool(PoolConfig{2, false});
  ThreadPool::TaskGroup group = pool.group();
  std::atomic<int> ran{0};
  group.add([&] { ran.fetch_add(1); });
  group.add([] { throw std::runtime_error("first"); });
  group.add([] { throw std::runtime_error("second"); });
  group.add([&] { ran.fetch_add(1); });
  try {
    group.wait();
    FAIL() << "wait must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(ran.load(), 2);  // non-throwing tasks still ran to completion
}

TEST(ExecPool, GangClosuresRunConcurrentlyEvenWhenOversized) {
  // The gang contract: all n closures are LIVE at once (mpi_lite ranks
  // block on each other's sends). A rendezvous inside the closures only
  // completes if that holds -- with n far above the worker count, the
  // overflow must run on temporary threads.
  ThreadPool pool(PoolConfig{2, false});
  for (std::size_t n : {std::size_t{2}, std::size_t{8}}) {
    std::atomic<int> arrived{0};
    std::atomic<int> done{0};
    pool.run_gang(n, [&](std::size_t) {
      arrived.fetch_add(1);
      spin_until(arrived, static_cast<int>(n));  // rendezvous across the gang
      done.fetch_add(1);
    });
    EXPECT_EQ(done.load(), static_cast<int>(n)) << "n=" << n;
  }
}

TEST(ExecPool, GangRethrowsLowestIndexError) {
  ThreadPool pool(PoolConfig{2, false});
  std::atomic<int> ran{0};
  try {
    pool.run_gang(4, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("three");
      if (i == 1) throw std::runtime_error("one");
    });
    FAIL() << "run_gang must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "one");
  }
  EXPECT_EQ(ran.load(), 4);  // every closure finished before the rethrow
}

TEST(ExecPool, GangFromInsidePoolTaskFallsBackDetached) {
  // A batch item (plain task) that runs an mpi-backend solve calls run_gang
  // from a worker thread: the nested gang cannot reserve the worker it
  // occupies, so it must run detached -- and still satisfy the concurrency
  // contract.
  ThreadPool pool(PoolConfig{2, false});
  std::atomic<int> done{0};
  ThreadPool::TaskGroup group = pool.group();
  for (int i = 0; i < 4; ++i) {
    group.add([&] {
      std::atomic<int> arrived{0};
      pool.run_gang(4, [&](std::size_t) {
        arrived.fetch_add(1);
        spin_until(arrived, 4);
      });
      done.fetch_add(1);
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), 4);
}

TEST(ExecPool, ConcurrentGangsAdmitFifoWithoutDeadlock) {
  // Several threads race gangs through admission while plain tasks flow:
  // all-or-nothing reservation must neither deadlock nor lose a gang.
  ThreadPool pool(PoolConfig{2, false});
  std::atomic<int> gangs_done{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int rep = 0; rep < 8; ++rep) {
        const std::size_t n = 2 + static_cast<std::size_t>((c + rep) % 3);
        std::atomic<int> arrived{0};
        pool.run_gang(n, [&](std::size_t) {
          arrived.fetch_add(1);
          spin_until(arrived, static_cast<int>(n));
        });
        gangs_done.fetch_add(1);
      }
    });
  }
  std::atomic<int> plain{0};
  ThreadPool::TaskGroup group = pool.group();
  for (int i = 0; i < 32; ++i) group.add([&] { plain.fetch_add(1); });
  group.wait();
  for (auto& t : callers) t.join();
  EXPECT_EQ(gangs_done.load(), 32);
  EXPECT_EQ(plain.load(), 32);
}

TEST(ExecPool, EnsureWorkersResizesOnlyWhenIdle) {
  ThreadPool pool(PoolConfig{2, false});
  EXPECT_TRUE(pool.ensure_workers(3));
  EXPECT_EQ(pool.workers(), 3u);
  EXPECT_TRUE(pool.ensure_workers(3));  // no-op resize to the same size

  // While a gang occupies the pool the resize must refuse.
  std::atomic<int> entered{0};
  std::atomic<int> release{0};
  std::thread gang_caller([&] {
    pool.run_gang(2, [&](std::size_t) {
      entered.fetch_add(1);
      spin_until(release, 1);
    });
  });
  spin_until(entered, 2);
  EXPECT_FALSE(pool.ensure_workers(4));
  EXPECT_EQ(pool.workers(), 3u);
  release.store(1);
  gang_caller.join();

  // The worker that popped the gang's ticket releases its reservation a
  // beat AFTER run_gang returns (the closure count hits zero inside the
  // closure itself), so the idle-only resize may transiently refuse --
  // best-effort is the contract. It must succeed once the lag clears.
  bool resized = false;
  for (int i = 0; i < 1000000 && !(resized = pool.ensure_workers(1)); ++i)
    std::this_thread::yield();
  EXPECT_TRUE(resized);
  EXPECT_EQ(pool.workers(), 1u);
}

TEST(ExecPool, ObservabilityCountersMove) {
  ThreadPool pool(PoolConfig{2, false});
  EXPECT_EQ(pool.queue_depth(), 0u);
  ASSERT_EQ(pool.worker_busy_seconds().size(), 2u);

  std::atomic<int> gate{0};
  ThreadPool::TaskGroup group = pool.group();
  for (int i = 0; i < 16; ++i) {
    group.add([&] {
      spin_until(gate, 1);
      // Measurable busy time even on coarse clocks.
      const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
      while (std::chrono::steady_clock::now() < until) std::this_thread::yield();
    });
  }
  EXPECT_GT(pool.queue_high_water(), 0u);  // 16 tasks were queued behind the gate
  gate.store(1);
  group.wait();
  // Entries the helping waiter ran leave their tickets queued as no-ops;
  // workers drain them asynchronously, so the depth only reaches zero
  // eventually.
  for (int i = 0; i < 1000000 && pool.queue_depth() != 0; ++i) std::this_thread::yield();
  EXPECT_EQ(pool.queue_depth(), 0u);

  const std::vector<double> busy = pool.worker_busy_seconds();
  double total = 0.0;
  for (double b : busy) total += b;
  // The caller helps, so workers need not see all 16 tasks -- but the pool
  // as a whole must have accumulated some busy time unless the caller stole
  // every single task, which the pre-wait gate prevents for 2 workers.
  EXPECT_GE(total, 0.0);
  EXPECT_EQ(busy.size(), 2u);
}

TEST(ExecPool, StressNestedGroupsAndGangs) {
  // The TSan soak: groups nested in tasks, gangs from plain threads and
  // from pool tasks, all interleaved on a deliberately tiny pool.
  ThreadPool pool(PoolConfig{2, false});
  for (int round = 0; round < 4; ++round) {
    std::atomic<int> work{0};
    ThreadPool::TaskGroup outer = pool.group();
    for (int i = 0; i < 6; ++i) {
      outer.add([&] {
        ThreadPool::TaskGroup inner = pool.group();
        for (int j = 0; j < 6; ++j) inner.add([&] { work.fetch_add(1); });
        inner.wait();
        std::atomic<int> arrived{0};
        pool.run_gang(3, [&](std::size_t) {
          arrived.fetch_add(1);
          spin_until(arrived, 3);
          work.fetch_add(1);
        });
      });
    }
    std::thread side([&] {
      std::atomic<int> arrived{0};
      pool.run_gang(5, [&](std::size_t) {
        arrived.fetch_add(1);
        spin_until(arrived, 5);
        work.fetch_add(1);
      });
    });
    outer.wait();
    side.join();
    EXPECT_EQ(work.load(), 6 * 6 + 6 * 3 + 5) << "round " << round;
  }
}

TEST(ExecPool, GlobalPoolExistsAndEnabledByDefault) {
  // The global pool is created on first use; JMH_EXEC_POOL=off would
  // disable it, but the test binary runs with the default environment.
  if (!ThreadPool::enabled()) GTEST_SKIP() << "JMH_EXEC_POOL=off in this environment";
  ThreadPool& pool = ThreadPool::global();
  EXPECT_GE(pool.workers(), 1u);
  std::atomic<int> ran{0};
  ThreadPool::TaskGroup group = pool.group();
  group.add([&] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace jmh::exec
