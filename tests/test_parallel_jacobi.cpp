#include "solve/parallel_jacobi.hpp"

#include <gtest/gtest.h>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"

namespace jmh::solve {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

struct SolverCase {
  ord::OrderingKind kind;
  int d;
  std::size_t m;
};

class InlineSolverTest : public ::testing::TestWithParam<SolverCase> {};

TEST_P(InlineSolverTest, MatchesSequentialReference) {
  const auto [kind, d, m] = GetParam();
  const la::Matrix a = test_matrix(m, 1000 + m);
  const ord::JacobiOrdering ordering(kind, d);
  const DistributedResult dist = solve_inline(a, ordering);
  const la::JacobiResult ref = la::onesided_jacobi_cyclic(a);
  ASSERT_TRUE(dist.converged);
  ASSERT_TRUE(ref.converged);
  EXPECT_LT(la::spectrum_distance(dist.eigenvalues, ref.eigenvalues), 1e-8);
  EXPECT_LT(la::eigenpair_residual(a, dist.eigenvalues, dist.eigenvectors), 1e-9);
  EXPECT_LT(la::orthogonality_defect(dist.eigenvectors), 1e-10);
}

std::vector<SolverCase> solver_cases() {
  std::vector<SolverCase> cases;
  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                    ord::OrderingKind::Degree4, ord::OrderingKind::MinAlpha}) {
    cases.push_back({kind, 1, 8});
    cases.push_back({kind, 2, 16});
    cases.push_back({kind, 3, 16});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, InlineSolverTest, ::testing::ValuesIn(solver_cases()),
                         [](const ::testing::TestParamInfo<SolverCase>& pinfo) {
                           std::string name = ord::to_string(pinfo.param.kind) + "_d" +
                                              std::to_string(pinfo.param.d) + "_m" +
                                              std::to_string(pinfo.param.m);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(InlineSolver, UnevenColumnSplit) {
  // 13 columns over 8 blocks: sizes differ by one; must still be exact.
  const la::Matrix a = test_matrix(13, 77);
  const ord::JacobiOrdering ordering(ord::OrderingKind::PermutedBR, 2);
  const DistributedResult dist = solve_inline(a, ordering);
  const la::JacobiResult ref = la::onesided_jacobi_cyclic(a);
  ASSERT_TRUE(dist.converged);
  EXPECT_LT(la::spectrum_distance(dist.eigenvalues, ref.eigenvalues), 1e-8);
}

TEST(InlineSolver, DiagonalConvergesInZeroSweeps) {
  const la::Matrix a = la::diagonal({4.0, 3.0, 2.0, 1.0, 0.5, -1.0, -2.0, -3.0});
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 1);
  const DistributedResult r = solve_inline(a, ordering);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.sweeps, 0);
}

TEST(InlineSolver, KnownSpectrumRecovered) {
  // NOTE: the spectrum must be free of +/- magnitude ties: one-sided Jacobi
  // converges to the SVD, so eigenvalues lambda and -lambda share a singular
  // subspace and cannot be separated (see test_onesided_jacobi's
  // PlusMinusTieLimitation).
  Xoshiro256 rng(5);
  const std::vector<double> spectrum = {-8.0, -2.5, -1.0, 0.25, 1.5, 2.0, 4.0, 16.0};
  const la::Matrix a = la::symmetric_with_spectrum(spectrum, rng);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 1);
  const DistributedResult r = solve_inline(a, ordering);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(la::spectrum_distance(r.eigenvalues, spectrum), 1e-8);
}

TEST(InlineSolver, RotationCountMatchesPairCoverage) {
  // First sweep of an m=16, d=2 solve touches every pair at most once:
  // m(m-1)/2 = 120 rotations is the per-sweep ceiling.
  const la::Matrix a = test_matrix(16, 9);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 2);
  SolveOptions opts;
  opts.max_sweeps = 1;
  const DistributedResult r = solve_inline(a, ordering, opts);
  EXPECT_LE(r.rotations, 120u);
  EXPECT_GT(r.rotations, 100u);  // random matrix: almost every pair rotates
}

TEST(MpiSolver, AgreesWithInlineSolver) {
  const la::Matrix a = test_matrix(16, 21);
  const ord::JacobiOrdering ordering(ord::OrderingKind::PermutedBR, 2);
  const DistributedResult inline_r = solve_inline(a, ordering);
  const DistributedResult mpi_r = solve_mpi(a, ordering);
  ASSERT_TRUE(mpi_r.converged);
  EXPECT_EQ(mpi_r.sweeps, inline_r.sweeps);
  EXPECT_LT(la::spectrum_distance(mpi_r.eigenvalues, inline_r.eigenvalues), 1e-12);
  EXPECT_LT(la::Matrix::max_abs_diff(mpi_r.eigenvectors, inline_r.eigenvectors), 1e-12);
}

TEST(MpiSolver, AllOrderingsConvergeOnThreads) {
  const la::Matrix a = test_matrix(16, 33);
  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::Degree4}) {
    const ord::JacobiOrdering ordering(kind, 2);
    const DistributedResult r = solve_mpi(a, ordering);
    ASSERT_TRUE(r.converged) << ord::to_string(kind);
    EXPECT_LT(la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors), 1e-9);
  }
}

TEST(MpiSolver, LargerCube) {
  const la::Matrix a = test_matrix(32, 55);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 3);
  const DistributedResult r = solve_mpi(a, ordering);
  ASSERT_TRUE(r.converged);
  const la::JacobiResult ref = la::onesided_jacobi_cyclic(a);
  EXPECT_LT(la::spectrum_distance(r.eigenvalues, ref.eigenvalues), 1e-8);
}

TEST(Solver, NonSquareRejected) {
  la::Matrix a(3, 4);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, 1);
  EXPECT_THROW(solve_inline(a, ordering), std::invalid_argument);
}

}  // namespace
}  // namespace jmh::solve
