#include "pipe/report.hpp"

#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace jmh {
namespace {

pipe::ProblemParams small_problem() {
  pipe::ProblemParams p;
  p.d = 4;
  p.m = 1 << 12;
  return p;
}

TEST(SweepBreakdown, ListsAllPhasesAndSumsToTotal) {
  const auto prob = small_problem();
  const pipe::MachineParams machine;
  const auto c = pipe::sweep_cost_pipelined(ord::OrderingKind::PermutedBR, prob, machine);
  ASSERT_EQ(c.phase_cost.size(), 4u);
  double sum = c.overhead;
  for (double pc : c.phase_cost) sum += pc;
  EXPECT_NEAR(sum, c.total, 1e-6);
}

TEST(SweepBreakdown, RenderContainsEveryPhase) {
  const auto text = pipe::render_sweep_breakdown(ord::OrderingKind::Degree4, small_problem(),
                                                 pipe::MachineParams{});
  for (const char* needle : {"phase e", "divisions", "total", "degree-4"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(SweepBreakdown, LargestPhaseDominates) {
  const auto prob = small_problem();
  const auto c =
      pipe::sweep_cost_pipelined(ord::OrderingKind::BR, prob, pipe::MachineParams{});
  // Exchange phase d has 2^d - 1 of the 2^{d+1} - 1 steps; it must be the
  // most expensive phase.
  for (std::size_t i = 1; i < c.phase_cost.size(); ++i)
    EXPECT_GE(c.phase_cost[0], c.phase_cost[i]);
}

TEST(OrderingSummary, MentionsAllOrderings) {
  const auto text = pipe::render_ordering_summary(small_problem(), pipe::MachineParams{});
  for (const char* needle : {"BR", "permuted-BR", "degree-4", "min-alpha", "lower-bound"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(Trace, StageTimelineShape) {
  sim::SimResult r;
  r.stage_times = {10.0, 20.0, 5.0};
  r.makespan = 35.0;
  const auto text = sim::render_stage_timeline(r, 20);
  EXPECT_NE(text.find("stages: 3"), std::string::npos);
  // The longest stage gets the full-width bar.
  EXPECT_NE(text.find(std::string(20, '#')), std::string::npos);
}

TEST(Trace, EmptyTimeline) {
  const auto text = sim::render_stage_timeline(sim::SimResult{}, 10);
  EXPECT_NE(text.find("stages: 0"), std::string::npos);
}

TEST(Trace, LinkUtilizationRows) {
  sim::SimResult r;
  r.makespan = 100.0;
  r.link_busy = {50.0, 0.0, 50.0, 0.0};  // 2 nodes x 2 dims, dim 0 busy half
  const auto text = sim::render_link_utilization(r, 2, 10);
  EXPECT_NE(text.find("dim 0"), std::string::npos);
  EXPECT_NE(text.find("dim 1"), std::string::npos);
  EXPECT_NE(text.find("50.0%"), std::string::npos);
  EXPECT_NE(text.find("0.0%"), std::string::npos);
}

TEST(Trace, MismatchedSizesRejected) {
  sim::SimResult r;
  r.link_busy = {1.0, 2.0, 3.0};
  EXPECT_THROW(sim::render_link_utilization(r, 2, 10), std::invalid_argument);
}

}  // namespace
}  // namespace jmh
