#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace jmh::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(q.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, NowAdvancesDuringRun) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(5.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
}

TEST(EventQueue, ActionsCanScheduleMore) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.schedule_in(2.0, [&] { times.push_back(q.now()); });
  });
  EXPECT_DOUBLE_EQ(q.run(), 3.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule(2.0, [&] {
    EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
  });
  q.run();
}

TEST(EventQueue, StepOneAtATime) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  EXPECT_EQ(q.pending(), 2u);
  q.step();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.step();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.step(), std::invalid_argument);
}

TEST(EventQueue, EmptyRunReturnsZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.run(), 0.0);
}

TEST(EventQueue, CascadedChainReachesDepth) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) q.schedule_in(1.0, chain);
  };
  q.schedule(0.0, chain);
  EXPECT_DOUBLE_EQ(q.run(), 99.0);
  EXPECT_EQ(depth, 100);
}

}  // namespace
}  // namespace jmh::sim
