#include "la/rotation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "la/sym_gen.hpp"

namespace jmh::la {
namespace {

TEST(Rotation, SkipsConvergedPair) {
  const auto d = compute_rotation(4.0, 9.0, 1e-15);
  EXPECT_FALSE(d.rotate);
  EXPECT_EQ(d.c, 1.0);
  EXPECT_EQ(d.s, 0.0);
}

TEST(Rotation, RotatesSignificantPair) {
  const auto d = compute_rotation(4.0, 9.0, 2.0);
  EXPECT_TRUE(d.rotate);
  EXPECT_NEAR(d.c * d.c + d.s * d.s, 1.0, 1e-14);
}

TEST(Rotation, ZeroesTheDotProduct) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(12), y(12);
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    for (auto& v : y) v = rng.uniform(-2.0, 2.0);
    const double bii = dot(x, x), bjj = dot(y, y), bij = dot(x, y);
    const auto d = compute_rotation(bii, bjj, bij, 1e-14);
    if (!d.rotate) continue;
    apply_rotation(x, y, d.c, d.s);
    const double scale = std::sqrt(dot(x, x) * dot(y, y));
    EXPECT_NEAR(dot(x, y) / scale, 0.0, 1e-12) << "trial " << trial;
  }
}

TEST(Rotation, PreservesFrobeniusNormOfThePair) {
  Xoshiro256 rng(5);
  std::vector<double> x(8), y(8);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);
  const double before = dot(x, x) + dot(y, y);
  const auto d = compute_rotation(dot(x, x), dot(y, y), dot(x, y), 1e-14);
  ASSERT_TRUE(d.rotate);
  apply_rotation(x, y, d.c, d.s);
  EXPECT_NEAR(dot(x, x) + dot(y, y), before, 1e-12);
}

TEST(Rotation, PairColumnsUpdatesBothMatrices) {
  Xoshiro256 rng(9);
  Matrix b = random_uniform_symmetric(6, rng);
  Matrix v = Matrix::identity(6);
  const bool rotated = pair_columns(b, v, 0, 3, 1e-14);
  ASSERT_TRUE(rotated);
  EXPECT_NEAR(dot(b.col(0), b.col(3)) /
                  std::sqrt(dot(b.col(0), b.col(0)) * dot(b.col(3), b.col(3))),
              0.0, 1e-12);
  // V columns 0 and 3 now hold the rotation's cosine/sine pattern.
  EXPECT_NE(v(0, 0), 1.0);
  EXPECT_NEAR(dot(v.col(0), v.col(0)), 1.0, 1e-14);
  EXPECT_NEAR(dot(v.col(0), v.col(3)), 0.0, 1e-14);
}

TEST(Rotation, SelfPairRejected) {
  Matrix b = Matrix::identity(3);
  Matrix v = Matrix::identity(3);
  EXPECT_THROW(pair_columns(b, v, 1, 1), std::invalid_argument);
}

TEST(Rotation, MismatchedSpansRejected) {
  std::vector<double> x(3), y(4);
  EXPECT_THROW(apply_rotation(x, y, 1.0, 0.0), std::invalid_argument);
}

TEST(Rotation, StableForTinyOffDiagonal) {
  // Huge tau: rotation angle ~ bij / (bjj - bii); must not overflow.
  const auto d = compute_rotation(1.0, 1e12, 1.0, 0.0);
  ASSERT_TRUE(d.rotate);
  EXPECT_NEAR(d.c, 1.0, 1e-9);
  EXPECT_NEAR(d.s, 1e-12, 1e-13);
}

}  // namespace
}  // namespace jmh::la
