#include "la/brent_luk.hpp"

#include <gtest/gtest.h>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"

namespace jmh::la {
namespace {

TEST(BrentLuk, RoundsAreDisjointPairings) {
  const std::size_t m = 12;
  for (std::size_t round = 0; round + 1 < m; ++round) {
    const auto pairs = brent_luk_round(m, round);
    ASSERT_EQ(pairs.size(), m / 2);
    std::vector<bool> used(m, false);
    for (auto [i, j] : pairs) {
      ASSERT_LT(i, m);
      ASSERT_LT(j, m);
      EXPECT_NE(i, j);
      EXPECT_FALSE(used[i]);
      EXPECT_FALSE(used[j]);
      used[i] = used[j] = true;
    }
  }
}

TEST(BrentLuk, SweepCoversAllPairsOnce) {
  for (std::size_t m : {4u, 8u, 10u, 16u}) {
    EXPECT_TRUE(is_complete_pattern(brent_luk_sweep(m), m)) << m;
  }
}

TEST(BrentLuk, ColumnZeroAlwaysPlays) {
  const std::size_t m = 8;
  for (std::size_t round = 0; round + 1 < m; ++round) {
    const auto pairs = brent_luk_round(m, round);
    const bool zero_plays = std::any_of(pairs.begin(), pairs.end(), [](const auto& p) {
      return p.first == 0 || p.second == 0;
    });
    EXPECT_TRUE(zero_plays) << round;
  }
}

TEST(BrentLuk, RejectsOddOrZeroM) {
  EXPECT_THROW(brent_luk_round(7, 0), std::invalid_argument);
  EXPECT_THROW(brent_luk_round(0, 0), std::invalid_argument);
  EXPECT_THROW(brent_luk_round(8, 7), std::invalid_argument);
}

TEST(BrentLuk, SolvesEigenproblem) {
  Xoshiro256 rng(61);
  const Matrix a = random_uniform_symmetric(16, rng);
  const auto r = onesided_jacobi(a, brent_luk_provider(16));
  ASSERT_TRUE(r.converged);
  const auto ref = onesided_jacobi_cyclic(a);
  EXPECT_LT(spectrum_distance(r.eigenvalues, ref.eigenvalues), 1e-9);
  EXPECT_LT(eigenpair_residual(a, r.eigenvalues, r.eigenvectors), 1e-10);
}

TEST(BrentLuk, ConvergenceComparableToCyclic) {
  // Round-robin vs row-cyclic: both converge within a couple of sweeps of
  // each other on random symmetric matrices.
  Xoshiro256 rng(67);
  const Matrix a = random_uniform_symmetric(24, rng);
  const auto bl = onesided_jacobi(a, brent_luk_provider(24));
  const auto cy = onesided_jacobi_cyclic(a);
  ASSERT_TRUE(bl.converged && cy.converged);
  EXPECT_NEAR(static_cast<double>(bl.sweeps), static_cast<double>(cy.sweeps), 3.0);
}

}  // namespace
}  // namespace jmh::la
