// SimTransport: correct eigenpairs plus a modeled clock that matches the
// analytical communication model of pipe/cost_model.
//
// With m divisible by 2^{d+1} every transition ships exactly the model's
// S = m^2/2^d elements, so the charged per-sweep transition time equals the
// closed form sweep_cost_unpipelined to round-off; the convergence votes
// (which the analytical model omits) are tracked separately and are small,
// keeping the total within the 2x acceptance band.
#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"
#include "pipe/cost_model.hpp"
#include "solve/sim_transport.hpp"

namespace jmh::solve {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

class SimCostParityTest : public ::testing::TestWithParam<int> {};

TEST_P(SimCostParityTest, UnpipelinedSweepMatchesCostModel) {
  const int d = GetParam();
  const std::size_t m = 32;  // divisible by 2^{d+1} for d in {2, 3}
  const la::Matrix a = test_matrix(m, 1000 + static_cast<std::uint64_t>(d));
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, d);

  SimSolveOptions opts;  // default MachineParams: ts = 1000, tw = 100
  const SimSolveResult r = solve_sim(a, ordering, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors), 1e-9);

  pipe::ProblemParams prob;
  prob.d = d;
  prob.m = static_cast<double>(m);
  const double model_sweep = pipe::sweep_cost_unpipelined(prob, opts.machine);

  // Transition charges alone reproduce the closed form exactly.
  ASSERT_GT(r.modeled_sweeps, 0);
  const double sim_sweep = (r.modeled_time - r.vote_time) / r.modeled_sweeps;
  EXPECT_NEAR(sim_sweep, model_sweep, 1e-6 * model_sweep);

  // Acceptance band: total modeled time (votes included) per sweep within
  // 2x of the analytical per-sweep communication prediction.
  const double total_per_sweep = r.modeled_time / r.modeled_sweeps;
  EXPECT_GE(total_per_sweep, 0.5 * model_sweep);
  EXPECT_LE(total_per_sweep, 2.0 * model_sweep);

  EXPECT_GT(r.mean_link_utilization(), 0.0);
  EXPECT_LE(r.mean_link_utilization(), 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Dims, SimCostParityTest, ::testing::Values(2, 3),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           // Built by append, not operator+(const char*,
                           // string&&): the latter trips a gcc 12 -Wrestrict
                           // false positive once inlined.
                           std::string name = "d";
                           name += std::to_string(pinfo.param);
                           return name;
                         });

TEST(SimTransport, PipelinedChargingMatchesPhaseCostModel) {
  const int d = 3;
  const std::size_t m = 32;
  const la::Matrix a = test_matrix(m, 7);
  const ord::JacobiOrdering ordering(ord::OrderingKind::BR, d);

  SimSolveOptions opts;
  opts.pipelined_q = 2;
  const SimSolveResult r = solve_sim(a, ordering, opts);
  ASSERT_TRUE(r.converged);

  // Expected per-sweep comm: each exchange phase at degree q (the sigma
  // rotation relabels links and leaves the cost invariant), plus d division
  // transitions and the last transition at full block size.
  pipe::ProblemParams prob;
  prob.d = d;
  prob.m = static_cast<double>(m);
  const double s = prob.step_message_elems();
  double expected = static_cast<double>(d + 1) * pipe::transition_cost(opts.machine, s);
  for (int e = d; e >= 1; --e)
    expected +=
        pipe::phase_cost_pipelined(ordering.exchange_sequence(e), 2, s, opts.machine);

  const double sim_sweep = (r.modeled_time - r.vote_time) / r.modeled_sweeps;
  EXPECT_NEAR(sim_sweep, expected, 1e-6 * expected);

  // Numerics are unchanged by the modeled pipelining.
  const SimSolveResult plain = solve_sim(a, ordering);
  EXPECT_EQ(plain.sweeps, r.sweeps);
  EXPECT_LT(la::spectrum_distance(plain.eigenvalues, r.eigenvalues), 1e-15);
}

TEST(SimTransport, VoteTimeIsSmallAndPositive) {
  const la::Matrix a = test_matrix(16, 5);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, 2);
  const SimSolveResult r = solve_sim(a, ordering);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.vote_time, 0.0);
  EXPECT_LT(r.vote_time, r.modeled_time);
}

}  // namespace
}  // namespace jmh::solve
