#!/usr/bin/env python3
"""Golden cases for the lint tooling (tools/lint/).

Each case materializes a miniature repository in a temp directory and runs
the real linter binaries against it, asserting both the exit code and that
the expected diagnostic is printed. This is the regression suite for the
linters themselves -- the C++ AllocGuard counterpart lives in
tests/test_alloc_guard.cpp.

Registered in ctest as `lint_golden`; also runnable directly:
    python3 tests/lint/test_lint_golden.py
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
CHECK_LAYERS = REPO / "tools" / "lint" / "check_layers.py"
RUN_TIDY = REPO / "tools" / "lint" / "run_tidy.py"

MANIFEST = """\
[layers.common]
deps = []

[layers.la]
deps = ["common"]

[layers.ord]
deps = ["common", "la"]

[toplevel]
dirs = ["tests", "bench", "examples"]
"""

HDR = '#pragma once\n'


def write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")


def run_layers(root: Path, manifest: str = MANIFEST) -> subprocess.CompletedProcess:
    (root / "tools" / "lint").mkdir(parents=True, exist_ok=True)
    (root / "tools" / "lint" / "layers.toml").write_text(manifest, encoding="utf-8")
    return subprocess.run(
        [sys.executable, str(CHECK_LAYERS), "--root", str(root)],
        capture_output=True, text=True)


class CheckLayersGolden(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def test_clean_tree_passes(self):
        write_tree(self.root, {
            "src/common/util.hpp": HDR,
            "src/la/matrix.hpp": HDR + '#include "common/util.hpp"\n',
            "src/la/matrix.cpp": '#include "la/matrix.hpp"\n',
            "tests/test_matrix.cpp": '#include "la/matrix.hpp"\n',
        })
        proc = run_layers(self.root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_forbidden_upward_include_fails(self):
        # la is below ord in the DAG; an la -> ord include is the canonical
        # layering break this linter exists to catch.
        write_tree(self.root, {
            "src/common/util.hpp": HDR,
            "src/ord/ordering.hpp": HDR,
            "src/la/matrix.hpp": HDR + '#include "ord/ordering.hpp"\n',
        })
        proc = run_layers(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("layer 'la' may not include \"ord/ordering.hpp\"", proc.stdout)

    def test_sanctioned_exception_is_accepted_and_impl_only(self):
        manifest = MANIFEST + """
[[exception]]
file = "src/la/bridge.cpp"
include = "ord/ordering.hpp"
justification = "golden case: sanctioned upward impl-only edge"
"""
        write_tree(self.root, {
            "src/common/util.hpp": HDR,
            "src/ord/ordering.hpp": HDR,
            "src/la/bridge.hpp": HDR,
            "src/la/bridge.cpp": '#include "la/bridge.hpp"\n#include "ord/ordering.hpp"\n',
        })
        proc = run_layers(self.root, manifest)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_unlisted_exception_header_fails(self):
        # The same edge WITHOUT the manifest grant must fail: exceptions are
        # per-(file, include), not per-layer.
        write_tree(self.root, {
            "src/common/util.hpp": HDR,
            "src/ord/ordering.hpp": HDR,
            "src/la/bridge.hpp": HDR,
            "src/la/bridge.cpp": '#include "la/bridge.hpp"\n#include "ord/ordering.hpp"\n',
        })
        proc = run_layers(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("upward edges need an [[exception]] entry", proc.stdout)

    def test_stale_exception_fails(self):
        manifest = MANIFEST + """
[[exception]]
file = "src/la/gone.cpp"
include = "ord/ordering.hpp"
justification = "golden case: the file was deleted but the grant remains"
"""
        write_tree(self.root, {
            "src/common/util.hpp": HDR,
            "src/ord/ordering.hpp": HDR,
        })
        proc = run_layers(self.root, manifest)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("stale [[exception]]", proc.stdout)

    def test_missing_pragma_once_fails(self):
        write_tree(self.root, {
            "src/common/util.hpp": "// no include guard of any kind\n",
        })
        proc = run_layers(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("lacks '#pragma once'", proc.stdout)

    def test_relative_include_fails(self):
        write_tree(self.root, {
            "src/common/util.hpp": HDR,
            "src/la/matrix.hpp": HDR + '#include "../common/util.hpp"\n',
        })
        proc = run_layers(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("relative include", proc.stdout)

    def test_cpp_without_header_pair_fails(self):
        write_tree(self.root, {
            "src/la/orphan.cpp": "int la_orphan;\n",
        })
        proc = run_layers(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no header pair", proc.stdout)

    def test_real_repo_manifest_is_clean(self):
        # The repo itself must conform to its own committed manifest.
        proc = subprocess.run([sys.executable, str(CHECK_LAYERS)],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


class NolintDisciplineGolden(unittest.TestCase):
    def run_tidy_on(self, content: str) -> subprocess.CompletedProcess:
        with tempfile.TemporaryDirectory() as tmp:
            f = Path(tmp) / "case.cpp"
            f.write_text(content, encoding="utf-8")
            return subprocess.run(
                [sys.executable, str(RUN_TIDY), str(f)],
                capture_output=True, text=True)

    def test_bare_nolint_fails(self):
        proc = self.run_tidy_on("int x = 0;  // NOLINT\n")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("bare NOLINT", proc.stderr)

    def test_named_nolint_without_reason_fails(self):
        proc = self.run_tidy_on("int x = 0;  // NOLINT(bugprone-foo)\n")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("bare NOLINT", proc.stderr)

    def test_block_suppression_fails(self):
        proc = self.run_tidy_on("// NOLINTBEGIN(bugprone-foo)\nint x = 0;\n")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("NOLINTBEGIN", proc.stderr)

    def test_named_nolint_with_reason_passes(self):
        proc = self.run_tidy_on(
            "int x = 0;  // NOLINT(bugprone-foo): golden case, sanctioned\n")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_repo_nolint_discipline_is_clean(self):
        proc = subprocess.run([sys.executable, str(RUN_TIDY)],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
