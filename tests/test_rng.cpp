#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace jmh {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntervalInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanNearCenter) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(-1.0, 1.0);
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.below(10);
    ASSERT_LT(x, 10u);
    ++counts[static_cast<std::size_t>(x)];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64_next(s);
  const std::uint64_t b = splitmix64_next(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace jmh
