// svc::Metrics snapshot consistency: the counters are lock-free atomics,
// and the documented write order (failed before its taxonomy bucket,
// submitted before any completion) plus read order (taxonomy, then failed,
// then done, then submitted) guarantee that EVERY snapshot -- however racy
// the traffic -- satisfies
//   jobs_deadline + jobs_cancelled + jobs_corrupt + jobs_invalid <= jobs_failed
//   jobs_done + jobs_failed <= jobs_submitted
// This suite hammers those invariants from a concurrent reader while
// workers churn through a success / invalid-spec / tight-deadline job mix.
// Run under TSan (the CI sanitizer job includes it) to machine-check the
// atomics discipline, not just the arithmetic.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "la/sym_gen.hpp"
#include "svc/service.hpp"

namespace jmh::svc {
namespace {

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

void expect_invariants(const Metrics& m, const char* when) {
  EXPECT_LE(m.jobs_deadline + m.jobs_cancelled + m.jobs_corrupt + m.jobs_invalid,
            m.jobs_failed)
      << when << ": taxonomy buckets exceeded the failed total";
  EXPECT_LE(m.jobs_done + m.jobs_failed, m.jobs_submitted)
      << when << ": completions exceeded submissions";
}

TEST(MetricsSnapshot, InvariantsHoldUnderConcurrentReads) {
  SolverService service({.workers = 2, .queue_capacity = 16});

  // The reader: snapshot as fast as possible for the whole traffic burst.
  // Under TSan this is the machine check that metrics() tears nothing.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      expect_invariants(service.metrics(), "mid-traffic");
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Mixed traffic: successes, malformed specs (-> jobs_invalid under
  // jobs_failed), and 1 ms deadlines on real solves (some expire in queue
  // or mid-solve -> jobs_deadline, some still succeed -- both legal).
  const std::string good = "backend=inline,ordering=d4,m=16,d=2";
  const std::string bad = "backend=inline,ordering=d4,m=16,d=2,zzz=1";
  std::vector<std::future<api::SolveReport>> futures;
  futures.reserve(90);
  for (int round = 0; round < 30; ++round) {
    futures.push_back(service.submit(good, test_matrix(16, 100 + round)));
    futures.push_back(service.submit(bad, test_matrix(16, 200 + round)));
    futures.push_back(
        service.submit(good, test_matrix(16, 300 + round), {.deadline_ms = 1}));
  }
  service.drain();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GT(snapshots.load(), 0u);

  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const std::exception&) {
      // Failure class already audited through the metrics taxonomy.
    }
  }

  // Quiescent totals: exact accounting once the traffic has drained.
  const Metrics m = service.metrics();
  expect_invariants(m, "quiescent");
  EXPECT_EQ(m.jobs_submitted, 90u);
  EXPECT_EQ(m.jobs_done + m.jobs_failed, 90u);
  EXPECT_GE(m.jobs_invalid, 30u) << "every malformed spec must land in jobs_invalid";
  EXPECT_EQ(m.jobs_deadline + m.jobs_cancelled + m.jobs_corrupt + m.jobs_invalid,
            m.jobs_failed)
      << "quiescent: every failed job carries exactly one taxonomy bucket";
}

// shutdown_now cancels in-flight work: cancellations must flow through the
// same ordered taxonomy (cancelled <= failed) under a racing reader.
TEST(MetricsSnapshot, InvariantsHoldAcrossAbruptShutdown) {
  auto service = std::make_unique<SolverService>(
      ServiceConfig{.workers = 2, .queue_capacity = 32});
  const std::string spec = "backend=inline,ordering=d4,m=32,d=2";
  std::vector<std::future<api::SolveReport>> futures;
  futures.reserve(24);
  for (int i = 0; i < 24; ++i)
    futures.push_back(service->submit(spec, test_matrix(32, 1000 + i)));

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed))
      expect_invariants(service->metrics(), "during shutdown_now");
  });
  service->shutdown_now();
  const Metrics m = service->metrics();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  service.reset();

  expect_invariants(m, "after shutdown_now");
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace jmh::svc
