#include "net/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace jmh::net {
namespace {

TEST(Mailbox, DeliverThenReceive) {
  Mailbox mb;
  mb.deliver({1, 7, 0, {1.0, 2.0}});
  const Message m = mb.receive(1, 7);
  EXPECT_EQ(m.source, 1);
  EXPECT_EQ(m.tag, 7);
  EXPECT_EQ(m.data, (Payload{1.0, 2.0}));
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, MatchingBySourceAndTag) {
  Mailbox mb;
  mb.deliver({1, 5, 0, {1.0}});
  mb.deliver({2, 5, 0, {2.0}});
  mb.deliver({1, 6, 0, {3.0}});
  EXPECT_EQ(mb.receive(1, 6).data[0], 3.0);
  EXPECT_EQ(mb.receive(2, 5).data[0], 2.0);
  EXPECT_EQ(mb.receive(1, 5).data[0], 1.0);
}

TEST(Mailbox, FifoPerSourceTag) {
  Mailbox mb;
  mb.deliver({0, 1, 0, {10.0}});
  mb.deliver({0, 1, 1, {20.0}});
  EXPECT_EQ(mb.receive(0, 1).data[0], 10.0);
  EXPECT_EQ(mb.receive(0, 1).data[0], 20.0);
}

TEST(Mailbox, Probe) {
  Mailbox mb;
  EXPECT_FALSE(mb.probe(0, 0));
  mb.deliver({0, 0, 0, {}});
  EXPECT_TRUE(mb.probe(0, 0));
  EXPECT_FALSE(mb.probe(0, 1));
  EXPECT_FALSE(mb.probe(1, 0));
}

TEST(Mailbox, BlockingReceiveWakesOnDelivery) {
  Mailbox mb;
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.deliver({3, 9, 0, {42.0}});
  });
  const Message m = mb.receive(3, 9);
  sender.join();
  EXPECT_EQ(m.data[0], 42.0);
}

TEST(Mailbox, PoisonMatchesAnyReceive) {
  Mailbox mb;
  mb.deliver({kPoisonSource, 0, 0, {}});
  const Message m = mb.receive(5, 123);
  EXPECT_EQ(m.source, kPoisonSource);
  // Poison stays queued for further receivers.
  EXPECT_EQ(mb.receive(6, 7).source, kPoisonSource);
}

TEST(Mailbox, ClearEmpties) {
  Mailbox mb;
  mb.deliver({0, 0, 0, {}});
  mb.deliver({1, 0, 0, {}});
  mb.clear();
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, ConcurrentDeliveries) {
  Mailbox mb;
  constexpr int kPerThread = 200;
  std::thread a([&] {
    for (int i = 0; i < kPerThread; ++i) mb.deliver({0, 1, 0, {static_cast<double>(i)}});
  });
  std::thread b([&] {
    for (int i = 0; i < kPerThread; ++i) mb.deliver({1, 1, 0, {static_cast<double>(i)}});
  });
  a.join();
  b.join();
  // FIFO per source must be preserved under concurrency.
  for (int i = 0; i < kPerThread; ++i) {
    EXPECT_EQ(mb.receive(0, 1).data[0], static_cast<double>(i));
    EXPECT_EQ(mb.receive(1, 1).data[0], static_cast<double>(i));
  }
}

}  // namespace
}  // namespace jmh::net
