#include "common/bitops.hpp"

#include <gtest/gtest.h>

namespace jmh {
namespace {

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bitops, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1ull << 50), 50);
  EXPECT_THROW(ilog2(0), std::invalid_argument);
}

TEST(Bitops, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(4), 2);
  EXPECT_EQ(ilog2_ceil(5), 3);
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(127, 7), 19u);  // the paper's e=7 lower bound
  EXPECT_THROW(ceil_div(1, 0), std::invalid_argument);
}

TEST(Bitops, GrayCodeAdjacentDifferInOneBit) {
  for (std::uint64_t i = 0; i + 1 < 256; ++i) {
    const std::uint64_t diff = gray_code(i) ^ gray_code(i + 1);
    EXPECT_TRUE(is_pow2(diff)) << "i=" << i;
  }
}

TEST(Bitops, GrayRankInvertsGrayCode) {
  for (std::uint64_t i = 0; i < 1024; ++i) EXPECT_EQ(gray_rank(gray_code(i)), i);
}

TEST(Bitops, GrayCodeIsPermutation) {
  std::vector<bool> seen(256, false);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const std::uint64_t g = gray_code(i);
    ASSERT_LT(g, 256u);
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
}

}  // namespace
}  // namespace jmh
