#include "cube/embedding.hpp"

#include <gtest/gtest.h>

namespace jmh::cube {
namespace {

TEST(Embedding, RoundTrip) {
  const int d = 5;
  for (std::uint64_t pos = 0; pos < (1u << d); ++pos)
    EXPECT_EQ(cube_to_ring(d, ring_to_cube(d, pos)), pos);
}

TEST(Embedding, DilationOne) {
  // Consecutive ring positions map to cube neighbors -- including the
  // wraparound edge.
  const int d = 6;
  const Hypercube cube(d);
  for (std::uint64_t pos = 0; pos < cube.num_nodes(); ++pos) {
    const Node a = ring_to_cube(d, pos);
    const Node b = ring_to_cube(d, pos + 1);  // pos+1 wraps via modulo
    EXPECT_EQ(cube.distance(a, b), 1) << pos;
  }
}

TEST(Embedding, StepLinksAreValid) {
  const int d = 4;
  const Hypercube cube(d);
  for (std::uint64_t pos = 0; pos < cube.num_nodes(); ++pos) {
    const Link l = ring_step_link(d, pos);
    EXPECT_TRUE(cube.valid_link(l));
    EXPECT_EQ(cube.neighbor(ring_to_cube(d, pos), l), ring_to_cube(d, pos + 1));
  }
}

TEST(Embedding, WraparoundUsesTopDimension) {
  // Gray code: last word is 100..0, so the wrap edge flips the top bit.
  const int d = 5;
  EXPECT_EQ(ring_step_link(d, (1u << d) - 1), d - 1);
}

TEST(Embedding, EmbeddingIsPermutation) {
  const int d = 5;
  const auto ring = ring_embedding(d);
  std::vector<bool> seen(1u << d, false);
  for (Node n : ring) {
    ASSERT_LT(n, 1u << d);
    EXPECT_FALSE(seen[n]);
    seen[n] = true;
  }
}

TEST(Embedding, StepLinkHistogramIsBrLike) {
  // The Gray ring uses link i exactly 2^{d-1-i} times per lap (plus the
  // wrap edge on link d-1): the same geometric histogram as D_d^BR -- the
  // structural reason BR-style sequences hammer link 0.
  const int d = 6;
  std::vector<int> hist(d, 0);
  for (std::uint64_t pos = 0; pos < (1u << d); ++pos) ++hist[ring_step_link(d, pos)];
  for (int i = 0; i + 1 < d; ++i) EXPECT_EQ(hist[i], 1 << (d - 1 - i)) << i;
  EXPECT_EQ(hist[d - 1], 2);  // closing edge adds one to the top dimension
}

}  // namespace
}  // namespace jmh::cube
