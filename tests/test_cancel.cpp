// common::CancelToken and cooperative cancellation through the solve stack:
// token semantics (latching, parent chains, deadlines), pre-cancelled and
// mid-solve cancellation on every backend, and the bit-parity guarantee
// that an armed-but-never-fired token changes nothing about the numbers.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "api/solver.hpp"
#include "common/cancel.hpp"
#include "la/sym_gen.hpp"

namespace jmh::api {
namespace {

using common::CancelReason;
using common::CancelToken;

la::Matrix test_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return la::random_uniform_symmetric(n, rng);
}

TEST(CancelToken, DefaultTokenIsInertForever) {
  const CancelToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_EQ(token.fired(), CancelReason::None);
  EXPECT_EQ(token.poll(), CancelReason::None);
  token.cancel(CancelReason::Cancelled);  // no-op on an inert token
  EXPECT_EQ(token.poll(), CancelReason::None);
}

TEST(CancelToken, FirstReasonWinsAndLatches) {
  const CancelToken token = CancelToken::source();
  EXPECT_TRUE(token.armed());
  EXPECT_EQ(token.fired(), CancelReason::None);
  token.cancel(CancelReason::Cancelled);
  EXPECT_EQ(token.fired(), CancelReason::Cancelled);
  EXPECT_EQ(token.poll(), CancelReason::Cancelled);
  token.cancel(CancelReason::DeadlineExceeded);  // too late: latched
  EXPECT_EQ(token.poll(), CancelReason::Cancelled);
}

TEST(CancelToken, DeadlineFiresOnPoll) {
  const CancelToken token =
      CancelToken::source().with_timeout(std::chrono::nanoseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // fired() is the flag-only fast path: it cannot observe the deadline
  // until a poll() latches it.
  EXPECT_EQ(token.poll(), CancelReason::DeadlineExceeded);
  EXPECT_EQ(token.fired(), CancelReason::DeadlineExceeded);
}

TEST(CancelToken, ParentCancellationReachesChildren) {
  const CancelToken root = CancelToken::source();
  const CancelToken child = root.with_timeout(std::chrono::hours(1));
  EXPECT_EQ(child.poll(), CancelReason::None);
  root.cancel(CancelReason::Cancelled);
  EXPECT_EQ(child.poll(), CancelReason::Cancelled);
  // The child latched the parent's reason into its own state: the fast
  // path sees it without another walk.
  EXPECT_EQ(child.fired(), CancelReason::Cancelled);
}

TEST(Cancellation, PreCancelledTokenAbortsBeforeSweepOneOnEveryBackend) {
  const la::Matrix a = test_matrix(16, 31);
  const CancelToken token = CancelToken::source();
  token.cancel(CancelReason::Cancelled);
  for (const char* backend : {"inline", "mpi", "sim"}) {
    const SolvePlan plan = Solver::plan(
        SolverSpec::parse("backend=" + std::string(backend) + ",ordering=d4,m=16,d=2"));
    try {
      plan.solve(a, {.cancel = token});
      FAIL() << backend << ": a pre-cancelled solve must not produce a report";
    } catch (const SolveError& e) {
      EXPECT_EQ(e.status(), SolveStatus::Cancelled) << backend;
    }
  }
}

TEST(Cancellation, DeadlineExceededOnEveryBackend) {
  const la::Matrix a = test_matrix(16, 32);
  // Injected 5ms-per-step delays against a 1ms deadline guarantee the
  // first sweep-boundary check fires, machine speed aside.
  for (const char* scenario :
       {"backend=inline,ordering=d4,m=16,d=2,deadline_ms=1,faults=2:0:1:5000:0",
        "backend=mpi,ordering=d4,m=16,d=2,deadline_ms=1,faults=2:0:1:5000:0",
        "backend=mpi,ordering=d4,m=16,d=2,pipeline=2,deadline_ms=1,faults=2:0:1:5000:0",
        "backend=sim,ordering=d4,m=16,d=2,deadline_ms=1,faults=2:0:1:5000:0"}) {
    try {
      Solver::solve(SolverSpec::parse(scenario), a);
      FAIL() << scenario << ": the deadline must fire before convergence";
    } catch (const SolveError& e) {
      EXPECT_EQ(e.status(), SolveStatus::DeadlineExceeded) << scenario;
    }
  }
}

TEST(Cancellation, MidSolveCancelFromAnotherThread) {
  const la::Matrix a = test_matrix(16, 33);
  // Delay faults stretch each step to 2ms so the canceller lands mid-sweep;
  // the solve must stop at the next sweep boundary with CANCELLED.
  const SolvePlan plan =
      Solver::plan(SolverSpec::parse("m=16,d=2,faults=4:0:1:2000:0"));
  const CancelToken token = CancelToken::source();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.cancel(CancelReason::Cancelled);
  });
  try {
    plan.solve(a, {.cancel = token});
    FAIL() << "the cancel must land before convergence";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), SolveStatus::Cancelled);
  }
  canceller.join();
}

// An armed token that NEVER fires must not change the answer: the flag
// slot widens the votes (comm counters may differ) but the numerics, sweep
// count and rotation sequence are untouched.
TEST(Cancellation, ArmedButIdleTokenKeepsNumericsBitIdentical) {
  const la::Matrix a = test_matrix(16, 34);
  for (const char* backend : {"inline", "mpi", "sim"}) {
    const SolvePlan plan = Solver::plan(
        SolverSpec::parse("backend=" + std::string(backend) + ",ordering=d4,m=16,d=2"));
    const SolveReport bare = plan.solve(a);
    const SolveReport armed = plan.solve(a, {.cancel = CancelToken::source()});
    ASSERT_TRUE(bare.converged) << backend;
    EXPECT_EQ(armed.eigenvalues, bare.eigenvalues) << backend;
    EXPECT_EQ(la::Matrix::max_abs_diff(armed.eigenvectors, bare.eigenvectors), 0.0);
    EXPECT_EQ(armed.sweeps, bare.sweeps) << backend;
    EXPECT_EQ(armed.rotations, bare.rotations) << backend;
    EXPECT_EQ(armed.status, SolveStatus::Ok) << backend;
  }
}

// A spec-level deadline generous enough to never fire behaves like the
// armed-idle token: the solve completes OK with identical numerics.
TEST(Cancellation, GenerousSpecDeadlineCompletesOk) {
  const la::Matrix a = test_matrix(16, 35);
  const SolveReport bare = Solver::solve(SolverSpec::parse("m=16,d=2"), a);
  const SolveReport r = Solver::solve(SolverSpec::parse("m=16,d=2,deadline_ms=3600000"), a);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::Ok);
  EXPECT_EQ(r.eigenvalues, bare.eigenvalues);
  EXPECT_EQ(r.sweeps, bare.sweeps);
}

}  // namespace
}  // namespace jmh::api
