#!/usr/bin/env python3
"""Diff a fresh bench_micro JSON against one or more committed baselines.

Compares google-benchmark JSON outputs case by case and fails (exit 1) when
any hot case regresses beyond the allowed fraction:

    regression = fresh_time / baseline_time - 1  >  --max-regression

Usage:
    bench_micro --benchmark_out=fresh.json --benchmark_out_format=json \
                --benchmark_filter='...'
    # single baseline (positional, the original form)
    tools/bench_compare.py BENCH_kernels.json fresh.json
    # several baselines gated in one invocation
    tools/bench_compare.py --baseline BENCH_kernels.json \
                           --baseline BENCH_plan_reuse.json \
                           --baseline BENCH_service.json fresh.json

Multiple --baseline files are merged into one case table (duplicate case
names across baselines take the first file's time and print a warning), so
one run of bench_micro gates every committed baseline at once.

Only cases matching --filter (default: the named hot cases of PERF.md)
and present in BOTH tables are gated; everything else is reported
informationally. Baselines are machine-specific: gate with the default 15%
only against baselines recorded on the same machine (see PERF.md). Across
machines (e.g. CI runners vs the baseline host) use a coarse
--max-regression to catch order-of-magnitude regressions -- an accidental
O(n^2) or a reintroduced per-step allocation -- rather than micro drift.
"""

import argparse
import json
import re
import sys

# The hot cases this repo's perf work is gated on (PERF.md): the fused
# kernels and solve paths (BENCH_kernels.json), the facade plan-reuse cases
# (BENCH_plan_reuse.json), the service throughput cases
# (BENCH_service.json), the SVD workload (BENCH_svd.json), the task-adapter
# workloads -- pca and wide svd (BENCH_tasks.json) -- the shared execution
# substrate cases -- oversubscribed service throughput and truncated topk
# solves (BENCH_exec.json) -- and the robustness overheads: checksummed
# serialization and the per-sweep cancel poll (BENCH_robustness.json).
DEFAULT_FILTER = (
    r"^(BM_RotationKernel|BM_GramKernel|BM_InlineSolve|BM_MpiSolve(Pipelined)?|"
    r"BM_BlockSerializeInto|BM_BlockSerializeRoundtrip|BM_SequentialCyclicSolve|"
    r"BM_PlanConstruction|BM_PlanReuseSolve|BM_PerSolveReconstruction|"
    r"BM_SpecRoundTrip|BM_ServiceThroughput|BM_ServiceOversub|BM_SvdSolve|"
    r"BM_PcaSolve|BM_WideSvdSolve|"
    r"BM_TopkSolve|BM_SweepCancelCheck|BM_TraceSpan|BM_SolveTraced)(/|$)"
)

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_cases(path):
    """name -> real_time in ns, aggregates (mean/median/stddev rows) skipped."""
    with open(path) as f:
        doc = json.load(f)
    cases = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = TIME_UNIT_NS[b.get("time_unit", "ns")]
        cases[b["name"]] = float(b["real_time"]) * unit
    return cases


def merge_baselines(paths):
    """First occurrence of a case name wins; conflicts are warned about."""
    merged = {}
    for path in paths:
        for name, time_ns in load_cases(path).items():
            if name in merged:
                if merged[name] != time_ns:
                    print(f"WARNING: case '{name}' appears in several baselines; "
                          f"keeping the first ({merged[name]:.0f}ns, ignoring "
                          f"{path}'s {time_ns:.0f}ns)", file=sys.stderr)
                continue
            merged[name] = time_ns
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="'BASELINE FRESH' (original form) or just 'FRESH' with --baseline")
    ap.add_argument("--baseline", action="append", default=[],
                    help="committed baseline JSON; repeat to gate several files at once")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="allowed fractional slowdown on gated cases (default 0.15)")
    ap.add_argument("--filter", default=DEFAULT_FILTER,
                    help="regex naming the gated hot cases (default: PERF.md hot set)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="tolerate gated baseline cases absent from the fresh run "
                         "(for deliberately filtered bench invocations)")
    ap.add_argument("--list", action="store_true",
                    help="list the baseline cases (with gate markers) instead of "
                         "comparing; the matching bench_micro --benchmark_filter "
                         "regex for gated-only reruns is printed last")
    args = ap.parse_args()

    if args.list:
        # Inventory mode: what would one comparison run gate? Takes the same
        # baseline arguments as a comparison (--baseline and/or positional).
        paths = args.baseline + args.files
        if not paths:
            ap.error("--list needs at least one baseline JSON")
        base = merge_baselines(paths)
        gate = re.compile(args.filter)
        if not base:
            print("bench_compare: baseline(s) contain no cases", file=sys.stderr)
            return 2
        width = max(len(n) for n in base)
        print(f"{'case':<{width}}  {'baseline':>12}  gated")
        for name in sorted(base):
            print(f"{name:<{width}}  {base[name]:>10.0f}ns  {'*' if gate.search(name) else ''}")
        gated_names = sorted({n.split("/")[0] for n in base if gate.search(n)})
        print(f"\n{sum(1 for n in base if gate.search(n))} of {len(base)} cases gated")
        if gated_names:
            print("rerun gated cases with: --benchmark_filter='^("
                  + "|".join(gated_names) + ")(/|$)'")
        return 0

    if args.baseline:
        if len(args.files) != 1:
            ap.error("with --baseline, pass exactly one fresh JSON")
        baseline_paths, fresh_path = args.baseline, args.files[0]
    else:
        if len(args.files) != 2:
            ap.error("usage: bench_compare.py BASELINE FRESH (or --baseline ... FRESH)")
        baseline_paths, fresh_path = [args.files[0]], args.files[1]

    base = merge_baselines(baseline_paths)
    fresh = load_cases(fresh_path)
    gate = re.compile(args.filter)

    rows = []
    failures = []
    for name in sorted(set(base) & set(fresh)):
        ratio = fresh[name] / base[name] if base[name] > 0 else float("inf")
        gated = bool(gate.search(name))
        rows.append((name, base[name], fresh[name], ratio, gated))
        if gated and ratio - 1.0 > args.max_regression:
            failures.append((name, ratio))

    if not rows:
        print("bench_compare: no common cases between baseline(s) and fresh run",
              file=sys.stderr)
        return 2

    width = max(len(r[0]) for r in rows)
    print(f"{'case':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>7}  gated")
    for name, b, f, ratio, gated in rows:
        print(f"{name:<{width}}  {b:>10.0f}ns  {f:>10.0f}ns  {ratio:>6.2f}x  {'*' if gated else ''}")

    # A gated case that vanished from the fresh run is a gate bypass, not a
    # footnote: a renamed or deleted benchmark would otherwise pass the gate
    # forever. Hard failure unless the caller explicitly filtered it out.
    gated_missing = [n for n in base if gate.search(n) and n not in fresh]
    if gated_missing:
        severity = "WARNING" if args.allow_missing else "FAIL"
        print(f"\n{severity}: gated baseline cases missing from fresh run: "
              f"{', '.join(sorted(gated_missing))}", file=sys.stderr)
        if not args.allow_missing:
            print("(rename/remove the baseline entry, or pass --allow-missing for a "
                  "deliberately filtered run)", file=sys.stderr)
            return 1

    if failures:
        print(f"\nFAIL: {len(failures)} hot case(s) regressed beyond "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return 1

    print(f"\nOK: no gated case regressed beyond {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
