#!/usr/bin/env python3
"""Diff a fresh bench_micro JSON against a committed baseline.

Compares google-benchmark JSON outputs case by case and fails (exit 1) when
any hot case regresses beyond the allowed fraction:

    regression = fresh_time / baseline_time - 1  >  --max-regression

Usage:
    bench_micro --benchmark_out=fresh.json --benchmark_out_format=json \
                --benchmark_filter='...'
    tools/bench_compare.py BENCH_kernels.json fresh.json

Only cases matching --filter (default: the named hot kernels of PERF.md)
and present in BOTH files are gated; everything else is reported
informationally. Baselines are machine-specific: gate with the default 15%
only against a baseline recorded on the same machine (see PERF.md). Across
machines (e.g. CI runners vs the baseline host) use a coarse
--max-regression to catch order-of-magnitude regressions -- an accidental
O(n^2) or a reintroduced per-step allocation -- rather than micro drift.
"""

import argparse
import json
import re
import sys

# The hot cases this repo's perf work is gated on (PERF.md). BM_GramKernel
# and BM_BlockSerializeInto price the two fused paths directly;
# BM_RotationKernel and the solve benches are the headline numbers.
DEFAULT_FILTER = (
    r"^(BM_RotationKernel|BM_GramKernel|BM_InlineSolve|BM_MpiSolve(Pipelined)?|"
    r"BM_BlockSerializeInto|BM_BlockSerializeRoundtrip|BM_SequentialCyclicSolve)/"
)

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_cases(path):
    """name -> real_time in ns, aggregates (mean/median/stddev rows) skipped."""
    with open(path) as f:
        doc = json.load(f)
    cases = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = TIME_UNIT_NS[b.get("time_unit", "ns")]
        cases[b["name"]] = float(b["real_time"]) * unit
    return cases


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="committed baseline JSON (e.g. BENCH_kernels.json)")
    ap.add_argument("fresh", help="freshly recorded bench_micro JSON")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="allowed fractional slowdown on gated cases (default 0.15)")
    ap.add_argument("--filter", default=DEFAULT_FILTER,
                    help="regex naming the gated hot cases (default: PERF.md hot set)")
    args = ap.parse_args()

    base = load_cases(args.baseline)
    fresh = load_cases(args.fresh)
    gate = re.compile(args.filter)

    rows = []
    failures = []
    for name in sorted(set(base) & set(fresh)):
        ratio = fresh[name] / base[name] if base[name] > 0 else float("inf")
        gated = bool(gate.search(name))
        rows.append((name, base[name], fresh[name], ratio, gated))
        if gated and ratio - 1.0 > args.max_regression:
            failures.append((name, ratio))

    if not rows:
        print("bench_compare: no common cases between baseline and fresh run", file=sys.stderr)
        return 2

    width = max(len(r[0]) for r in rows)
    print(f"{'case':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>7}  gated")
    for name, b, f, ratio, gated in rows:
        print(f"{name:<{width}}  {b:>10.0f}ns  {f:>10.0f}ns  {ratio:>6.2f}x  {'*' if gated else ''}")

    gated_missing = [n for n in base if gate.search(n) and n not in fresh]
    if gated_missing:
        print(f"\nWARNING: gated cases missing from fresh run: {', '.join(sorted(gated_missing))}",
              file=sys.stderr)

    if failures:
        print(f"\nFAIL: {len(failures)} hot case(s) regressed beyond "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return 1

    print(f"\nOK: no gated case regressed beyond {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
