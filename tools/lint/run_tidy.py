#!/usr/bin/env python3
"""clang-tidy driver with a committed zero-new-findings baseline.

Two gates in one script:

1. NOLINT discipline (pure Python, always runs, no clang needed): every
   NOLINT / NOLINTNEXTLINE in src/, bench/, examples/ must name the check
   it suppresses AND carry a reason comment on the same line:

       foo();  // NOLINT(bugprone-foo): reason why this is sanctioned

2. clang-tidy findings vs tools/lint/tidy_baseline.json: a finding is keyed
   by (file, check). The gate fails when any key's count EXCEEDS the
   committed baseline -- new findings are rejected, fixing old ones never
   breaks the build. Refresh with --update-baseline after intentional fixes.
   Line numbers are deliberately not part of the key so unrelated edits
   cannot invalidate the baseline.

clang-tidy is located via $CLANG_TIDY or a versioned-name search. When it is
not installed (local dev boxes ship only gcc), gate 2 is skipped with a
notice and gate 1 still runs; pass --require-tidy (CI does) to make a
missing binary a hard failure.

Usage:
  tools/lint/run_tidy.py [--build-dir build] [--changed BASE_REF]
                         [--update-baseline] [--require-tidy] [files...]
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from collections import Counter
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "tools" / "lint" / "tidy_baseline.json"
SOURCE_DIRS = ("src", "bench", "examples")

# NOLINT with a named check and a ': reason' tail. NOLINTBEGIN/END are
# banned outright: block suppressions hide new findings in their range.
NOLINT_ANY = re.compile(r"NOLINT(NEXTLINE|BEGIN|END)?")
NOLINT_OK = re.compile(r"NOLINT(?:NEXTLINE)?\([a-z0-9.,*-]+\)\s*:\s*\S")

# clang-tidy diagnostic line: path:line:col: warning: message [check-name]
DIAG = re.compile(r"^(?P<file>[^:\s][^:]*):\d+:\d+:\s+warning:\s+.*\[(?P<check>[\w.,-]+)\]\s*$")


def repo_rel(path: str) -> str:
    p = Path(path)
    try:
        return p.resolve().relative_to(REPO).as_posix()
    except ValueError:
        return p.as_posix()


def check_nolint_discipline(files: list[Path]) -> list[str]:
    errors = []
    for f in files:
        for lineno, line in enumerate(f.read_text(encoding="utf-8").splitlines(), 1):
            m = NOLINT_ANY.search(line)
            if not m:
                continue
            where = f"{repo_rel(str(f))}:{lineno}"
            if m.group(1) in ("BEGIN", "END"):
                errors.append(f"{where}: NOLINT{m.group(1)} block suppressions are banned "
                              "(they hide new findings in their range)")
            elif not NOLINT_OK.search(line):
                errors.append(f"{where}: bare NOLINT -- name the check and give a reason: "
                              "NOLINT(check-name): why")
    return errors


def source_files() -> list[Path]:
    out = []
    for d in SOURCE_DIRS:
        out.extend(sorted((REPO / d).rglob("*.hpp")))
        out.extend(sorted((REPO / d).rglob("*.cpp")))
    return [f for f in out if f.is_file()]


def changed_files(base_ref: str) -> list[Path]:
    diff = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", base_ref, "--"],
        cwd=REPO, capture_output=True, text=True, check=True).stdout
    out = []
    for name in diff.splitlines():
        p = REPO / name
        if p.suffix in (".hpp", ".cpp") and name.split("/")[0] in SOURCE_DIRS and p.is_file():
            out.append(p)
    return out


def find_clang_tidy() -> str | None:
    import os
    explicit = os.environ.get("CLANG_TIDY")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(20, 13, -1)]:
        if shutil.which(name):
            return name
    return None


def run_tidy(binary: str, build_dir: Path, files: list[Path]) -> Counter:
    findings: Counter = Counter()
    # One file per invocation keeps peak memory flat on small CI runners and
    # makes a crash attributable; wall-clock is dominated by parsing anyway.
    for f in files:
        if f.suffix != ".cpp":
            continue  # headers are covered via HeaderFilterRegex
        proc = subprocess.run(
            [binary, "-p", str(build_dir), "--quiet", str(f)],
            cwd=REPO, capture_output=True, text=True)
        for line in proc.stdout.splitlines():
            m = DIAG.match(line)
            if not m:
                continue
            rel = repo_rel(m.group("file"))
            if rel.split("/")[0] not in SOURCE_DIRS:
                continue  # system/third-party noise
            for check in m.group("check").split(","):
                findings[f"{rel}|{check}"] += 1
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", default="build",
                    help="build tree holding compile_commands.json")
    ap.add_argument("--changed", metavar="BASE_REF",
                    help="lint only files changed vs BASE_REF (PR scoping)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the committed baseline from this run")
    ap.add_argument("--require-tidy", action="store_true",
                    help="fail (exit 2) when clang-tidy is not installed")
    ap.add_argument("files", nargs="*", help="explicit files (overrides discovery)")
    args = ap.parse_args()

    if args.files:
        files = [Path(f).resolve() for f in args.files]
    elif args.changed:
        files = changed_files(args.changed)
    else:
        files = source_files()

    nolint_errors = check_nolint_discipline(files or source_files())
    for e in nolint_errors:
        print(f"run_tidy: {e}", file=sys.stderr)

    binary = find_clang_tidy()
    if binary is None:
        print("run_tidy: clang-tidy not found -- findings gate skipped "
              "(NOLINT discipline still checked)", file=sys.stderr)
        if args.require_tidy:
            return 2
        return 1 if nolint_errors else 0

    build_dir = (REPO / args.build_dir).resolve()
    if not (build_dir / "compile_commands.json").is_file():
        print(f"run_tidy: no compile_commands.json in {build_dir} "
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        return 2

    findings = run_tidy(binary, build_dir, files)

    if args.update_baseline:
        BASELINE.write_text(json.dumps(dict(sorted(findings.items())), indent=2) + "\n",
                            encoding="utf-8")
        print(f"run_tidy: baseline updated ({sum(findings.values())} findings)")
        return 1 if nolint_errors else 0

    baseline = Counter()
    if BASELINE.is_file():
        baseline.update(json.loads(BASELINE.read_text(encoding="utf-8")))

    regressions = []
    for key, count in sorted(findings.items()):
        if count > baseline.get(key, 0):
            regressions.append(f"{key.replace('|', ': ')} "
                               f"({count} found, {baseline.get(key, 0)} baselined)")
    for r in regressions:
        print(f"run_tidy: NEW finding: {r}", file=sys.stderr)

    fixed = sum((baseline - findings).values())
    if fixed and not args.changed:
        print(f"run_tidy: {fixed} baselined finding(s) no longer fire -- "
              "consider --update-baseline")

    if regressions or nolint_errors:
        return 1
    print(f"run_tidy: OK -- {len(files)} files, {sum(findings.values())} findings, "
          "0 above baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
