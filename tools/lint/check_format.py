#!/usr/bin/env python3
"""Check-only formatting gate over src/, tests/, bench/, examples/.

Runs `clang-format --dry-run` against the committed .clang-format and fails
on any would-be edit. With --diff it prints the replacement diff instead of
just naming files. There is intentionally no --fix mass-reformat mode here:
apply clang-format to the files you touched, not to history.

Like run_tidy.py, this degrades gracefully where clang-format is not
installed (gcc-only dev boxes): it prints a notice and exits 0 unless
--require-format (CI) is passed.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SOURCE_DIRS = ("src", "tests", "bench", "examples")


def find_clang_format() -> str | None:
    import os
    explicit = os.environ.get("CLANG_FORMAT")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ["clang-format"] + [f"clang-format-{v}" for v in range(20, 13, -1)]:
        if shutil.which(name):
            return name
    return None


def source_files(only: list[str]) -> list[Path]:
    if only:
        return [Path(f).resolve() for f in only]
    out: list[Path] = []
    for d in SOURCE_DIRS:
        root = REPO / d
        if root.is_dir():
            out.extend(sorted(root.rglob("*.hpp")))
            out.extend(sorted(root.rglob("*.cpp")))
    return [f for f in out if f.is_file()]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--diff", action="store_true", help="print the would-be diff")
    ap.add_argument("--require-format", action="store_true",
                    help="fail (exit 2) when clang-format is not installed")
    ap.add_argument("files", nargs="*", help="explicit files (overrides discovery)")
    args = ap.parse_args()

    binary = find_clang_format()
    if binary is None:
        print("check_format: clang-format not found -- format gate skipped", file=sys.stderr)
        return 2 if args.require_format else 0

    files = source_files(args.files)
    dirty: list[str] = []
    for f in files:
        if args.diff:
            formatted = subprocess.run([binary, "--style=file", str(f)],
                                       capture_output=True, text=True).stdout
            original = f.read_text(encoding="utf-8")
            if formatted != original:
                dirty.append(str(f.relative_to(REPO)))
                diff = subprocess.run(
                    ["diff", "-u", "--label", f"a/{f.relative_to(REPO)}",
                     "--label", f"b/{f.relative_to(REPO)}", str(f), "-"],
                    input=formatted, capture_output=True, text=True)
                sys.stdout.write(diff.stdout)
        else:
            proc = subprocess.run([binary, "--style=file", "--dry-run", "-Werror", str(f)],
                                  capture_output=True, text=True)
            if proc.returncode != 0:
                dirty.append(str(f.relative_to(REPO)))

    if dirty:
        print(f"check_format: {len(dirty)} file(s) need formatting:", file=sys.stderr)
        for name in dirty:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"check_format: OK -- {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
