#!/usr/bin/env python3
"""Layer-dependency linter: the machine check of the ARCHITECTURE.md graph.

Parses every `#include` edge under src/, tests/, bench/ and examples/ and
fails (exit 1) on:

  * an include edge between src/ layers that tools/lint/layers.toml does not
    permit, unless the exact (file, include) pair is listed as a sanctioned
    exception with a justification;
  * an exception header (an .hpp carrying an upward include) included from
    anywhere but implementation files of its own layer -- the property that
    keeps the sanctioned back edges out of the include graph;
  * a stale exception entry (the pair no longer exists -- keeps the
    manifest from accumulating dead grants);
  * a src/ file including from tests/, bench/ or examples/;
  * a relative (`"../"` or `"./"`) or non-layer-qualified project include;
  * an .hpp under src/ or bench/ without `#pragma once`;
  * a src/<layer>/<module>.cpp without its src/<layer>/<module>.hpp pair
    (one module = one file pair; header-only modules are fine).

Usage:
    tools/lint/check_layers.py [--root DIR] [--manifest FILE]

Exit codes: 0 clean, 1 violations (each printed as file:line: message),
2 bad manifest/usage.
"""

import argparse
import re
import sys
import tomllib
from pathlib import Path

SCAN_DIRS = ("src", "tests", "bench", "examples")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
PROJECT_INCLUDE_RE = re.compile(r"^[a-z0-9_]+/[a-z0-9_]+\.hpp$")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")


def parse_manifest(path: Path):
    try:
        with open(path, "rb") as f:
            doc = tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as e:
        sys.exit(f"check_layers: cannot read manifest {path}: {e}")

    layers = {}
    for name, entry in doc.get("layers", {}).items():
        deps = entry.get("deps")
        if not isinstance(deps, list):
            sys.exit(f"check_layers: [layers.{name}] needs a 'deps' list")
        layers[name] = set(deps)
    for name, deps in layers.items():
        for dep in deps:
            if dep not in layers:
                sys.exit(f"check_layers: [layers.{name}] depends on unknown layer '{dep}'")

    toplevel = set(doc.get("toplevel", {}).get("dirs", []))

    exceptions = {}
    for entry in doc.get("exception", []):
        for key in ("file", "include", "justification"):
            if not entry.get(key) or not str(entry[key]).strip():
                sys.exit("check_layers: every [[exception]] needs non-empty "
                         "'file', 'include' and 'justification'")
        exceptions[(entry["file"], entry["include"])] = entry["justification"]
    return layers, toplevel, exceptions


def scan_includes(path: Path):
    """Yields (line_number, include_target) for every quoted include."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        sys.exit(f"check_layers: cannot read {path}: {e}")
    for i, line in enumerate(text.splitlines(), start=1):
        m = INCLUDE_RE.match(line)
        if m:
            yield i, m.group(1)


def has_pragma_once(path: Path) -> bool:
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        if PRAGMA_ONCE_RE.match(line):
            return True
    return False


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels above this script)")
    ap.add_argument("--manifest", type=Path, default=None,
                    help="layer manifest (default: ROOT/tools/lint/layers.toml)")
    args = ap.parse_args()

    root = args.root.resolve()
    manifest = args.manifest or root / "tools" / "lint" / "layers.toml"
    layers, toplevel, exceptions = parse_manifest(manifest)

    violations = []
    used_exceptions = set()
    # Headers granted an upward include: collect them now so the impl-only
    # property can be enforced while walking the tree.
    exception_headers = {f for (f, _inc) in exceptions if f.endswith(".hpp")}

    files = []
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(sorted(base.rglob("*.hpp")))
            files.extend(sorted(base.rglob("*.cpp")))

    known_headers = {f"{p.parent.name}/{p.name}"
                     for p in (root / "src").rglob("*.hpp")}

    for path in files:
        rel = path.relative_to(root).as_posix()
        top = rel.split("/", 1)[0]
        in_src = top == "src"
        layer = path.parent.name if in_src else None

        if in_src and layer not in layers:
            violations.append(f"{rel}:1: layer '{layer}' is not declared in {manifest.name}")
            continue

        if path.suffix == ".hpp" and top in ("src", "bench") and not has_pragma_once(path):
            violations.append(f"{rel}:1: header lacks '#pragma once'")

        if in_src and path.suffix == ".cpp":
            if not path.with_suffix(".hpp").is_file():
                violations.append(
                    f"{rel}:1: module has no header pair "
                    f"(expected {rel[:-4]}.hpp; one module = one .hpp/.cpp pair)")

        for lineno, inc in scan_includes(path):
            if inc.startswith(("../", "./")) or "/../" in inc:
                violations.append(f"{rel}:{lineno}: relative include \"{inc}\"")
                continue
            if inc not in known_headers:
                if PROJECT_INCLUDE_RE.match(inc) and inc.split("/")[0] in layers:
                    violations.append(
                        f"{rel}:{lineno}: include \"{inc}\" names no header under src/")
                elif in_src and "/" in inc and not PROJECT_INCLUDE_RE.match(inc):
                    violations.append(
                        f"{rel}:{lineno}: project include \"{inc}\" is not of the "
                        f"form \"layer/module.hpp\"")
                # Anything else quoted ("gtest/gtest.h", bench_env.hpp from
                # bench/'s own dir) is outside the layer graph.
                continue

            target_layer = inc.split("/")[0]
            if not in_src:
                if top in toplevel:
                    continue  # toplevel dirs may include any layer
                violations.append(
                    f"{rel}:{lineno}: directory '{top}' is not granted library access "
                    f"in {manifest.name}")
                continue

            # src -> src edge: must be same-layer, permitted, or excepted.
            if target_layer == layer or target_layer in layers[layer]:
                pass
            elif (rel, inc) in exceptions:
                used_exceptions.add((rel, inc))
            else:
                violations.append(
                    f"{rel}:{lineno}: layer '{layer}' may not include \"{inc}\" "
                    f"(allowed: {', '.join(sorted(layers[layer])) or 'nothing'}; "
                    f"upward edges need an [[exception]] entry with a justification)")

            # Impl-only rule for exception headers: only .cpp files of the
            # header's own layer may include it.
            if inc in {f"{Path(f).parent.name}/{Path(f).name}" for f in exception_headers}:
                owner_layer = Path(inc).parts[0]
                if path.suffix != ".cpp" or layer != owner_layer:
                    violations.append(
                        f"{rel}:{lineno}: \"{inc}\" carries a sanctioned upward include "
                        f"and may only be included from {owner_layer}/*.cpp")

    for (f, inc) in sorted(set(exceptions) - used_exceptions):
        src_file = root / f
        if not src_file.is_file():
            violations.append(f"{f}:1: stale [[exception]]: file no longer exists")
        else:
            violations.append(
                f"{f}:1: stale [[exception]]: no longer includes \"{inc}\" -- "
                f"remove the manifest entry")

    if violations:
        for v in violations:
            print(v)
        print(f"\ncheck_layers: {len(violations)} violation(s) against {manifest}",
              file=sys.stderr)
        return 1
    print(f"check_layers: OK -- {len(files)} files, layer graph conforms to "
          f"{manifest.relative_to(root) if manifest.is_relative_to(root) else manifest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
