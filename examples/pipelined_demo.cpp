// Pipelined execution demo: one spec per pipelining degree, all named
// textually through the api facade. Shows that (a) the answer is identical
// across degrees, (b) message counts grow with Q while column volume stays
// fixed -- the communication structure the paper's cost model prices,
// executing for real on mpi_lite threads -- and (c) what the auto policy
// (pipe::find_optimal_sweep_q) picks for this machine.
//
//   $ ./pipelined_demo [m] [d]     (defaults: 32 2)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"

int main(int argc, char** argv) {
  using namespace jmh;

  const std::size_t m = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;
  const int d = argc > 2 ? std::atoi(argv[2]) : 2;
  if (d < 1 || d > 5 || m < (std::size_t{4} << d)) {
    std::fprintf(stderr, "need 1 <= d <= 5 and m >= 2^(d+2)\n");
    return 2;
  }

  Xoshiro256 rng(7);
  const la::Matrix a = la::random_uniform_symmetric(m, rng);
  const std::string base = "backend=mpi,ordering=d4,m=" + std::to_string(m) +
                           ",d=" + std::to_string(d) + ",pipeline=";

  std::printf("m = %zu, %d-cube (%d threads), degree-4 ordering\n\n", m, d, 1 << d);
  std::printf("        Q | sweeps  messages  elements   residual   spectrum-vs-Q1\n");

  std::vector<double> reference;
  for (const char* q : {"1", "2", "4", "8", "auto"}) {
    const api::SolverSpec spec = api::SolverSpec::parse(base + q);
    const api::SolvePlan plan = api::Solver::plan(spec);
    const api::SolveReport r = plan.solve(a);
    if (!r.converged) {
      std::printf("pipeline=%s did not converge\n", q);
      return 1;
    }
    if (reference.empty()) reference = r.eigenvalues;
    const std::string label =
        spec.pipelining == api::PipeliningPolicy::Auto
            ? "auto(" + std::to_string(plan.pipelining_q()) + ")"
            : std::string(q);
    std::printf(" %8s | %6d  %8llu  %8llu   %.2e   %.2e\n", label.c_str(), r.sweeps,
                static_cast<unsigned long long>(r.comm.messages),
                static_cast<unsigned long long>(r.comm.elements),
                la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors),
                la::spectrum_distance(r.eigenvalues, reference));
  }

  std::printf(
      "\nPacketizing multiplies message count (more startups) but keeps column\n"
      "volume constant; on a multi-port machine the packets of one block ride\n"
      "different links concurrently, which is what Figure 2 prices out. The\n"
      "auto row is the sweep-cost optimum of pipe::find_optimal_sweep_q.\n");
  return 0;
}
