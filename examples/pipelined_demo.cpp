// Pipelined execution demo: run the distributed eigensolver with the
// exchange phases packetized at several pipelining degrees and show that
// (a) the answer is identical, (b) message counts grow with Q while column
// volume stays fixed -- the communication structure the paper's cost model
// prices, executing for real on mpi_lite threads.
//
//   $ ./pipelined_demo [m] [d]     (defaults: 32 2)
#include <cstdio>
#include <cstdlib>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"
#include "solve/pipelined_executor.hpp"

int main(int argc, char** argv) {
  using namespace jmh;

  const std::size_t m = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;
  const int d = argc > 2 ? std::atoi(argv[2]) : 2;
  if (d < 1 || d > 5 || m < (std::size_t{4} << d)) {
    std::fprintf(stderr, "need 1 <= d <= 5 and m >= 2^(d+2)\n");
    return 2;
  }

  Xoshiro256 rng(7);
  const la::Matrix a = la::random_uniform_symmetric(m, rng);
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, d);

  std::printf("m = %zu, %d-cube (%d threads), degree-4 ordering\n\n", m, d, 1 << d);
  std::printf("   Q | sweeps  messages  elements   residual   spectrum-vs-Q1\n");

  std::vector<double> reference;
  for (std::uint64_t q : {1u, 2u, 4u, 8u}) {
    solve::PipelinedSolveOptions opts;
    opts.q = q;
    const auto r = solve::solve_mpi_pipelined(a, ordering, opts);
    if (!r.converged) {
      std::printf("Q=%llu did not converge\n", static_cast<unsigned long long>(q));
      return 1;
    }
    if (reference.empty()) reference = r.eigenvalues;
    std::printf(" %3llu | %6d  %8llu  %8llu   %.2e   %.2e\n",
                static_cast<unsigned long long>(q), r.sweeps,
                static_cast<unsigned long long>(r.comm.messages),
                static_cast<unsigned long long>(r.comm.elements),
                la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors),
                la::spectrum_distance(r.eigenvalues, reference));
  }

  std::printf(
      "\nPacketizing multiplies message count (more startups) but keeps column\n"
      "volume constant; on a multi-port machine the packets of one block ride\n"
      "different links concurrently, which is what Figure 2 prices out.\n");
  return 0;
}
