// Trace visualizer: simulate a pipelined exchange phase for each ordering
// and render stage timelines and per-dimension link utilization -- the
// paper's core diagnosis made visible: BR saturates dimension 0 and leaves
// the rest idle; the new orderings spread the load.
//
//   $ ./trace_visualizer [e] [Q]     (defaults: e = 5, Q = 4)
#include <cstdio>
#include <cstdlib>

#include "sim/programs.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace jmh;

  const int e = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::uint64_t q = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 4;
  if (e < 4 || e > 12 || q < 1) {
    std::fprintf(stderr, "usage: %s [e in 4..12] [Q >= 1]\n", argv[0]);
    return 2;
  }

  sim::SimConfig cfg;
  cfg.machine.ts = 1000.0;
  cfg.machine.tw = 100.0;
  const double s = 1 << 12;

  std::printf("pipelined exchange phase e = %d, Q = %llu, S = %.0f, Ts = %.0f, Tw = %.0f\n\n",
              e, static_cast<unsigned long long>(q), s, cfg.machine.ts, cfg.machine.tw);

  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                    ord::OrderingKind::Degree4}) {
    const auto seq = ord::make_exchange_sequence(kind, e);
    const sim::Network net(e, cfg);
    const sim::SimResult r =
        net.run_program(sim::build_pipelined_phase_program(seq, q, s, e));

    std::printf("=== %s ===\n", ord::to_string(kind).c_str());
    std::printf("%s", sim::render_link_utilization(r, e).c_str());
    std::printf("makespan: %.0f   mean utilization: %.1f%%   peak: %.1f%%\n\n", r.makespan,
                100.0 * r.mean_link_utilization(), 100.0 * r.peak_link_utilization());
  }

  // Detailed timeline for the degree-4 run (first 12 stages).
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::Degree4, e);
  const sim::Network net(e, cfg);
  sim::SimResult r = net.run_program(sim::build_pipelined_phase_program(seq, q, s, e));
  if (r.stage_times.size() > 12) r.stage_times.resize(12);
  std::printf("degree-4 stage timeline (first stages; prologue ramps up, kernel steady):\n%s",
              sim::render_stage_timeline(r).c_str());
  return 0;
}
