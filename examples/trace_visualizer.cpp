// Trace visualizer: simulate a pipelined exchange phase for each ordering
// and render stage timelines and per-dimension link utilization -- the
// paper's core diagnosis made visible: BR saturates dimension 0 and leaves
// the rest idle; the new orderings spread the load. Machine parameters and
// the pipelining degree come from an api::SolverSpec string; pipeline=auto
// shows each ordering at its own pipe::find_optimal_q optimum.
//
//   $ ./trace_visualizer [e] ["key=value,..."]
//     e     exchange-phase index, 4..12 (default 5)
//     spec  default "pipeline=4,ts=1000,tw=100"; uses pipeline, ts, tw
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "api/spec.hpp"
#include "pipe/optimizer.hpp"
#include "sim/programs.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace jmh;

  const int e = argc > 1 ? std::atoi(argv[1]) : 5;
  api::SolverSpec spec;
  try {
    spec = api::SolverSpec::parse(argc > 2 ? argv[2] : "pipeline=4,ts=1000,tw=100");
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "usage: %s [e in 4..12] [\"pipeline=<q>|auto,ts=...,tw=...\"]\n%s\n",
                 argv[0], ex.what());
    return 2;
  }
  if (e < 4 || e > 12) {
    std::fprintf(stderr, "usage: %s [e in 4..12] [\"pipeline=<q>|auto,ts=...,tw=...\"]\n",
                 argv[0]);
    return 2;
  }
  // A spec without (or with an Off) pipeline key falls back to Q = 4: an
  // unpipelined phase has no stage structure to visualize.
  if (spec.pipelining == api::PipeliningPolicy::Off) {
    spec.pipelining = api::PipeliningPolicy::Fixed;
    spec.q = 4;
  }
  const bool auto_q = spec.pipelining == api::PipeliningPolicy::Auto;

  sim::SimConfig cfg;
  cfg.machine = spec.machine;
  const double s = 1 << 12;

  const std::string q_label = auto_q ? "auto" : std::to_string(spec.q);
  std::printf("pipelined exchange phase e = %d, Q = %s, S = %.0f, Ts = %.0f, Tw = %.0f\n\n", e,
              q_label.c_str(), s, cfg.machine.ts, cfg.machine.tw);

  auto degree_for = [&](const ord::LinkSequence& seq) {
    if (!auto_q) return spec.q;
    return pipe::find_optimal_q(seq, s, cfg.machine, std::uint64_t{1} << 16).q;
  };

  for (auto kind : {ord::OrderingKind::BR, ord::OrderingKind::PermutedBR,
                    ord::OrderingKind::Degree4}) {
    const auto seq = ord::make_exchange_sequence(kind, e);
    const std::uint64_t q = degree_for(seq);
    const sim::Network net(e, cfg);
    const sim::SimResult r =
        net.run_program(sim::build_pipelined_phase_program(seq, q, s, e));

    std::printf("=== %s (Q = %llu) ===\n", ord::to_string(kind).c_str(),
                static_cast<unsigned long long>(q));
    std::printf("%s", sim::render_link_utilization(r, e).c_str());
    std::printf("makespan: %.0f   mean utilization: %.1f%%   peak: %.1f%%\n\n", r.makespan,
                100.0 * r.mean_link_utilization(), 100.0 * r.peak_link_utilization());
  }

  // Detailed timeline for the degree-4 run (first 12 stages).
  const auto seq = ord::make_exchange_sequence(ord::OrderingKind::Degree4, e);
  const sim::Network net(e, cfg);
  sim::SimResult r =
      net.run_program(sim::build_pipelined_phase_program(seq, degree_for(seq), s, e));
  if (r.stage_times.size() > 12) r.stage_times.resize(12);
  std::printf("degree-4 stage timeline (first stages; prologue ramps up, kernel steady):\n%s",
              sim::render_stage_timeline(r).c_str());
  return 0;
}
