// Distributed eigensolver CLI: runs the one-sided Jacobi method with a
// chosen ordering on mpi_lite (one OS thread per hypercube node, real
// message exchanges over the hypercube overlay) and cross-checks against
// the sequential reference.
//
//   $ ./eigensolver_cli [m] [d] [ordering]
//     m        matrix order (default 32)
//     d        hypercube dimension, 2^d threads (default 3)
//     ordering br | pbr | d4 | minalpha (default d4)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"
#include "solve/parallel_jacobi.hpp"

int main(int argc, char** argv) {
  using namespace jmh;
  using Clock = std::chrono::steady_clock;

  const std::size_t m = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;
  const int d = argc > 2 ? std::atoi(argv[2]) : 3;
  ord::OrderingKind kind = ord::OrderingKind::Degree4;
  if (argc > 3) {
    if (!std::strcmp(argv[3], "br")) kind = ord::OrderingKind::BR;
    else if (!std::strcmp(argv[3], "pbr")) kind = ord::OrderingKind::PermutedBR;
    else if (!std::strcmp(argv[3], "d4")) kind = ord::OrderingKind::Degree4;
    else if (!std::strcmp(argv[3], "minalpha")) kind = ord::OrderingKind::MinAlpha;
    else {
      std::fprintf(stderr, "unknown ordering '%s' (br|pbr|d4|minalpha)\n", argv[3]);
      return 2;
    }
  }
  if (d < 1 || d > 6 || m < (std::size_t{2} << d)) {
    std::fprintf(stderr, "need 1 <= d <= 6 and m >= 2^(d+1)\n");
    return 2;
  }

  Xoshiro256 rng(42);
  const la::Matrix a = la::random_uniform_symmetric(m, rng);
  const ord::JacobiOrdering ordering(kind, d);

  std::printf("solving a %zux%zu random symmetric matrix on a %d-cube (%d threads)\n", m, m,
              d, 1 << d);
  std::printf("ordering: %s\n\n", ord::to_string(kind).c_str());

  const auto t0 = Clock::now();
  const solve::DistributedResult dist = solve::solve_mpi(a, ordering);
  const double t_mpi = std::chrono::duration<double>(Clock::now() - t0).count();

  const auto t1 = Clock::now();
  const la::JacobiResult ref = la::onesided_jacobi_cyclic(a);
  const double t_seq = std::chrono::duration<double>(Clock::now() - t1).count();

  std::printf("mpi_lite solver : %d sweeps, %zu rotations, %.3fs, converged=%s\n",
              dist.sweeps, dist.rotations, t_mpi, dist.converged ? "yes" : "no");
  std::printf("sequential ref  : %d sweeps, %zu rotations, %.3fs\n\n", ref.sweeps,
              ref.rotations, t_seq);

  const double spectrum_gap = la::spectrum_distance(dist.eigenvalues, ref.eigenvalues);
  const double residual = la::eigenpair_residual(a, dist.eigenvalues, dist.eigenvectors);
  const double orth = la::orthogonality_defect(dist.eigenvectors);
  std::printf("spectrum gap vs reference : %.2e\n", spectrum_gap);
  std::printf("max relative residual     : %.2e\n", residual);
  std::printf("orthogonality defect      : %.2e\n", orth);

  std::printf("\nextreme eigenvalues: ");
  const std::size_t show = std::min<std::size_t>(3, m);
  for (std::size_t i = 0; i < show; ++i) std::printf("%.5f ", dist.eigenvalues[i]);
  std::printf("...");
  for (std::size_t i = m - show; i < m; ++i) std::printf(" %.5f", dist.eigenvalues[i]);
  std::printf("\n");

  return dist.converged && spectrum_gap < 1e-7 && residual < 1e-8 ? 0 : 1;
}
