// Distributed eigensolver CLI: one --spec string names the whole scenario
// (backend, ordering, problem size, pipelining, machine model, convergence
// knobs); the run prints the unified api::SolveReport.
//
//   $ ./eigensolver_cli [--spec "key=value,..."] [--seed N] [--check] [--json]
//
//     --spec   scenario, e.g. "backend=sim,ordering=minalpha,m=64,d=3,
//              pipeline=auto" or "task=svd,m=32,rows=48,d=2" (default
//              "backend=mpi,ordering=d4,m=32,d=3"; see api/spec.hpp for the
//              full grammar)
//     --seed   RNG seed for the random test matrix: symmetric m x m for
//              task=evd, general rows x m for task=svd (default 42)
//     --check  cross-check eigenpairs (or singular triplets) against the
//              sequential reference
//     --json   print the one-line api::report_to_json rendering instead of
//              the human report (stable field set; for scripts and the
//              service workload driver's tooling)
//
// Exit status: 0 iff the solve converged (and, with --check, matches the
// reference).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "la/eigen_check.hpp"
#include "la/svd.hpp"
#include "la/sym_gen.hpp"

int main(int argc, char** argv) {
  using namespace jmh;
  using Clock = std::chrono::steady_clock;

  std::string spec_text = "backend=mpi,ordering=d4,m=32,d=3";
  std::uint64_t seed = 42;
  bool check = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--spec") && i + 1 < argc) {
      spec_text = argv[++i];
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--spec \"key=value,...\"] [--seed N] [--check] [--json]\n",
                   argv[0]);
      return 2;
    }
  }

  api::SolverSpec spec;
  try {
    spec = api::SolverSpec::parse(spec_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const bool svd = spec.task == api::Task::Svd;
  Xoshiro256 rng(seed);
  const la::Matrix a = svd ? la::random_uniform(spec.input_rows(), spec.m, rng)
                           : la::random_uniform_symmetric(spec.m, rng);

  if (!json) std::printf("spec    : %s\n", spec.to_string().c_str());

  api::SolvePlan plan = [&] {
    try {
      return api::Solver::plan(spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "infeasible spec: %s\n", e.what());
      std::exit(2);
    }
  }();
  if (!json && spec.pipelining == api::PipeliningPolicy::Auto)
    std::printf("plan    : auto pipelining degree q = %llu "
                "(modeled %.4g time units/sweep of exchange comm)\n",
                static_cast<unsigned long long>(plan.pipelining_q()),
                plan.planned_sweep_comm_cost());

  const auto t0 = Clock::now();
  const api::SolveReport r = [&] {
    try {
      return plan.solve(a);
    } catch (const std::exception& e) {
      // e.g. thread-spawn failure for backend=mpi at large d.
      std::fprintf(stderr, "solve failed: %s\n", e.what());
      std::exit(2);
    }
  }();
  const double t_solve = std::chrono::duration<double>(Clock::now() - t0).count();

  if (!json) {
    std::printf("%s", r.summary().c_str());
    std::printf("walltime : %.3fs\n", t_solve);
  }

  // task=svd stores V in the eigenvectors slot (see api/report.hpp).
  const double residual = svd ? la::svd_residual(a, r.singular_values, r.u, r.eigenvectors)
                              : la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors);
  const double orth = la::orthogonality_defect(r.eigenvectors);
  if (!json)
    std::printf("residual : %.2e   orthogonality defect: %.2e\n", residual, orth);

  bool ok = r.converged && residual < 1e-8;
  if (check) {
    const auto t1 = Clock::now();
    int ref_sweeps = 0;
    double gap = 0.0;
    // A topk solve carries only the k leading values, so compare against
    // the reference's own leading k (largest sigma / largest |lambda|),
    // both sides sorted ascending for the pairwise distance.
    const auto ascending = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    if (svd) {
      const la::SvdResult ref = la::onesided_jacobi_svd_cyclic(a);
      ref_sweeps = ref.sweeps;
      std::vector<double> ref_vals = ref.singular_values;  // descending
      if (r.topk > 0) ref_vals.resize(r.singular_values.size());
      gap = la::spectrum_distance(ascending(r.singular_values), ascending(ref_vals));
    } else {
      const la::JacobiResult ref = la::onesided_jacobi_cyclic(a);
      ref_sweeps = ref.sweeps;
      std::vector<double> ref_vals = ref.eigenvalues;
      if (r.topk > 0) {
        std::sort(ref_vals.begin(), ref_vals.end(),
                  [](double x, double y) { return std::abs(x) > std::abs(y); });
        ref_vals.resize(r.eigenvalues.size());
      }
      gap = la::spectrum_distance(ascending(r.eigenvalues), ascending(ref_vals));
    }
    const double t_seq = std::chrono::duration<double>(Clock::now() - t1).count();
    if (!json)
      std::printf("check    : sequential ref %d sweeps in %.3fs, spectrum gap %.2e\n",
                  ref_sweeps, t_seq, gap);
    ok = ok && gap < 1e-7;
  }

  if (json) {
    std::printf("%s\n", api::report_to_json(r).c_str());
    return ok ? 0 : 1;
  }

  const std::vector<double>& values = svd ? r.singular_values : r.eigenvalues;
  const std::size_t show = std::min<std::size_t>(3, values.size());
  std::printf("extremes :");
  for (std::size_t i = 0; i < show; ++i) std::printf(" %.5f", values[i]);
  std::printf(" ...");
  for (std::size_t i = values.size() - show; i < values.size(); ++i)
    std::printf(" %.5f", values[i]);
  std::printf("\n");

  return ok ? 0 : 1;
}
