// Distributed eigensolver CLI: one --spec string names the whole scenario
// (backend, ordering, problem size, pipelining, machine model, convergence
// knobs); the run prints the unified api::SolveReport.
//
//   $ ./eigensolver_cli [--spec "key=value,..."] [--seed N] [--check] [--json]
//
//     --spec   scenario, e.g. "backend=sim,ordering=minalpha,m=64,d=3,
//              pipeline=auto", "task=svd,m=32,rows=48,d=2",
//              "task=pca,m=16,rows=8,d=1,stop=offdiag_abs" or
//              "task=gevd,bseed=7,m=32,d=2" (default
//              "backend=mpi,ordering=d4,m=32,d=3"; see api/spec.hpp for the
//              full grammar)
//     --seed   RNG seed for the random test matrix: symmetric m x m for
//              task=evd|gevd, general rows x m for task=svd|pca (default
//              42; task=gevd's SPD B-side comes from the spec's bseed key,
//              not from --seed)
//     --check  cross-check the solution against the sequential reference
//              (all four tasks: evd/gevd eigenvalues, svd/pca spectra)
//     --json   print the one-line api::report_to_json rendering instead of
//              the human report (stable field set; for scripts and the
//              service workload driver's tooling)
//
// Exit status: 0 iff the solve converged (and, with --check, matches the
// reference).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "api/task_adapter.hpp"
#include "la/eigen_check.hpp"
#include "la/pca.hpp"
#include "la/svd.hpp"
#include "la/sym_gen.hpp"

int main(int argc, char** argv) {
  using namespace jmh;
  using Clock = std::chrono::steady_clock;

  std::string spec_text = "backend=mpi,ordering=d4,m=32,d=3";
  std::uint64_t seed = 42;
  bool check = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--spec") && i + 1 < argc) {
      spec_text = argv[++i];
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--spec \"key=value,...\"] [--seed N] [--check] [--json]\n",
                   argv[0]);
      return 2;
    }
  }

  api::SolverSpec spec;
  try {
    spec = api::SolverSpec::parse(spec_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // task=svd and task=pca share the SVD-shaped solution (sigma + U + V) and
  // take a general rows x m data matrix; evd and gevd take a symmetric m x m.
  const bool svd = spec.task == api::Task::Svd || spec.task == api::Task::Pca;
  Xoshiro256 rng(seed);
  const la::Matrix a = svd ? la::random_uniform(spec.input_rows(), spec.m, rng)
                           : la::random_uniform_symmetric(spec.m, rng);
  // task=gevd's B-side is named by the spec itself (bseed), so the CLI, the
  // solver, and the reference all reconstruct the identical SPD matrix.
  const la::Matrix b = spec.task == api::Task::Gevd ? api::gevd_b_matrix(spec) : la::Matrix();

  if (!json) std::printf("spec    : %s\n", spec.to_string().c_str());

  api::SolvePlan plan = [&] {
    try {
      return api::Solver::plan(spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "infeasible spec: %s\n", e.what());
      std::exit(2);
    }
  }();
  if (!json && spec.pipelining == api::PipeliningPolicy::Auto)
    std::printf("plan    : auto pipelining degree q = %llu "
                "(modeled %.4g time units/sweep of exchange comm)\n",
                static_cast<unsigned long long>(plan.pipelining_q()),
                plan.planned_sweep_comm_cost());

  const auto t0 = Clock::now();
  const api::SolveReport r = [&] {
    try {
      return plan.solve(a);
    } catch (const std::exception& e) {
      // e.g. thread-spawn failure for backend=mpi at large d.
      std::fprintf(stderr, "solve failed: %s\n", e.what());
      std::exit(2);
    }
  }();
  const double t_solve = std::chrono::duration<double>(Clock::now() - t0).count();

  if (!json) {
    std::printf("%s", r.summary().c_str());
    std::printf("walltime : %.3fs\n", t_solve);
  }

  // task=svd/pca store V in the eigenvectors slot (see api/report.hpp);
  // task=pca factors the column-CENTERED data; task=gevd pairs satisfy
  // A x = lambda B x with B-orthonormal (not orthonormal) vectors.
  const double residual = [&] {
    if (spec.task == api::Task::Pca) {
      la::Matrix centered = a;
      la::center_columns(centered);
      return la::svd_residual(centered, r.singular_values, r.u, r.eigenvectors);
    }
    if (spec.task == api::Task::Svd)
      return la::svd_residual(a, r.singular_values, r.u, r.eigenvectors);
    if (spec.task == api::Task::Gevd) {
      // max_k ||A x_k - lambda_k B x_k||_2 / ||A||_F
      const double scale = std::max(la::frobenius(a), 1e-300);
      double worst = 0.0;
      for (std::size_t k = 0; k < r.eigenvalues.size(); ++k) {
        const auto xk = r.eigenvectors.col(k);
        double norm2 = 0.0;
        for (std::size_t row = 0; row < spec.m; ++row) {
          double ax = 0.0, bx = 0.0;
          for (std::size_t col = 0; col < spec.m; ++col) {
            ax += a(row, col) * xk[col];
            bx += b(row, col) * xk[col];
          }
          const double diff = ax - r.eigenvalues[k] * bx;
          norm2 += diff * diff;
        }
        worst = std::max(worst, std::sqrt(norm2) / scale);
      }
      return worst;
    }
    return la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors);
  }();
  // task=gevd vectors are B-orthonormal, so the defect is measured in the
  // B inner product: max |x_i^T B x_j - delta_ij|.
  const double orth = [&] {
    if (spec.task != api::Task::Gevd) return la::orthogonality_defect(r.eigenvectors);
    double worst = 0.0;
    for (std::size_t i = 0; i < r.eigenvectors.cols(); ++i) {
      for (std::size_t j = i; j < r.eigenvectors.cols(); ++j) {
        double gram = 0.0;
        for (std::size_t row = 0; row < spec.m; ++row) {
          double bx = 0.0;
          for (std::size_t col = 0; col < spec.m; ++col)
            bx += b(row, col) * r.eigenvectors(col, j);
          gram += r.eigenvectors(row, i) * bx;
        }
        worst = std::max(worst, std::abs(gram - (i == j ? 1.0 : 0.0)));
      }
    }
    return worst;
  }();
  if (!json)
    std::printf("residual : %.2e   %s defect: %.2e\n", residual,
                spec.task == api::Task::Gevd ? "B-orthonormality" : "orthogonality", orth);

  bool ok = r.converged && residual < 1e-8;
  if (check) {
    const auto t1 = Clock::now();
    int ref_sweeps = 0;
    double gap = 0.0;
    // A topk solve carries only the k leading values, so compare against
    // the reference's own leading k (largest sigma / largest |lambda|),
    // both sides sorted ascending for the pairwise distance.
    const auto ascending = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    if (svd) {
      // _any handles wide (rows < m) inputs by the same transpose trick
      // the facade applies; pca factors the column-centered data.
      la::Matrix data = a;
      if (spec.task == api::Task::Pca) la::center_columns(data);
      const la::SvdResult ref = la::onesided_jacobi_svd_any(data);
      ref_sweeps = ref.sweeps;
      std::vector<double> ref_vals = ref.singular_values;  // descending
      if (r.topk > 0) ref_vals.resize(r.singular_values.size());
      gap = la::spectrum_distance(ascending(r.singular_values), ascending(ref_vals));
    } else if (spec.task == api::Task::Gevd) {
      // The same Cholesky pre-whitening the adapter applies: C = L^-1 A L^-T,
      // then the plain symmetric reference on C.
      const la::Matrix chol_l = la::cholesky_factor(b);
      const la::JacobiResult ref = la::onesided_jacobi_cyclic(la::whiten_symmetric(a, chol_l));
      ref_sweeps = ref.sweeps;
      gap = la::spectrum_distance(ascending(r.eigenvalues), ascending(ref.eigenvalues));
    } else {
      const la::JacobiResult ref = la::onesided_jacobi_cyclic(a);
      ref_sweeps = ref.sweeps;
      std::vector<double> ref_vals = ref.eigenvalues;
      if (r.topk > 0) {
        std::sort(ref_vals.begin(), ref_vals.end(),
                  [](double x, double y) { return std::abs(x) > std::abs(y); });
        ref_vals.resize(r.eigenvalues.size());
      }
      gap = la::spectrum_distance(ascending(r.eigenvalues), ascending(ref_vals));
    }
    const double t_seq = std::chrono::duration<double>(Clock::now() - t1).count();
    if (!json)
      std::printf("check    : sequential ref %d sweeps in %.3fs, spectrum gap %.2e\n",
                  ref_sweeps, t_seq, gap);
    ok = ok && gap < 1e-7;
  }

  if (json) {
    std::printf("%s\n", api::report_to_json(r).c_str());
    return ok ? 0 : 1;
  }

  const std::vector<double>& values = svd ? r.singular_values : r.eigenvalues;
  const std::size_t show = std::min<std::size_t>(3, values.size());
  std::printf("extremes :");
  for (std::size_t i = 0; i < show; ++i) std::printf(" %.5f", values[i]);
  std::printf(" ...");
  for (std::size_t i = values.size() - show; i < values.size(); ++i)
    std::printf(" %.5f", values[i]);
  std::printf("\n");

  return ok ? 0 : 1;
}
