// Communication planner: given a machine (d, Ts, Tw, ports) and a matrix
// size m, recommend the Jacobi ordering and per-phase pipelining degree
// that minimize the sweep communication cost -- the decision procedure a
// user of the paper's results would actually run. The recommendation is
// emitted as a ready-to-run api::SolverSpec string for the solver CLI.
//
//   $ ./comm_planner [d] [log2_m] [Ts] [Tw]      (defaults: 6 18 1000 100)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "api/spec.hpp"
#include "pipe/cost_model.hpp"
#include "pipe/execution_model.hpp"
#include "pipe/report.hpp"

int main(int argc, char** argv) {
  using namespace jmh::pipe;
  using jmh::ord::OrderingKind;

  ProblemParams prob;
  prob.d = argc > 1 ? std::atoi(argv[1]) : 6;
  const int log2_m = argc > 2 ? std::atoi(argv[2]) : 18;
  prob.m = std::ldexp(1.0, log2_m);
  MachineParams machine;
  machine.ts = argc > 3 ? std::atof(argv[3]) : 1000.0;
  machine.tw = argc > 4 ? std::atof(argv[4]) : 100.0;

  if (prob.d < 1 || prob.d > 16 || prob.columns_per_block() < 1.0) {
    std::fprintf(stderr, "infeasible configuration: need m >= 2^(d+1) columns\n");
    return 2;
  }

  std::printf("machine : %d-cube (%d nodes), Ts = %.0f, Tw = %.0f, all-port\n", prob.d,
              1 << prob.d, machine.ts, machine.tw);
  std::printf("problem : m = 2^%d columns, %.0f columns/block, S = %.3g elements/transition\n\n",
              log2_m, prob.columns_per_block(), prob.step_message_elems());

  const double base = sweep_cost_unpipelined(prob, machine);
  std::printf("baseline (unpipelined BR CC-cube): %.4g time units per sweep\n\n", base);

  OrderingKind best_kind = OrderingKind::BR;
  double best_cost = base;
  SweepCost best;
  std::printf("ordering      sweep-cost   relative   per-phase Q (e = d..1)\n");
  for (auto kind : {OrderingKind::BR, OrderingKind::PermutedBR, OrderingKind::Degree4,
                    OrderingKind::MinAlpha}) {
    const SweepCost c = sweep_cost_pipelined(kind, prob, machine);
    std::printf("%-12s %12.4g   %8.3f   ", jmh::ord::to_string(kind).c_str(), c.total,
                c.total / base);
    for (std::size_t i = 0; i < c.q.size(); ++i)
      std::printf("%llu%s ", static_cast<unsigned long long>(c.q[i]),
                  c.deep[i] ? "(deep)" : "");
    std::printf("\n");
    if (c.total < best_cost) {
      best_cost = c.total;
      best_kind = kind;
      best = c;
    }
  }
  const SweepCost lb = sweep_cost_lower_bound(prob, machine);
  std::printf("%-12s %12.4g   %8.3f\n\n", "lower-bound", lb.total, lb.total / base);

  std::printf("RECOMMENDATION: use the %s ordering (%.1f%% of the unpipelined cost,\n",
              jmh::ord::to_string(best_kind).c_str(), 100.0 * best_cost / base);
  std::printf("%.2fx away from the idealized lower bound).\n\n", best_cost / lb.total);

  std::printf("%s\n", render_sweep_breakdown(best_kind, prob, machine).c_str());

  // End-to-end view: how much of a sweep's execution time is communication,
  // for a representative flop rate.
  ExecutionParams exec;
  exec.machine = machine;
  exec.t_flop = 1.0;
  const ExecutionReport er = sweep_execution(best_kind, prob, exec);
  std::printf("with t_flop = %.1f: compute %.4g + comm %.4g = %.4g per sweep (%.0f%% comm),\n",
              exec.t_flop, er.compute, er.comm, er.total, 100.0 * er.comm_fraction);
  std::printf("parallel speedup %.1fx on %d nodes\n",
              sweep_speedup(best_kind, prob, exec), 1 << prob.d);

  // The recommendation as a facade scenario: paste into
  // `eigensolver_cli --spec ...` (backend=sim replays it on the modeled
  // machine; pipeline=auto re-derives the optimal degree at plan time).
  jmh::api::SolverSpec spec;
  spec.backend = jmh::api::Backend::Sim;
  spec.ordering = best_kind;
  spec.m = static_cast<std::size_t>(prob.m);
  spec.d = prob.d;
  spec.pipelining = jmh::api::PipeliningPolicy::Auto;
  spec.machine = machine;
  std::printf("\nfacade spec: \"%s\"\n", spec.to_string().c_str());
  return 0;
}
