// Quickstart: solve a symmetric eigenproblem on a simulated 2-cube (4
// nodes) with the degree-4 Jacobi ordering, and verify the answer.
//
//   $ ./quickstart
//
// Walks through the three core objects of the library:
//   1. ord::JacobiOrdering -- the parallel Jacobi ordering (which column
//      blocks meet when, and which hypercube links the transitions use);
//   2. solve::solve_inline -- the distributed one-sided Jacobi solver
//      (here executed as a deterministic in-process simulation);
//   3. la verification helpers -- residuals and orthogonality.
#include <cstdio>

#include "la/eigen_check.hpp"
#include "la/sym_gen.hpp"
#include "ord/ordering.hpp"
#include "solve/parallel_jacobi.hpp"

int main() {
  using namespace jmh;

  // A random 16x16 symmetric matrix with entries uniform on [-1, 1] -- the
  // same workload as the paper's convergence experiments.
  Xoshiro256 rng(2026);
  const std::size_t m = 16;
  const la::Matrix a = la::random_uniform_symmetric(m, rng);

  // The degree-4 ordering on a d=2 hypercube (4 nodes, 8 column blocks).
  const int d = 2;
  const ord::JacobiOrdering ordering(ord::OrderingKind::Degree4, d);
  std::printf("ordering: %s on a %d-cube (%zu blocks, %zu steps/sweep)\n",
              ord::to_string(ordering.kind()).c_str(), d, ordering.num_blocks(),
              ordering.steps_per_sweep());

  // Solve. solve_inline simulates the 4 nodes sequentially; solve_mpi would
  // run them as real threads exchanging messages.
  const solve::DistributedResult r = solve::solve_inline(a, ordering);
  std::printf("converged: %s after %d sweeps (%zu rotations)\n",
              r.converged ? "yes" : "no", r.sweeps, r.rotations);

  std::printf("\neigenvalues:\n ");
  for (double ev : r.eigenvalues) std::printf(" %8.4f", ev);
  std::printf("\n\n");

  // Verify: residual ||A v - lambda v|| and eigenvector orthonormality.
  const double residual = la::eigenpair_residual(a, r.eigenvalues, r.eigenvectors);
  const double orth = la::orthogonality_defect(r.eigenvectors);
  std::printf("max relative residual ||Av - lv||/||A||_F : %.2e\n", residual);
  std::printf("orthogonality defect  ||V^T V - I||_max   : %.2e\n", orth);

  return residual < 1e-9 && orth < 1e-10 ? 0 : 1;
}
